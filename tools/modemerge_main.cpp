// modemerge — command-line mode merging.
//
//   modemerge --netlist design.v --mode func.sdc --mode scan.sdc ...
//             [--out DIR] [--tolerance X] [--threads N] [--sta]
//             [--no-refine] [--no-validate] [--no-hold]
//
// Reads a structural Verilog netlist (built-in cell library) and N SDC mode
// decks, runs mergeability analysis + clique cover + per-clique merging,
// writes one merged SDC per clique into DIR (default .), and prints the
// merge reports. With --sta it also runs STA on individual vs merged modes
// and reports the runtime reduction and slack conformity. Exit status is
// non-zero if any merged mode fails sign-off validation.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "merge/merger.h"
#include "netlist/liberty.h"
#include "netlist/verilog.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/report.h"
#include "timing/sta.h"
#include "util/logger.h"
#include "util/timer.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw mm::Error("cannot open: " + path);
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

void usage() {
  std::fprintf(stderr,
               "usage: modemerge --netlist FILE.v [--liberty FILE.lib] --mode FILE.sdc "
               "[--mode FILE.sdc ...]\n"
               "  [--out DIR] [--tolerance X] [--threads N] [--sta]\n"
               "  [--no-refine] [--no-validate] [--no-hold] [--verbose]\n"
               "  [--report-timing N] [--report-clocks]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;

  std::string netlist_path;
  std::string liberty_path;
  std::vector<std::string> mode_paths;
  std::string out_dir = ".";
  merge::MergeOptions options;
  bool run_sta_flag = false;
  size_t report_paths = 0;
  bool report_clocks_flag = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--netlist") netlist_path = value();
    else if (arg == "--liberty") liberty_path = value();
    else if (arg == "--mode") mode_paths.push_back(value());
    else if (arg == "--out") out_dir = value();
    else if (arg == "--tolerance") options.value_tolerance = std::atof(value());
    else if (arg == "--threads") options.num_threads = std::atoi(value());
    else if (arg == "--sta") run_sta_flag = true;
    else if (arg == "--report-timing") report_paths = std::atoi(value());
    else if (arg == "--report-clocks") report_clocks_flag = true;
    else if (arg == "--no-refine") options.run_refinement = false;
    else if (arg == "--no-validate") options.validate = false;
    else if (arg == "--no-hold") options.analyze_hold = false;
    else if (arg == "--verbose") Logger::set_level(LogLevel::kInfo);
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (netlist_path.empty() || mode_paths.empty()) {
    usage();
    return 2;
  }

  try {
    const netlist::Library lib =
        liberty_path.empty() ? netlist::Library::builtin()
                             : netlist::read_liberty(read_file(liberty_path));
    if (!liberty_path.empty()) {
      std::printf("library %s: %zu cells\n", liberty_path.c_str(),
                  lib.num_cells());
    }
    const netlist::Design design =
        netlist::read_verilog(read_file(netlist_path), lib);
    const netlist::CheckReport check = netlist::check_design(design);
    for (const std::string& w : check.warnings) {
      MM_WARN("netlist: %s", w.c_str());
    }
    std::printf("netlist %s: %zu cells, %zu nets, %zu ports\n",
                design.name().c_str(), design.num_instances(),
                design.num_nets(), design.num_ports());

    const timing::TimingGraph graph(design);

    std::vector<sdc::Sdc> modes;
    std::vector<const sdc::Sdc*> ptrs;
    modes.reserve(mode_paths.size());
    for (const std::string& path : mode_paths) {
      modes.push_back(sdc::parse_sdc(read_file(path), design));
      std::printf("mode %-30s: %zu clocks, %zu exceptions, %zu case pins\n",
                  path.c_str(), modes.back().num_clocks(),
                  modes.back().exceptions().size(),
                  modes.back().case_analysis().size());
    }
    for (const sdc::Sdc& m : modes) ptrs.push_back(&m);

    const merge::MergedModeSet out =
        merge::merge_mode_set(graph, ptrs, options);
    std::printf("\n%zu modes -> %zu merged (%.1f%% reduction) in %.2fs\n",
                ptrs.size(), out.num_merged_modes(), out.reduction_percent(),
                out.total_seconds);

    bool safe = true;
    for (size_t c = 0; c < out.merged.size(); ++c) {
      const merge::ValidatedMergeResult& m = out.merged[c];
      std::printf("\n--- merged mode %zu <- {", c);
      for (size_t k = 0; k < out.cliques[c].size(); ++k) {
        std::printf("%s%s", k ? ", " : "",
                    mode_paths[out.cliques[c][k]].c_str());
      }
      std::printf("} ---\n%s", report_merge(m.merge, m.equivalence).c_str());
      safe &= !options.validate || m.equivalence.signoff_safe();

      const std::string path =
          out_dir + "/merged_" + std::to_string(c) + ".sdc";
      std::ofstream file(path);
      file << sdc::write_sdc(*m.merge.merged);
      std::printf("wrote %s\n", path.c_str());
    }

    for (size_t c = 0; c < out.merged.size(); ++c) {
      const sdc::Sdc& merged = *out.merged[c].merge.merged;
      if (report_clocks_flag) {
        std::printf("\n=== merged mode %zu clocks ===\n%s", c,
                    timing::report_clocks(graph, merged).c_str());
      }
      if (report_paths > 0) {
        timing::ReportTimingOptions ro;
        ro.max_paths = report_paths;
        std::printf("\n=== merged mode %zu worst paths ===\n%s", c,
                    timing::report_timing(graph, merged, ro).c_str());
      }
    }

    if (run_sta_flag) {
      Stopwatch t1;
      const timing::StaResult indiv = timing::run_sta_multi(graph, ptrs);
      const double t_indiv = t1.elapsed_seconds();
      std::vector<const sdc::Sdc*> merged_ptrs;
      for (const auto& m : out.merged)
        merged_ptrs.push_back(m.merge.merged.get());
      Stopwatch t2;
      const timing::StaResult merged_sta =
          timing::run_sta_multi(graph, merged_ptrs);
      const double t_merged = t2.elapsed_seconds();
      std::printf(
          "\nSTA: individual %.3fs (%zu runs), merged %.3fs (%zu runs), "
          "%.1f%% reduction\n",
          t_indiv, ptrs.size(), t_merged, merged_ptrs.size(),
          t_indiv > 0 ? 100.0 * (1.0 - t_merged / t_indiv) : 0.0);
      std::printf("WNS individual %.4f, merged %.4f\n", indiv.wns,
                  merged_sta.wns);
    }

    if (!safe) {
      std::fprintf(stderr, "\nFAIL: at least one merged mode is not sign-off safe\n");
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
