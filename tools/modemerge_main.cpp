// modemerge — command-line mode merging.
//
//   modemerge --netlist design.v --mode func.sdc --mode scan.sdc ...
//             [--out DIR] [--tolerance X] [--threads N] [--sta]
//             [--no-refine] [--no-validate] [--no-hold]
//             [--stats-out FILE.json] [--trace-out FILE.json] [--profile]
//   modemerge --netlist design.v --script deltas.txt [--out DIR] ...
//
// Reads a structural Verilog netlist (built-in cell library) and N SDC mode
// decks, runs mergeability analysis + clique cover + per-clique merging,
// writes one merged SDC per clique into DIR (default .), and prints the
// merge reports. With --sta it also runs STA on individual vs merged modes
// and reports the runtime reduction and slack conformity. Exit status is
// non-zero if any merged mode fails sign-off validation; bad command-line
// input exits 2.
//
// --script drives the incremental MergeSession instead of the one-shot
// batch: the file holds one command per line (add NAME FILE.sdc /
// update NAME FILE.sdc / remove NAME / commit, '#' comments), relative
// SDC paths resolve against the script's directory, each commit prints a
// delta summary (pairs re-checked, cliques reused vs re-merged), and the
// final commit's merged_<k>.sdc files are written to --out.
//
// Observability: --stats-out dumps the mm::obs metrics registry (per-phase
// wall time, peak RSS, counters) as JSON, --trace-out writes a Chrome
// trace_event file loadable in chrome://tracing / Perfetto, and --profile
// prints the per-phase table at the end of the run.

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "merge/mcmm_session.h"
#include "merge/merger.h"
#include "merge/qor.h"
#include "merge/session.h"
#include "merge/sharded_session.h"
#include "netlist/liberty.h"
#include "netlist/verilog.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/report.h"
#include "timing/sta.h"
#include "util/logger.h"
#include "util/timer.h"

namespace {

constexpr const char* kVersion = "modemerge 1.1.0";

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw mm::Error("cannot open: " + path);
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: modemerge --netlist FILE.v [--liberty FILE.lib] --mode FILE.sdc "
      "[--mode FILE.sdc ...]\n"
      "       modemerge --netlist FILE.v --script FILE [--out DIR]\n"
      "\n"
      "merging:\n"
      "  --out DIR            output directory for merged_<k>.sdc (default .)\n"
      "  --script FILE        incremental session driver: one command per\n"
      "                       line (add NAME FILE.sdc | update NAME FILE.sdc\n"
      "                       | remove NAME | commit); relative SDC paths\n"
      "                       resolve against the script's directory\n"
      "  --tolerance X        relative constraint-value merge tolerance (>= 0)\n"
      "  --threads N          worker threads for the whole merge pipeline:\n"
      "                       relationship extraction, pair mergeability\n"
      "                       checks, refinement, and validation all share\n"
      "                       one pool (0 = hardware concurrency)\n"
      "  --no-refine          preliminary merge only (skip 3-pass refinement)\n"
      "  --no-validate        skip the final equivalence validation\n"
      "  --no-hold            setup-side analysis only\n"
      "  --no-key-intern      string-keyed canonical identity (parity\n"
      "                       reference for the interned-key fast path;\n"
      "                       output is byte-identical either way)\n"
      "  --no-batched-sta     validate each clique with one serial STA run\n"
      "                       per mode instead of the batched multi-lane\n"
      "                       walk (parity reference; output is\n"
      "                       byte-identical either way)\n"
      "  --shards K           hierarchical sharded merging: partition the\n"
      "                       netlist into K blocks, run per-block\n"
      "                       mergeability in parallel, stitch at the\n"
      "                       boundary (docs/SHARDING.md; output is\n"
      "                       byte-identical to --shards 1, the default)\n"
      "  --shard-seed N       partitioner seed (block placement sweeps)\n"
      "  --corners C          multi-corner (MCMM) batch merge: the --mode\n"
      "                       list is an M x C deck matrix in mode-major\n"
      "                       order (mode 0 corner 0, mode 0 corner 1, ...);\n"
      "                       modes merge only when mergeable in EVERY\n"
      "                       corner, one clique cover is shared across\n"
      "                       corners, and each clique writes one\n"
      "                       merged_<k>_corner<c>.sdc per corner\n"
      "                       (docs/MCMM.md; default 1 = today's flat merge)\n"
      "\n"
      "merge policy (docs/POLICIES.md):\n"
      "  --merge-policy P     exact (default: byte-identical decks only) |\n"
      "                       windowed (accept per-field disagreement within\n"
      "                       the window budgets below; merged deck keeps the\n"
      "                       worst-case envelope, never optimistic)\n"
      "  --window X           set all four window budgets to X and select\n"
      "                       the windowed policy\n"
      "  --window-latency X      clock source/network latency budget\n"
      "  --window-uncertainty X  clock uncertainty budget\n"
      "  --window-transition X   input transition (slew) budget\n"
      "  --window-drive-load X   driving-cell / port-load budget\n"
      "  --qor-out FILE       write the mm.qor/1 conformity report (merged vs\n"
      "                       worst-member slack per endpoint; batch mode\n"
      "                       only, runs one batched STA per multi-mode\n"
      "                       clique)\n"
      "\n"
      "analysis / reports:\n"
      "  --sta                run STA individual-vs-merged and report reduction\n"
      "  --report-timing N    print the N worst paths per merged mode\n"
      "  --report-clocks      print the clock report per merged mode\n"
      "\n"
      "observability:\n"
      "  --seed N             deterministic run seed, printed and recorded in\n"
      "                       stats (replay handle for fuzz/triage workflows)\n"
      "  --stats-out FILE     write machine-readable run stats JSON\n"
      "  --trace-out FILE     write Chrome trace_event JSON (chrome://tracing)\n"
      "  --journal-out FILE   write the mm.journal/1 merge decision journal\n"
      "                       (JSONL; query with mmreport explain/timeline);\n"
      "                       with --script, one segment per commit\n"
      "  --profile            print the per-phase wall-time table at exit\n"
      "  --verbose            log at info level\n"
      "  --log-timestamps     prefix log lines with wall clock + thread id\n"
      "\n"
      "  --help, -h           this help (exit 0)\n"
      "  --version            print version (exit 0)\n");
}

[[noreturn]] void bad_arg(const char* flag, const char* text,
                          const char* expected) {
  std::fprintf(stderr, "modemerge: invalid value for %s: '%s' (expected %s)\n",
               flag, text, expected);
  std::exit(2);
}

/// Strictly parse a non-negative finite double; exits 2 with a clear
/// message on garbage, trailing junk, or negative values.
double parse_double_arg(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    bad_arg(flag, text, "a finite number");
  }
  if (v < 0) bad_arg(flag, text, "a non-negative number");
  return v;
}

/// Strictly parse a non-negative integer; exits 2 on anything else.
size_t parse_size_arg(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      std::strchr(text, '-') != nullptr) {
    bad_arg(flag, text, "a non-negative integer");
  }
  return static_cast<size_t>(v);
}

/// Write one merged deck to `out_dir` (created if missing). Returns false
/// with a stderr message when the file cannot be written — "wrote" is only
/// ever printed for bytes actually on disk.
bool write_merged(const std::string& out_dir, size_t clique,
                  const mm::sdc::Sdc& merged) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string out_path =
      out_dir + "/merged_" + std::to_string(clique) + ".sdc";
  std::ofstream file(out_path);
  file << mm::sdc::write_sdc(merged);
  file.close();
  if (!file) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return false;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return true;
}

/// Print the sharding topology + stitch accounting of a sharded session
/// (no-op for the flat MergeSession).
void print_shard_summary(const mm::merge::MergeSession&) {}
void print_shard_summary(const mm::merge::ShardedMergeSession& session) {
  if (session.num_blocks() <= 1) return;
  const mm::netlist::Partition& part = session.partition();
  const mm::merge::ShardedMergeSession::StitchStats& st = session.last_stitch();
  std::printf(
      "shards: %zu blocks, %zu boundary pins, %zu crossing nets; "
      "stitch: %zu pairs (%zu local, %zu boundary-skipped, %zu descended)\n",
      part.num_blocks(), part.boundary_pins().size(), part.num_crossing_nets(),
      st.pairs_checked, st.pairs_local, st.boundary_skips, st.pairs_descended);
}

/// Execute a --script delta file against a long-lived session (the flat
/// MergeSession, or ShardedMergeSession under --shards K). Returns the
/// process exit status. Script syntax errors exit 2 directly (same
/// contract as bad command-line input).
template <typename Session>
int run_script_impl(const std::string& script_path,
                    const mm::timing::TimingGraph& graph,
                    const mm::netlist::Design& design,
                    const mm::merge::MergeOptions& options,
                    const std::string& out_dir, mm::obs::StatsMeta& meta) {
  using namespace mm;

  const std::string text = read_file(script_path);
  const size_t slash = script_path.find_last_of('/');
  const std::string script_dir =
      slash == std::string::npos ? "" : script_path.substr(0, slash + 1);
  auto resolve = [&](const std::string& p) {
    return (!p.empty() && p.front() == '/') ? p : script_dir + p;
  };

  Session session(graph, options);
  struct LiveMode {
    typename Session::ModeId id;
    std::unique_ptr<sdc::Sdc> sdc;  // session borrows; must outlive the entry
  };
  std::map<std::string, LiveMode> live;
  size_t commits = 0;
  bool safe = true;
  bool wrote_ok = true;

  std::istringstream is(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string cmd, name, path;
    ls >> cmd;
    if (cmd.empty()) continue;
    auto fail = [&](const char* msg) {
      std::fprintf(stderr, "modemerge: %s:%zu: %s\n", script_path.c_str(),
                   lineno, msg);
      std::exit(2);
    };

    if (cmd == "add" || cmd == "update") {
      ls >> name >> path;
      if (name.empty() || path.empty()) {
        fail("expected: add|update NAME FILE.sdc");
      }
      auto sdc = std::make_unique<sdc::Sdc>(
          sdc::parse_sdc(read_file(resolve(path)), design));
      std::printf("%s %-20s: %zu clocks, %zu exceptions\n", cmd.c_str(),
                  name.c_str(), sdc->num_clocks(), sdc->exceptions().size());
      if (cmd == "add") {
        if (live.count(name)) fail("mode name already live");
        const typename Session::ModeId id = session.add_mode(name, sdc.get());
        live.emplace(name, LiveMode{id, std::move(sdc)});
      } else {
        auto it = live.find(name);
        if (it == live.end()) fail("update of unknown mode name");
        session.update_mode(it->second.id, sdc.get());
        it->second.sdc = std::move(sdc);
      }
    } else if (cmd == "remove") {
      ls >> name;
      auto it = live.find(name);
      if (it == live.end()) fail("remove of unknown mode name");
      session.remove_mode(it->second.id);
      live.erase(it);
      std::printf("remove %s\n", name.c_str());
    } else if (cmd == "commit") {
      const typename Session::CommitResult& r = session.commit();
      ++commits;
      std::printf(
          "commit %zu: %zu modes -> %zu merged (%zu reused, %zu re-merged), "
          "%zu pairs re-checked, %zu clean, %.3fs\n",
          commits, r.num_input_modes, r.num_merged_modes(), r.cliques_reused,
          r.cliques_merged, r.pairs_rechecked, r.pairs_skipped_clean,
          r.total_seconds);
      print_shard_summary(session);
    } else {
      fail("unknown command (expected add/update/remove/commit)");
    }
  }

  // A trailing commit is implied so every script yields output; with no
  // deltas since the last explicit commit this reuses everything.
  const typename Session::CommitResult& out = session.commit();
  ++commits;
  print_shard_summary(session);
  std::printf("\nfinal: %zu modes -> %zu merged (%.1f%% reduction), "
              "%zu commits\n",
              out.num_input_modes, out.num_merged_modes(),
              out.reduction_percent(), commits);
  meta.numbers["num_input_modes"] = static_cast<double>(out.num_input_modes);
  meta.numbers["num_merged_modes"] =
      static_cast<double>(out.num_merged_modes());
  meta.numbers["reduction_percent"] = out.reduction_percent();
  meta.numbers["session_commits"] = static_cast<double>(commits);

  for (size_t c = 0; c < out.merged.size(); ++c) {
    const merge::ValidatedMergeResult& m = *out.merged[c];
    std::printf("\n--- merged mode %zu <- {", c);
    for (size_t k = 0; k < out.clique_ids[c].size(); ++k) {
      std::printf("%s%s", k ? ", " : "",
                  session.mode_name(out.clique_ids[c][k]).c_str());
    }
    std::printf("} ---\n%s",
                merge::report_merge(m.merge, m.equivalence).c_str());
    safe &= !options.validate || m.equivalence.signoff_safe();

    wrote_ok &= write_merged(out_dir, c, *m.merge.merged);
  }

  if (!safe) {
    std::fprintf(stderr,
                 "\nFAIL: at least one merged mode is not sign-off safe\n");
    return 1;
  }
  return wrote_ok ? 0 : 1;
}

/// Multi-corner batch (--corners C > 1): `modes` is an M x C deck matrix
/// in mode-major order. Runs one McmmSession commit — one shared clique
/// cover, per-corner merges — and writes one merged_<k>_corner<c>.sdc per
/// (clique, corner). With --qor-out, the per-corner conformity reports
/// land in <qor_out>.<corner>; every corner must be never-optimistic for
/// a zero exit.
int run_mcmm(const mm::timing::TimingGraph& graph,
             const std::vector<std::string>& mode_paths,
             const std::vector<mm::sdc::Sdc>& modes, size_t num_corners,
             const mm::merge::MergeOptions& options, const std::string& out_dir,
             const std::string& qor_out, mm::obs::StatsMeta& meta) {
  using namespace mm;

  const size_t num_modes = modes.size() / num_corners;
  std::vector<std::string> corner_names;
  corner_names.reserve(num_corners);
  for (size_t c = 0; c < num_corners; ++c) {
    corner_names.push_back("corner" + std::to_string(c));
  }
  merge::McmmSession session(graph, merge::CornerSet(corner_names), options);
  for (size_t m = 0; m < num_modes; ++m) {
    std::vector<const sdc::Sdc*> decks;
    decks.reserve(num_corners);
    for (size_t c = 0; c < num_corners; ++c) {
      decks.push_back(&modes[m * num_corners + c]);
    }
    session.add_mode(mode_paths[m * num_corners], std::move(decks));
  }
  const merge::McmmSession::CommitResult& out = session.commit();

  const merge::RelationshipCache::Stats cache =
      session.context().cache().stats();
  std::printf(
      "\nmcmm: %zu modes x %zu corners -> %zu merged (%.1f%% reduction) in "
      "%.2fs\n"
      "mcmm: %zu pair-corner checks (%zu reused), %zu skeleton extractions, "
      "%zu corner delta fills, %zu skeleton mismatches\n",
      num_modes, num_corners, out.num_merged_modes(), out.reduction_percent(),
      out.total_seconds, out.pair_corner_checks, out.pair_corner_reuses,
      static_cast<size_t>(cache.misses - cache.delta_fills -
                          cache.skeleton_mismatches),
      static_cast<size_t>(cache.delta_fills),
      static_cast<size_t>(cache.skeleton_mismatches));
  meta.numbers["corners"] = static_cast<double>(num_corners);
  meta.numbers["num_input_modes"] = static_cast<double>(num_modes);
  meta.numbers["num_merged_modes"] = static_cast<double>(out.num_merged_modes());
  meta.numbers["reduction_percent"] = out.reduction_percent();
  meta.numbers["merge_seconds"] = out.total_seconds;
  meta.numbers["mcmm_pair_corner_checks"] =
      static_cast<double>(out.pair_corner_checks);
  meta.numbers["mcmm_delta_fills"] = static_cast<double>(cache.delta_fills);

  bool safe = true;
  bool wrote_ok = true;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  for (size_t k = 0; k < out.cliques.size(); ++k) {
    std::printf("\n--- merged mode %zu <- {", k);
    for (size_t i = 0; i < out.clique_ids[k].size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  session.mode_name(out.clique_ids[k][i]).c_str());
    }
    std::printf("} ---\n");
    for (size_t c = 0; c < num_corners; ++c) {
      const merge::ValidatedMergeResult& m = *out.merged[c][k];
      safe &= !options.validate || m.equivalence.signoff_safe();
      const std::string out_path = out_dir + "/merged_" + std::to_string(k) +
                                   "_" + corner_names[c] + ".sdc";
      std::ofstream file(out_path);
      file << sdc::write_sdc(*m.merge.merged);
      file.close();
      if (!file) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        wrote_ok = false;
      } else {
        std::printf("wrote %s\n", out_path.c_str());
      }
    }
  }

  if (!qor_out.empty()) {
    for (size_t c = 0; c < num_corners; ++c) {
      const merge::QoRReport qor =
          session.qor(static_cast<merge::CornerId>(c));
      std::printf(
          "QoR %s: %zu clique(s), %zu endpoint(s); max pessimism %.4f, "
          "optimism violations %zu -> %s\n",
          corner_names[c].c_str(), qor.cliques.size(), qor.endpoints_compared,
          qor.max_pessimism, qor.optimism_violations,
          qor.never_optimistic() ? "never optimistic" : "OPTIMISTIC");
      const std::string path = qor_out + "." + corner_names[c];
      std::ofstream file(path);
      file << merge::write_qor_json(qor);
      file.close();
      if (!file) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        wrote_ok = false;
      } else {
        std::fprintf(stderr, "wrote QoR report to %s\n", path.c_str());
      }
      safe &= qor.never_optimistic();
    }
  }

  if (!safe) {
    std::fprintf(stderr,
                 "\nFAIL: at least one merged mode is not sign-off safe\n");
    return 1;
  }
  return wrote_ok ? 0 : 1;
}

int run_script(const std::string& script_path,
               const mm::timing::TimingGraph& graph,
               const mm::netlist::Design& design,
               const mm::merge::MergeOptions& options,
               const std::string& out_dir, mm::obs::StatsMeta& meta) {
  if (options.num_shards > 1) {
    return run_script_impl<mm::merge::ShardedMergeSession>(
        script_path, graph, design, options, out_dir, meta);
  }
  return run_script_impl<mm::merge::MergeSession>(script_path, graph, design,
                                                  options, out_dir, meta);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;

  std::string netlist_path;
  std::string liberty_path;
  std::vector<std::string> mode_paths;
  std::string script_path;
  std::string out_dir = ".";
  std::string stats_out;
  std::string trace_out;
  std::string journal_out;
  bool profile_flag = false;
  merge::MergeOptions options;
  std::string qor_out;
  bool policy_level_set = false;  // explicit --merge-policy wins over the
  bool window_flag_seen = false;  // windowed default a --window* flag implies
  bool run_sta_flag = false;
  size_t report_paths = 0;
  bool report_clocks_flag = false;
  uint64_t seed = 1;
  size_t num_corners = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "modemerge: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--netlist") netlist_path = value();
    else if (arg == "--liberty") liberty_path = value();
    else if (arg == "--mode") mode_paths.push_back(value());
    else if (arg == "--script") script_path = value();
    else if (arg == "--out") out_dir = value();
    else if (arg == "--tolerance")
      options.value_tolerance = parse_double_arg("--tolerance", value());
    else if (arg == "--threads")
      options.num_threads = parse_size_arg("--threads", value());
    else if (arg == "--sta") run_sta_flag = true;
    else if (arg == "--report-timing")
      report_paths = parse_size_arg("--report-timing", value());
    else if (arg == "--report-clocks") report_clocks_flag = true;
    else if (arg == "--no-refine") options.run_refinement = false;
    else if (arg == "--no-validate") options.validate = false;
    else if (arg == "--no-hold") options.analyze_hold = false;
    else if (arg == "--no-key-intern") options.use_interned_keys = false;
    else if (arg == "--no-batched-sta") options.use_batched_sta = false;
    else if (arg == "--shards")
      options.num_shards = parse_size_arg("--shards", value());
    else if (arg == "--shard-seed")
      options.shard_seed =
          static_cast<uint64_t>(parse_size_arg("--shard-seed", value()));
    else if (arg == "--corners") {
      num_corners = parse_size_arg("--corners", value());
      if (num_corners == 0) bad_arg("--corners", "0", "a positive integer");
    }
    else if (arg == "--merge-policy") {
      const char* name = value();
      if (!merge::parse_policy_level(name, &options.policy.level)) {
        bad_arg("--merge-policy", name, "exact|windowed");
      }
      policy_level_set = true;
    } else if (arg == "--window") {
      const double w = parse_double_arg("--window", value());
      options.policy.window_latency = w;
      options.policy.window_uncertainty = w;
      options.policy.window_transition = w;
      options.policy.window_drive_load = w;
      window_flag_seen = true;
    } else if (arg == "--window-latency") {
      options.policy.window_latency =
          parse_double_arg("--window-latency", value());
      window_flag_seen = true;
    } else if (arg == "--window-uncertainty") {
      options.policy.window_uncertainty =
          parse_double_arg("--window-uncertainty", value());
      window_flag_seen = true;
    } else if (arg == "--window-transition") {
      options.policy.window_transition =
          parse_double_arg("--window-transition", value());
      window_flag_seen = true;
    } else if (arg == "--window-drive-load") {
      options.policy.window_drive_load =
          parse_double_arg("--window-drive-load", value());
      window_flag_seen = true;
    } else if (arg == "--qor-out") qor_out = value();
    else if (arg == "--seed")
      seed = static_cast<uint64_t>(parse_size_arg("--seed", value()));
    else if (arg == "--stats-out") stats_out = value();
    else if (arg == "--trace-out") trace_out = value();
    else if (arg == "--journal-out") journal_out = value();
    else if (arg == "--profile") profile_flag = true;
    else if (arg == "--verbose") Logger::set_level(LogLevel::kInfo);
    else if (arg == "--log-timestamps")
      Logger::set_prefix_style(LogPrefixStyle::kTimestamped);
    else if (arg == "--version") {
      std::printf("%s\n", kVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (netlist_path.empty() || (mode_paths.empty() == script_path.empty())) {
    usage(stderr);
    return 2;
  }
  // A window budget without --merge-policy implies the windowed level; an
  // explicit --merge-policy always wins (e.g. exact + budgets = budgets
  // parked for a later run).
  if (window_flag_seen && !policy_level_set) {
    options.policy.level = merge::PolicyLevel::kWindowed;
  }
  if (!qor_out.empty() && !script_path.empty()) {
    std::fprintf(stderr,
                 "modemerge: --qor-out is batch-mode only (not --script)\n");
    return 2;
  }
  if (num_corners > 1) {
    if (!script_path.empty() || options.num_shards > 1 || run_sta_flag ||
        report_paths > 0 || report_clocks_flag) {
      std::fprintf(stderr,
                   "modemerge: --corners is batch-mode only and composes with "
                   "--qor-out, not --script/--shards/--sta/--report-*\n");
      return 2;
    }
    if (mode_paths.size() % num_corners != 0) {
      std::fprintf(stderr,
                   "modemerge: --corners %zu needs a mode count divisible by "
                   "the corner count (got %zu decks)\n",
                   num_corners, mode_paths.size());
      return 2;
    }
  }
  if (options.policy.windowed()) {
    std::printf("merge policy: windowed (latency %g, uncertainty %g, "
                "transition %g, drive/load %g; pessimism bound %g)\n",
                options.policy.window_latency,
                options.policy.window_uncertainty,
                options.policy.window_transition,
                options.policy.window_drive_load,
                options.policy.pessimism_bound());
  }

  if (!trace_out.empty()) obs::Trace::set_enabled(true);
  if (!journal_out.empty() && !obs::Journal::open(journal_out)) {
    std::fprintf(stderr, "error: cannot write %s\n", journal_out.c_str());
    return 1;
  }

  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));

  obs::StatsMeta meta;
  meta.strings["tool"] = kVersion;
  meta.strings["netlist"] = netlist_path;
  meta.numbers["num_input_modes"] = static_cast<double>(mode_paths.size());
  meta.numbers["seed"] = static_cast<double>(seed);

  // Emit whatever observability artifacts were requested, even on the
  // error path, so failed runs stay diagnosable.
  // Returns false if a requested artifact could not be written.
  auto emit_observability = [&]() {
    bool ok = true;
    if (!journal_out.empty()) {
      // Flushes every buffered event — the error path keeps its decision
      // trail up to the point of failure.
      obs::Journal::close();
      std::fprintf(stderr, "wrote journal to %s (%llu events)\n",
                   journal_out.c_str(),
                   static_cast<unsigned long long>(
                       obs::Journal::events_appended()));
    }
    if (!stats_out.empty()) {
      if (obs::write_stats_json(stats_out, meta)) {
        std::fprintf(stderr, "wrote stats to %s\n", stats_out.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", stats_out.c_str());
        ok = false;
      }
    }
    if (!trace_out.empty()) {
      if (obs::Trace::write_chrome_json(trace_out)) {
        std::fprintf(stderr, "wrote trace to %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
        ok = false;
      }
    }
    if (profile_flag) {
      std::printf("\n=== phase profile ===\n%s", obs::profile_table().c_str());
    }
    return ok;
  };

  try {
    const netlist::Library lib =
        liberty_path.empty() ? netlist::Library::builtin()
                             : netlist::read_liberty(read_file(liberty_path));
    if (!liberty_path.empty()) {
      std::printf("library %s: %zu cells\n", liberty_path.c_str(),
                  lib.num_cells());
    }
    const netlist::Design design =
        netlist::read_verilog(read_file(netlist_path), lib);
    const netlist::CheckReport check = netlist::check_design(design);
    for (const std::string& w : check.warnings) {
      MM_WARN("netlist: %s", w.c_str());
    }
    std::printf("netlist %s: %zu cells, %zu nets, %zu ports\n",
                design.name().c_str(), design.num_instances(),
                design.num_nets(), design.num_ports());

    const timing::TimingGraph graph(design);

    if (!script_path.empty()) {
      const int status =
          run_script(script_path, graph, design, options, out_dir, meta);
      const bool artifacts_ok = emit_observability();
      return status != 0 ? status : (artifacts_ok ? 0 : 1);
    }

    std::vector<sdc::Sdc> modes;
    std::vector<const sdc::Sdc*> ptrs;
    modes.reserve(mode_paths.size());
    for (const std::string& path : mode_paths) {
      modes.push_back(sdc::parse_sdc(read_file(path), design));
      std::printf("mode %-30s: %zu clocks, %zu exceptions, %zu case pins\n",
                  path.c_str(), modes.back().num_clocks(),
                  modes.back().exceptions().size(),
                  modes.back().case_analysis().size());
    }
    for (const sdc::Sdc& m : modes) ptrs.push_back(&m);

    if (num_corners > 1) {
      const int status = run_mcmm(graph, mode_paths, modes, num_corners,
                                  options, out_dir, qor_out, meta);
      const bool artifacts_ok = emit_observability();
      return status != 0 ? status : (artifacts_ok ? 0 : 1);
    }

    merge::MergedModeSet out;
    if (options.num_shards > 1) {
      // Sharded batch: one-commit ShardedMergeSession, byte-identical
      // output to the flat merge_mode_set (docs/SHARDING.md).
      merge::ShardedMergeSession session(graph, options);
      for (size_t i = 0; i < modes.size(); ++i) {
        session.add_mode(mode_paths[i], &modes[i]);
      }
      session.commit();
      print_shard_summary(session);
      meta.numbers["shards"] = static_cast<double>(session.num_blocks());
      meta.numbers["shard_pairs_descended"] =
          static_cast<double>(session.last_stitch().pairs_descended);
      out = session.release_batch();
    } else {
      out = merge::merge_mode_set(graph, ptrs, options);
    }
    std::printf("\n%zu modes -> %zu merged (%.1f%% reduction) in %.2fs\n",
                ptrs.size(), out.num_merged_modes(), out.reduction_percent(),
                out.total_seconds);
    meta.numbers["num_merged_modes"] =
        static_cast<double>(out.num_merged_modes());
    meta.numbers["reduction_percent"] = out.reduction_percent();
    meta.numbers["merge_seconds"] = out.total_seconds;

    bool safe = true;
    bool wrote_ok = true;
    for (size_t c = 0; c < out.merged.size(); ++c) {
      const merge::ValidatedMergeResult& m = out.merged[c];
      std::printf("\n--- merged mode %zu <- {", c);
      for (size_t k = 0; k < out.cliques[c].size(); ++k) {
        std::printf("%s%s", k ? ", " : "",
                    mode_paths[out.cliques[c][k]].c_str());
      }
      std::printf("} ---\n%s", report_merge(m.merge, m.equivalence).c_str());
      safe &= !options.validate || m.equivalence.signoff_safe();

      wrote_ok &= write_merged(out_dir, c, *m.merge.merged);
    }

    for (size_t c = 0; c < out.merged.size(); ++c) {
      const sdc::Sdc& merged = *out.merged[c].merge.merged;
      if (report_clocks_flag) {
        std::printf("\n=== merged mode %zu clocks ===\n%s", c,
                    timing::report_clocks(graph, merged).c_str());
      }
      if (report_paths > 0) {
        timing::ReportTimingOptions ro;
        ro.max_paths = report_paths;
        std::printf("\n=== merged mode %zu worst paths ===\n%s", c,
                    timing::report_timing(graph, merged, ro).c_str());
      }
    }

    if (!qor_out.empty()) {
      const merge::QoRReport qor = merge::qor_report(graph, ptrs, out, options);
      std::printf(
          "\nQoR: %zu clique(s) compared, %zu endpoint(s); max pessimism "
          "%.4f (bound %.4f), optimism violations %zu, missing endpoints "
          "%zu -> %s\n",
          qor.cliques.size(), qor.endpoints_compared, qor.max_pessimism,
          qor.pessimism_bound, qor.optimism_violations, qor.missing_endpoints,
          qor.never_optimistic() ? "never optimistic" : "OPTIMISTIC");
      std::ofstream file(qor_out);
      file << merge::write_qor_json(qor);
      file.close();
      if (!file) {
        std::fprintf(stderr, "error: cannot write %s\n", qor_out.c_str());
        wrote_ok = false;
      } else {
        std::fprintf(stderr, "wrote QoR report to %s\n", qor_out.c_str());
      }
      meta.numbers["qor_max_pessimism"] = qor.max_pessimism;
      meta.numbers["qor_optimism_violations"] =
          static_cast<double>(qor.optimism_violations);
      safe &= qor.never_optimistic();
    }

    if (run_sta_flag) {
      Stopwatch t1;
      const timing::StaResult indiv = timing::run_sta_multi(graph, ptrs);
      const double t_indiv = t1.elapsed_seconds();
      std::vector<const sdc::Sdc*> merged_ptrs;
      for (const auto& m : out.merged)
        merged_ptrs.push_back(m.merge.merged.get());
      Stopwatch t2;
      const timing::StaResult merged_sta =
          timing::run_sta_multi(graph, merged_ptrs);
      const double t_merged = t2.elapsed_seconds();
      std::printf(
          "\nSTA: individual %.3fs (%zu runs), merged %.3fs (%zu runs), "
          "%.1f%% reduction\n",
          t_indiv, ptrs.size(), t_merged, merged_ptrs.size(),
          t_indiv > 0 ? 100.0 * (1.0 - t_merged / t_indiv) : 0.0);
      std::printf("WNS individual %.4f, merged %.4f\n", indiv.wns,
                  merged_sta.wns);
      meta.numbers["sta_individual_seconds"] = t_indiv;
      meta.numbers["sta_merged_seconds"] = t_merged;
      meta.numbers["wns_individual"] = indiv.wns;
      meta.numbers["wns_merged"] = merged_sta.wns;
    }

    const bool artifacts_ok = emit_observability();
    if (!safe) {
      std::fprintf(stderr, "\nFAIL: at least one merged mode is not sign-off safe\n");
      return 1;
    }
    return artifacts_ok && wrote_ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    meta.strings["error"] = e.what();
    emit_observability();
    return 1;
  }
}
