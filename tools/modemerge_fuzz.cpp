// modemerge_fuzz — property-based differential fuzzing of the merge
// pipeline (mm::fuzz).
//
//   modemerge_fuzz --seed 1 --iters 200            # hunt
//   modemerge_fuzz --case-seed 123456789           # replay one case
//   modemerge_fuzz --replay tests/fuzz_corpus      # regression corpus
//   modemerge_fuzz --seed 1 --iters 50 --inject falsify-mcp
//                                                  # mutation-test the oracle
//
// Every run prints its effective seed; every violation prints the single
// --case-seed integer that replays it and (with --corpus-dir) writes the
// delta-debugged minimal repro. Exit status: 0 clean, 1 violations (or a
// failed replay), 2 bad usage.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/corpus.h"
#include "fuzz/fuzz.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/logger.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: modemerge_fuzz [options]\n"
      "\n"
      "fuzzing:\n"
      "  --seed N             run seed (default 1); every case derives from it\n"
      "  --iters N            iterations (default 100)\n"
      "  --max-modes N        modes per generated family, 2..N (default 6)\n"
      "  --max-regs N         design size cap in registers (default 90)\n"
      "  --threads N          worker threads for the baseline config's whole\n"
      "                       merge pipeline (extraction, pair checks,\n"
      "                       refinement, validation; 0 = hardware)\n"
      "  --corners N          corner cap for P8's generated MCMM matrix;\n"
      "                       cases draw 2..N corners (default 4, min 2)\n"
      "  --max-violations N   stop after N minimized findings (default 1)\n"
      "  --corpus-dir DIR     write minimized repros under DIR\n"
      "  --no-mutate          skip the SDC text-mutation stage\n"
      "  --no-batched-sta     validate with the serial per-mode STA\n"
      "                       reference instead of the batched engine\n"
      "  --no-minimize        report raw cases without delta-debugging\n"
      "\n"
      "properties (all on by default):\n"
      "  --no-equiv           skip P1 two-sided equivalence per clique\n"
      "  --no-parity          skip P2 config byte-parity\n"
      "  --no-idempotence     skip P3 merge(S,S) fixpoint\n"
      "  --no-cover           skip P4 clique-cover validity/maximality\n"
      "  --no-incremental     skip P5 MergeSession delta-vs-batch parity\n"
      "  --no-sharded         skip P6 sharded-vs-unsharded byte parity\n"
      "  --no-policy          skip P7 windowed-policy never-optimistic +\n"
      "                       bounded-pessimism oracle\n"
      "  --no-mcmm            skip P8 corner-aware MCMM flat-parity oracle\n"
      "\n"
      "oracle mutation testing:\n"
      "  --inject KIND        none | falsify-mcp | drop-exceptions |\n"
      "                       shuffle-interned (injects a known merge bug;\n"
      "                       a healthy oracle must catch it)\n"
      "\n"
      "replay:\n"
      "  --case-seed N        check exactly one generated case\n"
      "  --replay DIR         replay a corpus case dir, or a root of case\n"
      "                       dirs (clean pass + injected re-catch)\n"
      "\n"
      "observability:\n"
      "  --stats-out FILE     write machine-readable run stats JSON\n"
      "  --journal-out FILE   write the mm.journal/1 decision journal for the\n"
      "                       whole run (per-repro journals are skipped)\n"
      "  --verbose            log at info level\n"
      "  --help, -h           this help (exit 0)\n");
}

[[noreturn]] void bad_arg(const char* flag, const char* text,
                          const char* expected) {
  std::fprintf(stderr,
               "modemerge_fuzz: invalid value for %s: '%s' (expected %s)\n",
               flag, text, expected);
  std::exit(2);
}

uint64_t parse_u64_arg(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      std::strchr(text, '-') != nullptr) {
    bad_arg(flag, text, "a non-negative integer");
  }
  return static_cast<uint64_t>(v);
}

void print_finding(const mm::fuzz::Finding& f, const mm::fuzz::FuzzOptions& opt) {
  size_t lines = 0;
  for (const std::string& text : f.repro.mode_sdc) {
    for (char ch : text) lines += ch == '\n';
  }
  std::printf("VIOLATION property=%s case_seed=%llu\n  %s\n",
              f.violation.property.c_str(),
              static_cast<unsigned long long>(f.repro.case_seed),
              f.violation.detail.c_str());
  std::printf("  minimized: %zu mode(s), %zu constraint line(s), %zu runs\n",
              f.repro.mode_sdc.size(), lines, f.minimize_runs);
  std::printf("  replay: modemerge_fuzz --case-seed %llu%s%s\n",
              static_cast<unsigned long long>(f.repro.case_seed),
              opt.inject == mm::merge::DebugMutation::kNone ? "" : " --inject ",
              opt.inject == mm::merge::DebugMutation::kNone
                  ? ""
                  : mm::fuzz::mutation_name(opt.inject));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;

  fuzz::FuzzOptions opt;
  std::string replay_dir;
  std::string stats_out;
  std::string journal_out;
  uint64_t case_seed = 0;
  bool have_case_seed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "modemerge_fuzz: %s requires a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") opt.seed = parse_u64_arg("--seed", value());
    else if (arg == "--iters")
      opt.iters = static_cast<size_t>(parse_u64_arg("--iters", value()));
    else if (arg == "--max-modes")
      opt.max_modes = static_cast<size_t>(parse_u64_arg("--max-modes", value()));
    else if (arg == "--max-regs")
      opt.max_regs = static_cast<size_t>(parse_u64_arg("--max-regs", value()));
    else if (arg == "--threads")
      opt.threads = static_cast<size_t>(parse_u64_arg("--threads", value()));
    else if (arg == "--corners") {
      const char* text = value();
      opt.max_corners = static_cast<size_t>(parse_u64_arg("--corners", text));
      if (opt.max_corners < 2) bad_arg("--corners", text, "an integer >= 2");
    }
    else if (arg == "--max-violations")
      opt.max_violations =
          static_cast<size_t>(parse_u64_arg("--max-violations", value()));
    else if (arg == "--corpus-dir") opt.corpus_dir = value();
    else if (arg == "--no-mutate") opt.mutate_sdc = false;
    else if (arg == "--no-batched-sta") opt.use_batched_sta = false;
    else if (arg == "--no-minimize") opt.minimize = false;
    else if (arg == "--no-equiv") opt.check_equiv = false;
    else if (arg == "--no-parity") opt.check_parity = false;
    else if (arg == "--no-idempotence") opt.check_idempotence = false;
    else if (arg == "--no-cover") opt.check_cover = false;
    else if (arg == "--no-incremental") opt.check_incremental = false;
    else if (arg == "--no-sharded") opt.check_sharded = false;
    else if (arg == "--no-policy") opt.check_policy = false;
    else if (arg == "--no-mcmm") opt.check_mcmm = false;
    else if (arg == "--inject") {
      const char* name = value();
      if (!fuzz::parse_mutation(name, &opt.inject)) {
        bad_arg("--inject", name,
                "none|falsify-mcp|drop-exceptions|shuffle-interned");
      }
    } else if (arg == "--case-seed") {
      case_seed = parse_u64_arg("--case-seed", value());
      have_case_seed = true;
    } else if (arg == "--replay") replay_dir = value();
    else if (arg == "--stats-out") stats_out = value();
    else if (arg == "--journal-out") journal_out = value();
    else if (arg == "--verbose") Logger::set_level(LogLevel::kInfo);
    else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (!journal_out.empty() && !obs::Journal::open(journal_out)) {
    std::fprintf(stderr, "error: cannot write %s\n", journal_out.c_str());
    return 1;
  }

  obs::StatsMeta meta;
  meta.strings["tool"] = "modemerge_fuzz";
  // Runs on every exit path (including caught errors) so failed runs keep
  // their decision trail.
  auto emit_stats = [&]() {
    if (!journal_out.empty()) {
      obs::Journal::close();
      std::fprintf(stderr, "wrote journal to %s (%llu events)\n",
                   journal_out.c_str(),
                   static_cast<unsigned long long>(
                       obs::Journal::events_appended()));
    }
    if (stats_out.empty()) return;
    if (obs::write_stats_json(stats_out, meta)) {
      std::fprintf(stderr, "wrote stats to %s\n", stats_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", stats_out.c_str());
    }
  };

  try {
    // --- corpus replay ----------------------------------------------------
    if (!replay_dir.empty()) {
      std::vector<std::string> dirs = fuzz::list_corpus(replay_dir);
      if (dirs.empty()) dirs.push_back(replay_dir);  // a single case dir
      size_t failed = 0;
      for (const std::string& dir : dirs) {
        const fuzz::ReplayResult r = fuzz::replay_corpus_case(dir, opt.threads);
        std::printf("%-50s %s\n", dir.c_str(),
                    r.ok() ? "ok" : ("FAIL: " + r.detail).c_str());
        failed += r.ok() ? 0 : 1;
      }
      std::printf("replayed %zu corpus case(s), %zu failure(s)\n", dirs.size(),
                  failed);
      meta.numbers["corpus_cases"] = static_cast<double>(dirs.size());
      meta.numbers["corpus_failures"] = static_cast<double>(failed);
      emit_stats();
      return failed == 0 ? 0 : 1;
    }

    // --- single-case replay ----------------------------------------------
    if (have_case_seed) {
      std::printf("case_seed: %llu (inject: %s)\n",
                  static_cast<unsigned long long>(case_seed),
                  fuzz::mutation_name(opt.inject));
      const fuzz::FuzzCase c = fuzz::generate_case(opt, case_seed);
      const fuzz::CheckResult res = fuzz::check_case(c, opt);
      if (!res.parsed) {
        std::printf("case rejected (unparsable after mutation): %s\n",
                    res.parse_error.c_str());
        emit_stats();
        return 0;
      }
      std::printf("%zu mode(s), %zu clique(s), %zu violation(s)\n",
                  c.mode_sdc.size(), res.cliques, res.violations.size());
      for (const fuzz::Violation& v : res.violations) {
        std::printf("VIOLATION property=%s\n  %s\n", v.property.c_str(),
                    v.detail.c_str());
      }
      emit_stats();
      return res.violations.empty() ? 0 : 1;
    }

    // --- the fuzz loop ----------------------------------------------------
    std::printf("seed: %llu (replay: modemerge_fuzz --seed %llu --iters %zu)\n",
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(opt.seed), opt.iters);
    if (opt.inject != merge::DebugMutation::kNone) {
      std::printf("injected mutation: %s (oracle self-test — violations are "
                  "the expected outcome)\n",
                  fuzz::mutation_name(opt.inject));
    }
    const fuzz::FuzzReport report = fuzz::run_fuzz(opt);
    std::printf(
        "%zu iteration(s) in %.1fs: %zu rejected, %zu mode(s) generated, "
        "%zu clique(s) checked, %zu violation(s)\n",
        report.iterations, report.seconds, report.rejected,
        report.modes_generated, report.cliques_checked,
        report.findings.size());
    for (const fuzz::Finding& f : report.findings) print_finding(f, opt);

    meta.numbers["seed"] = static_cast<double>(opt.seed);
    meta.numbers["iterations"] = static_cast<double>(report.iterations);
    meta.numbers["rejected"] = static_cast<double>(report.rejected);
    meta.numbers["violations"] = static_cast<double>(report.findings.size());
    meta.numbers["fuzz_seconds"] = report.seconds;
    emit_stats();
    return report.ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    meta.strings["error"] = e.what();
    emit_stats();
    return 1;
  }
}
