// mmreport — query mm observability artifacts offline.
//
//   mmreport explain --pair A B [--journal FILE]   why these modes (don't)
//                                                  merge, commit by commit
//   mmreport timeline [--journal FILE]             per-commit session history
//   mmreport profile --trace FILE [--top N]        top-N self-time table from
//                                                  a Chrome trace_event file
//
// The journal is the mm.journal/1 JSONL written by `modemerge --journal-out`
// (default path: journal.jsonl); the trace is the --trace-out output. Exit
// status: 0 on success, 1 on missing/malformed input or unknown mode names,
// 2 on bad command-line usage — the same contract as modemerge.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/journal_reader.h"
#include "util/error.h"

namespace {

constexpr const char* kVersion = "mmreport 1.0.0";

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: mmreport explain --pair A B [--journal FILE.jsonl]\n"
      "       mmreport timeline [--journal FILE.jsonl]\n"
      "       mmreport profile --trace FILE.json [--top N]\n"
      "\n"
      "  explain    render the merge-decision chain for one mode pair:\n"
      "             every re-check verdict with first-conflict provenance\n"
      "             (category, subject, reason) and clique placement\n"
      "  timeline   per-commit history: deltas -> pairs rechecked ->\n"
      "             cliques dirtied -> merged-SDC bytes rewritten\n"
      "  profile    aggregate Chrome trace spans into a self-time table\n"
      "\n"
      "  --journal FILE   mm.journal/1 file (default journal.jsonl)\n"
      "  --trace FILE     Chrome trace_event file (--trace-out output)\n"
      "  --pair A B       the two mode names to explain\n"
      "  --top N          rows in the profile table (default 20)\n"
      "  --help, -h       this help (exit 0)\n"
      "  --version        print version (exit 0)\n");
}

[[noreturn]] void bad_usage(const char* msg) {
  std::fprintf(stderr, "mmreport: %s\n", msg);
  usage(stderr);
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw mm::Error("cannot open: " + path);
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::string journal_path = "journal.jsonl";
  std::string trace_path;
  std::string pair_a, pair_b;
  size_t top_k = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) bad_usage((arg + " requires a value").c_str());
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--version") {
      std::printf("%s\n", kVersion);
      return 0;
    } else if (arg == "--journal") {
      journal_path = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--top") {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) {
        bad_usage("--top expects a positive integer");
      }
      top_k = static_cast<size_t>(v);
    } else if (arg == "--pair") {
      if (i + 2 >= argc) bad_usage("--pair requires two mode names");
      pair_a = argv[++i];
      pair_b = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      bad_usage(("unknown option: " + arg).c_str());
    } else if (command.empty()) {
      command = arg;
    } else {
      bad_usage(("unexpected argument: " + arg).c_str());
    }
  }

  if (command.empty()) bad_usage("missing command");

  try {
    if (command == "explain") {
      if (pair_a.empty() || pair_b.empty()) {
        bad_usage("explain requires --pair A B");
      }
      const mm::obs::JournalData journal = mm::obs::read_journal(journal_path);
      std::fputs(mm::obs::explain_pair(journal, pair_a, pair_b).c_str(),
                 stdout);
    } else if (command == "timeline") {
      const mm::obs::JournalData journal = mm::obs::read_journal(journal_path);
      std::fputs(mm::obs::render_timeline(journal).c_str(), stdout);
    } else if (command == "profile") {
      if (trace_path.empty()) bad_usage("profile requires --trace FILE");
      std::fputs(
          mm::obs::profile_report(read_file(trace_path), top_k).c_str(),
          stdout);
    } else {
      bad_usage(("unknown command: " + command).c_str());
    }
  } catch (const mm::Error& e) {
    std::fprintf(stderr, "mmreport: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
