// Unit tests for the SDC lexer: word splitting, braces, brackets, quotes,
// comments, continuations, error reporting.

#include <gtest/gtest.h>

#include "sdc/lexer.h"
#include "util/error.h"

namespace mm::sdc {
namespace {

TEST(Lexer, SimpleCommand) {
  const auto cmds = lex_sdc("create_clock -name clkA -period 10 clk1\n");
  ASSERT_EQ(cmds.size(), 1u);
  ASSERT_EQ(cmds[0].words.size(), 6u);
  EXPECT_EQ(cmds[0].words[0].text, "create_clock");
  EXPECT_EQ(cmds[0].words[5].text, "clk1");
}

TEST(Lexer, MultipleCommandsAndSemicolons) {
  const auto cmds = lex_sdc("a 1\nb 2; c 3\n");
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[1].words[0].text, "b");
  EXPECT_EQ(cmds[2].words[0].text, "c");
}

TEST(Lexer, Comments) {
  const auto cmds = lex_sdc("# full line comment\na 1 # trailing\nb 2\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].words.size(), 2u);
  EXPECT_EQ(cmds[0].words[0].text, "a");
}

TEST(Lexer, BraceGroup) {
  const auto cmds = lex_sdc("create_clock -waveform {0 5} x\n");
  ASSERT_EQ(cmds.size(), 1u);
  const Word& wf = cmds[0].words[2];
  EXPECT_EQ(wf.kind, Word::Kind::kBrace);
  ASSERT_EQ(wf.children.size(), 2u);
  EXPECT_EQ(wf.children[0].text, "0");
  EXPECT_EQ(wf.children[1].text, "5");
}

TEST(Lexer, BracketCommand) {
  const auto cmds = lex_sdc("set_false_path -to [get_pins rX/D]\n");
  const Word& br = cmds[0].words[2];
  EXPECT_EQ(br.kind, Word::Kind::kBracket);
  ASSERT_EQ(br.children.size(), 2u);
  EXPECT_EQ(br.children[0].text, "get_pins");
  EXPECT_EQ(br.children[1].text, "rX/D");
}

TEST(Lexer, NestedBracketsAndBraces) {
  const auto cmds = lex_sdc("cmd [get_pins {a b [get_c d]}]\n");
  const Word& br = cmds[0].words[1];
  ASSERT_EQ(br.children.size(), 2u);
  const Word& brace = br.children[1];
  EXPECT_EQ(brace.kind, Word::Kind::kBrace);
  ASSERT_EQ(brace.children.size(), 3u);
  EXPECT_EQ(brace.children[2].kind, Word::Kind::kBracket);
}

TEST(Lexer, QuotedStrings) {
  const auto cmds = lex_sdc("cmd -comment \"hello world\" x\n");
  ASSERT_EQ(cmds[0].words.size(), 4u);
  EXPECT_EQ(cmds[0].words[2].text, "hello world");
}

TEST(Lexer, LineContinuation) {
  const auto cmds = lex_sdc("create_clock \\\n  -period 10 clk\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].words.size(), 4u);
}

TEST(Lexer, NewlinesInsideBrackets) {
  const auto cmds = lex_sdc("cmd [get_pins \n  a/Z \n] end\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].words.size(), 3u);
  EXPECT_EQ(cmds[0].words[2].text, "end");
}

TEST(Lexer, UnterminatedBraceThrows) {
  EXPECT_THROW(lex_sdc("cmd {a b\n"), Error);
  EXPECT_THROW(lex_sdc("cmd [get_pins x\n"), Error);
  EXPECT_THROW(lex_sdc("cmd \"abc\n"), Error);
}

TEST(Lexer, LineNumbersInWords) {
  const auto cmds = lex_sdc("a 1\n\nb 2\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].line, 1);
  EXPECT_EQ(cmds[1].line, 3);
}

TEST(Lexer, EmptyInput) {
  EXPECT_TRUE(lex_sdc("").empty());
  EXPECT_TRUE(lex_sdc("\n\n# only comments\n").empty());
}

}  // namespace
}  // namespace mm::sdc
