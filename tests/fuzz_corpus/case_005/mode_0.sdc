create_clock -name TCLK -period 32 [get_ports tclk]
set_false_path -from [get_pins r41/CP]
