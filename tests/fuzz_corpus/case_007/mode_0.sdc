set_max_delay 4.5 -to [get_pins r2/D]
set_false_path -through [get_pins g4/Z]
