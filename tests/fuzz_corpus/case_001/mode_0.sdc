create_clock -name CLK2 -period 12 [get_ports clk2]
set_multicycle_path 2 -setup -through [get_pins r32/Q]
