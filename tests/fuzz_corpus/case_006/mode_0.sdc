create_clock -name CLK2 -period 12 [get_ports clk2]
set_false_path -through [get_pins g38/Z]
