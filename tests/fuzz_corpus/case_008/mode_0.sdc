set_false_path -through [get_pins g105/Z]
set_false_path -through [get_pins g60/Z]
