create_clock -name CLK1 -period 10 [get_ports clk1]
create_generated_clock -name GCLK2x4 -source [get_ports clk2] -divide_by 4 [get_pins cmux2/Z]
set_false_path -through [get_pins g78/Z]
