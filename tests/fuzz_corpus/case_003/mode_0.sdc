create_clock -name CLK2 -period 24 [get_ports clk2]
set_multicycle_path 2 -setup -through [get_pins r26/Q]
