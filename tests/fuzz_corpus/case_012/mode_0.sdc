set_input_transition 0.1 [get_ports di_0]
set_input_transition 0.11 [get_ports di_0]
