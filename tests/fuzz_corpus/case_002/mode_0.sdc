create_clock -name CLK1 -period 10 [get_ports clk1]
set_multicycle_path 2 -setup -through [get_pins r28/Q]
