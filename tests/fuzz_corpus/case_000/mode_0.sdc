create_generated_clock -name GCLK2x2 -source [get_ports clk2] -divide_by 2 [get_pins cmux2/Z]
set_multicycle_path 1.8 -setup -through [get_pins r50/Q]
