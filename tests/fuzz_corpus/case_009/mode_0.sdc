set_max_delay 5 -to [get_pins r3/D]
set_false_path -through [get_pins g38/Z]
