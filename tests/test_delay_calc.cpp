// Delay-calculation tests: slew boundary conditions, load dependence,
// determinism, and effect on STA slacks.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "timing/delay_calc.h"
#include "timing/sta.h"

namespace mm::timing {
namespace {

class DelayCalcTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }
};

TEST_F(DelayCalcTest, Deterministic) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const DelayCalcResult a = compute_delays(graph, sdc, 4);
  const DelayCalcResult b = compute_delays(graph, sdc, 4);
  EXPECT_EQ(a.arc_delay, b.arc_delay);
  EXPECT_EQ(a.pin_slew, b.pin_slew);
  // More iterations refine to the same feed-forward fixed point.
  const DelayCalcResult c = compute_delays(graph, sdc, 8);
  for (size_t i = 0; i < a.arc_delay.size(); ++i) {
    EXPECT_NEAR(a.arc_delay[i], c.arc_delay[i], 1e-9);
  }
}

TEST_F(DelayCalcTest, AllDelaysPositive) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const DelayCalcResult r = compute_delays(graph, sdc);
  for (size_t a = 0; a < graph.num_arcs(); ++a) {
    EXPECT_GT(r.arc_delay[a], 0.0) << a;
  }
}

TEST_F(DelayCalcTest, InputTransitionSlowsDownstreamArcs) {
  const sdc::Sdc fast = parse("set_input_transition 0.05 [get_ports in1]\n");
  const sdc::Sdc slow = parse("set_input_transition 2.0 [get_ports in1]\n");
  const DelayCalcResult rf = compute_delays(graph, fast);
  const DelayCalcResult rs = compute_delays(graph, slow);

  // Slews at in1's loads rise with the boundary transition...
  const PinId d = design.find_pin("rA/D");
  EXPECT_GT(rs.pin_slew[d.index()], rf.pin_slew[d.index()]);
  // ...and downstream cell-arc delays grow with input slew. rA/Q launch arc
  // is unaffected (clock side); check a comb arc in in1's cone instead:
  // in1's slew does not reach inv1 (register boundary), so compare a cell
  // arc fed by the port net: none exist (ports feed D pins). Check instead
  // that total slews never decrease anywhere.
  for (size_t i = 0; i < rf.pin_slew.size(); ++i) {
    EXPECT_GE(rs.pin_slew[i] + 1e-12, rf.pin_slew[i]) << i;
  }
}

TEST_F(DelayCalcTest, PortLoadSlowsDriverArc) {
  const sdc::Sdc light = parse("set_load 0.1 [get_ports out1]\n");
  const sdc::Sdc heavy = parse("set_load 20 [get_ports out1]\n");
  const DelayCalcResult rl = compute_delays(graph, light);
  const DelayCalcResult rh = compute_delays(graph, heavy);
  // rZ/Q drives out1: its launch arc (CP->Q) slows with the port load.
  const PinId cp = design.find_pin("rZ/CP");
  double dl = 0, dh = 0;
  for (ArcId aid : graph.fanout(cp)) {
    if (graph.arc(aid).kind == ArcKind::kLaunch) {
      dl = rl.arc_delay[aid.index()];
      dh = rh.arc_delay[aid.index()];
    }
  }
  EXPECT_GT(dh, dl);
}

TEST_F(DelayCalcTest, EarlyLateSplit) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const DelayCalcResult r = compute_delays(graph, sdc, 4, 0.85);
  ASSERT_EQ(r.arc_delay_min.size(), r.arc_delay.size());
  for (size_t i = 0; i < r.arc_delay.size(); ++i) {
    EXPECT_NEAR(r.arc_delay_min[i], 0.85 * r.arc_delay[i], 1e-12);
  }
}

TEST_F(DelayCalcTest, HoldUsesEarlyDelays) {
  // With the early/late split, the hold-side min arrival is strictly below
  // the setup-side max arrival; a min_delay bound between the two flags a
  // hold violation that a split-less analysis would miss.
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  ModeGraph mode(graph, sdc);
  CompiledExceptions exceptions(graph, sdc);
  const DelayCalcResult delays = compute_delays(graph, sdc, 2, 0.5);
  Propagator prop(mode, exceptions);
  PropagationOptions opts;
  opts.compute_arrivals = true;
  opts.analyze_hold = true;
  opts.arc_delays = &delays.arc_delay;
  opts.arc_delays_min = &delays.arc_delay_min;
  prop.run(opts);
  bool found = false;
  for (const Tag& tag : prop.tags()[design.find_pin("rY/D").index()]) {
    EXPECT_LT(tag.amin, tag.amax);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DelayCalcTest, HeavierLoadTightensStaSlack) {
  const sdc::Sdc light =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_output_delay 1 -clock c [get_ports out1]\n"
            "set_load 0.1 [get_ports out1]\n");
  const sdc::Sdc heavy =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_output_delay 1 -clock c [get_ports out1]\n"
            "set_load 20 [get_ports out1]\n");
  const StaResult rl = run_sta(graph, light);
  const StaResult rh = run_sta(graph, heavy);
  const uint32_t out = design.find_pin("out1").value();
  EXPECT_LT(rh.endpoint_slack.at(out), rl.endpoint_slack.at(out));
}

}  // namespace
}  // namespace mm::timing
