// mm::fuzz unit tests: generator determinism, the widened gen::mode_gen
// space (incl. duplicate-clock-name canonicalization), the SDC text
// mutator, the oracle's mutation-testing teeth, the delta-debugging
// minimizer, and corpus round-trips.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>

#include "fuzz/corpus.h"
#include "fuzz/fuzz.h"
#include "gen/mode_gen.h"
#include "util/rng.h"

namespace mm::fuzz {
namespace {

// --- determinism ------------------------------------------------------------

TEST(FuzzGenerate, SameCaseSeedSameCase) {
  FuzzOptions opt;
  const uint64_t cs = case_seed_for(7, 3);
  const FuzzCase a = generate_case(opt, cs);
  const FuzzCase b = generate_case(opt, cs);
  EXPECT_EQ(a.case_seed, b.case_seed);
  EXPECT_EQ(a.design.num_regs, b.design.num_regs);
  EXPECT_EQ(a.mode_names, b.mode_names);
  EXPECT_EQ(a.mode_sdc, b.mode_sdc);
}

TEST(FuzzGenerate, DifferentIterationsDiffer) {
  FuzzOptions opt;
  const FuzzCase a = generate_case(opt, case_seed_for(1, 0));
  const FuzzCase b = generate_case(opt, case_seed_for(1, 1));
  EXPECT_NE(a.mode_sdc, b.mode_sdc);
}

TEST(FuzzMutate, DeterministicInRng) {
  const std::string text =
      "create_clock -name CLK0 -period 10 [get_ports clk0]\n"
      "set_multicycle_path 2 -setup -to [get_pins r1/D]\n"
      "set_false_path -to [get_pins r2/D]\n"
      "set_max_delay 5 -to [get_pins r3/D]\n";
  util::Rng r1(42), r2(42), r3(43);
  const std::string a = mutate_sdc_text(text, r1);
  EXPECT_EQ(a, mutate_sdc_text(text, r2));
  // Not a strict guarantee for every seed pair, but a fixed regression
  // seed pair that must keep producing distinct mutants.
  EXPECT_NE(a, mutate_sdc_text(text, r3));
}

// --- widened gen::mode_gen space --------------------------------------------

TEST(ModeGenWidened, NoDuplicateClockNamesAcrossWidenedSpace) {
  // The widened space (generated clocks especially) used to be able to
  // pick the same (domain, divisor) twice within one mode, which made the
  // deck unparsable (duplicate create_generated_clock name) and the family
  // trivially unmergeable. mode_gen now canonicalizes: each clock name is
  // emitted at most once per mode.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    gen::DesignParams dp;
    dp.num_regs = 40;
    dp.num_domains = 3;
    dp.seed = seed;
    gen::ModeFamilyParams mp;
    mp.seed = seed;
    mp.num_modes = 4;
    mp.target_groups = 2;
    mp.gen_clocks = 3;  // > domains: duplicates would be inevitable
    mp.min_max_delays = 2;
    mp.disabled_arcs = 1;
    mp.randomize_case = true;
    mp.clock_group_style = seed % 4;
    for (const auto& gm : gen::generate_mode_family(dp, mp)) {
      std::map<std::string, int> names;
      std::istringstream is(gm.sdc_text);
      std::string line;
      while (std::getline(is, line)) {
        if (line.rfind("create_clock", 0) != 0 &&
            line.rfind("create_generated_clock", 0) != 0) {
          continue;
        }
        const size_t at = line.find("-name ");
        ASSERT_NE(at, std::string::npos) << line;
        std::istringstream rest(line.substr(at + 6));
        std::string name;
        rest >> name;
        EXPECT_EQ(++names[name], 1)
            << "mode " << gm.name << " seed " << seed
            << " emits duplicate clock " << name;
      }
    }
  }
}

TEST(ModeGenWidened, DefaultsUnchanged) {
  // The widened knobs default off; the historical Table-5 family must stay
  // byte-identical so benches and planted-clique tests keep their meaning.
  gen::DesignParams dp;
  dp.num_regs = 60;
  gen::ModeFamilyParams base;
  base.num_modes = 3;
  gen::ModeFamilyParams widened = base;  // all widened fields at defaults
  const auto a = gen::generate_mode_family(dp, base);
  const auto b = gen::generate_mode_family(dp, widened);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].sdc_text, b[i].sdc_text);
}

// --- the oracle -------------------------------------------------------------

TEST(FuzzOracle, CleanPipelinePassesSmoke) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.iters = 10;
  const FuzzReport report = run_fuzz(opt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations, 10u);
  EXPECT_GT(report.cliques_checked, 0u);
}

TEST(FuzzOracle, CatchesInjectedOptimism) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.iters = 50;
  opt.inject = merge::DebugMutation::kFalsifyMcp;
  // This test pins the *equivalence* oracle's catch + minimization bar; P7
  // also catches a falsified MCP (missing QoR endpoints) on earlier cases
  // and would steal the first finding.
  opt.check_policy = false;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_FALSE(report.findings.empty());
  const Finding& f = report.findings.front();
  EXPECT_EQ(f.violation.property, "equivalence");
  // The acceptance bar: minimized to <= 3 modes and <= 10 constraint lines.
  EXPECT_LE(f.repro.mode_sdc.size(), 3u);
  size_t lines = 0;
  for (const std::string& text : f.repro.mode_sdc) {
    for (char ch : text) lines += ch == '\n';
  }
  EXPECT_LE(lines, 10u);
  // The minimized case still violates, and only under the injection.
  FuzzOptions replay = opt;
  replay.minimize = false;
  EXPECT_FALSE(check_case(f.repro, replay).ok());
  replay.inject = merge::DebugMutation::kNone;
  EXPECT_TRUE(check_case(f.repro, replay).ok());
}

TEST(FuzzOracle, CatchesInjectedParityBreak) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.iters = 50;
  opt.inject = merge::DebugMutation::kShuffleInterned;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().violation.property, "parity");
  // Flag attribution names the interned-key path.
  EXPECT_NE(report.findings.front().violation.detail.find("use_interned_keys"),
            std::string::npos);
}

TEST(FuzzMinimize, ShrinksWhilePreservingViolation) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.inject = merge::DebugMutation::kDropExceptions;
  opt.minimize = false;
  // Find a violating case first.
  FuzzCase found;
  bool have = false;
  for (uint64_t i = 0; i < 50 && !have; ++i) {
    const FuzzCase c = generate_case(opt, case_seed_for(opt.seed, i));
    const CheckResult r = check_case(c, opt);
    if (r.parsed && !r.violations.empty()) {
      found = c;
      have = true;
    }
  }
  ASSERT_TRUE(have);
  size_t runs = 0;
  const FuzzCase small = minimize_case(found, opt, "equivalence", &runs);
  EXPECT_GT(runs, 0u);
  EXPECT_LE(small.mode_sdc.size(), found.mode_sdc.size());
  const CheckResult r = check_case(small, opt);
  ASSERT_TRUE(r.parsed);
  EXPECT_FALSE(r.violations.empty());
}

// --- corpus -----------------------------------------------------------------

TEST(FuzzCorpus, WriteReadReplayRoundTrip) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.iters = 50;
  opt.inject = merge::DebugMutation::kFalsifyMcp;
  // Round-trips an equivalence finding specifically (P7 would catch the
  // falsified MCP first, see FuzzOracle.CatchesInjectedOptimism).
  opt.check_policy = false;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_FALSE(report.findings.empty());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "mm_fuzz_corpus_test" /
       "case_000")
          .string();
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "mm_fuzz_corpus_test");
  write_corpus_case(dir, report.findings.front());

  const Finding back = read_corpus_case(dir);
  EXPECT_EQ(back.repro.case_seed, report.findings.front().repro.case_seed);
  EXPECT_EQ(back.repro.mode_sdc, report.findings.front().repro.mode_sdc);
  EXPECT_EQ(back.violation.property, "equivalence");
  EXPECT_EQ(back.inject, merge::DebugMutation::kFalsifyMcp);

  const auto dirs = list_corpus(
      (std::filesystem::temp_directory_path() / "mm_fuzz_corpus_test")
          .string());
  ASSERT_EQ(dirs.size(), 1u);

  // Clean replay passes; injected replay is still caught.
  const ReplayResult r = replay_corpus_case(dir);
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST(FuzzCorpus, MutationNamesRoundTrip) {
  using merge::DebugMutation;
  for (DebugMutation m :
       {DebugMutation::kNone, DebugMutation::kFalsifyMcp,
        DebugMutation::kDropExceptions, DebugMutation::kShuffleInterned}) {
    DebugMutation out = DebugMutation::kNone;
    EXPECT_TRUE(parse_mutation(mutation_name(m), &out));
    EXPECT_EQ(out, m);
  }
  DebugMutation out;
  EXPECT_FALSE(parse_mutation("bogus", &out));
}

}  // namespace
}  // namespace mm::fuzz
