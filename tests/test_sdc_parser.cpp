// Unit tests for the SDC parser and object queries, against the paper's
// Figure-1 circuit.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "util/error.h"

namespace mm::sdc {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);

  Sdc parse(const std::string& text) { return parse_sdc(text, design); }
};

TEST_F(ParserTest, CreateClock) {
  Sdc sdc = parse("create_clock -name clkA -period 10 [get_ports clk1]\n");
  ASSERT_EQ(sdc.num_clocks(), 1u);
  const Clock& c = sdc.clock(ClockId(0u));
  EXPECT_EQ(c.name, "clkA");
  EXPECT_DOUBLE_EQ(c.period, 10.0);
  ASSERT_EQ(c.waveform.size(), 2u);
  EXPECT_DOUBLE_EQ(c.waveform[1], 5.0);
  ASSERT_EQ(c.sources.size(), 1u);
  EXPECT_EQ(design.pin_name(c.sources[0]), "clk1");
  EXPECT_FALSE(c.add);
}

TEST_F(ParserTest, CreateClockWaveformAndAdd) {
  Sdc sdc = parse(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 10 -waveform {2 7} -add [get_ports clk1]\n");
  const Clock& b = sdc.clock(sdc.find_clock("b"));
  EXPECT_TRUE(b.add);
  EXPECT_DOUBLE_EQ(b.waveform[0], 2.0);
  EXPECT_DOUBLE_EQ(b.waveform[1], 7.0);
}

TEST_F(ParserTest, VirtualClock) {
  Sdc sdc = parse("create_clock -name vclk -period 8\n");
  EXPECT_TRUE(sdc.clock(sdc.find_clock("vclk")).is_virtual());
}

TEST_F(ParserTest, ClockNamedAfterPort) {
  Sdc sdc = parse("create_clock -period 5 [get_ports clk1]\n");
  EXPECT_TRUE(sdc.find_clock("clk1").valid());
}

TEST_F(ParserTest, DuplicateClockNameThrows) {
  EXPECT_THROW(parse("create_clock -name c -period 1 [get_ports clk1]\n"
                     "create_clock -name c -period 2 [get_ports clk2]\n"),
               Error);
}

TEST_F(ParserTest, GeneratedClock) {
  Sdc sdc = parse(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "create_generated_clock -name gen1 -source [get_ports clk1] "
      "-divide_by 2 [get_pins mux1/Z]\n");
  const Clock& g = sdc.clock(sdc.find_clock("gen1"));
  EXPECT_TRUE(g.is_generated);
  EXPECT_EQ(g.divide_by, 2);
  EXPECT_EQ(g.master_clock, "clkA");
  EXPECT_DOUBLE_EQ(g.period, 20.0);
}

TEST_F(ParserTest, ClockLatencyUncertaintyTransition) {
  Sdc sdc = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_latency 0.5 [get_clocks c]\n"
      "set_clock_latency -source -max 0.7 [get_clocks c]\n"
      "set_clock_uncertainty -setup 0.2 [get_clocks c]\n"
      "set_clock_transition -min 0.1 [get_clocks c]\n");
  ASSERT_EQ(sdc.clock_latencies().size(), 2u);
  EXPECT_FALSE(sdc.clock_latencies()[0].source);
  EXPECT_TRUE(sdc.clock_latencies()[0].minmax.min);
  EXPECT_TRUE(sdc.clock_latencies()[0].minmax.max);
  EXPECT_TRUE(sdc.clock_latencies()[1].source);
  EXPECT_FALSE(sdc.clock_latencies()[1].minmax.min);
  ASSERT_EQ(sdc.clock_uncertainties().size(), 1u);
  EXPECT_TRUE(sdc.clock_uncertainties()[0].setup_hold.setup);
  EXPECT_FALSE(sdc.clock_uncertainties()[0].setup_hold.hold);
  ASSERT_EQ(sdc.clock_transitions().size(), 1u);
}

TEST_F(ParserTest, PropagatedClock) {
  Sdc sdc = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_propagated_clock [get_clocks c]\n");
  EXPECT_TRUE(sdc.clock(ClockId(0u)).propagated);
}

TEST_F(ParserTest, IoDelays) {
  Sdc sdc = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_input_delay 2.0 -clock c [get_ports in1]\n"
      "set_output_delay 1.5 -clock c -add_delay -max [get_ports out1]\n");
  ASSERT_EQ(sdc.port_delays().size(), 2u);
  const PortDelay& in = sdc.port_delays()[0];
  EXPECT_TRUE(in.is_input);
  EXPECT_DOUBLE_EQ(in.value, 2.0);
  EXPECT_TRUE(in.clock.valid());
  const PortDelay& out = sdc.port_delays()[1];
  EXPECT_FALSE(out.is_input);
  EXPECT_TRUE(out.add_delay);
  EXPECT_FALSE(out.minmax.min);
}

TEST_F(ParserTest, IoDelayOnNonPortThrows) {
  EXPECT_THROW(parse("create_clock -name c -period 10 [get_ports clk1]\n"
                     "set_input_delay 1 -clock c [get_pins rA/D]\n"),
               Error);
}

TEST_F(ParserTest, CaseAnalysis) {
  Sdc sdc = parse(
      "set_case_analysis 0 sel1\n"
      "set_case_analysis 1 [get_pins mux1/S]\n");
  ASSERT_EQ(sdc.case_analysis().size(), 2u);
  EXPECT_EQ(sdc.case_value(design.find_pin("sel1")), netlist::Logic::kZero);
  EXPECT_EQ(sdc.case_value(design.find_pin("mux1/S")), netlist::Logic::kOne);
  EXPECT_EQ(sdc.case_value(design.find_pin("sel2")), netlist::Logic::kUnknown);
}

TEST_F(ParserTest, BadCaseValueThrows) {
  EXPECT_THROW(parse("set_case_analysis 2 sel1\n"), Error);
}

TEST_F(ParserTest, DisableTiming) {
  Sdc sdc = parse(
      "set_disable_timing [get_pins and1/A]\n"
      "set_disable_timing [get_cells mux1] -from A -to Z\n");
  ASSERT_EQ(sdc.disables().size(), 2u);
  EXPECT_TRUE(sdc.disables()[0].pin.valid());
  EXPECT_TRUE(sdc.disables()[1].inst.valid());
  EXPECT_NE(sdc.disables()[1].from_lib_pin, UINT32_MAX);
}

TEST_F(ParserTest, Exceptions) {
  Sdc sdc = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -from [get_pins rA/CP] -to [get_pins rY/D]\n"
      "set_multicycle_path 2 -setup -through [get_pins inv1/Z]\n"
      "set_max_delay 5.5 -from [get_clocks c] -to [get_pins rZ/D]\n"
      "set_min_delay 0.5 -to [get_pins rX/D]\n");
  ASSERT_EQ(sdc.exceptions().size(), 4u);
  const Exception& fp = sdc.exceptions()[0];
  EXPECT_EQ(fp.kind, ExceptionKind::kFalsePath);
  ASSERT_EQ(fp.from.pins.size(), 1u);
  ASSERT_EQ(fp.to.pins.size(), 1u);
  const Exception& mcp = sdc.exceptions()[1];
  EXPECT_EQ(mcp.kind, ExceptionKind::kMulticyclePath);
  EXPECT_DOUBLE_EQ(mcp.value, 2.0);
  EXPECT_TRUE(mcp.setup_hold.setup);
  EXPECT_FALSE(mcp.setup_hold.hold);
  ASSERT_EQ(mcp.throughs.size(), 1u);
  const Exception& md = sdc.exceptions()[2];
  ASSERT_EQ(md.from.clocks.size(), 1u);
  EXPECT_EQ(md.from.pins.size(), 0u);
}

TEST_F(ParserTest, MultipleThroughsAreOrdered) {
  Sdc sdc = parse(
      "set_false_path -through [get_pins inv1/Z] -through [get_pins and1/Z]\n");
  const Exception& ex = sdc.exceptions()[0];
  ASSERT_EQ(ex.throughs.size(), 2u);
  EXPECT_EQ(design.pin_name(ex.throughs[0].pins[0]), "inv1/Z");
  EXPECT_EQ(design.pin_name(ex.throughs[1].pins[0]), "and1/Z");
}

TEST_F(ParserTest, PaperShorthandBareBracket) {
  // The paper writes "[and1/Z]" — not a real query command.
  Sdc sdc = parse("set_false_path -through [and1/Z]\n");
  ASSERT_EQ(sdc.exceptions()[0].throughs.size(), 1u);
  EXPECT_EQ(design.pin_name(sdc.exceptions()[0].throughs[0].pins[0]), "and1/Z");
}

TEST_F(ParserTest, ExceptionWithoutAnchorsThrows) {
  EXPECT_THROW(parse("set_false_path\n"), Error);
  EXPECT_THROW(parse("set_multicycle_path 0 -to [get_pins rX/D]\n"), Error);
}

TEST_F(ParserTest, ClockGroups) {
  Sdc sdc = parse(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 [get_ports clk2]\n"
      "set_clock_groups -physically_exclusive -name g1 -group [get_clocks a] "
      "-group [get_clocks b]\n");
  ASSERT_EQ(sdc.clock_groups().size(), 1u);
  EXPECT_TRUE(sdc.clocks_exclusive(ClockId(0u), ClockId(1u)));
  EXPECT_FALSE(sdc.clocks_async(ClockId(0u), ClockId(1u)));
}

TEST_F(ParserTest, ClockGroupsSingleGroupComplement) {
  Sdc sdc = parse(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 [get_ports clk2]\n"
      "set_clock_groups -asynchronous -group [get_clocks a]\n");
  EXPECT_TRUE(sdc.clocks_async(ClockId(0u), ClockId(1u)));
}

TEST_F(ParserTest, ClockSenseStop) {
  Sdc sdc = parse(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_clock_sense -stop_propagation -clock [get_clocks a] "
      "[get_pins mux1/Z]\n");
  ASSERT_EQ(sdc.clock_sense_stops().size(), 1u);
  EXPECT_EQ(design.pin_name(sdc.clock_sense_stops()[0].pin), "mux1/Z");
}

TEST_F(ParserTest, DriveAndLoad) {
  Sdc sdc = parse(
      "set_input_transition 0.3 [get_ports in1]\n"
      "set_drive 1.2 [get_ports sel1]\n"
      "set_driving_cell -lib_cell BUF [get_ports sel2]\n"
      "set_load 4.0 [get_ports out1]\n");
  ASSERT_EQ(sdc.drives().size(), 3u);
  EXPECT_TRUE(sdc.drives()[0].is_transition);
  EXPECT_FALSE(sdc.drives()[1].is_transition);
  ASSERT_EQ(sdc.loads().size(), 1u);
  EXPECT_DOUBLE_EQ(sdc.loads()[0].value, 4.0);
}

TEST_F(ParserTest, DesignRules) {
  Sdc sdc = parse(
      "set_max_transition 0.5\n"
      "set_max_transition 0.3 [get_ports in1]\n"
      "set_max_capacitance 2.0 [get_ports out1]\n");
  ASSERT_EQ(sdc.design_rules().size(), 3u);
  EXPECT_FALSE(sdc.design_rules()[0].port_pin.valid());  // design-wide
  EXPECT_DOUBLE_EQ(sdc.design_rules()[0].value, 0.5);
  EXPECT_TRUE(sdc.design_rules()[1].port_pin.valid());
  EXPECT_EQ(sdc.design_rules()[2].kind, DesignRule::Kind::kMaxCapacitance);
}

TEST_F(ParserTest, EnvironmentCommandsAccepted) {
  // Sign-off decks routinely carry these; they must parse as no-ops.
  Sdc sdc = parse(
      "set_units -time ns -capacitance pF\n"
      "set_operating_conditions -max slow_corner\n"
      "set_wire_load_model -name big_wlm\n"
      "set_wire_load_mode enclosed\n"
      "current_design top\n"
      "set_ideal_network [get_ports sel1]\n"
      "set_max_fanout 32 [get_ports in1]\n"
      "create_clock -name c -period 10 [get_ports clk1]\n");
  EXPECT_EQ(sdc.num_clocks(), 1u);  // the real constraint still landed
}

TEST_F(ParserTest, Globbing) {
  Sdc sdc = parse("set_case_analysis 0 [get_ports sel*]\n");
  EXPECT_EQ(sdc.case_analysis().size(), 2u);
}

TEST_F(ParserTest, NoMatchThrows) {
  EXPECT_THROW(parse("set_case_analysis 0 [get_ports nosuch*]\n"), Error);
  EXPECT_THROW(parse("set_case_analysis 0 [get_pins missing/Z]\n"), Error);
}

TEST_F(ParserTest, UnknownCommandThrows) {
  EXPECT_THROW(parse("set_magic_constraint 1\n"), Error);
}

TEST_F(ParserTest, UnknownOptionThrows) {
  EXPECT_THROW(parse("create_clock -name c -period 10 -frobnicate x\n"), Error);
}

TEST_F(ParserTest, ErrorsCarryLineNumbers) {
  try {
    parse("create_clock -name c -period 10 [get_ports clk1]\n"
          "set_case_analysis 5 sel1\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("sdc:2"), std::string::npos)
        << e.what();
  }
}

TEST_F(ParserTest, NegativeValuesAreNotOptions) {
  Sdc sdc = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_input_delay -0.5 -clock c [get_ports in1]\n");
  EXPECT_DOUBLE_EQ(sdc.port_delays()[0].value, -0.5);
}

TEST_F(ParserTest, AllQueries) {
  Sdc sdc = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_input_delay 1 -clock c [all_inputs]\n"
      "set_output_delay 1 -clock c [all_outputs]\n"
      "set_false_path -from [all_registers -clock_pins] -to [get_pins rZ/D]\n");
  // 5 input ports get delays, 1 output port.
  size_t inputs = 0, outputs = 0;
  for (const PortDelay& pd : sdc.port_delays()) {
    (pd.is_input ? inputs : outputs)++;
  }
  EXPECT_EQ(inputs, 5u);
  EXPECT_EQ(outputs, 1u);
  EXPECT_EQ(sdc.exceptions()[0].from.pins.size(), 6u);  // 6 registers
}

}  // namespace
}  // namespace mm::sdc
