// Report module tests: path traceback correctness, clock reports,
// relationship tables.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "timing/report.h"

namespace mm::timing {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }
};

TEST_F(ReportTest, SetupReportTracesWorstPath) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 1 [get_ports clk1]\n");
  const std::string report = report_timing(graph, sdc, {.max_paths = 1});
  // The worst path is the 3-level rY cone: rB or rA through and1/inv2.
  EXPECT_NE(report.find("Endpoint: rY/D"), std::string::npos) << report;
  EXPECT_NE(report.find("inv2/Z"), std::string::npos) << report;
  EXPECT_NE(report.find("and1/"), std::string::npos) << report;
  EXPECT_NE(report.find("VIOLATED"), std::string::npos) << report;
  EXPECT_NE(report.find("Launch clock: c"), std::string::npos) << report;
}

TEST_F(ReportTest, PathArrivalsAreMonotone) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const std::string report = report_timing(graph, sdc, {.max_paths = 3});
  // Every traceback line's "path" column must be non-decreasing; verify by
  // scanning the numeric last column per block.
  std::istringstream is(report);
  std::string line;
  double prev = -1e9;
  while (std::getline(is, line)) {
    if (line.find("Endpoint:") != std::string::npos) prev = -1e9;
    std::istringstream ls(line);
    std::string point;
    double incr, path;
    if (ls >> point >> incr >> path) {
      if (point.find('/') == std::string::npos && point != "clk1") continue;
      EXPECT_GE(path + 1e-9, prev) << line;
      prev = path;
    }
  }
}

TEST_F(ReportTest, FalsePathedTagsAreNotTraced) {
  // rA->rY is false-pathed; the rY/D report must trace the (timed) rB
  // path even though the rA tag has the later arrival.
  const sdc::Sdc sdc =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_false_path -from [get_pins rA/CP] -to [get_pins rY/D]\n");
  const std::string report = report_timing(graph, sdc, {.max_paths = 3});
  // Locate the rY/D block and check its startpoint.
  const size_t block = report.find("Endpoint: rY/D");
  ASSERT_NE(block, std::string::npos) << report;
  const size_t next = report.find("Endpoint:", block + 1);
  const std::string ry = report.substr(block, next - block);
  EXPECT_NE(ry.find("rB/CP"), std::string::npos) << ry;
  EXPECT_EQ(ry.find("rA/CP"), std::string::npos) << ry;
}

TEST_F(ReportTest, HoldReportUsesMinPaths) {
  const sdc::Sdc sdc =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_min_delay 100 -to [get_pins rX/D]\n");
  const std::string report =
      report_timing(graph, sdc, {.max_paths = 1, .hold = true});
  EXPECT_NE(report.find("Hold timing report"), std::string::npos);
  EXPECT_NE(report.find("Endpoint: rX/D"), std::string::npos) << report;
  EXPECT_NE(report.find("VIOLATED"), std::string::npos) << report;
}

TEST_F(ReportTest, MaxPathsRespected) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const std::string one = report_timing(graph, sdc, {.max_paths = 1});
  const std::string three = report_timing(graph, sdc, {.max_paths = 3});
  auto count = [](const std::string& s, const char* needle) {
    size_t n = 0, pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  EXPECT_EQ(count(one, "Endpoint:"), 1u);
  EXPECT_EQ(count(three, "Endpoint:"), 3u);
}

TEST_F(ReportTest, ClockReport) {
  const sdc::Sdc sdc = parse(
      "create_clock -name fast -period 2 [get_ports clk1]\n"
      "create_clock -name slow -period 8 [get_ports clk2]\n"
      "set_propagated_clock [get_clocks fast]\n"
      "set_clock_groups -asynchronous -group [get_clocks fast] "
      "-group [get_clocks slow]\n");
  const std::string report = report_clocks(graph, sdc);
  EXPECT_NE(report.find("fast: period 2"), std::string::npos) << report;
  EXPECT_NE(report.find("propagated"), std::string::npos);
  EXPECT_NE(report.find("group(async)"), std::string::npos);
  // fast reaches rA/rB/rC directly + rX/rY/rZ through the mux: 6 pins.
  EXPECT_NE(report.find("6 register clock pin(s)"), std::string::npos)
      << report;
}

TEST_F(ReportTest, VirtualClockReport) {
  const sdc::Sdc sdc = parse("create_clock -name v -period 5\n");
  const std::string report = report_clocks(graph, sdc);
  EXPECT_NE(report.find("virtual"), std::string::npos);
}

TEST_F(ReportTest, RelationsTable) {
  const sdc::Sdc sdc = parse(gen::constraint_sets::kSet1);
  const std::string report = report_relations(graph, sdc);
  EXPECT_NE(report.find("rX/D"), std::string::npos) << report;
  EXPECT_NE(report.find("MCP(2)"), std::string::npos) << report;
  EXPECT_NE(report.find("{FP}"), std::string::npos) << report;
}

TEST_F(ReportTest, RelationsTableRowCap) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const std::string report = report_relations(graph, sdc, 1);
  EXPECT_NE(report.find("more)"), std::string::npos) << report;
}

}  // namespace
}  // namespace mm::timing
