// Unit tests for src/netlist: library cells, logic evaluation, design
// construction, connectivity and the structural checker.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "netlist/builder.h"
#include "netlist/design.h"

namespace mm::netlist {
namespace {

class LibraryTest : public ::testing::Test {
 protected:
  Library lib = Library::builtin();
};

TEST_F(LibraryTest, BuiltinHasAllCells) {
  for (const char* name :
       {cells::kBuf, cells::kInv, cells::kAnd2, cells::kNand2, cells::kOr2,
        cells::kNor2, cells::kXor2, cells::kXnor2, cells::kMux2, cells::kTieLo,
        cells::kTieHi, cells::kDff, cells::kSdff, cells::kIcg}) {
    EXPECT_TRUE(lib.find_cell(name).valid()) << name;
  }
}

TEST_F(LibraryTest, DffStructure) {
  const LibCell& dff = lib.cell(lib.find_cell(cells::kDff));
  EXPECT_TRUE(dff.is_sequential());
  EXPECT_TRUE(dff.pins()[dff.pin_index("CP")].is_clock);
  EXPECT_FALSE(dff.pins()[dff.pin_index("D")].is_clock);
  // One launch arc + one setup check.
  size_t launch = 0, checks = 0;
  for (const LibArc& arc : dff.arcs()) {
    if (arc.kind == ArcKind::kLaunch) ++launch;
    if (arc.kind == ArcKind::kSetupHold) ++checks;
  }
  EXPECT_EQ(launch, 1u);
  EXPECT_EQ(checks, 1u);
}

TEST_F(LibraryTest, EvaluateAnd) {
  const LibCell& cell = lib.cell(lib.find_cell(cells::kAnd2));
  using L = Logic;
  auto eval = [&](L a, L b) {
    std::vector<L> v{a, b, L::kUnknown};
    return cell.evaluate(v);
  };
  EXPECT_EQ(eval(L::kZero, L::kUnknown), L::kZero);   // controlling value
  EXPECT_EQ(eval(L::kOne, L::kOne), L::kOne);
  EXPECT_EQ(eval(L::kOne, L::kUnknown), L::kUnknown);
}

TEST_F(LibraryTest, EvaluateNorXor) {
  using L = Logic;
  const LibCell& nor2 = lib.cell(lib.find_cell(cells::kNor2));
  std::vector<L> v{L::kOne, L::kUnknown, L::kUnknown};
  EXPECT_EQ(nor2.evaluate(v), L::kZero);  // 1 controls NOR
  const LibCell& xor2 = lib.cell(lib.find_cell(cells::kXor2));
  v = {L::kOne, L::kUnknown, L::kUnknown};
  EXPECT_EQ(xor2.evaluate(v), L::kUnknown);  // XOR has no controlling value
  v = {L::kOne, L::kOne, L::kUnknown};
  EXPECT_EQ(xor2.evaluate(v), L::kZero);
}

TEST_F(LibraryTest, EvaluateMux) {
  using L = Logic;
  const LibCell& mux = lib.cell(lib.find_cell(cells::kMux2));
  // Pin order A, B, S, Z.
  std::vector<L> v{L::kOne, L::kZero, L::kZero, L::kUnknown};
  EXPECT_EQ(mux.evaluate(v), L::kOne);  // S=0 -> A
  v[2] = L::kOne;
  EXPECT_EQ(mux.evaluate(v), L::kZero);  // S=1 -> B
  v[2] = L::kUnknown;
  EXPECT_EQ(mux.evaluate(v), L::kUnknown);  // unknown select, A != B
  v[1] = L::kOne;
  EXPECT_EQ(mux.evaluate(v), L::kOne);  // unknown select but A == B
}

TEST_F(LibraryTest, EvaluateIcg) {
  using L = Logic;
  const LibCell& icg = lib.cell(lib.find_cell(cells::kIcg));
  std::vector<L> v{L::kUnknown, L::kZero, L::kUnknown};  // CK, EN, GCLK
  EXPECT_EQ(icg.evaluate(v), L::kZero);  // EN=0 kills the clock
  v[1] = L::kOne;
  EXPECT_EQ(icg.evaluate(v), L::kUnknown);
}

TEST_F(LibraryTest, TieCells) {
  using L = Logic;
  std::vector<L> v{L::kUnknown};
  EXPECT_EQ(lib.cell(lib.find_cell(cells::kTieLo)).evaluate(v), L::kZero);
  EXPECT_EQ(lib.cell(lib.find_cell(cells::kTieHi)).evaluate(v), L::kOne);
}

// --- design ------------------------------------------------------------------

class DesignTest : public ::testing::Test {
 protected:
  Library lib = Library::builtin();
};

TEST_F(DesignTest, BuildAndLookup) {
  Design d("t", &lib);
  Builder b(&d);
  b.input("a");
  b.input("b");
  b.output("z");
  b.inst("AND2", "u1", {{"A", "a"}, {"B", "b"}, {"Z", "z"}});

  EXPECT_EQ(d.num_ports(), 3u);
  EXPECT_EQ(d.num_instances(), 1u);
  EXPECT_TRUE(d.find_pin("u1/A").valid());
  EXPECT_TRUE(d.find_pin("a").valid());
  EXPECT_FALSE(d.find_pin("u1/X").valid());
  EXPECT_EQ(d.pin_name(d.find_pin("u1/Z")), "u1/Z");

  // Net connectivity: 'a' driven by the input port, loading u1/A.
  const Net& net = d.net(d.find_net("a"));
  EXPECT_EQ(net.driver, d.port(d.find_port("a")).pin);
  ASSERT_EQ(net.loads.size(), 1u);
  EXPECT_EQ(net.loads[0], d.find_pin("u1/A"));
}

TEST_F(DesignTest, DirectionSemantics) {
  Design d("t", &lib);
  Builder b(&d);
  b.input("a");
  b.output("z");
  b.inst("BUF", "u1", {{"A", "a"}, {"Z", "z"}});
  EXPECT_TRUE(d.pin_drives_net(d.port(d.find_port("a")).pin));
  EXPECT_FALSE(d.pin_drives_net(d.port(d.find_port("z")).pin));
  EXPECT_TRUE(d.pin_drives_net(d.find_pin("u1/Z")));
  EXPECT_FALSE(d.pin_drives_net(d.find_pin("u1/A")));
}

TEST_F(DesignTest, DuplicateNamesThrow) {
  Design d("t", &lib);
  Builder b(&d);
  b.input("a");
  EXPECT_THROW(d.add_port("a", PinDir::kInput), Error);
  b.inst("BUF", "u1", {{"A", "a"}, {"Z", "x"}});
  EXPECT_THROW(d.add_instance("u1", lib.find_cell("BUF")), Error);
}

TEST_F(DesignTest, MultipleDriversThrow) {
  Design d("t", &lib);
  Builder b(&d);
  b.input("a");
  b.inst("BUF", "u1", {{"A", "a"}, {"Z", "n"}});
  EXPECT_THROW(b.inst("BUF", "u2", {{"A", "a"}, {"Z", "n"}}), Error);
}

TEST_F(DesignTest, CheckerFlagsFloatingInput) {
  Design d("t", &lib);
  Builder b(&d);
  b.input("a");
  d.add_instance("u1", lib.find_cell("AND2"));
  d.connect(d.find_instance("u1"), "A", d.find_net("a"));
  // B left floating.
  const CheckReport report = check_design(d);
  EXPECT_TRUE(report.ok());  // floating input is a warning, not an error
  bool found = false;
  for (const std::string& w : report.warnings) {
    if (w.find("u1/B") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DesignTest, PaperCircuitIsClean) {
  Design d = gen::paper_circuit(lib);
  EXPECT_EQ(d.num_instances(), 13u);  // 6 regs, or1, mux1, 3 inv, 2 and
  const CheckReport report = check_design(d);
  EXPECT_TRUE(report.ok());
  for (const char* pin :
       {"rA/Q", "rB/CP", "rX/D", "inv1/Z", "and1/Z", "mux1/S", "inv3/A"}) {
    EXPECT_TRUE(d.find_pin(pin).valid()) << pin;
  }
}

}  // namespace
}  // namespace mm::netlist
