// merge/keys: the interned KeyId layer against its string-keyed reference.
//
// The CanonicalKeyTable interns exactly the strings the string path builds,
// so every comparison the engine makes on KeyIds must agree with the same
// comparison on strings — and the two engine paths
// (MergeOptions::use_interned_keys on/off) must produce byte-identical
// mergeability graphs, reason strings, clique covers, and merged-SDC text.
// This file asserts both levels: key-layer unit semantics (generated
// clocks, duplicate-waveform dedup, name-collision rename) and whole-engine
// parity on the paper example plus 32/64-mode generated families.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "gen/paper_circuit.h"
#include "merge/context.h"
#include "merge/keys.h"
#include "merge/merger.h"
#include "merge/mergeability.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/graph.h"

namespace mm::merge {
namespace {

class KeysTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  static MergeOptions options_for(bool interned) {
    MergeOptions options;
    options.use_interned_keys = interned;
    return options;
  }
};

// ---------------------------------------------------------------------------
// CanonicalKeyTable semantics.

TEST_F(KeysTest, TableInternsBijectively) {
  CanonicalKeyTable table;
  const KeyId a = table.intern("alpha");
  const KeyId b = table.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.intern("alpha"), a);
  EXPECT_EQ(table.str(a), "alpha");
  EXPECT_EQ(table.str(b), "beta");
  EXPECT_EQ(table.num_keys(), 2u);
  EXPECT_GE(table.bytes(), std::string("alpha").size());
}

TEST_F(KeysTest, ClockKeyIdMatchesStringKey) {
  sdc::Sdc mode = parse(
      "create_clock -name c1 -period 10 [get_ports clk1]\n"
      "create_clock -name c2 -period 20 [get_ports clk2]\n");
  CanonicalKeyTable table;
  for (size_t i = 0; i < mode.num_clocks(); ++i) {
    const ClockId id{i};
    EXPECT_EQ(table.str(table.clock_key_id(mode, id)), clock_key(mode, id));
  }
  // mode_clock_key_ids is the interned image of mode_clock_keys.
  std::set<std::string> from_ids;
  for (KeyId k : table.mode_clock_key_ids(mode)) from_ids.insert(table.str(k));
  EXPECT_EQ(from_ids, mode_clock_keys(mode));
}

TEST_F(KeysTest, KeySetDisjointAgreesWithStringPath) {
  sdc::Sdc a = parse(
      "create_clock -name x -period 10 [get_ports clk1]\n"
      "create_clock -name y -period 20 [get_ports clk2]\n");
  sdc::Sdc b = parse("create_clock -name z -period 20 [get_ports clk2]\n");
  sdc::Sdc c = parse("create_clock -name w -period 5 [get_ports clk1]\n");

  CanonicalKeyTable table;
  const KeySet ka = table.mode_clock_key_ids(a);
  const KeySet kb = table.mode_clock_key_ids(b);
  const KeySet kc = table.mode_clock_key_ids(c);

  // a shares clk2@20 with b; c's clk1@5 matches neither.
  EXPECT_FALSE(keys_disjoint(ka, kb));
  EXPECT_TRUE(keys_disjoint(kb, kc));
  EXPECT_TRUE(keys_disjoint(ka, kc));
  EXPECT_EQ(keys_disjoint(ka, kb),
            keys_disjoint(mode_clock_keys(a), mode_clock_keys(b)));
  EXPECT_EQ(keys_disjoint(kb, kc),
            keys_disjoint(mode_clock_keys(b), mode_clock_keys(c)));

  // The dense-bitset fast path agrees with the two-pointer scan even when
  // the bitsets have different sizes.
  EXPECT_EQ(keyset_bits(ka).intersects(keyset_bits(kb)), !keys_disjoint(ka, kb));
  EXPECT_EQ(keyset_bits(kb).intersects(keyset_bits(kc)), !keys_disjoint(kb, kc));
  EXPECT_FALSE(keyset_bits(KeySet{}).intersects(keyset_bits(ka)));
}

// ---------------------------------------------------------------------------
// Edge case: generated clocks.

TEST_F(KeysTest, GeneratedClockKeysEncodeGenerationParams) {
  sdc::Sdc div2 = parse(
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n");
  sdc::Sdc div4 = parse(
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 4 "
      "[get_pins mux1/Z]\n");
  sdc::Sdc div2_renamed = parse(
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name h -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n");

  const std::string kg2 = clock_key(div2, div2.find_clock("g"));
  const std::string kg4 = clock_key(div4, div4.find_clock("g"));
  const std::string kh2 = clock_key(div2_renamed, div2_renamed.find_clock("h"));
  // Same source/params, different name: same canonical identity.
  EXPECT_EQ(kg2, kh2);
  // Different divide ratio: different identity.
  EXPECT_NE(kg2, kg4);

  CanonicalKeyTable table;
  EXPECT_EQ(table.clock_key_id(div2, div2.find_clock("g")),
            table.clock_key_id(div2_renamed, div2_renamed.find_clock("h")));
  EXPECT_NE(table.clock_key_id(div2, div2.find_clock("g")),
            table.clock_key_id(div4, div4.find_clock("g")));
}

TEST_F(KeysTest, GeneratedClockMergeIdenticalBothPaths) {
  const std::string text_a =
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n";
  const std::string text_b =
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 4 "
      "[get_pins mux1/Z]\n";
  std::string out_by_path[2];
  for (bool interned : {false, true}) {
    sdc::Sdc a = parse(text_a), b = parse(text_b);
    const ValidatedMergeResult out =
        merge_modes(graph, {&a, &b}, options_for(interned));
    // m dedups; g(div2) and g(div4) coexist under distinct names.
    EXPECT_EQ(out.merge.merged->num_clocks(), 3u);
    out_by_path[interned] = sdc::write_sdc(*out.merge.merged);
  }
  EXPECT_EQ(out_by_path[0], out_by_path[1]);
}

// ---------------------------------------------------------------------------
// Edge case: duplicate-waveform dedup (same identity, different names).

TEST_F(KeysTest, DuplicateWaveformDedupBothPaths) {
  std::string out_by_path[2];
  size_t deduped_by_path[2] = {0, 0};
  for (bool interned : {false, true}) {
    // Same source + period + waveform under three different names across
    // two modes: one merged clock.
    sdc::Sdc a = parse(
        "create_clock -name fast -period 10 -waveform {0 5} "
        "[get_ports clk1]\n");
    sdc::Sdc b = parse(
        "create_clock -name quick -period 10 -waveform {0 5} "
        "[get_ports clk1]\n");
    const MergeResult out =
        preliminary_merge({&a, &b}, options_for(interned));
    EXPECT_EQ(out.merged->num_clocks(), 1u);
    deduped_by_path[interned] = out.stats.clocks_deduped;
    out_by_path[interned] = sdc::write_sdc(*out.merged);
  }
  EXPECT_EQ(deduped_by_path[0], 1u);
  EXPECT_EQ(deduped_by_path[0], deduped_by_path[1]);
  EXPECT_EQ(out_by_path[0], out_by_path[1]);
}

// ---------------------------------------------------------------------------
// Edge case: name collision between distinct clocks forces a rename.

TEST_F(KeysTest, NameCollisionRenameBothPaths) {
  std::string out_by_path[2];
  for (bool interned : {false, true}) {
    // Same name "c", different sources: distinct identities that cannot
    // share the merged name.
    sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
    sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk2]\n");
    const MergeResult out =
        preliminary_merge({&a, &b}, options_for(interned));
    EXPECT_EQ(out.merged->num_clocks(), 2u);
    EXPECT_EQ(out.stats.clocks_renamed, 1u);
    EXPECT_EQ(out.stats.clocks_deduped, 0u);
    out_by_path[interned] = sdc::write_sdc(*out.merged);
  }
  EXPECT_EQ(out_by_path[0], out_by_path[1]);
}

// ---------------------------------------------------------------------------
// Whole-engine parity: string path vs interned path must be byte-identical
// in the mergeability graph, reason strings, clique cover, and merged SDC.

struct EngineOutput {
  std::vector<uint8_t> edges;
  std::vector<std::string> reasons;
  std::vector<std::vector<size_t>> cliques;
  std::vector<std::string> merged_sdc;  // empty when only the graph is built
};

bool operator==(const EngineOutput& a, const EngineOutput& b) {
  return a.edges == b.edges && a.reasons == b.reasons &&
         a.cliques == b.cliques && a.merged_sdc == b.merged_sdc;
}

EngineOutput run_engine(const timing::TimingGraph& graph,
                        const std::vector<const sdc::Sdc*>& modes,
                        MergeOptions options, bool full_merge) {
  MergeContext ctx(options);
  EngineOutput out;
  const MergeabilityGraph mgraph(modes, ctx);
  for (size_t i = 0; i < mgraph.num_modes(); ++i) {
    for (size_t j = 0; j < mgraph.num_modes(); ++j) {
      out.edges.push_back(mgraph.edge(i, j) ? 1 : 0);
      out.reasons.push_back(mgraph.reason(i, j));
    }
  }
  out.cliques = mgraph.clique_cover();
  if (full_merge) {
    const MergedModeSet merged = merge_mode_set(graph, modes, ctx);
    EXPECT_EQ(merged.cliques, out.cliques);
    for (const ValidatedMergeResult& r : merged.merged) {
      out.merged_sdc.push_back(sdc::write_sdc(*r.merge.merged));
    }
  }
  return out;
}

TEST_F(KeysTest, PaperExampleParityStringVsInterned) {
  namespace cs = gen::constraint_sets;
  std::vector<sdc::Sdc> modes;
  for (const char* text :
       {cs::kSet2ModeA, cs::kSet2ModeB, cs::kSet3ModeA, cs::kSet3ModeB,
        cs::kSet4ModeA, cs::kSet4ModeB, cs::kSet5ModeA, cs::kSet5ModeB,
        cs::kSet6ModeA, cs::kSet6ModeB}) {
    modes.push_back(parse(text));
  }
  std::vector<const sdc::Sdc*> ptrs;
  for (const sdc::Sdc& m : modes) ptrs.push_back(&m);

  const EngineOutput reference =
      run_engine(graph, ptrs, options_for(false), /*full_merge=*/true);
  const EngineOutput interned =
      run_engine(graph, ptrs, options_for(true), /*full_merge=*/true);
  EXPECT_TRUE(reference == interned);
  EXPECT_FALSE(reference.merged_sdc.empty());
}

class KeysFamilyTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();

  void run_family(size_t num_modes, size_t target_groups, bool full_merge) {
    gen::DesignParams dp;
    dp.num_regs = 120;
    netlist::Design design = gen::generate_design(lib, dp);
    timing::TimingGraph graph{design};

    gen::ModeFamilyParams mp;
    mp.num_modes = num_modes;
    mp.target_groups = target_groups;
    std::vector<std::unique_ptr<sdc::Sdc>> modes;
    std::vector<const sdc::Sdc*> ptrs;
    for (const auto& gm : gen::generate_mode_family(dp, mp)) {
      modes.push_back(
          std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    }
    for (const auto& m : modes) ptrs.push_back(m.get());

    MergeOptions string_path;
    string_path.use_interned_keys = false;
    string_path.validate = false;
    MergeOptions interned_path;
    interned_path.use_interned_keys = true;
    interned_path.validate = false;

    const EngineOutput reference =
        run_engine(graph, ptrs, string_path, full_merge);
    const EngineOutput interned =
        run_engine(graph, ptrs, interned_path, full_merge);
    EXPECT_TRUE(reference == interned);
    EXPECT_EQ(reference.cliques.size(), target_groups);
    if (full_merge) {
      EXPECT_EQ(reference.merged_sdc.size(), target_groups);
    }
  }
};

TEST_F(KeysFamilyTest, Parity32ModeFamilyFullMerge) {
  run_family(/*num_modes=*/32, /*target_groups=*/5, /*full_merge=*/true);
}

TEST_F(KeysFamilyTest, Parity64ModeFamilyGraph) {
  run_family(/*num_modes=*/64, /*target_groups=*/8, /*full_merge=*/false);
}

}  // namespace
}  // namespace mm::merge
