// Generator tests: synthetic designs are structurally sound and
// deterministic; generated mode families parse, and their mergeability
// graph is exactly the planted block-diagonal structure.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "merge/mergeability.h"
#include "sdc/parser.h"
#include "timing/graph.h"

namespace mm::gen {
namespace {

TEST(DesignGen, StructureAndDeterminism) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams p;
  p.num_regs = 100;
  p.num_domains = 3;
  netlist::Design d1 = generate_design(lib, p);
  netlist::Design d2 = generate_design(lib, p);
  EXPECT_EQ(d1.num_instances(), d2.num_instances());
  EXPECT_EQ(d1.num_nets(), d2.num_nets());

  // Every register exists and is clocked.
  for (size_t i = 0; i < p.num_regs; ++i) {
    const auto inst = d1.find_instance("r" + std::to_string(i));
    ASSERT_TRUE(inst.valid()) << i;
  }
  // Clock muxes and gates per domain.
  for (size_t dmn = 0; dmn < p.num_domains; ++dmn) {
    EXPECT_TRUE(d1.find_instance("cmux" + std::to_string(dmn)).valid());
    EXPECT_TRUE(d1.find_instance("icg" + std::to_string(dmn)).valid());
  }
  const netlist::CheckReport report = check_design(d1);
  EXPECT_TRUE(report.ok());

  // Approximate size matches the size knob.
  EXPECT_NEAR(static_cast<double>(d1.num_instances()),
              static_cast<double>(p.approx_cells()), 0.3 * p.approx_cells());
}

TEST(DesignGen, DifferentSeedsDiffer) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams p1, p2;
  p1.num_regs = p2.num_regs = 50;
  p2.seed = 99;
  netlist::Design d1 = generate_design(lib, p1);
  netlist::Design d2 = generate_design(lib, p2);
  // Same counts, different wiring: compare a net's driver fanout shape.
  bool any_diff = false;
  for (size_t i = 0; i < d1.num_nets() && !any_diff; ++i) {
    const auto& n1 = d1.net(netlist::NetId(i));
    const auto& n2 = d2.net(netlist::NetId(i));
    if (n1.loads.size() != n2.loads.size()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DesignGen, NoScanNoGates) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams p;
  p.num_regs = 30;
  p.scan = false;
  p.clock_gates = false;
  netlist::Design d = generate_design(lib, p);
  EXPECT_FALSE(d.find_instance("icg0").valid());
  EXPECT_FALSE(d.find_port("scan_en").valid());
  timing::TimingGraph g(d);
  EXPECT_GT(g.endpoints().size(), 30u);  // 30 D pins + output ports
}

TEST(ModeGen, FamilyParsesAndPlantsGroups) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams dp;
  dp.num_regs = 80;
  dp.num_domains = 3;
  netlist::Design design = generate_design(lib, dp);

  ModeFamilyParams mp;
  mp.num_modes = 9;
  mp.target_groups = 3;
  const auto family = generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 9u);

  std::vector<sdc::Sdc> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (const GeneratedMode& gm : family) {
    SCOPED_TRACE(gm.name);
    ASSERT_NO_THROW(modes.push_back(sdc::parse_sdc(gm.sdc_text, design)))
        << gm.sdc_text;
  }
  for (const auto& m : modes) ptrs.push_back(&m);

  // Planted block-diagonal mergeability.
  merge::MergeabilityGraph graph(ptrs, {});
  for (size_t i = 0; i < family.size(); ++i) {
    for (size_t j = i + 1; j < family.size(); ++j) {
      EXPECT_EQ(graph.edge(i, j), family[i].group == family[j].group)
          << family[i].name << " vs " << family[j].name << ": "
          << graph.reason(i, j);
    }
  }
  EXPECT_EQ(graph.clique_cover().size(), 3u);
}

TEST(ModeGen, KindsWithinGroup) {
  DesignParams dp;
  ModeFamilyParams mp;
  mp.num_modes = 5;
  mp.target_groups = 1;
  const auto family = generate_mode_family(dp, mp);
  EXPECT_EQ(family[0].name, "func0_0");
  EXPECT_EQ(family[1].name, "scan0");
  EXPECT_EQ(family[2].name, "test0");
  EXPECT_EQ(family[3].name.substr(0, 4), "func");
  EXPECT_EQ(family[4].name.substr(0, 4), "func");
}

TEST(ModeGen, ScanModeUsesTestClock) {
  DesignParams dp;
  ModeFamilyParams mp;
  mp.num_modes = 2;
  mp.target_groups = 1;
  const auto family = generate_mode_family(dp, mp);
  EXPECT_NE(family[1].sdc_text.find("create_clock -name TCLK"),
            std::string::npos);
  EXPECT_NE(family[1].sdc_text.find("set_case_analysis 1 test_mode"),
            std::string::npos);
  EXPECT_EQ(family[1].sdc_text.find("CLK0"), std::string::npos);
}

TEST(ModeGen, NearMissWalksWindowBoundary) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams dp;
  dp.num_regs = 60;
  dp.num_domains = 2;
  netlist::Design design = generate_design(lib, dp);

  ModeFamilyParams mp;
  mp.num_modes = 6;
  mp.target_groups = 6;  // one functional mode per group
  mp.near_miss_window = 0.2;
  mp.near_miss_epsilon = 0.05;
  const auto family = generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 6u);

  std::vector<sdc::Sdc> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (const GeneratedMode& gm : family) {
    SCOPED_TRACE(gm.name);
    ASSERT_NO_THROW(modes.push_back(sdc::parse_sdc(gm.sdc_text, design)))
        << gm.sdc_text;
  }
  for (const auto& m : modes) ptrs.push_back(&m);

  // Exact policy: every carrier gap is out of tolerance -> 6 singletons.
  merge::MergeabilityGraph exact(ptrs, {});
  EXPECT_EQ(exact.clique_cover().size(), 6u);

  // Windowed with the family's window: even->odd gaps are W - eps
  // (accepted), odd->even gaps are W + eps (rejected), distance >= 2 gaps
  // accumulate to >= 2W. Adjacency is exactly the even-start pairs.
  merge::MergeOptions wopt;
  wopt.policy = merge::MergePolicy::uniform(mp.near_miss_window);
  merge::MergeabilityGraph windowed(ptrs, wopt);
  for (size_t i = 0; i < family.size(); ++i) {
    for (size_t j = i + 1; j < family.size(); ++j) {
      const bool expect_edge = (j == i + 1) && (i % 2 == 0);
      EXPECT_EQ(windowed.edge(i, j), expect_edge)
          << family[i].name << " vs " << family[j].name << ": "
          << windowed.reason(i, j);
    }
  }
  EXPECT_EQ(windowed.clique_cover().size(), 3u);
}

TEST(ModeGen, NearMissCarriersAndCommonMcps) {
  DesignParams dp;
  dp.num_domains = 2;
  ModeFamilyParams mp;
  mp.num_modes = 4;
  mp.target_groups = 4;
  mp.near_miss_window = 0.1;
  mp.near_miss_epsilon = 0.02;
  const auto family = generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 4u);

  // Latency carrier sits on the non-I/O clock in every functional mode.
  for (const auto& gm : family) {
    SCOPED_TRACE(gm.name);
    EXPECT_NE(gm.sdc_text.find("set_clock_latency"), std::string::npos);
    EXPECT_EQ(gm.sdc_text.find("set_clock_latency 2 [get_clocks CLK0]"),
              std::string::npos);
  }

  // MCPs are family-common in near-miss mode (a one-sided MCP would block
  // the cross-group merges the family exists to exercise).
  auto mcp_lines = [](const std::string& text) {
    std::string out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (line.rfind("set_multicycle_path", 0) == 0) out += line + "\n";
    }
    return out;
  };
  EXPECT_FALSE(mcp_lines(family[0].sdc_text).empty());
  for (size_t i = 1; i < family.size(); ++i) {
    EXPECT_EQ(mcp_lines(family[i].sdc_text), mcp_lines(family[0].sdc_text));
  }

  // Inactive near-miss (window 0) reproduces the seed family byte-for-byte,
  // epsilon ignored.
  ModeFamilyParams seed_mp;
  seed_mp.num_modes = 4;
  seed_mp.target_groups = 4;
  ModeFamilyParams zero_mp = seed_mp;
  zero_mp.near_miss_window = 0.0;
  zero_mp.near_miss_epsilon = 0.5;
  const auto a = generate_mode_family(dp, seed_mp);
  const auto b = generate_mode_family(dp, zero_mp);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sdc_text, b[i].sdc_text) << a[i].name;
  }
}

TEST(ModeGen, GroupCountBoundsRespected) {
  DesignParams dp;
  ModeFamilyParams mp;
  mp.num_modes = 95;
  mp.target_groups = 16;  // Table 5 design A configuration
  const auto family = generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 95u);
  size_t max_group = 0;
  for (const auto& gm : family) max_group = std::max(max_group, gm.group);
  EXPECT_EQ(max_group, 15u);
}

}  // namespace
}  // namespace mm::gen
