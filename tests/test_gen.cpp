// Generator tests: synthetic designs are structurally sound and
// deterministic; generated mode families parse, and their mergeability
// graph is exactly the planted block-diagonal structure.

#include <gtest/gtest.h>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "merge/mergeability.h"
#include "sdc/parser.h"
#include "timing/graph.h"

namespace mm::gen {
namespace {

TEST(DesignGen, StructureAndDeterminism) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams p;
  p.num_regs = 100;
  p.num_domains = 3;
  netlist::Design d1 = generate_design(lib, p);
  netlist::Design d2 = generate_design(lib, p);
  EXPECT_EQ(d1.num_instances(), d2.num_instances());
  EXPECT_EQ(d1.num_nets(), d2.num_nets());

  // Every register exists and is clocked.
  for (size_t i = 0; i < p.num_regs; ++i) {
    const auto inst = d1.find_instance("r" + std::to_string(i));
    ASSERT_TRUE(inst.valid()) << i;
  }
  // Clock muxes and gates per domain.
  for (size_t dmn = 0; dmn < p.num_domains; ++dmn) {
    EXPECT_TRUE(d1.find_instance("cmux" + std::to_string(dmn)).valid());
    EXPECT_TRUE(d1.find_instance("icg" + std::to_string(dmn)).valid());
  }
  const netlist::CheckReport report = check_design(d1);
  EXPECT_TRUE(report.ok());

  // Approximate size matches the size knob.
  EXPECT_NEAR(static_cast<double>(d1.num_instances()),
              static_cast<double>(p.approx_cells()), 0.3 * p.approx_cells());
}

TEST(DesignGen, DifferentSeedsDiffer) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams p1, p2;
  p1.num_regs = p2.num_regs = 50;
  p2.seed = 99;
  netlist::Design d1 = generate_design(lib, p1);
  netlist::Design d2 = generate_design(lib, p2);
  // Same counts, different wiring: compare a net's driver fanout shape.
  bool any_diff = false;
  for (size_t i = 0; i < d1.num_nets() && !any_diff; ++i) {
    const auto& n1 = d1.net(netlist::NetId(i));
    const auto& n2 = d2.net(netlist::NetId(i));
    if (n1.loads.size() != n2.loads.size()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DesignGen, NoScanNoGates) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams p;
  p.num_regs = 30;
  p.scan = false;
  p.clock_gates = false;
  netlist::Design d = generate_design(lib, p);
  EXPECT_FALSE(d.find_instance("icg0").valid());
  EXPECT_FALSE(d.find_port("scan_en").valid());
  timing::TimingGraph g(d);
  EXPECT_GT(g.endpoints().size(), 30u);  // 30 D pins + output ports
}

TEST(ModeGen, FamilyParsesAndPlantsGroups) {
  netlist::Library lib = netlist::Library::builtin();
  DesignParams dp;
  dp.num_regs = 80;
  dp.num_domains = 3;
  netlist::Design design = generate_design(lib, dp);

  ModeFamilyParams mp;
  mp.num_modes = 9;
  mp.target_groups = 3;
  const auto family = generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 9u);

  std::vector<sdc::Sdc> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (const GeneratedMode& gm : family) {
    SCOPED_TRACE(gm.name);
    ASSERT_NO_THROW(modes.push_back(sdc::parse_sdc(gm.sdc_text, design)))
        << gm.sdc_text;
  }
  for (const auto& m : modes) ptrs.push_back(&m);

  // Planted block-diagonal mergeability.
  merge::MergeabilityGraph graph(ptrs, {});
  for (size_t i = 0; i < family.size(); ++i) {
    for (size_t j = i + 1; j < family.size(); ++j) {
      EXPECT_EQ(graph.edge(i, j), family[i].group == family[j].group)
          << family[i].name << " vs " << family[j].name << ": "
          << graph.reason(i, j);
    }
  }
  EXPECT_EQ(graph.clique_cover().size(), 3u);
}

TEST(ModeGen, KindsWithinGroup) {
  DesignParams dp;
  ModeFamilyParams mp;
  mp.num_modes = 5;
  mp.target_groups = 1;
  const auto family = generate_mode_family(dp, mp);
  EXPECT_EQ(family[0].name, "func0_0");
  EXPECT_EQ(family[1].name, "scan0");
  EXPECT_EQ(family[2].name, "test0");
  EXPECT_EQ(family[3].name.substr(0, 4), "func");
  EXPECT_EQ(family[4].name.substr(0, 4), "func");
}

TEST(ModeGen, ScanModeUsesTestClock) {
  DesignParams dp;
  ModeFamilyParams mp;
  mp.num_modes = 2;
  mp.target_groups = 1;
  const auto family = generate_mode_family(dp, mp);
  EXPECT_NE(family[1].sdc_text.find("create_clock -name TCLK"),
            std::string::npos);
  EXPECT_NE(family[1].sdc_text.find("set_case_analysis 1 test_mode"),
            std::string::npos);
  EXPECT_EQ(family[1].sdc_text.find("CLK0"), std::string::npos);
}

TEST(ModeGen, GroupCountBoundsRespected) {
  DesignParams dp;
  ModeFamilyParams mp;
  mp.num_modes = 95;
  mp.target_groups = 16;  // Table 5 design A configuration
  const auto family = generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 95u);
  size_t max_group = 0;
  for (const auto& gm : family) max_group = std::max(max_group, gm.group);
  EXPECT_EQ(max_group, 15u);
}

}  // namespace
}  // namespace mm::gen
