// Ground-truth cross-validation: the Propagator's timing-relationship sets
// must EXACTLY equal what exhaustive path enumeration produces, on
// randomized designs with randomized constraints, for both analysis sides
// and at both endpoint and startpoint granularity.
//
// The enumeration walks every path and resolves its state with the same
// CompiledExceptions matcher, but independently of the tag machinery —
// validating tag deduplication, progress interning, launch-arc gating and
// per-key set accumulation against first principles.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/design_gen.h"
#include "sdc/parser.h"
#include "timing/relationships.h"

namespace mm::timing {
namespace {

struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  size_t below(size_t n) { return n == 0 ? 0 : next() % n; }
  bool chance(int percent) { return below(100) < static_cast<size_t>(percent); }
};

std::string random_constraints(const gen::DesignParams& dp, Rng& rng) {
  std::ostringstream os;
  os << "create_clock -name K0 -period 6 [get_ports clk0]\n";
  if (dp.num_domains > 1 && rng.chance(70)) {
    os << "create_clock -name K1 -period 9 [get_ports clk1]\n";
  }
  os << "set_case_analysis " << rng.below(2) << " test_mode\n";
  if (dp.scan) os << "set_case_analysis " << rng.below(2) << " scan_en\n";
  for (size_t d = 0; d < dp.num_domains; ++d) {
    if (rng.chance(60)) os << "set_case_analysis 1 en" << d << "\n";
  }
  const size_t gates = dp.num_regs * dp.comb_per_reg;
  for (size_t i = 0, n = 1 + rng.below(5); i < n; ++i) {
    switch (rng.below(6)) {
      case 0:
        os << "set_false_path -through [get_pins g" << rng.below(gates) << "/Z]\n";
        break;
      case 1:
        os << "set_false_path -from [get_pins r" << rng.below(dp.num_regs)
           << "/CP]\n";
        break;
      case 2:
        os << "set_multicycle_path 2 -through [get_pins r"
           << rng.below(dp.num_regs) << "/Q] -to [get_pins r"
           << rng.below(dp.num_regs) << "/D]\n";
        break;
      case 3:
        os << "set_max_delay 3 -to [get_pins r" << rng.below(dp.num_regs)
           << "/D]\n";
        break;
      case 4:
        os << "set_false_path -hold -to [get_pins r" << rng.below(dp.num_regs)
           << "/D]\n";
        break;
      default:
        os << "set_false_path -through [get_pins g" << rng.below(gates)
           << "/Z] -through [get_pins g" << rng.below(gates) << "/Z]\n";
        break;
    }
  }
  if (rng.chance(50)) {
    os << "set_input_delay 1 -clock K0 [get_ports di_*]\n";
    os << "set_output_delay 1 -clock K0 [get_ports do_*]\n";
  }
  return os.str();
}

/// Exhaustive per-path relationship map (states only).
RelationMap enumerate_ground_truth(const TimingGraph& graph,
                                   const ModeGraph& mode,
                                   const CompiledExceptions& exceptions,
                                   bool track_startpoints) {
  const netlist::Design& d = graph.design();
  RelationMap truth;

  for (PinId sp : mode.active_startpoints()) {
    // Launch clocks at this startpoint.
    std::vector<sdc::ClockId> launches;
    if (d.pin(sp).is_port()) {
      for (const sdc::PortDelay& pd : mode.sdc().port_delays()) {
        if (pd.is_input && pd.port_pin == sp) {
          bool seen = false;
          for (sdc::ClockId c : launches) seen |= (c == pd.clock);
          if (!seen) launches.push_back(pd.clock);
        }
      }
    } else {
      for (const ClockArrival& ca : mode.clocks_on(sp)) {
        launches.push_back(ca.clock);
      }
    }

    // DFS over enabled arcs; at every endpoint visit, resolve the walked
    // path for every (launch, capture) pair and both sides.
    struct Frame {
      PinId pin;
      size_t next = 0;
    };
    std::vector<Frame> stack{{sp, 0}};
    std::vector<PinId> path{sp};

    auto record = [&](PinId endpoint) {
      for (sdc::ClockId launch : launches) {
        std::vector<uint8_t> progress =
            exceptions.initial_progress(sp, launch);
        for (size_t i = 1; i < path.size(); ++i) {
          if (!progress.empty()) exceptions.advance(progress, path[i]);
        }
        for (const ClockArrival& cap : mode.capture_clocks_at(endpoint)) {
          RelationKey key;
          key.endpoint = endpoint;
          key.startpoint = track_startpoints ? sp : PinId();
          key.launch = launch;
          key.capture = cap.clock;

          const bool excl =
              launch.valid() &&
              (mode.sdc().clocks_exclusive(launch, cap.clock) ||
               mode.sdc().clocks_async(launch, cap.clock));
          const PathState setup =
              excl ? PathState::false_path()
                   : exceptions.resolve(progress, launch, endpoint, cap.clock,
                                        true);
          const PathState hold =
              excl ? PathState::false_path()
                   : exceptions.resolve(progress, launch, endpoint, cap.clock,
                                        false);
          truth[key].states.insert(setup);
          truth[key].hold_states.insert(hold);
        }
      }
    };

    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (graph.is_endpoint(frame.pin) && stack.size() > 1) {
        record(frame.pin);
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const auto& outs = graph.fanout(frame.pin);
      bool has_launch = false;
      for (ArcId aid : outs) {
        if (graph.arc(aid).kind == ArcKind::kLaunch) has_launch = true;
      }
      bool descended = false;
      while (frame.next < outs.size()) {
        const ArcId aid = outs[frame.next++];
        if (!mode.arc_enabled(aid)) continue;
        const Arc& arc = graph.arc(aid);
        if (has_launch && arc.kind != ArcKind::kLaunch) continue;
        path.push_back(arc.to);
        stack.push_back({arc.to, 0});
        descended = true;
        break;
      }
      if (!descended) {
        stack.pop_back();
        path.pop_back();
      }
    }
  }
  return truth;
}

class GroundTruthTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroundTruthTest, PropagatorMatchesPathEnumeration) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  netlist::Library lib = netlist::Library::builtin();
  gen::DesignParams dp;
  dp.num_regs = 15 + rng.below(25);  // small enough to enumerate
  dp.num_domains = 1 + rng.below(2);
  dp.comb_per_reg = 2;
  dp.fanin_span = 4;
  dp.scan = rng.chance(60);
  dp.clock_gates = rng.chance(60);
  dp.seed = seed;
  const netlist::Design design = gen::generate_design(lib, dp);
  const TimingGraph graph(design);

  const std::string text = random_constraints(dp, rng);
  SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + text);
  const sdc::Sdc sdc = sdc::parse_sdc(text, design);
  const ModeGraph mode(graph, sdc);
  const CompiledExceptions exceptions(graph, sdc);

  for (bool track : {false, true}) {
    Propagator prop(mode, exceptions);
    PropagationOptions opts;
    opts.compute_arrivals = false;
    opts.analyze_hold = true;
    opts.track_startpoints = track;
    prop.run(opts);

    const RelationMap truth =
        enumerate_ground_truth(graph, mode, exceptions, track);

    EXPECT_EQ(prop.relations().size(), truth.size())
        << "track=" << track;
    for (const auto& [key, data] : truth) {
      auto it = prop.relations().find(key);
      ASSERT_NE(it, prop.relations().end())
          << "missing key at " << design.pin_name(key.endpoint)
          << " track=" << track;
      EXPECT_EQ(it->second.states, data.states)
          << design.pin_name(key.endpoint) << " setup track=" << track
          << " prop=" << it->second.states.str()
          << " truth=" << data.states.str();
      EXPECT_EQ(it->second.hold_states, data.hold_states)
          << design.pin_name(key.endpoint) << " hold track=" << track;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthTest,
                         ::testing::Range<uint64_t>(1, 49));

}  // namespace
}  // namespace mm::timing
