// Equivalence checker edge cases: exception precedence (false path over
// MCP, min/max-delay over MCP), min- and max-delay stacking on one
// endpoint, and asymmetric relationship sets (A ⊆ B but B ⊄ A) where the
// two directions of the §2 two-sided check must disagree on purpose.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/equivalence.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"

namespace mm::merge {
namespace {

class EquivEdgeTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  EquivalenceReport check(const sdc::Sdc& original,
                          const sdc::Sdc& candidate) {
    MergeResult base = preliminary_merge({&original}, {});
    RefineContext ctx(graph, {&original});
    return check_equivalence(ctx, candidate, base.clock_map);
  }

  static constexpr const char* kClock =
      "create_clock -name clkA -period 10 [get_ports clk1]\n";
};

// --- MCP(n) vs false-path precedence ----------------------------------------

TEST_F(EquivEdgeTest, FalsePathOverridesMcp) {
  // SDC precedence: set_false_path beats set_multicycle_path on the same
  // paths, so {FP, MCP} and {FP} are the same constraint state.
  sdc::Sdc both = parse(std::string(kClock) +
                        "set_multicycle_path 2 -to [get_pins rX/D]\n"
                        "set_false_path -to [get_pins rX/D]\n");
  sdc::Sdc fp_only =
      parse(std::string(kClock) + "set_false_path -to [get_pins rX/D]\n");
  EXPECT_TRUE(check(both, fp_only).equivalent());
  EXPECT_TRUE(check(fp_only, both).equivalent());
}

TEST_F(EquivEdgeTest, McpDoesNotMaskLostFalsePath) {
  // A candidate that keeps the MCP but gains the FP has lost a timed
  // endpoint: optimism, never acceptable.
  sdc::Sdc mcp_only =
      parse(std::string(kClock) + "set_multicycle_path 2 -to [get_pins rX/D]\n");
  sdc::Sdc both = parse(std::string(kClock) +
                        "set_multicycle_path 2 -to [get_pins rX/D]\n"
                        "set_false_path -to [get_pins rX/D]\n");
  const EquivalenceReport r = check(mcp_only, both);
  EXPECT_GT(r.optimism_violations, 0u);
  EXPECT_FALSE(r.signoff_safe());

  // The reverse direction merely re-times a falsed endpoint: pessimism,
  // safe but not equivalent.
  const EquivalenceReport rev = check(both, mcp_only);
  EXPECT_EQ(rev.optimism_violations, 0u);
  EXPECT_GT(rev.pessimism_keys, 0u);
  EXPECT_TRUE(rev.signoff_safe());
  EXPECT_FALSE(rev.equivalent());
}

TEST_F(EquivEdgeTest, McpMultiplierIsPartOfTheState) {
  sdc::Sdc mcp2 =
      parse(std::string(kClock) + "set_multicycle_path 2 -to [get_pins rX/D]\n");
  sdc::Sdc mcp3 =
      parse(std::string(kClock) + "set_multicycle_path 3 -to [get_pins rX/D]\n");
  const EquivalenceReport r = check(mcp2, mcp3);
  EXPECT_GT(r.state_mismatches, 0u);
  EXPECT_FALSE(r.equivalent());
  EXPECT_TRUE(r.signoff_safe());  // both sides still time the endpoint
}

// --- min/max-delay on the same endpoint -------------------------------------

TEST_F(EquivEdgeTest, MinAndMaxDelayOnSameEndpointRoundTrip) {
  const std::string text = std::string(kClock) +
                           "set_max_delay 5 -to [get_pins rX/D]\n"
                           "set_min_delay 0.2 -to [get_pins rX/D]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  const EquivalenceReport r = check(a, b);
  EXPECT_TRUE(r.equivalent());
  EXPECT_GT(r.keys_compared, 0u);
}

TEST_F(EquivEdgeTest, DroppedMinDelayIsDetected) {
  sdc::Sdc full = parse(std::string(kClock) +
                        "set_max_delay 5 -to [get_pins rX/D]\n"
                        "set_min_delay 0.2 -to [get_pins rX/D]\n");
  sdc::Sdc max_only =
      parse(std::string(kClock) + "set_max_delay 5 -to [get_pins rX/D]\n");
  const EquivalenceReport r = check(full, max_only);
  EXPECT_FALSE(r.equivalent());
  EXPECT_TRUE(r.signoff_safe());  // endpoint still timed on both sides
}

TEST_F(EquivEdgeTest, MaxDelayValueIsPartOfTheState) {
  sdc::Sdc a =
      parse(std::string(kClock) + "set_max_delay 5 -to [get_pins rX/D]\n");
  sdc::Sdc b =
      parse(std::string(kClock) + "set_max_delay 4 -to [get_pins rX/D]\n");
  const EquivalenceReport r = check(a, b);
  EXPECT_GT(r.state_mismatches, 0u);
  EXPECT_FALSE(r.equivalent());
}

TEST_F(EquivEdgeTest, MinMaxDelayOverridesMcp) {
  // Precedence: set_max_delay beats set_multicycle_path, but only on the
  // analysis side it constrains — so qualify the MCP with -setup, or the
  // hold side would still (correctly) distinguish the two modes.
  sdc::Sdc both = parse(std::string(kClock) +
                        "set_multicycle_path 2 -setup -to [get_pins rX/D]\n"
                        "set_max_delay 5 -to [get_pins rX/D]\n");
  sdc::Sdc md_only =
      parse(std::string(kClock) + "set_max_delay 5 -to [get_pins rX/D]\n");
  EXPECT_TRUE(check(both, md_only).equivalent());
  EXPECT_TRUE(check(md_only, both).equivalent());
}

// --- asymmetric relationship sets (A ⊆ B but B ⊄ A) -------------------------

TEST_F(EquivEdgeTest, AsymmetricSetsFailInExactlyOneDirection) {
  // Mode A drives only clkA; mode B additionally clocks clk2, so every
  // gated-clock endpoint gains capture-by-clkB relationships: rel(A) is a
  // strict subset of rel(B).
  sdc::Sdc a = parse(kClock);
  sdc::Sdc b = parse(std::string(kClock) +
                     "create_clock -name clkB -period 20 [get_ports clk2]\n");

  // Candidate = A against original B: the clkB relationships are lost
  // entirely — optimism.
  const EquivalenceReport lost = check(b, a);
  EXPECT_GT(lost.optimism_violations, 0u);
  EXPECT_FALSE(lost.signoff_safe());

  // Candidate = B against original A: extra timed relationships the
  // original never had — pessimism, safe but not equivalent.
  const EquivalenceReport extra = check(a, b);
  EXPECT_EQ(extra.optimism_violations, 0u);
  EXPECT_GT(extra.pessimism_keys, 0u);
  EXPECT_TRUE(extra.signoff_safe());
  EXPECT_FALSE(extra.equivalent());
}

TEST_F(EquivEdgeTest, SubsetExceptionSetsAreNotEquivalent) {
  // Same clocks, but A's exception set is a strict subset of B's: the
  // shared FP matches, the extra one shows up as pessimism from A's side.
  sdc::Sdc a = parse(std::string(kClock) +
                     "set_false_path -to [get_pins rX/D]\n");
  sdc::Sdc b = parse(std::string(kClock) +
                     "set_false_path -to [get_pins rX/D]\n"
                     "set_false_path -to [get_pins rY/D]\n");
  // B falses rY/D which A times: candidate B loses a timed endpoint.
  const EquivalenceReport r = check(a, b);
  EXPECT_GT(r.optimism_violations, 0u);

  // And the mirror image: candidate A re-times rY/D — pessimism only.
  const EquivalenceReport rev = check(b, a);
  EXPECT_EQ(rev.optimism_violations, 0u);
  EXPECT_GT(rev.pessimism_keys, 0u);
}

}  // namespace
}  // namespace mm::merge
