// Preliminary merge unit tests (§3.1): each sub-step in isolation.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"

namespace mm::merge {
namespace {

class PrelimTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  MergeOptions options;
};

TEST_F(PrelimTest, SingleModePassesThrough) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_case_analysis 0 sel1\n"
      "set_false_path -to [get_pins rX/D]\n");
  MergeResult r = preliminary_merge({&a}, options);
  EXPECT_EQ(r.merged->num_clocks(), 1u);
  EXPECT_EQ(r.merged->case_analysis().size(), 1u);
  EXPECT_EQ(r.merged->exceptions().size(), 1u);
  EXPECT_EQ(r.stats.exceptions_common, 1u);
}

TEST_F(PrelimTest, PortDelayUnionDedupsIdentical) {
  const std::string text =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_input_delay 1.5 -clock c [get_ports in1]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->port_delays().size(), 1u);
  EXPECT_FALSE(r.merged->port_delays()[0].add_delay);
}

TEST_F(PrelimTest, PortDelayUnionAddsDelayFlag) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_input_delay 1.5 -clock c [get_ports in1]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_input_delay 2.5 -clock c [get_ports in1]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->port_delays().size(), 2u);
  EXPECT_FALSE(r.merged->port_delays()[0].add_delay);
  EXPECT_TRUE(r.merged->port_delays()[1].add_delay);
}

TEST_F(PrelimTest, CaseIntersection) {
  sdc::Sdc a = parse(
      "set_case_analysis 0 sel1\n"
      "set_case_analysis 1 sel2\n");
  sdc::Sdc b = parse(
      "set_case_analysis 0 sel1\n"
      "set_case_analysis 0 sel2\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->case_analysis().size(), 1u);
  EXPECT_EQ(design.pin_name(r.merged->case_analysis()[0].pin), "sel1");
  EXPECT_GE(r.stats.case_dropped, 1u);
}

TEST_F(PrelimTest, DisableIntersection) {
  sdc::Sdc a = parse(
      "set_disable_timing [get_pins and1/A]\n"
      "set_disable_timing [get_pins inv1/A]\n");
  sdc::Sdc b = parse("set_disable_timing [get_pins and1/A]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->disables().size(), 1u);
  EXPECT_EQ(design.pin_name(r.merged->disables()[0].pin), "and1/A");
}

TEST_F(PrelimTest, DriveLoadMergeTakesWorst) {
  sdc::Sdc a = parse(
      "set_input_transition 0.30 [get_ports in1]\n"
      "set_load 2.0 [get_ports out1]\n");
  sdc::Sdc b = parse(
      "set_input_transition 0.32 [get_ports in1]\n"
      "set_load 2.1 [get_ports out1]\n");
  MergeOptions loose;
  loose.value_tolerance = 0.1;
  MergeResult r = preliminary_merge({&a, &b}, loose);
  ASSERT_EQ(r.merged->drives().size(), 1u);
  EXPECT_DOUBLE_EQ(r.merged->drives()[0].value, 0.32);
  ASSERT_EQ(r.merged->loads().size(), 1u);
  EXPECT_DOUBLE_EQ(r.merged->loads()[0].value, 2.1);
}

TEST_F(PrelimTest, ExclusivityDerivedForNonCoexistingClocks) {
  // Same port, different waveforms, never together in one mode.
  sdc::Sdc a = parse("create_clock -name f -period 2 [get_ports clk1]\n");
  sdc::Sdc b = parse("create_clock -name s -period 8 [get_ports clk1]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  EXPECT_TRUE(r.merged->clocks_exclusive(r.merged->find_clock("f"),
                                         r.merged->find_clock("s")));
}

TEST_F(PrelimTest, CoexistingClocksNotExclusive) {
  const std::string text =
      "create_clock -name f -period 2 [get_ports clk1]\n"
      "create_clock -name s -period 8 [get_ports clk2]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  MergeResult r = preliminary_merge({&a, &b}, options);
  EXPECT_FALSE(r.merged->clocks_exclusive(r.merged->find_clock("f"),
                                          r.merged->find_clock("s")));
}

TEST_F(PrelimTest, AsyncRelationPreserved) {
  const std::string text =
      "create_clock -name f -period 2 [get_ports clk1]\n"
      "create_clock -name s -period 8 [get_ports clk2]\n"
      "set_clock_groups -asynchronous -group [get_clocks f] "
      "-group [get_clocks s]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  MergeResult r = preliminary_merge({&a, &b}, options);
  EXPECT_TRUE(r.merged->clocks_async(r.merged->find_clock("f"),
                                     r.merged->find_clock("s")));
}

TEST_F(PrelimTest, AsyncDroppedIfNotUniversal) {
  sdc::Sdc a = parse(
      "create_clock -name f -period 2 [get_ports clk1]\n"
      "create_clock -name s -period 8 [get_ports clk2]\n"
      "set_clock_groups -asynchronous -group [get_clocks f] "
      "-group [get_clocks s]\n");
  sdc::Sdc b = parse(
      "create_clock -name f -period 2 [get_ports clk1]\n"
      "create_clock -name s -period 8 [get_ports clk2]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  // Mode B times f->s paths, so the merged mode must too.
  EXPECT_FALSE(r.merged->clocks_async(r.merged->find_clock("f"),
                                      r.merged->find_clock("s")));
}

TEST_F(PrelimTest, CommonExceptionAddedOnce) {
  const std::string text =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  MergeResult r = preliminary_merge({&a, &b}, options);
  EXPECT_EQ(r.merged->exceptions().size(), 1u);
  EXPECT_EQ(r.stats.exceptions_common, 1u);
}

TEST_F(PrelimTest, UnsharedFalsePathDropped) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  EXPECT_TRUE(r.merged->exceptions().empty());
  EXPECT_EQ(r.stats.exceptions_dropped, 1u);
}

TEST_F(PrelimTest, UniquifyByToClocks) {
  // Exception carries -to clock only; the holder's clock is absent in the
  // other mode, so -to restriction works.
  sdc::Sdc a = parse(
      "create_clock -name ca -period 10 [get_ports clk1]\n"
      "set_max_delay 3 -to [get_clocks ca]\n");
  sdc::Sdc b = parse("create_clock -name cb -period 4 [get_ports clk2]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->exceptions().size(), 1u);
  EXPECT_EQ(r.stats.exceptions_uniquified, 1u);
  EXPECT_EQ(r.merged->exceptions()[0].to.clocks.size(), 1u);
}

TEST_F(PrelimTest, NonUniquifiableMinMaxKeptPessimistically) {
  // Both modes share the clock, so restriction is impossible; max_delay is
  // kept (tightening other modes is pessimistic-safe).
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_max_delay 3 -to [get_pins rX/D]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->exceptions().size(), 1u);
  EXPECT_EQ(r.stats.exceptions_kept_pessimistic, 1u);
}

TEST_F(PrelimTest, NonUniquifiableMcpDropped) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_multicycle_path 2 -to [get_pins rX/D]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  EXPECT_TRUE(r.merged->exceptions().empty());
  EXPECT_EQ(r.stats.exceptions_dropped, 1u);
}

TEST_F(PrelimTest, DesignRulesTakeTightest) {
  sdc::Sdc a = parse(
      "set_max_transition 0.5\n"
      "set_max_capacitance 2.0 [get_ports out1]\n");
  sdc::Sdc b = parse("set_max_transition 0.3\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->design_rules().size(), 2u);
  for (const sdc::DesignRule& rule : r.merged->design_rules()) {
    if (rule.kind == sdc::DesignRule::Kind::kMaxTransition) {
      EXPECT_DOUBLE_EQ(rule.value, 0.3);  // min of 0.5 / 0.3
    } else {
      EXPECT_DOUBLE_EQ(rule.value, 2.0);  // union from mode A
    }
  }
}

TEST_F(PrelimTest, PropagatedFlagSurvivesUnion) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_propagated_clock [get_clocks c]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  MergeResult r = preliminary_merge({&a, &b}, options);
  EXPECT_TRUE(r.merged->clock(r.merged->find_clock("c")).propagated);
}

TEST_F(PrelimTest, GeneratedClockMasterRemapped) {
  const std::string text =
      "create_clock -name m -period 10 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  MergeResult r = preliminary_merge({&a, &b}, options);
  ASSERT_EQ(r.merged->num_clocks(), 2u);
  const sdc::Clock& g = r.merged->clock(r.merged->find_clock("g"));
  EXPECT_EQ(g.master_clock, "m");
}

}  // namespace
}  // namespace mm::merge
