// Dedicated unit tests for §3.1.8 clock refinement and disable inference
// (beyond the paper's Constraint Set 3 walkthrough in test_paper_examples).

#include <gtest/gtest.h>

#include "gen/design_gen.h"
#include "gen/paper_circuit.h"
#include "merge/clock_refine.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"

namespace mm::merge {
namespace {

class ClockRefineTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  /// Preliminary merge + clock refinement only (no data refinement).
  MergeResult refine(const std::vector<const Sdc*>& modes) {
    MergeOptions options;
    MergeResult result = preliminary_merge(modes, options);
    RefineContext ctx(graph, modes);
    refine_clock_network(ctx, result, options);
    return result;
  }
};

TEST_F(ClockRefineTest, NoStopsWhenPropagationMatches) {
  // Identical modes: merged clock propagation already matches.
  const std::string text = "create_clock -name c -period 10 [get_ports clk1]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  MergeResult r = refine({&a, &b});
  EXPECT_EQ(r.stats.clock_stops_added, 0u);
  EXPECT_EQ(r.stats.inferred_disables, 0u);
}

TEST_F(ClockRefineTest, AgreeingCaseBlocksWithoutStop) {
  // sel1 conflicts (dropped) but sel2 agrees at 1; the kept sel2=1 already
  // forces the OR output to 1 in the merged mode, so clkA stays blocked at
  // the mux with NO stop constraint — the refinement must recognize that.
  sdc::Sdc a = parse(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "create_clock -name clkB -period 20 [get_ports clk2]\n"
      "set_case_analysis 0 sel1\nset_case_analysis 1 sel2\n");
  sdc::Sdc b = parse(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "create_clock -name clkB -period 20 [get_ports clk2]\n"
      "set_case_analysis 1 sel1\nset_case_analysis 1 sel2\n");
  MergeResult r = refine({&a, &b});
  EXPECT_EQ(r.stats.clock_stops_added, 0u);
  EXPECT_EQ(r.merged->case_analysis().size(), 1u);  // sel2 kept
  const timing::ModeGraph merged_view(graph, *r.merged);
  EXPECT_FALSE(merged_view.clock_on(design.find_pin("rX/CP"),
                                    r.merged->find_clock("clkA")));
}

TEST_F(ClockRefineTest, StopAtMuxWhenSelectConstantEverywhere) {
  // Only clkA exists; both modes pin the mux select to 1 through
  // conflicting sel values, so clkA never passes the mux in any mode —
  // but would in the merged mode once both cases are dropped.
  sdc::Sdc a = parse(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "set_case_analysis 0 sel1\nset_case_analysis 1 sel2\n");
  sdc::Sdc b = parse(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "set_case_analysis 1 sel1\nset_case_analysis 0 sel2\n");
  MergeResult r = refine({&a, &b});
  ASSERT_EQ(r.stats.clock_stops_added, 1u);
  const sdc::ClockSenseStop& stop = r.merged->clock_sense_stops()[0];
  EXPECT_EQ(design.pin_name(stop.pin), "mux1/Z");
  EXPECT_EQ(r.merged->clock(stop.clock).name, "clkA");
  EXPECT_EQ(r.stats.inferred_disables, 2u);
  EXPECT_TRUE(r.merged->case_analysis().empty());
}

TEST_F(ClockRefineTest, NoStopWhenSomeModePropagates) {
  // Mode A selects input A (clkA passes), mode B selects input B (clkB
  // passes): the merged mode may propagate both — no stops at the mux.
  sdc::Sdc a = parse(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "create_clock -name clkB -period 20 [get_ports clk2]\n"
      "set_case_analysis 0 sel1\nset_case_analysis 0 sel2\n");
  sdc::Sdc b = parse(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "create_clock -name clkB -period 20 [get_ports clk2]\n"
      "set_case_analysis 1 sel1\nset_case_analysis 1 sel2\n");
  MergeResult r = refine({&a, &b});
  EXPECT_EQ(r.stats.clock_stops_added, 0u);
  // The merged mode must keep both clocks reaching the gated registers.
  const timing::ModeGraph merged_view(graph, *r.merged);
  EXPECT_TRUE(merged_view.clock_on(design.find_pin("rX/CP"),
                                   r.merged->find_clock("clkA")));
  EXPECT_TRUE(merged_view.clock_on(design.find_pin("rX/CP"),
                                   r.merged->find_clock("clkB")));
}

TEST_F(ClockRefineTest, DisableNotInferredWhenMergedConstant) {
  // Both modes agree on the case value: it survives intersection, the pin
  // stays constant in the merged mode, no disable needed.
  const std::string text =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_case_analysis 1 sel1\n";
  sdc::Sdc a = parse(text), b = parse(text);
  MergeResult r = refine({&a, &b});
  EXPECT_EQ(r.stats.inferred_disables, 0u);
}

TEST_F(ClockRefineTest, DisableNotInferredWhenSomeModeToggles) {
  // sel1 constant in A but unconstrained in B: it can toggle in B, so the
  // merged mode must keep timing through it.
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_case_analysis 0 sel1\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  MergeResult r = refine({&a, &b});
  EXPECT_EQ(r.stats.inferred_disables, 0u);
}

TEST_F(ClockRefineTest, IcgEnableGatingOnGeneratedDesign) {
  // All functional modes gate domain 0 off (en0=0); the scan mode opens the
  // gate but drives TCLK instead. CLK0 therefore never passes icg0 in any
  // mode and must be stopped there in the merged mode.
  gen::DesignParams dp;
  dp.num_regs = 60;
  dp.num_domains = 2;
  netlist::Design d = gen::generate_design(lib, dp);
  timing::TimingGraph g(d);
  auto mode = [&](const std::string& text) {
    return sdc::parse_sdc(text, d);
  };
  sdc::Sdc func = mode(
      "create_clock -name CLK0 -period 10 [get_ports clk0]\n"
      "create_clock -name CLK1 -period 12 [get_ports clk1]\n"
      "set_case_analysis 0 test_mode\nset_case_analysis 0 scan_en\n"
      "set_case_analysis 0 en0\nset_case_analysis 1 en1\n");
  sdc::Sdc scan = mode(
      "create_clock -name TCLK -period 40 [get_ports tclk]\n"
      "set_case_analysis 1 test_mode\nset_case_analysis 1 scan_en\n"
      "set_case_analysis 1 en0\nset_case_analysis 1 en1\n");

  MergeOptions options;
  MergeResult result = preliminary_merge({&func, &scan}, options);
  RefineContext ctx(g, {&func, &scan});
  refine_clock_network(ctx, result, options);

  bool clk0_stopped_at_icg0 = false;
  for (const sdc::ClockSenseStop& stop : result.merged->clock_sense_stops()) {
    if (d.pin_name(stop.pin) == "icg0/GCLK" &&
        result.merged->clock(stop.clock).name == "CLK0") {
      clk0_stopped_at_icg0 = true;
    }
  }
  EXPECT_TRUE(clk0_stopped_at_icg0);
  // TCLK passes icg0 in the scan mode: must NOT be stopped there.
  for (const sdc::ClockSenseStop& stop : result.merged->clock_sense_stops()) {
    if (d.pin_name(stop.pin) == "icg0/GCLK") {
      EXPECT_NE(result.merged->clock(stop.clock).name, "TCLK");
    }
  }
}

TEST_F(ClockRefineTest, ExistingStopsRespected) {
  // A stop already present in every mode survives into the merged mode and
  // is not duplicated by refinement.
  const std::string text =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_sense -stop_propagation -clock [get_clocks c] "
      "[get_pins mux1/Z]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  // Preliminary merging does not copy clock_sense stops (they are per-mode
  // effects); refinement re-derives the stop because no mode propagates c
  // past mux1/Z.
  MergeResult r = refine({&a, &b});
  size_t stops_at_mux = 0;
  for (const sdc::ClockSenseStop& stop : r.merged->clock_sense_stops()) {
    if (design.pin_name(stop.pin) == "mux1/Z") ++stops_at_mux;
  }
  EXPECT_EQ(stops_at_mux, 1u);
}

}  // namespace
}  // namespace mm::merge
