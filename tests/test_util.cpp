// Unit tests for src/util: glob matching, string interning, dynamic bitset,
// thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/bitset.h"
#include "util/glob.h"
#include "util/intern.h"
#include "util/thread_pool.h"

namespace mm {
namespace {

// --- glob --------------------------------------------------------------------

TEST(Glob, ExactMatch) {
  EXPECT_TRUE(glob_match("clk1", "clk1"));
  EXPECT_FALSE(glob_match("clk1", "clk2"));
  EXPECT_FALSE(glob_match("clk", "clk1"));
  EXPECT_FALSE(glob_match("clk1", "clk"));
}

TEST(Glob, Star) {
  EXPECT_TRUE(glob_match("clk*", "clk1"));
  EXPECT_TRUE(glob_match("clk*", "clk"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("r*/Q", "r123/Q"));
  EXPECT_FALSE(glob_match("r*/Q", "r123/D"));
  EXPECT_TRUE(glob_match("*mid*", "has_mid_inside"));
  EXPECT_FALSE(glob_match("*mid*", "nothing"));
}

TEST(Glob, Question) {
  EXPECT_TRUE(glob_match("clk?", "clk1"));
  EXPECT_FALSE(glob_match("clk?", "clk"));
  EXPECT_FALSE(glob_match("clk?", "clk12"));
  EXPECT_TRUE(glob_match("?", "x"));
}

TEST(Glob, StarBacktracking) {
  EXPECT_TRUE(glob_match("a*b*c", "a_x_b_y_c"));
  EXPECT_TRUE(glob_match("a*b*c", "abbc"));
  EXPECT_FALSE(glob_match("a*b*c", "acb"));
  EXPECT_TRUE(glob_match("**", "x"));
  EXPECT_TRUE(glob_match("a*", "a"));
}

TEST(Glob, IsGlob) {
  EXPECT_TRUE(is_glob("clk*"));
  EXPECT_TRUE(is_glob("clk?"));
  EXPECT_FALSE(is_glob("clk1"));
  EXPECT_FALSE(is_glob(""));
}

// --- intern ------------------------------------------------------------------

TEST(StringPool, InternReturnsSameSymbol) {
  StringPool pool;
  const Symbol a = pool.intern("hello");
  const Symbol b = pool.intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(pool.str(a), "hello");
}

TEST(StringPool, DistinctStringsDistinctSymbols) {
  StringPool pool;
  const Symbol a = pool.intern("a");
  const Symbol b = pool.intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPool, EmptyStringIsInvalid) {
  StringPool pool;
  EXPECT_FALSE(pool.intern("").valid());
  EXPECT_FALSE(pool.find("").valid());
}

TEST(StringPool, FindDoesNotIntern) {
  StringPool pool;
  EXPECT_FALSE(pool.find("missing").valid());
  EXPECT_EQ(pool.size(), 0u);
  pool.intern("present");
  EXPECT_TRUE(pool.find("present").valid());
}

TEST(StringPool, StableAcrossGrowth) {
  StringPool pool;
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) {
    syms.push_back(pool.intern("name" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.str(syms[i]), "name" + std::to_string(i));
    EXPECT_EQ(pool.find("name" + std::to_string(i)), syms[i]);
  }
}

// --- bitset ------------------------------------------------------------------

TEST(DynamicBitset, SetTestClear) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.any());
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.set(64, false);
  EXPECT_FALSE(bits.test(64));
  bits.clear();
  EXPECT_FALSE(bits.any());
}

TEST(DynamicBitset, OrAndEquality) {
  DynamicBitset a(100), b(100);
  a.set(3);
  a.set(99);
  b.set(99);
  DynamicBitset c = a;
  c &= b;
  EXPECT_EQ(c.count(), 1u);
  EXPECT_TRUE(c.test(99));
  a |= b;
  EXPECT_EQ(a.count(), 2u);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(c == b);
}

TEST(DynamicBitset, AllOnesConstructionTrimsTail) {
  DynamicBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);
}

// --- thread pool --------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(hits.size(), [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10000);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](size_t i) {
                          if (i == 57) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [&](size_t) { throw Error("x"); });
  } catch (const Error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, GrainedParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), /*min_grain=*/64,
                    [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, GrainAtLeastCountRunsInline) {
  ThreadPool pool(4);
  std::vector<int> order;  // unsynchronized: only safe because inline
  pool.parallel_for(7, /*min_grain=*/16,
                    [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

}  // namespace
}  // namespace mm
