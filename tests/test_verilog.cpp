// Structural Verilog reader/writer tests: parsing styles, escaped
// identifiers, error handling, and full round-trips (including generated
// designs and the Figure-1 fixture).

#include <gtest/gtest.h>

#include "gen/design_gen.h"
#include "gen/paper_circuit.h"
#include "netlist/verilog.h"
#include "timing/graph.h"
#include "util/error.h"

namespace mm::netlist {
namespace {

class VerilogTest : public ::testing::Test {
 protected:
  Library lib = Library::builtin();
};

TEST_F(VerilogTest, BasicModule) {
  const Design d = read_verilog(R"(
    module top (a, b, clk, z);
      input a, b;
      input clk;
      output z;
      wire n1, n2;
      AND2 u1 (.A(a), .B(b), .Z(n1));
      DFF r1 (.D(n1), .CP(clk), .Q(n2));
      BUF u2 (.A(n2), .Z(z));
    endmodule
  )",
                               lib);
  EXPECT_EQ(d.name(), "top");
  EXPECT_EQ(d.num_ports(), 4u);
  EXPECT_EQ(d.num_instances(), 3u);
  EXPECT_TRUE(d.find_pin("r1/CP").valid());
  const Net& n1 = d.net(d.find_net("n1"));
  EXPECT_EQ(n1.driver, d.find_pin("u1/Z"));
  ASSERT_EQ(n1.loads.size(), 1u);
  EXPECT_EQ(n1.loads[0], d.find_pin("r1/D"));
  EXPECT_TRUE(check_design(d).ok());
}

TEST_F(VerilogTest, AnsiPortList) {
  const Design d = read_verilog(R"(
    module m (input a, input b, output z);
      AND2 u1 (.A(a), .B(b), .Z(z));
    endmodule
  )",
                               lib);
  EXPECT_EQ(d.num_ports(), 3u);
  EXPECT_EQ(d.port(d.find_port("a")).dir, PinDir::kInput);
  EXPECT_EQ(d.port(d.find_port("z")).dir, PinDir::kOutput);
}

TEST_F(VerilogTest, OrderedConnections) {
  // BUF pin order is A, Z.
  const Design d = read_verilog(
      "module m (a, z); input a; output z; BUF u1 (a, z); endmodule\n", lib);
  EXPECT_EQ(d.net(d.find_net("z")).driver, d.find_pin("u1/Z"));
}

TEST_F(VerilogTest, Comments) {
  const Design d = read_verilog(R"(
    // line comment
    module m (a, z); /* block
       spanning lines */ input a; output z;
      BUF u1 (.A(a), .Z(z)); // trailing
    endmodule
  )",
                               lib);
  EXPECT_EQ(d.num_instances(), 1u);
}

TEST_F(VerilogTest, EscapedIdentifiers) {
  const Design d = read_verilog(
      "module m (a, z); input a; output z;\n"
      "  wire \\n[3] ;\n"
      "  INV \\u/inv[3] (.A(a), .Z(\\n[3] ));\n"
      "  BUF u2 (.A(\\n[3] ), .Z(z));\n"
      "endmodule\n",
      lib);
  EXPECT_TRUE(d.find_instance("u/inv[3]").valid());
  EXPECT_TRUE(d.find_net("n[3]").valid());
  EXPECT_TRUE(d.find_pin("u/inv[3]/Z").valid());
}

TEST_F(VerilogTest, ImplicitWires) {
  // n1 never declared: implicit wire.
  const Design d = read_verilog(
      "module m (a, z); input a; output z;\n"
      "  INV u1 (.A(a), .Z(n1));\n"
      "  INV u2 (.A(n1), .Z(z));\n"
      "endmodule\n",
      lib);
  EXPECT_TRUE(d.find_net("n1").valid());
}

TEST_F(VerilogTest, UnconnectedPin) {
  const Design d = read_verilog(
      "module m (a, z); input a; output z;\n"
      "  AND2 u1 (.A(a), .B(), .Z(z));\n"
      "endmodule\n",
      lib);
  EXPECT_FALSE(d.pin(d.find_pin("u1/B")).net.valid());
}

TEST_F(VerilogTest, Errors) {
  EXPECT_THROW(read_verilog("module m (a); input a; NOSUCH u (.A(a)); endmodule", lib),
               Error);
  EXPECT_THROW(read_verilog("module m (a); input [3:0] a; endmodule", lib),
               Error);
  EXPECT_THROW(
      read_verilog("module m (a, z); input a; output z; assign z = a; endmodule",
                   lib),
      Error);
  EXPECT_THROW(read_verilog("module m (a, b); input a; endmodule", lib), Error);
  EXPECT_THROW(read_verilog("module m (a); input a; BUF u1 (a, a, a); endmodule", lib),
               Error);
}

TEST_F(VerilogTest, ErrorsCarryLineNumbers) {
  try {
    read_verilog("module m (a);\ninput a;\nNOSUCH u (.A(a));\nendmodule", lib);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("verilog:3"), std::string::npos)
        << e.what();
  }
}

TEST_F(VerilogTest, RoundTripPaperCircuit) {
  const Design original = gen::paper_circuit(lib);
  const std::string text = write_verilog(original);
  const Design reparsed = read_verilog(text, lib);

  EXPECT_EQ(reparsed.num_ports(), original.num_ports());
  EXPECT_EQ(reparsed.num_instances(), original.num_instances());
  EXPECT_EQ(reparsed.num_nets(), original.num_nets());
  // Connectivity spot checks by name.
  for (const char* pin : {"rA/Q", "inv1/A", "and1/Z", "mux1/S", "rZ/D"}) {
    const PinId po = original.find_pin(pin);
    const PinId pr = reparsed.find_pin(pin);
    ASSERT_TRUE(pr.valid()) << pin;
    EXPECT_EQ(original.net_name(original.pin(po).net),
              reparsed.net_name(reparsed.pin(pr).net))
        << pin;
  }
  // The timing graphs agree structurally.
  const timing::TimingGraph g1(original), g2(reparsed);
  EXPECT_EQ(g1.num_arcs(), g2.num_arcs());
  EXPECT_EQ(g1.checks().size(), g2.checks().size());
}

TEST_F(VerilogTest, RoundTripGeneratedDesign) {
  gen::DesignParams p;
  p.num_regs = 150;
  p.num_domains = 3;
  const Design original = gen::generate_design(lib, p);
  const Design reparsed = read_verilog(write_verilog(original), lib);
  EXPECT_EQ(reparsed.num_instances(), original.num_instances());
  EXPECT_EQ(reparsed.num_nets(), original.num_nets());
  EXPECT_TRUE(check_design(reparsed).ok());
  // Double round-trip is a fixed point.
  EXPECT_EQ(write_verilog(reparsed), write_verilog(original));
}

}  // namespace
}  // namespace mm::netlist
