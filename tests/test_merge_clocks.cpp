// Full-pipeline merge tests for the trickier clock flavours: generated
// clocks (dedup, master remapping, propagation equivalence) and virtual
// clocks (I/O delay references).

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/sta.h"

namespace mm::merge {
namespace {

class MergeClocksTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }
};

TEST_F(MergeClocksTest, IdenticalGeneratedClocksDedup) {
  const std::string text =
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_TRUE(out.equivalence.equivalent())
      << report_merge(out.merge, out.equivalence);
  EXPECT_EQ(out.merge.merged->num_clocks(), 2u);
  const sdc::Clock& g =
      out.merge.merged->clock(out.merge.merged->find_clock("g"));
  EXPECT_TRUE(g.is_generated);
  EXPECT_EQ(g.master_clock, "m");
  EXPECT_DOUBLE_EQ(g.period, 16.0);
}

TEST_F(MergeClocksTest, DifferentDivisionsCoexist) {
  // Mode A divides by 2, mode B by 4 at the same source: two distinct
  // generated clocks in the merged mode, made exclusive (they never
  // coexist in one individual mode).
  sdc::Sdc a = parse(
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n");
  sdc::Sdc b = parse(
      "create_clock -name m -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 4 "
      "[get_pins mux1/Z]\n");
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_EQ(out.equivalence.optimism_violations, 0u)
      << report_merge(out.merge, out.equivalence);
  const Sdc& merged = *out.merge.merged;
  EXPECT_EQ(merged.num_clocks(), 3u);  // m + g(div2) + g_1(div4)
  const sdc::ClockId g = merged.find_clock("g");
  const sdc::ClockId g1 = merged.find_clock("g_1");
  ASSERT_TRUE(g.valid());
  ASSERT_TRUE(g1.valid());
  EXPECT_TRUE(merged.clocks_exclusive(g, g1));
}

TEST_F(MergeClocksTest, VirtualClockDelaysMerge) {
  // I/O delays referenced to a virtual clock; identical waveforms dedup
  // across modes even with different names.
  sdc::Sdc a = parse(
      "create_clock -name core -period 10 [get_ports clk1]\n"
      "create_clock -name vclk -period 10\n"
      "set_input_delay 2 -clock vclk [get_ports in1]\n"
      "set_output_delay 2 -clock vclk [get_ports out1]\n");
  sdc::Sdc b = parse(
      "create_clock -name core -period 10 [get_ports clk1]\n"
      "create_clock -name vio -period 10\n"
      "set_input_delay 2 -clock vio [get_ports in1]\n"
      "set_output_delay 2 -clock vio [get_ports out1]\n");
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_EQ(out.equivalence.optimism_violations, 0u)
      << report_merge(out.merge, out.equivalence);
  const Sdc& merged = *out.merge.merged;
  // vclk and vio have the same (virtual) identity: deduplicated.
  EXPECT_EQ(merged.num_clocks(), 2u);
  // Port delays deduplicate too (identical after clock mapping).
  size_t in_delays = 0;
  for (const sdc::PortDelay& pd : merged.port_delays()) {
    if (pd.is_input) ++in_delays;
  }
  EXPECT_EQ(in_delays, 1u);
}

TEST_F(MergeClocksTest, GeneratedClockStaMatchesAfterMerge) {
  sdc::Sdc a = parse(
      "create_clock -name m -period 4 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n"
      "set_clock_sense -stop_propagation -clock [get_clocks m] "
      "[get_pins mux1/Z]\n");
  sdc::Sdc b = parse(
      "create_clock -name m -period 4 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n"
      "set_clock_sense -stop_propagation -clock [get_clocks m] "
      "[get_pins mux1/Z]\n"
      "set_false_path -to [get_pins rX/D]\n");
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_EQ(out.equivalence.optimism_violations, 0u)
      << report_merge(out.merge, out.equivalence);

  const timing::StaResult indiv = timing::run_sta_multi(graph, {&a, &b});
  const timing::StaResult merged = timing::run_sta(graph, *out.merge.merged);
  EXPECT_GE(timing::conformity(indiv, merged, graph, *out.merge.merged), 99.0);
}

TEST_F(MergeClocksTest, WaveformOffsetClocksStayDistinct) {
  // Same period, shifted waveform: different clocks, both kept.
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 -waveform {2 7} [get_ports clk1]\n");
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_EQ(out.merge.merged->num_clocks(), 2u);
  EXPECT_EQ(out.merge.stats.clocks_renamed, 1u);
  EXPECT_EQ(out.equivalence.optimism_violations, 0u);
}

}  // namespace
}  // namespace mm::merge
