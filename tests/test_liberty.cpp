// Liberty reader + boolean function tests: function parsing/evaluation/
// sensitivity, cell interpretation (pins, functions, arcs, ff groups),
// robustness against unknown groups, and an end-to-end STA on a
// Liberty-loaded library.

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "netlist/function.h"
#include "netlist/liberty.h"
#include "sdc/parser.h"
#include "timing/sta.h"
#include "util/error.h"

namespace mm::netlist {
namespace {

// --- FuncExpr ----------------------------------------------------------------

class FuncTest : public ::testing::Test {
 protected:
  // Pin namespace: A=0, B=1, C=2, S=3.
  FuncExpr parse(const std::string& text) {
    return FuncExpr::parse(text, [](std::string_view name) -> uint32_t {
      if (name == "A") return 0;
      if (name == "B") return 1;
      if (name == "C") return 2;
      if (name == "S") return 3;
      return UINT32_MAX;
    });
  }

  Logic eval(const FuncExpr& f, Logic a, Logic b, Logic c = Logic::kUnknown,
             Logic s = Logic::kUnknown) {
    std::vector<Logic> v{a, b, c, s};
    return f.evaluate(v);
  }
};

TEST_F(FuncTest, Operators) {
  using L = Logic;
  const FuncExpr and2 = parse("A * B");
  EXPECT_EQ(eval(and2, L::kOne, L::kOne), L::kOne);
  EXPECT_EQ(eval(and2, L::kZero, L::kUnknown), L::kZero);
  EXPECT_EQ(eval(and2, L::kOne, L::kUnknown), L::kUnknown);

  const FuncExpr or2 = parse("A + B");
  EXPECT_EQ(eval(or2, L::kZero, L::kZero), L::kZero);
  EXPECT_EQ(eval(or2, L::kUnknown, L::kOne), L::kOne);

  const FuncExpr xor2 = parse("A ^ B");
  EXPECT_EQ(eval(xor2, L::kOne, L::kZero), L::kOne);
  EXPECT_EQ(eval(xor2, L::kOne, L::kUnknown), L::kUnknown);

  const FuncExpr not_pre = parse("!A");
  const FuncExpr not_post = parse("A'");
  EXPECT_EQ(eval(not_pre, L::kOne, L::kUnknown), L::kZero);
  EXPECT_EQ(eval(not_post, L::kOne, L::kUnknown), L::kZero);
}

TEST_F(FuncTest, PrecedenceAndParens) {
  using L = Logic;
  // AND binds tighter than OR: A + B*C.
  const FuncExpr f = parse("A + B * C");
  EXPECT_EQ(eval(f, L::kZero, L::kOne, L::kZero), L::kZero);
  EXPECT_EQ(eval(f, L::kZero, L::kOne, L::kOne), L::kOne);
  const FuncExpr g = parse("(A + B) * C");
  EXPECT_EQ(eval(g, L::kOne, L::kZero, L::kZero), L::kZero);
}

TEST_F(FuncTest, JuxtapositionIsAnd) {
  using L = Logic;
  const FuncExpr f = parse("A B");
  EXPECT_EQ(eval(f, L::kOne, L::kZero), L::kZero);
  EXPECT_EQ(eval(f, L::kOne, L::kOne), L::kOne);
}

TEST_F(FuncTest, MuxExpression) {
  using L = Logic;
  const FuncExpr mux = parse("(A * !S) + (B * S)");
  EXPECT_EQ(eval(mux, L::kOne, L::kZero, L::kUnknown, L::kZero), L::kOne);
  EXPECT_EQ(eval(mux, L::kOne, L::kZero, L::kUnknown, L::kOne), L::kZero);
  // Unknown select, equal inputs: plain ternary evaluation cannot prove
  // the output (that is exactly why depends_on() exists).
  EXPECT_EQ(eval(mux, L::kOne, L::kOne, L::kUnknown, L::kUnknown), L::kUnknown);
}

TEST_F(FuncTest, DependsOnIsExact) {
  using L = Logic;
  const FuncExpr mux = parse("(A * !S) + (B * S)");
  // S=1: A cannot affect the output even though B is unknown.
  std::vector<L> v{L::kUnknown, L::kUnknown, L::kUnknown, L::kOne};
  EXPECT_FALSE(mux.depends_on(0, v));
  EXPECT_TRUE(mux.depends_on(1, v));
  // Unknown select: both data inputs can matter.
  v[3] = L::kUnknown;
  EXPECT_TRUE(mux.depends_on(0, v));
  // S never appears blocked unless A==B constants.
  v[0] = L::kOne;
  v[1] = L::kOne;
  EXPECT_FALSE(mux.depends_on(3, v));
  v[1] = L::kZero;
  EXPECT_TRUE(mux.depends_on(3, v));
}

TEST_F(FuncTest, SupportAndUnknownPin) {
  const FuncExpr f = parse("A * C");
  EXPECT_EQ(f.support(), (std::vector<uint32_t>{0, 2}));
  EXPECT_THROW(parse("A * NOPE"), Error);
  EXPECT_THROW(parse("A *"), Error);
  EXPECT_THROW(parse("(A"), Error);
}

// --- Liberty reader -------------------------------------------------------------

const char* kLib = R"lib(
/* test library */
library (testlib) {
  time_unit : "1ns";
  cell (ND2) {
    area : 1.0;
    pin (A) { direction : input; capacitance : 1.1; }
    pin (B) { direction : input; capacitance : 1.2; }
    pin (Y) {
      direction : output;
      function : "!(A * B)";
      timing () {
        related_pin : "A";
        timing_sense : negative_unate;
        cell_rise (tmpl) { values ("0.10, 0.20", "0.30, 0.40"); }
        cell_fall (tmpl) { values ("0.20, 0.30", "0.40, 0.50"); }
      }
      timing () {
        related_pin : "B";
        timing_sense : negative_unate;
        cell_rise (tmpl) { values ("0.12"); }
      }
    }
  }
  cell (MX2) {
    pin (A) { direction : input; }
    pin (B) { direction : input; }
    pin (S) { direction : input; }
    pin (Y) { direction : output; function : "(A !S) + (B S)"; }
  }
  cell (DFFX) {
    ff (IQ, IQN) { clocked_on : "CK"; next_state : "D"; }
    pin (CK) { direction : input; clock : true; }
    pin (D) {
      direction : input;
      timing () {
        related_pin : "CK";
        timing_type : setup_rising;
        rise_constraint (tmpl) { values ("0.08"); }
      }
      timing () {
        related_pin : "CK";
        timing_type : hold_rising;
        rise_constraint (tmpl) { values ("0.02"); }
      }
    }
    pin (Q) {
      direction : output;
      function : "IQ";
      timing () {
        related_pin : "CK";
        timing_type : rising_edge;
        cell_rise (tmpl) { values ("0.50"); }
      }
    }
  }
  cell (WEIRD) {
    unknown_group (x) { some_attr : 3; nested () { a : b; } }
    pin (A) { direction : input; }
    pin (Y) { direction : output; function : "!A"; }
  }
}
)lib";

TEST(LibertyTest, ParsesCells) {
  const Library lib = read_liberty(kLib);
  EXPECT_EQ(lib.num_cells(), 4u);
  EXPECT_TRUE(lib.find_cell("ND2").valid());
  EXPECT_TRUE(lib.find_cell("DFFX").valid());
}

TEST(LibertyTest, CombinationalCell) {
  const Library lib = read_liberty(kLib);
  const LibCell& nd2 = lib.cell(lib.find_cell("ND2"));
  EXPECT_FALSE(nd2.is_sequential());
  EXPECT_EQ(nd2.pins().size(), 3u);
  EXPECT_DOUBLE_EQ(nd2.pins()[nd2.pin_index("A")].cap, 1.1);

  // Function: NAND. 0 on A is controlling.
  std::vector<Logic> v{Logic::kZero, Logic::kUnknown, Logic::kUnknown};
  EXPECT_EQ(nd2.evaluate(v), Logic::kOne);
  EXPECT_FALSE(nd2.input_affects_output(nd2.pin_index("B"), v));

  // Arcs: two combinational, delay = mean of table values.
  ASSERT_EQ(nd2.arcs().size(), 2u);
  EXPECT_EQ(nd2.arcs()[0].kind, ArcKind::kCombinational);
  EXPECT_EQ(nd2.arcs()[0].sense, TimingSense::kNegative);
  EXPECT_NEAR(nd2.arcs()[0].intrinsic, 0.3, 1e-9);  // mean of 8 values
  EXPECT_NEAR(nd2.arcs()[1].intrinsic, 0.12, 1e-9);
}

TEST(LibertyTest, MuxFunctionSensitivity) {
  const Library lib = read_liberty(kLib);
  const LibCell& mx2 = lib.cell(lib.find_cell("MX2"));
  // No timing blocks: arcs synthesized from the function support.
  EXPECT_EQ(mx2.arcs().size(), 3u);
  std::vector<Logic> v{Logic::kUnknown, Logic::kUnknown, Logic::kUnknown,
                       Logic::kUnknown};
  v[mx2.pin_index("S")] = Logic::kOne;
  EXPECT_FALSE(mx2.input_affects_output(mx2.pin_index("A"), v));
  EXPECT_TRUE(mx2.input_affects_output(mx2.pin_index("B"), v));
}

TEST(LibertyTest, SequentialCell) {
  const Library lib = read_liberty(kLib);
  const LibCell& dff = lib.cell(lib.find_cell("DFFX"));
  EXPECT_TRUE(dff.is_sequential());
  EXPECT_TRUE(dff.pins()[dff.pin_index("CK")].is_clock);
  size_t launch = 0, checks = 0;
  for (const LibArc& arc : dff.arcs()) {
    if (arc.kind == ArcKind::kLaunch) {
      ++launch;
      EXPECT_NEAR(arc.intrinsic, 0.5, 1e-9);
    }
    if (arc.kind == ArcKind::kSetupHold) {
      ++checks;
      EXPECT_NEAR(arc.intrinsic, 0.08, 1e-9);
    }
  }
  EXPECT_EQ(launch, 1u);
  EXPECT_EQ(checks, 1u);
  // Q is a sequential boundary despite carrying a function attr.
  std::vector<Logic> v(dff.pins().size(), Logic::kZero);
  EXPECT_EQ(dff.evaluate(v), Logic::kUnknown);
}

TEST(LibertyTest, UnknownGroupsSkipped) {
  const Library lib = read_liberty(kLib);
  EXPECT_TRUE(lib.find_cell("WEIRD").valid());
}

TEST(LibertyTest, SyntaxErrors) {
  EXPECT_THROW(read_liberty("not_a_library () {}"), Error);
  EXPECT_THROW(read_liberty("library (x) { cell (c) { pin (p) { } }"), Error);
  EXPECT_THROW(read_liberty("library (x) { }"), Error);  // no cells
}

TEST(LibertyTest, EndToEndStaOnLibertyLibrary) {
  const Library lib = read_liberty(kLib);
  Design design("t", &lib);
  Builder b(&design);
  b.input("ck");
  b.input("d");
  b.output("q");
  b.inst("DFFX", "r0", {{"D", "d"}, {"CK", "ck"}, {"Q", "q0"}});
  b.inst("ND2", "g0", {{"A", "q0"}, {"B", "q0"}, {"Y", "n0"}});
  b.inst("DFFX", "r1", {{"D", "n0"}, {"CK", "ck"}, {"Q", "q"}});

  timing::TimingGraph graph(design);
  EXPECT_TRUE(graph.is_startpoint(design.find_pin("r0/CK")));
  EXPECT_TRUE(graph.is_endpoint(design.find_pin("r1/D")));

  const sdc::Sdc sdc =
      sdc::parse_sdc("create_clock -name c -period 5 [get_ports ck]\n", design);
  const timing::StaResult result = timing::run_sta(graph, sdc, true);
  ASSERT_EQ(result.endpoint_slack.count(design.find_pin("r1/D").value()), 1u);
  EXPECT_GT(result.endpoint_slack.at(design.find_pin("r1/D").value()), 0.0f);
  EXPECT_DOUBLE_EQ(result.wns, 0.0);
}

}  // namespace
}  // namespace mm::netlist
