// End-to-end integration: generated designs + generated mode families
// through the full merge_mode_set flow, validating mode reduction,
// equivalence and STA conformity — the miniature of the Table 5/6
// experiments that runs in the test suite.

#include <gtest/gtest.h>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "merge/merger.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/sta.h"

namespace mm::merge {
namespace {

struct Workload {
  std::unique_ptr<netlist::Design> design;
  std::unique_ptr<timing::TimingGraph> graph;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const Sdc*> mode_ptrs;
};

Workload make_workload(const netlist::Library& lib, size_t regs, size_t domains,
                       size_t num_modes, size_t groups, uint64_t seed = 1) {
  Workload w;
  gen::DesignParams dp;
  dp.num_regs = regs;
  dp.num_domains = domains;
  dp.seed = seed;
  w.design = std::make_unique<netlist::Design>(gen::generate_design(lib, dp));
  w.graph = std::make_unique<timing::TimingGraph>(*w.design);

  gen::ModeFamilyParams mp;
  mp.num_modes = num_modes;
  mp.target_groups = groups;
  mp.seed = seed;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    w.modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, *w.design)));
  }
  for (const auto& m : w.modes) w.mode_ptrs.push_back(m.get());
  return w;
}

class IntegrationTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
};

TEST_F(IntegrationTest, SingleGroupFullFlow) {
  Workload w = make_workload(lib, 120, 3, 4, 1);
  const MergedModeSet out = merge_mode_set(*w.graph, w.mode_ptrs);

  ASSERT_EQ(out.num_merged_modes(), 1u);
  EXPECT_NEAR(out.reduction_percent(), 75.0, 0.1);

  const ValidatedMergeResult& m = out.merged[0];
  EXPECT_EQ(m.equivalence.optimism_violations, 0u)
      << report_merge(m.merge, m.equivalence);
  EXPECT_EQ(m.equivalence.pessimism_keys, 0u)
      << report_merge(m.merge, m.equivalence);
}

TEST_F(IntegrationTest, MultiGroupReduction) {
  Workload w = make_workload(lib, 100, 3, 6, 2);
  const MergedModeSet out = merge_mode_set(*w.graph, w.mode_ptrs);
  ASSERT_EQ(out.num_merged_modes(), 2u);
  ASSERT_EQ(out.cliques.size(), 2u);
  EXPECT_EQ(out.cliques[0].size() + out.cliques[1].size(), 6u);
  for (const ValidatedMergeResult& m : out.merged) {
    EXPECT_EQ(m.equivalence.optimism_violations, 0u);
  }
}

TEST_F(IntegrationTest, StaConformity) {
  Workload w = make_workload(lib, 150, 4, 5, 1);
  const MergedModeSet out = merge_mode_set(*w.graph, w.mode_ptrs);
  ASSERT_EQ(out.num_merged_modes(), 1u);

  const timing::StaResult indiv = timing::run_sta_multi(*w.graph, w.mode_ptrs);
  const timing::StaResult merged =
      timing::run_sta(*w.graph, *out.merged[0].merge.merged);
  const double conf = timing::conformity(indiv, merged, *w.graph,
                                         *out.merged[0].merge.merged);
  EXPECT_GE(conf, 99.0) << report_merge(out.merged[0].merge,
                                        out.merged[0].equivalence);
}

TEST_F(IntegrationTest, MergedModeSurvivesSdcRoundTrip) {
  Workload w = make_workload(lib, 80, 3, 3, 1);
  const MergedModeSet out = merge_mode_set(*w.graph, w.mode_ptrs);
  ASSERT_EQ(out.num_merged_modes(), 1u);

  const std::string text = sdc::write_sdc(*out.merged[0].merge.merged);
  const sdc::Sdc reparsed = sdc::parse_sdc(text, *w.design);

  RefineContext ctx(*w.graph, w.mode_ptrs);
  const EquivalenceReport report =
      check_equivalence(ctx, reparsed, out.merged[0].merge.clock_map);
  EXPECT_EQ(report.optimism_violations, 0u);
  EXPECT_EQ(report.pessimism_keys, 0u);
}

TEST_F(IntegrationTest, IncrementalMergeMatchesBatch) {
  // merge(merge(A,B), C) must be equivalent to merge(A,B,C) — supporting
  // the "new mode arrives late in the schedule" flow.
  Workload w = make_workload(lib, 70, 2, 3, 1, 12);
  const sdc::Sdc* A = w.mode_ptrs[0];
  const sdc::Sdc* B = w.mode_ptrs[1];
  const sdc::Sdc* C = w.mode_ptrs[2];

  const ValidatedMergeResult batch = merge_modes(*w.graph, {A, B, C});
  const ValidatedMergeResult ab = merge_modes(*w.graph, {A, B});
  const ValidatedMergeResult incr =
      merge_modes(*w.graph, {ab.merge.merged.get(), C});

  ASSERT_TRUE(batch.equivalence.signoff_safe());
  ASSERT_TRUE(incr.equivalence.signoff_safe());

  // Both merged modes must be equivalent to the union {A, B, C}. Build the
  // clock map for the incremental result against the original modes via a
  // fresh preliminary merge (clock identity is by source+waveform, so the
  // map is reconstructible).
  RefineContext ctx(*w.graph, {A, B, C});
  MergeResult remap = preliminary_merge({A, B, C}, {});
  const EquivalenceReport batch_eq =
      check_equivalence(ctx, *batch.merge.merged, remap.clock_map);
  const EquivalenceReport incr_eq =
      check_equivalence(ctx, *incr.merge.merged, remap.clock_map);
  EXPECT_EQ(batch_eq.optimism_violations, 0u);
  EXPECT_EQ(incr_eq.optimism_violations, 0u);
  EXPECT_EQ(incr_eq.pessimism_keys, 0u);
}

TEST_F(IntegrationTest, RefinementIsIdempotent) {
  // Merging the merged mode with itself must change nothing and stay
  // equivalent.
  Workload w = make_workload(lib, 60, 2, 3, 1);
  const MergedModeSet first = merge_mode_set(*w.graph, w.mode_ptrs);
  ASSERT_EQ(first.num_merged_modes(), 1u);
  const Sdc& merged1 = *first.merged[0].merge.merged;

  const ValidatedMergeResult second = merge_modes(*w.graph, {&merged1});
  EXPECT_TRUE(second.equivalence.equivalent())
      << report_merge(second.merge, second.equivalence);
}

// Parameterized sweep: the full flow stays sign-off-safe across workload
// shapes (the paper's core guarantee).
struct SweepParam {
  size_t regs;
  size_t domains;
  size_t modes;
  size_t groups;
  uint64_t seed;

  friend void PrintTo(const SweepParam& p, std::ostream* os) {
    *os << "r" << p.regs << "_d" << p.domains << "_m" << p.modes << "_g"
        << p.groups << "_s" << p.seed;
  }
};

class SweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SweepTest, SignoffSafeAndConforming) {
  netlist::Library lib = netlist::Library::builtin();
  const SweepParam p = GetParam();
  Workload w = make_workload(lib, p.regs, p.domains, p.modes, p.groups, p.seed);
  const MergedModeSet out = merge_mode_set(*w.graph, w.mode_ptrs);
  EXPECT_EQ(out.num_merged_modes(), p.groups);

  std::vector<const Sdc*> merged_ptrs;
  for (const ValidatedMergeResult& m : out.merged) {
    EXPECT_EQ(m.equivalence.optimism_violations, 0u)
        << report_merge(m.merge, m.equivalence);
    merged_ptrs.push_back(m.merge.merged.get());
  }

  const timing::StaResult indiv = timing::run_sta_multi(*w.graph, w.mode_ptrs);
  const timing::StaResult merged = timing::run_sta_multi(*w.graph, merged_ptrs);
  // Conformity against the worst merged-mode slacks (per Table 6).
  size_t conforming = 0, total = 0;
  for (const auto& [ep, s] : indiv.endpoint_slack) {
    ++total;
    auto it = merged.endpoint_slack.find(ep);
    if (it != merged.endpoint_slack.end() && std::abs(it->second - s) < 0.5)
      ++conforming;
  }
  EXPECT_GE(total, 1u);
  EXPECT_GE(100.0 * conforming / total, 99.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SweepTest,
    ::testing::Values(SweepParam{60, 2, 2, 1, 3}, SweepParam{60, 2, 3, 1, 4},
                      SweepParam{90, 3, 5, 1, 5}, SweepParam{90, 3, 6, 3, 6},
                      SweepParam{120, 4, 8, 2, 7},
                      SweepParam{120, 4, 10, 5, 8},
                      SweepParam{150, 2, 4, 2, 9},
                      SweepParam{200, 5, 6, 1, 10}));

}  // namespace
}  // namespace mm::merge
