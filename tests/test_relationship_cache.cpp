// RelationshipCache tests: hit/miss accounting, content-key invalidation,
// and byte-identical determinism of the memoized + parallel mergeability
// path against the serial seed path (paper worked example and a 32-mode
// generated family).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "gen/paper_circuit.h"
#include "merge/mergeability.h"
#include "merge/relationship_cache.h"
#include "sdc/parser.h"

namespace mm::merge {
namespace {

class RelationshipCacheTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  MergeOptions options;
};

TEST_F(RelationshipCacheTest, HitAndMissCounting) {
  RelationshipCache cache;
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");

  auto first = cache.get(a);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 1u);

  // Same object again and the same text parsed into a fresh Sdc both hit.
  auto second = cache.get(a);
  sdc::Sdc a2 = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  auto third = cache.get(a2);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first.get(), third.get());
}

TEST_F(RelationshipCacheTest, SdcTextChangeInvalidates) {
  RelationshipCache cache;
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n");
  auto before = cache.get(a);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A different constraint value is a different content key: no stale hit.
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.9 [get_clocks c]\n");
  EXPECT_NE(RelationshipCache::content_key(a),
            RelationshipCache::content_key(b));
  auto after = cache.get(b);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_NE(before.get(), after.get());
  EXPECT_NE(before->clocks[0].uncertainty[1], after->clocks[0].uncertainty[1]);

  // Mutating a cached mode's constraints changes its key too.
  a.exceptions().push_back(sdc::Exception{});
  EXPECT_NE(RelationshipCache::content_key(a),
            RelationshipCache::content_key(b));
  cache.get(a);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST_F(RelationshipCacheTest, KeyIncludesNetlistIdentity) {
  gen::DesignParams dp;
  dp.num_regs = 60;
  dp.name = "block_a";
  netlist::Design da = gen::generate_design(lib, dp);
  dp.name = "block_b";
  netlist::Design db = gen::generate_design(lib, dp);

  const std::string text =
      "create_clock -name c -period 10 [get_ports clk0]\n";
  sdc::Sdc on_a = sdc::parse_sdc(text, da);
  sdc::Sdc on_b = sdc::parse_sdc(text, db);
  EXPECT_NE(RelationshipCache::content_key(on_a),
            RelationshipCache::content_key(on_b));
}

// Regression for the weak-identity hazard: two distinct designs that agree
// on name AND every shape count must still get distinct content keys,
// because port names differ. Before content_key folded port names, these
// aliased one cache slot and the second design silently reused the first's
// extraction.
TEST_F(RelationshipCacheTest, EqualNameAndCountsDesignsDoNotCollide) {
  netlist::Design da("twin", &lib);
  da.add_port("clkA", netlist::PinDir::kInput);
  netlist::Design db("twin", &lib);
  db.add_port("clkB", netlist::PinDir::kInput);
  ASSERT_EQ(da.num_ports(), db.num_ports());
  ASSERT_EQ(da.num_pins(), db.num_pins());

  sdc::Sdc on_a = sdc::parse_sdc("", da);
  sdc::Sdc on_b = sdc::parse_sdc("", db);
  EXPECT_NE(RelationshipCache::content_key(on_a),
            RelationshipCache::content_key(on_b));

  RelationshipCache cache;
  cache.get(on_a);
  cache.get(on_b);
  EXPECT_EQ(cache.stats().misses, 2u);  // no alias, no stale hit
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

// Explicit invalidation (the MergeSession::update_mode path): dropping a
// mode's current content removes exactly that entry; the next get()
// re-extracts. Invalidating absent content is a no-op.
TEST_F(RelationshipCacheTest, InvalidateDropsEntry) {
  RelationshipCache cache;
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  sdc::Sdc b = parse("create_clock -name c2 -period 20 [get_ports clk2]\n");
  cache.get(a);
  cache.get(b);
  ASSERT_EQ(cache.size(), 2u);

  cache.invalidate(a);
  EXPECT_EQ(cache.size(), 1u);
  cache.invalidate(a);  // already gone: no-op
  EXPECT_EQ(cache.size(), 1u);

  cache.get(b);  // untouched entry still hits
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.get(a);  // dropped entry re-extracts
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(RelationshipCacheTest, EvictionBoundsEntries) {
  RelationshipCache cache(/*max_entries=*/2);
  for (int period = 1; period <= 5; ++period) {
    sdc::Sdc m = parse("create_clock -name c -period " +
                       std::to_string(period) + " [get_ports clk1]\n");
    cache.get(m);
  }
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// The cached overload must return the seed overload's verdict bit for bit
// (mergeable flag AND reason text) on every kind of conflict.
TEST_F(RelationshipCacheTest, CachedVerdictsMatchSeedPath) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"create_clock -name c -period 10 [get_ports clk1]\n",
       "create_clock -name c -period 10 [get_ports clk1]\n"},
      {"create_clock -name c1 -period 10 [get_ports clk1]\n",
       "create_clock -name c2 -period 20 [get_ports clk2]\n"},
      {"create_clock -name c -period 10 [get_ports clk1]\n"
       "set_clock_uncertainty -setup 0.3 [get_clocks c]\n",
       "create_clock -name c -period 10 [get_ports clk1]\n"
       "set_clock_uncertainty -setup 0.9 [get_clocks c]\n"},
      {"create_clock -name c -period 10 [get_ports clk1]\n"
       "set_clock_latency -max 0.5 [get_clocks c]\n",
       "create_clock -name c -period 10 [get_ports clk1]\n"
       "set_clock_latency -max 2.5 [get_clocks c]\n"},
      {"create_clock -name c -period 10 [get_ports clk1]\n"
       "set_clock_transition -max 0.1 [get_clocks c]\n",
       "create_clock -name c -period 10 [get_ports clk1]\n"
       "set_clock_transition -max 0.8 [get_clocks c]\n"},
      {"set_input_transition 0.1 [get_ports in1]\n",
       "set_input_transition 0.9 [get_ports in1]\n"},
      {"set_load 1.0 [get_ports out1]\n", "set_load 5.0 [get_ports out1]\n"},
      {"create_clock -name c -period 10 [get_ports clk1]\n"
       "set_multicycle_path 2 -through [get_pins inv1/Z]\n",
       "create_clock -name c -period 10 [get_ports clk1]\n"
       "set_multicycle_path 3 -through [get_pins inv1/Z]\n"},
      {"create_clock -name c -period 10 [get_ports clk1]\n"
       "set_multicycle_path 2 -through [get_pins inv1/Z]\n",
       "create_clock -name c -period 10 [get_ports clk1]\n"},
      {gen::constraint_sets::kSet4ModeA, gen::constraint_sets::kSet4ModeB},
      {gen::constraint_sets::kSet6ModeA, gen::constraint_sets::kSet6ModeB},
      {"create_clock -name c -period 10 [get_ports clk1]\n"
       "set_false_path -to [get_pins rX/D]\n",
       "create_clock -name c -period 10 [get_ports clk1]\n"},
  };

  for (double tol : {0.0, 3.0}) {
    MergeOptions opts;
    opts.value_tolerance = tol;
    for (const auto& [ta, tb] : cases) {
      sdc::Sdc a = parse(ta), b = parse(tb);
      const PairVerdict seed = check_mergeable(a, b, opts);
      const ModeRelationships ra = extract_relationships(a);
      const ModeRelationships rb = extract_relationships(b);
      const PairVerdict cached = check_mergeable(ra, rb, opts);
      EXPECT_EQ(seed.mergeable, cached.mergeable)
          << "tol=" << tol << "\nA:\n" << ta << "B:\n" << tb;
      EXPECT_EQ(seed.reason, cached.reason)
          << "tol=" << tol << "\nA:\n" << ta << "B:\n" << tb;
    }
  }
}

// Graph-level determinism helper: adjacency, reasons, and clique cover of
// two builds must be identical.
void expect_identical_graphs(const MergeabilityGraph& x,
                             const MergeabilityGraph& y) {
  ASSERT_EQ(x.num_modes(), y.num_modes());
  for (size_t i = 0; i < x.num_modes(); ++i) {
    for (size_t j = 0; j < x.num_modes(); ++j) {
      EXPECT_EQ(x.edge(i, j), y.edge(i, j)) << i << "," << j;
      EXPECT_EQ(x.reason(i, j), y.reason(i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(x.clique_cover(), y.clique_cover());
}

TEST_F(RelationshipCacheTest, ParallelPathDeterministicOnPaperExample) {
  std::vector<sdc::Sdc> modes;
  for (const char* text :
       {gen::constraint_sets::kSet2ModeA, gen::constraint_sets::kSet2ModeB,
        gen::constraint_sets::kSet4ModeA, gen::constraint_sets::kSet4ModeB,
        gen::constraint_sets::kSet6ModeA, gen::constraint_sets::kSet6ModeB}) {
    modes.push_back(parse(text));
  }
  std::vector<const Sdc*> ptrs;
  for (const auto& m : modes) ptrs.push_back(&m);

  MergeOptions serial_seed;
  serial_seed.num_threads = 1;
  serial_seed.use_relationship_cache = false;
  MergeOptions parallel_cached;
  parallel_cached.num_threads = 4;

  const MergeabilityGraph reference(ptrs, serial_seed);
  const MergeabilityGraph parallel(ptrs, parallel_cached);
  expect_identical_graphs(reference, parallel);
  // Warm-cache rebuild is identical too.
  const MergeabilityGraph warm(ptrs, parallel_cached);
  expect_identical_graphs(reference, warm);
}

TEST_F(RelationshipCacheTest, ParallelPathDeterministicOn32GeneratedModes) {
  gen::DesignParams dp;
  dp.num_regs = 120;
  netlist::Design d = gen::generate_design(lib, dp);

  gen::ModeFamilyParams mp;
  mp.num_modes = 32;
  mp.target_groups = 5;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const Sdc*> ptrs;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    modes.push_back(std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, d)));
  }
  for (const auto& m : modes) ptrs.push_back(m.get());

  MergeOptions serial_seed;
  serial_seed.num_threads = 1;
  serial_seed.use_relationship_cache = false;
  MergeOptions parallel_cached;
  parallel_cached.num_threads = 0;  // hardware concurrency

  const MergeabilityGraph reference(ptrs, serial_seed);
  const MergeabilityGraph parallel(ptrs, parallel_cached);
  expect_identical_graphs(reference, parallel);
}

}  // namespace
}  // namespace mm::merge
