// Equivalence checker tests: the §2 two-sided definition, detection of
// optimism and pessimism, independence from constraint *form*.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/equivalence.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"

namespace mm::merge {
namespace {

class EquivTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  /// Check a "merged" candidate against a single original mode; the clock
  /// map is built by a trivial 1-mode preliminary merge of the original.
  EquivalenceReport check(const sdc::Sdc& original,
                          const sdc::Sdc& candidate) {
    MergeResult base = preliminary_merge({&original}, {});
    RefineContext ctx(graph, {&original});
    return check_equivalence(ctx, candidate, base.clock_map);
  }
};

TEST_F(EquivTest, IdenticalModesAreEquivalent) {
  const std::string text =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  const EquivalenceReport r = check(a, b);
  EXPECT_TRUE(r.equivalent());
  EXPECT_GT(r.keys_compared, 0u);
  EXPECT_EQ(r.matches, r.keys_compared);
}

TEST_F(EquivTest, FormIndependence) {
  // The paper's §2 point: rewriting a constraint in a different form that
  // affects the same paths must compare equal.
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n");
  // Same effect, written as -from + -through: the only paths into rX/D come
  // from rA through inv1/Z.
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -from [get_pins rA/CP] -through [get_pins inv1/Z] "
      "-to [get_pins rX/D]\n");
  EXPECT_TRUE(check(a, b).equivalent());
}

TEST_F(EquivTest, DetectsOptimism) {
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n");  // loses a timed endpoint
  const EquivalenceReport r = check(a, b);
  EXPECT_GT(r.optimism_violations, 0u);
  EXPECT_FALSE(r.signoff_safe());
  EXPECT_FALSE(r.examples.empty());
}

TEST_F(EquivTest, DetectsPessimism) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const EquivalenceReport r = check(a, b);
  EXPECT_EQ(r.optimism_violations, 0u);
  EXPECT_GT(r.pessimism_keys, 0u);
  EXPECT_TRUE(r.signoff_safe());
  EXPECT_FALSE(r.equivalent());
}

TEST_F(EquivTest, DetectsLostMcpAsStateMismatch) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_multicycle_path 2 -to [get_pins rX/D]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const EquivalenceReport r = check(a, b);
  EXPECT_GT(r.state_mismatches, 0u);
  EXPECT_FALSE(r.equivalent());
  EXPECT_TRUE(r.signoff_safe());  // still times everything
}

TEST_F(EquivTest, StartpointLevelCatchesPathSwaps) {
  // Endpoint-level sets can hide a swap: A false-paths rA->rY, candidate
  // false-paths rB->rY. Both give {FP, V} at rY/D; startpoint level must
  // flag it.
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -from [get_pins rA/CP] -to [get_pins rY/D]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -from [get_pins rB/CP] -to [get_pins rY/D]\n");
  MergeResult base = preliminary_merge({&a}, {});
  RefineContext ctx(graph, {&a});

  const EquivalenceReport shallow =
      check_equivalence(ctx, b, base.clock_map, /*startpoint_level=*/false);
  EXPECT_EQ(shallow.optimism_violations, 0u);  // hidden at this granularity

  const EquivalenceReport deep =
      check_equivalence(ctx, b, base.clock_map, /*startpoint_level=*/true);
  EXPECT_GT(deep.optimism_violations + deep.pessimism_keys, 0u);
}

TEST_F(EquivTest, MultiModeUnion) {
  // Candidate must match the union of two modes.
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  // Mode b times rX/D, so a union-equivalent candidate times everything.
  sdc::Sdc candidate = parse("create_clock -name c -period 10 [get_ports clk1]\n");

  MergeResult base = preliminary_merge({&a, &b}, {});
  RefineContext ctx(graph, {&a, &b});
  const EquivalenceReport r =
      check_equivalence(ctx, candidate, base.clock_map);
  EXPECT_TRUE(r.equivalent());
}

}  // namespace
}  // namespace mm::merge
