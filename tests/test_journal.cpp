// mm.journal/1 end-to-end: the decision journal written by a MergeSession
// must carry exactly one event per decision (no lost or duplicated events
// under a parallel multi-commit session), agree with the metrics registry
// (pairs_rechecked == pair_verdict events per commit), render mmreport
// explain/timeline output that is byte-stable across --threads, and reject
// malformed journals with a line-numbered error.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "merge/session.h"
#include "netlist/libcell.h"
#include "obs/journal.h"
#include "obs/journal_reader.h"
#include "sdc/parser.h"
#include "timing/graph.h"
#include "util/error.h"

namespace mm::obs {
namespace {

/// The 10-mode paper-style family (two planted mergeable groups) on a
/// small generated design — the clique cover must find the two groups.
class JournalTest : public ::testing::Test {
 protected:
  JournalTest() {
    dp_.seed = 11;
    dp_.num_regs = 60;
    design_ = std::make_unique<netlist::Design>(
        gen::generate_design(lib_, dp_));
    graph_ = std::make_unique<timing::TimingGraph>(*design_);
    gen::ModeFamilyParams mp;
    mp.seed = 11;
    mp.num_modes = 10;
    mp.target_groups = 2;
    family_ = gen::generate_mode_family(dp_, mp);
    for (const gen::GeneratedMode& gm : family_) {
      modes_.push_back(std::make_unique<sdc::Sdc>(
          sdc::parse_sdc(gm.sdc_text, *design_)));
    }
  }

  ~JournalTest() override { Journal::close(); }

  std::string path(const char* name) const {
    return ::testing::TempDir() + "/" + name;
  }

  netlist::Library lib_ = netlist::Library::builtin();
  gen::DesignParams dp_;
  std::unique_ptr<netlist::Design> design_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::vector<gen::GeneratedMode> family_;
  std::vector<std::unique_ptr<sdc::Sdc>> modes_;
};

size_t count_events(const JournalData& j, const std::string& ev,
                    uint64_t commit = 0) {
  size_t n = 0;
  for (const JournalRecord& rec : j.events) {
    if (rec.ev != ev) continue;
    if (commit != 0 && rec.json.uint("commit") != commit) continue;
    ++n;
  }
  return n;
}

TEST_F(JournalTest, ExactEventCountsAcrossMultiCommitSession) {
  const std::string file = path("journal_counts.jsonl");
  ASSERT_TRUE(Journal::open(file));

  merge::MergeOptions options;
  options.num_threads = 8;  // parallel pair checks; emission must stay exact
  merge::MergeSession session(*graph_, options);

  std::vector<merge::MergeSession::ModeId> ids;
  for (size_t i = 0; i < 6; ++i) {
    ids.push_back(session.add_mode(family_[i].name, modes_[i].get()));
  }
  const merge::MergeSession::CommitResult c1 = session.commit();

  session.update_mode(ids[2], modes_[6].get());
  const merge::MergeSession::CommitResult c2 = session.commit();

  session.remove_mode(ids[0]);
  ids.push_back(session.add_mode(family_[7].name, modes_[7].get()));
  const merge::MergeSession::CommitResult c3 = session.commit();

  Journal::close();
  const JournalData j = read_journal(file);

  EXPECT_EQ(j.schema, kJournalSchema);
  EXPECT_EQ(count_events(j, "mode_add"), 7u);
  EXPECT_EQ(count_events(j, "mode_update"), 1u);
  EXPECT_EQ(count_events(j, "mode_remove"), 1u);
  EXPECT_EQ(count_events(j, "commit_begin"), 3u);
  EXPECT_EQ(count_events(j, "commit_end"), 3u);

  // Journal-vs-stats consistency: one pair_verdict per re-checked pair,
  // one clique event per cover clique, refine/equivalence only for cliques
  // actually (re-)merged this commit.
  const merge::MergeSession::CommitResult* commits[] = {&c1, &c2, &c3};
  for (uint64_t k = 1; k <= 3; ++k) {
    const merge::MergeSession::CommitResult& r = *commits[k - 1];
    EXPECT_EQ(count_events(j, "pair_verdict", k), r.pairs_rechecked)
        << "commit " << k;
    EXPECT_EQ(count_events(j, "clique", k), r.cliques.size()) << "commit " << k;
    EXPECT_EQ(count_events(j, "refine", k), r.cliques_merged) << "commit " << k;
    EXPECT_EQ(count_events(j, "equivalence", k), r.cliques_merged)
        << "commit " << k;
  }
  EXPECT_EQ(c1.pairs_rechecked, 15u);  // C(6,2): everything dirty
  EXPECT_EQ(c2.pairs_rechecked, 5u);   // only the updated mode's pairs

  // No lost or duplicated events: strictly increasing unique seq numbers
  // (the header line is the one event without a seq).
  std::set<uint64_t> seqs;
  uint64_t prev = 0;
  for (const JournalRecord& rec : j.events) {
    if (rec.ev == "header") continue;
    const uint64_t seq = rec.json.uint("seq");
    EXPECT_GT(seq, prev);
    prev = seq;
    EXPECT_TRUE(seqs.insert(seq).second) << "duplicate seq " << seq;
  }
  EXPECT_EQ(j.events.size(), seqs.size() + 1);
}

TEST_F(JournalTest, VerdictProvenanceAndContentKeysRecorded) {
  const std::string file = path("journal_prov.jsonl");
  ASSERT_TRUE(Journal::open(file));

  merge::MergeSession session(*graph_, merge::MergeOptions{});
  // One mode from each planted group: guaranteed unmergeable.
  size_t other = 0;
  while (family_[other].group == family_[0].group) ++other;
  session.add_mode(family_[0].name, modes_[0].get());
  session.add_mode(family_[other].name, modes_[other].get());
  session.commit();
  Journal::close();

  const JournalData j = read_journal(file);
  size_t conflicts = 0;
  for (const JournalRecord& rec : j.events) {
    if (rec.ev == "mode_add") {
      // Content key: 16-hex-digit RelationshipCache hash.
      const std::string key = rec.json.str("content_key");
      ASSERT_EQ(key.size(), 18u) << key;
      EXPECT_EQ(key.substr(0, 2), "0x");
    }
    if (rec.ev != "pair_verdict" || rec.json.boolean("mergeable", true)) {
      continue;
    }
    ++conflicts;
    EXPECT_FALSE(rec.json.str("category").empty());
    EXPECT_FALSE(rec.json.str("subject").empty());
    EXPECT_FALSE(rec.json.str("reason").empty());
    EXPECT_TRUE(rec.json.boolean("a_rels_fresh", false));
    EXPECT_TRUE(rec.json.boolean("b_rels_fresh", false));
  }
  EXPECT_EQ(conflicts, 1u);
}

/// Windowed-policy sessions record window provenance on accepted
/// pair_verdict events (policy, winning field, used-vs-budget) and
/// mmreport explain renders it; exact sessions emit no policy key at all,
/// keeping their journals byte-compatible with the pre-policy format.
TEST_F(JournalTest, WindowedPolicyProvenanceRecorded) {
  // A two-group near-miss family: the adjacent pair disagrees by
  // W - eps = 0.15, inside the 0.2 window, outside exact tolerance.
  gen::ModeFamilyParams mp;
  mp.seed = 11;
  mp.num_modes = 2;
  mp.target_groups = 2;
  mp.near_miss_window = 0.2;
  mp.near_miss_epsilon = 0.05;
  const auto fam = gen::generate_mode_family(dp_, mp);
  std::vector<std::unique_ptr<sdc::Sdc>> nm;
  for (const gen::GeneratedMode& gm : fam) {
    nm.push_back(std::make_unique<sdc::Sdc>(
        sdc::parse_sdc(gm.sdc_text, *design_)));
  }

  const std::string file = path("journal_windowed.jsonl");
  ASSERT_TRUE(Journal::open(file));
  merge::MergeOptions opt;
  opt.validate = false;
  opt.policy = merge::MergePolicy::uniform(0.2);
  merge::MergeSession session(*graph_, opt);
  session.add_mode(fam[0].name, nm[0].get());
  session.add_mode(fam[1].name, nm[1].get());
  session.commit();
  Journal::close();

  const JournalData j = read_journal(file);
  size_t windowed_accepts = 0;
  for (const JournalRecord& rec : j.events) {
    if (rec.ev != "pair_verdict") continue;
    ASSERT_TRUE(rec.json.boolean("mergeable", false));
    EXPECT_EQ(rec.json.str("policy"), "windowed");
    EXPECT_FALSE(rec.json.str("window_field").empty());
    EXPECT_DOUBLE_EQ(rec.json.num("window_budget"), 0.2);
    EXPECT_GT(rec.json.num("window_used"), 0.0);
    EXPECT_LE(rec.json.num("window_used"),
              rec.json.num("window_budget") + 1e-12);
    ++windowed_accepts;
  }
  EXPECT_EQ(windowed_accepts, 1u);
  EXPECT_NE(explain_pair(j, fam[0].name, fam[1].name).find("policy: windowed"),
            std::string::npos);

  // Exact control: same modes, default options — no policy key anywhere.
  const std::string exact_file = path("journal_exact_ctrl.jsonl");
  ASSERT_TRUE(Journal::open(exact_file));
  merge::MergeOptions exact;
  exact.validate = false;
  merge::MergeSession exact_session(*graph_, exact);
  exact_session.add_mode(fam[0].name, nm[0].get());
  exact_session.add_mode(fam[1].name, nm[1].get());
  exact_session.commit();
  Journal::close();
  const JournalData je = read_journal(exact_file);
  for (const JournalRecord& rec : je.events) {
    EXPECT_EQ(rec.json.find("policy"), nullptr) << rec.ev;
  }
}

/// mmreport explain/timeline are byte-stable across the producing run's
/// --threads (the ISSUE acceptance bar). Session journal ids are process-
/// wide, so normalize them before comparing two same-process runs — a CLI
/// run is always "session 1".
std::string normalized_render(const JournalData& j, const std::string& a,
                              const std::string& b) {
  uint64_t session_id = 0;
  for (const JournalRecord& rec : j.events) {
    if (const JsonValue* s = rec.json.find("session")) {
      session_id = static_cast<uint64_t>(s->num_v);
      break;
    }
  }
  std::string text =
      explain_pair(j, a, b) + "\n===\n" + render_timeline(j);
  const std::string from = "session " + std::to_string(session_id);
  std::string out;
  size_t pos = 0;
  while (true) {
    const size_t hit = text.find(from, pos);
    if (hit == std::string::npos) {
      out += text.substr(pos);
      return out;
    }
    out += text.substr(pos, hit - pos);
    out += "session S";
    pos = hit + from.size();
  }
}

TEST_F(JournalTest, ExplainAndTimelineByteStableAcrossThreads) {
  // A cross-group pair, so explain shows a NOT MERGEABLE verdict chain.
  size_t other = 5;
  while (family_[other].group == family_[0].group) ++other;
  std::vector<std::string> renders;
  for (size_t threads : {1, 8}) {
    const std::string file =
        path(threads == 1 ? "journal_t1.jsonl" : "journal_t8.jsonl");
    ASSERT_TRUE(Journal::open(file));
    merge::MergeOptions options;
    options.num_threads = threads;
    merge::MergeSession session(*graph_, options);
    std::vector<merge::MergeSession::ModeId> ids;
    for (size_t i = 0; i < family_.size(); ++i) {
      ids.push_back(session.add_mode(family_[i].name, modes_[i].get()));
    }
    session.commit();
    session.remove_mode(ids[4]);
    session.commit();
    Journal::close();
    renders.push_back(normalized_render(read_journal(file), family_[0].name,
                                        family_[other].name));
  }
  EXPECT_EQ(renders[0], renders[1]);

  // Golden structure for the cross-group pair on the 10-mode example:
  // a NOT MERGEABLE verdict with provenance, and both modes placed in
  // (different) cover cliques.
  const std::string& text = renders[0];
  EXPECT_NE(text.find("NOT MERGEABLE"), std::string::npos) << text;
  EXPECT_NE(text.find("category:"), std::string::npos) << text;
  EXPECT_NE(text.find("clique"), std::string::npos) << text;
  EXPECT_NE(text.find(family_[0].name), std::string::npos) << text;
  EXPECT_NE(text.find(family_[other].name), std::string::npos) << text;
  // The interned key id and seq depend on thread scheduling; renderers
  // must never print them.
  EXPECT_EQ(text.find("key_id"), std::string::npos) << text;
  EXPECT_EQ(text.find("seq"), std::string::npos) << text;
}

TEST_F(JournalTest, ExplainUnknownModeThrows) {
  const std::string file = path("journal_unknown.jsonl");
  ASSERT_TRUE(Journal::open(file));
  merge::MergeSession session(*graph_, merge::MergeOptions{});
  session.add_mode(family_[0].name, modes_[0].get());
  session.add_mode(family_[1].name, modes_[1].get());
  session.commit();
  Journal::close();

  const JournalData j = read_journal(file);
  EXPECT_THROW(explain_pair(j, family_[0].name, "no_such_mode"), Error);
  EXPECT_NO_THROW(explain_pair(j, family_[0].name, family_[1].name));
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream(path, std::ios::binary) << text;
}

TEST(JournalReaderTest, MalformedJournalsRejectedWithLineNumbers) {
  const std::string dir = ::testing::TempDir();

  EXPECT_THROW(read_journal(dir + "/does_not_exist.jsonl"), Error);

  const std::string empty = dir + "/empty.jsonl";
  write_file(empty, "");
  EXPECT_THROW(read_journal(empty), Error);

  const std::string bad_json = dir + "/bad_json.jsonl";
  write_file(bad_json,
             "{\"ev\":\"header\",\"schema\":\"mm.journal/1\"}\n{nope\n");
  try {
    read_journal(bad_json);
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }

  const std::string no_ev = dir + "/no_ev.jsonl";
  write_file(no_ev,
             "{\"ev\":\"header\",\"schema\":\"mm.journal/1\"}\n"
             "{\"seq\":1}\n");
  EXPECT_THROW(read_journal(no_ev), Error);

  const std::string no_header = dir + "/no_header.jsonl";
  write_file(no_header, "{\"ev\":\"mode_add\",\"seq\":1}\n");
  EXPECT_THROW(read_journal(no_header), Error);

  const std::string wrong_schema = dir + "/wrong_schema.jsonl";
  write_file(wrong_schema,
             "{\"ev\":\"header\",\"schema\":\"mm.journal/9\"}\n");
  EXPECT_THROW(read_journal(wrong_schema), Error);
}

TEST(JournalReaderTest, ProfileReportAggregatesSelfTime) {
  // Two nested spans on one thread: outer self time = 100 - 40.
  const std::string trace =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"outer\",\"ph\":\"X\",\"ts\":0,\"dur\":100,\"tid\":1},"
      "{\"name\":\"inner\",\"ph\":\"X\",\"ts\":10,\"dur\":40,\"tid\":1}]}";
  const std::string report = profile_report(trace, 10);
  EXPECT_NE(report.find("outer"), std::string::npos) << report;
  EXPECT_NE(report.find("inner"), std::string::npos) << report;
  EXPECT_NE(report.find("0.0001"), std::string::npos) << report;  // 100 us
  EXPECT_THROW(profile_report("{not json", 10), Error);
}

TEST(JournalWriterTest, DisabledJournalAppendsNothing) {
  ASSERT_FALSE(Journal::enabled());
  const uint64_t before = Journal::events_appended();
  Journal::drain();  // no-op when disabled
  EXPECT_EQ(Journal::events_appended(), before);
}

}  // namespace
}  // namespace mm::obs
