// Merge-policy tests (docs/POLICIES.md): the exact policy stays
// byte-identical across every engine (batch, session, sharded session) and
// equals a zero-width windowed policy; the windowed policy is monotone in
// its window, takes the worst-case envelope per field, records window
// provenance on its verdicts, and passes the mm.qor/1 never-optimistic
// oracle with pessimism inside MergePolicy::pessimism_bound().

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "gen/paper_circuit.h"
#include "merge/mergeability.h"
#include "merge/merger.h"
#include "merge/policy.h"
#include "merge/preliminary.h"
#include "merge/qor.h"
#include "merge/session.h"
#include "merge/sharded_session.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/graph.h"

namespace mm::merge {
namespace {

std::vector<std::string> merged_bytes(const MergedModeSet& out) {
  std::vector<std::string> bytes;
  for (const ValidatedMergeResult& m : out.merged) {
    bytes.push_back(sdc::write_sdc(*m.merge.merged));
  }
  return bytes;
}

/// Generated-family fixture: a 60-register two-domain design, with helpers
/// for the 10/64-mode paper-style families and the near-miss policy family
/// (gen/mode_gen.h).
class PolicyFamilyTest : public ::testing::Test {
 protected:
  PolicyFamilyTest() {
    dp_.seed = 11;
    dp_.num_regs = 60;
    dp_.num_domains = 2;
    design_ = std::make_unique<netlist::Design>(gen::generate_design(lib_, dp_));
    graph_ = std::make_unique<timing::TimingGraph>(*design_);
  }

  std::vector<const sdc::Sdc*> family(const gen::ModeFamilyParams& mp) {
    storage_.clear();
    std::vector<const sdc::Sdc*> ptrs;
    for (const gen::GeneratedMode& gm : gen::generate_mode_family(dp_, mp)) {
      storage_.push_back(std::make_unique<sdc::Sdc>(
          sdc::parse_sdc(gm.sdc_text, *design_)));
      ptrs.push_back(storage_.back().get());
    }
    return ptrs;
  }

  static gen::ModeFamilyParams paper(size_t modes, size_t groups) {
    gen::ModeFamilyParams mp;
    mp.seed = 11;
    mp.num_modes = modes;
    mp.target_groups = groups;
    return mp;
  }

  static gen::ModeFamilyParams near_miss(size_t groups, double w, double eps) {
    gen::ModeFamilyParams mp;
    mp.seed = 11;
    mp.num_modes = groups;
    mp.target_groups = groups;
    mp.near_miss_window = w;
    mp.near_miss_epsilon = eps;
    return mp;
  }

  netlist::Library lib_ = netlist::Library::builtin();
  gen::DesignParams dp_;
  std::unique_ptr<netlist::Design> design_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::vector<std::unique_ptr<sdc::Sdc>> storage_;
};

/// The exact policy is the zero value: fingerprint 0 (no session cache-key
/// salt), zero pessimism bound, and byte-identical output whether it is the
/// default, stated explicitly, or approximated by a zero-width window.
TEST_F(PolicyFamilyTest, ExactEqualsZeroWidthWindowOnPaperFamily) {
  const std::vector<const sdc::Sdc*> ptrs = family(paper(10, 2));

  EXPECT_EQ(MergePolicy().fingerprint(), 0u);
  EXPECT_EQ(MergePolicy().pessimism_bound(), 0.0);
  EXPECT_NE(MergePolicy::uniform(0.25).fingerprint(), 0u);

  MergeOptions exact;
  exact.validate = false;
  const MergedModeSet base = merge_mode_set(*graph_, ptrs, exact);
  ASSERT_EQ(base.cliques.size(), 2u);

  MergeOptions zero = exact;
  zero.policy = MergePolicy::uniform(0.0);
  ASSERT_TRUE(zero.policy.windowed());
  const MergedModeSet win = merge_mode_set(*graph_, ptrs, zero);
  EXPECT_EQ(win.cliques, base.cliques);
  EXPECT_EQ(merged_bytes(win), merged_bytes(base));
}

/// Under the exact policy, every engine — flat batch, incremental session,
/// sharded session — produces the same clique cover and merged bytes on the
/// 10-mode paper family (the policy plumbing must not perturb any path).
TEST_F(PolicyFamilyTest, ExactBytesIdenticalAcrossEngines) {
  const std::vector<const sdc::Sdc*> ptrs = family(paper(10, 2));
  MergeOptions opt;
  opt.validate = false;
  const MergedModeSet base = merge_mode_set(*graph_, ptrs, opt);
  const std::vector<std::string> bytes = merged_bytes(base);

  MergeSession session(*graph_, opt);
  for (size_t i = 0; i < ptrs.size(); ++i) {
    session.add_mode("m" + std::to_string(i), ptrs[i]);
  }
  const MergeSession::CommitResult& r = session.commit();
  ASSERT_EQ(r.cliques, base.cliques);
  for (size_t i = 0; i < r.merged.size(); ++i) {
    EXPECT_EQ(sdc::write_sdc(*r.merged[i]->merge.merged), bytes[i]) << i;
  }

  MergeOptions sharded_opt = opt;
  sharded_opt.num_shards = 4;
  ShardedMergeSession sharded(*graph_, sharded_opt);
  for (size_t i = 0; i < ptrs.size(); ++i) {
    sharded.add_mode("m" + std::to_string(i), ptrs[i]);
  }
  const MergeSession::CommitResult& sr = sharded.commit();
  ASSERT_EQ(sr.cliques, base.cliques);
  for (size_t i = 0; i < sr.merged.size(); ++i) {
    EXPECT_EQ(sdc::write_sdc(*sr.merged[i]->merge.merged), bytes[i]) << i;
  }
}

/// Same engine parity at the 64-mode Table-5 scale (8 planted groups).
TEST_F(PolicyFamilyTest, SixtyFourModeExactParity) {
  const std::vector<const sdc::Sdc*> ptrs = family(paper(64, 8));
  MergeOptions opt;
  opt.validate = false;
  const MergedModeSet base = merge_mode_set(*graph_, ptrs, opt);
  ASSERT_EQ(base.cliques.size(), 8u);

  MergeOptions zero = opt;
  zero.policy = MergePolicy::uniform(0.0);
  const MergedModeSet win = merge_mode_set(*graph_, ptrs, zero);
  EXPECT_EQ(win.cliques, base.cliques);
  EXPECT_EQ(merged_bytes(win), merged_bytes(base));

  MergeSession session(*graph_, opt);
  for (size_t i = 0; i < ptrs.size(); ++i) {
    session.add_mode("m" + std::to_string(i), ptrs[i]);
  }
  const MergeSession::CommitResult& r = session.commit();
  ASSERT_EQ(r.cliques, base.cliques);
  for (size_t i = 0; i < r.merged.size(); ++i) {
    EXPECT_EQ(sdc::write_sdc(*r.merged[i]->merge.merged),
              sdc::write_sdc(*base.merged[i].merge.merged))
        << i;
  }
}

/// Metamorphic window monotonicity: widening the window never removes a
/// mergeability edge and never grows the clique cover. On the 6-group
/// near-miss family the cover walks 6 -> 3 -> 1 as the window passes each
/// boundary, and every intermediate count is non-increasing.
TEST_F(PolicyFamilyTest, WindowMonotonicity) {
  const std::vector<const sdc::Sdc*> ptrs = family(near_miss(6, 0.2, 0.05));
  const double windows[] = {0.0, 0.1, 0.2, 0.45, 1.0};

  std::vector<std::vector<bool>> prev_edges;
  size_t prev_cover = ptrs.size() + 1;
  for (const double w : windows) {
    MergeOptions opt;
    opt.policy = MergePolicy::uniform(w);
    MergeabilityGraph g(ptrs, opt);
    std::vector<std::vector<bool>> edges(ptrs.size(),
                                         std::vector<bool>(ptrs.size()));
    for (size_t i = 0; i < ptrs.size(); ++i) {
      for (size_t j = i + 1; j < ptrs.size(); ++j) {
        edges[i][j] = g.edge(i, j);
        if (!prev_edges.empty()) {
          // Monotone: an edge present at the smaller window survives.
          EXPECT_LE(prev_edges[i][j], edges[i][j])
              << "window " << w << " lost edge (" << i << "," << j << ")";
        }
      }
    }
    const size_t cover = g.clique_cover().size();
    EXPECT_LE(cover, prev_cover) << "window " << w;
    prev_edges = std::move(edges);
    prev_cover = cover;
  }
  EXPECT_EQ(prev_cover, 1u);  // the widest window merges everything

  MergeOptions tight;
  tight.policy = MergePolicy::uniform(0.1);
  EXPECT_EQ(MergeabilityGraph(ptrs, tight).clique_cover().size(), 6u);
  MergeOptions at_boundary;
  at_boundary.policy = MergePolicy::uniform(0.2);
  EXPECT_EQ(MergeabilityGraph(ptrs, at_boundary).clique_cover().size(), 3u);
}

/// The windowed merge of the near-miss family passes the QoR oracle: never
/// optimistic, pessimism within the policy bound, serialized as mm.qor/1.
TEST_F(PolicyFamilyTest, NearMissQoRNeverOptimisticAndBounded) {
  const std::vector<const sdc::Sdc*> ptrs = family(near_miss(6, 0.2, 0.05));
  MergeOptions opt;
  opt.validate = false;
  opt.policy = MergePolicy::uniform(0.2);
  const MergedModeSet out = merge_mode_set(*graph_, ptrs, opt);
  ASSERT_EQ(out.cliques.size(), 3u);

  const QoRReport qor = qor_report(*graph_, ptrs, out, opt);
  EXPECT_EQ(qor.policy, "windowed");
  EXPECT_EQ(qor.cliques.size(), 3u);  // every clique here is a pair
  EXPECT_GT(qor.endpoints_compared, 0u);
  EXPECT_TRUE(qor.never_optimistic());
  EXPECT_LE(qor.max_pessimism, opt.policy.pessimism_bound() + qor.slack_eps);

  const std::string json = write_qor_json(qor);
  EXPECT_NE(json.find("\"schema\":\"mm.qor/1\""), std::string::npos);
  EXPECT_NE(json.find("\"never_optimistic\":true"), std::string::npos);
}

/// Hand-built decks on the paper circuit: per-field envelope + provenance.
class PolicyEnvelopeTest : public ::testing::Test {
 protected:
  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design_);
  }

  static MergeOptions windowed(double w) {
    MergeOptions opt;
    opt.policy = MergePolicy::uniform(w);
    return opt;
  }

  netlist::Library lib_ = netlist::Library::builtin();
  netlist::Design design_ = gen::paper_circuit(lib_);
  const std::string clock_ = "create_clock -name c -period 10 [get_ports clk1]\n";
};

TEST_F(PolicyEnvelopeTest, LatencyEnvelopeKeepsSpanEdges) {
  sdc::Sdc a = parse(clock_ + "set_clock_latency 1.0 [get_clocks c]\n");
  sdc::Sdc b = parse(clock_ + "set_clock_latency 1.2 [get_clocks c]\n");

  // Exact: 0.2 apart is a conflict. Windowed 0.3: accepted with provenance.
  EXPECT_FALSE(check_mergeable(a, b, MergeOptions{}).mergeable);
  const PairVerdict v = check_mergeable(a, b, windowed(0.3));
  ASSERT_TRUE(v.mergeable) << v.reason;
  EXPECT_EQ(v.policy, "windowed");
  EXPECT_EQ(v.window_field, "clock_latency");
  EXPECT_NEAR(v.window_used, 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(v.window_budget, 0.3);

  // Merged deck: worst-case envelope — max flavour at the max over modes,
  // min flavour at the min (a plain set_clock_latency carries both flags).
  const MergeResult r = preliminary_merge({&a, &b}, windowed(0.3));
  ASSERT_EQ(r.merged->clock_latencies().size(), 2u);
  for (const sdc::ClockLatency& lat : r.merged->clock_latencies()) {
    EXPECT_DOUBLE_EQ(lat.value, lat.minmax.max ? 1.2 : 1.0);
  }
}

TEST_F(PolicyEnvelopeTest, UncertaintyEnvelopeKeepsMax) {
  sdc::Sdc a =
      parse(clock_ + "set_clock_uncertainty -setup 0.30 [get_clocks c]\n");
  sdc::Sdc b =
      parse(clock_ + "set_clock_uncertainty -setup 0.45 [get_clocks c]\n");

  EXPECT_FALSE(check_mergeable(a, b, MergeOptions{}).mergeable);
  const PairVerdict v = check_mergeable(a, b, windowed(0.3));
  ASSERT_TRUE(v.mergeable) << v.reason;
  EXPECT_EQ(v.window_field, "clock_uncertainty");
  EXPECT_NEAR(v.window_used, 0.15, 1e-9);

  const MergeResult r = preliminary_merge({&a, &b}, windowed(0.3));
  ASSERT_EQ(r.merged->clock_uncertainties().size(), 1u);
  EXPECT_DOUBLE_EQ(r.merged->clock_uncertainties()[0].value, 0.45);
}

TEST_F(PolicyEnvelopeTest, TransitionEnvelopeKeepsSpanEdges) {
  sdc::Sdc a = parse(clock_ + "set_clock_transition 0.10 [get_clocks c]\n");
  sdc::Sdc b = parse(clock_ + "set_clock_transition 0.18 [get_clocks c]\n");

  EXPECT_FALSE(check_mergeable(a, b, MergeOptions{}).mergeable);
  const PairVerdict v = check_mergeable(a, b, windowed(0.3));
  ASSERT_TRUE(v.mergeable) << v.reason;
  EXPECT_EQ(v.window_field, "clock_transition");

  const MergeResult r = preliminary_merge({&a, &b}, windowed(0.3));
  ASSERT_EQ(r.merged->clock_transitions().size(), 2u);
  for (const sdc::ClockTransition& tr : r.merged->clock_transitions()) {
    EXPECT_DOUBLE_EQ(tr.value, tr.minmax.max ? 0.18 : 0.10);
  }
}

TEST_F(PolicyEnvelopeTest, DriveLoadWindowKeepsWorst) {
  sdc::Sdc a = parse(
      "set_input_transition 0.30 [get_ports in1]\n"
      "set_load 2.0 [get_ports out1]\n");
  sdc::Sdc b = parse(
      "set_input_transition 0.55 [get_ports in1]\n"
      "set_load 2.25 [get_ports out1]\n");

  // Exact drops both (out of tolerance); the window keeps the worst value.
  const MergeResult exact = preliminary_merge({&a, &b}, MergeOptions{});
  EXPECT_TRUE(exact.merged->drives().empty());
  EXPECT_TRUE(exact.merged->loads().empty());
  EXPECT_EQ(exact.stats.drive_load_dropped, 2u);

  const MergeResult win = preliminary_merge({&a, &b}, windowed(0.3));
  ASSERT_EQ(win.merged->drives().size(), 1u);
  EXPECT_DOUBLE_EQ(win.merged->drives()[0].value, 0.55);
  ASSERT_EQ(win.merged->loads().size(), 1u);
  EXPECT_DOUBLE_EQ(win.merged->loads()[0].value, 2.25);

  const PairVerdict v = check_mergeable(a, b, windowed(0.3));
  ASSERT_TRUE(v.mergeable) << v.reason;
  EXPECT_TRUE(v.window_field == "drive" || v.window_field == "load")
      << v.window_field;
}

TEST_F(PolicyEnvelopeTest, ExactVerdictCarriesExactProvenance) {
  sdc::Sdc a = parse(clock_);
  sdc::Sdc b = parse(clock_);
  const PairVerdict v = check_mergeable(a, b, MergeOptions{});
  ASSERT_TRUE(v.mergeable);
  EXPECT_EQ(v.policy, "exact");
  EXPECT_TRUE(v.window_field.empty());
  EXPECT_DOUBLE_EQ(v.window_used, 0.0);
  EXPECT_DOUBLE_EQ(v.window_budget, 0.0);
}

/// A disagreement past the window is still a conflict — and the verdict
/// says which policy rejected it.
TEST_F(PolicyEnvelopeTest, PastWindowStaysConflict) {
  sdc::Sdc a =
      parse(clock_ + "set_clock_uncertainty -setup 0.30 [get_clocks c]\n");
  sdc::Sdc b =
      parse(clock_ + "set_clock_uncertainty -setup 0.75 [get_clocks c]\n");
  const PairVerdict v = check_mergeable(a, b, windowed(0.3));
  EXPECT_FALSE(v.mergeable);
  EXPECT_EQ(v.policy, "windowed");
}

}  // namespace
}  // namespace mm::merge
