// mm::obs — metrics registry, phase-scoped tracing, stats serialization.
//
// The contention tests drive the registry through ThreadPool::parallel_for
// (the same primitive the merge/STA pipeline parallelizes with) and assert
// exact totals: the sharded fast path must lose no update.

#include <gtest/gtest.h>

#include <cctype>
#include <regex>
#include <string>
#include <thread>

#include "obs/obs.h"
#include "util/logger.h"
#include "util/thread_pool.h"

namespace mm::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (recursive descent). Accepts exactly the JSON
// grammar; used to prove every serialized document is loadable by a strict
// parser without adding a dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char c = s_[pos_];
        if (c == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(c) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // unescaped control character
      }
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const size_t start = pos_;
    if (peek('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::string(".+-eE").find(s_[pos_]) != std::string::npos)) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.key("quote\"back\\slash").value("line\nbreak\ttab");
  w.key("nums").begin_array().value(1.5).value(uint64_t{42}).value(
      int64_t{-7});
  w.end_array();
  w.key("flag").value(true);
  w.key("nan_is_null").value(std::nan(""));
  w.end_object();
  const std::string json = w.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
}

TEST(Metrics, CounterExactUnderParallelFor) {
  Counter c = MetricsRegistry::global().counter("test/obs/counter_pf");
  constexpr size_t kTasks = 256;
  constexpr size_t kAddsPerTask = 1000;
  ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](size_t) {
    for (size_t j = 0; j < kAddsPerTask; ++j) c.add(1);
  });
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
  c.add(5);
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask + 5);
}

TEST(Metrics, HistogramExactUnderParallelFor) {
  Histogram h = MetricsRegistry::global().histogram("test/obs/hist_pf");
  constexpr size_t kTasks = 128;
  constexpr uint64_t kUs = 37;
  ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](size_t i) {
    for (size_t j = 0; j < 100; ++j) h.record_us(kUs + (i % 3));
  });
  EXPECT_EQ(h.count(), kTasks * 100);
  // Every recorded value is 37..39 us; sum must be exact.
  uint64_t expected_sum = 0;
  for (size_t i = 0; i < kTasks; ++i) expected_sum += (kUs + (i % 3)) * 100;
  EXPECT_EQ(h.sum_us(), expected_sum);
}

TEST(Metrics, HistogramBuckets) {
  using detail::HistogramImpl;
  EXPECT_EQ(HistogramImpl::bucket_of(0), 0u);
  EXPECT_EQ(HistogramImpl::bucket_of(1), 1u);
  EXPECT_EQ(HistogramImpl::bucket_of(2), 2u);
  EXPECT_EQ(HistogramImpl::bucket_of(3), 2u);
  EXPECT_EQ(HistogramImpl::bucket_of(4), 3u);
  // Overflow clamps to the last bucket.
  EXPECT_EQ(HistogramImpl::bucket_of(UINT64_MAX), kNumHistBuckets - 1);
}

TEST(Metrics, HistogramPercentilesFromBuckets) {
  Histogram h = MetricsRegistry::global().histogram("test/obs/hist_pct");
  // 100 samples spread over two buckets: 50 at 10 us, 50 at 1000 us.
  for (int i = 0; i < 50; ++i) h.record_us(10);
  for (int i = 0; i < 50; ++i) h.record_us(1000);
  HistogramSnapshot snap;
  for (const HistogramSnapshot& s : MetricsRegistry::global().snapshot().histograms) {
    if (s.name == "test/obs/hist_pct") snap = s;
  }
  ASSERT_EQ(snap.count, 100u);
  // p50 lands in the low bucket, p95/p99 in the high one; factor-of-2
  // bucket resolution, clamped to the recorded min/max.
  EXPECT_LE(snap.percentile_us(0.50), 16u);
  EXPECT_GE(snap.percentile_us(0.50), 8u);
  EXPECT_GT(snap.percentile_us(0.95), 500u);
  EXPECT_LE(snap.percentile_us(0.95), 1000u);
  EXPECT_LE(snap.percentile_us(0.99), 1000u);
  EXPECT_EQ(snap.percentile_us(1.0), 1000u);  // clamped to max

  // Degenerate cases: empty -> 0, single value -> exactly that value.
  HistogramSnapshot empty;
  EXPECT_EQ(empty.percentile_us(0.5), 0u);
  Histogram one = MetricsRegistry::global().histogram("test/obs/hist_one");
  one.record_us(77);
  for (const HistogramSnapshot& s : MetricsRegistry::global().snapshot().histograms) {
    if (s.name == "test/obs/hist_one") {
      EXPECT_EQ(s.percentile_us(0.5), 77u);
      EXPECT_EQ(s.percentile_us(0.99), 77u);
    }
  }
}

TEST(Metrics, GaugeSetAndMax) {
  Gauge g = MetricsRegistry::global().gauge("test/obs/gauge");
  g.set(10);
  g.set_max(5);
  EXPECT_EQ(g.value(), 10);
  g.set_max(22);
  EXPECT_EQ(g.value(), 22);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
}

TEST(Metrics, SnapshotSortedAndDeterministic) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test/obs/z_last").add(1);
  reg.counter("test/obs/a_first").add(2);

  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();

  ASSERT_FALSE(s1.counters.empty());
  for (size_t i = 1; i < s1.counters.size(); ++i) {
    EXPECT_LT(s1.counters[i - 1].first, s1.counters[i].first);
  }
  ASSERT_EQ(s1.counters.size(), s2.counters.size());
  for (size_t i = 0; i < s1.counters.size(); ++i) {
    EXPECT_EQ(s1.counters[i], s2.counters[i]);
  }

  // Full documents are byte-identical once the wall-clock field is masked.
  const std::regex elapsed("\"elapsed_seconds\":[0-9.eE+-]+");
  const std::string j1 = std::regex_replace(stats_json(), elapsed, "X");
  const std::string j2 = std::regex_replace(stats_json(), elapsed, "X");
  EXPECT_EQ(j1, j2);
}

TEST(Metrics, ResetKeepsHandlesValid) {
  Counter c = MetricsRegistry::global().counter("test/obs/reset");
  c.add(9);
  EXPECT_EQ(c.value(), 9u);
  MetricsRegistry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Trace, SpanNestingContainment) {
  Trace::set_enabled(true);
  Trace::clear();
  {
    TraceSpan outer(std::string("test/outer"));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner(std::string("test/inner"));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Trace::set_enabled(false);

  const std::vector<TraceEvent> events = Trace::collect();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "test/outer") outer = &e;
    if (e.name == "test/inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->ts_us, inner->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, inner->ts_us + inner->dur_us);
  EXPECT_GE(inner->dur_us, 1000.0);   // slept >= 2ms
  EXPECT_GE(outer->dur_us, inner->dur_us);
}

TEST(Trace, ChromeJsonFormat) {
  Trace::set_enabled(true);
  Trace::clear();
  {
    TraceSpan a(std::string("fmt/alpha"));
    TraceSpan b(std::string("fmt/beta"));
  }
  Trace::set_enabled(false);
  const std::string json = Trace::chrome_json();

  // Loadable by a strict JSON parser (chrome://tracing / Perfetto first
  // json.parse the file).
  EXPECT_TRUE(JsonChecker(json).valid()) << json;

  // Chrome trace_event required structure: traceEvents array of complete
  // events with name/ph/ts/dur/pid/tid, plus process metadata.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fmt/alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fmt/beta\""), std::string::npos);
  for (const char* key : {"\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Trace, SpansUnderParallelForCarryThreadIds) {
  Trace::set_enabled(true);
  Trace::clear();
  ThreadPool pool(4);
  pool.parallel_for(16, [&](size_t i) {
    TraceSpan s("par/span" + std::to_string(i % 2));
    (void)i;
  });
  Trace::set_enabled(false);
  const std::vector<TraceEvent> events = Trace::collect();
  size_t count = 0;
  for (const TraceEvent& e : events) {
    if (e.name.rfind("par/span", 0) == 0) {
      ++count;
      EXPECT_GT(e.tid, 0u);
    }
  }
  EXPECT_EQ(count, 16u);
  EXPECT_TRUE(JsonChecker(Trace::chrome_json()).valid());
}

TEST(Trace, BufferCapDropsEventsAndCounts) {
  Trace::clear();
  Trace::set_buffer_cap(8);
  const uint64_t counter_before =
      MetricsRegistry::global().counter("obs/trace_events_dropped").value();
  const LogLevel prev = Logger::level();
  Logger::set_level(LogLevel::kSilent);  // the one-shot warning stays quiet
  Trace::set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    TraceSpan s(std::string("cap/span"));
  }
  Trace::set_enabled(false);
  Logger::set_level(prev);

  EXPECT_EQ(Trace::events_dropped(), 92u);
  EXPECT_EQ(Trace::collect().size(), 8u);
  EXPECT_EQ(MetricsRegistry::global()
                .counter("obs/trace_events_dropped")
                .value() -
                counter_before,
            92u);

  // clear() re-arms both the cap accounting and the one-shot warning.
  Trace::clear();
  EXPECT_EQ(Trace::events_dropped(), 0u);
  EXPECT_EQ(Trace::buffer_cap(), 8u);
  Trace::set_buffer_cap(0);  // restore the default for later tests
  EXPECT_GT(Trace::buffer_cap(), 8u);
}

TEST(Stats, PhasesAndLogCountsInJson) {
  { TraceSpan s(std::string("statstest/phase")); }
  Logger::reset_counts();
  const LogLevel prev = Logger::level();
  Logger::set_level(LogLevel::kSilent);  // count, but keep stderr quiet
  MM_WARN("synthetic warning %d", 1);
  MM_WARN("synthetic warning %d", 2);
  Logger::set_level(prev);

  StatsMeta meta;
  meta.strings["run"] = "unit-test";
  meta.numbers["answer"] = 42.0;
  const std::string json = stats_json(meta);

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"mm.stats/1\""), std::string::npos);
  EXPECT_NE(json.find("\"statstest/phase\":{\"calls\":"), std::string::npos);
  for (const char* key :
       {"\"p50_seconds\":", "\"p95_seconds\":", "\"p99_seconds\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"warnings\":2"), std::string::npos);
  EXPECT_NE(json.find("\"run\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\":"), std::string::npos);
  Logger::reset_counts();
}

TEST(Stats, ProfileTableListsPhases) {
  { TraceSpan s(std::string("profiletest/phase")); }
  const std::string table = profile_table();
  EXPECT_NE(table.find("profiletest/phase"), std::string::npos);
  EXPECT_NE(table.find("calls"), std::string::npos);
  for (const char* col : {"p50(s)", "p95(s)", "p99(s)"}) {
    EXPECT_NE(table.find(col), std::string::npos) << col;
  }
}

TEST(Stats, PeakRssPositive) { EXPECT_GT(peak_rss_bytes(), 0); }

TEST(Logger, PrefixStyleRoundTrip) {
  EXPECT_EQ(Logger::prefix_style(), LogPrefixStyle::kPlain);
  Logger::set_prefix_style(LogPrefixStyle::kTimestamped);
  EXPECT_EQ(Logger::prefix_style(), LogPrefixStyle::kTimestamped);
  Logger::set_prefix_style(LogPrefixStyle::kPlain);
}

}  // namespace
}  // namespace mm::obs
