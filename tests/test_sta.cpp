// STA driver tests: per-endpoint slacks, multi-mode worst slack, WNS/TNS,
// conformity metric.

#include <gtest/gtest.h>

#include "gen/design_gen.h"
#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "timing/sta.h"

namespace mm::timing {
namespace {

class StaTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }
};

TEST_F(StaTest, CleanModeHasPositiveSlack) {
  // Without input delays only the reg-to-reg endpoints (rX, rY, rZ) carry
  // timed paths; rA/rB/rC are fed by the unconstrained in1 port.
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const StaResult result = run_sta(graph, sdc);
  EXPECT_EQ(result.num_endpoints, 3u);
  EXPECT_DOUBLE_EQ(result.wns, 0.0);
  EXPECT_DOUBLE_EQ(result.tns, 0.0);
  EXPECT_FALSE(result.tag_overflow);

  // Adding an input delay brings the port-fed endpoints into the analysis.
  const sdc::Sdc with_io =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_input_delay 1 -clock c [get_ports in1]\n");
  EXPECT_EQ(run_sta(graph, with_io).num_endpoints, 6u);
}

TEST_F(StaTest, TightModeViolates) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 0.3 [get_ports clk1]\n");
  const StaResult result = run_sta(graph, sdc);
  EXPECT_LT(result.wns, 0.0);
  EXPECT_LT(result.tns, result.wns);  // multiple violating endpoints
}

TEST_F(StaTest, UncertaintyTightensSlack) {
  const StaResult base =
      run_sta(graph, parse("create_clock -name c -period 10 [get_ports clk1]\n"));
  const StaResult unc = run_sta(
      graph, parse("create_clock -name c -period 10 [get_ports clk1]\n"
                   "set_clock_uncertainty -setup 1.0 [get_clocks c]\n"));
  const uint32_t ep = design.find_pin("rY/D").value();
  EXPECT_NEAR(base.endpoint_slack.at(ep) - unc.endpoint_slack.at(ep), 1.0, 1e-4);
}

TEST_F(StaTest, ClockLatencyShiftsCapture) {
  // Ideal capture-clock network latency gives the capture side more time.
  const StaResult base =
      run_sta(graph, parse("create_clock -name c -period 10 [get_ports clk1]\n"));
  const StaResult lat = run_sta(
      graph, parse("create_clock -name c -period 10 [get_ports clk1]\n"
                   "set_clock_latency 0.8 [get_clocks c]\n"));
  // Launch latency also moves arrivals; launch + capture shift cancel for
  // same-clock paths, so slacks stay equal.
  const uint32_t ep = design.find_pin("rY/D").value();
  EXPECT_NEAR(base.endpoint_slack.at(ep), lat.endpoint_slack.at(ep), 1e-4);
}

TEST_F(StaTest, MultiModeKeepsWorst) {
  const sdc::Sdc slow = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const sdc::Sdc fast = parse("create_clock -name c -period 2 [get_ports clk1]\n");
  const StaResult multi = run_sta_multi(graph, {&slow, &fast});
  const StaResult fast_only = run_sta(graph, fast);
  for (const auto& [ep, slack] : multi.endpoint_slack) {
    EXPECT_FLOAT_EQ(slack, fast_only.endpoint_slack.at(ep));
  }
}

TEST_F(StaTest, ConformityIdenticalIs100) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const StaResult a = run_sta(graph, sdc);
  EXPECT_DOUBLE_EQ(conformity(a, a, graph, sdc), 100.0);
}

TEST_F(StaTest, ConformityDetectsDeviation) {
  const sdc::Sdc indiv = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  // Merged stand-in with large extra uncertainty: every slack deviates by
  // 2.0 > 1% of period.
  const sdc::Sdc skewed =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_clock_uncertainty -setup 2.0 [get_clocks c]\n");
  const StaResult a = run_sta(graph, indiv);
  const StaResult b = run_sta(graph, skewed);
  EXPECT_DOUBLE_EQ(conformity(a, b, graph, skewed), 0.0);
  // With a 25% tolerance everything conforms again.
  EXPECT_DOUBLE_EQ(conformity(a, b, graph, skewed, 0.25), 100.0);
}

TEST_F(StaTest, LostEndpointBreaksConformity) {
  const sdc::Sdc indiv = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const sdc::Sdc fp =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_false_path -to [get_pins rX/D]\n");
  const StaResult a = run_sta(graph, indiv);
  const StaResult b = run_sta(graph, fp);
  EXPECT_LT(conformity(a, b, graph, fp), 100.0);
}

TEST_F(StaTest, GeneratedDesignRuns) {
  gen::DesignParams params;
  params.num_regs = 200;
  params.num_domains = 3;
  netlist::Design d = generate_design(lib, params);
  TimingGraph g(d);
  const sdc::Sdc sdc = sdc::parse_sdc(
      "create_clock -name C0 -period 10 [get_ports clk0]\n"
      "create_clock -name C1 -period 12 [get_ports clk1]\n"
      "create_clock -name C2 -period 14 [get_ports clk2]\n"
      "set_case_analysis 0 test_mode\n"
      "set_case_analysis 0 scan_en\n"
      "set_case_analysis 1 en0\nset_case_analysis 1 en1\n"
      "set_case_analysis 1 en2\n"
      "set_input_delay 1 -clock C0 [get_ports di_*]\n"
      "set_output_delay 1 -clock C0 [get_ports do_*]\n",
      d);
  const StaResult result = run_sta(g, sdc);
  EXPECT_GT(result.num_endpoints, 100u);
  EXPECT_FALSE(result.tag_overflow);
}

}  // namespace
}  // namespace mm::timing
