// Corner-aware MCMM engine (merge/mcmm_session.h, docs/MCMM.md):
//   - a C == 1 McmmSession is byte-identical to the flat batch engine on
//     the 10-mode paper-style family (the corner machinery adds nothing);
//   - conflict verdicts attribute the first conflicting corner (name + id)
//     at C > 1 and keep flat defaults at C == 1;
//   - update_mode on ONE corner re-checks only that corner's value slots;
//   - a corner-delta edit re-fills only the value table — the skeleton is
//     never re-extracted — and a structurally broken corner falls back to
//     full extraction without changing any verdict.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/corner_gen.h"
#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "gen/paper_circuit.h"
#include "merge/corner.h"
#include "merge/mcmm_session.h"
#include "merge/mergeability.h"
#include "merge/merger.h"
#include "obs/journal.h"
#include "obs/journal_reader.h"
#include "sdc/parser.h"
#include "sdc/writer.h"

namespace mm::merge {
namespace {

/// The 10-mode paper-style family (two planted mergeable groups) on a
/// small generated design, plus the Figure-1 circuit for hand-built pairs.
class McmmTest : public ::testing::Test {
 protected:
  McmmTest() {
    dp_.seed = 11;
    dp_.num_regs = 60;
    design_ = std::make_unique<netlist::Design>(
        gen::generate_design(lib_, dp_));
    graph_ = std::make_unique<timing::TimingGraph>(*design_);
    gen::ModeFamilyParams mp;
    mp.seed = 11;
    mp.num_modes = 10;
    mp.target_groups = 2;
    family_ = gen::generate_mode_family(dp_, mp);
    for (const gen::GeneratedMode& gm : family_) {
      modes_.push_back(std::make_unique<sdc::Sdc>(
          sdc::parse_sdc(gm.sdc_text, *design_)));
    }
  }

  ~McmmTest() override { obs::Journal::close(); }

  std::vector<const Sdc*> family_ptrs() const {
    std::vector<const Sdc*> out;
    for (const auto& m : modes_) out.push_back(m.get());
    return out;
  }

  netlist::Library lib_ = netlist::Library::builtin();
  gen::DesignParams dp_;
  std::unique_ptr<netlist::Design> design_;
  std::unique_ptr<timing::TimingGraph> graph_;
  std::vector<gen::GeneratedMode> family_;
  std::vector<std::unique_ptr<sdc::Sdc>> modes_;
};

TEST_F(McmmTest, SingleCornerByteIdenticalToBatchOnPaperFamily) {
  MergeOptions options;
  options.validate = false;
  const std::vector<const Sdc*> ptrs = family_ptrs();
  const MergedModeSet batch = merge_mode_set(*graph_, ptrs, options);

  McmmSession session(*graph_, CornerSet(), options);
  for (size_t m = 0; m < ptrs.size(); ++m) {
    session.add_mode(family_[m].name, {ptrs[m]});
  }
  const McmmSession::CommitResult& r = session.commit();

  ASSERT_EQ(r.cliques, batch.cliques);
  ASSERT_EQ(r.merged.size(), 1u);
  for (size_t k = 0; k < r.cliques.size(); ++k) {
    EXPECT_EQ(sdc::write_sdc(*r.merged[0][k]->merge.merged),
              sdc::write_sdc(*batch.merged[k].merge.merged))
        << "clique " << k;
  }

  MergeContext ref_ctx(options);
  const MergeabilityGraph ref(ptrs, ref_ctx);
  for (size_t i = 0; i < ptrs.size(); ++i) {
    for (size_t j = 0; j < ptrs.size(); ++j) {
      EXPECT_EQ(session.graph().edge(i, j), ref.edge(i, j));
      EXPECT_EQ(session.graph().reason(i, j), ref.reason(i, j));
    }
  }
}

TEST_F(McmmTest, ConflictVerdictNamesTheFirstConflictingCorner) {
  const netlist::Design paper = gen::paper_circuit(lib_);
  auto parse = [&](const std::string& text) {
    return sdc::parse_sdc(text, paper);
  };
  // Corner 0 agrees, corner 1 disagrees on the uncertainty value.
  const sdc::Sdc a0 = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n");
  const sdc::Sdc a1 = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.33 [get_clocks c]\n");
  const sdc::Sdc b0 = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n");
  const sdc::Sdc b1 = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.5 [get_clocks c]\n");

  MergeOptions options;
  MergeContext ctx(options);
  const auto ra0 = ctx.relationships(a0);
  const auto ra1 = ctx.relationships(a1);
  const auto rb0 = ctx.relationships(b0);
  const auto rb1 = ctx.relationships(b1);

  const CornerSet corners({"slow", "fast"});
  const PairVerdict v = check_mergeable_corners(
      {ra0.get(), ra1.get()}, {rb0.get(), rb1.get()}, corners, options);
  EXPECT_FALSE(v.mergeable);
  EXPECT_EQ(v.corner, "fast");
  EXPECT_EQ(v.corner_id, 1u);
  EXPECT_EQ(v.corners_checked, 2u);

  // Every corner agreeing reports C corners checked and no corner name.
  const PairVerdict ok = check_mergeable_corners(
      {ra0.get(), ra1.get()}, {rb0.get(), ra1.get()}, corners, options);
  EXPECT_TRUE(ok.mergeable);
  EXPECT_TRUE(ok.corner.empty());
  EXPECT_EQ(ok.corners_checked, 2u);

  // A C == 1 conflict is the flat verdict member for member: the corner
  // accounting stays at its defaults.
  const PairVerdict flat = check_mergeable_corners(
      {ra1.get()}, {rb1.get()}, CornerSet({"only"}), options);
  EXPECT_FALSE(flat.mergeable);
  EXPECT_TRUE(flat.corner.empty());
  EXPECT_EQ(flat.corner_id, 0u);
  EXPECT_EQ(flat.corners_checked, 0u);
}

TEST_F(McmmTest, JournalAndExplainCarryCornerProvenance) {
  const netlist::Design paper = gen::paper_circuit(lib_);
  const timing::TimingGraph pgraph(paper);
  auto parse = [&](const std::string& text) {
    return sdc::parse_sdc(text, paper);
  };
  const sdc::Sdc shared = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n");
  const sdc::Sdc conflicting = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.7 [get_clocks c]\n");

  const std::string path = ::testing::TempDir() + "/mcmm_journal.jsonl";
  ASSERT_TRUE(obs::Journal::open(path));
  {
    MergeOptions options;
    options.validate = false;
    McmmSession session(pgraph, CornerSet({"typ", "hot"}), options);
    session.add_mode("A", {&shared, &shared});
    session.add_mode("B", {&shared, &conflicting});
    session.commit();
  }
  obs::Journal::close();

  const obs::JournalData journal = obs::read_journal(path);
  bool saw_verdict = false;
  for (const obs::JournalRecord& rec : journal.events) {
    if (rec.ev != "pair_verdict") continue;
    saw_verdict = true;
    EXPECT_EQ(rec.json.uint("corners_checked"), 2u);
    EXPECT_EQ(rec.json.str("corner"), "hot");
    EXPECT_EQ(rec.json.uint("corner_id"), 1u);
  }
  EXPECT_TRUE(saw_verdict);

  const std::string rendered = obs::explain_pair(journal, "A", "B");
  EXPECT_NE(rendered.find("corners: 2 checked"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("conflict in corner hot"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("first conflicting corner: hot"),
            std::string::npos)
      << rendered;
}

TEST_F(McmmTest, UpdateModeOnOneCornerRechecksOnlyThatCorner) {
  const netlist::Design paper = gen::paper_circuit(lib_);
  const timing::TimingGraph pgraph(paper);
  const std::string text =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n";
  const sdc::Sdc deck = sdc::parse_sdc(text, paper);

  MergeOptions options;
  options.validate = false;
  McmmSession session(pgraph, CornerSet({"c0", "c1"}), options);
  const McmmSession::ModeId a = session.add_mode("A", {&deck, &deck});
  session.add_mode("B", {&deck, &deck});
  session.add_mode("C", {&deck, &deck});

  const McmmSession::CommitResult& first = session.commit();
  EXPECT_EQ(first.pairs_rechecked, 3u);
  EXPECT_EQ(first.pair_corner_checks, 6u);  // 3 pairs x 2 corners, all fresh
  EXPECT_EQ(first.pair_corner_reuses, 0u);

  // Replace ONE corner's deck for A (equal content, new object): only A's
  // corner-1 slots may be value-rechecked; every corner-0 verdict and the
  // untouched B-C pair carry over.
  const sdc::Sdc updated = sdc::parse_sdc(text, paper);
  session.update_mode(a, 1, &updated);
  const McmmSession::CommitResult& second = session.commit();
  EXPECT_EQ(second.pairs_rechecked, 2u);      // A-B and A-C
  EXPECT_EQ(second.pairs_skipped_clean, 1u);  // B-C
  EXPECT_EQ(second.pair_corner_checks, 2u);   // only corner 1 of A's pairs
  // A's pairs reuse corner 0; the clean pair reuses both corners.
  EXPECT_EQ(second.pair_corner_reuses, 4u);
  EXPECT_EQ(second.cliques.size(), 1u);
}

TEST_F(McmmTest, CornerDeltaEditRefillsValuesWithoutSkeletonReextraction) {
  MergeOptions options;
  options.validate = false;
  const size_t num_modes = 4;
  const size_t num_corners = 3;

  gen::CornerFamilyParams cp;
  cp.num_corners = num_corners;
  const std::vector<gen::CornerSpec> specs = gen::make_corner_specs(cp);

  // matrix[m][c], built from the first num_modes family members.
  std::vector<std::vector<sdc::Sdc>> matrix(num_modes);
  for (size_t m = 0; m < num_modes; ++m) {
    for (const gen::CornerSpec& spec : specs) {
      matrix[m].push_back(sdc::parse_sdc(
          gen::apply_corner(family_[m].sdc_text, spec), *design_));
    }
  }

  McmmSession session(*graph_, CornerSet({"c0", "c1", "c2"}), options);
  std::vector<McmmSession::ModeId> ids;
  for (size_t m = 0; m < num_modes; ++m) {
    std::vector<const Sdc*> decks;
    for (size_t c = 0; c < num_corners; ++c) decks.push_back(&matrix[m][c]);
    ids.push_back(session.add_mode(family_[m].name, decks));
  }
  session.commit();

  // M skeleton extractions + M * (C - 1) value-only delta fills — never
  // M * C full extractions.
  RelationshipCache::Stats stats = session.context().cache().stats();
  EXPECT_EQ(stats.delta_fills, num_modes * (num_corners - 1));
  EXPECT_EQ(stats.skeleton_mismatches, 0u);
  EXPECT_EQ(stats.misses - stats.delta_fills - stats.skeleton_mismatches,
            num_modes);

  // A value-only edit to one corner deck: exactly one more delta fill, and
  // the skeleton is NOT re-extracted (the full-extraction count is flat).
  gen::CornerSpec hotter = specs[2];
  hotter.clock_scale = 1.31;
  const sdc::Sdc edited = sdc::parse_sdc(
      gen::apply_corner(family_[0].sdc_text, hotter), *design_);
  session.update_mode(ids[0], 2, &edited);
  session.commit();

  stats = session.context().cache().stats();
  EXPECT_EQ(stats.delta_fills, num_modes * (num_corners - 1) + 1);
  EXPECT_EQ(stats.skeleton_mismatches, 0u);
  EXPECT_EQ(stats.misses - stats.delta_fills - stats.skeleton_mismatches,
            num_modes);
}

TEST_F(McmmTest, StructuralBreakCornerFallsBackWithoutChangingVerdicts) {
  MergeOptions options;
  options.validate = false;

  gen::CornerFamilyParams cp;
  cp.num_corners = 2;
  cp.structural_break_corner = 1;  // corner 1 grows an extra drive channel
  const std::vector<gen::CornerSpec> specs = gen::make_corner_specs(cp);

  const size_t num_modes = 2;
  std::vector<std::vector<sdc::Sdc>> matrix(num_modes);
  for (size_t m = 0; m < num_modes; ++m) {
    for (const gen::CornerSpec& spec : specs) {
      matrix[m].push_back(sdc::parse_sdc(
          gen::apply_corner(family_[m].sdc_text, spec), *design_));
    }
  }

  McmmSession session(*graph_, CornerSet({"c0", "c1"}), options);
  for (size_t m = 0; m < num_modes; ++m) {
    session.add_mode(family_[m].name, {&matrix[m][0], &matrix[m][1]});
  }
  const McmmSession::CommitResult& r = session.commit();

  // Both decks of the broken corner diverged from their skeletons.
  const RelationshipCache::Stats stats = session.context().cache().stats();
  EXPECT_EQ(stats.skeleton_mismatches, num_modes);

  // The fallback full check must agree with the flat engine per corner.
  for (size_t c = 0; c < 2; ++c) {
    const PairVerdict flat =
        check_mergeable(matrix[0][c], matrix[1][c], options);
    EXPECT_EQ(session.graph().edge(0, 1), flat.mergeable) << "corner " << c;
  }
  ASSERT_EQ(r.merged.size(), 2u);
  for (size_t c = 0; c < 2; ++c) {
    const std::vector<const Sdc*> corner_ptrs = {&matrix[0][c],
                                                 &matrix[1][c]};
    const MergedModeSet flat = merge_mode_set(*graph_, corner_ptrs, options);
    ASSERT_EQ(flat.cliques, r.cliques) << "corner " << c;
    for (size_t k = 0; k < r.cliques.size(); ++k) {
      EXPECT_EQ(sdc::write_sdc(*r.merged[c][k]->merge.merged),
                sdc::write_sdc(*flat.merged[k].merge.merged))
          << "corner " << c << " clique " << k;
    }
  }
}

}  // namespace
}  // namespace mm::merge
