// Hold-side (min-path) analysis tests: hold relations and slacks in STA,
// hold-state resolution, side-qualified refinement fixes, and hold-aware
// equivalence.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/sta.h"

namespace mm {
namespace {

class HoldTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }
};

TEST_F(HoldTest, HoldSlackComputed) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const timing::StaResult r = timing::run_sta(graph, sdc, /*analyze_hold=*/true);
  EXPECT_FALSE(r.endpoint_hold_slack.empty());
  // Data paths go through at least one gate, so min arrival exceeds the
  // (tiny) hold time: hold is met.
  EXPECT_DOUBLE_EQ(r.whs, 0.0);
  for (const auto& [ep, slack] : r.endpoint_hold_slack) {
    EXPECT_GT(slack, 0.0) << design.pin_name(timing::PinId(ep));
  }
}

TEST_F(HoldTest, HoldDisabledByDefault) {
  const sdc::Sdc sdc = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const timing::StaResult r = timing::run_sta(graph, sdc);
  EXPECT_TRUE(r.endpoint_hold_slack.empty());
}

TEST_F(HoldTest, HoldUncertaintyTightens) {
  const sdc::Sdc base = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const sdc::Sdc unc =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_clock_uncertainty -hold 0.3 [get_clocks c]\n");
  const timing::StaResult r0 = timing::run_sta(graph, base, true);
  const timing::StaResult r1 = timing::run_sta(graph, unc, true);
  const uint32_t ep = design.find_pin("rY/D").value();
  EXPECT_NEAR(r0.endpoint_hold_slack.at(ep) - r1.endpoint_hold_slack.at(ep),
              0.3, 1e-4);
  // Setup side unaffected by -hold uncertainty.
  EXPECT_NEAR(r0.endpoint_slack.at(ep), r1.endpoint_slack.at(ep), 1e-4);
}

TEST_F(HoldTest, MinDelayCreatesHoldViolation) {
  const sdc::Sdc sdc =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_min_delay 50 -to [get_pins rY/D]\n");
  const timing::StaResult r = timing::run_sta(graph, sdc, true);
  const uint32_t ep = design.find_pin("rY/D").value();
  ASSERT_TRUE(r.endpoint_hold_slack.count(ep));
  EXPECT_LT(r.endpoint_hold_slack.at(ep), 0.0);  // amin << 50
  EXPECT_LT(r.whs, 0.0);
}

TEST_F(HoldTest, HoldOnlyFalsePathRemovesHoldNotSetup) {
  const sdc::Sdc sdc =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_false_path -hold -to [get_pins rY/D]\n");
  const timing::StaResult r = timing::run_sta(graph, sdc, true);
  const uint32_t ep = design.find_pin("rY/D").value();
  EXPECT_TRUE(r.endpoint_slack.count(ep));        // setup still timed
  EXPECT_FALSE(r.endpoint_hold_slack.count(ep));  // hold excluded
}

TEST_F(HoldTest, SetupOnlyFalsePathsRefineWithQualifier) {
  // Both modes false-path rX/D on the setup side only; the hold side stays
  // timed. The merged mode must re-derive a *setup-qualified* false path —
  // an unqualified one would be hold-side optimism.
  const std::string text_a =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -setup -to [get_pins rX/D]\n";
  const std::string text_b =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -setup -from [get_pins rA/CP] -to [get_pins rX/D]\n";
  const sdc::Sdc a = parse(text_a), b = parse(text_b);
  const merge::ValidatedMergeResult out = merge::merge_modes(graph, {&a, &b});

  EXPECT_EQ(out.equivalence.optimism_violations, 0u)
      << merge::report_merge(out.merge, out.equivalence);
  EXPECT_EQ(out.equivalence.pessimism_keys, 0u)
      << merge::report_merge(out.merge, out.equivalence);

  // The merged mode still times rX/D on the hold side.
  const timing::StaResult r =
      timing::run_sta(graph, *out.merge.merged, /*analyze_hold=*/true);
  const uint32_t ep = design.find_pin("rX/D").value();
  EXPECT_FALSE(r.endpoint_slack.count(ep));      // setup false-pathed
  EXPECT_TRUE(r.endpoint_hold_slack.count(ep));  // hold alive
}

TEST_F(HoldTest, HoldOnlyFalsePathsRefine) {
  const std::string text_a =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -hold -to [get_pins rX/D]\n";
  const std::string text_b =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -hold -from [get_pins rA/CP] -to [get_pins rX/D]\n";
  const sdc::Sdc a = parse(text_a), b = parse(text_b);
  const merge::ValidatedMergeResult out = merge::merge_modes(graph, {&a, &b});
  EXPECT_TRUE(out.equivalence.equivalent())
      << merge::report_merge(out.merge, out.equivalence)
      << sdc::write_sdc(*out.merge.merged);

  const timing::StaResult r =
      timing::run_sta(graph, *out.merge.merged, /*analyze_hold=*/true);
  const uint32_t ep = design.find_pin("rX/D").value();
  EXPECT_TRUE(r.endpoint_slack.count(ep));
  EXPECT_FALSE(r.endpoint_hold_slack.count(ep));
}

TEST_F(HoldTest, EquivalenceDetectsHoldOptimism) {
  // Candidate adds an unqualified FP where the reference only had -setup:
  // the hold side loses timed paths.
  const sdc::Sdc reference =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_false_path -setup -to [get_pins rX/D]\n");
  const sdc::Sdc candidate =
      parse("create_clock -name c -period 10 [get_ports clk1]\n"
            "set_false_path -to [get_pins rX/D]\n");
  merge::MergeResult base = merge::preliminary_merge({&reference}, {});
  merge::RefineContext ctx(graph, {&reference});
  const merge::EquivalenceReport r =
      merge::check_equivalence(ctx, candidate, base.clock_map);
  EXPECT_GT(r.optimism_violations, 0u);
}

TEST_F(HoldTest, HoldMcpRelaxesHoldCheck) {
  // set_multicycle_path -hold 1 moves the hold check one capture period
  // earlier, relaxing hold slack by one period.
  const sdc::Sdc base = parse("create_clock -name c -period 4 [get_ports clk1]\n");
  const sdc::Sdc mcp =
      parse("create_clock -name c -period 4 [get_ports clk1]\n"
            "set_multicycle_path 1 -hold -to [get_pins rY/D]\n");
  const timing::StaResult r0 = timing::run_sta(graph, base, true);
  const timing::StaResult r1 = timing::run_sta(graph, mcp, true);
  const uint32_t ep = design.find_pin("rY/D").value();
  EXPECT_NEAR(r1.endpoint_hold_slack.at(ep) - r0.endpoint_hold_slack.at(ep),
              4.0, 1e-4);
}

TEST_F(HoldTest, GeneratedWorkloadHoldSafe) {
  // The paper-example constraint set 6 merge stays hold-clean end to end.
  const sdc::Sdc a = parse(gen::constraint_sets::kSet6ModeA);
  const sdc::Sdc b = parse(gen::constraint_sets::kSet6ModeB);
  const merge::ValidatedMergeResult out = merge::merge_modes(graph, {&a, &b});
  EXPECT_EQ(out.equivalence.optimism_violations, 0u);
  EXPECT_EQ(out.equivalence.pessimism_keys, 0u);
}

}  // namespace
}  // namespace mm
