// Reproduction of the paper's 3-pass refinement walkthrough (Constraint
// Set 6, Tables 2-4): mode A false-paths {to rX/D, to rY/D, through
// inv3/Z}, mode B false-paths {from rA/CP, to rZ/D}; no exception is common
// so the preliminary merged mode has none, and refinement must derive
//   CSTR1: set_false_path -to rX/D                      (pass 1)
//   CSTR2: set_false_path -from rA/CP -to rY/D          (pass 2)
//   CSTR3: set_false_path -from rC/CP -through inv3/A.. (pass 3)
// and end up equivalent to the union of the individual modes.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/relationships.h"
#include "timing/sta.h"

namespace mm::merge {
namespace {

namespace cs = gen::constraint_sets;
using timing::PathState;
using timing::RelationKey;
using timing::StateKind;

class ThreePassTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};
  sdc::Sdc a{sdc::parse_sdc(cs::kSet6ModeA, design)};
  sdc::Sdc b{sdc::parse_sdc(cs::kSet6ModeB, design)};

  sdc::PinId pin(const char* name) { return design.find_pin(name); }

  /// Endpoint-level state set in one mode (the "Individual mode state"
  /// columns of Table 2).
  timing::StateSet endpoint_states(const sdc::Sdc& mode, const char* endpoint) {
    timing::ModeGraph mg(graph, mode);
    timing::CompiledExceptions ce(graph, mode);
    timing::Propagator prop(mg, ce);
    timing::PropagationOptions opts;
    opts.compute_arrivals = false;
    prop.run(opts);
    timing::StateSet out;
    for (const auto& [key, data] : prop.relations()) {
      if (key.endpoint == pin(endpoint)) out.merge(data.states);
    }
    return out;
  }
};

TEST_F(ThreePassTest, Table2IndividualStates) {
  // Mode A: everything at rX/D and rY/D is FP; rZ/D mixes FP (through
  // inv3/Z) with valid (through and2/A).
  timing::StateSet rx_a = endpoint_states(a, "rX/D");
  ASSERT_TRUE(rx_a.singleton());
  EXPECT_EQ(rx_a.states[0], PathState::false_path());

  timing::StateSet rz_a = endpoint_states(a, "rZ/D");
  EXPECT_EQ(rz_a.states.size(), 2u);
  EXPECT_TRUE(rz_a.contains(PathState::false_path()));
  EXPECT_TRUE(rz_a.contains(PathState::valid()));

  // Mode B: rY/D mixes FP (paths from rA) with valid (paths from rB);
  // rZ/D is all FP.
  timing::StateSet ry_b = endpoint_states(b, "rY/D");
  EXPECT_EQ(ry_b.states.size(), 2u);
  timing::StateSet rz_b = endpoint_states(b, "rZ/D");
  ASSERT_TRUE(rz_b.singleton());
  EXPECT_EQ(rz_b.states[0], PathState::false_path());
}

TEST_F(ThreePassTest, RefinementDerivesPaperConstraints) {
  ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  const sdc::Sdc& merged = *out.merge.merged;
  const std::string text = sdc::write_sdc(merged);

  // No exceptions were common, so the preliminary mode had none.
  EXPECT_EQ(out.merge.stats.exceptions_common, 0u);
  EXPECT_EQ(out.merge.stats.exceptions_uniquified, 0u);

  // Pass 1 fixed rX/D with an endpoint-level false path (CSTR1).
  bool cstr1 = false;
  // Pass 2 fixed (rA/CP -> rY/D) (CSTR2).
  bool cstr2 = false;
  // Pass 3 fixed the rC->inv3->rZ path with a through constraint (CSTR3).
  bool cstr3 = false;
  for (const sdc::Exception& ex : merged.exceptions()) {
    if (ex.kind != sdc::ExceptionKind::kFalsePath) continue;
    const bool to_rx =
        ex.to.pins.size() == 1 && design.pin_name(ex.to.pins[0]) == "rX/D";
    const bool to_ry =
        ex.to.pins.size() == 1 && design.pin_name(ex.to.pins[0]) == "rY/D";
    const bool to_rz =
        ex.to.pins.size() == 1 && design.pin_name(ex.to.pins[0]) == "rZ/D";
    const bool from_ra =
        ex.from.pins.size() == 1 && design.pin_name(ex.from.pins[0]) == "rA/CP";
    const bool from_rc =
        ex.from.pins.size() == 1 && design.pin_name(ex.from.pins[0]) == "rC/CP";
    bool through_inv3 = false;
    for (const sdc::ExceptionPoint& th : ex.throughs) {
      for (sdc::PinId p : th.pins) {
        const auto name = design.pin_name(p);
        if (name == "inv3/A" || name == "inv3/Z") through_inv3 = true;
      }
    }
    if (to_rx && ex.from.empty() && ex.throughs.empty()) cstr1 = true;
    if (to_ry && from_ra) cstr2 = true;
    if (to_rz && from_rc && through_inv3) cstr3 = true;
  }
  EXPECT_TRUE(cstr1) << text;
  EXPECT_TRUE(cstr2) << text;
  EXPECT_TRUE(cstr3) << text;

  EXPECT_GE(out.merge.stats.pass1_mismatch_fixed, 1u);
  EXPECT_GE(out.merge.stats.pass1_ambiguous, 1u);
  EXPECT_GE(out.merge.stats.pass2_mismatch_fixed, 1u);
  EXPECT_GE(out.merge.stats.pass3_fps_added, 1u);

  // The built-in validation: equivalent, not merely sign-off safe.
  EXPECT_TRUE(out.equivalence.signoff_safe()) << report_merge(out.merge, out.equivalence);
  EXPECT_EQ(out.equivalence.pessimism_keys, 0u)
      << report_merge(out.merge, out.equivalence);
  EXPECT_EQ(out.equivalence.optimism_violations, 0u);
}

TEST_F(ThreePassTest, StartpointLevelEquivalenceHolds) {
  ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  RefineContext ctx(graph, {&a, &b});
  const EquivalenceReport deep = check_equivalence(
      ctx, *out.merge.merged, out.merge.clock_map, /*startpoint_level=*/true);
  EXPECT_EQ(deep.optimism_violations, 0u);
  EXPECT_EQ(deep.pessimism_keys, 0u);
}

TEST_F(ThreePassTest, WithoutRefinementMergedIsPessimistic) {
  MergeOptions options;
  options.run_refinement = false;
  MergeResult pre = preliminary_merge({&a, &b}, options);
  RefineContext ctx(graph, {&a, &b});
  const EquivalenceReport report =
      check_equivalence(ctx, *pre.merged, pre.clock_map);
  // Still sign-off safe (superset construction) but pessimistic.
  EXPECT_EQ(report.optimism_violations, 0u);
  EXPECT_GT(report.pessimism_keys, 0u);
}

TEST_F(ThreePassTest, MergedSlacksMatchWorstIndividual) {
  ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  const timing::StaResult indiv = timing::run_sta_multi(graph, {&a, &b});
  const timing::StaResult merged_sta = timing::run_sta(graph, *out.merge.merged);
  EXPECT_DOUBLE_EQ(
      timing::conformity(indiv, merged_sta, graph, *out.merge.merged), 100.0);
}

}  // namespace
}  // namespace mm::merge
