// Unit tests for relationship (tag) propagation: per-endpoint state sets,
// startpoint tracking, cones, clock exclusivity, arrivals.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "timing/relationships.h"

namespace mm::timing {
namespace {

class RelTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph{design};

  void load(const std::string& text) {
    sdc_ = std::make_unique<sdc::Sdc>(sdc::parse_sdc(text, design));
    mode_ = std::make_unique<ModeGraph>(graph, *sdc_);
    exceptions_ = std::make_unique<CompiledExceptions>(graph, *sdc_);
  }

  RelationMap run(PropagationOptions opts = {}) {
    Propagator prop(*mode_, *exceptions_);
    prop.run(opts);
    return prop.relations();
  }

  PinId pin(const char* name) { return design.find_pin(name); }

  /// State set at (endpoint, launch, capture) with invalid startpoint.
  const StateSet* states(const RelationMap& rel, const char* endpoint,
                         const char* launch, const char* capture,
                         const char* startpoint = nullptr) {
    RelationKey key;
    key.endpoint = pin(endpoint);
    key.startpoint = startpoint ? pin(startpoint) : PinId();
    key.launch = sdc_->find_clock(launch);
    key.capture = sdc_->find_clock(capture);
    auto it = rel.find(key);
    return it == rel.end() ? nullptr : &it->second.states;
  }

  std::unique_ptr<sdc::Sdc> sdc_;
  std::unique_ptr<ModeGraph> mode_;
  std::unique_ptr<CompiledExceptions> exceptions_;
};

TEST_F(RelTest, Table1Relationships) {
  // Paper Table 1 from Constraint Set 1.
  load(gen::constraint_sets::kSet1);
  const RelationMap rel = run();

  const StateSet* rx = states(rel, "rX/D", "clkA", "clkA");
  ASSERT_NE(rx, nullptr);
  ASSERT_EQ(rx->states.size(), 1u);
  EXPECT_EQ(rx->states[0], PathState::mcp(2));

  const StateSet* ry = states(rel, "rY/D", "clkA", "clkA");
  ASSERT_NE(ry, nullptr);
  ASSERT_EQ(ry->states.size(), 1u);
  EXPECT_EQ(ry->states[0], PathState::false_path());  // FP overrides MCP

  const StateSet* rz = states(rel, "rZ/D", "clkA", "clkA");
  ASSERT_NE(rz, nullptr);
  ASSERT_EQ(rz->states.size(), 1u);
  EXPECT_EQ(rz->states[0], PathState::valid());
}

TEST_F(RelTest, MixedStatesAtEndpoint) {
  // FP only on the rA-side paths: rY/D collects both FP and V.
  load(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "set_false_path -from [get_pins rA/CP]\n");
  const RelationMap rel = run();
  const StateSet* ry = states(rel, "rY/D", "clkA", "clkA");
  ASSERT_NE(ry, nullptr);
  EXPECT_EQ(ry->states.size(), 2u);
  EXPECT_TRUE(ry->contains(PathState::false_path()));
  EXPECT_TRUE(ry->contains(PathState::valid()));
}

TEST_F(RelTest, StartpointTracking) {
  load(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "set_false_path -from [get_pins rA/CP]\n");
  PropagationOptions opts;
  opts.track_startpoints = true;
  const RelationMap rel = run(opts);

  const StateSet* from_a = states(rel, "rY/D", "clkA", "clkA", "rA/CP");
  ASSERT_NE(from_a, nullptr);
  ASSERT_TRUE(from_a->singleton());
  EXPECT_EQ(from_a->states[0], PathState::false_path());

  const StateSet* from_b = states(rel, "rY/D", "clkA", "clkA", "rB/CP");
  ASSERT_NE(from_b, nullptr);
  ASSERT_TRUE(from_b->singleton());
  EXPECT_EQ(from_b->states[0], PathState::valid());
}

TEST_F(RelTest, ExclusiveClockPairsAreFalse) {
  load(
      "create_clock -name a -period 2 [get_ports clk1]\n"
      "create_clock -name b -period 1 -add [get_ports clk1]\n"
      "set_clock_groups -physically_exclusive -group [get_clocks a] "
      "-group [get_clocks b]\n");
  const RelationMap rel = run();
  const StateSet* cross = states(rel, "rA/D", "a", "b");
  // rA is clocked by both a and b; in1 has no delay so rA/D sees no tags —
  // use a register-to-register endpoint instead.
  (void)cross;
  const StateSet* xab = states(rel, "rX/D", "a", "b");
  ASSERT_NE(xab, nullptr);
  EXPECT_EQ(xab->states[0], PathState::false_path());
  const StateSet* xaa = states(rel, "rX/D", "a", "a");
  ASSERT_NE(xaa, nullptr);
  EXPECT_EQ(xaa->states[0], PathState::valid());
}

TEST_F(RelTest, AsyncGroupsNotTimed) {
  load(
      "create_clock -name a -period 2 [get_ports clk1]\n"
      "create_clock -name b -period 1 -add [get_ports clk1]\n"
      "set_clock_groups -asynchronous -group [get_clocks a] "
      "-group [get_clocks b]\n");
  const RelationMap rel = run();
  const StateSet* xab = states(rel, "rX/D", "a", "b");
  ASSERT_NE(xab, nullptr);
  EXPECT_EQ(xab->states[0], PathState::false_path());
}

TEST_F(RelTest, InputDelayCreatesPortTags) {
  load(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "set_input_delay 2.5 -clock clkA [get_ports in1]\n");
  const RelationMap rel = run();
  const StateSet* ra = states(rel, "rA/D", "clkA", "clkA");
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->states[0], PathState::valid());
}

TEST_F(RelTest, OutputPortEndpoint) {
  load(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "set_output_delay 1.0 -clock clkA [get_ports out1]\n");
  const RelationMap rel = run();
  const StateSet* out = states(rel, "out1", "clkA", "clkA");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->states[0], PathState::valid());
}

TEST_F(RelTest, ArrivalsAndSlacks) {
  load(
      "create_clock -name clkA -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.5 [get_clocks clkA]\n");
  Propagator prop(*mode_, *exceptions_);
  PropagationOptions opts;
  prop.run(opts);
  const auto slacks = prop.worst_slack_by_endpoint();
  // rX/D: launch at CP->Q (0.6 + load slope) + inv1 + net hops; well under
  // period 10 minus uncertainty minus setup.
  auto it = slacks.find(pin("rX/D").value());
  ASSERT_NE(it, slacks.end());
  EXPECT_GT(it->second, 5.0);
  EXPECT_LT(it->second, 10.0);
}

TEST_F(RelTest, TightClockViolates) {
  load("create_clock -name fast -period 0.5 [get_ports clk1]\n");
  Propagator prop(*mode_, *exceptions_);
  prop.run({});
  const auto slacks = prop.worst_slack_by_endpoint();
  auto it = slacks.find(pin("rY/D").value());
  ASSERT_NE(it, slacks.end());
  EXPECT_LT(it->second, 0.0);  // three gate levels cannot make 0.5
}

TEST_F(RelTest, McpRelaxesRequiredTime) {
  load("create_clock -name c -period 3 [get_ports clk1]\n");
  Propagator base(*mode_, *exceptions_);
  base.run({});
  const float slack_base =
      base.worst_slack_by_endpoint().at(pin("rY/D").value());

  load(
      "create_clock -name c -period 3 [get_ports clk1]\n"
      "set_multicycle_path 2 -to [get_pins rY/D]\n");
  Propagator mcp(*mode_, *exceptions_);
  mcp.run({});
  const float slack_mcp = mcp.worst_slack_by_endpoint().at(pin("rY/D").value());
  EXPECT_NEAR(slack_mcp - slack_base, 3.0, 1e-4);  // one extra period
}

TEST_F(RelTest, FalsePathRemovesEndpointSlack) {
  load(
      "create_clock -name c -period 0.5 [get_ports clk1]\n"
      "set_false_path -to [get_pins rY/D]\n");
  Propagator prop(*mode_, *exceptions_);
  prop.run({});
  const auto slacks = prop.worst_slack_by_endpoint();
  EXPECT_EQ(slacks.count(pin("rY/D").value()), 0u);
  EXPECT_EQ(slacks.count(pin("rX/D").value()), 1u);
}

TEST_F(RelTest, ConeRestrictsPropagation) {
  load("create_clock -name c -period 10 [get_ports clk1]\n");
  const std::vector<uint8_t> cone =
      Propagator::fanin_cone(*mode_, {pin("rX/D")});
  EXPECT_TRUE(cone[pin("rA/CP").index()]);
  EXPECT_TRUE(cone[pin("inv1/Z").index()]);
  EXPECT_FALSE(cone[pin("rZ/D").index()]);
  EXPECT_FALSE(cone[pin("inv2/Z").index()]);

  PropagationOptions opts;
  opts.pin_filter = &cone;
  const RelationMap rel = run(opts);
  EXPECT_NE(states(rel, "rX/D", "c", "c"), nullptr);
  EXPECT_EQ(states(rel, "rY/D", "c", "c"), nullptr);
}

TEST_F(RelTest, MaxDelayStateAndSlack) {
  load(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_max_delay 0.5 -to [get_pins rX/D]\n");
  Propagator prop(*mode_, *exceptions_);
  prop.run({});
  RelationKey key;
  key.endpoint = pin("rX/D");
  key.launch = key.capture = sdc_->find_clock("c");
  const RelationData& data = prop.relations().at(key);
  ASSERT_TRUE(data.states.singleton());
  EXPECT_EQ(data.states.states[0].kind, StateKind::kMaxDelay);
  // Path delay > 1.0 (launch 0.6+, inv 0.2+, nets) => negative slack.
  EXPECT_LT(data.worst_slack, 0.0f);
}

TEST_F(RelTest, RelationKeyHashSpreadsDenseIdSpace) {
  // Regression for the pre-splitmix64 hash, which mixed only the low bits
  // and collided whole ranges of dense pin/clock ids into shared buckets.
  // Enumerate a dense id grid (the shape real designs produce: consecutive
  // endpoint/startpoint pins, a handful of clocks) and require (a) zero
  // full-width collisions and (b) near-uniform low-bit bucket load, since
  // unordered_map derives its bucket from the low bits.
  RelationKeyHash hash;
  std::unordered_set<size_t> values;
  std::vector<size_t> buckets(1024, 0);
  size_t n = 0;
  for (uint32_t e = 0; e < 32; ++e) {
    for (uint32_t s = 0; s < 8; ++s) {
      for (uint32_t l = 0; l < 4; ++l) {
        for (uint32_t c = 0; c < 4; ++c) {
          RelationKey key;
          key.endpoint = PinId(e);
          key.startpoint = PinId(s);
          key.launch = ClockId(l);
          key.capture = ClockId(c);
          const size_t h = hash(key);
          values.insert(h);
          ++buckets[h & 1023u];
          ++n;
        }
      }
    }
  }
  EXPECT_EQ(values.size(), n);  // 4096 dense keys, no 64-bit collisions
  // Mean bucket load is 4; a well-mixed hash stays within a small constant
  // of it. The old hash packed hundreds of keys into a few buckets here.
  const size_t worst = *std::max_element(buckets.begin(), buckets.end());
  EXPECT_LE(worst, 16u);
}

TEST_F(RelTest, ProgressTableInternsDeterministically) {
  ProgressTable table(3);
  std::vector<uint8_t> a{0, kExcInactive, 2};
  const uint32_t id1 = table.intern(a);
  const uint32_t id2 = table.intern(a);
  EXPECT_EQ(id1, id2);
  a[0] = 1;
  EXPECT_NE(table.intern(a), id1);
  EXPECT_EQ(table.get(0).size(), 3u);  // id 0 = all-inactive
  EXPECT_EQ(table.get(0)[0], kExcInactive);
}

}  // namespace
}  // namespace mm::timing
