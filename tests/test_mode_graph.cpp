// Unit tests for the per-mode view: case-analysis constant propagation,
// disables, blocked-arc sensitivity, clock-network propagation.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "timing/mode_graph.h"

namespace mm::timing {
namespace {

using netlist::Logic;

class ModeGraphTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph{design};

  ModeGraph make(const std::string& sdc_text) {
    sdc_ = std::make_unique<sdc::Sdc>(sdc::parse_sdc(sdc_text, design));
    return ModeGraph(graph, *sdc_);
  }

  PinId pin(const char* name) { return design.find_pin(name); }

  std::unique_ptr<sdc::Sdc> sdc_;
};

TEST_F(ModeGraphTest, ConstantPropagationThroughOr) {
  ModeGraph mg = make(
      "set_case_analysis 0 sel1\n"
      "set_case_analysis 1 sel2\n");
  EXPECT_EQ(mg.constant(pin("sel1")), Logic::kZero);
  EXPECT_EQ(mg.constant(pin("or1/Z")), Logic::kOne);   // 0 | 1
  EXPECT_EQ(mg.constant(pin("mux1/S")), Logic::kOne);  // via net
  EXPECT_FALSE(mg.is_constant(pin("mux1/Z")));  // clock value unknown
}

TEST_F(ModeGraphTest, ConstantsDoNotCrossRegisters) {
  ModeGraph mg = make("set_case_analysis 0 in1\n");
  EXPECT_EQ(mg.constant(pin("rA/D")), Logic::kZero);
  EXPECT_FALSE(mg.is_constant(pin("rA/Q")));
}

TEST_F(ModeGraphTest, CaseOnOutputPinOverridesEvaluation) {
  ModeGraph mg = make("set_case_analysis 0 rB/Q\n");
  EXPECT_EQ(mg.constant(pin("rB/Q")), Logic::kZero);
  // AND with one input 0 -> 0 downstream.
  EXPECT_EQ(mg.constant(pin("and1/Z")), Logic::kZero);
  EXPECT_EQ(mg.constant(pin("inv2/Z")), Logic::kOne);
  EXPECT_EQ(mg.constant(pin("rY/D")), Logic::kOne);
}

TEST_F(ModeGraphTest, MuxSelectBlocksUnselectedArc) {
  ModeGraph mg = make(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 [get_ports clk2]\n"
      "set_case_analysis 0 sel1\n"
      "set_case_analysis 1 sel2\n");  // select = 1: B input selected
  // Arc mux1/A -> mux1/Z must be blocked, B -> Z alive.
  bool a_blocked = true, b_alive = false;
  for (ArcId aid : graph.fanout(pin("mux1/A"))) {
    if (graph.arc(aid).to == pin("mux1/Z") && mg.arc_enabled(aid))
      a_blocked = false;
  }
  for (ArcId aid : graph.fanout(pin("mux1/B"))) {
    if (graph.arc(aid).to == pin("mux1/Z") && mg.arc_enabled(aid))
      b_alive = true;
  }
  EXPECT_TRUE(a_blocked);
  EXPECT_TRUE(b_alive);
  // Hence only clkB reaches the gated registers.
  EXPECT_FALSE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("a")));
  EXPECT_TRUE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("b")));
}

TEST_F(ModeGraphTest, ClockPropagationUnconstrained) {
  ModeGraph mg = make("create_clock -name a -period 10 [get_ports clk1]\n");
  // Without case analysis the mux select is unknown: clkA reaches both the
  // direct registers and (through mux A input) the gated ones.
  EXPECT_TRUE(mg.clock_on(pin("rA/CP"), sdc_->find_clock("a")));
  EXPECT_TRUE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("a")));
  EXPECT_TRUE(mg.in_clock_network(pin("mux1/Z")));
  // The clock does not leak through launch arcs into the data network.
  EXPECT_FALSE(mg.in_clock_network(pin("rA/Q")));
}

TEST_F(ModeGraphTest, ClockSenseStopRemovesClock) {
  ModeGraph mg = make(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_clock_sense -stop_propagation -clock [get_clocks a] "
      "[get_pins mux1/Z]\n");
  EXPECT_FALSE(mg.clock_on(pin("mux1/Z"), sdc_->find_clock("a")));
  EXPECT_FALSE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("a")));
  EXPECT_TRUE(mg.clock_on(pin("rA/CP"), sdc_->find_clock("a")));
}

TEST_F(ModeGraphTest, DisableTimingPinKillsArcs) {
  ModeGraph mg = make(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_disable_timing [get_pins and1/A]\n");
  for (ArcId aid : graph.fanin(pin("and1/A"))) {
    EXPECT_FALSE(mg.arc_enabled(aid));
  }
  for (ArcId aid : graph.fanout(pin("and1/A"))) {
    EXPECT_FALSE(mg.arc_enabled(aid));
  }
}

TEST_F(ModeGraphTest, DisableTimingCellArcForm) {
  ModeGraph mg = make("set_disable_timing [get_cells mux1] -from A -to Z\n");
  bool a_z_disabled = false, b_z_enabled = false;
  for (ArcId aid : graph.fanout(pin("mux1/A"))) {
    if (graph.arc(aid).to == pin("mux1/Z"))
      a_z_disabled = !mg.arc_enabled(aid);
  }
  for (ArcId aid : graph.fanout(pin("mux1/B"))) {
    if (graph.arc(aid).to == pin("mux1/Z")) b_z_enabled = mg.arc_enabled(aid);
  }
  EXPECT_TRUE(a_z_disabled);
  EXPECT_TRUE(b_z_enabled);
}

TEST_F(ModeGraphTest, ActivePoints) {
  ModeGraph mg = make(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_input_delay 1 -clock a [get_ports in1]\n"
      "set_output_delay 1 -clock a [get_ports out1]\n");
  // Startpoints: 6 CP pins (all clocked) + in1.
  EXPECT_EQ(mg.active_startpoints().size(), 7u);
  // Endpoints: 6 D pins + out1.
  EXPECT_EQ(mg.active_endpoints().size(), 7u);
}

TEST_F(ModeGraphTest, UnclockedRegistersAreInactive) {
  ModeGraph mg = make(
      "create_clock -name b -period 10 [get_ports clk2]\n"
      "set_case_analysis 0 sel1\n"
      "set_case_analysis 0 sel2\n");  // select=0: A input (clk1, no clock)
  // clkB enters mux B input but select=0 blocks it; nothing is clocked.
  EXPECT_TRUE(mg.active_startpoints().empty());
  EXPECT_TRUE(mg.active_endpoints().empty());
}

TEST_F(ModeGraphTest, CaptureClocks) {
  ModeGraph mg = make(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 [get_ports clk2]\n");
  const auto caps = mg.capture_clocks_at(pin("rX/D"));
  // Unknown mux select: both clocks capture at rX.
  EXPECT_EQ(caps.size(), 2u);
  const auto direct = mg.capture_clocks_at(pin("rA/D"));
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0].clock, sdc_->find_clock("a"));
}

TEST_F(ModeGraphTest, GeneratedClockSeedsFromMaster) {
  ModeGraph mg = make(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_generated_clock -name g -source [get_pins mux1/Z] -divide_by 2 "
      "[get_pins mux1/Z]\n");
  EXPECT_TRUE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("g")));
  EXPECT_TRUE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("a")));
}

TEST_F(ModeGraphTest, ChainedGeneratedClocks) {
  // g2 is generated from g1 which is generated from the root clock; the
  // chain needs multi-round seeding. g2 is also declared BEFORE g1 resolves
  // its waveform, exercising the parser's deferred derivation.
  ModeGraph mg = make(
      "create_clock -name root -period 8 [get_ports clk1]\n"
      "create_generated_clock -name g1 -source [get_ports clk1] "
      "-master_clock root -divide_by 2 [get_pins mux1/A]\n"
      "create_generated_clock -name g2 -source [get_pins mux1/A] "
      "-master_clock g1 -divide_by 2 [get_pins mux1/Z]\n");
  const sdc::Clock& g2 = sdc_->clock(sdc_->find_clock("g2"));
  EXPECT_DOUBLE_EQ(g2.period, 32.0);  // 8 * 2 * 2
  EXPECT_TRUE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("g2")));
  EXPECT_TRUE(mg.clock_on(pin("rX/CP"), sdc_->find_clock("g1")));
}

TEST_F(ModeGraphTest, LatencyAndUncertaintyAccessors) {
  ModeGraph mg = make(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_clock_latency -source 0.5 [get_clocks a]\n"
      "set_clock_latency 0.3 [get_clocks a]\n"
      "set_clock_uncertainty -setup 0.15 [get_clocks a]\n");
  const sdc::ClockId a = sdc_->find_clock("a");
  EXPECT_DOUBLE_EQ(mg.source_latency(a), 0.5);
  EXPECT_DOUBLE_EQ(mg.ideal_network_latency(a), 0.3);
  EXPECT_DOUBLE_EQ(mg.uncertainty(a), 0.15);
}

}  // namespace
}  // namespace mm::timing
