// Hierarchical sharded merging (docs/SHARDING.md): the partitioner, the
// boundary models, and the ShardedMergeSession stitch must be
// byte-identical to the flat path — same mergeability edges and reasons,
// same clique cover, same merged SDC bytes — for every K, on the paper's
// running example and on generated block-structured families. Plus the
// greedy_clique_cover determinism regression: the cover is a pure function
// of the adjacency matrix, invariant to how the verdicts were produced and
// stable under mode relabeling when degrees are distinct.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "gen/paper_circuit.h"
#include "merge/context.h"
#include "merge/mergeability.h"
#include "merge/session.h"
#include "merge/sharded_session.h"
#include "netlist/libcell.h"
#include "netlist/partition.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/boundary_model.h"
#include "timing/graph.h"
#include "util/rng.h"

namespace mm::merge {
namespace {

namespace cs = gen::constraint_sets;

// --- Partitioner --------------------------------------------------------

class PartitionTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = [this] {
    gen::DesignParams p;
    p.num_regs = 60;
    p.num_domains = 3;
    p.num_blocks = 4;
    return gen::generate_design(lib, p);
  }();
};

TEST_F(PartitionTest, CoversEveryInstanceAndPin) {
  netlist::PartitionOptions opt;
  opt.num_blocks = 4;
  const netlist::Partition part = netlist::partition_design(design, opt);
  ASSERT_EQ(part.num_blocks(), 4u);

  size_t total = 0;
  for (size_t b = 0; b < part.num_blocks(); ++b) {
    EXPECT_GT(part.block_instance_counts()[b], 0u) << "empty block " << b;
    total += part.block_instance_counts()[b];
  }
  EXPECT_EQ(total, design.num_instances());
  for (size_t i = 0; i < design.num_instances(); ++i) {
    EXPECT_LT(part.block_of_instance(netlist::InstId(i)), part.num_blocks());
  }
  for (size_t p = 0; p < design.num_pins(); ++p) {
    EXPECT_LT(part.block_of(netlist::PinId(p)), part.num_blocks());
  }
}

TEST_F(PartitionTest, DeterministicForSeedAndSensitiveToIt) {
  netlist::PartitionOptions opt;
  opt.num_blocks = 4;
  opt.seed = 3;
  const netlist::Partition a = netlist::partition_design(design, opt);
  const netlist::Partition b = netlist::partition_design(design, opt);
  for (size_t i = 0; i < design.num_instances(); ++i) {
    ASSERT_EQ(a.block_of_instance(netlist::InstId(i)),
              b.block_of_instance(netlist::InstId(i)));
  }
  ASSERT_EQ(a.boundary_pins(), b.boundary_pins());

  // A different seed probes a different cut (different seed placement) —
  // on a 60-register design at least one instance should move.
  opt.seed = 17;
  const netlist::Partition c = netlist::partition_design(design, opt);
  bool moved = false;
  for (size_t i = 0; i < design.num_instances() && !moved; ++i) {
    moved = a.block_of_instance(netlist::InstId(i)) !=
            c.block_of_instance(netlist::InstId(i));
  }
  EXPECT_TRUE(moved);
}

TEST_F(PartitionTest, BoundaryPinsAreExactlyTheCrossingNets) {
  netlist::PartitionOptions opt;
  opt.num_blocks = 3;
  const netlist::Partition part = netlist::partition_design(design, opt);

  size_t crossing = 0;
  std::vector<netlist::PinId> expected;
  for (const netlist::Net& net : design.nets()) {
    std::vector<netlist::PinId> net_pins;
    if (net.driver.valid()) net_pins.push_back(net.driver);
    net_pins.insert(net_pins.end(), net.loads.begin(), net.loads.end());
    if (net_pins.empty()) continue;
    bool spans = false;
    for (size_t i = 1; i < net_pins.size() && !spans; ++i) {
      spans = part.block_of(net_pins[i]) != part.block_of(net_pins[0]);
    }
    if (!spans) continue;
    ++crossing;
    expected.insert(expected.end(), net_pins.begin(), net_pins.end());
  }
  EXPECT_EQ(part.num_crossing_nets(), crossing);
  EXPECT_GT(crossing, 0u);

  std::sort(expected.begin(), expected.end(),
            [](netlist::PinId a, netlist::PinId b) {
              return a.index() < b.index();
            });
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(part.boundary_pins(), expected);
  for (const netlist::PinId pin : expected) {
    EXPECT_TRUE(part.is_boundary(pin));
  }
}

TEST_F(PartitionTest, SingleBlockHasNoBoundary) {
  const netlist::Partition part =
      netlist::partition_design(design, netlist::PartitionOptions{});
  EXPECT_EQ(part.num_blocks(), 1u);
  EXPECT_TRUE(part.boundary_pins().empty());
  EXPECT_EQ(part.num_crossing_nets(), 0u);
}

TEST_F(PartitionTest, BlockCountClampedToInstances) {
  netlist::PartitionOptions opt;
  opt.num_blocks = 100000;
  const netlist::Partition part = netlist::partition_design(design, opt);
  EXPECT_EQ(part.num_blocks(), design.num_instances());
}

// --- Boundary models ----------------------------------------------------

TEST(BoundaryModel, EnvelopeAndClockReachabilityAreSane) {
  netlist::Library lib = netlist::Library::builtin();
  gen::DesignParams dp;
  dp.num_regs = 40;
  dp.num_blocks = 2;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  netlist::PartitionOptions popt;
  popt.num_blocks = 2;
  const netlist::Partition part = netlist::partition_design(design, popt);

  const timing::ArrivalEnvelope env = timing::compute_arrival_envelope(graph);
  ASSERT_EQ(env.min_arrival.size(), design.num_pins());
  for (size_t p = 0; p < design.num_pins(); ++p) {
    EXPECT_LE(env.min_arrival[p], env.max_arrival[p]) << "pin " << p;
  }

  const sdc::Sdc mode = sdc::parse_sdc(
      "create_clock -name C0 -period 10 [get_ports clk0]\n"
      "create_clock -name C1 -period 8 [get_ports clk1]\n"
      "set_multicycle_path 2 -setup -from [get_clocks C0] -to "
      "[get_clocks C0]\n",
      design);
  const std::vector<timing::BoundaryModel> models =
      timing::extract_boundary_models(graph, part, mode, &env);
  ASSERT_EQ(models.size(), 2u);
  for (const timing::BoundaryModel& m : models) {
    // Registers of every domain land in both halves of a 40-register
    // design, so each block sees some clock.
    EXPECT_FALSE(m.clocks.empty()) << "block " << m.block;
    EXPECT_EQ(m.envelopes.size(), part.block_boundary_counts()[m.block]);
    for (const timing::BoundaryEnvelope& e : m.envelopes) {
      EXPECT_TRUE(part.is_boundary(e.pin));
      EXPECT_EQ(part.block_of(e.pin), m.block);
      EXPECT_LE(e.min_arrival, e.max_arrival);
    }
    for (const uint32_t x : m.crossing_exceptions) {
      EXPECT_LT(x, mode.exceptions().size());
    }
  }
}

// --- ShardedMergeSession parity ----------------------------------------

/// Assert session output == a flat merge_mode_set + MergeabilityGraph over
/// the same decks with the same options (minus sharding): clique cover,
/// edges, reasons, merged SDC bytes.
void expect_unsharded_parity(ShardedMergeSession& session,
                             const timing::TimingGraph& graph) {
  const ShardedMergeSession::CommitResult& r = session.last_commit();
  const std::vector<const Sdc*> live = session.live_modes();
  MergeOptions flat = session.context().options();
  flat.num_shards = 1;

  const MergedModeSet scratch = merge_mode_set(graph, live, flat);
  ASSERT_EQ(r.cliques, scratch.cliques);
  ASSERT_EQ(r.merged.size(), scratch.merged.size());
  for (size_t i = 0; i < r.merged.size(); ++i) {
    EXPECT_EQ(sdc::write_sdc(*r.merged[i]->merge.merged),
              sdc::write_sdc(*scratch.merged[i].merge.merged))
        << "clique " << i;
  }

  MergeContext ref_ctx(flat);
  const MergeabilityGraph ref(live, ref_ctx);
  ASSERT_EQ(session.graph().num_modes(), ref.num_modes());
  for (size_t i = 0; i < ref.num_modes(); ++i) {
    for (size_t j = 0; j < ref.num_modes(); ++j) {
      EXPECT_EQ(session.graph().edge(i, j), ref.edge(i, j)) << i << "," << j;
      EXPECT_EQ(session.graph().reason(i, j), ref.reason(i, j))
          << i << "," << j;
    }
  }
}

class ShardedPaperTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  std::vector<sdc::Sdc> modes;
  std::vector<std::string> names;

  void SetUp() override {
    const std::pair<const char*, const char*> decks[] = {
        {"set1", cs::kSet1},         {"set2a", cs::kSet2ModeA},
        {"set2b", cs::kSet2ModeB},   {"set3a", cs::kSet3ModeA},
        {"set3b", cs::kSet3ModeB},   {"set4a", cs::kSet4ModeA},
        {"set4b", cs::kSet4ModeB},   {"set5a", cs::kSet5ModeA},
        {"set5b", cs::kSet5ModeB},   {"set6a", cs::kSet6ModeA},
        {"set6b", cs::kSet6ModeB},
    };
    for (const auto& [name, text] : decks) {
      names.push_back(name);
      modes.push_back(sdc::parse_sdc(text, design));
    }
  }
};

// K = 1 is the degenerate case: no checker installed, the wrapper *is*
// MergeSession (and reports an empty boundary and zero stitch work).
TEST_F(ShardedPaperTest, SingleShardDegeneratesToMergeSession) {
  MergeOptions opt;
  opt.num_shards = 1;
  opt.validate = false;
  ShardedMergeSession session(graph, opt);
  for (size_t i = 0; i < modes.size(); ++i) {
    session.add_mode(names[i], &modes[i]);
  }
  session.commit();

  EXPECT_EQ(session.num_blocks(), 1u);
  EXPECT_EQ(session.partition().boundary_pins().size(), 0u);
  EXPECT_EQ(session.last_stitch().pairs_checked, 0u);
  EXPECT_TRUE(session.boundary_models(&modes[0]).empty());
  expect_unsharded_parity(session, graph);
}

// The paper's whole constraint-set family through every shard count: the
// stitched verdicts must reproduce the flat cover, reasons, and bytes.
TEST_F(ShardedPaperTest, ByteParityAcrossShardCounts) {
  for (const size_t k : {2u, 4u, 8u}) {
    SCOPED_TRACE("K=" + std::to_string(k));
    MergeOptions opt;
    opt.num_shards = k;
    opt.validate = false;
    ShardedMergeSession session(graph, opt);
    for (size_t i = 0; i < modes.size(); ++i) {
      session.add_mode(names[i], &modes[i]);
    }
    session.commit();

    EXPECT_GT(session.num_blocks(), 1u);
    const ShardedMergeSession::StitchStats& st = session.last_stitch();
    EXPECT_EQ(st.pairs_checked, modes.size() * (modes.size() - 1) / 2);
    EXPECT_EQ(st.pairs_local + st.pairs_descended, st.pairs_checked);
    expect_unsharded_parity(session, graph);

    // Every registered deck carries one boundary model per block.
    const std::vector<timing::BoundaryModel>& bm =
        session.boundary_models(&modes[0]);
    EXPECT_EQ(bm.size(), session.num_blocks());
  }
}

// Incremental mutation through the sharded wrapper: remove + update between
// commits must keep parity (projections retained/released per deck).
TEST_F(ShardedPaperTest, IncrementalCommitsKeepParity) {
  MergeOptions opt;
  opt.num_shards = 4;
  opt.validate = false;
  ShardedMergeSession session(graph, opt);
  std::vector<ShardedMergeSession::ModeId> ids;
  for (size_t i = 0; i < modes.size(); ++i) {
    ids.push_back(session.add_mode(names[i], &modes[i]));
  }
  session.commit();
  expect_unsharded_parity(session, graph);

  session.remove_mode(ids[3]);
  session.update_mode(ids[5], &modes[6]);
  session.commit();
  expect_unsharded_parity(session, graph);

  session.add_mode("set3b_back", &modes[4]);
  session.commit();
  expect_unsharded_parity(session, graph);
}

// A generated 64-mode family on a block-structured design: the scale the
// sharded path exists for. Mostly-local cones keep the boundary shard
// thin, so the stitch decides the bulk of the pairs without descending.
TEST(ShardedFamily, SixtyFourModeByteParity) {
  netlist::Library lib = netlist::Library::builtin();
  gen::DesignParams dp;
  dp.num_regs = 60;
  dp.num_domains = 3;
  dp.num_blocks = 4;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  gen::ModeFamilyParams mp;
  mp.num_modes = 64;
  mp.target_groups = 8;
  const std::vector<gen::GeneratedMode> family =
      gen::generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 64u);

  std::vector<sdc::Sdc> modes;
  modes.reserve(family.size());
  for (const gen::GeneratedMode& gm : family) {
    modes.push_back(sdc::parse_sdc(gm.sdc_text, design));
  }

  for (const size_t k : {2u, 4u}) {
    SCOPED_TRACE("K=" + std::to_string(k));
    MergeOptions opt;
    opt.num_shards = k;
    opt.validate = false;
    ShardedMergeSession session(graph, opt);
    for (size_t i = 0; i < modes.size(); ++i) {
      session.add_mode(family[i].name, &modes[i]);
    }
    const ShardedMergeSession::CommitResult& r = session.commit();
    EXPECT_EQ(r.cliques.size(), 8u);

    const ShardedMergeSession::StitchStats& st = session.last_stitch();
    EXPECT_EQ(st.pairs_checked, 64u * 63u / 2u);
    // Acceptance bar: boundary re-checks stay rare on block-structured
    // designs (< 20% of pairs).
    EXPECT_LT(st.pairs_descended * 5, st.pairs_checked);
    expect_unsharded_parity(session, graph);
  }
}

// --- greedy_clique_cover determinism ------------------------------------

/// Random symmetric adjacency with the diagonal set.
std::vector<uint8_t> random_adjacency(size_t n, util::Rng& rng,
                                      int edge_percent) {
  std::vector<uint8_t> adj(n * n, 0);
  for (size_t i = 0; i < n; ++i) {
    adj[i * n + i] = 1;
    for (size_t j = i + 1; j < n; ++j) {
      const uint8_t e = rng.chance(edge_percent) ? 1 : 0;
      adj[i * n + j] = e;
      adj[j * n + i] = e;
    }
  }
  return adj;
}

// The cover is a pure function of the matrix: two calls agree, and the
// matrix assembled from any verdict production order (flat, sharded,
// incremental) is the same matrix — this is the property that makes
// sharded covers byte-identical to flat ones.
TEST(CliqueCoverDeterminism, PureFunctionOfAdjacency) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.below(12);
    const std::vector<uint8_t> adj =
        random_adjacency(n, rng, 20 + static_cast<int>(rng.below(60)));
    EXPECT_EQ(greedy_clique_cover(n, adj), greedy_clique_cover(n, adj));
  }
}

// Relabeling invariance on planted disjoint cliques: when the graph is a
// union of disjoint cliques (the structure mode_gen plants and the merge
// pipeline's covers must recover exactly), the cover is the planted
// partition under *every* labeling — any hidden dependence on iteration
// order beyond the documented degree/index rule would break this.
TEST(CliqueCoverDeterminism, RelabelingInvariantOnDisjointCliques) {
  util::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    // Plant cliques of distinct sizes 1..g over shuffled labels.
    const size_t g = 2 + rng.below(4);
    size_t n = 0;
    for (size_t c = 0; c < g; ++c) n += c + 1;
    std::vector<size_t> label(n);
    for (size_t i = 0; i < n; ++i) label[i] = i;
    for (size_t i = n; i > 1; --i) {
      std::swap(label[i - 1], label[rng.below(i)]);
    }
    std::vector<std::vector<size_t>> planted;
    size_t next = 0;
    for (size_t c = 0; c < g; ++c) {
      std::vector<size_t> clique;
      for (size_t k = 0; k <= c; ++k) clique.push_back(label[next++]);
      planted.push_back(std::move(clique));
    }
    std::vector<uint8_t> adj(n * n, 0);
    for (size_t i = 0; i < n; ++i) adj[i * n + i] = 1;
    for (const std::vector<size_t>& clique : planted) {
      for (const size_t a : clique) {
        for (const size_t b : clique) adj[a * n + b] = 1;
      }
    }

    std::vector<std::vector<size_t>> cover = greedy_clique_cover(n, adj);
    for (std::vector<size_t>& c : cover) std::sort(c.begin(), c.end());
    std::sort(cover.begin(), cover.end());
    for (std::vector<size_t>& c : planted) std::sort(c.begin(), c.end());
    std::sort(planted.begin(), planted.end());
    EXPECT_EQ(cover, planted) << "trial " << trial;
  }
}

// Mode insertion order on a planted block-diagonal family: the cover as a
// set of name-sets must not depend on the order decks were registered.
// (This is exactly the structure where the invariant is guaranteed — with
// overlapping cliques the greedy tie-breaks legitimately depend on ids.)
TEST(CliqueCoverDeterminism, InsertionOrderInvariantCoverContents) {
  netlist::Library lib = netlist::Library::builtin();
  gen::DesignParams dp;
  dp.num_regs = 40;
  dp.num_blocks = 2;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  gen::ModeFamilyParams mp;
  mp.num_modes = 10;
  mp.target_groups = 3;
  const std::vector<gen::GeneratedMode> family =
      gen::generate_mode_family(dp, mp);
  std::vector<sdc::Sdc> modes;
  for (const gen::GeneratedMode& gm : family) {
    modes.push_back(sdc::parse_sdc(gm.sdc_text, design));
  }

  auto cover_by_name = [&](const std::vector<size_t>& order) {
    MergeOptions opt;
    opt.num_shards = 4;
    opt.validate = false;
    ShardedMergeSession session(graph, opt);
    std::vector<std::string> by_index;
    for (const size_t i : order) {
      session.add_mode(family[i].name, &modes[i]);
      by_index.push_back(family[i].name);
    }
    const ShardedMergeSession::CommitResult& r = session.commit();
    std::vector<std::vector<std::string>> cover;
    for (const std::vector<size_t>& clique : r.cliques) {
      std::vector<std::string> members;
      for (const size_t m : clique) members.push_back(by_index[m]);
      std::sort(members.begin(), members.end());
      cover.push_back(std::move(members));
    }
    std::sort(cover.begin(), cover.end());
    return cover;
  };

  std::vector<size_t> fwd(modes.size());
  for (size_t i = 0; i < fwd.size(); ++i) fwd[i] = i;
  std::vector<size_t> rev(fwd.rbegin(), fwd.rend());
  const auto cover = cover_by_name(fwd);
  EXPECT_EQ(cover.size(), 3u);
  EXPECT_EQ(cover, cover_by_name(rev));
}

}  // namespace
}  // namespace mm::merge
