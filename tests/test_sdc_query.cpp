// Direct tests of the SDC object-query layer: query commands, bare-name
// fallback, nesting, acceptance masks, error reporting.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "sdc/lexer.h"
#include "sdc/parser.h"
#include "sdc/query.h"

namespace mm::sdc {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  Sdc sdc{parse_sdc("create_clock -name clkA -period 10 [get_ports clk1]\n"
                    "create_clock -name clkB -period 20 [get_ports clk2]\n",
                    design)};
  QueryContext ctx{&design, &sdc};

  /// Evaluate the first word of a one-command snippet.
  ObjectSet eval(const std::string& snippet, unsigned accept = kAcceptAny) {
    const auto cmds = lex_sdc("cmd " + snippet + "\n");
    return ctx.evaluate(cmds.at(0).words.at(1), accept);
  }
};

TEST_F(QueryTest, GetPortsExactAndGlob) {
  EXPECT_EQ(eval("[get_ports clk1]").pins.size(), 1u);
  EXPECT_EQ(eval("[get_ports clk*]").pins.size(), 2u);
  EXPECT_EQ(eval("[get_ports {clk1 clk2 sel1}]").pins.size(), 3u);
  EXPECT_THROW(eval("[get_ports nope]"), Error);
  EXPECT_THROW(eval("[get_ports nope*]"), Error);
}

TEST_F(QueryTest, GetPinsSkipsPorts) {
  // Glob over pins never matches port pins.
  const ObjectSet all = eval("[get_pins */*]");
  for (sdc::PinId p : all.pins) {
    EXPECT_FALSE(design.pin(p).is_port());
  }
  EXPECT_THROW(eval("[get_pins clk1]"), Error);  // port, not a pin
}

TEST_F(QueryTest, GetCells) {
  EXPECT_EQ(eval("[get_cells r*]").insts.size(), 6u);
  EXPECT_EQ(eval("[get_cells mux1]").insts.size(), 1u);
}

TEST_F(QueryTest, GetClocks) {
  EXPECT_EQ(eval("[get_clocks clk*]").clocks.size(), 2u);
  const ObjectSet one = eval("[get_clocks clkB]");
  ASSERT_EQ(one.clocks.size(), 1u);
  EXPECT_EQ(sdc.clock(one.clocks[0]).name, "clkB");
}

TEST_F(QueryTest, AllQueries) {
  EXPECT_EQ(eval("[all_inputs]").pins.size(), 5u);
  EXPECT_EQ(eval("[all_outputs]").pins.size(), 1u);
  EXPECT_EQ(eval("[all_clocks]").clocks.size(), 2u);
  EXPECT_EQ(eval("[all_registers]").insts.size(), 6u);
  EXPECT_EQ(eval("[all_registers -clock_pins]").pins.size(), 6u);
}

TEST_F(QueryTest, BareNameResolutionOrder) {
  // Pin first, then clock, then instance.
  const ObjectSet pin = eval("rA/Q");
  EXPECT_EQ(pin.pins.size(), 1u);
  const ObjectSet clock = eval("clkA", kAcceptClocks);
  EXPECT_EQ(clock.clocks.size(), 1u);
  const ObjectSet inst = eval("mux1");
  EXPECT_EQ(inst.insts.size(), 1u);
}

TEST_F(QueryTest, UnknownBracketHeadFallsBackToNames) {
  // The paper's "[and1/Z]" shorthand.
  const ObjectSet set = eval("[and1/Z]");
  ASSERT_EQ(set.pins.size(), 1u);
  EXPECT_EQ(design.pin_name(set.pins[0]), "and1/Z");
}

TEST_F(QueryTest, ListCommandAndNesting) {
  const ObjectSet set = eval("[list rA/Q rB/Q]");
  EXPECT_EQ(set.pins.size(), 2u);
  const ObjectSet nested = eval("[get_pins {rA/Q rB/Q}]");
  EXPECT_EQ(nested.pins.size(), 2u);
}

TEST_F(QueryTest, AcceptanceMasks) {
  EXPECT_THROW(eval("[get_clocks clkA]", kAcceptPins), Error);
  EXPECT_THROW(eval("[get_cells mux1]", kAcceptPins | kAcceptClocks), Error);
  EXPECT_THROW(eval("nosuchthing"), Error);
}

TEST_F(QueryTest, UnsupportedQueryOptionThrows) {
  EXPECT_THROW(eval("[get_ports -regexp clk.*]"), Error);
}

TEST_F(QueryTest, BraceOfNames) {
  const auto cmds = lex_sdc("cmd {rA/Q clkA}\n");
  const ObjectSet set = ctx.evaluate(cmds.at(0).words.at(1), kAcceptAny);
  EXPECT_EQ(set.pins.size(), 1u);
  EXPECT_EQ(set.clocks.size(), 1u);
}

}  // namespace
}  // namespace mm::sdc
