// Mergeability analysis tests: pairwise verdicts, the mergeability graph
// and the greedy clique cover (paper Figure 2).

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/mergeability.h"
#include "sdc/parser.h"

namespace mm::merge {
namespace {

class MergeabilityTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  MergeOptions options;
};

TEST_F(MergeabilityTest, IdenticalModesMerge) {
  const std::string text =
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n";
  sdc::Sdc a = parse(text), b = parse(text);
  EXPECT_TRUE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, DisjointClockModesMerge) {
  sdc::Sdc a = parse("create_clock -name c1 -period 10 [get_ports clk1]\n");
  sdc::Sdc b = parse("create_clock -name c2 -period 20 [get_ports clk2]\n");
  EXPECT_TRUE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, UncertaintyConflictBlocksMerge) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.9 [get_clocks c]\n");
  const PairVerdict v = check_mergeable(a, b, options);
  EXPECT_FALSE(v.mergeable);
  EXPECT_NE(v.reason.find("uncertainty"), std::string::npos);

  MergeOptions loose;
  loose.value_tolerance = 3.0;
  EXPECT_TRUE(check_mergeable(a, b, loose).mergeable);
}

TEST_F(MergeabilityTest, LatencyConflictBlocksMerge) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_latency -max 0.5 [get_clocks c]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_latency -max 2.5 [get_clocks c]\n");
  EXPECT_FALSE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, DifferentWaveformClocksDoNotConflict) {
  // Clocks with different periods on the same port are different clocks;
  // their constraints are unrelated.
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_latency -max 0.5 [get_clocks c]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 20 [get_ports clk1]\n"
      "set_clock_latency -max 2.5 [get_clocks c]\n");
  EXPECT_TRUE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, DriveConflictBlocksMerge) {
  sdc::Sdc a = parse("set_input_transition 0.1 [get_ports in1]\n");
  sdc::Sdc b = parse("set_input_transition 0.9 [get_ports in1]\n");
  EXPECT_FALSE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, LoadConflictBlocksMerge) {
  sdc::Sdc a = parse("set_load 1.0 [get_ports out1]\n");
  sdc::Sdc b = parse("set_load 5.0 [get_ports out1]\n");
  EXPECT_FALSE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, ConflictingMcpValuesBlockMerge) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_multicycle_path 2 -through [get_pins inv1/Z]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_multicycle_path 3 -through [get_pins inv1/Z]\n");
  EXPECT_FALSE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, UniqueMcpWithSharedClockBlocksMerge) {
  // The MCP applies to clkA paths; clkA also exists in mode B, so clock
  // restriction cannot isolate it.
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_multicycle_path 2 -through [get_pins inv1/Z]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  EXPECT_FALSE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, UniqueMcpWithDisjointClocksMerges) {
  // Paper Constraint Set 4: the MCP is uniquifiable because mode B has no
  // clkA at all.
  sdc::Sdc a = parse(gen::constraint_sets::kSet4ModeA);
  sdc::Sdc b = parse(gen::constraint_sets::kSet4ModeB);
  EXPECT_TRUE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, UniqueFalsePathNeverBlocks) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  EXPECT_TRUE(check_mergeable(a, b, options).mergeable);
}

TEST_F(MergeabilityTest, CliqueCoverBlockDiagonal) {
  // Three groups of sizes 3/2/1 planted via incompatible uncertainty.
  std::vector<sdc::Sdc> modes;
  std::vector<const Sdc*> ptrs;
  const size_t group_of[6] = {0, 0, 0, 1, 1, 2};
  for (size_t i = 0; i < 6; ++i) {
    modes.push_back(parse(
        "create_clock -name c -period 10 [get_ports clk1]\n"
        "set_clock_uncertainty -setup " +
        std::to_string(0.1 + 1.0 * static_cast<double>(group_of[i])) +
        " [get_clocks c]\n"));
  }
  for (const auto& m : modes) ptrs.push_back(&m);

  MergeabilityGraph graph(ptrs, options);
  EXPECT_TRUE(graph.edge(0, 1));
  EXPECT_TRUE(graph.edge(3, 4));
  EXPECT_FALSE(graph.edge(0, 3));
  EXPECT_FALSE(graph.edge(4, 5));
  EXPECT_EQ(graph.degree(0), 2u);
  EXPECT_EQ(graph.degree(5), 0u);
  EXPECT_FALSE(graph.reason(0, 3).empty());

  const auto cliques = graph.clique_cover();
  ASSERT_EQ(cliques.size(), 3u);
  EXPECT_EQ(cliques[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(cliques[1], (std::vector<size_t>{3, 4}));
  EXPECT_EQ(cliques[2], (std::vector<size_t>{5}));
}

TEST_F(MergeabilityTest, CliqueCoverFullyConnected) {
  std::vector<sdc::Sdc> modes;
  std::vector<const Sdc*> ptrs;
  for (size_t i = 0; i < 5; ++i) {
    modes.push_back(parse("create_clock -name c -period 10 [get_ports clk1]\n"));
  }
  for (const auto& m : modes) ptrs.push_back(&m);
  MergeabilityGraph graph(ptrs, options);
  const auto cliques = graph.clique_cover();
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 5u);
}

TEST_F(MergeabilityTest, SingleMode) {
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  MergeabilityGraph graph({&a}, options);
  const auto cliques = graph.clique_cover();
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 1u);
}

}  // namespace
}  // namespace mm::merge
