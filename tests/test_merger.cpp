// Merge orchestrator edge cases: single-mode cliques, empty constraint
// sets, option plumbing, and the textual report.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "merge/mergeability.h"
#include "sdc/parser.h"
#include "timing/sta.h"

namespace mm::merge {
namespace {

class MergerTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }
};

TEST_F(MergerTest, SingleModeMergeIsIdentity) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n");
  const ValidatedMergeResult out = merge_modes(graph, {&a});
  EXPECT_TRUE(out.equivalence.equivalent());
  EXPECT_EQ(out.merge.merged->num_clocks(), 1u);
  EXPECT_EQ(out.merge.merged->exceptions().size(), 1u);
  EXPECT_EQ(out.merge.stats.pass1_mismatch_fixed, 0u);
  EXPECT_EQ(out.merge.stats.clock_stops_added, 0u);
}

TEST_F(MergerTest, EmptyConstraintModes) {
  sdc::Sdc a = parse(""), b = parse("");
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_TRUE(out.equivalence.equivalent());
  EXPECT_EQ(out.merge.merged->num_clocks(), 0u);
  EXPECT_EQ(out.equivalence.keys_compared, 0u);
}

TEST_F(MergerTest, RefinementCanBeDisabled) {
  sdc::Sdc a = parse(gen::constraint_sets::kSet6ModeA);
  sdc::Sdc b = parse(gen::constraint_sets::kSet6ModeB);
  MergeOptions options;
  options.run_refinement = false;
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b}, options);
  // No refinement, no validation run: exceptions stay empty.
  EXPECT_TRUE(out.merge.merged->exceptions().empty());
  EXPECT_EQ(out.equivalence.keys_compared, 0u);
}

TEST_F(MergerTest, ValidationCanBeDisabled) {
  sdc::Sdc a = parse(gen::constraint_sets::kSet6ModeA);
  sdc::Sdc b = parse(gen::constraint_sets::kSet6ModeB);
  MergeOptions options;
  options.validate = false;
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b}, options);
  EXPECT_EQ(out.equivalence.keys_compared, 0u);
  // Refinement still ran.
  EXPECT_GE(out.merge.stats.pass1_mismatch_fixed, 1u);
}

TEST_F(MergerTest, ModeSetWithSingletons) {
  // One mergeable pair + one incompatible singleton.
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.1 [get_clocks c]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.1 [get_clocks c]\n"
      "set_false_path -to [get_pins rX/D]\n");
  sdc::Sdc c = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 5.0 [get_clocks c]\n");
  const MergedModeSet out = merge_mode_set(graph, {&a, &b, &c});
  ASSERT_EQ(out.num_merged_modes(), 2u);
  EXPECT_NEAR(out.reduction_percent(), 33.3, 0.1);
  // The singleton clique's "merged" mode is just mode c, still validated.
  for (const ValidatedMergeResult& m : out.merged) {
    EXPECT_TRUE(m.equivalence.signoff_safe());
  }
}

TEST_F(MergerTest, ReportMentionsKeySections) {
  sdc::Sdc a = parse(gen::constraint_sets::kSet6ModeA);
  sdc::Sdc b = parse(gen::constraint_sets::kSet6ModeB);
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  const std::string report = report_merge(out.merge, out.equivalence);
  for (const char* needle :
       {"preliminary merge", "refinement", "pass 1", "pass 2", "pass 3",
        "validation", "EQUIVALENT"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle << "\n" << report;
  }
}

TEST_F(MergerTest, StatsTimersPopulated) {
  sdc::Sdc a = parse(gen::constraint_sets::kSet6ModeA);
  sdc::Sdc b = parse(gen::constraint_sets::kSet6ModeB);
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_GE(out.merge.stats.preliminary_seconds, 0.0);
  EXPECT_GT(out.merge.stats.refinement_seconds, 0.0);
  EXPECT_GT(out.merge.stats.validate_seconds, 0.0);
}

TEST_F(MergerTest, ConflictingValuesAreReportedNotSilent) {
  // Force-merging modes that mergeability would keep apart (MCP 2 vs 3 on
  // the same paths): the result must never lose timed-ness, and the value
  // conflict must surface as a state mismatch in the report (the corner
  // documented in docs/ALGORITHM.md §5).
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_multicycle_path 2 -setup -to [get_pins rX/D]\n");
  sdc::Sdc b = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_multicycle_path 3 -setup -to [get_pins rX/D]\n");
  // Mergeability correctly refuses the pair...
  EXPECT_FALSE(check_mergeable(a, b, {}).mergeable);
  // ...but a forced direct merge still keeps every path timed.
  const ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  EXPECT_EQ(out.equivalence.optimism_violations, 0u)
      << report_merge(out.merge, out.equivalence);
  const timing::StaResult sta = timing::run_sta(graph, *out.merge.merged);
  EXPECT_EQ(sta.endpoint_slack.count(design.find_pin("rX/D").value()), 1u);
}

TEST_F(MergerTest, DifferentDesignsAssert) {
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  netlist::Design other = gen::paper_circuit(lib);
  sdc::Sdc b = sdc::parse_sdc("create_clock -name c -period 10 [get_ports clk1]\n",
                              other);
  EXPECT_DEATH((void)merge_modes(graph, {&a, &b}), "different designs");
}

}  // namespace
}  // namespace mm::merge
