// End-to-end reproduction of the paper's worked examples on the Figure-1
// circuit: Constraint Sets 2 (clock union + tolerance merge), 3 (clock
// refinement + disable inference), 4 (exception uniquification) and 5 (data
// refinement / exclusivity). Table 1 is covered in test_relationships,
// Constraint Set 6 in test_three_pass.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"
#include "sdc/writer.h"

namespace mm::merge {
namespace {

namespace cs = gen::constraint_sets;

class PaperTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const char* text) { return sdc::parse_sdc(text, design); }
};

// --- Constraint Set 2: §3.1.1 clock union, §3.1.2 tolerance merge ----------

TEST_F(PaperTest, Set2ClockUnion) {
  const sdc::Sdc a = parse(cs::kSet2ModeA);
  const sdc::Sdc b = parse(cs::kSet2ModeB);
  MergeOptions options;
  options.value_tolerance = 0.1;  // 1.0 vs 1.05 is "within tolerance"
  MergeResult result = preliminary_merge({&a, &b}, options);
  const sdc::Sdc& merged = *result.merged;

  // Four clocks: A.clkA, A.clkB; B.clkA and B.clkB are unique (different
  // periods) and B.clkC dedups with A.clkB.
  EXPECT_EQ(merged.num_clocks(), 4u);
  EXPECT_EQ(result.stats.clocks_deduped, 1u);
  EXPECT_TRUE(merged.find_clock("clkA").valid());
  EXPECT_TRUE(merged.find_clock("clkB").valid());
  // Name collisions resolved with unique suffixes (paper: clkB -> clkB_1).
  EXPECT_TRUE(merged.find_clock("clkA_1").valid());
  EXPECT_TRUE(merged.find_clock("clkB_1").valid());
  EXPECT_EQ(result.stats.clocks_renamed, 2u);

  // All merged clocks carry -add so they coexist on shared sources.
  for (const sdc::Clock& c : merged.clocks()) EXPECT_TRUE(c.add);

  // Clock map is two-way consistent.
  const ClockMap& map = result.clock_map;
  for (size_t m = 0; m < 2; ++m) {
    const sdc::Sdc& mode = m == 0 ? a : b;
    for (size_t ci = 0; ci < mode.num_clocks(); ++ci) {
      const ClockId mc(ci);
      const ClockId merged_id = map.merged_of(m, mc);
      ASSERT_TRUE(merged_id.valid());
      EXPECT_EQ(map.mode_clock_of(merged_id, m), mc);
    }
  }

  // §3.1.2: min-flavour latency on the shared clock = min(1.0, 1.05).
  const ClockId clkB = merged.find_clock("clkB");
  bool found = false;
  for (const sdc::ClockLatency& lat : merged.clock_latencies()) {
    if (lat.clock == clkB && lat.minmax.min) {
      EXPECT_DOUBLE_EQ(lat.value, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PaperTest, Set2OutOfToleranceDropsConstraint) {
  const sdc::Sdc a = parse(cs::kSet2ModeA);
  const sdc::Sdc b = parse(cs::kSet2ModeB);
  MergeOptions options;
  options.value_tolerance = 0.0;  // 1.0 vs 1.05 now conflicts
  MergeResult result = preliminary_merge({&a, &b}, options);
  EXPECT_GE(result.stats.clock_constraints_dropped, 1u);
}

// --- Constraint Set 3: §3.1.8 clock refinement --------------------------------

TEST_F(PaperTest, Set3ClockRefinement) {
  const sdc::Sdc a = parse(cs::kSet3ModeA);
  const sdc::Sdc b = parse(cs::kSet3ModeB);
  ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  const sdc::Sdc& merged = *out.merge.merged;

  // Conflicting case values on sel1/sel2 are dropped...
  EXPECT_TRUE(merged.case_analysis().empty());
  EXPECT_GE(out.merge.stats.case_dropped, 2u);

  // ...and re-expressed as inferred disables (paper CSTR1/CSTR2).
  EXPECT_EQ(out.merge.stats.inferred_disables, 2u);
  bool sel1 = false, sel2 = false;
  for (const sdc::DisableTiming& dt : merged.disables()) {
    if (!dt.pin.valid()) continue;
    if (design.pin_name(dt.pin) == "sel1") sel1 = true;
    if (design.pin_name(dt.pin) == "sel2") sel2 = true;
  }
  EXPECT_TRUE(sel1);
  EXPECT_TRUE(sel2);

  // The mux select is 1 in both modes, so clkA never passes mux1; the
  // merged mode must stop clkA at mux1/Z (paper CSTR3).
  bool stop_found = false;
  for (const sdc::ClockSenseStop& stop : merged.clock_sense_stops()) {
    if (design.pin_name(stop.pin) == "mux1/Z" && stop.clock.valid() &&
        merged.clock(stop.clock).name == "clkA") {
      stop_found = true;
    }
  }
  EXPECT_TRUE(stop_found);

  // clkB must NOT be stopped (it legitimately passes in both modes).
  for (const sdc::ClockSenseStop& stop : merged.clock_sense_stops()) {
    if (stop.clock.valid()) {
      EXPECT_NE(merged.clock(stop.clock).name, "clkB");
    }
  }

  // Correct by construction: sign-off safe, no pessimism.
  EXPECT_TRUE(out.equivalence.signoff_safe());
  EXPECT_EQ(out.equivalence.pessimism_keys, 0u);
}

// --- Constraint Set 4: §3.1.10 exception uniquification ------------------------

TEST_F(PaperTest, Set4ExceptionUniquification) {
  const sdc::Sdc a = parse(cs::kSet4ModeA);
  const sdc::Sdc b = parse(cs::kSet4ModeB);
  ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  const sdc::Sdc& merged = *out.merge.merged;

  EXPECT_EQ(out.merge.stats.exceptions_uniquified, 1u);
  // MCP1 of A' in the paper: -from [get_clocks clkA] -through [rA/CP].
  bool found = false;
  for (const sdc::Exception& ex : merged.exceptions()) {
    if (ex.kind != sdc::ExceptionKind::kMulticyclePath) continue;
    if (ex.from.clocks.size() == 1 &&
        merged.clock(ex.from.clocks[0]).name == "clkA" &&
        ex.from.pins.empty() && ex.throughs.size() == 1 &&
        ex.throughs[0].pins.size() == 1 &&
        design.pin_name(ex.throughs[0].pins[0]) == "rA/CP") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << sdc::write_sdc(merged);
  EXPECT_TRUE(out.equivalence.signoff_safe());
}

// --- Constraint Set 5: §3.2 data refinement ------------------------------------

TEST_F(PaperTest, Set5DataRefinement) {
  const sdc::Sdc a = parse(cs::kSet5ModeA);
  const sdc::Sdc b = parse(cs::kSet5ModeB);
  ValidatedMergeResult out = merge_modes(graph, {&a, &b});
  const sdc::Sdc& merged = *out.merge.merged;

  // Union of clocks on the same port: both with -add (CSTR CLK1/CLK2).
  EXPECT_EQ(merged.num_clocks(), 2u);

  // External delays are a union with -add_delay on the later entries
  // (paper CSTR1-4).
  size_t in_delays = 0, out_delays = 0;
  for (const sdc::PortDelay& pd : merged.port_delays()) {
    (pd.is_input ? in_delays : out_delays)++;
  }
  EXPECT_EQ(in_delays, 2u);
  EXPECT_EQ(out_delays, 2u);

  // ClkA and ClkB never coexist in an individual mode: the merged mode must
  // declare them exclusive (paper CSTR5).
  EXPECT_TRUE(merged.clocks_exclusive(merged.find_clock("ClkA"),
                                      merged.find_clock("ClkB")));

  // Mode B pins rB/Q to 0, so ClkB never launches through rB/Q; the merged
  // mode needs a false path from ClkB through rB/Q (paper CSTR6).
  bool cstr6 = false;
  for (const sdc::Exception& ex : merged.exceptions()) {
    if (ex.kind != sdc::ExceptionKind::kFalsePath) continue;
    if (ex.from.clocks.size() == 1 &&
        merged.clock(ex.from.clocks[0]).name == "ClkB") {
      for (const sdc::ExceptionPoint& th : ex.throughs) {
        for (sdc::PinId p : th.pins) {
          if (design.pin_name(p) == "rB/Q") cstr6 = true;
        }
      }
    }
  }
  EXPECT_TRUE(cstr6) << sdc::write_sdc(merged);

  EXPECT_TRUE(out.equivalence.signoff_safe());
  EXPECT_EQ(out.equivalence.pessimism_keys, 0u);
}

// --- merged modes round-trip through real SDC text -----------------------------

TEST_F(PaperTest, MergedModeRoundTripsThroughSdcText) {
  const sdc::Sdc a = parse(cs::kSet3ModeA);
  const sdc::Sdc b = parse(cs::kSet3ModeB);
  ValidatedMergeResult out = merge_modes(graph, {&a, &b});

  const std::string text = sdc::write_sdc(*out.merge.merged);
  const sdc::Sdc reparsed = sdc::parse_sdc(text, design);

  // The reparsed merged mode must still be equivalent to the originals.
  RefineContext ctx(graph, {&a, &b});
  const EquivalenceReport report =
      check_equivalence(ctx, reparsed, out.merge.clock_map);
  EXPECT_TRUE(report.signoff_safe()) << text;
  EXPECT_EQ(report.pessimism_keys, 0u) << text;
}

}  // namespace
}  // namespace mm::merge
