// Property-based tests: randomized workloads hammering the core invariants.
//
//  - Whatever modes are thrown at merge_mode_set, every merged mode must be
//    sign-off safe (zero optimism) and pessimism-free after refinement.
//  - Merged modes survive an SDC text round-trip with the same guarantees.
//  - The glob matcher and SDC lexer never crash on adversarial input.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/design_gen.h"
#include "merge/merger.h"
#include "sdc/lexer.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "util/glob.h"
#include "util/rng.h"

namespace mm {
namespace {

using util::Rng;

/// A deliberately chaotic mode: random clock subsets with periods drawn
/// from a small pool (so some clocks match across modes and some collide),
/// random case values, random latencies/uncertainties from a small value
/// pool (some compatible, some not), random exceptions of every kind with
/// random anchors. No planted structure whatsoever.
std::string random_mode(const gen::DesignParams& dp, Rng& rng) {
  std::ostringstream os;
  const double periods[] = {4.0, 5.0, 8.0, 10.0};
  const double values[] = {0.1, 0.2, 0.5};
  bool any_clock = false;
  for (size_t d = 0; d < dp.num_domains; ++d) {
    if (rng.chance(70)) {
      os << "create_clock -name K" << d << " -period "
         << periods[rng.below(std::size(periods))] << " [get_ports clk" << d
         << "]\n";
      any_clock = true;
      if (rng.chance(40)) {
        os << "set_clock_uncertainty -setup "
           << values[rng.below(std::size(values))] << " [get_clocks K" << d
           << "]\n";
      }
      if (rng.chance(30)) {
        os << "set_clock_latency -max " << values[rng.below(std::size(values))]
           << " [get_clocks K" << d << "]\n";
      }
    }
  }
  if (!any_clock || rng.chance(30)) {
    os << "create_clock -name TK -period 16 [get_ports tclk]\n";
  }
  os << "set_case_analysis " << rng.below(2) << " test_mode\n";
  if (dp.scan && rng.chance(80)) {
    os << "set_case_analysis " << rng.below(2) << " scan_en\n";
  }
  for (size_t d = 0; d < dp.num_domains; ++d) {
    if (rng.chance(70)) {
      os << "set_case_analysis " << rng.below(2) << " en" << d << "\n";
    }
  }
  const size_t num_gates = dp.num_regs * dp.comb_per_reg;
  const size_t num_exceptions = 1 + rng.below(6);
  for (size_t i = 0; i < num_exceptions; ++i) {
    switch (rng.below(5)) {
      case 0:
        os << "set_false_path -through [get_pins g" << rng.below(num_gates)
           << "/Z]\n";
        break;
      case 1:
        os << "set_false_path -from [get_pins r" << rng.below(dp.num_regs)
           << "/CP] -to [get_pins r" << rng.below(dp.num_regs) << "/D]\n";
        break;
      case 2:
        os << "set_multicycle_path " << 2 + rng.below(2)
           << " -setup -through [get_pins r" << rng.below(dp.num_regs)
           << "/Q]\n";
        break;
      case 3:
        os << "set_max_delay " << 2.0 + 0.5 * rng.below(8)
           << " -to [get_pins r" << rng.below(dp.num_regs) << "/D]\n";
        break;
      default:
        os << "set_false_path -setup -to [get_pins r" << rng.below(dp.num_regs)
           << "/D]\n";
        break;
    }
  }
  if (rng.chance(50)) {
    os << "set_disable_timing [get_pins g" << rng.below(num_gates) << "/Z]\n";
  }
  return os.str();
}

class RandomMergeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMergeTest, MergeIsNeverOptimistic) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  netlist::Library lib = netlist::Library::builtin();
  gen::DesignParams dp;
  dp.num_regs = 60 + rng.below(80);
  dp.num_domains = 2 + rng.below(3);
  dp.scan = rng.chance(70);
  dp.clock_gates = rng.chance(70);
  dp.seed = seed;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  const size_t num_modes = 2 + rng.below(4);
  std::vector<sdc::Sdc> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (size_t m = 0; m < num_modes; ++m) {
    modes.push_back(sdc::parse_sdc(random_mode(dp, rng), design));
  }
  for (const auto& m : modes) ptrs.push_back(&m);

  const merge::MergedModeSet out = merge::merge_mode_set(graph, ptrs);

  // Clique cover sanity: a partition of all modes.
  size_t covered = 0;
  for (const auto& clique : out.cliques) covered += clique.size();
  EXPECT_EQ(covered, num_modes);

  for (size_t c = 0; c < out.merged.size(); ++c) {
    const merge::ValidatedMergeResult& m = out.merged[c];
    SCOPED_TRACE("seed=" + std::to_string(seed) + " clique=" + std::to_string(c));
    EXPECT_EQ(m.equivalence.optimism_violations, 0u)
        << merge::report_merge(m.merge, m.equivalence);
    // Residual pessimism is acceptable ONLY when the refinement explicitly
    // accounted for it (SDC-inexpressible capture-specific cases, path
    // enumeration caps); silent pessimism is a bug.
    if (m.merge.stats.unresolved_pessimism == 0) {
      EXPECT_EQ(m.equivalence.pessimism_keys, 0u)
          << merge::report_merge(m.merge, m.equivalence);
    }

    // Round-trip through SDC text preserves sign-off safety.
    std::vector<const sdc::Sdc*> members;
    for (size_t idx : out.cliques[c]) members.push_back(ptrs[idx]);
    const sdc::Sdc reparsed =
        sdc::parse_sdc(sdc::write_sdc(*m.merge.merged), design);
    merge::RefineContext ctx(graph, members);
    const merge::EquivalenceReport rt =
        merge::check_equivalence(ctx, reparsed, m.merge.clock_map);
    EXPECT_EQ(rt.optimism_violations, 0u);
    EXPECT_EQ(rt.pessimism_keys, m.equivalence.pessimism_keys);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMergeTest,
                         ::testing::Range<uint64_t>(1, 41));

// --- glob properties ----------------------------------------------------------

class GlobPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlobPropertyTest, Invariants) {
  Rng rng(GetParam());
  const char alphabet[] = "ab*?/_1";
  for (int iter = 0; iter < 200; ++iter) {
    std::string text, pattern;
    const size_t tn = rng.below(12);
    for (size_t i = 0; i < tn; ++i) {
      // Text never contains metacharacters.
      text.push_back("ab_/1"[rng.below(5)]);
    }
    const size_t pn = rng.below(12);
    for (size_t i = 0; i < pn; ++i) {
      pattern.push_back(alphabet[rng.below(std::size(alphabet) - 1)]);
    }
    // Reflexivity on literal strings.
    EXPECT_TRUE(glob_match(text, text));
    // "*" matches everything.
    EXPECT_TRUE(glob_match("*", text));
    // pattern + "*" matches pattern-prefix texts.
    EXPECT_TRUE(glob_match(text + "*", text));
    EXPECT_TRUE(glob_match("*" + text, text));
    // A '?' consumes exactly one character.
    if (!text.empty()) {
      EXPECT_TRUE(glob_match(text.substr(0, text.size() - 1) + "?", text));
    }
    // No crash on arbitrary pattern/text combinations.
    (void)glob_match(pattern, text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobPropertyTest,
                         ::testing::Range<uint64_t>(1, 5));

// --- lexer fuzz -----------------------------------------------------------------

class LexerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LexerFuzzTest, NeverCrashesOnlyThrows) {
  Rng rng(GetParam());
  const char alphabet[] = "abc {}[]\"#;\\\n\t-_0.5/*";
  for (int iter = 0; iter < 300; ++iter) {
    std::string text;
    const size_t n = rng.below(64);
    for (size_t i = 0; i < n; ++i) {
      text.push_back(alphabet[rng.below(std::size(alphabet) - 1)]);
    }
    try {
      const auto cmds = sdc::lex_sdc(text);
      (void)cmds;
    } catch (const Error&) {
      // Throwing mm::Error is the only acceptable failure.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerFuzzTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace mm
