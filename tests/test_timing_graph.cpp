// Unit tests for the mode-independent timing graph: arcs, checks,
// levelization, loop breaking, startpoint/endpoint classification.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "netlist/builder.h"
#include "timing/graph.h"

namespace mm::timing {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
};

TEST_F(GraphTest, PaperCircuitStructure) {
  netlist::Design d = gen::paper_circuit(lib);
  TimingGraph g(d);

  EXPECT_EQ(g.num_nodes(), d.num_pins());
  EXPECT_EQ(g.num_loop_breaks(), 0u);

  // Endpoints: 6 register D pins + out1.
  EXPECT_EQ(g.endpoints().size(), 7u);
  // Startpoints: 6 register CP pins + 5 input ports.
  EXPECT_EQ(g.startpoints().size(), 11u);
  EXPECT_TRUE(g.is_endpoint(d.find_pin("rX/D")));
  EXPECT_TRUE(g.is_startpoint(d.find_pin("rA/CP")));
  EXPECT_FALSE(g.is_startpoint(d.find_pin("rA/Q")));

  // Topological order: driver precedes load.
  EXPECT_LT(g.topo_position(d.find_pin("rA/Q")),
            g.topo_position(d.find_pin("inv1/A")));
  EXPECT_LT(g.topo_position(d.find_pin("inv1/A")),
            g.topo_position(d.find_pin("inv1/Z")));
  EXPECT_LT(g.topo_position(d.find_pin("inv1/Z")),
            g.topo_position(d.find_pin("rX/D")));
}

TEST_F(GraphTest, ChecksConnectDataToClock) {
  netlist::Design d = gen::paper_circuit(lib);
  TimingGraph g(d);
  const auto& checks = g.checks_at(d.find_pin("rX/D"));
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(g.checks()[checks[0]].clock, d.find_pin("rX/CP"));
  EXPECT_GT(g.checks()[checks[0]].setup, 0.0);
}

TEST_F(GraphTest, LaunchArcFromCpToQ) {
  netlist::Design d = gen::paper_circuit(lib);
  TimingGraph g(d);
  const PinId cp = d.find_pin("rA/CP");
  bool found = false;
  for (ArcId aid : g.fanout(cp)) {
    const Arc& arc = g.arc(aid);
    if (arc.kind == ArcKind::kLaunch && arc.to == d.find_pin("rA/Q")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(GraphTest, NetArcsFollowConnectivity) {
  netlist::Design d = gen::paper_circuit(lib);
  TimingGraph g(d);
  // inv1/Z drives two loads: rX/D and and1/A.
  size_t net_arcs = 0;
  for (ArcId aid : g.fanout(d.find_pin("inv1/Z"))) {
    if (g.arc(aid).kind == ArcKind::kNet) ++net_arcs;
  }
  EXPECT_EQ(net_arcs, 2u);
  EXPECT_GT(g.load_on(d.find_pin("inv1/Z")), 0.0);
}

TEST_F(GraphTest, CombinationalLoopIsBroken) {
  netlist::Design d("loop", &lib);
  netlist::Builder b(&d);
  b.input("a");
  // u1 and u2 form a loop: u1.Z -> u2.A, u2.Z -> u1.B.
  b.inst("AND2", "u1", {{"A", "a"}, {"B", "fb"}, {"Z", "n1"}});
  b.inst("AND2", "u2", {{"A", "n1"}, {"B", "a"}, {"Z", "fb"}});
  TimingGraph g(d);
  EXPECT_GE(g.num_loop_breaks(), 1u);
  // Levelization must still cover every pin exactly once.
  EXPECT_EQ(g.topo_order().size(), d.num_pins());
}

TEST_F(GraphTest, IcgClockPinIsNotAStartpoint) {
  netlist::Design d("icg", &lib);
  netlist::Builder b(&d);
  b.input("ck");
  b.input("en");
  b.inst("ICG", "g0", {{"CK", "ck"}, {"EN", "en"}, {"GCLK", "gck"}});
  b.inst("DFF", "r0", {{"D", "en"}, {"CP", "gck"}, {"Q", "q0"}});
  TimingGraph g(d);
  // ICG CK captures the EN check but launches nothing.
  EXPECT_FALSE(g.is_startpoint(d.find_pin("g0/CK")));
  EXPECT_TRUE(g.is_startpoint(d.find_pin("r0/CP")));
  EXPECT_TRUE(g.is_endpoint(d.find_pin("g0/EN")));
}

TEST_F(GraphTest, ScanFlopHasThreeChecks) {
  netlist::Design d("scan", &lib);
  netlist::Builder b(&d);
  b.input("ck");
  b.input("di");
  b.input("si");
  b.input("se");
  b.inst("SDFF", "r0",
         {{"D", "di"}, {"SI", "si"}, {"SE", "se"}, {"CP", "ck"}, {"Q", "q"}});
  TimingGraph g(d);
  EXPECT_TRUE(g.is_endpoint(d.find_pin("r0/D")));
  EXPECT_TRUE(g.is_endpoint(d.find_pin("r0/SI")));
  EXPECT_TRUE(g.is_endpoint(d.find_pin("r0/SE")));
  EXPECT_EQ(g.checks().size(), 3u);
}

}  // namespace
}  // namespace mm::timing
