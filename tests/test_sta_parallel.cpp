// Batched level-parallel STA (timing/sta_batch.h) vs the serial engine:
// lane-for-lane byte parity on the paper's 10-mode example and a 64-mode
// generated family, determinism across thread counts, and levelization edge
// cases (empty graph, single-node levels).

#include <gtest/gtest.h>

#include <memory>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "gen/paper_circuit.h"
#include "merge/equivalence.h"
#include "merge/preliminary.h"
#include "netlist/builder.h"
#include "sdc/parser.h"
#include "timing/delay_calc.h"
#include "timing/sta.h"
#include "timing/sta_batch.h"
#include "util/thread_pool.h"

namespace mm::timing {
namespace {

/// Exact-equality comparison of two relation maps — same keys, and per key
/// byte-identical state sets, slacks, arrivals and worst-capture clock.
/// (Entry iteration order inside the engines differs — push vs pull — but
/// every per-key aggregate is order-independent, so the *content* must be
/// bit-equal, not just close.)
void expect_relations_equal(const RelationMap& serial, const RelationMap& batch,
                            const std::string& what) {
  EXPECT_EQ(serial.size(), batch.size()) << what;
  for (const auto& [key, sdata] : serial) {
    const auto it = batch.find(key);
    ASSERT_NE(it, batch.end()) << what << ": key missing from batched result";
    const RelationData& bdata = it->second;
    EXPECT_EQ(sdata.states, bdata.states) << what;
    EXPECT_EQ(sdata.hold_states, bdata.hold_states) << what;
    EXPECT_EQ(sdata.worst_slack, bdata.worst_slack) << what;
    EXPECT_EQ(sdata.worst_hold_slack, bdata.worst_hold_slack) << what;
    EXPECT_EQ(sdata.worst_arrival, bdata.worst_arrival) << what;
    EXPECT_EQ(sdata.worst_capture, bdata.worst_capture) << what;
  }
}

/// Serial reference propagation of one mode under equivalence-style options.
RelationMap serial_relations(const ModeGraph& mode,
                             const CompiledExceptions& exceptions,
                             const PropagationOptions& opts) {
  Propagator prop(mode, exceptions);
  prop.run(opts);
  return prop.relations();
}

class StaParallelTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();

  /// Per-mode structures + a BatchPropagator lane list for a set of decks.
  struct Batch {
    std::vector<std::unique_ptr<ModeGraph>> mode_graphs;
    std::vector<std::unique_ptr<CompiledExceptions>> exceptions;
    std::vector<StaLane> lanes;
  };

  static Batch make_batch(const TimingGraph& graph,
                          const std::vector<sdc::Sdc>& modes) {
    Batch b;
    for (const sdc::Sdc& sdc : modes) {
      b.mode_graphs.push_back(std::make_unique<ModeGraph>(graph, sdc));
      b.exceptions.push_back(std::make_unique<CompiledExceptions>(graph, sdc));
      b.lanes.push_back({b.mode_graphs.back().get(), b.exceptions.back().get()});
    }
    return b;
  }

  /// The paper's ten constraint sets (§4 example family).
  static std::vector<sdc::Sdc> paper_modes(const netlist::Design& design) {
    namespace cs = gen::constraint_sets;
    std::vector<sdc::Sdc> modes;
    for (const char* text :
         {cs::kSet2ModeA, cs::kSet2ModeB, cs::kSet3ModeA, cs::kSet3ModeB,
          cs::kSet4ModeA, cs::kSet4ModeB, cs::kSet5ModeA, cs::kSet5ModeB,
          cs::kSet6ModeA, cs::kSet6ModeB}) {
      modes.push_back(sdc::parse_sdc(text, design));
    }
    return modes;
  }
};

TEST_F(StaParallelTest, PaperTenModeLaneParity) {
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph(design);
  const std::vector<sdc::Sdc> modes = paper_modes(design);

  for (const bool track_startpoints : {false, true}) {
    PropagationOptions sopts;
    sopts.compute_arrivals = true;
    sopts.analyze_hold = true;
    sopts.track_startpoints = track_startpoints;

    Batch b = make_batch(graph, modes);
    BatchPropagator prop(graph, std::move(b.lanes));
    BatchOptions bopts;
    bopts.compute_arrivals = true;
    bopts.analyze_hold = true;
    bopts.track_startpoints = track_startpoints;
    prop.run(bopts);

    ASSERT_EQ(prop.num_lanes(), modes.size());
    for (size_t m = 0; m < modes.size(); ++m) {
      const RelationMap serial =
          serial_relations(*b.mode_graphs[m], *b.exceptions[m], sopts);
      expect_relations_equal(serial, prop.relations(m),
                             "mode " + std::to_string(m) + " sp=" +
                                 std::to_string(track_startpoints));
    }
    // Sharing must actually happen: the walk carries fewer tag groups than
    // the per-lane tags they represent.
    EXPECT_LT(prop.shared_tag_groups(), prop.lane_tag_total());
  }
}

TEST_F(StaParallelTest, RunStaBatchMatchesRunStaPerMode) {
  // Full-STA config: per-mode delay-calculated arc delays (lanes with
  // different delay vectors), arrivals + hold.
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph(design);
  const std::vector<sdc::Sdc> modes = paper_modes(design);
  std::vector<const sdc::Sdc*> ptrs;
  for (const sdc::Sdc& m : modes) ptrs.push_back(&m);

  const BatchStaResult batch =
      run_sta_batch(graph, ptrs, /*analyze_hold=*/true);
  ASSERT_EQ(batch.per_mode.size(), modes.size());
  for (size_t m = 0; m < modes.size(); ++m) {
    const StaResult serial = run_sta(graph, modes[m], /*analyze_hold=*/true);
    EXPECT_EQ(serial.endpoint_slack, batch.per_mode[m].endpoint_slack)
        << "mode " << m;
    EXPECT_EQ(serial.endpoint_hold_slack, batch.per_mode[m].endpoint_hold_slack)
        << "mode " << m;
    EXPECT_DOUBLE_EQ(serial.wns, batch.per_mode[m].wns) << "mode " << m;
  }

  const StaResult multi = run_sta_multi(graph, ptrs);
  EXPECT_EQ(multi.endpoint_slack, batch.combined.endpoint_slack);

  // SoA lanes mirror the per-lane worst-slack maps.
  EXPECT_EQ(batch.combined.num_endpoints, multi.num_endpoints);
}

TEST_F(StaParallelTest, SoaLanesMatchRelationAggregates) {
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph(design);
  const std::vector<sdc::Sdc> modes = paper_modes(design);

  Batch b = make_batch(graph, modes);
  BatchPropagator prop(graph, std::move(b.lanes));
  BatchOptions bopts;
  bopts.compute_arrivals = true;
  bopts.analyze_hold = true;
  prop.run(bopts);

  const size_t L = prop.num_lanes();
  ASSERT_EQ(prop.slack_lanes().size(), graph.endpoints().size() * L);
  for (size_t l = 0; l < L; ++l) {
    const auto by_ep = prop.worst_slack_by_endpoint(l);
    size_t found = 0;
    for (size_t i = 0; i < graph.endpoints().size(); ++i) {
      const float lane_slack = prop.slack_at(i, l);
      const auto it = by_ep.find(graph.endpoints()[i].value());
      if (it == by_ep.end()) {
        EXPECT_EQ(lane_slack, BatchPropagator::kNoSlack);
      } else {
        EXPECT_EQ(lane_slack, it->second);
        ++found;
      }
    }
    EXPECT_EQ(found, by_ep.size());
  }
}

TEST_F(StaParallelTest, Generated64ModeParity) {
  // 64 generated modes in 4 mergeable groups on a small synthetic design —
  // the scale point the bench gates at (M=64), shrunk for test time.
  gen::DesignParams dp;
  dp.num_regs = 48;
  dp.comb_per_reg = 2;
  netlist::Design design = gen::generate_design(lib, dp);
  TimingGraph graph(design);

  gen::ModeFamilyParams mp;
  mp.num_modes = 64;
  mp.target_groups = 4;
  const std::vector<gen::GeneratedMode> family =
      gen::generate_mode_family(dp, mp);
  ASSERT_EQ(family.size(), 64u);
  std::vector<sdc::Sdc> modes;
  for (const gen::GeneratedMode& g : family) {
    modes.push_back(sdc::parse_sdc(g.sdc_text, design));
  }

  // Equivalence-style options: state sets + hold, no arrivals.
  PropagationOptions sopts;
  sopts.compute_arrivals = false;
  sopts.analyze_hold = true;

  Batch b = make_batch(graph, modes);
  BatchPropagator prop(graph, std::move(b.lanes));
  BatchOptions bopts;
  bopts.compute_arrivals = false;
  bopts.analyze_hold = true;
  prop.run(bopts);

  for (size_t m = 0; m < modes.size(); ++m) {
    const RelationMap serial =
        serial_relations(*b.mode_graphs[m], *b.exceptions[m], sopts);
    expect_relations_equal(serial, prop.relations(m),
                           "generated mode " + std::to_string(m));
  }
  // Generated families carry diverse exceptions (many compatibility
  // classes), so sharing is weaker than the paper clique — but lanes that
  // do agree must still collapse into shared groups.
  EXPECT_LT(prop.shared_tag_groups(), prop.lane_tag_total());
}

TEST_F(StaParallelTest, ResolutionBlocksCollapseIdenticalLanes) {
  // Validation configuration: lanes whose exceptions, exclusivity and
  // endpoint tags all agree must share one physical relation map. Eight
  // copies of one deck + one lane with an extra false path must yield
  // exactly two resolution blocks, with per-lane parity intact.
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph(design);
  namespace cs = gen::constraint_sets;
  std::vector<sdc::Sdc> modes;
  for (int i = 0; i < 8; ++i) {
    modes.push_back(sdc::parse_sdc(cs::kSet2ModeA, design));
  }
  modes.push_back(sdc::parse_sdc(
      std::string(cs::kSet2ModeA) +
          "\nset_false_path -from [get_clocks clkA] -to [get_clocks clkB]\n",
      design));

  PropagationOptions sopts;
  sopts.compute_arrivals = false;
  sopts.analyze_hold = true;

  Batch b = make_batch(graph, modes);
  BatchPropagator prop(graph, std::move(b.lanes));
  BatchOptions bopts;
  bopts.compute_arrivals = false;
  bopts.analyze_hold = true;
  prop.run(bopts);

  EXPECT_EQ(prop.num_resolution_blocks(), 2u);
  for (size_t m = 0; m < modes.size(); ++m) {
    const RelationMap serial =
        serial_relations(*b.mode_graphs[m], *b.exceptions[m], sopts);
    expect_relations_equal(serial, prop.relations(m),
                           "block lane " + std::to_string(m));
  }
  // The identical lanes must alias the same physical map.
  EXPECT_EQ(&prop.relations(0), &prop.relations(7));
  EXPECT_NE(&prop.relations(0), &prop.relations(8));

  // Outside the validation configuration per-lane slack output forces one
  // map per lane — blocks degenerate to lanes.
  Batch b2 = make_batch(graph, modes);
  BatchPropagator full(graph, std::move(b2.lanes));
  BatchOptions fopts;
  fopts.compute_arrivals = true;
  fopts.analyze_hold = true;
  full.run(fopts);
  EXPECT_EQ(full.num_resolution_blocks(), full.num_lanes());
}

TEST_F(StaParallelTest, DeterministicAcrossThreadCounts) {
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph(design);
  const std::vector<sdc::Sdc> modes = paper_modes(design);

  auto run_with_pool = [&](size_t threads) {
    Batch b = make_batch(graph, modes);
    auto prop = std::make_unique<BatchPropagator>(graph, std::move(b.lanes));
    ThreadPool pool(threads);
    BatchOptions bopts;
    bopts.compute_arrivals = true;
    bopts.analyze_hold = true;
    bopts.pool = &pool;
    bopts.min_grain = 1;  // force real fan-out even on tiny levels
    // keep the mode structures alive for the comparison below
    struct Out {
      Batch batch;
      std::unique_ptr<BatchPropagator> prop;
    };
    prop->run(bopts);
    return Out{std::move(b), std::move(prop)};
  };

  const auto t1 = run_with_pool(1);
  const auto t8 = run_with_pool(8);
  ASSERT_EQ(t1.prop->num_lanes(), t8.prop->num_lanes());
  for (size_t m = 0; m < t1.prop->num_lanes(); ++m) {
    expect_relations_equal(t1.prop->relations(m), t8.prop->relations(m),
                           "threads 1 vs 8, mode " + std::to_string(m));
  }
  // The SoA vectors must be byte-identical, not merely equivalent.
  EXPECT_EQ(t1.prop->slack_lanes(), t8.prop->slack_lanes());
  EXPECT_EQ(t1.prop->hold_slack_lanes(), t8.prop->hold_slack_lanes());
  EXPECT_EQ(t1.prop->arrival_lanes(), t8.prop->arrival_lanes());
}

TEST_F(StaParallelTest, EquivalenceBatchedMatchesSerialReference) {
  // The merge-level integration: check_equivalence over the 10-mode paper
  // family must report identical counters batched vs serial, across thread
  // counts.
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph(design);
  const std::vector<sdc::Sdc> modes = paper_modes(design);
  std::vector<const sdc::Sdc*> ptrs;
  for (const sdc::Sdc& m : modes) ptrs.push_back(&m);

  merge::MergeResult base = merge::preliminary_merge(ptrs, {});
  merge::RefineContext ctx(graph, ptrs);

  const merge::EquivalenceReport serial = merge::check_equivalence(
      ctx, *base.merged, base.clock_map, /*startpoint_level=*/false,
      /*num_threads=*/1, /*use_batched_sta=*/false);
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    const merge::EquivalenceReport batched = merge::check_equivalence(
        ctx, *base.merged, base.clock_map, /*startpoint_level=*/false,
        threads, /*use_batched_sta=*/true);
    EXPECT_EQ(serial.keys_compared, batched.keys_compared);
    EXPECT_EQ(serial.matches, batched.matches);
    EXPECT_EQ(serial.optimism_violations, batched.optimism_violations);
    EXPECT_EQ(serial.pessimism_keys, batched.pessimism_keys);
    EXPECT_EQ(serial.state_mismatches, batched.state_mismatches);
  }
}

TEST_F(StaParallelTest, EmptyGraphEdgeCase) {
  // A design with no pins levelizes to zero levels; the batch engine must
  // run and produce empty lanes rather than tripping on the empty walk.
  netlist::Design design("empty", &lib);
  TimingGraph graph(design);
  EXPECT_EQ(graph.num_levels(), 0u);

  const sdc::Sdc sdc = sdc::parse_sdc("", design);
  ModeGraph mode(graph, sdc);
  CompiledExceptions exceptions(graph, sdc);
  BatchPropagator prop(graph, {{&mode, &exceptions}});
  BatchOptions bopts;
  bopts.analyze_hold = true;
  prop.run(bopts);
  EXPECT_TRUE(prop.relations(0).empty());
  EXPECT_EQ(prop.shared_tag_groups(), 0u);
}

TEST_F(StaParallelTest, SingleNodeLevelChain) {
  // A pure buffer chain: every level holds exactly one pin, so each
  // parallel_for batch degenerates to a single node — the walk must still
  // match the serial engine exactly.
  netlist::Design design("chain", &lib);
  netlist::Builder b(&design);
  b.input("in");
  b.inst(netlist::cells::kBuf, "b1", {{"A", "in"}, {"Z", "n1"}});
  b.inst(netlist::cells::kBuf, "b2", {{"A", "n1"}, {"Z", "n2"}});
  b.inst(netlist::cells::kBuf, "b3", {{"A", "n2"}, {"Z", "out"}});
  b.output("out");
  TimingGraph graph(design);
  for (const auto& level : graph.levels()) EXPECT_EQ(level.size(), 1u);

  const sdc::Sdc sdc = sdc::parse_sdc(
      "create_clock -name c -period 10\n"
      "set_input_delay 1 -clock c [get_ports in]\n"
      "set_output_delay 2 -clock c [get_ports out]\n",
      design);
  ModeGraph mode(graph, sdc);
  CompiledExceptions exceptions(graph, sdc);

  PropagationOptions sopts;
  sopts.compute_arrivals = true;
  sopts.analyze_hold = true;
  const RelationMap serial = serial_relations(mode, exceptions, sopts);
  ASSERT_FALSE(serial.empty());

  ThreadPool pool(4);
  BatchPropagator prop(graph, {{&mode, &exceptions}});
  BatchOptions bopts;
  bopts.compute_arrivals = true;
  bopts.analyze_hold = true;
  bopts.pool = &pool;
  bopts.min_grain = 1;
  prop.run(bopts);
  expect_relations_equal(serial, prop.relations(0), "buffer chain");
}

}  // namespace
}  // namespace mm::timing
