// SDC writer round-trip tests: write_sdc output re-parses to an equivalent
// constraint set.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "sdc/writer.h"

namespace mm::sdc {
namespace {

class WriterTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);

  /// Parse, write, re-parse; returns the round-tripped Sdc.
  Sdc round_trip(const std::string& text, std::string* emitted = nullptr) {
    const Sdc first = parse_sdc(text, design);
    const std::string out = write_sdc(first);
    if (emitted) *emitted = out;
    return parse_sdc(out, design);
  }
};

TEST_F(WriterTest, Clocks) {
  const Sdc sdc = round_trip(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 -waveform {5 15} -add "
      "[get_ports clk1]\n"
      "create_clock -name v -period 4\n");
  ASSERT_EQ(sdc.num_clocks(), 3u);
  EXPECT_DOUBLE_EQ(sdc.clock(sdc.find_clock("b")).waveform[0], 5.0);
  EXPECT_TRUE(sdc.clock(sdc.find_clock("b")).add);
  EXPECT_TRUE(sdc.clock(sdc.find_clock("v")).is_virtual());
}

TEST_F(WriterTest, GeneratedClockAndPropagated) {
  const Sdc sdc = round_trip(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_propagated_clock [get_clocks a]\n"
      "create_generated_clock -name g -source [get_ports clk1] -divide_by 2 "
      "[get_pins mux1/Z]\n");
  EXPECT_TRUE(sdc.clock(sdc.find_clock("a")).propagated);
  const Clock& g = sdc.clock(sdc.find_clock("g"));
  EXPECT_TRUE(g.is_generated);
  EXPECT_EQ(g.divide_by, 2);
}

TEST_F(WriterTest, ClockAttributes) {
  const Sdc sdc = round_trip(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_clock_latency -min 0.4 [get_clocks a]\n"
      "set_clock_latency -source -max 0.9 [get_clocks a]\n"
      "set_clock_uncertainty -hold 0.1 [get_clocks a]\n"
      "set_clock_transition -max 0.2 [get_clocks a]\n");
  ASSERT_EQ(sdc.clock_latencies().size(), 2u);
  EXPECT_DOUBLE_EQ(sdc.clock_latencies()[0].value, 0.4);
  EXPECT_TRUE(sdc.clock_latencies()[1].source);
  ASSERT_EQ(sdc.clock_uncertainties().size(), 1u);
  EXPECT_FALSE(sdc.clock_uncertainties()[0].setup_hold.setup);
  ASSERT_EQ(sdc.clock_transitions().size(), 1u);
}

TEST_F(WriterTest, IoDelaysCaseDisables) {
  const Sdc sdc = round_trip(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_input_delay 2 -clock a [get_ports in1]\n"
      "set_output_delay 1 -clock a -add_delay -min [get_ports out1]\n"
      "set_case_analysis 1 sel1\n"
      "set_disable_timing [get_pins and1/A]\n"
      "set_disable_timing [get_cells mux1] -from S -to Z\n");
  ASSERT_EQ(sdc.port_delays().size(), 2u);
  EXPECT_TRUE(sdc.port_delays()[1].add_delay);
  EXPECT_FALSE(sdc.port_delays()[1].minmax.max);
  ASSERT_EQ(sdc.case_analysis().size(), 1u);
  ASSERT_EQ(sdc.disables().size(), 2u);
  EXPECT_NE(sdc.disables()[1].from_lib_pin, UINT32_MAX);
}

TEST_F(WriterTest, Exceptions) {
  std::string emitted;
  const Sdc sdc = round_trip(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "set_false_path -from [get_pins rA/CP] -through [get_pins inv1/Z] "
      "-to [get_pins rX/D]\n"
      "set_multicycle_path 3 -setup -from [get_clocks a] -to [get_pins rY/D]\n"
      "set_max_delay 7 -to [get_pins rZ/D]\n",
      &emitted);
  ASSERT_EQ(sdc.exceptions().size(), 3u);
  EXPECT_EQ(sdc.exceptions()[0].kind, ExceptionKind::kFalsePath);
  EXPECT_EQ(sdc.exceptions()[0].throughs.size(), 1u);
  EXPECT_EQ(sdc.exceptions()[1].kind, ExceptionKind::kMulticyclePath);
  EXPECT_DOUBLE_EQ(sdc.exceptions()[1].value, 3.0);
  EXPECT_EQ(sdc.exceptions()[1].from.clocks.size(), 1u);
  EXPECT_NE(emitted.find("set_multicycle_path 3 -setup"), std::string::npos)
      << emitted;
}

TEST_F(WriterTest, ClockGroupsAndSense) {
  const Sdc sdc = round_trip(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 [get_ports clk2]\n"
      "set_clock_groups -physically_exclusive -name x -group [get_clocks a] "
      "-group [get_clocks b]\n"
      "set_clock_sense -stop_propagation -clock [get_clocks a] "
      "[get_pins mux1/Z]\n");
  EXPECT_TRUE(sdc.clocks_exclusive(ClockId(0u), ClockId(1u)));
  ASSERT_EQ(sdc.clock_sense_stops().size(), 1u);
}

TEST_F(WriterTest, DriveLoad) {
  const Sdc sdc = round_trip(
      "set_input_transition -max 0.25 [get_ports in1]\n"
      "set_drive 2 [get_ports sel1]\n"
      "set_load 3.5 [get_ports out1]\n");
  ASSERT_EQ(sdc.drives().size(), 2u);
  EXPECT_FALSE(sdc.drives()[0].minmax.min);
  ASSERT_EQ(sdc.loads().size(), 1u);
}

TEST_F(WriterTest, DesignRules) {
  const Sdc sdc = round_trip(
      "set_max_transition 0.4\n"
      "set_max_capacitance 1.5 [get_ports out1]\n");
  ASSERT_EQ(sdc.design_rules().size(), 2u);
  EXPECT_DOUBLE_EQ(sdc.design_rules()[0].value, 0.4);
  EXPECT_FALSE(sdc.design_rules()[0].port_pin.valid());
  EXPECT_TRUE(sdc.design_rules()[1].port_pin.valid());
}

TEST_F(WriterTest, MultiPinAnchorUsesListForm) {
  std::string emitted;
  const Sdc sdc = round_trip(
      "set_false_path -through [get_pins {inv1/Z and1/Z}]\n", &emitted);
  ASSERT_EQ(sdc.exceptions().size(), 1u);
  EXPECT_EQ(sdc.exceptions()[0].throughs[0].pins.size(), 2u);
  EXPECT_NE(emitted.find("[list "), std::string::npos) << emitted;
}

}  // namespace
}  // namespace mm::sdc
