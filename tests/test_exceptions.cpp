// Unit tests for exception compilation and matching: anchor
// canonicalization, through progress, precedence, setup/hold sides.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "sdc/parser.h"
#include "timing/exceptions.h"

namespace mm::timing {
namespace {

class ExceptionsTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  TimingGraph graph{design};

  CompiledExceptions compile(const std::string& text) {
    sdc_ = std::make_unique<sdc::Sdc>(sdc::parse_sdc(text, design));
    return CompiledExceptions(graph, *sdc_);
  }

  PinId pin(const char* name) { return design.find_pin(name); }

  /// Walk a path given as pin names and resolve the state.
  PathState walk(const CompiledExceptions& ce,
                 std::initializer_list<const char*> path,
                 sdc::ClockId launch = sdc::ClockId(),
                 sdc::ClockId capture = sdc::ClockId()) {
    auto it = path.begin();
    std::vector<uint8_t> progress = ce.initial_progress(pin(*it), launch);
    PinId last = pin(*it);
    for (++it; it != path.end(); ++it) {
      last = pin(*it);
      if (!progress.empty()) ce.advance(progress, last);
    }
    return ce.resolve(progress, launch, last, capture, /*setup_side=*/true);
  }

  std::unique_ptr<sdc::Sdc> sdc_;
};

TEST_F(ExceptionsTest, PureToIsUntracked) {
  CompiledExceptions ce = compile("set_false_path -to [get_pins rX/D]\n");
  EXPECT_EQ(ce.num_tracked(), 0u);
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}).kind,
            StateKind::kFalsePath);
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "and1/A", "and1/Z",
                      "inv2/A", "inv2/Z", "rY/D"})
                .kind,
            StateKind::kValid);
}

TEST_F(ExceptionsTest, FromPinIsTracked) {
  CompiledExceptions ce = compile("set_false_path -from [get_pins rA/CP]\n");
  EXPECT_EQ(ce.num_tracked(), 1u);
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}).kind,
            StateKind::kFalsePath);
  EXPECT_EQ(walk(ce, {"rB/CP", "rB/Q", "and1/B", "and1/Z", "inv2/A", "inv2/Z",
                      "rY/D"})
                .kind,
            StateKind::kValid);
}

TEST_F(ExceptionsTest, FromQPinCanonicalizesToClockPin) {
  // -from rA/Q means "paths starting at register rA".
  CompiledExceptions ce = compile("set_false_path -from [get_pins rA/Q]\n");
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}).kind,
            StateKind::kFalsePath);
}

TEST_F(ExceptionsTest, ToCpPinCanonicalizesToDataPins) {
  CompiledExceptions ce = compile("set_false_path -to [get_pins rX/CP]\n");
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}).kind,
            StateKind::kFalsePath);
}

TEST_F(ExceptionsTest, ThroughProgressInOrder) {
  CompiledExceptions ce = compile(
      "set_false_path -through [get_pins inv1/Z] -through [get_pins and1/Z]\n");
  // Path through both, in order: matches.
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "and1/A", "and1/Z",
                      "inv2/A", "inv2/Z", "rY/D"})
                .kind,
            StateKind::kFalsePath);
  // Path through only the first: no match.
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}).kind,
            StateKind::kValid);
  // Path through only the second: no match.
  EXPECT_EQ(walk(ce, {"rB/CP", "rB/Q", "and1/B", "and1/Z", "inv2/A", "inv2/Z",
                      "rY/D"})
                .kind,
            StateKind::kValid);
}

TEST_F(ExceptionsTest, FalsePathOverridesMulticycle) {
  // The paper's Constraint Set 1 precedence example.
  CompiledExceptions ce = compile(
      "set_multicycle_path 2 -through [get_pins inv1/Z]\n"
      "set_false_path -through [get_pins and1/Z]\n");
  // Path (ii) matches both: FP wins.
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "and1/A", "and1/Z",
                      "inv2/A", "inv2/Z", "rY/D"})
                .kind,
            StateKind::kFalsePath);
  // Path (i) matches only the MCP.
  const PathState s = walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"});
  EXPECT_EQ(s.kind, StateKind::kMcp);
  EXPECT_FLOAT_EQ(s.value, 2.0f);
}

TEST_F(ExceptionsTest, MaxDelayOverridesMcp) {
  CompiledExceptions ce = compile(
      "set_multicycle_path 2 -to [get_pins rX/D]\n"
      "set_max_delay 3.5 -to [get_pins rX/D]\n");
  const PathState s = walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"});
  EXPECT_EQ(s.kind, StateKind::kMaxDelay);
  EXPECT_FLOAT_EQ(s.value, 3.5f);
}

TEST_F(ExceptionsTest, SpecificityBreaksTies) {
  CompiledExceptions ce = compile(
      "set_multicycle_path 2 -to [get_pins rX/D]\n"
      "set_multicycle_path 4 -from [get_pins rA/CP] -to [get_pins rX/D]\n");
  const PathState s = walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"});
  EXPECT_FLOAT_EQ(s.value, 4.0f);  // -from -to beats -to
}

TEST_F(ExceptionsTest, LaterDefinitionWinsOnEqualSpecificity) {
  CompiledExceptions ce = compile(
      "set_multicycle_path 2 -to [get_pins rX/D]\n"
      "set_multicycle_path 3 -to [get_pins rX/D]\n");
  EXPECT_FLOAT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}).value,
                  3.0f);
}

TEST_F(ExceptionsTest, FromClockMatching) {
  CompiledExceptions ce = compile(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 [get_ports clk2]\n"
      "set_false_path -from [get_clocks a] -to [get_pins rY/D]\n");
  const sdc::ClockId a = sdc_->find_clock("a");
  const sdc::ClockId b = sdc_->find_clock("b");
  EXPECT_EQ(ce.num_tracked(), 0u);  // clock-only from: endpoint-resolvable
  EXPECT_EQ(walk(ce,
                 {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "and1/A", "and1/Z",
                  "inv2/A", "inv2/Z", "rY/D"},
                 a, a)
                .kind,
            StateKind::kFalsePath);
  EXPECT_EQ(walk(ce,
                 {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "and1/A", "and1/Z",
                  "inv2/A", "inv2/Z", "rY/D"},
                 b, b)
                .kind,
            StateKind::kValid);
}

TEST_F(ExceptionsTest, ToClockMatchesCapture) {
  CompiledExceptions ce = compile(
      "create_clock -name a -period 10 [get_ports clk1]\n"
      "create_clock -name b -period 20 [get_ports clk2]\n"
      "set_false_path -to [get_clocks b]\n");
  const sdc::ClockId a = sdc_->find_clock("a");
  const sdc::ClockId b = sdc_->find_clock("b");
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}, a, b).kind,
            StateKind::kFalsePath);
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}, a, a).kind,
            StateKind::kValid);
}

TEST_F(ExceptionsTest, SetupHoldSides) {
  CompiledExceptions ce = compile(
      "set_false_path -setup -to [get_pins rX/D]\n"
      "set_min_delay 1 -to [get_pins rY/D]\n"
      "set_max_delay 9 -to [get_pins rZ/D]\n");
  // -setup FP invisible on hold side.
  std::vector<uint8_t> none;
  EXPECT_EQ(
      ce.resolve(none, sdc::ClockId(), pin("rX/D"), sdc::ClockId(), true).kind,
      StateKind::kFalsePath);
  EXPECT_EQ(
      ce.resolve(none, sdc::ClockId(), pin("rX/D"), sdc::ClockId(), false).kind,
      StateKind::kValid);
  // min_delay applies to hold side only.
  EXPECT_EQ(
      ce.resolve(none, sdc::ClockId(), pin("rY/D"), sdc::ClockId(), true).kind,
      StateKind::kValid);
  EXPECT_EQ(
      ce.resolve(none, sdc::ClockId(), pin("rY/D"), sdc::ClockId(), false).kind,
      StateKind::kMinDelay);
  // max_delay applies to setup side only.
  EXPECT_EQ(
      ce.resolve(none, sdc::ClockId(), pin("rZ/D"), sdc::ClockId(), true).kind,
      StateKind::kMaxDelay);
  EXPECT_EQ(
      ce.resolve(none, sdc::ClockId(), pin("rZ/D"), sdc::ClockId(), false).kind,
      StateKind::kValid);
}

TEST_F(ExceptionsTest, StartpointSatisfiesFirstThrough) {
  CompiledExceptions ce =
      compile("set_false_path -through [get_pins rA/CP] -to [get_pins rX/D]\n");
  EXPECT_EQ(walk(ce, {"rA/CP", "rA/Q", "inv1/A", "inv1/Z", "rX/D"}).kind,
            StateKind::kFalsePath);
  EXPECT_EQ(walk(ce, {"rB/CP", "rB/Q", "and1/B", "and1/Z", "inv2/A", "inv2/Z",
                      "rY/D"})
                .kind,
            StateKind::kValid);
}

}  // namespace
}  // namespace mm::timing
