module tiny_top (ck, d, q);
  input ck, d;
  output q;
  wire q0, n0;
  DFFQ r0 (.D(d), .CK(ck), .Q(q0));
  NAND2 g0 (.A(q0), .B(q0), .Y(n0));
  DFFQ r1 (.D(n0), .CK(ck), .Q(q));
endmodule
