create_clock -name F -period 2 [get_ports ck]
set_false_path -to [get_pins r1/D]
