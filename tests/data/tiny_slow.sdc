create_clock -name S -period 9 [get_ports ck]
set_multicycle_path 2 -setup -to [get_pins r1/D]
