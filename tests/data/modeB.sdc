
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
