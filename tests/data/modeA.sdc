
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
