// MergeSession edge cases: delta-driven commits must stay byte-identical to
// a from-scratch run over the live mode set, while re-checking only dirty
// pairs and re-merging only dirty cliques.

#include <gtest/gtest.h>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "merge/session.h"
#include "obs/metrics.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "util/rng.h"

namespace mm::merge {
namespace {

/// All count-valued MergeStats fields (everything but the wall-clock
/// seconds), for "stats modulo timing" comparisons.
std::vector<size_t> stat_counts(const MergeStats& s) {
  return {s.clocks_union,       s.clocks_deduped,
          s.clocks_renamed,     s.clock_constraints_merged,
          s.clock_constraints_dropped, s.port_delays_union,
          s.case_kept,          s.case_dropped,
          s.disables_kept,      s.disables_dropped,
          s.drive_load_kept,    s.drive_load_dropped,
          s.exclusivity_constraints,   s.exceptions_common,
          s.exceptions_uniquified,     s.exceptions_dropped,
          s.exceptions_kept_pessimistic, s.inferred_disables,
          s.clock_stops_added,  s.data_clock_fps_added,
          s.pass0_pair_fixed,   s.pass1_keys,
          s.pass1_mismatch_fixed, s.pass1_ambiguous,
          s.pass2_keys,         s.pass2_mismatch_fixed,
          s.pass2_ambiguous,    s.pass3_pairs,
          s.pass3_paths_enumerated, s.pass3_fps_added,
          s.unresolved_pessimism};
}

uint64_t counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

class SessionTest : public ::testing::Test {
 protected:
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design = gen::paper_circuit(lib);
  timing::TimingGraph graph{design};

  sdc::Sdc parse(const std::string& text) {
    return sdc::parse_sdc(text, design);
  }

  /// The last commit must match a from-scratch merge_mode_set (fresh
  /// context, same options) over the live modes: clique cover, mergeability
  /// graph + reasons, merged SDC bytes, equivalence verdicts, and
  /// count-valued stats.
  void expect_matches_scratch(MergeSession& session) {
    const MergeSession::CommitResult& r = session.last_commit();
    const std::vector<const Sdc*> live = session.live_modes();
    const MergeOptions options = session.context().options();

    const MergedModeSet scratch = merge_mode_set(graph, live, options);
    ASSERT_EQ(r.cliques, scratch.cliques);
    ASSERT_EQ(r.merged.size(), scratch.merged.size());
    for (size_t i = 0; i < r.merged.size(); ++i) {
      EXPECT_EQ(sdc::write_sdc(*r.merged[i]->merge.merged),
                sdc::write_sdc(*scratch.merged[i].merge.merged))
          << "clique " << i;
      EXPECT_EQ(stat_counts(r.merged[i]->merge.stats),
                stat_counts(scratch.merged[i].merge.stats))
          << "clique " << i;
      const EquivalenceReport& a = r.merged[i]->equivalence;
      const EquivalenceReport& b = scratch.merged[i].equivalence;
      EXPECT_EQ(a.keys_compared, b.keys_compared);
      EXPECT_EQ(a.optimism_violations, b.optimism_violations);
      EXPECT_EQ(a.pessimism_keys, b.pessimism_keys);
      EXPECT_EQ(a.state_mismatches, b.state_mismatches);
    }

    MergeContext ref_ctx(options);
    const MergeabilityGraph ref(live, ref_ctx);
    ASSERT_EQ(session.graph().num_modes(), ref.num_modes());
    for (size_t i = 0; i < ref.num_modes(); ++i) {
      for (size_t j = 0; j < ref.num_modes(); ++j) {
        EXPECT_EQ(session.graph().edge(i, j), ref.edge(i, j));
        EXPECT_EQ(session.graph().reason(i, j), ref.reason(i, j));
      }
    }
  }
};

// A-B mergeable, B-C mergeable, A-C conflict: the greedy cover merges
// {A, B} and leaves {C}. Removing B — the middle of the merged clique —
// must re-partition the cover, not just shrink the clique.
TEST_F(SessionTest, RemoveModeFromMiddleOfClique) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n");
  sdc::Sdc b = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  sdc::Sdc c = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.9 [get_clocks c]\n");

  MergeSession session(graph);
  session.add_mode("a", &a);
  const MergeSession::ModeId id_b = session.add_mode("b", &b);
  session.add_mode("c", &c);

  const MergeSession::CommitResult& first = session.commit();
  ASSERT_EQ(first.cliques.size(), 2u);
  EXPECT_EQ(first.cliques[0], (std::vector<size_t>{0, 1}));
  expect_matches_scratch(session);

  session.remove_mode(id_b);
  const MergeSession::CommitResult& second = session.commit();
  // a and c conflict: two singletons now.
  EXPECT_EQ(second.cliques.size(), 2u);
  EXPECT_EQ(second.pairs_rechecked, 0u);  // removal re-checks nothing
  EXPECT_EQ(second.cliques_reused, 1u);   // the untouched {c} singleton
  EXPECT_EQ(second.cliques_merged, 1u);   // {a} has a new membership key
  expect_matches_scratch(session);
}

TEST_F(SessionTest, ReAddIdenticalModeIsAPureCacheHit) {
  const std::string text_a =
      "create_clock -name c -period 10 [get_ports clk1]\n";
  const std::string text_b =
      "create_clock -name c2 -period 20 [get_ports clk2]\n";
  sdc::Sdc a = parse(text_a), b = parse(text_b), b2 = parse(text_b);

  MergeSession session(graph);
  session.add_mode("a", &a);
  const MergeSession::ModeId id_b = session.add_mode("b", &b);
  const MergeSession::CommitResult& first = session.commit();
  const std::string first_bytes = sdc::write_sdc(*first.merged[0]->merge.merged);

  session.remove_mode(id_b);
  session.commit();

  // Re-adding a byte-identical deck must be a pure relationship-cache hit:
  // zero new extractions, and only the re-added mode's M-1 pairs checked.
  const RelationshipCache::Stats before = session.context().cache().stats();
  const uint64_t rechecked_before = counter("session/pairs_rechecked");
  session.add_mode("b-again", &b2);
  const MergeSession::CommitResult& third = session.commit();
  const RelationshipCache::Stats after = session.context().cache().stats();

  EXPECT_EQ(after.misses, before.misses);  // no re-extraction
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(counter("session/pairs_rechecked") - rechecked_before, 1u);
  EXPECT_EQ(third.pairs_rechecked, 1u);

  ASSERT_EQ(third.cliques, first.cliques);
  EXPECT_EQ(sdc::write_sdc(*third.merged[0]->merge.merged), first_bytes);
  expect_matches_scratch(session);
}

TEST_F(SessionTest, EmptySessionCommit) {
  MergeSession session(graph);
  const MergeSession::CommitResult& r = session.commit();
  EXPECT_EQ(r.num_input_modes, 0u);
  EXPECT_EQ(r.merged.size(), 0u);
  EXPECT_EQ(r.pairs_rechecked, 0u);

  // Draining the session back to empty commits cleanly too.
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  const MergeSession::ModeId id = session.add_mode("a", &a);
  session.commit();
  session.remove_mode(id);
  const MergeSession::CommitResult& drained = session.commit();
  EXPECT_EQ(drained.merged.size(), 0u);
  EXPECT_EQ(session.graph().num_modes(), 0u);
}

TEST_F(SessionTest, UpdateFlipsPairFromMergeableToConflicting) {
  sdc::Sdc a = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n");
  sdc::Sdc b_ok = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  sdc::Sdc b_conflict = parse(
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.9 [get_clocks c]\n");

  MergeSession session(graph);
  session.add_mode("a", &a);
  const MergeSession::ModeId id_b = session.add_mode("b", &b_ok);
  const MergeSession::CommitResult& first = session.commit();
  ASSERT_EQ(first.cliques.size(), 1u);
  const std::string first_bytes =
      sdc::write_sdc(*first.merged[0]->merge.merged);

  session.update_mode(id_b, &b_conflict);
  const MergeSession::CommitResult& second = session.commit();
  EXPECT_EQ(second.pairs_rechecked, 1u);
  EXPECT_EQ(second.cliques.size(), 2u);
  EXPECT_NE(session.graph().reason(0, 1).find("uncertainty"),
            std::string::npos);
  expect_matches_scratch(session);

  // Reverting the edit restores the original single-clique result bytes.
  session.update_mode(id_b, &b_ok);
  const MergeSession::CommitResult& third = session.commit();
  ASSERT_EQ(third.cliques.size(), 1u);
  EXPECT_EQ(sdc::write_sdc(*third.merged[0]->merge.merged), first_bytes);
}

TEST_F(SessionTest, NoDeltaCommitReusesEveryCliqueByPointer) {
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  sdc::Sdc b = parse("create_clock -name c2 -period 20 [get_ports clk2]\n");
  MergeSession session(graph);
  session.add_mode("a", &a);
  session.add_mode("b", &b);

  std::vector<std::shared_ptr<const ValidatedMergeResult>> first =
      session.commit().merged;
  const MergeSession::CommitResult& second = session.commit();
  EXPECT_EQ(second.pairs_rechecked, 0u);
  EXPECT_EQ(second.pairs_skipped_clean, 1u);
  EXPECT_EQ(second.cliques_merged, 0u);
  ASSERT_EQ(second.merged.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second.merged[i].get(), first[i].get())
        << "clique " << i << " was re-merged instead of reused";
    EXPECT_TRUE(second.reused[i]);
  }
}

TEST_F(SessionTest, UpdateInvalidatesOldCacheEntry) {
  sdc::Sdc a = parse("create_clock -name c -period 10 [get_ports clk1]\n");
  sdc::Sdc a2 = parse("create_clock -name c -period 12 [get_ports clk1]\n");
  MergeSession session(graph);
  const MergeSession::ModeId id = session.add_mode("a", &a);
  session.commit();
  EXPECT_EQ(session.context().cache().size(), 1u);

  session.update_mode(id, &a2);  // evicts a's entry, then commit caches a2's
  session.commit();
  EXPECT_EQ(session.context().cache().size(), 1u);
}

// Randomized differential soak: any interleaving of add / remove / update /
// commit must end byte-identical to a from-scratch run on the final set.
// (The heavy version of this property — generated designs, mutated decks,
// 200+ sequences — is fuzz property P5; this keeps a fast in-tree guard.)
TEST_F(SessionTest, RandomizedDeltaSequencesMatchScratch) {
  const std::vector<std::string> pool = {
      "create_clock -name c -period 10 [get_ports clk1]\n",
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.3 [get_clocks c]\n",
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_clock_uncertainty -setup 0.9 [get_clocks c]\n",
      "create_clock -name c2 -period 20 [get_ports clk2]\n",
      "create_clock -name c -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n",
      "create_clock -name c2 -period 20 [get_ports clk2]\n"
      "set_clock_latency -max 1.5 [get_clocks c2]\n",
  };
  std::vector<sdc::Sdc> decks;
  decks.reserve(pool.size());
  for (const std::string& text : pool) decks.push_back(parse(text));

  for (uint64_t seq = 0; seq < 12; ++seq) {
    util::Rng rng(util::Rng::mix(97, seq));
    MergeSession session(graph);
    std::vector<MergeSession::ModeId> live;
    const size_t ops = 6 + rng.below(8);
    for (size_t op = 0; op < ops; ++op) {
      switch (rng.below(4)) {
        case 0:
          live.push_back(session.add_mode(
              "m", &decks[rng.below(decks.size())]));
          break;
        case 1:
          if (!live.empty()) {
            const size_t k = rng.below(live.size());
            session.remove_mode(live[k]);
            live.erase(live.begin() + static_cast<long>(k));
          }
          break;
        case 2:
          if (!live.empty()) {
            session.update_mode(live[rng.below(live.size())],
                                &decks[rng.below(decks.size())]);
          }
          break;
        default:
          session.commit();
          break;
      }
    }
    session.commit();
    expect_matches_scratch(session);
  }
}

}  // namespace
}  // namespace mm::merge
