// Scenario: the §2 equivalence definition as a standalone tool — compare
// two constraint decks by the *effect* they have on the design's timing
// relationships, not by their text. Useful on its own for validating
// hand-written constraint rewrites.
//
// The demo compares three rewrites of the same intent and one subtly
// different deck, at both endpoint and startpoint granularity.

#include <cstdio>

#include "gen/paper_circuit.h"
#include "merge/equivalence.h"
#include "merge/preliminary.h"
#include "sdc/parser.h"

int main() {
  using namespace mm;

  const netlist::Library lib = netlist::Library::builtin();
  const netlist::Design design = gen::paper_circuit(lib);
  const timing::TimingGraph graph(design);

  const char* kReference =
      "create_clock -name clk -period 10 [get_ports clk1]\n"
      "set_false_path -to [get_pins rX/D]\n";

  struct Candidate {
    const char* label;
    const char* text;
  };
  const Candidate candidates[] = {
      {"identical text",
       "create_clock -name clk -period 10 [get_ports clk1]\n"
       "set_false_path -to [get_pins rX/D]\n"},
      {"rewritten on the startpoint side (same effect)",
       "create_clock -name clk -period 10 [get_ports clk1]\n"
       "set_false_path -from [get_pins rA/CP] -through [get_pins inv1/Z] "
       "-to [get_pins rX/D]\n"},
      {"rewritten as a -through (same effect: only rA->inv1 feeds rX)",
       "create_clock -name clk -period 10 [get_ports clk1]\n"
       "set_false_path -through [get_pins inv1/Z] -to [get_pins rX/D]\n"},
      {"subtly different (-through inv1/Z alone also kills rA->rY paths)",
       "create_clock -name clk -period 10 [get_ports clk1]\n"
       "set_false_path -through [get_pins inv1/Z]\n"},
  };

  const sdc::Sdc reference = sdc::parse_sdc(kReference, design);
  merge::MergeResult base = merge::preliminary_merge({&reference}, {});
  merge::RefineContext ctx(graph, {&reference});

  std::printf("reference deck:\n%s\n", kReference);
  for (const Candidate& c : candidates) {
    const sdc::Sdc candidate = sdc::parse_sdc(c.text, design);
    const merge::EquivalenceReport shallow = merge::check_equivalence(
        ctx, candidate, base.clock_map, /*startpoint_level=*/false);
    const merge::EquivalenceReport deep = merge::check_equivalence(
        ctx, candidate, base.clock_map, /*startpoint_level=*/true);

    std::printf("candidate: %s\n", c.label);
    std::printf("  endpoint level : %s (%zu keys, %zu matches)\n",
                shallow.equivalent() ? "EQUIVALENT" : "DIFFERENT",
                shallow.keys_compared, shallow.matches);
    std::printf("  startpoint level: %s", deep.equivalent() ? "EQUIVALENT" : "DIFFERENT");
    if (!deep.equivalent()) {
      std::printf(" (optimism=%zu pessimism=%zu mismatches=%zu)",
                  deep.optimism_violations, deep.pessimism_keys,
                  deep.state_mismatches);
    }
    std::printf("\n");
    for (const std::string& e : deep.examples) {
      std::printf("    %s\n", e.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
