// Quickstart: merge two timing modes of the paper's Figure-1 circuit and
// print the derived, validated superset mode.
//
//   $ ./quickstart
//
// Walks the full public API: build a netlist, parse SDC text into modes,
// build the timing graph, merge, inspect the report, write the merged SDC.

#include <cstdio>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "sdc/parser.h"
#include "sdc/writer.h"

int main() {
  using namespace mm;

  // 1. A cell library and a design. (Real flows would load their own
  //    netlist; the paper's Figure-1 example circuit ships as a fixture.)
  const netlist::Library lib = netlist::Library::builtin();
  const netlist::Design design = gen::paper_circuit(lib);

  // 2. Two timing modes, straight from SDC text (Constraint Set 6 of the
  //    paper — no exception is shared between the two modes).
  const sdc::Sdc mode_a =
      sdc::parse_sdc(gen::constraint_sets::kSet6ModeA, design);
  const sdc::Sdc mode_b =
      sdc::parse_sdc(gen::constraint_sets::kSet6ModeB, design);

  // 3. The timing graph (mode-independent, built once per design).
  const timing::TimingGraph graph(design);

  // 4. Merge. merge_modes runs the whole §3 pipeline: preliminary merging,
  //    clock refinement, data refinement (3-pass), and the two-sided
  //    equivalence validation.
  const merge::ValidatedMergeResult result =
      merge::merge_modes(graph, {&mode_a, &mode_b});

  // 5. Inspect.
  std::printf("%s\n", merge::report_merge(result.merge, result.equivalence).c_str());
  std::printf("=== merged mode SDC ===\n%s",
              sdc::write_sdc(*result.merge.merged).c_str());

  return result.equivalence.signoff_safe() ? 0 : 1;
}
