// Scenario: the bring-your-own-technology flow — load a Liberty cell
// library and a structural Verilog netlist (the same artifacts a synthesis
// tool hands off), parse two mode decks, merge, and print the sign-off
// report plus the merged-mode worst paths.

#include <cstdio>

#include "merge/merger.h"
#include "netlist/liberty.h"
#include "netlist/verilog.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/report.h"

namespace {

const char* kLiberty = R"lib(
library (demo) {
  cell (INVX1) {
    pin (A) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!A";
      timing () { related_pin : "A"; timing_sense : negative_unate;
        cell_rise (t) { values ("0.18"); } } }
  }
  cell (AOI21) {
    pin (A) { direction : input; }
    pin (B) { direction : input; }
    pin (C) { direction : input; }
    pin (Y) { direction : output; function : "!((A * B) + C)";
      timing () { related_pin : "A"; cell_rise (t) { values ("0.35"); } }
      timing () { related_pin : "B"; cell_rise (t) { values ("0.35"); } }
      timing () { related_pin : "C"; cell_rise (t) { values ("0.28"); } } }
  }
  cell (DFFR) {
    ff (IQ, IQN) { clocked_on : "CK"; next_state : "D"; }
    pin (CK) { direction : input; clock : true; }
    pin (D) { direction : input;
      timing () { related_pin : "CK"; timing_type : setup_rising;
        rise_constraint (t) { values ("0.09"); } } }
    pin (Q) { direction : output; function : "IQ";
      timing () { related_pin : "CK"; timing_type : rising_edge;
        cell_rise (t) { values ("0.48"); } } }
  }
}
)lib";

const char* kNetlist = R"(
// two registers with an AOI cone between them
module demo_top (ck, d0, d1, sel, q);
  input ck, d0, d1, sel;
  output q;
  wire q0, q1, n0, n1;
  DFFR r0 (.D(d0), .CK(ck), .Q(q0));
  DFFR r1 (.D(d1), .CK(ck), .Q(q1));
  AOI21 g0 (.A(q0), .B(q1), .C(sel), .Y(n0));
  INVX1 g1 (.A(n0), .Y(n1));
  DFFR r2 (.D(n1), .CK(ck), .Q(q));
endmodule
)";

const char* kModeMission =
    "create_clock -name MCLK -period 1.2 [get_ports ck]\n"
    "set_case_analysis 0 sel\n"
    "set_input_delay 0.2 -clock MCLK [get_ports d0]\n"
    "set_input_delay 0.2 -clock MCLK [get_ports d1]\n";

const char* kModeBypass =
    "create_clock -name BCLK -period 4.8 [get_ports ck]\n"
    "set_case_analysis 1 sel\n"  // C=1 forces the AOI output: cone is dead
    "set_input_delay 0.2 -clock BCLK [get_ports d0]\n"
    "set_input_delay 0.2 -clock BCLK [get_ports d1]\n";

}  // namespace

int main() {
  using namespace mm;

  const netlist::Library lib = netlist::read_liberty(kLiberty);
  std::printf("library: %zu cells\n", lib.num_cells());

  const netlist::Design design = netlist::read_verilog(kNetlist, lib);
  std::printf("design %s: %zu cells, %zu nets\n", design.name().c_str(),
              design.num_instances(), design.num_nets());

  const timing::TimingGraph graph(design);
  const sdc::Sdc mission = sdc::parse_sdc(kModeMission, design);
  const sdc::Sdc bypass = sdc::parse_sdc(kModeBypass, design);

  const merge::ValidatedMergeResult result =
      merge::merge_modes(graph, {&mission, &bypass});
  std::printf("\n%s\n",
              merge::report_merge(result.merge, result.equivalence).c_str());
  std::printf("=== merged SDC ===\n%s\n",
              sdc::write_sdc(*result.merge.merged).c_str());

  std::printf("=== merged mode clocks ===\n%s\n",
              timing::report_clocks(graph, *result.merge.merged).c_str());
  std::printf("=== merged mode worst paths ===\n%s",
              timing::report_timing(graph, *result.merge.merged,
                                    {.max_paths = 2})
                  .c_str());

  return result.equivalence.signoff_safe() ? 0 : 1;
}
