// Scenario: a 12-mode SoC deck (4 mode families x func/scan/test variants)
// reduced with the complete flow — mergeability graph, greedy clique cover,
// one merged superset mode per clique — and the merged SDC decks written to
// disk, the way a sign-off team would consume them.
//
//   $ ./soc_mode_reduction [output_dir]

#include <cstdio>
#include <fstream>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "merge/merger.h"
#include "sdc/parser.h"
#include "sdc/writer.h"

int main(int argc, char** argv) {
  using namespace mm;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const netlist::Library lib = netlist::Library::builtin();
  gen::DesignParams dp;
  dp.name = "soc";
  dp.num_regs = 400;
  dp.num_domains = 4;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  // 12 modes in 4 families (e.g. four voltage/feature configurations, each
  // with functional + scan + test decks).
  gen::ModeFamilyParams mp;
  mp.num_modes = 12;
  mp.target_groups = 4;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const sdc::Sdc*> ptrs;
  std::vector<std::string> names;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    names.push_back(gm.name);
  }
  for (const auto& m : modes) ptrs.push_back(m.get());

  // Mergeability graph (paper Figure 2) — print it before merging.
  merge::MergeabilityGraph mgraph(ptrs, {});
  std::printf("mergeability graph (12 modes):\n");
  for (size_t i = 0; i < ptrs.size(); ++i) {
    std::printf("  %-10s:", names[i].c_str());
    for (size_t j = 0; j < ptrs.size(); ++j) {
      if (i != j && mgraph.edge(i, j)) std::printf(" %s", names[j].c_str());
    }
    std::printf("\n");
  }

  // Full flow.
  const merge::MergedModeSet out = merge::merge_mode_set(graph, ptrs);
  std::printf("\n%zu modes -> %zu merged modes (%.1f%% reduction) in %.2fs\n",
              ptrs.size(), out.num_merged_modes(), out.reduction_percent(),
              out.total_seconds);

  bool safe = true;
  for (size_t c = 0; c < out.merged.size(); ++c) {
    const merge::ValidatedMergeResult& m = out.merged[c];
    std::printf("  merged mode %zu <- {", c);
    for (size_t k = 0; k < out.cliques[c].size(); ++k) {
      std::printf("%s%s", k ? ", " : "", names[out.cliques[c][k]].c_str());
    }
    std::printf("}: %s\n", m.equivalence.signoff_safe()
                               ? (m.equivalence.equivalent() ? "EQUIVALENT"
                                                             : "SIGNOFF-SAFE")
                               : "UNSAFE");
    safe &= m.equivalence.signoff_safe();

    // Emit the merged deck as real SDC.
    const std::string path =
        out_dir + "/merged_mode_" + std::to_string(c) + ".sdc";
    std::ofstream file(path);
    file << "# merged superset mode " << c << " of design " << design.name()
         << "\n"
         << sdc::write_sdc(*m.merge.merged);
    std::printf("    wrote %s\n", path.c_str());
  }
  return safe ? 0 : 1;
}
