// Scenario: merging functional, scan-shift and test-capture modes of an
// SoC-like block — the motivating workload of the paper's introduction
// ("functional, scan, test and so on").
//
// Shows: generated netlist with scan chains + clock gating, three mode
// decks as SDC text, the full merge, and STA before/after with the QoR
// conformity check.

#include <cstdio>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "merge/merger.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/sta.h"
#include "util/timer.h"

int main() {
  using namespace mm;

  const netlist::Library lib = netlist::Library::builtin();

  // An SoC-ish block: 600 scan flops in 3 clock domains, per-domain clock
  // gates, clock muxes that retarget every domain onto the test clock.
  gen::DesignParams dp;
  dp.name = "soc_block";
  dp.num_regs = 600;
  dp.num_domains = 3;
  dp.seed = 42;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);
  std::printf("design: %zu cells, %zu nets, %zu timing endpoints\n",
              design.num_instances(), design.num_nets(),
              graph.endpoints().size());

  // One functional mode, one scan-shift mode, one test-capture mode.
  gen::ModeFamilyParams mp;
  mp.num_modes = 3;
  mp.target_groups = 1;
  mp.seed = 42;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const sdc::Sdc*> ptrs;
  std::vector<std::string> names;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    std::printf("\n--- mode %s ---\n%s", gm.name.c_str(), gm.sdc_text.c_str());
    modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    names.push_back(gm.name);
  }
  for (const auto& m : modes) ptrs.push_back(m.get());

  // Merge the three modes into one superset mode.
  const merge::ValidatedMergeResult result = merge::merge_modes(graph, ptrs);
  std::printf("\n%s\n",
              merge::report_merge(result.merge, result.equivalence).c_str());

  // STA with 3 modes vs 1 merged mode.
  mm::Stopwatch t1;
  const timing::StaResult indiv = timing::run_sta_multi(graph, ptrs);
  const double t_indiv = t1.elapsed_seconds();
  mm::Stopwatch t2;
  const timing::StaResult merged =
      timing::run_sta(graph, *result.merge.merged);
  const double t_merged = t2.elapsed_seconds();

  std::printf("STA: %zu modes in %.3fs vs merged in %.3fs (%.1f%% faster)\n",
              ptrs.size(), t_indiv, t_merged,
              100.0 * (1.0 - t_merged / t_indiv));
  std::printf("endpoints: individual worst-slack map %zu, merged %zu\n",
              indiv.endpoint_slack.size(), merged.endpoint_slack.size());
  std::printf("conformity (1%% of capture period): %.2f%%\n",
              timing::conformity(indiv, merged, graph, *result.merge.merged));

  return result.equivalence.signoff_safe() ? 0 : 1;
}
