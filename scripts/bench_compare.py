#!/usr/bin/env python3
"""Diff mm.bench/1 JSON files against recorded baselines; gate regressions.

Usage: bench_compare.py CURRENT_DIR [--baselines DIR] [--threshold PCT]
                        [--min-ms MS] [--inject-slowdown FRAC]

Every BENCH_*.json under the baseline directory must have a same-named
current file under CURRENT_DIR. Rows are joined by their identity keys
(cells, modes, corners, threads, shards — whichever a row carries), so a
sweep can gain rows (a new thread count, a new corner count) without breaking the
gate: every baseline row must still find its identity twin in the current
run, extra current rows are ignored. Duplicate identities pair up in file
order. Then every wall-time field (any numeric key ending in _ms, at the
top level or per row) is compared.
A field regresses when it is BOTH more than --threshold percent slower
AND more than --min-ms milliseconds slower than the baseline — the
absolute floor keeps sub-millisecond rows from tripping the gate on
scheduler noise. Speedup ratios and non-timing fields are ignored.

--inject-slowdown FRAC multiplies every current timing by (1 + FRAC)
before comparing. It exists to self-test the gate in CI: a run that is
green against its own baseline must turn red at --inject-slowdown 0.20.

Exit status: 0 all within budget, 1 regressions (or missing/mismatched
files), 2 bad usage. Stdlib only.
"""

import argparse
import json
import sys
from pathlib import Path

IDENTITY_KEYS = ("cells", "modes", "corners", "threads", "shards", "window")


def row_identity(row):
    """Hashable identity of a row: the identity keys it carries, in order."""
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def timing_items(obj):
    """Numeric *_ms fields of a JSON object, in insertion order."""
    for key, value in obj.items():
        if key.endswith("_ms") and isinstance(value, (int, float)):
            yield key, float(value)


def row_label(row, index):
    parts = [f"{k}={row[k]}" for k in IDENTITY_KEYS if k in row]
    return " ".join(parts) if parts else f"row[{index}]"


def load_bench(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "mm.bench/1":
        raise ValueError(f"{path}: schema is {doc.get('schema')!r}, "
                         "expected 'mm.bench/1'")
    return doc


def compare_file(base_doc, cur_doc, name, args, table, problems):
    """Append delta rows to `table`; record regressions in `problems`."""
    slow = 1.0 + args.inject_slowdown

    def check(scope, key, base_ms, cur_ms):
        cur_ms *= slow
        delta_ms = cur_ms - base_ms
        pct = (delta_ms / base_ms * 100.0) if base_ms > 0 else 0.0
        bad = (pct > args.threshold and delta_ms > args.min_ms)
        table.append((name, scope, key, base_ms, cur_ms, pct, bad))
        if bad:
            problems.append(
                f"{name} {scope} {key}: {base_ms:.2f} ms -> {cur_ms:.2f} ms "
                f"(+{pct:.1f}% > {args.threshold:.0f}% and "
                f"+{delta_ms:.2f} ms > {args.min_ms:.1f} ms)")

    cur_top = dict(timing_items(cur_doc))
    for key, base_ms in timing_items(base_doc):
        if key not in cur_top:
            problems.append(f"{name}: current run lacks timing field '{key}'")
            continue
        check("(top)", key, base_ms, cur_top[key])

    base_rows = base_doc.get("rows", [])
    cur_rows = cur_doc.get("rows", [])
    # Key-based join: index current rows by identity; duplicate identities
    # queue up and pair with baseline duplicates in file order.
    cur_by_identity = {}
    for row in cur_rows:
        cur_by_identity.setdefault(row_identity(row), []).append(row)
    for i, base_row in enumerate(base_rows):
        candidates = cur_by_identity.get(row_identity(base_row))
        if not candidates:
            problems.append(f"{name}: current run has no row matching "
                            f"{row_label(base_row, i)}")
            continue
        cur_row = candidates.pop(0)
        cur_times = dict(timing_items(cur_row))
        for key, base_ms in timing_items(base_row):
            if key not in cur_times:
                problems.append(f"{name} {row_label(base_row, i)}: "
                                f"current row lacks '{key}'")
                continue
            check(row_label(base_row, i), key, base_ms, cur_times[key])


def main(argv):
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json against recorded baselines")
    parser.add_argument("current_dir", help="directory with BENCH_*.json")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="baseline directory (default bench/baselines)")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="relative regression budget in percent "
                             "(default 15)")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="absolute regression floor in ms (default 5)")
    parser.add_argument("--inject-slowdown", type=float, default=0.0,
                        help="scale current timings by 1+FRAC (gate "
                             "self-test)")
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baselines)
    current_dir = Path(args.current_dir)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_compare: no BENCH_*.json under {baseline_dir}",
              file=sys.stderr)
        return 1

    table = []
    problems = []
    for base_path in baselines:
        cur_path = current_dir / base_path.name
        if not cur_path.is_file():
            problems.append(f"{base_path.name}: no current run at {cur_path}")
            continue
        try:
            base_doc = load_bench(base_path)
            cur_doc = load_bench(cur_path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            problems.append(str(err))
            continue
        compare_file(base_doc, cur_doc, base_path.name, args, table, problems)

    print(f"{'bench':<30} {'row':<22} {'field':<24} "
          f"{'base(ms)':>10} {'cur(ms)':>10} {'delta':>8}")
    print("-" * 110)
    for name, scope, key, base_ms, cur_ms, pct, bad in table:
        short = name.removeprefix("BENCH_").removesuffix(".json")
        mark = "  REGRESSED" if bad else ""
        print(f"{short:<30} {scope:<22} {key:<24} "
              f"{base_ms:>10.2f} {cur_ms:>10.2f} {pct:>+7.1f}%{mark}")

    if problems:
        print(f"\n{len(problems)} problem(s):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"\nall {len(table)} timing(s) within budget "
          f"(threshold {args.threshold:.0f}%, floor {args.min_ms:.1f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
