#!/usr/bin/env python3
"""Byte-compare modemerge output with and without key interning.

Usage: check_intern_parity.py MODEMERGE_BIN NETLIST MODE_SDC... [--out DIR]

Runs the CLI twice on the same netlist + modes — default (interned keys)
and --no-key-intern (string-keyed reference path) — and byte-compares
every merged_*.sdc the two runs produce. Any divergence means the interned
fast path changed observable output. Stdlib only.
"""

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path


def run_merge(binary: str, netlist: str, modes: list[str], out_dir: Path,
              extra_flags: list[str]) -> None:
    cmd = [binary, "--netlist", netlist]
    for mode in modes:
        cmd += ["--mode", mode]
    cmd += ["--out", str(out_dir)] + extra_flags
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"modemerge failed ({proc.returncode}): {' '.join(cmd)}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("binary")
    parser.add_argument("netlist")
    parser.add_argument("modes", nargs="+")
    parser.add_argument("--out", default=None)
    args = parser.parse_args()

    base = Path(args.out) if args.out else Path(tempfile.mkdtemp())
    interned_dir = base / "interned"
    string_dir = base / "string"
    interned_dir.mkdir(parents=True, exist_ok=True)
    string_dir.mkdir(parents=True, exist_ok=True)

    run_merge(args.binary, args.netlist, args.modes, interned_dir, [])
    run_merge(args.binary, args.netlist, args.modes, string_dir,
              ["--no-key-intern"])

    interned = sorted(p.name for p in interned_dir.glob("merged_*.sdc"))
    strings = sorted(p.name for p in string_dir.glob("merged_*.sdc"))
    errors = []
    if not interned:
        errors.append(f"no merged_*.sdc produced in {interned_dir}")
    if interned != strings:
        errors.append(f"file sets differ: {interned} vs {strings}")
    for name in interned:
        if name not in strings:
            continue
        a = (interned_dir / name).read_bytes()
        b = (string_dir / name).read_bytes()
        if a != b:
            errors.append(f"{name}: interned and string outputs differ")
    for e in errors:
        print(e, file=sys.stderr)
    print(
        f"compared {len(interned)} merged SDC file(s): "
        f"{'FAIL' if errors else 'OK (byte-identical)'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
