#!/usr/bin/env python3
"""Fail on public headers that are not self-contained.

Usage: check_headers.py [repo_root] [--cxx COMPILER] [--jobs N]

Compiles every header under src/ standalone (-fsyntax-only, forced C++
mode) so a header that silently leans on its includer's #includes fails
here instead of in the next refactor that reorders includes. Stdlib only.
"""

import argparse
import concurrent.futures
import os
import subprocess
import sys
from pathlib import Path


def check_header(cxx: str, root: Path, header: Path) -> str | None:
    cmd = [
        cxx,
        "-std=c++20",
        "-fsyntax-only",
        "-x", "c++",
        "-I", str(root / "src"),
        str(header),
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return (
            f"{header.relative_to(root)}: not self-contained\n"
            f"{proc.stderr.strip()}"
        )
    return None


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("root", nargs="?", default=".")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"))
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    root = Path(args.root).resolve()
    headers = sorted((root / "src").rglob("*.h"))
    if not headers:
        print(f"no headers found under {root / 'src'}", file=sys.stderr)
        return 1

    errors = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for result in pool.map(
            lambda h: check_header(args.cxx, root, h), headers
        ):
            if result:
                errors.append(result)
    for e in errors:
        print(e, file=sys.stderr)
    print(
        f"checked {len(headers)} header(s) with {args.cxx}: "
        f"{'FAIL' if errors else 'OK'} ({len(errors)} not self-contained)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
