#!/usr/bin/env python3
"""Fail on broken relative links in the top-level markdown docs and docs/*.md.

Usage: check_links.py [repo_root]

Checks every markdown inline link [text](target) whose target is not an
absolute URL or a pure in-page anchor; the target (minus any #fragment or
query) must exist relative to the file containing the link. Stdlib only.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(md: Path, root: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), 1):
        for target in LINK_RE.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0].split("?", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(root)}:{lineno}: broken link "
                    f"'{target}' -> {resolved}"
                )
    return errors


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = [root / name for name in
             ("README.md", "DESIGN.md", "EXPERIMENTS.md")]
    files += sorted((root / "docs").glob("*.md"))
    errors = []
    checked = 0
    for md in files:
        if not md.exists():
            errors.append(f"expected file missing: {md}")
            continue
        checked += 1
        errors.extend(check_file(md, root))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken link(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
