// Ablation A3: tolerance-window sensitivity (§3.1.2). Clock-based
// constraint values are merged when "within a certain tolerance limit";
// this sweep jitters per-mode clock latency/uncertainty values and shows
// how the tolerance setting trades merged-mode count against dropped
// constraints.

#include <cstdio>
#include <sstream>

#include "merge/merger.h"
#include "sdc/parser.h"
#include "workloads.h"

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  gen::DesignParams dp;
  dp.seed = seed;
  dp.num_regs = 300;
  dp.num_domains = 3;
  netlist::Design design = gen::generate_design(lib, dp);
  timing::TimingGraph graph(design);

  // 8 functional modes whose uncertainty values jitter by i*2%: with a
  // tight tolerance every pair conflicts; loosening the window grows the
  // cliques until all 8 merge into one.
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (size_t i = 0; i < 8; ++i) {
    std::ostringstream os;
    os << "create_clock -name CLK0 -period 10 [get_ports clk0]\n"
       << "create_clock -name CLK1 -period 12.5 [get_ports clk1]\n"
       << "set_case_analysis 0 test_mode\nset_case_analysis 0 scan_en\n"
       << "set_case_analysis 1 en0\nset_case_analysis 1 en1\n"
       << "set_case_analysis 1 en2\n"
       << "set_clock_uncertainty -setup " << 0.50 * (1.0 + 0.02 * i)
       << " [get_clocks CLK0]\n"
       << "set_clock_latency -max " << 0.80 * (1.0 + 0.02 * i)
       << " [get_clocks CLK1]\n"
       << "set_input_delay 2 -clock CLK0 [get_ports di_*]\n"
       << "set_output_delay 2 -clock CLK0 [get_ports do_*]\n";
    modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(os.str(), design)));
  }
  for (const auto& m : modes) ptrs.push_back(m.get());

  std::printf("Ablation A3: tolerance window vs merge factor (8 jittered modes)\n");
  std::printf("%12s %10s %12s %14s\n", "tolerance", "merged", "reduction%%",
              "dropped-cstr");
  for (double tol : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    merge::MergeOptions options;
    options.value_tolerance = tol;
    const merge::MergedModeSet out = merge::merge_mode_set(graph, ptrs, options);
    size_t dropped = 0, optimism = 0;
    for (const auto& m : out.merged) {
      dropped += m.merge.stats.clock_constraints_dropped;
      optimism += m.equivalence.optimism_violations;
    }
    std::printf("%12.2f %10zu %12.1f %14zu%s\n", tol, out.num_merged_modes(),
                out.reduction_percent(), dropped,
                optimism ? "  [OPTIMISM!]" : "");
  }
  std::printf("\n(larger windows merge more aggressively; merged values use\n"
              " min-of-min / max-of-max, so the result stays pessimistic-safe.)\n");
  return 0;
}
