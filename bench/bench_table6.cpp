// Reproduces Table 6: overall STA runtime with individual modes vs merged
// modes, and QoR conformity (% of endpoints whose merged-mode worst slack
// deviates by at most 1% of the capture clock period from the worst
// individual-mode slack).

#include <cmath>
#include <cstdio>
#include <fstream>

#include "merge/merger.h"
#include "obs/obs.h"
#include "timing/sta.h"
#include "util/timer.h"
#include "workloads.h"

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  std::printf("Table 6: STA runtime reduction and QoR conformity (scale=%.3g)\n",
              size_scale());
  std::printf("%-7s %12s %12s %8s %8s | %10s %10s\n", "Design", "Indiv(s)",
              "Merged(s)", "Red%%", "Red%%*", "Conform%%", "Conform%%*");
  std::printf("%s\n", std::string(80, '-').c_str());

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("table6");
  json.key("scale").value(size_scale());
  json.key("seed").value(seed);
  json.key("rows").begin_array();

  double sum_red = 0.0, sum_conf = 0.0;
  for (const TableRow& row : table_rows()) {
    Workload w = make_table_workload(lib, row, seed);
    const merge::MergedModeSet out = merge::merge_mode_set(*w.graph, w.mode_ptrs);

    // STA over all individual modes (the paper's baseline flow).
    Stopwatch t_indiv;
    const timing::StaResult indiv = timing::run_sta_multi(*w.graph, w.mode_ptrs);
    const double indiv_seconds = t_indiv.elapsed_seconds();

    // STA over the merged modes only.
    std::vector<const sdc::Sdc*> merged_ptrs;
    for (const auto& m : out.merged) merged_ptrs.push_back(m.merge.merged.get());
    Stopwatch t_merged;
    const timing::StaResult merged = timing::run_sta_multi(*w.graph, merged_ptrs);
    const double merged_seconds = t_merged.elapsed_seconds();

    // Conformity: merged worst slack within 1% of capture period of the
    // individual worst slack, per endpoint (paper's metric).
    size_t conforming = 0, total = 0;
    {
      timing::ModeGraph ref(*w.graph, *merged_ptrs.front());
      for (const auto& [ep, s] : indiv.endpoint_slack) {
        ++total;
        auto it = merged.endpoint_slack.find(ep);
        if (it == merged.endpoint_slack.end()) continue;
        double period = 0.0;
        for (const auto& ca :
             ref.capture_clocks_at(timing::PinId(ep))) {
          const double p = merged_ptrs.front()->clock(ca.clock).period;
          if (period == 0.0 || p < period) period = p;
        }
        if (period == 0.0) period = 10.0;
        if (std::fabs(it->second - s) <= 0.01 * period) ++conforming;
      }
      for (const auto& [ep, s] : merged.endpoint_slack) {
        if (!indiv.endpoint_slack.count(ep)) ++total;
      }
    }
    const double conf = total ? 100.0 * conforming / total : 100.0;
    const double red =
        indiv_seconds > 0 ? 100.0 * (1.0 - merged_seconds / indiv_seconds) : 0;

    sum_red += red;
    sum_conf += conf;
    std::printf("%-7s %12.3f %12.3f %8.1f %8.1f | %10.2f %10.2f\n", row.name,
                indiv_seconds, merged_seconds, red, row.paper_sta_reduction,
                conf, row.paper_conformity);

    json.begin_object();
    json.key("design").value(row.name);
    json.key("cells").value(w.cells);
    json.key("num_modes").value(w.mode_ptrs.size());
    json.key("num_merged").value(out.num_merged_modes());
    json.key("sta_individual_seconds").value(indiv_seconds);
    json.key("sta_merged_seconds").value(merged_seconds);
    json.key("sta_reduction_percent").value(red);
    json.key("sta_reduction_percent_paper").value(row.paper_sta_reduction);
    json.key("conformity_percent").value(conf);
    json.key("conformity_percent_paper").value(row.paper_conformity);
    json.key("endpoints").value(total);
    json.end_object();
  }
  std::printf("%s\n", std::string(80, '-').c_str());
  std::printf("%-7s %12s %12s %8.1f %8.1f | %10.2f %10.2f\n", "Average", "",
              "", sum_red / table_rows().size(), 62.52,
              sum_conf / table_rows().size(), 99.82);
  std::printf("\n(Columns marked * are the paper's reported values.)\n");

  json.end_array();
  json.key("average").begin_object();
  json.key("sta_reduction_percent").value(sum_red / table_rows().size());
  json.key("sta_reduction_percent_paper").value(62.52);
  json.key("conformity_percent").value(sum_conf / table_rows().size());
  json.key("conformity_percent_paper").value(99.82);
  json.end_object();
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_table6.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_table6.json\n");
  return 0;
}
