// Ablation A1: why the 3-pass algorithm exists. The paper (§3.2): "Doing
// this by brute force on each path can be very expensive. The 3-pass
// algorithm addresses this problem by performing comparison on sets of
// timing paths and refining the path selection only if necessary."
//
// Workload: diamond ladders — N stages of reconvergent 2-input gates
// between a launch and a capture register, so the path count is 2^N while
// the graph stays linear in N. The per-mode false paths are resolvable at
// pass-1 (endpoint) granularity, so the 3-pass never descends to path
// enumeration; the brute-force comparator must walk every path.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "merge/merger.h"
#include "netlist/builder.h"
#include "sdc/parser.h"
#include "timing/exceptions.h"
#include "timing/relationships.h"
#include "util/timer.h"

namespace {

using namespace mm;

/// `ladders` diamond ladders of `stages` stages each:
///   rs_l -> (a_i, b_i diamond per stage) -> rt_l
netlist::Design make_diamond_design(const netlist::Library& lib,
                                    size_t ladders, size_t stages) {
  netlist::Design design("diamonds", &lib);
  netlist::Builder b(&design);
  b.input("clk");
  b.input("din");
  for (size_t l = 0; l < ladders; ++l) {
    const std::string p = "l" + std::to_string(l) + "_";
    b.inst("DFF", p + "rs", {{"D", "din"}, {"CP", "clk"}, {"Q", p + "q0"}});
    std::string prev = p + "q0";
    for (size_t s = 0; s < stages; ++s) {
      const std::string sa = p + "a" + std::to_string(s);
      const std::string sb = p + "b" + std::to_string(s);
      const std::string sm = p + "m" + std::to_string(s);
      // Diamond: two parallel gates off `prev`, reconverging in an AND.
      b.inst("INV", sa, {{"A", prev}, {"Z", sa + "_z"}});
      b.inst("BUF", sb, {{"A", prev}, {"Z", sb + "_z"}});
      b.inst("AND2", sm,
             {{"A", sa + "_z"}, {"B", sb + "_z"}, {"Z", sm + "_z"}});
      prev = sm + "_z";
    }
    b.inst("DFF", p + "rt", {{"D", prev}, {"CP", "clk"}, {"Q", p + "qt"}});
  }
  return design;
}

/// Brute-force per-path comparison: enumerate every path to every endpoint
/// and resolve its state against each mode — the paper's strawman.
size_t brute_force(const timing::TimingGraph& graph,
                   const std::vector<const sdc::Sdc*>& modes,
                   const sdc::Sdc& merged, size_t path_cap) {
  std::vector<std::unique_ptr<timing::ModeGraph>> mgs;
  std::vector<std::unique_ptr<timing::CompiledExceptions>> ces;
  for (const sdc::Sdc* m : modes) {
    mgs.push_back(std::make_unique<timing::ModeGraph>(graph, *m));
    ces.push_back(std::make_unique<timing::CompiledExceptions>(graph, *m));
  }
  timing::ModeGraph merged_mg(graph, merged);
  timing::CompiledExceptions merged_ce(graph, merged);

  size_t paths = 0;
  struct Frame {
    timing::PinId pin;
    size_t next = 0;
  };
  for (timing::PinId sp : merged_mg.active_startpoints()) {
    std::vector<Frame> stack{{sp, 0}};
    std::vector<timing::PinId> current{sp};
    while (!stack.empty() && paths < path_cap) {
      Frame& frame = stack.back();
      if (merged_mg.graph().is_endpoint(frame.pin) && stack.size() > 1) {
        ++paths;
        for (size_t m = 0; m < modes.size(); ++m) {
          std::vector<uint8_t> progress =
              ces[m]->initial_progress(sp, sdc::ClockId());
          for (size_t i = 1; i < current.size(); ++i) {
            if (!progress.empty()) ces[m]->advance(progress, current[i]);
          }
          (void)ces[m]->resolve(progress, sdc::ClockId(), frame.pin,
                                sdc::ClockId(), true);
        }
        stack.pop_back();
        current.pop_back();
        continue;
      }
      const auto& outs = graph.fanout(frame.pin);
      bool has_launch = false;
      for (timing::ArcId aid : outs) {
        if (graph.arc(aid).kind == timing::ArcKind::kLaunch) has_launch = true;
      }
      bool descended = false;
      while (frame.next < outs.size()) {
        const timing::ArcId aid = outs[frame.next++];
        if (!merged_mg.arc_enabled(aid)) continue;
        const timing::Arc& arc = graph.arc(aid);
        if (has_launch && arc.kind != timing::ArcKind::kLaunch) continue;
        current.push_back(arc.to);
        stack.push_back({arc.to, 0});
        descended = true;
        break;
      }
      if (!descended) {
        stack.pop_back();
        current.pop_back();
      }
    }
    if (paths >= path_cap) break;
  }
  return paths;
}

}  // namespace

int main() {
  const netlist::Library lib = netlist::Library::builtin();

  std::printf(
      "Ablation A1: 3-pass refinement vs brute-force path comparison\n"
      "(diamond ladders: path count 2^stages, graph size linear)\n");
  std::printf("%8s %10s | %12s | %14s %12s\n", "stages", "paths/lad",
              "3pass(ms)", "bruteforce(ms)", "#paths");

  const size_t ladders = 4;
  const size_t cap = 4'000'000;
  for (size_t stages : {8, 12, 16, 18, 20}) {
    netlist::Design design = make_diamond_design(lib, ladders, stages);
    timing::TimingGraph graph(design);

    // Mode A false-paths each ladder's endpoint; mode B expresses the same
    // thing from the startpoint side. Pass 1 resolves both at set level.
    std::string sdc_a = "create_clock -name c -period 10 [get_ports clk]\n";
    std::string sdc_b = sdc_a;
    for (size_t l = 0; l < ladders; ++l) {
      sdc_a += "set_false_path -to [get_pins l" + std::to_string(l) + "_rt/D]\n";
      sdc_b += "set_false_path -from [get_pins l" + std::to_string(l) + "_rs/CP]\n";
    }
    const sdc::Sdc a = sdc::parse_sdc(sdc_a, design);
    const sdc::Sdc b = sdc::parse_sdc(sdc_b, design);

    merge::MergeOptions options;
    options.validate = false;
    mm::Stopwatch t1;
    const merge::ValidatedMergeResult out =
        merge::merge_modes(graph, {&a, &b}, options);
    const double three_pass_ms = t1.elapsed_ms();

    mm::Stopwatch t2;
    const size_t paths = brute_force(graph, {&a, &b}, *out.merge.merged, cap);
    const double brute_ms = t2.elapsed_ms();

    std::printf("%8zu %10.3g | %12.2f | %14.2f %12zu%s\n", stages,
                std::pow(2.0, static_cast<double>(stages)), three_pass_ms,
                brute_ms, paths, paths >= cap ? " (capped!)" : "");
  }
  std::printf(
      "\n(The 3-pass compares path *sets* per endpoint and only descends on\n"
      " ambiguity: linear in graph size. Brute force walks 2^stages paths.)\n");
  return 0;
}
