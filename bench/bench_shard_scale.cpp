// Hierarchical sharded merging across shard counts (docs/SHARDING.md): a
// 64-mode family on a block-structured design through ShardedMergeSession
// at K in {1, 2, 4, 8}. Per K the bench records
//
//   commit_ms          — add-all + commit wall time (validation off; the
//                        stitch path end to end, best of three),
//   max_block_check_ms — the slowest single block's pair-check phase,
//                        driven directly over the shard-projected views
//                        (the wall time a distributed runner would pay per
//                        block; at K=1 this is the flat pair loop),
//   boundary_check_ms  — the boundary shard's pair loop,
//
// plus the stitch accounting (pairs local / boundary-skipped / descended).
// Every K > 1 must be byte-identical to K=1 on clique cover and merged
// SDC (exit 1 otherwise), and the descended ratio is printed so the
// < 20%-of-pairs acceptance bar is visible in CI logs. Results land in
// BENCH_shard_scale.json (mm.bench/1, gated by scripts/bench_compare.py).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "merge/mergeability.h"
#include "merge/sharded_session.h"
#include "obs/obs.h"
#include "sdc/writer.h"
#include "util/timer.h"
#include "workloads.h"

namespace {

using namespace mm;
using namespace mm::bench;

struct Family {
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<std::string> names;
};

struct RunResult {
  std::vector<std::vector<size_t>> cliques;
  std::vector<std::string> merged_sdc;
  merge::ShardedMergeSession::StitchStats stitch;
  double commit_ms = 0.0;
  double max_block_check_ms = 0.0;
  double boundary_check_ms = 0.0;
  size_t boundary_pins = 0;
  size_t crossing_nets = 0;
};

/// Time the per-block check phase: every mode pair through check_mergeable
/// on one shard's projected views (what a per-block runner executes).
double time_shard_pairs(const merge::ShardedMergeSession& session,
                        const std::vector<const sdc::Sdc*>& ptrs,
                        size_t shard, const merge::MergeOptions& opts) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch timer;
    for (size_t i = 0; i < ptrs.size(); ++i) {
      for (size_t j = i + 1; j < ptrs.size(); ++j) {
        (void)merge::check_mergeable(session.shard_view(ptrs[i], shard),
                                     session.shard_view(ptrs[j], shard),
                                     opts);
      }
    }
    const double ms = timer.elapsed_ms();
    best = rep == 0 ? ms : std::min(best, ms);
  }
  if (std::getenv("MM_SHARD_DEBUG")) {
    std::fprintf(stderr, "  shard %zu: %.3f ms\n", shard, best);
  }
  return best;
}

RunResult run_at(const timing::TimingGraph& graph, const Family& family,
                 size_t num_shards) {
  merge::MergeOptions opt;
  opt.num_shards = num_shards;
  opt.validate = false;

  RunResult out;
  for (int rep = 0; rep < 3; ++rep) {
    merge::ShardedMergeSession session(graph, opt);
    std::vector<const sdc::Sdc*> ptrs;
    Stopwatch timer;
    for (size_t i = 0; i < family.modes.size(); ++i) {
      session.add_mode(family.names[i], family.modes[i].get());
      ptrs.push_back(family.modes[i].get());
    }
    const merge::ShardedMergeSession::CommitResult& r = session.commit();
    const double ms = timer.elapsed_ms();
    out.commit_ms = rep == 0 ? ms : std::min(out.commit_ms, ms);
    if (rep > 0) continue;

    out.cliques = r.cliques;
    for (const auto& m : r.merged) {
      out.merged_sdc.push_back(sdc::write_sdc(*m->merge.merged));
    }
    out.stitch = session.last_stitch();
    out.boundary_pins = session.partition().boundary_pins().size();
    out.crossing_nets = session.partition().num_crossing_nets();

    if (num_shards > 1) {
      for (size_t b = 0; b < session.num_blocks(); ++b) {
        out.max_block_check_ms = std::max(
            out.max_block_check_ms,
            time_shard_pairs(session, ptrs, b,
                             session.block_context(b).options()));
      }
      out.boundary_check_ms = time_shard_pairs(
          session, ptrs, session.num_blocks(), session.context().options());
    } else {
      // K=1 reference: the flat pair loop over the full relationship sets.
      merge::MergeContext& ctx = session.context();
      std::vector<std::shared_ptr<const merge::ModeRelationships>> rels;
      for (const sdc::Sdc* m : ptrs) rels.push_back(ctx.relationships(*m));
      for (int frep = 0; frep < 3; ++frep) {
        Stopwatch flat;
        for (size_t i = 0; i < ptrs.size(); ++i) {
          for (size_t j = i + 1; j < ptrs.size(); ++j) {
            (void)merge::check_mergeable(*rels[i], *rels[j], ctx.options());
          }
        }
        const double ms = flat.elapsed_ms();
        out.max_block_check_ms =
            frep == 0 ? ms : std::min(out.max_block_check_ms, ms);
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();
  const double scale = size_scale();

  gen::DesignParams dp;
  dp.name = "shard_scale";
  dp.num_regs = std::max<size_t>(
      64, static_cast<size_t>(0.2 * 1e6 * scale / 4.0));
  dp.num_domains = 8;  // spread the clock roots over the blocks
  dp.num_blocks = 8;   // block-structured: thin cuts for the partitioner
  dp.seed = seed;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  gen::ModeFamilyParams mp;
  mp.seed = seed;
  mp.num_modes = 64;
  mp.target_groups = 8;
  // Constraint-heavy decks: the pair-check cost must be dominated by
  // relationship volume (clocks, MCPs, false paths spread over the
  // blocks), not per-call overhead, or the K-sweep measures noise.
  mp.group_mcps = 12;
  mp.mode_fps = 32;
  mp.min_max_delays = 12;
  mp.gen_clocks = 6;
  Family family;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    family.modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    family.names.push_back(gm.name);
  }

  std::printf("Sharded merge K-sweep: %zu cells, %zu modes "
              "(scale %.3f, %u hardware thread(s))\n",
              design.num_instances(), family.modes.size(), scale,
              std::thread::hardware_concurrency());
  std::printf("%7s %11s %15s %14s %8s %9s %9s %10s\n", "shards",
              "commit(ms)", "max_block(ms)", "boundary(ms)", "local",
              "bnd-skip", "descend", "desc-ratio");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("shard_scale");
  json.key("scale").value(scale);
  json.key("seed").value(seed);
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  bool ok = true;
  RunResult base;
  for (const size_t k : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunResult r = run_at(graph, family, k);

    bool parity = true;
    if (k == 1) {
      base = r;
    } else {
      parity = r.cliques == base.cliques && r.merged_sdc == base.merged_sdc;
      ok = ok && parity;
    }
    const double ratio =
        r.stitch.pairs_checked > 0
            ? static_cast<double>(r.stitch.pairs_descended) /
                  static_cast<double>(r.stitch.pairs_checked)
            : 0.0;

    std::printf("%7zu %11.2f %15.2f %14.2f %8zu %9zu %9zu %9.1f%%%s\n", k,
                r.commit_ms, r.max_block_check_ms, r.boundary_check_ms,
                r.stitch.pairs_local, r.stitch.boundary_skips,
                r.stitch.pairs_descended, ratio * 100.0,
                parity ? "" : "  PARITY MISMATCH");

    json.begin_object();
    json.key("cells").value(design.num_instances());
    json.key("modes").value(family.modes.size());
    json.key("shards").value(k);
    json.key("commit_ms").value(r.commit_ms);
    json.key("max_block_check_ms").value(r.max_block_check_ms);
    json.key("boundary_check_ms").value(r.boundary_check_ms);
    json.key("cliques").value(r.cliques.size());
    json.key("pairs_checked").value(r.stitch.pairs_checked);
    json.key("pairs_local").value(r.stitch.pairs_local);
    json.key("boundary_skips").value(r.stitch.boundary_skips);
    json.key("pairs_descended").value(r.stitch.pairs_descended);
    json.key("descended_ratio").value(ratio);
    json.key("boundary_pins").value(r.boundary_pins);
    json.key("crossing_nets").value(r.crossing_nets);
    json.key("parity").value(parity);
    json.end_object();
  }
  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();

  std::ofstream("BENCH_shard_scale.json") << json.str() << '\n';
  std::printf("wrote BENCH_shard_scale.json (parity %s)\n",
              ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
