// Mergeability-analysis scaling in mode count M (the pipeline's first
// superlinear wall: O(M^2) pairwise mock merges). Sweeps M ∈ {8,16,32,64}
// and times three configurations per M:
//
//   serial/seed   — 1 thread, relationship cache off (the pre-cache path
//                   that re-derives each mode's relationship set per pair)
//   parallel/cold — all threads, content-addressed cache cleared first
//   parallel/warm — all threads, cache pre-populated by the cold run
//
// Asserts the parallel graph + clique cover identical to the serial one
// and writes BENCH_mergeability_scale.json (mm.bench/1).

#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "merge/mergeability.h"
#include "merge/relationship_cache.h"
#include "obs/obs.h"
#include "sdc/parser.h"
#include "util/timer.h"
#include "workloads.h"

namespace {

bool graphs_identical(const mm::merge::MergeabilityGraph& a,
                      const mm::merge::MergeabilityGraph& b) {
  if (a.num_modes() != b.num_modes()) return false;
  for (size_t i = 0; i < a.num_modes(); ++i) {
    for (size_t j = 0; j < a.num_modes(); ++j) {
      if (a.edge(i, j) != b.edge(i, j)) return false;
      if (a.reason(i, j) != b.reason(i, j)) return false;
    }
  }
  return a.clique_cover() == b.clique_cover();
}

}  // namespace

int main() {
  using namespace mm;
  using namespace mm::bench;

  const netlist::Library lib = netlist::Library::builtin();

  gen::DesignParams dp;
  dp.num_regs = std::max<size_t>(100, static_cast<size_t>(2e5 * size_scale()));
  netlist::Design design = gen::generate_design(lib, dp);

  std::printf("Mergeability analysis at scale (design %zu cells)\n",
              design.num_instances());
  std::printf("(host reports %u hardware thread(s))\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %8s %14s %14s %14s %9s %9s %10s\n", "#modes", "pairs",
              "serial(ms)", "par-cold(ms)", "par-warm(ms)", "spd-cold",
              "spd-warm", "identical");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("mergeability_scale");
  json.key("scale").value(size_scale());
  json.key("cells").value(design.num_instances());
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  bool all_identical = true;
  for (size_t m : {8, 16, 32, 64}) {
    gen::ModeFamilyParams mp;
    mp.num_modes = m;
    mp.target_groups = std::max<size_t>(1, m / 6);
    std::vector<std::unique_ptr<sdc::Sdc>> modes;
    std::vector<const sdc::Sdc*> ptrs;
    for (const auto& gm : gen::generate_mode_family(dp, mp)) {
      modes.push_back(
          std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    }
    for (const auto& mode : modes) ptrs.push_back(mode.get());

    merge::MergeOptions serial_seed;
    serial_seed.num_threads = 1;
    serial_seed.use_relationship_cache = false;
    merge::MergeOptions parallel;  // defaults: all threads, cache on

    Stopwatch timer;
    const merge::MergeabilityGraph reference(ptrs, serial_seed);
    const double serial_ms = timer.elapsed_ms();

    merge::RelationshipCache::global().clear();
    const merge::RelationshipCache::Stats before =
        merge::RelationshipCache::global().stats();
    timer.reset();
    const merge::MergeabilityGraph cold(ptrs, parallel);
    const double cold_ms = timer.elapsed_ms();

    timer.reset();
    const merge::MergeabilityGraph warm(ptrs, parallel);
    const double warm_ms = timer.elapsed_ms();
    const merge::RelationshipCache::Stats after =
        merge::RelationshipCache::global().stats();

    const bool identical =
        graphs_identical(reference, cold) && graphs_identical(reference, warm);
    all_identical = all_identical && identical;
    const size_t pairs = m * (m - 1) / 2;
    std::printf("%8zu %8zu %14.2f %14.2f %14.2f %8.2fx %8.2fx %10s\n", m,
                pairs, serial_ms, cold_ms, warm_ms, serial_ms / cold_ms,
                serial_ms / warm_ms, identical ? "yes" : "NO!");

    json.begin_object();
    json.key("modes").value(m);
    json.key("pairs").value(pairs);
    json.key("cliques").value(reference.clique_cover().size());
    json.key("serial_seed_ms").value(serial_ms);
    json.key("parallel_cold_ms").value(cold_ms);
    json.key("parallel_warm_ms").value(warm_ms);
    json.key("speedup_cold").value(serial_ms / cold_ms);
    json.key("speedup_warm").value(serial_ms / warm_ms);
    json.key("cache_misses").value(after.misses - before.misses);
    json.key("cache_hits").value(after.hits - before.hits);
    json.key("identical").value(identical);
    json.end_object();
  }

  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_mergeability_scale.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_mergeability_scale.json\n");
  if (!all_identical) {
    std::fprintf(stderr, "[DETERMINISM VIOLATION] parallel mergeability "
                         "graph differs from serial\n");
    return 1;
  }
  return 0;
}
