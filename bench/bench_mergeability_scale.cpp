// Mergeability-analysis scaling in mode count M (the pipeline's first
// superlinear wall: O(M^2) pairwise mock merges). Sweeps M ∈
// {8,16,32,64,128} and times two engine paths, each through its own
// MergeContext session:
//
//   string/cold,warm   — string-keyed reference path (use_interned_keys
//                        off); cold = fresh context (empty relationship
//                        cache), warm = rerun on the same context
//   interned/cold,warm — KeyId fast path (default); same cold/warm split
//
// plus, for M ≤ 64, the historical serial/seed reference (1 thread,
// relationship cache off — the path that re-derives each mode's
// relationship set per pair).
//
// Asserts every configuration produces the identical graph + clique cover
// and writes BENCH_mergeability_scale.json (mm.bench/1) with both paths'
// timings per row.

#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "merge/context.h"
#include "merge/mergeability.h"
#include "obs/obs.h"
#include "sdc/parser.h"
#include "util/timer.h"
#include "workloads.h"

namespace {

bool graphs_identical(const mm::merge::MergeabilityGraph& a,
                      const mm::merge::MergeabilityGraph& b) {
  if (a.num_modes() != b.num_modes()) return false;
  for (size_t i = 0; i < a.num_modes(); ++i) {
    for (size_t j = 0; j < a.num_modes(); ++j) {
      if (a.edge(i, j) != b.edge(i, j)) return false;
      if (a.reason(i, j) != b.reason(i, j)) return false;
    }
  }
  return a.clique_cover() == b.clique_cover();
}

struct PathTiming {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
};

/// Cold build in a fresh MergeContext, warm rebuild in the same session.
PathTiming time_path(const std::vector<const mm::sdc::Sdc*>& ptrs,
                     bool interned,
                     const mm::merge::MergeabilityGraph& reference,
                     bool* identical) {
  mm::merge::MergeOptions options;  // all threads, cache on
  options.use_interned_keys = interned;
  mm::merge::MergeContext ctx(options);

  PathTiming t;
  mm::Stopwatch timer;
  const mm::merge::MergeabilityGraph cold(ptrs, ctx);
  t.cold_ms = timer.elapsed_ms();
  timer.reset();
  const mm::merge::MergeabilityGraph warm(ptrs, ctx);
  t.warm_ms = timer.elapsed_ms();
  *identical = *identical && graphs_identical(reference, cold) &&
               graphs_identical(reference, warm);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  gen::DesignParams dp;
  dp.seed = seed;
  dp.num_regs = std::max<size_t>(100, static_cast<size_t>(2e5 * size_scale()));
  netlist::Design design = gen::generate_design(lib, dp);

  std::printf("Mergeability analysis at scale (design %zu cells)\n",
              design.num_instances());
  std::printf("(host reports %u hardware thread(s))\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %8s %12s %10s %10s %10s %10s %9s %10s\n", "#modes",
              "pairs", "serial(ms)", "str-cold", "str-warm", "int-cold",
              "int-warm", "int/str", "identical");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("mergeability_scale");
  json.key("scale").value(size_scale());
  json.key("seed").value(seed);
  json.key("cells").value(design.num_instances());
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  bool all_identical = true;
  for (size_t m : {8, 16, 32, 64, 128}) {
    gen::ModeFamilyParams mp;
    mp.seed = seed;
    mp.num_modes = m;
    mp.target_groups = std::max<size_t>(1, m / 6);
    std::vector<std::unique_ptr<sdc::Sdc>> modes;
    std::vector<const sdc::Sdc*> ptrs;
    for (const auto& gm : gen::generate_mode_family(dp, mp)) {
      modes.push_back(
          std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    }
    for (const auto& mode : modes) ptrs.push_back(mode.get());

    // Reference graph: string path, cold session. Everything else must
    // match it bit for bit.
    merge::MergeOptions string_opts;
    string_opts.use_interned_keys = false;
    merge::MergeContext reference_ctx(string_opts);
    const merge::MergeabilityGraph reference(ptrs, reference_ctx);

    // Historical serial seed path (quadratic re-extraction) — priced out
    // at M = 128, where it would dominate the whole sweep.
    double serial_ms = 0.0;
    const bool run_serial = m <= 64;
    if (run_serial) {
      merge::MergeOptions serial_seed;
      serial_seed.num_threads = 1;
      serial_seed.use_relationship_cache = false;
      serial_seed.use_interned_keys = false;
      Stopwatch timer;
      const merge::MergeabilityGraph serial(ptrs, serial_seed);
      serial_ms = timer.elapsed_ms();
      all_identical = all_identical && graphs_identical(reference, serial);
    }

    bool identical = true;
    const PathTiming str = time_path(ptrs, /*interned=*/false, reference,
                                     &identical);
    const PathTiming intern = time_path(ptrs, /*interned=*/true, reference,
                                        &identical);
    all_identical = all_identical && identical;

    const size_t pairs = m * (m - 1) / 2;
    char serial_buf[32];
    if (run_serial)
      std::snprintf(serial_buf, sizeof serial_buf, "%.2f", serial_ms);
    else
      std::snprintf(serial_buf, sizeof serial_buf, "-");
    std::printf("%8zu %8zu %12s %10.2f %10.2f %10.2f %10.2f %8.2fx %10s\n",
                m, pairs, serial_buf, str.cold_ms, str.warm_ms,
                intern.cold_ms, intern.warm_ms,
                str.warm_ms / intern.warm_ms, identical ? "yes" : "NO!");

    json.begin_object();
    json.key("modes").value(m);
    json.key("pairs").value(pairs);
    json.key("cliques").value(reference.clique_cover().size());
    if (run_serial) json.key("serial_seed_ms").value(serial_ms);
    json.key("string_cold_ms").value(str.cold_ms);
    json.key("string_warm_ms").value(str.warm_ms);
    json.key("interned_cold_ms").value(intern.cold_ms);
    json.key("interned_warm_ms").value(intern.warm_ms);
    json.key("speedup_interned_cold").value(str.cold_ms / intern.cold_ms);
    json.key("speedup_interned_warm").value(str.warm_ms / intern.warm_ms);
    json.key("identical").value(identical);
    json.end_object();
  }

  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_mergeability_scale.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_mergeability_scale.json\n");
  if (!all_identical) {
    std::fprintf(stderr, "[DETERMINISM VIOLATION] mergeability graph "
                         "differs across configurations\n");
    return 1;
  }
  return 0;
}
