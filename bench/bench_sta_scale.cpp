// Batched level-parallel STA vs the serial per-mode reference (the
// tentpole claim of the SoA timing-lane engine): clique validation of an
// M-mode mergeable family must run as ONE levelized graph walk whose work
// scales with distinct tag groups, not with M. Sweeps design size × mode
// count × thread count; every cell asserts byte parity of the per-lane
// relation tables, and each (design, M) additionally runs the full merge
// pipeline both ways (use_batched_sta on/off) asserting byte-identical
// merged SDC output.
//
// Per row:
//   serial  — one timing::Propagator per mode, fanned over the pool
//             (exactly the --no-batched-sta validation path)
//   batched — one BatchPropagator over all M lanes (chunked at
//             kMaxBatchLanes), same pool, equivalence-style options
// Timings are best-of-three; a parity or merged-SDC mismatch fails the
// bench (exit 1). Results land in BENCH_sta_scale.json (mm.bench/1). The
// ≥3x acceptance floor at M=64 is recorded and printed, not asserted, so
// a loaded CI host cannot flake the build.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "merge/merger.h"
#include "obs/obs.h"
#include "sdc/writer.h"
#include "timing/exceptions.h"
#include "timing/mode_graph.h"
#include "timing/relationships.h"
#include "timing/sta_batch.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workloads.h"

namespace {

using namespace mm;
using namespace mm::bench;

/// Exact content equality of two relation maps (same keys; per key
/// bit-identical state sets, slacks, arrivals, worst-capture clock).
bool relations_identical(const timing::RelationMap& a,
                         const timing::RelationMap& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [key, ad] : a) {
    const auto it = b.find(key);
    if (it == b.end()) return false;
    const timing::RelationData& bd = it->second;
    if (!(ad.states == bd.states) || !(ad.hold_states == bd.hold_states) ||
        ad.worst_slack != bd.worst_slack ||
        ad.worst_hold_slack != bd.worst_hold_slack ||
        ad.worst_arrival != bd.worst_arrival ||
        ad.worst_capture != bd.worst_capture) {
      return false;
    }
  }
  return true;
}

/// Per-mode structures shared by both engines (built once, untimed, so the
/// comparison isolates propagation).
struct Prepared {
  std::vector<std::unique_ptr<timing::ModeGraph>> mode_graphs;
  std::vector<std::unique_ptr<timing::CompiledExceptions>> exceptions;
};

Prepared prepare(const timing::TimingGraph& graph,
                 const std::vector<const sdc::Sdc*>& modes) {
  Prepared p;
  for (const sdc::Sdc* m : modes) {
    p.mode_graphs.push_back(std::make_unique<timing::ModeGraph>(graph, *m));
    p.exceptions.push_back(
        std::make_unique<timing::CompiledExceptions>(graph, *m));
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();
  const double scale = size_scale();

  // Equivalence-validation configuration: state sets + hold, no arrivals.
  timing::PropagationOptions sopts;
  sopts.compute_arrivals = false;
  sopts.analyze_hold = true;

  std::printf("Batched clique validation vs serial per-mode STA "
              "(scale %.3f, %u hardware thread(s))\n",
              scale, std::thread::hardware_concurrency());
  std::printf("%10s %8s %8s %7s %11s %12s %9s %9s %8s %7s\n", "cells",
              "levels", "#modes", "threads", "serial(ms)", "batched(ms)",
              "speedup", "groups", "tags", "parity");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("sta_scale");
  json.key("scale").value(scale);
  json.key("seed").value(seed);
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  bool ok = true;
  double m64_speedup = 0.0;
  for (const double paper_mcells : {0.2, 0.8}) {
    gen::DesignParams dp;
    dp.name = "sta_scale";
    dp.comb_per_reg = 3;
    dp.num_regs = std::max<size_t>(
        50, static_cast<size_t>(paper_mcells * 1e6 * scale / 4.0));
    dp.num_domains = 4;
    dp.seed = seed;
    const netlist::Design design = gen::generate_design(lib, dp);
    const timing::TimingGraph graph(design);

    for (const size_t m : {8, 64}) {
      // One mergeable group: the whole family is a single clique of
      // near-identical modes — exactly the validation workload. Per-mode
      // unique false paths are off: their -through variants would give
      // every lane its own tracked-exception class and defeat mask
      // sharing (see docs/STA.md, "exception classes").
      gen::ModeFamilyParams mp;
      mp.seed = seed;
      mp.num_modes = m;
      mp.target_groups = 1;
      mp.mode_fps = 0;
      std::vector<std::unique_ptr<sdc::Sdc>> modes;
      std::vector<const sdc::Sdc*> mode_ptrs;
      for (const auto& gm : gen::generate_mode_family(dp, mp)) {
        modes.push_back(
            std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
        mode_ptrs.push_back(modes.back().get());
      }
      const Prepared prep = prepare(graph, mode_ptrs);

      for (const size_t threads : {size_t{1}, size_t{8}}) {
        ThreadPool pool(threads);

        // Serial reference: one Propagator per mode, fanned over the pool.
        // Parity maps are collected in an extra untimed pass; the timed
        // passes run the engine exactly as the --no-batched-sta validation
        // path does, with no output copying on either side.
        std::vector<timing::RelationMap> serial(m);
        pool.parallel_for(m, [&](size_t i) {
          timing::Propagator prop(*prep.mode_graphs[i], *prep.exceptions[i]);
          prop.run(sopts);
          serial[i] = prop.relations();
        });
        double serial_ms = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
          Stopwatch timer;
          pool.parallel_for(m, [&](size_t i) {
            timing::Propagator prop(*prep.mode_graphs[i], *prep.exceptions[i]);
            prop.run(sopts);
          });
          const double ms = timer.elapsed_ms();
          serial_ms = rep == 0 ? ms : std::min(serial_ms, ms);
        }

        // Batched engine: all M lanes in one levelized walk (chunked at
        // the mask width). Construction is in the timed region — it is
        // part of what a validation pays. Consumers read the relation
        // tables in place, so the parity copies live in the untimed pass.
        std::vector<timing::RelationMap> batched(m);
        size_t tag_groups = 0;
        size_t lane_tags = 0;
        size_t blocks = 0;
        auto run_batched = [&](bool collect) {
          for (size_t first = 0; first < m; first += timing::kMaxBatchLanes) {
            const size_t count =
                std::min(timing::kMaxBatchLanes, m - first);
            std::vector<timing::StaLane> lanes(count);
            for (size_t l = 0; l < count; ++l) {
              lanes[l] = {prep.mode_graphs[first + l].get(),
                          prep.exceptions[first + l].get()};
            }
            timing::BatchPropagator prop(graph, std::move(lanes));
            timing::BatchOptions bopts;
            bopts.compute_arrivals = false;
            bopts.analyze_hold = true;
            bopts.pool = &pool;
            prop.run(bopts);
            if (collect) {
              for (size_t l = 0; l < count; ++l) {
                batched[first + l] = prop.relations(l);
              }
              tag_groups += prop.shared_tag_groups();
              lane_tags += prop.lane_tag_total();
              blocks += prop.num_resolution_blocks();
            }
          }
        };
        run_batched(/*collect=*/true);
        double batched_ms = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
          Stopwatch timer;
          run_batched(/*collect=*/false);
          const double ms = timer.elapsed_ms();
          batched_ms = rep == 0 ? ms : std::min(batched_ms, ms);
        }

        bool parity = true;
        for (size_t i = 0; parity && i < m; ++i) {
          parity = relations_identical(serial[i], batched[i]);
        }
        ok = ok && parity;
        const double speedup = batched_ms > 0 ? serial_ms / batched_ms : 0.0;
        if (m == 64 && threads == 8) m64_speedup = std::max(m64_speedup, speedup);

        std::printf("%10zu %8zu %8zu %7zu %11.2f %12.2f %8.1fx %9zu %8zu %7s\n",
                    design.num_instances(), graph.num_levels(), m, threads,
                    serial_ms, batched_ms, speedup, tag_groups, lane_tags,
                    parity ? "yes" : "NO!");

        json.begin_object();
        json.key("cells").value(design.num_instances());
        json.key("levels").value(graph.num_levels());
        json.key("modes").value(m);
        json.key("threads").value(threads);
        json.key("serial_validate_ms").value(serial_ms);
        json.key("batched_validate_ms").value(batched_ms);
        json.key("speedup").value(speedup);
        json.key("tag_groups").value(tag_groups);
        json.key("lane_tags").value(lane_tags);
        json.key("sharing_factor")
            .value(tag_groups > 0
                       ? static_cast<double>(lane_tags) / tag_groups
                       : 0.0);
        json.key("resolution_blocks").value(blocks);
        json.key("parity").value(parity);

        // End-to-end pipeline parity once per (design, M): merged SDC from
        // the batched validation path must be byte-identical to the serial
        // path's. Folded into the threads=8 row.
        if (threads == 8) {
          merge::MergeOptions mo;
          mo.num_threads = 8;
          mo.use_batched_sta = false;
          const merge::MergedModeSet ser =
              merge::merge_mode_set(graph, mode_ptrs, mo);
          mo.use_batched_sta = true;
          const merge::MergedModeSet bat =
              merge::merge_mode_set(graph, mode_ptrs, mo);
          bool identical = ser.cliques == bat.cliques &&
                           ser.merged.size() == bat.merged.size();
          double ser_validate = 0.0, bat_validate = 0.0;
          for (size_t c = 0; identical && c < ser.merged.size(); ++c) {
            identical = sdc::write_sdc(*ser.merged[c].merge.merged) ==
                        sdc::write_sdc(*bat.merged[c].merge.merged);
          }
          for (const auto& r : ser.merged) {
            ser_validate += r.merge.stats.validate_seconds;
          }
          for (const auto& r : bat.merged) {
            bat_validate += r.merge.stats.validate_seconds;
          }
          ok = ok && identical;
          json.key("merged_sdc_identical").value(identical);
          json.key("pipeline_serial_validate_ms").value(ser_validate * 1e3);
          json.key("pipeline_batched_validate_ms").value(bat_validate * 1e3);
          if (!identical) {
            std::fprintf(stderr,
                         "[STA PARITY VIOLATION] merged SDC differs between "
                         "batched and serial validation (cells=%zu M=%zu)\n",
                         design.num_instances(), m);
          }
        }
        json.end_object();
      }
    }
  }

  json.end_array();
  json.key("m64_speedup").value(m64_speedup);
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_sta_scale.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_sta_scale.json\n");

  if (m64_speedup < 3.0) {
    std::fprintf(stderr,
                 "warning: M=64 batched speedup %.1fx below the 3x target\n",
                 m64_speedup);
  }
  if (!ok) {
    std::fprintf(stderr, "[STA PARITY VIOLATION] batched lanes diverged "
                         "from the serial reference\n");
    return 1;
  }
  return 0;
}
