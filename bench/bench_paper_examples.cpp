// Regenerates the paper's worked-example tables on the Figure-1 circuit:
//   Table 1  — timing relationships under Constraint Set 1,
//   Tables 2-4 — the 3-pass comparison for Constraint Set 6 (the rendered
//                M/X/A verdict tables, pass counters, and the derived
//                CSTR1-CSTR3),
// plus the merged constraint sets for Constraint Sets 3 and 5.

#include <cstdio>

#include "gen/paper_circuit.h"
#include "merge/merger.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include <algorithm>

#include "timing/relationships.h"

namespace {

using namespace mm;
namespace cs = gen::constraint_sets;

void table1(const netlist::Design& design, const timing::TimingGraph& graph) {
  std::printf("=== Table 1: timing relationships (Constraint Set 1) ===\n");
  const sdc::Sdc sdc = sdc::parse_sdc(cs::kSet1, design);
  timing::ModeGraph mode(graph, sdc);
  timing::CompiledExceptions exceptions(graph, sdc);
  timing::Propagator prop(mode, exceptions);
  timing::PropagationOptions opts;
  opts.compute_arrivals = false;
  prop.run(opts);

  std::printf("%-10s %-10s %-8s %-8s %-10s\n", "Start", "End", "Launch",
              "Capture", "State");
  for (const char* ep : {"rX/D", "rY/D", "rZ/D"}) {
    for (const auto& [key, data] : prop.relations()) {
      if (design.pin_name(key.endpoint) != ep) continue;
      std::printf("%-10s %-10s %-8s %-8s %-10s\n", "*", ep,
                  sdc.clock(key.launch).name.c_str(),
                  sdc.clock(key.capture).name.c_str(),
                  data.states.str().c_str());
    }
  }
  std::printf("(paper: rX/D MCP(2), rY/D FP, rZ/D valid)\n\n");
}

/// Relationship map of one constraint set (optionally per startpoint).
timing::RelationMap relations_of(const timing::TimingGraph& graph,
                                 const sdc::Sdc& sdc, bool startpoints) {
  timing::ModeGraph mode(graph, sdc);
  timing::CompiledExceptions exceptions(graph, sdc);
  timing::Propagator prop(mode, exceptions);
  timing::PropagationOptions opts;
  opts.compute_arrivals = false;
  opts.track_startpoints = startpoints;
  prop.run(opts);
  return prop.relations();
}

/// Print a paper-style comparison row: individual state set (union of both
/// modes, as the paper's tables show), merged state set, M/X/A verdict.
void print_comparison(const netlist::Design& design,
                      const timing::RelationMap& rel_a,
                      const timing::RelationMap& rel_b,
                      const timing::RelationMap& rel_m, const sdc::Sdc& sdc) {
  std::printf("%-10s %-10s %-8s %-8s %-12s %-12s %s\n", "Start", "End",
              "Launch", "Capture", "Individual", "Merged", "Result");
  // Deterministic order over merged keys.
  std::vector<const timing::RelationKey*> keys;
  for (const auto& [key, data] : rel_m) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(), [&](const auto* x, const auto* y) {
    return design.pin_name(x->endpoint) < design.pin_name(y->endpoint);
  });
  for (const auto* key : keys) {
    timing::StateSet indiv;
    bool a_full_timed = false, b_full_timed = false;
    if (auto it = rel_a.find(*key); it != rel_a.end()) {
      indiv.merge(it->second.states);
      a_full_timed = it->second.states.any_timed() &&
                     !it->second.states.contains_kind(timing::StateKind::kFalsePath);
    }
    if (auto it = rel_b.find(*key); it != rel_b.end()) {
      indiv.merge(it->second.states);
      b_full_timed = it->second.states.any_timed() &&
                     !it->second.states.contains_kind(timing::StateKind::kFalsePath);
    }
    const timing::StateSet& merged = rel_m.at(*key).states;
    // Verdict in the paper's terms.
    const char* verdict;
    if (!indiv.any_timed() && merged.any_timed()) verdict = "X";
    else if (indiv == merged && merged.singleton()) verdict = "M";
    else if ((a_full_timed || b_full_timed) && merged.singleton() &&
             merged.any_timed()) verdict = "M";
    else verdict = "A";
    std::printf("%-10s %-10s %-8s %-8s %-12s %-12s %s\n",
                key->startpoint.valid()
                    ? std::string(design.pin_name(key->startpoint)).c_str()
                    : "*",
                std::string(design.pin_name(key->endpoint)).c_str(),
                sdc.clock(key->launch).name.c_str(),
                sdc.clock(key->capture).name.c_str(), indiv.str().c_str(),
                merged.str().c_str(), verdict);
  }
}

void tables234(const netlist::Design& design,
               const timing::TimingGraph& graph) {
  std::printf("=== Tables 2-4: 3-pass refinement (Constraint Set 6) ===\n");
  const sdc::Sdc a = sdc::parse_sdc(cs::kSet6ModeA, design);
  const sdc::Sdc b = sdc::parse_sdc(cs::kSet6ModeB, design);

  // Table 2: pass-1 (endpoint-level) comparison of the individual modes
  // against the PRELIMINARY merged mode (no exceptions survive the
  // intersection, so it is just the clock union).
  {
    const sdc::Sdc prelim =
        sdc::parse_sdc("create_clock -name clkA -period 10 [get_ports clk1]\n",
                       design);
    std::printf("\nTable 2 (pass 1, endpoint level):\n");
    print_comparison(design, relations_of(graph, a, false),
                     relations_of(graph, b, false),
                     relations_of(graph, prelim, false), prelim);
    std::printf("\nTable 3 (pass 2, per startpoint):\n");
    print_comparison(design, relations_of(graph, a, true),
                     relations_of(graph, b, true),
                     relations_of(graph, prelim, true), prelim);
    std::printf("\n");
  }
  const merge::ValidatedMergeResult out = merge::merge_modes(graph, {&a, &b});
  const merge::MergeStats& s = out.merge.stats;

  std::printf("pass 1: %zu keys, %zu mismatches fixed, %zu ambiguous endpoints\n",
              s.pass1_keys, s.pass1_mismatch_fixed, s.pass1_ambiguous);
  std::printf("pass 2: %zu keys, %zu mismatches fixed, %zu ambiguous pairs\n",
              s.pass2_keys, s.pass2_mismatch_fixed, s.pass2_ambiguous);
  std::printf("pass 3: %zu pairs, %zu paths enumerated, %zu false paths added\n",
              s.pass3_pairs, s.pass3_paths_enumerated, s.pass3_fps_added);
  std::printf("validation: %s\n",
              out.equivalence.equivalent() ? "EQUIVALENT" : "NOT EQUIVALENT");
  std::printf("derived merged mode (paper CSTR1-CSTR3):\n%s\n",
              sdc::write_sdc(*out.merge.merged).c_str());
}

void merged_mode(const char* title, const char* mode_a, const char* mode_b,
                 const netlist::Design& design,
                 const timing::TimingGraph& graph) {
  std::printf("=== %s ===\n", title);
  const sdc::Sdc a = sdc::parse_sdc(mode_a, design);
  const sdc::Sdc b = sdc::parse_sdc(mode_b, design);
  const merge::ValidatedMergeResult out = merge::merge_modes(graph, {&a, &b});
  std::printf("%s", sdc::write_sdc(*out.merge.merged).c_str());
  std::printf("validation: %s\n\n",
              out.equivalence.signoff_safe() ? "SIGNOFF-SAFE" : "UNSAFE");
}

}  // namespace

int main() {
  const netlist::Library lib = netlist::Library::builtin();
  const netlist::Design design = gen::paper_circuit(lib);
  const timing::TimingGraph graph(design);

  table1(design, graph);
  tables234(design, graph);
  merged_mode("Constraint Set 3 merged mode (clock refinement)", cs::kSet3ModeA,
              cs::kSet3ModeB, design, graph);
  merged_mode("Constraint Set 5 merged mode (data refinement)", cs::kSet5ModeA,
              cs::kSet5ModeB, design, graph);
  return 0;
}
