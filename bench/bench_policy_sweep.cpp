// Windowed merge-policy sweep (docs/POLICIES.md): a near-miss mode family
// (gen/mode_gen.h — carrier gaps alternating around the window boundary)
// merged under MergePolicy::uniform(W) for a ladder of windows, W = 0
// being the exact baseline. Per window the bench records merge wall time,
// QoR wall time (one batched STA per multi-member clique), the clique
// count, and the mm.qor/1 pessimism aggregates.
//
// Acceptance (exit 1 on violation, visible in CI logs):
//   - W = 0 reproduces the exact cover (one clique per mode here);
//   - the family window merges strictly fewer cliques than exact;
//   - clique count is monotone non-increasing in W;
//   - every windowed row is never-optimistic with max pessimism within
//     MergePolicy::pessimism_bound().
//
// Results land in BENCH_policy_sweep.json (mm.bench/1, gated by
// scripts/bench_compare.py; "window" is a row-identity key).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "merge/merger.h"
#include "merge/qor.h"
#include "obs/obs.h"
#include "sdc/parser.h"
#include "util/timer.h"
#include "workloads.h"

namespace {

using namespace mm;
using namespace mm::bench;

struct RunResult {
  double merge_ms = 0.0;
  double qor_ms = 0.0;
  size_t cliques = 0;
  merge::QoRReport qor;
};

RunResult run_at(const timing::TimingGraph& graph,
                 const std::vector<const sdc::Sdc*>& ptrs, double window) {
  merge::MergeOptions opt;
  opt.validate = false;
  if (window > 0.0) opt.policy = merge::MergePolicy::uniform(window);

  RunResult out;
  merge::MergedModeSet merged;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch timer;
    merge::MergedModeSet r = merge::merge_mode_set(graph, ptrs, opt);
    const double ms = timer.elapsed_ms();
    out.merge_ms = rep == 0 ? ms : std::min(out.merge_ms, ms);
    if (rep == 0) merged = std::move(r);
  }
  out.cliques = merged.cliques.size();

  Stopwatch qor_timer;
  out.qor = merge::qor_report(graph, ptrs, merged, opt);
  out.qor_ms = qor_timer.elapsed_ms();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();
  const double scale = size_scale();

  gen::DesignParams dp;
  dp.name = "policy_sweep";
  dp.num_regs =
      std::max<size_t>(60, static_cast<size_t>(0.2 * 1e6 * scale / 4.0));
  dp.num_domains = 2;
  dp.seed = seed;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  // 12 single-mode groups walking the 0.2 boundary: at W = 0.2 the even
  // pairs (gap 0.15) merge and the odd gaps (0.25) hold, halving the cover.
  gen::ModeFamilyParams mp;
  mp.seed = seed;
  mp.num_modes = 12;
  mp.target_groups = 12;
  mp.group_mcps = 3;
  mp.mode_fps = 0;
  mp.near_miss_window = 0.2;
  mp.near_miss_epsilon = 0.05;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    ptrs.push_back(modes.back().get());
  }

  std::printf("Merge-policy window sweep: %zu cells, %zu modes "
              "(scale %.3f, %u hardware thread(s))\n",
              design.num_instances(), ptrs.size(), scale,
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %8s %8s %10s %10s %7s %6s\n", "window", "merge(ms)",
              "qor(ms)", "cliques", "endpoints", "max_pess", "bound", "safe");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("policy_sweep");
  json.key("scale").value(scale);
  json.key("seed").value(seed);
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  bool ok = true;
  size_t exact_cliques = 0;
  size_t family_window_cliques = 0;
  size_t prev_cliques = ptrs.size() + 1;
  for (const double w : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    const RunResult r = run_at(graph, ptrs, w);
    const double bound =
        w > 0.0 ? merge::MergePolicy::uniform(w).pessimism_bound() : 0.0;
    const bool safe =
        r.qor.never_optimistic() &&
        (w == 0.0 || r.qor.max_pessimism <= bound + r.qor.slack_eps);
    if (w == 0.0) exact_cliques = r.cliques;
    if (w == mp.near_miss_window) family_window_cliques = r.cliques;
    ok = ok && safe && r.cliques <= prev_cliques;
    prev_cliques = r.cliques;

    std::printf("%8.2f %10.2f %8.2f %8zu %10zu %10.4f %7.2f %6s\n", w,
                r.merge_ms, r.qor_ms, r.cliques, r.qor.endpoints_compared,
                r.qor.max_pessimism, bound, safe ? "yes" : "NO");

    json.begin_object();
    json.key("cells").value(design.num_instances());
    json.key("modes").value(ptrs.size());
    json.key("window").value(w);
    json.key("merge_ms").value(r.merge_ms);
    json.key("qor_ms").value(r.qor_ms);
    json.key("cliques").value(r.cliques);
    json.key("endpoints_compared").value(r.qor.endpoints_compared);
    json.key("max_pessimism").value(r.qor.max_pessimism);
    json.key("mean_pessimism").value(r.qor.mean_pessimism);
    json.key("pessimism_bound").value(bound);
    json.key("never_optimistic").value(r.qor.never_optimistic());
    json.end_object();
  }
  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();

  // The headline claim: exact finds one clique per mode, the family window
  // strictly fewer.
  if (exact_cliques != ptrs.size()) {
    std::fprintf(stderr, "FAIL: exact cover %zu != %zu modes\n", exact_cliques,
                 ptrs.size());
    ok = false;
  }
  if (family_window_cliques >= exact_cliques) {
    std::fprintf(stderr, "FAIL: window %.2f cover %zu not below exact %zu\n",
                 mp.near_miss_window, family_window_cliques, exact_cliques);
    ok = false;
  }

  std::ofstream("BENCH_policy_sweep.json") << json.str() << '\n';
  std::printf("wrote BENCH_policy_sweep.json (acceptance %s)\n",
              ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
