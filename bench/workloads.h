#pragma once
// Shared workload setup for the table benchmarks: the six synthetic designs
// A-F standing in for the paper's industrial designs (same mode counts and
// planted merged-mode counts as Table 5; sizes scaled by MM_SCALE).
//
// Paper Table 5 rows:
//   design  size(Mcells)  #modes  #merged  %reduction  merge-runtime(s)
//   A       0.2           95      16       83.1        6205
//   B       0.2           3       1        66.6        85
//   C       0.3           12      1        75.0        890
//   D       1.4           3       1        66.6        450
//   E       1.6           5       1        80.0        459
//   F       2.8           3       2        33.3        1424

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "netlist/design.h"
#include "sdc/parser.h"
#include "timing/graph.h"

namespace mm::bench {

struct TableRow {
  const char* name;
  double paper_mcells;
  size_t num_modes;
  size_t target_groups;
  double paper_reduction;     // Table 5
  double paper_merge_runtime; // Table 5 (seconds)
  double paper_sta_reduction; // Table 6 (%)
  double paper_conformity;    // Table 6 (%)
};

inline const std::vector<TableRow>& table_rows() {
  static const std::vector<TableRow> rows = {
      {"A", 0.2, 95, 16, 83.1, 6205, 84.3, 99.89},
      {"B", 0.2, 3, 1, 66.6, 85, 58.7, 100.00},
      // The paper's row C prints "1" merged mode but reports 75.0%
      // reduction, which implies 3 (12 -> 3); we follow the reduction
      // figure, which is consistent with the table's average of 67.5%.
      {"C", 0.3, 12, 3, 75.0, 890, 51.5, 99.91},
      {"D", 1.4, 3, 1, 66.6, 450, 58.2, 99.18},
      {"E", 1.6, 5, 1, 80.0, 459, 61.1, 99.93},
      {"F", 2.8, 3, 2, 33.3, 1424, 61.3, 100.00},
  };
  return rows;
}

/// Size scale relative to the paper's cell counts (default 1/100, override
/// with the MM_SCALE environment variable, e.g. MM_SCALE=0.05).
inline double size_scale() {
  if (const char* s = std::getenv("MM_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.01;
}

/// Parse `--seed <u64>` from a bench's command line (default 1) and print
/// the effective seed, so every bench run states how to reproduce its
/// workloads. Exits 2 on a malformed value or unknown option.
inline uint64_t bench_seed(int argc, char** argv) {
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' ||
          std::strchr(argv[i], '-') != nullptr) {
        std::fprintf(stderr, "%s: invalid --seed '%s'\n", argv[0], argv[i]);
        std::exit(2);
      }
      seed = static_cast<uint64_t>(v);
    } else {
      std::fprintf(stderr, "usage: %s [--seed N]\n", argv[0]);
      std::exit(2);
    }
  }
  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
  return seed;
}

struct Workload {
  std::unique_ptr<netlist::Design> design;
  std::unique_ptr<timing::TimingGraph> graph;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const sdc::Sdc*> mode_ptrs;
  std::vector<std::string> mode_names;
  size_t cells = 0;
};

/// Build one Table-5 design + mode family at the current scale.
inline Workload make_table_workload(const netlist::Library& lib,
                                    const TableRow& row, uint64_t seed = 1) {
  Workload w;
  gen::DesignParams dp;
  dp.name = std::string("design_") + row.name;
  const double cells = row.paper_mcells * 1e6 * size_scale();
  dp.comb_per_reg = 3;
  dp.num_regs = std::max<size_t>(50, static_cast<size_t>(cells / 4.0));
  dp.num_domains = 4;
  dp.seed = seed;
  w.design = std::make_unique<netlist::Design>(gen::generate_design(lib, dp));
  w.graph = std::make_unique<timing::TimingGraph>(*w.design);
  w.cells = w.design->num_instances();

  gen::ModeFamilyParams mp;
  mp.num_modes = row.num_modes;
  mp.target_groups = row.target_groups;
  mp.seed = seed;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    w.modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, *w.design)));
    w.mode_names.push_back(gm.name);
  }
  for (const auto& m : w.modes) w.mode_ptrs.push_back(m.get());
  return w;
}

}  // namespace mm::bench
