// Incremental MergeSession vs from-scratch rebuild (the tentpole claim of
// the delta-driven engine): after a single-mode edit at M ∈ {16,64,128},
// commit() must re-check at most M-1 pairs (obs `session/pairs_rechecked`)
// and re-merge only the dirty cliques, while a batch user pays the full
// O(M^2) pair sweep plus every clique's merge/refine/validate again.
//
// Per row: cold commit over an M-mode generated family, then one
// deterministic SDC-text perturbation (the fuzz harness's mutator, retried
// until the mutant parses) applied to the middle mode via update_mode, then
//   incremental — session.commit() after the edit
//   scratch     — merge_mode_set over the same final decks, fresh context
// The two outputs are asserted byte-identical (clique cover + merged SDC
// per clique); a mismatch or a pairs_rechecked count above M-1 fails the
// bench (exit 1). Timings and the speedup land in BENCH_incremental.json
// (mm.bench/1). The ≥5x acceptance floor at M=128 is recorded in the JSON
// and printed, not asserted, so a loaded CI host cannot flake the build.

#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "fuzz/fuzz.h"
#include "merge/merger.h"
#include "merge/session.h"
#include "obs/obs.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workloads.h"

namespace {

uint64_t pairs_rechecked_counter() {
  return mm::obs::MetricsRegistry::global()
      .counter("session/pairs_rechecked")
      .value();
}

/// Deterministically mutate `text` until the mutant parses and differs
/// from the original (the fuzz mutator can no-op or break the SDC; both
/// retry with the next stream).
std::string perturb_parsable(const std::string& text,
                             const mm::netlist::Design& design,
                             uint64_t seed) {
  for (uint64_t attempt = 0; attempt < 64; ++attempt) {
    mm::util::Rng rng(mm::util::Rng::mix(seed, 0xbe0c + attempt));
    const std::string mutant = mm::fuzz::mutate_sdc_text(text, rng);
    if (mutant == text) continue;
    try {
      (void)mm::sdc::parse_sdc(mutant, design);
      return mutant;
    } catch (const mm::Error&) {
      continue;
    }
  }
  std::fprintf(stderr, "could not derive a parsable mutant in 64 tries\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  // A modest fixed-size design: the point is the delta-vs-batch ratio in
  // mode count, not absolute cell-count scaling (bench_mergeability_scale
  // owns that axis).
  gen::DesignParams dp;
  dp.seed = seed;
  dp.num_regs = 80;
  netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  std::printf("Incremental commit vs from-scratch rebuild (design %zu "
              "cells, %u hardware thread(s))\n",
              design.num_instances(), std::thread::hardware_concurrency());
  std::printf("%8s %10s %12s %10s %12s %10s %9s %10s\n", "#modes",
              "cold(ms)", "re-checked", "reused", "incr(ms)", "scratch",
              "speedup", "identical");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("incremental");
  json.key("seed").value(seed);
  json.key("cells").value(design.num_instances());
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  bool ok = true;
  for (size_t m : {16, 64, 128}) {
    gen::ModeFamilyParams mp;
    mp.seed = seed;
    mp.num_modes = m;
    mp.target_groups = std::max<size_t>(1, m / 6);
    std::vector<std::unique_ptr<sdc::Sdc>> modes;
    std::vector<gen::GeneratedMode> family = gen::generate_mode_family(dp, mp);
    for (const auto& gm : family) {
      modes.push_back(
          std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    }

    merge::MergeOptions options;
    merge::MergeSession session(graph, options);
    std::vector<merge::MergeSession::ModeId> ids;
    for (size_t i = 0; i < modes.size(); ++i) {
      ids.push_back(session.add_mode(family[i].name, modes[i].get()));
    }

    Stopwatch timer;
    session.commit();
    const double cold_ms = timer.elapsed_ms();

    // One mode edited in place: the middle one, so it sits inside an
    // established clique rather than at the family's boundary.
    const size_t victim = m / 2;
    const sdc::Sdc perturbed = sdc::parse_sdc(
        perturb_parsable(family[victim].sdc_text, design, seed), design);
    const uint64_t rechecked_before = pairs_rechecked_counter();
    session.update_mode(ids[victim], &perturbed);
    timer.reset();
    const merge::MergeSession::CommitResult& incr = session.commit();
    const double incr_ms = timer.elapsed_ms();
    const uint64_t rechecked = pairs_rechecked_counter() - rechecked_before;

    // What a batch user pays for the same edit: full rebuild, fresh
    // context (cold caches), same final decks.
    const std::vector<const sdc::Sdc*> final_modes = session.live_modes();
    timer.reset();
    const merge::MergedModeSet scratch =
        merge::merge_mode_set(graph, final_modes, options);
    const double scratch_ms = timer.elapsed_ms();

    bool identical = incr.cliques == scratch.cliques &&
                     incr.merged.size() == scratch.merged.size();
    for (size_t c = 0; identical && c < scratch.merged.size(); ++c) {
      identical = sdc::write_sdc(*incr.merged[c]->merge.merged) ==
                  sdc::write_sdc(*scratch.merged[c].merge.merged);
    }
    const bool bounded = rechecked <= m - 1;
    const double speedup = incr_ms > 0 ? scratch_ms / incr_ms : 0.0;
    ok = ok && identical && bounded;

    std::printf("%8zu %10.2f %12llu %10zu %12.2f %10.2f %8.1fx %10s\n", m,
                cold_ms, static_cast<unsigned long long>(rechecked),
                incr.cliques_reused, incr_ms, scratch_ms, speedup,
                identical ? (bounded ? "yes" : "UNBOUNDED") : "NO!");

    json.begin_object();
    json.key("modes").value(m);
    json.key("pairs_total").value(m * (m - 1) / 2);
    json.key("cliques").value(incr.cliques.size());
    json.key("cold_commit_ms").value(cold_ms);
    json.key("pairs_rechecked").value(rechecked);
    json.key("pairs_rechecked_bounded").value(bounded);
    json.key("cliques_reused").value(incr.cliques_reused);
    json.key("cliques_merged").value(incr.cliques_merged);
    json.key("incremental_commit_ms").value(incr_ms);
    json.key("scratch_rebuild_ms").value(scratch_ms);
    json.key("speedup").value(speedup);
    json.key("identical").value(identical);
    json.end_object();

    if (m == 128 && speedup < 5.0) {
      std::fprintf(stderr,
                   "warning: M=128 speedup %.1fx below the 5x target\n",
                   speedup);
    }
  }

  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_incremental.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_incremental.json\n");
  if (!ok) {
    std::fprintf(stderr, "[INCREMENTAL PARITY VIOLATION] delta commit "
                         "diverged from the batch rebuild\n");
    return 1;
  }
  return 0;
}
