// Ablation A5: merge factor. The paper's abstract calls high-merge-factor
// merging "very complex"; this sweep quantifies it: merging N modes into
// one superset mode on a fixed design, for N = 2..16, reporting merge
// runtime (it grows with N — more per-mode propagations, more constraints
// to reconcile) against the STA savings it buys.

#include <cstdio>

#include "merge/merger.h"
#include "timing/sta.h"
#include "util/timer.h"
#include "workloads.h"

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  gen::DesignParams dp;
  dp.seed = seed;
  dp.num_regs = 800;
  dp.num_domains = 4;
  netlist::Design design = gen::generate_design(lib, dp);
  timing::TimingGraph graph(design);

  std::printf("Ablation A5: merge factor sweep (%zu cells)\n",
              design.num_instances());
  std::printf("%8s | %12s %10s | %12s %12s %8s | %10s\n", "#modes",
              "merge(ms)", "exc-out", "staN(ms)", "sta1(ms)", "red%%",
              "verdict");

  for (size_t n : {2, 4, 8, 12, 16}) {
    gen::ModeFamilyParams mp;
    mp.num_modes = n;
    mp.target_groups = 1;
    mp.seed = 11 * seed;
    std::vector<std::unique_ptr<sdc::Sdc>> modes;
    std::vector<const sdc::Sdc*> ptrs;
    for (const auto& gm : gen::generate_mode_family(dp, mp)) {
      modes.push_back(
          std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    }
    for (const auto& m : modes) ptrs.push_back(m.get());

    Stopwatch t_merge;
    const merge::ValidatedMergeResult out = merge::merge_modes(graph, ptrs);
    const double merge_ms = t_merge.elapsed_ms();

    Stopwatch t_n;
    (void)timing::run_sta_multi(graph, ptrs);
    const double sta_n = t_n.elapsed_ms();
    Stopwatch t_1;
    (void)timing::run_sta(graph, *out.merge.merged);
    const double sta_1 = t_1.elapsed_ms();

    std::printf("%8zu | %12.1f %10zu | %12.1f %12.1f %8.1f | %10s\n", n,
                merge_ms, out.merge.merged->exceptions().size(), sta_n, sta_1,
                100.0 * (1.0 - sta_1 / sta_n),
                out.equivalence.signoff_safe()
                    ? (out.equivalence.equivalent() ? "EQUIV" : "SAFE")
                    : "UNSAFE!");
  }
  std::printf(
      "\n(One-time merge cost grows with the merge factor; the per-ECO-cycle\n"
      " STA saving grows with it too — the paper's trade-off, §4.)\n");
  return 0;
}
