// Reproduces Table 5: mode reduction and merging runtime on designs A-F.
//
// Paper's designs are industrial and proprietary; ours are synthetic
// stand-ins with identical mode-family structure (see DESIGN.md). Mode
// counts and merged-mode counts match the paper exactly (they are
// determined by the mode structure); absolute runtimes differ because the
// substrate and scale differ — the paper's column is printed alongside.
//
// Usage: bench_table5 [MM_SCALE=0.01 in env scales design size]

#include <cstdio>
#include <fstream>

#include "merge/merger.h"
#include "obs/obs.h"
#include "util/timer.h"
#include "workloads.h"

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  std::printf("Table 5: mode reduction and merging runtime (scale=%.3g)\n",
              size_scale());
  std::printf(
      "%-7s %10s %8s %8s %8s | %8s %8s | %12s %12s\n", "Design", "Cells",
      "#Modes", "Merged", "Merged*", "Red%%", "Red%%*", "Merge(s)", "Paper(s)");
  std::printf("%s\n", std::string(96, '-').c_str());

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("table5");
  json.key("scale").value(size_scale());
  json.key("seed").value(seed);
  json.key("rows").begin_array();

  double sum_red = 0.0, sum_red_paper = 0.0;
  for (const TableRow& row : table_rows()) {
    Workload w = make_table_workload(lib, row, seed);

    Stopwatch timer;
    const merge::MergedModeSet out = merge::merge_mode_set(*w.graph, w.mode_ptrs);
    const double seconds = timer.elapsed_seconds();

    // Sign-off safety is non-negotiable for every merged mode.
    size_t optimism = 0;
    for (const auto& m : out.merged) {
      optimism += m.equivalence.optimism_violations;
    }

    sum_red += out.reduction_percent();
    sum_red_paper += row.paper_reduction;
    const size_t paper_merged =
        row.num_modes -
        static_cast<size_t>(row.num_modes * row.paper_reduction / 100.0 + 0.5);
    std::printf("%-7s %10zu %8zu %8zu %8zu | %8.1f %8.1f | %12.2f %12.0f%s\n",
                row.name, w.cells, w.mode_ptrs.size(), out.num_merged_modes(),
                paper_merged,
                out.reduction_percent(), row.paper_reduction, seconds,
                row.paper_merge_runtime,
                optimism ? "  [OPTIMISM VIOLATIONS!]" : "");

    json.begin_object();
    json.key("design").value(row.name);
    json.key("cells").value(w.cells);
    json.key("num_modes").value(w.mode_ptrs.size());
    json.key("num_merged").value(out.num_merged_modes());
    json.key("num_merged_paper").value(paper_merged);
    json.key("reduction_percent").value(out.reduction_percent());
    json.key("reduction_percent_paper").value(row.paper_reduction);
    json.key("merge_seconds").value(seconds);
    json.key("merge_seconds_paper").value(row.paper_merge_runtime);
    json.key("optimism_violations").value(optimism);
    json.end_object();
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("%-7s %10s %8s %8s %8s | %8.1f %8.1f |\n", "Average", "", "", "",
              "", sum_red / table_rows().size(),
              sum_red_paper / table_rows().size());
  std::printf("\n(Merged* / Red%%* = the paper's reported values; runtimes are\n"
              " not comparable across substrates and are shown for shape only.)\n");

  json.end_array();
  json.key("average").begin_object();
  json.key("reduction_percent").value(sum_red / table_rows().size());
  json.key("reduction_percent_paper")
      .value(sum_red_paper / table_rows().size());
  json.end_object();
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_table5.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_table5.json\n");
  return 0;
}
