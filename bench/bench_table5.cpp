// Reproduces Table 5: mode reduction and merging runtime on designs A-F.
//
// Paper's designs are industrial and proprietary; ours are synthetic
// stand-ins with identical mode-family structure (see DESIGN.md). Mode
// counts and merged-mode counts match the paper exactly (they are
// determined by the mode structure); absolute runtimes differ because the
// substrate and scale differ — the paper's column is printed alongside.
//
// Usage: bench_table5 [MM_SCALE=0.01 in env scales design size]

#include <cstdio>

#include "merge/merger.h"
#include "util/timer.h"
#include "workloads.h"

int main() {
  using namespace mm;
  using namespace mm::bench;

  const netlist::Library lib = netlist::Library::builtin();

  std::printf("Table 5: mode reduction and merging runtime (scale=%.3g)\n",
              size_scale());
  std::printf(
      "%-7s %10s %8s %8s %8s | %8s %8s | %12s %12s\n", "Design", "Cells",
      "#Modes", "Merged", "Merged*", "Red%%", "Red%%*", "Merge(s)", "Paper(s)");
  std::printf("%s\n", std::string(96, '-').c_str());

  double sum_red = 0.0, sum_red_paper = 0.0;
  for (const TableRow& row : table_rows()) {
    Workload w = make_table_workload(lib, row);

    Stopwatch timer;
    const merge::MergedModeSet out = merge::merge_mode_set(*w.graph, w.mode_ptrs);
    const double seconds = timer.elapsed_seconds();

    // Sign-off safety is non-negotiable for every merged mode.
    size_t optimism = 0;
    for (const auto& m : out.merged) {
      optimism += m.equivalence.optimism_violations;
    }

    sum_red += out.reduction_percent();
    sum_red_paper += row.paper_reduction;
    std::printf("%-7s %10zu %8zu %8zu %8zu | %8.1f %8.1f | %12.2f %12.0f%s\n",
                row.name, w.cells, w.mode_ptrs.size(), out.num_merged_modes(),
                row.num_modes - static_cast<size_t>(
                                    row.num_modes *
                                    row.paper_reduction / 100.0 + 0.5),
                out.reduction_percent(), row.paper_reduction, seconds,
                row.paper_merge_runtime,
                optimism ? "  [OPTIMISM VIOLATIONS!]" : "");
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("%-7s %10s %8s %8s %8s | %8.1f %8.1f |\n", "Average", "", "", "",
              "", sum_red / table_rows().size(),
              sum_red_paper / table_rows().size());
  std::printf("\n(Merged* / Red%%* = the paper's reported values; runtimes are\n"
              " not comparable across substrates and are shown for shape only.)\n");
  return 0;
}
