// Figure 2: the mergeability graph and its greedy clique cover.
//
// First prints a 7-mode example with planted cliques {M1: 3 modes,
// M2: 2 modes, M3: 2 modes} mirroring the figure, then sweeps the mode
// count to show mergeability-analysis + clique-cover runtime scaling.

#include <cstdio>

#include "merge/mergeability.h"
#include "sdc/parser.h"
#include "util/timer.h"
#include "workloads.h"

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  // --- the Figure-2 style example -----------------------------------------
  {
    gen::DesignParams dp;
    dp.seed = seed;
    dp.num_regs = 100;
    netlist::Design design = gen::generate_design(lib, dp);

    gen::ModeFamilyParams mp;
    mp.seed = seed;
    mp.num_modes = 7;
    mp.target_groups = 3;
    std::vector<std::unique_ptr<sdc::Sdc>> modes;
    std::vector<const sdc::Sdc*> ptrs;
    std::vector<std::string> names;
    for (const auto& gm : gen::generate_mode_family(dp, mp)) {
      modes.push_back(
          std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
      names.push_back(gm.name);
    }
    for (const auto& m : modes) ptrs.push_back(m.get());

    merge::MergeabilityGraph graph(ptrs, {});
    std::printf("Figure 2: mergeability graph (7 modes)\n");
    std::printf("      ");
    for (const std::string& n : names) std::printf("%-10s", n.c_str());
    std::printf("\n");
    for (size_t i = 0; i < ptrs.size(); ++i) {
      std::printf("%-6s", names[i].c_str());
      for (size_t j = 0; j < ptrs.size(); ++j) {
        std::printf("%-10s", i == j ? "." : (graph.edge(i, j) ? "E" : "-"));
      }
      std::printf("\n");
    }
    std::printf("cliques (greedy cover):\n");
    size_t k = 1;
    for (const auto& clique : graph.clique_cover()) {
      std::printf("  M%zu = {", k++);
      for (size_t i = 0; i < clique.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", names[clique[i]].c_str());
      }
      std::printf("}\n");
    }
    std::printf("\n");
  }

  // --- scaling sweep ---------------------------------------------------------
  std::printf("Mergeability analysis scaling (design ~2k cells):\n");
  std::printf("%8s %8s %10s %12s\n", "#modes", "groups", "cliques",
              "runtime(ms)");
  gen::DesignParams dp;
  dp.seed = seed;
  dp.num_regs = 500;
  netlist::Design design = gen::generate_design(lib, dp);
  for (size_t n : {8, 16, 32, 64, 96, 128}) {
    gen::ModeFamilyParams mp;
    mp.seed = seed;
    mp.num_modes = n;
    mp.target_groups = std::max<size_t>(1, n / 6);
    std::vector<std::unique_ptr<sdc::Sdc>> modes;
    std::vector<const sdc::Sdc*> ptrs;
    for (const auto& gm : gen::generate_mode_family(dp, mp)) {
      modes.push_back(
          std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
    }
    for (const auto& m : modes) ptrs.push_back(m.get());

    Stopwatch timer;
    merge::MergeabilityGraph graph(ptrs, {});
    const auto cliques = graph.clique_cover();
    std::printf("%8zu %8zu %10zu %12.2f\n", n, mp.target_groups, cliques.size(),
                timer.elapsed_ms());
  }
  return 0;
}
