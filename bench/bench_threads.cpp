// Ablation A2: thread scaling. The paper's engine is "implemented with a
// multithreaded engine in C++ ... run on a single machine with 4 cores".
// We sweep the thread count for the refinement + validation phase (per-mode
// propagation parallelism) on a design-E-like workload.

#include <cstdio>
#include <fstream>
#include <thread>

#include "merge/merger.h"
#include "obs/obs.h"
#include "util/timer.h"
#include "workloads.h"

int main() {
  using namespace mm;
  using namespace mm::bench;

  const netlist::Library lib = netlist::Library::builtin();

  gen::DesignParams dp;
  dp.num_regs = static_cast<size_t>(1.6e6 * size_scale() / 4.0);
  if (dp.num_regs < 200) dp.num_regs = 200;
  dp.num_domains = 4;
  netlist::Design design = gen::generate_design(lib, dp);
  timing::TimingGraph graph(design);

  gen::ModeFamilyParams mp;
  mp.num_modes = 5;  // design E: 5 modes -> 1 merged
  mp.target_groups = 1;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
  }
  for (const auto& m : modes) ptrs.push_back(m.get());

  std::printf("Ablation A2: thread scaling (design-E-like, %zu cells, 5 modes)\n",
              design.num_instances());
  std::printf("(host reports %u hardware thread(s); speedups need >1 core)\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %10s\n", "threads", "merge(ms)", "speedup");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("threads");
  json.key("scale").value(size_scale());
  json.key("cells").value(design.num_instances());
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  double base = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    merge::MergeOptions options;
    options.num_threads = threads;
    Stopwatch timer;
    const merge::ValidatedMergeResult out =
        merge::merge_modes(graph, ptrs, options);
    const double ms = timer.elapsed_ms();
    if (base == 0.0) base = ms;
    std::printf("%8zu %12.2f %9.2fx%s\n", threads, ms, base / ms,
                out.equivalence.signoff_safe() ? "" : "  [UNSAFE!]");

    json.begin_object();
    json.key("threads").value(threads);
    json.key("merge_ms").value(ms);
    json.key("speedup").value(base / ms);
    json.key("signoff_safe").value(out.equivalence.signoff_safe());
    json.end_object();
  }

  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_threads.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_threads.json\n");
  return 0;
}
