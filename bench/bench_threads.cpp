// Ablation A2: thread scaling. The paper's engine is "implemented with a
// multithreaded engine in C++ ... run on a single machine with 4 cores".
// We sweep the thread count for the refinement + validation phase (per-mode
// propagation parallelism) on a design-E-like workload.

#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>

#include "merge/merger.h"
#include "obs/obs.h"
#include "util/timer.h"
#include "workloads.h"

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  gen::DesignParams dp;
  dp.seed = seed;
  dp.num_regs = static_cast<size_t>(1.6e6 * size_scale() / 4.0);
  if (dp.num_regs < 200) dp.num_regs = 200;
  dp.num_domains = 4;
  netlist::Design design = gen::generate_design(lib, dp);
  timing::TimingGraph graph(design);

  gen::ModeFamilyParams mp;
  mp.seed = seed;
  mp.num_modes = 5;  // design E: 5 modes -> 1 merged
  mp.target_groups = 1;
  std::vector<std::unique_ptr<sdc::Sdc>> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (const auto& gm : gen::generate_mode_family(dp, mp)) {
    modes.push_back(
        std::make_unique<sdc::Sdc>(sdc::parse_sdc(gm.sdc_text, design)));
  }
  for (const auto& m : modes) ptrs.push_back(m.get());

  std::printf("Ablation A2: thread scaling (design-E-like, %zu cells, 5 modes)\n",
              design.num_instances());
  std::printf("(host reports %u hardware thread(s); speedups need >1 core)\n",
              std::thread::hardware_concurrency());

  // The very first run pays one-time warm-up (page cache, allocator arenas,
  // lazily-built tables) that every later run reuses. Timing the serial
  // baseline cold and the multithreaded runs warm would conflate cache wins
  // with threading wins — so measure the serial run twice, report the cold
  // number separately, and compute thread speedups against the warm serial
  // baseline only.
  auto run_once = [&](size_t threads) {
    merge::MergeOptions options;
    options.num_threads = threads;
    Stopwatch timer;
    const merge::ValidatedMergeResult out =
        merge::merge_modes(graph, ptrs, options);
    return std::make_pair(timer.elapsed_ms(), out.equivalence.signoff_safe());
  };
  const auto [serial_cold_ms, cold_safe] = run_once(1);
  std::printf("serial cold-cache baseline: %.2f ms%s\n", serial_cold_ms,
              cold_safe ? "" : "  [UNSAFE!]");
  std::printf("%8s %12s %10s %12s\n", "threads", "merge(ms)", "speedup",
              "vs-cold");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("threads");
  json.key("scale").value(size_scale());
  json.key("cells").value(design.num_instances());
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("serial_cold_ms").value(serial_cold_ms);
  json.key("rows").begin_array();

  double base = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    const auto [ms, safe] = run_once(threads);
    if (base == 0.0) base = ms;  // warm serial baseline
    std::printf("%8zu %12.2f %9.2fx %11.2fx%s\n", threads, ms, base / ms,
                serial_cold_ms / ms, safe ? "" : "  [UNSAFE!]");

    json.begin_object();
    json.key("threads").value(threads);
    json.key("merge_ms").value(ms);
    json.key("speedup").value(base / ms);
    json.key("speedup_vs_cold").value(serial_cold_ms / ms);
    json.key("signoff_safe").value(safe);
    json.end_object();
  }

  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();
  std::ofstream("BENCH_threads.json") << json.str() << '\n';
  std::fprintf(stderr, "wrote BENCH_threads.json\n");
  return 0;
}
