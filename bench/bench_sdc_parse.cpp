// Ablation A4: SDC front-end throughput (google-benchmark microbenches):
// lexing, parsing + object resolution, globbing queries, and writing.

#include <benchmark/benchmark.h>

#include <sstream>

#include "gen/design_gen.h"
#include "sdc/lexer.h"
#include "sdc/parser.h"
#include "sdc/query.h"
#include "sdc/writer.h"

namespace {

using namespace mm;

struct Fixture {
  netlist::Library lib = netlist::Library::builtin();
  netlist::Design design;
  std::string deck;

  explicit Fixture(size_t lines) : design(make_design()) {
    std::ostringstream os;
    os << "create_clock -name CLK0 -period 10 [get_ports clk0]\n";
    for (size_t i = 1; os.tellp() >= 0 && i < lines; ++i) {
      switch (i % 5) {
        case 0:
          os << "set_false_path -through [get_pins g" << (i * 7) % 1200
             << "/Z]\n";
          break;
        case 1:
          os << "set_multicycle_path 2 -setup -through [get_pins r"
             << (i * 13) % 400 << "/Q]\n";
          break;
        case 2:
          os << "set_input_delay " << 0.1 * (i % 30)
             << " -clock CLK0 -add_delay [get_ports di_" << i % 8 << "]\n";
          break;
        case 3:
          os << "set_case_analysis " << i % 2 << " en" << i % 3 << "\n";
          break;
        default:
          os << "set_max_delay " << 1.0 + 0.01 * (i % 100)
             << " -to [get_pins r" << (i * 3) % 400 << "/D]\n";
          break;
      }
    }
    deck = os.str();
  }

  static netlist::Design make_design() {
    gen::DesignParams p;
    p.num_regs = 400;
    p.num_domains = 3;
    return gen::generate_design(netlist_lib(), p);
  }

  static const netlist::Library& netlist_lib() {
    static netlist::Library lib = netlist::Library::builtin();
    return lib;
  }
};

Fixture& fixture(size_t lines) {
  static Fixture f100(100), f1000(1000), f10000(10000);
  if (lines <= 100) return f100;
  if (lines <= 1000) return f1000;
  return f10000;
}

void BM_Lex(benchmark::State& state) {
  Fixture& f = fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdc::lex_sdc(f.deck));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.deck.size()));
}
BENCHMARK(BM_Lex)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Parse(benchmark::State& state) {
  Fixture& f = fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdc::parse_sdc(f.deck, f.design));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.deck.size()));
}
BENCHMARK(BM_Parse)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GlobQuery(benchmark::State& state) {
  Fixture& f = fixture(1000);
  sdc::Sdc sdc(&f.design);
  sdc::QueryContext ctx(&f.design, &sdc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.get_pins({"r*/Q"}));
  }
}
BENCHMARK(BM_GlobQuery);

void BM_ExactQuery(benchmark::State& state) {
  Fixture& f = fixture(1000);
  sdc::Sdc sdc(&f.design);
  sdc::QueryContext ctx(&f.design, &sdc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.get_pins({"r100/Q"}));
  }
}
BENCHMARK(BM_ExactQuery);

void BM_Write(benchmark::State& state) {
  Fixture& f = fixture(static_cast<size_t>(state.range(0)));
  const sdc::Sdc sdc = sdc::parse_sdc(f.deck, f.design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdc::write_sdc(sdc));
  }
}
BENCHMARK(BM_Write)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
