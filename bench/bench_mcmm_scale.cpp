// MCMM matrix sweep (docs/MCMM.md): a generated mode family at M in {8, 32}
// crossed with a corner derate ladder at C in {1, 4, 16} through
// McmmSession. Per (M, C) the bench records
//
//   commit_ms    — add-all + commit wall time for the corner-aware engine
//                  (validation off, best of three, fresh context per rep),
//   flat_ms      — C independent flat merge_mode_set runs over each
//                  corner's decks with the relationship cache off (the
//                  M x C full-extraction cost model the skeleton/delta
//                  split replaces),
//   skeletons    — full extractions the session actually paid (must be
//                  exactly M: one skeleton per mode),
//   delta_fills  — value-only corner fills (must be exactly M * (C - 1)),
//   sharing      — M * C / skeletons, the skeleton-sharing factor.
//
// Hard asserts, exit 1 on any failure: the cache counters must show
// M skeletons + M * (C - 1) delta fills (never M * C full extractions),
// every corner's merged decks must be byte-identical to that corner's flat
// merge, and the flat cover must equal the shared MCMM cover (the derate
// ladder preserves exact-policy verdicts, so the combined cover loses
// nothing). Results land in BENCH_mcmm_scale.json (mm.bench/1, identity
// keys cells/modes/corners, gated by scripts/bench_compare.py).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/corner_gen.h"
#include "merge/mcmm_session.h"
#include "merge/merger.h"
#include "obs/obs.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "util/timer.h"
#include "workloads.h"

namespace {

using namespace mm;
using namespace mm::bench;

struct Matrix {
  std::vector<std::string> names;
  std::vector<std::string> corner_names;
  /// decks[m][c], parsed once and shared by every rep.
  std::vector<std::vector<std::unique_ptr<sdc::Sdc>>> decks;
};

Matrix make_matrix(const netlist::Design& design, const gen::DesignParams& dp,
                   uint64_t seed, size_t num_modes, size_t num_corners) {
  gen::ModeFamilyParams mp;
  mp.seed = seed;
  mp.num_modes = num_modes;
  mp.target_groups = std::max<size_t>(2, num_modes / 4);
  mp.group_mcps = 6;
  mp.mode_fps = 8;
  gen::CornerFamilyParams cp;
  cp.num_corners = num_corners;
  const gen::CornerFamily fam = gen::generate_corner_family(dp, mp, cp);

  Matrix out;
  for (const gen::CornerSpec& spec : fam.corners) {
    out.corner_names.push_back(spec.name);
  }
  for (size_t m = 0; m < fam.modes.size(); ++m) {
    out.names.push_back(fam.modes[m].name);
    std::vector<std::unique_ptr<sdc::Sdc>> row;
    for (size_t c = 0; c < num_corners; ++c) {
      row.push_back(std::make_unique<sdc::Sdc>(
          sdc::parse_sdc(fam.sdc_texts[m][c], design)));
    }
    out.decks.push_back(std::move(row));
  }
  return out;
}

struct RunResult {
  std::vector<std::vector<size_t>> cliques;
  /// merged_sdc[c][k]: clique k's superset bytes in corner c.
  std::vector<std::vector<std::string>> merged_sdc;
  double commit_ms = 0.0;
  double flat_ms = 0.0;
  uint64_t skeletons = 0;
  uint64_t delta_fills = 0;
  uint64_t skeleton_mismatches = 0;
  bool parity = true;
};

RunResult run_at(const timing::TimingGraph& graph, const Matrix& matrix) {
  const size_t num_modes = matrix.decks.size();
  const size_t num_corners = matrix.corner_names.size();
  merge::MergeOptions opt;
  opt.validate = false;

  RunResult out;
  for (int rep = 0; rep < 3; ++rep) {
    merge::McmmSession session(graph, merge::CornerSet(matrix.corner_names),
                               opt);
    Stopwatch timer;
    for (size_t m = 0; m < num_modes; ++m) {
      std::vector<const sdc::Sdc*> decks;
      for (size_t c = 0; c < num_corners; ++c) {
        decks.push_back(matrix.decks[m][c].get());
      }
      session.add_mode(matrix.names[m], decks);
    }
    const merge::McmmSession::CommitResult& r = session.commit();
    const double ms = timer.elapsed_ms();
    out.commit_ms = rep == 0 ? ms : std::min(out.commit_ms, ms);
    if (rep > 0) continue;

    out.cliques = r.cliques;
    out.merged_sdc.resize(num_corners);
    for (size_t c = 0; c < num_corners; ++c) {
      for (const auto& m : r.merged[c]) {
        out.merged_sdc[c].push_back(sdc::write_sdc(*m->merge.merged));
      }
    }
    const merge::RelationshipCache::Stats stats =
        session.context().cache().stats();
    out.delta_fills = stats.delta_fills;
    out.skeleton_mismatches = stats.skeleton_mismatches;
    out.skeletons =
        stats.misses - stats.delta_fills - stats.skeleton_mismatches;
  }

  // The flat cost model: C independent full-extraction merges, and the
  // per-corner byte-parity oracle in the same pass.
  merge::MergeOptions flat_opt;
  flat_opt.validate = false;
  flat_opt.use_relationship_cache = false;
  for (int rep = 0; rep < 3; ++rep) {
    double total = 0.0;
    for (size_t c = 0; c < num_corners; ++c) {
      std::vector<const sdc::Sdc*> corner_ptrs;
      for (size_t m = 0; m < num_modes; ++m) {
        corner_ptrs.push_back(matrix.decks[m][c].get());
      }
      Stopwatch timer;
      const merge::MergedModeSet flat =
          merge::merge_mode_set(graph, corner_ptrs, flat_opt);
      total += timer.elapsed_ms();
      if (rep > 0) continue;

      if (flat.cliques != out.cliques) out.parity = false;
      for (size_t k = 0; out.parity && k < flat.merged.size(); ++k) {
        if (sdc::write_sdc(*flat.merged[k].merge.merged) !=
            out.merged_sdc[c][k]) {
          out.parity = false;
        }
      }
    }
    out.flat_ms = rep == 0 ? total : std::min(out.flat_ms, total);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();
  const double scale = size_scale();

  gen::DesignParams dp;
  dp.name = "mcmm_scale";
  dp.num_regs =
      std::max<size_t>(60, static_cast<size_t>(0.1 * 1e6 * scale / 4.0));
  dp.num_domains = 4;
  dp.seed = seed;
  const netlist::Design design = gen::generate_design(lib, dp);
  const timing::TimingGraph graph(design);

  std::printf("MCMM matrix sweep: %zu cells (scale %.3f, %u hardware "
              "thread(s))\n",
              design.num_instances(), scale,
              std::thread::hardware_concurrency());
  std::printf("%6s %8s %11s %9s %10s %12s %8s\n", "modes", "corners",
              "commit(ms)", "flat(ms)", "skeletons", "delta_fills",
              "sharing");

  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.bench/1");
  json.key("bench").value("mcmm_scale");
  json.key("scale").value(scale);
  json.key("seed").value(seed);
  json.key("hardware_threads")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.key("rows").begin_array();

  bool ok = true;
  for (const size_t num_modes : {size_t{8}, size_t{32}}) {
    for (const size_t num_corners : {size_t{1}, size_t{4}, size_t{16}}) {
      const Matrix matrix =
          make_matrix(design, dp, seed, num_modes, num_corners);
      const RunResult r = run_at(graph, matrix);

      const bool counters_ok =
          r.skeletons == num_modes &&
          r.delta_fills == num_modes * (num_corners - 1) &&
          r.skeleton_mismatches == 0;
      ok = ok && r.parity && counters_ok;
      const double sharing =
          r.skeletons > 0 ? static_cast<double>(num_modes * num_corners) /
                                static_cast<double>(r.skeletons)
                          : 0.0;

      std::printf("%6zu %8zu %11.2f %9.2f %10llu %12llu %7.1fx%s%s\n",
                  num_modes, num_corners, r.commit_ms, r.flat_ms,
                  static_cast<unsigned long long>(r.skeletons),
                  static_cast<unsigned long long>(r.delta_fills), sharing,
                  r.parity ? "" : "  PARITY MISMATCH",
                  counters_ok ? "" : "  COUNTER MISMATCH");

      json.begin_object();
      json.key("cells").value(design.num_instances());
      json.key("modes").value(num_modes);
      json.key("corners").value(num_corners);
      json.key("commit_ms").value(r.commit_ms);
      json.key("flat_ms").value(r.flat_ms);
      json.key("cliques").value(r.cliques.size());
      json.key("skeletons").value(r.skeletons);
      json.key("delta_fills").value(r.delta_fills);
      json.key("skeleton_mismatches").value(r.skeleton_mismatches);
      json.key("sharing_factor").value(sharing);
      json.key("parity").value(r.parity);
      json.end_object();
    }
  }
  json.end_array();
  json.key("stats").raw(obs::stats_json());
  json.end_object();

  std::ofstream("BENCH_mcmm_scale.json") << json.str() << '\n';
  std::printf("wrote BENCH_mcmm_scale.json (parity + counters %s)\n",
              ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
