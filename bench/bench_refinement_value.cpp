// Ablation A6: what §3.2 refinement buys. The preliminary merged mode is
// sign-off safe but pessimistic (it times paths no individual mode times);
// refinement removes that pessimism "correct by construction". This bench
// measures, per Table-5 design: pessimistic relationship keys and endpoint
// slack conformity, with refinement off vs on.

#include <cstdio>

#include "merge/merger.h"
#include "timing/sta.h"
#include "workloads.h"

int main(int argc, char** argv) {
  using namespace mm;
  using namespace mm::bench;

  const uint64_t seed = bench_seed(argc, argv);
  const netlist::Library lib = netlist::Library::builtin();

  std::printf(
      "Ablation A6: value of §3.2 refinement (preliminary vs refined)\n");
  std::printf("%-7s | %12s %12s | %12s %12s | %8s\n", "Design", "pess-keys",
              "conform%%", "pess-keys", "conform%%", "opt");
  std::printf("%-7s | %25s | %25s |\n", "", "-- preliminary only --",
              "---- refined ----");

  for (const TableRow& row : table_rows()) {
    if (row.num_modes > 16) continue;  // keep the sweep quick; A covered by T5/T6
    Workload w = make_table_workload(lib, row, seed);

    auto evaluate = [&](bool refine, size_t* pess, double* conf,
                        size_t* optimism) {
      merge::MergeOptions options;
      options.run_refinement = refine;
      options.validate = true;
      // validate=true needs refinement context; with refinement off,
      // merge_modes skips validation, so check equivalence explicitly.
      const merge::MergedModeSet out =
          merge::merge_mode_set(*w.graph, w.mode_ptrs, options);
      *pess = 0;
      *optimism = 0;
      std::vector<const sdc::Sdc*> merged_ptrs;
      for (size_t c = 0; c < out.merged.size(); ++c) {
        merged_ptrs.push_back(out.merged[c].merge.merged.get());
        std::vector<const sdc::Sdc*> members;
        for (size_t idx : out.cliques[c]) members.push_back(w.mode_ptrs[idx]);
        merge::RefineContext ctx(*w.graph, members);
        const merge::EquivalenceReport eq = merge::check_equivalence(
            ctx, *out.merged[c].merge.merged, out.merged[c].merge.clock_map);
        *pess += eq.pessimism_keys;
        *optimism += eq.optimism_violations;
      }
      const timing::StaResult indiv =
          timing::run_sta_multi(*w.graph, w.mode_ptrs);
      const timing::StaResult merged =
          timing::run_sta_multi(*w.graph, merged_ptrs);
      size_t conforming = 0, total = 0;
      for (const auto& [ep, s] : indiv.endpoint_slack) {
        ++total;
        auto it = merged.endpoint_slack.find(ep);
        if (it != merged.endpoint_slack.end() &&
            std::abs(it->second - s) <= 0.1) {
          ++conforming;
        }
      }
      for (const auto& [ep, s] : merged.endpoint_slack) {
        if (!indiv.endpoint_slack.count(ep)) ++total;
      }
      *conf = total ? 100.0 * conforming / total : 100.0;
    };

    size_t pess0, pess1, opt0, opt1;
    double conf0, conf1;
    evaluate(false, &pess0, &conf0, &opt0);
    evaluate(true, &pess1, &conf1, &opt1);

    std::printf("%-7s | %12zu %12.2f | %12zu %12.2f | %zu/%zu\n", row.name,
                pess0, conf0, pess1, conf1, opt0, opt1);
  }
  std::printf(
      "\n(Preliminary merging is already never optimistic — the superset\n"
      " construction — but times extra paths; refinement drives the\n"
      " pessimistic key count to ~0 and conformity to ~100%%.)\n");
  return 0;
}
