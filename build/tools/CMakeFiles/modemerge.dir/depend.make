# Empty dependencies file for modemerge.
# This may be replaced when dependencies are built.
