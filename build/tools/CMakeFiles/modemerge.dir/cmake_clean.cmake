file(REMOVE_RECURSE
  "CMakeFiles/modemerge.dir/modemerge_main.cpp.o"
  "CMakeFiles/modemerge.dir/modemerge_main.cpp.o.d"
  "modemerge"
  "modemerge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modemerge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
