file(REMOVE_RECURSE
  "CMakeFiles/liberty_flow.dir/liberty_flow.cpp.o"
  "CMakeFiles/liberty_flow.dir/liberty_flow.cpp.o.d"
  "liberty_flow"
  "liberty_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
