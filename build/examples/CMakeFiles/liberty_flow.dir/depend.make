# Empty dependencies file for liberty_flow.
# This may be replaced when dependencies are built.
