file(REMOVE_RECURSE
  "CMakeFiles/scan_func_merge.dir/scan_func_merge.cpp.o"
  "CMakeFiles/scan_func_merge.dir/scan_func_merge.cpp.o.d"
  "scan_func_merge"
  "scan_func_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_func_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
