# Empty dependencies file for scan_func_merge.
# This may be replaced when dependencies are built.
