# Empty compiler generated dependencies file for soc_mode_reduction.
# This may be replaced when dependencies are built.
