file(REMOVE_RECURSE
  "CMakeFiles/soc_mode_reduction.dir/soc_mode_reduction.cpp.o"
  "CMakeFiles/soc_mode_reduction.dir/soc_mode_reduction.cpp.o.d"
  "soc_mode_reduction"
  "soc_mode_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_mode_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
