# Empty dependencies file for equivalence_check.
# This may be replaced when dependencies are built.
