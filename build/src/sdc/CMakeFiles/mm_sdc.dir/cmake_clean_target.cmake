file(REMOVE_RECURSE
  "libmm_sdc.a"
)
