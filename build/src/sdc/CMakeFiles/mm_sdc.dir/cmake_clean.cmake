file(REMOVE_RECURSE
  "CMakeFiles/mm_sdc.dir/lexer.cpp.o"
  "CMakeFiles/mm_sdc.dir/lexer.cpp.o.d"
  "CMakeFiles/mm_sdc.dir/parser.cpp.o"
  "CMakeFiles/mm_sdc.dir/parser.cpp.o.d"
  "CMakeFiles/mm_sdc.dir/query.cpp.o"
  "CMakeFiles/mm_sdc.dir/query.cpp.o.d"
  "CMakeFiles/mm_sdc.dir/sdc.cpp.o"
  "CMakeFiles/mm_sdc.dir/sdc.cpp.o.d"
  "CMakeFiles/mm_sdc.dir/writer.cpp.o"
  "CMakeFiles/mm_sdc.dir/writer.cpp.o.d"
  "libmm_sdc.a"
  "libmm_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
