
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdc/lexer.cpp" "src/sdc/CMakeFiles/mm_sdc.dir/lexer.cpp.o" "gcc" "src/sdc/CMakeFiles/mm_sdc.dir/lexer.cpp.o.d"
  "/root/repo/src/sdc/parser.cpp" "src/sdc/CMakeFiles/mm_sdc.dir/parser.cpp.o" "gcc" "src/sdc/CMakeFiles/mm_sdc.dir/parser.cpp.o.d"
  "/root/repo/src/sdc/query.cpp" "src/sdc/CMakeFiles/mm_sdc.dir/query.cpp.o" "gcc" "src/sdc/CMakeFiles/mm_sdc.dir/query.cpp.o.d"
  "/root/repo/src/sdc/sdc.cpp" "src/sdc/CMakeFiles/mm_sdc.dir/sdc.cpp.o" "gcc" "src/sdc/CMakeFiles/mm_sdc.dir/sdc.cpp.o.d"
  "/root/repo/src/sdc/writer.cpp" "src/sdc/CMakeFiles/mm_sdc.dir/writer.cpp.o" "gcc" "src/sdc/CMakeFiles/mm_sdc.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
