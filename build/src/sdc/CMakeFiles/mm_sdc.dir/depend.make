# Empty dependencies file for mm_sdc.
# This may be replaced when dependencies are built.
