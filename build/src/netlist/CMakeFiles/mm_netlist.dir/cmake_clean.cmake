file(REMOVE_RECURSE
  "CMakeFiles/mm_netlist.dir/design.cpp.o"
  "CMakeFiles/mm_netlist.dir/design.cpp.o.d"
  "CMakeFiles/mm_netlist.dir/function.cpp.o"
  "CMakeFiles/mm_netlist.dir/function.cpp.o.d"
  "CMakeFiles/mm_netlist.dir/libcell.cpp.o"
  "CMakeFiles/mm_netlist.dir/libcell.cpp.o.d"
  "CMakeFiles/mm_netlist.dir/liberty.cpp.o"
  "CMakeFiles/mm_netlist.dir/liberty.cpp.o.d"
  "CMakeFiles/mm_netlist.dir/verilog.cpp.o"
  "CMakeFiles/mm_netlist.dir/verilog.cpp.o.d"
  "libmm_netlist.a"
  "libmm_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
