# Empty dependencies file for mm_netlist.
# This may be replaced when dependencies are built.
