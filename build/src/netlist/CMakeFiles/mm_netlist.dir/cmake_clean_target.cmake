file(REMOVE_RECURSE
  "libmm_netlist.a"
)
