
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/design.cpp" "src/netlist/CMakeFiles/mm_netlist.dir/design.cpp.o" "gcc" "src/netlist/CMakeFiles/mm_netlist.dir/design.cpp.o.d"
  "/root/repo/src/netlist/function.cpp" "src/netlist/CMakeFiles/mm_netlist.dir/function.cpp.o" "gcc" "src/netlist/CMakeFiles/mm_netlist.dir/function.cpp.o.d"
  "/root/repo/src/netlist/libcell.cpp" "src/netlist/CMakeFiles/mm_netlist.dir/libcell.cpp.o" "gcc" "src/netlist/CMakeFiles/mm_netlist.dir/libcell.cpp.o.d"
  "/root/repo/src/netlist/liberty.cpp" "src/netlist/CMakeFiles/mm_netlist.dir/liberty.cpp.o" "gcc" "src/netlist/CMakeFiles/mm_netlist.dir/liberty.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/mm_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/mm_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
