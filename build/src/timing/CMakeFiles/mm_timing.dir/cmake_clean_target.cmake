file(REMOVE_RECURSE
  "libmm_timing.a"
)
