# Empty dependencies file for mm_timing.
# This may be replaced when dependencies are built.
