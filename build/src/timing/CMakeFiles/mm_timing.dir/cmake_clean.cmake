file(REMOVE_RECURSE
  "CMakeFiles/mm_timing.dir/delay_calc.cpp.o"
  "CMakeFiles/mm_timing.dir/delay_calc.cpp.o.d"
  "CMakeFiles/mm_timing.dir/exceptions.cpp.o"
  "CMakeFiles/mm_timing.dir/exceptions.cpp.o.d"
  "CMakeFiles/mm_timing.dir/graph.cpp.o"
  "CMakeFiles/mm_timing.dir/graph.cpp.o.d"
  "CMakeFiles/mm_timing.dir/mode_graph.cpp.o"
  "CMakeFiles/mm_timing.dir/mode_graph.cpp.o.d"
  "CMakeFiles/mm_timing.dir/relationships.cpp.o"
  "CMakeFiles/mm_timing.dir/relationships.cpp.o.d"
  "CMakeFiles/mm_timing.dir/report.cpp.o"
  "CMakeFiles/mm_timing.dir/report.cpp.o.d"
  "CMakeFiles/mm_timing.dir/sta.cpp.o"
  "CMakeFiles/mm_timing.dir/sta.cpp.o.d"
  "libmm_timing.a"
  "libmm_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
