
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/delay_calc.cpp" "src/timing/CMakeFiles/mm_timing.dir/delay_calc.cpp.o" "gcc" "src/timing/CMakeFiles/mm_timing.dir/delay_calc.cpp.o.d"
  "/root/repo/src/timing/exceptions.cpp" "src/timing/CMakeFiles/mm_timing.dir/exceptions.cpp.o" "gcc" "src/timing/CMakeFiles/mm_timing.dir/exceptions.cpp.o.d"
  "/root/repo/src/timing/graph.cpp" "src/timing/CMakeFiles/mm_timing.dir/graph.cpp.o" "gcc" "src/timing/CMakeFiles/mm_timing.dir/graph.cpp.o.d"
  "/root/repo/src/timing/mode_graph.cpp" "src/timing/CMakeFiles/mm_timing.dir/mode_graph.cpp.o" "gcc" "src/timing/CMakeFiles/mm_timing.dir/mode_graph.cpp.o.d"
  "/root/repo/src/timing/relationships.cpp" "src/timing/CMakeFiles/mm_timing.dir/relationships.cpp.o" "gcc" "src/timing/CMakeFiles/mm_timing.dir/relationships.cpp.o.d"
  "/root/repo/src/timing/report.cpp" "src/timing/CMakeFiles/mm_timing.dir/report.cpp.o" "gcc" "src/timing/CMakeFiles/mm_timing.dir/report.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "src/timing/CMakeFiles/mm_timing.dir/sta.cpp.o" "gcc" "src/timing/CMakeFiles/mm_timing.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdc/CMakeFiles/mm_sdc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
