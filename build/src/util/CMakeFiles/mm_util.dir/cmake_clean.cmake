file(REMOVE_RECURSE
  "CMakeFiles/mm_util.dir/glob.cpp.o"
  "CMakeFiles/mm_util.dir/glob.cpp.o.d"
  "CMakeFiles/mm_util.dir/logger.cpp.o"
  "CMakeFiles/mm_util.dir/logger.cpp.o.d"
  "CMakeFiles/mm_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mm_util.dir/thread_pool.cpp.o.d"
  "libmm_util.a"
  "libmm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
