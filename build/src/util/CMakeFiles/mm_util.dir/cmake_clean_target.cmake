file(REMOVE_RECURSE
  "libmm_util.a"
)
