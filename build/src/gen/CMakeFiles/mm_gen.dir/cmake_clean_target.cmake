file(REMOVE_RECURSE
  "libmm_gen.a"
)
