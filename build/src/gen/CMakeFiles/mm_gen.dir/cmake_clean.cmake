file(REMOVE_RECURSE
  "CMakeFiles/mm_gen.dir/design_gen.cpp.o"
  "CMakeFiles/mm_gen.dir/design_gen.cpp.o.d"
  "CMakeFiles/mm_gen.dir/mode_gen.cpp.o"
  "CMakeFiles/mm_gen.dir/mode_gen.cpp.o.d"
  "CMakeFiles/mm_gen.dir/paper_circuit.cpp.o"
  "CMakeFiles/mm_gen.dir/paper_circuit.cpp.o.d"
  "libmm_gen.a"
  "libmm_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
