# Empty dependencies file for mm_gen.
# This may be replaced when dependencies are built.
