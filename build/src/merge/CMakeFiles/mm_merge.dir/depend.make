# Empty dependencies file for mm_merge.
# This may be replaced when dependencies are built.
