file(REMOVE_RECURSE
  "libmm_merge.a"
)
