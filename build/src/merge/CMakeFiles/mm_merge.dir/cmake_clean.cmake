file(REMOVE_RECURSE
  "CMakeFiles/mm_merge.dir/clock_refine.cpp.o"
  "CMakeFiles/mm_merge.dir/clock_refine.cpp.o.d"
  "CMakeFiles/mm_merge.dir/data_refine.cpp.o"
  "CMakeFiles/mm_merge.dir/data_refine.cpp.o.d"
  "CMakeFiles/mm_merge.dir/equivalence.cpp.o"
  "CMakeFiles/mm_merge.dir/equivalence.cpp.o.d"
  "CMakeFiles/mm_merge.dir/keys.cpp.o"
  "CMakeFiles/mm_merge.dir/keys.cpp.o.d"
  "CMakeFiles/mm_merge.dir/mergeability.cpp.o"
  "CMakeFiles/mm_merge.dir/mergeability.cpp.o.d"
  "CMakeFiles/mm_merge.dir/merger.cpp.o"
  "CMakeFiles/mm_merge.dir/merger.cpp.o.d"
  "CMakeFiles/mm_merge.dir/preliminary.cpp.o"
  "CMakeFiles/mm_merge.dir/preliminary.cpp.o.d"
  "libmm_merge.a"
  "libmm_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
