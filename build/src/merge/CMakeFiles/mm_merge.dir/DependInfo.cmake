
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/merge/clock_refine.cpp" "src/merge/CMakeFiles/mm_merge.dir/clock_refine.cpp.o" "gcc" "src/merge/CMakeFiles/mm_merge.dir/clock_refine.cpp.o.d"
  "/root/repo/src/merge/data_refine.cpp" "src/merge/CMakeFiles/mm_merge.dir/data_refine.cpp.o" "gcc" "src/merge/CMakeFiles/mm_merge.dir/data_refine.cpp.o.d"
  "/root/repo/src/merge/equivalence.cpp" "src/merge/CMakeFiles/mm_merge.dir/equivalence.cpp.o" "gcc" "src/merge/CMakeFiles/mm_merge.dir/equivalence.cpp.o.d"
  "/root/repo/src/merge/keys.cpp" "src/merge/CMakeFiles/mm_merge.dir/keys.cpp.o" "gcc" "src/merge/CMakeFiles/mm_merge.dir/keys.cpp.o.d"
  "/root/repo/src/merge/mergeability.cpp" "src/merge/CMakeFiles/mm_merge.dir/mergeability.cpp.o" "gcc" "src/merge/CMakeFiles/mm_merge.dir/mergeability.cpp.o.d"
  "/root/repo/src/merge/merger.cpp" "src/merge/CMakeFiles/mm_merge.dir/merger.cpp.o" "gcc" "src/merge/CMakeFiles/mm_merge.dir/merger.cpp.o.d"
  "/root/repo/src/merge/preliminary.cpp" "src/merge/CMakeFiles/mm_merge.dir/preliminary.cpp.o" "gcc" "src/merge/CMakeFiles/mm_merge.dir/preliminary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timing/CMakeFiles/mm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/sdc/CMakeFiles/mm_sdc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
