# Empty dependencies file for test_merge_clocks.
# This may be replaced when dependencies are built.
