file(REMOVE_RECURSE
  "CMakeFiles/test_merge_clocks.dir/test_merge_clocks.cpp.o"
  "CMakeFiles/test_merge_clocks.dir/test_merge_clocks.cpp.o.d"
  "test_merge_clocks"
  "test_merge_clocks.pdb"
  "test_merge_clocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
