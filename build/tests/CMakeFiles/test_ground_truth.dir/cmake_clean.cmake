file(REMOVE_RECURSE
  "CMakeFiles/test_ground_truth.dir/test_ground_truth.cpp.o"
  "CMakeFiles/test_ground_truth.dir/test_ground_truth.cpp.o.d"
  "test_ground_truth"
  "test_ground_truth.pdb"
  "test_ground_truth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ground_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
