
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_timing_graph.cpp" "tests/CMakeFiles/test_timing_graph.dir/test_timing_graph.cpp.o" "gcc" "tests/CMakeFiles/test_timing_graph.dir/test_timing_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/merge/CMakeFiles/mm_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/mm_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/mm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/sdc/CMakeFiles/mm_sdc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
