# Empty dependencies file for test_liberty.
# This may be replaced when dependencies are built.
