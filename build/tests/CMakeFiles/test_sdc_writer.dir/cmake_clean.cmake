file(REMOVE_RECURSE
  "CMakeFiles/test_sdc_writer.dir/test_sdc_writer.cpp.o"
  "CMakeFiles/test_sdc_writer.dir/test_sdc_writer.cpp.o.d"
  "test_sdc_writer"
  "test_sdc_writer.pdb"
  "test_sdc_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdc_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
