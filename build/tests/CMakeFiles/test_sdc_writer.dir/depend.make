# Empty dependencies file for test_sdc_writer.
# This may be replaced when dependencies are built.
