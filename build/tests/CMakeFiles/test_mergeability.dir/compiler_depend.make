# Empty compiler generated dependencies file for test_mergeability.
# This may be replaced when dependencies are built.
