file(REMOVE_RECURSE
  "CMakeFiles/test_mergeability.dir/test_mergeability.cpp.o"
  "CMakeFiles/test_mergeability.dir/test_mergeability.cpp.o.d"
  "test_mergeability"
  "test_mergeability.pdb"
  "test_mergeability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mergeability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
