file(REMOVE_RECURSE
  "CMakeFiles/test_preliminary.dir/test_preliminary.cpp.o"
  "CMakeFiles/test_preliminary.dir/test_preliminary.cpp.o.d"
  "test_preliminary"
  "test_preliminary.pdb"
  "test_preliminary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preliminary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
