file(REMOVE_RECURSE
  "CMakeFiles/test_mode_graph.dir/test_mode_graph.cpp.o"
  "CMakeFiles/test_mode_graph.dir/test_mode_graph.cpp.o.d"
  "test_mode_graph"
  "test_mode_graph.pdb"
  "test_mode_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mode_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
