file(REMOVE_RECURSE
  "CMakeFiles/test_hold.dir/test_hold.cpp.o"
  "CMakeFiles/test_hold.dir/test_hold.cpp.o.d"
  "test_hold"
  "test_hold.pdb"
  "test_hold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
