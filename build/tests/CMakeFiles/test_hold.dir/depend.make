# Empty dependencies file for test_hold.
# This may be replaced when dependencies are built.
