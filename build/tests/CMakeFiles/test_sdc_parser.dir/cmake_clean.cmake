file(REMOVE_RECURSE
  "CMakeFiles/test_sdc_parser.dir/test_sdc_parser.cpp.o"
  "CMakeFiles/test_sdc_parser.dir/test_sdc_parser.cpp.o.d"
  "test_sdc_parser"
  "test_sdc_parser.pdb"
  "test_sdc_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
