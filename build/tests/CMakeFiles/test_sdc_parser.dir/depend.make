# Empty dependencies file for test_sdc_parser.
# This may be replaced when dependencies are built.
