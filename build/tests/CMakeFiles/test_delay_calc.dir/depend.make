# Empty dependencies file for test_delay_calc.
# This may be replaced when dependencies are built.
