file(REMOVE_RECURSE
  "CMakeFiles/test_delay_calc.dir/test_delay_calc.cpp.o"
  "CMakeFiles/test_delay_calc.dir/test_delay_calc.cpp.o.d"
  "test_delay_calc"
  "test_delay_calc.pdb"
  "test_delay_calc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
