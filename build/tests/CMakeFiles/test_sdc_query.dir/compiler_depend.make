# Empty compiler generated dependencies file for test_sdc_query.
# This may be replaced when dependencies are built.
