file(REMOVE_RECURSE
  "CMakeFiles/test_sdc_query.dir/test_sdc_query.cpp.o"
  "CMakeFiles/test_sdc_query.dir/test_sdc_query.cpp.o.d"
  "test_sdc_query"
  "test_sdc_query.pdb"
  "test_sdc_query[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
