file(REMOVE_RECURSE
  "CMakeFiles/test_merge_integration.dir/test_merge_integration.cpp.o"
  "CMakeFiles/test_merge_integration.dir/test_merge_integration.cpp.o.d"
  "test_merge_integration"
  "test_merge_integration.pdb"
  "test_merge_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
