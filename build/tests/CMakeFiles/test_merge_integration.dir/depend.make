# Empty dependencies file for test_merge_integration.
# This may be replaced when dependencies are built.
