# Empty compiler generated dependencies file for test_sdc_lexer.
# This may be replaced when dependencies are built.
