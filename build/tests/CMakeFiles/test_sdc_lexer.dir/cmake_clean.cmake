file(REMOVE_RECURSE
  "CMakeFiles/test_sdc_lexer.dir/test_sdc_lexer.cpp.o"
  "CMakeFiles/test_sdc_lexer.dir/test_sdc_lexer.cpp.o.d"
  "test_sdc_lexer"
  "test_sdc_lexer.pdb"
  "test_sdc_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdc_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
