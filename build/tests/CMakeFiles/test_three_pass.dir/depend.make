# Empty dependencies file for test_three_pass.
# This may be replaced when dependencies are built.
