file(REMOVE_RECURSE
  "CMakeFiles/test_three_pass.dir/test_three_pass.cpp.o"
  "CMakeFiles/test_three_pass.dir/test_three_pass.cpp.o.d"
  "test_three_pass"
  "test_three_pass.pdb"
  "test_three_pass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_three_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
