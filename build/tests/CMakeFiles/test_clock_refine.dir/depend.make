# Empty dependencies file for test_clock_refine.
# This may be replaced when dependencies are built.
