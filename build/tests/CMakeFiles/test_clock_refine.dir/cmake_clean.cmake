file(REMOVE_RECURSE
  "CMakeFiles/test_clock_refine.dir/test_clock_refine.cpp.o"
  "CMakeFiles/test_clock_refine.dir/test_clock_refine.cpp.o.d"
  "test_clock_refine"
  "test_clock_refine.pdb"
  "test_clock_refine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clock_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
