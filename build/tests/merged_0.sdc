create_clock -name clkA -period 10 -add [get_ports clk1]
set_false_path -to [get_pins rX/D] -comment "mode-merge refinement"
set_false_path -from [get_pins rA/CP] -to [get_pins rY/D] -comment "mode-merge refinement"
set_false_path -from [get_pins rC/CP] -through [get_pins inv3/A] -to [get_pins rZ/D] -comment "mode-merge pass-3 refinement"
