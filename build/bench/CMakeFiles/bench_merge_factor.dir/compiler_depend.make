# Empty compiler generated dependencies file for bench_merge_factor.
# This may be replaced when dependencies are built.
