file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_factor.dir/bench_merge_factor.cpp.o"
  "CMakeFiles/bench_merge_factor.dir/bench_merge_factor.cpp.o.d"
  "bench_merge_factor"
  "bench_merge_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
