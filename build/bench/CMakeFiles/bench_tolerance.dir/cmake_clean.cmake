file(REMOVE_RECURSE
  "CMakeFiles/bench_tolerance.dir/bench_tolerance.cpp.o"
  "CMakeFiles/bench_tolerance.dir/bench_tolerance.cpp.o.d"
  "bench_tolerance"
  "bench_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
