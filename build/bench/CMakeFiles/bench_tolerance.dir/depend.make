# Empty dependencies file for bench_tolerance.
# This may be replaced when dependencies are built.
