file(REMOVE_RECURSE
  "CMakeFiles/bench_sdc_parse.dir/bench_sdc_parse.cpp.o"
  "CMakeFiles/bench_sdc_parse.dir/bench_sdc_parse.cpp.o.d"
  "bench_sdc_parse"
  "bench_sdc_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdc_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
