# Empty dependencies file for bench_sdc_parse.
# This may be replaced when dependencies are built.
