# Empty compiler generated dependencies file for bench_three_pass.
# This may be replaced when dependencies are built.
