file(REMOVE_RECURSE
  "CMakeFiles/bench_three_pass.dir/bench_three_pass.cpp.o"
  "CMakeFiles/bench_three_pass.dir/bench_three_pass.cpp.o.d"
  "bench_three_pass"
  "bench_three_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_three_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
