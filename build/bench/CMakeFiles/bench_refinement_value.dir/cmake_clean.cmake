file(REMOVE_RECURSE
  "CMakeFiles/bench_refinement_value.dir/bench_refinement_value.cpp.o"
  "CMakeFiles/bench_refinement_value.dir/bench_refinement_value.cpp.o.d"
  "bench_refinement_value"
  "bench_refinement_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refinement_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
