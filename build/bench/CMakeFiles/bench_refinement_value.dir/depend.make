# Empty dependencies file for bench_refinement_value.
# This may be replaced when dependencies are built.
