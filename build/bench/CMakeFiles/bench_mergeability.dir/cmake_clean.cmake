file(REMOVE_RECURSE
  "CMakeFiles/bench_mergeability.dir/bench_mergeability.cpp.o"
  "CMakeFiles/bench_mergeability.dir/bench_mergeability.cpp.o.d"
  "bench_mergeability"
  "bench_mergeability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mergeability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
