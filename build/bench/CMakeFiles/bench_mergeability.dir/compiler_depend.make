# Empty compiler generated dependencies file for bench_mergeability.
# This may be replaced when dependencies are built.
