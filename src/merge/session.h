#pragma once
// MergeSession: the delta-driven merge engine. The batch pipeline
// (mergeability graph -> greedy clique cover -> per-clique superset merge ->
// refinement -> equivalence validation) is a pure function of the mode set,
// but real sign-off is iterative: engineers add, drop and edit modes
// repeatedly while converging. A MergeSession keeps the whole pipeline's
// intermediate state alive between edits so each delta pays only for what
// it invalidated:
//
//   add_mode(m)    -> m's M-1 pairs are checked at the next commit; every
//                     clean pair verdict is carried over.
//   update_mode(m) -> m's relationship-cache entry is invalidated, its M-1
//                     pairs are re-checked, cliques containing m re-merge.
//   remove_mode(m) -> m's verdict row is dropped; no pair is re-checked,
//                     only cliques that lose a member re-merge.
//   commit()       -> re-checks exactly the dirty pairs (fanned over the
//                     session pool), recomputes the greedy cover over the
//                     full verdict matrix (cheap integer work, shared with
//                     the batch path so the cover is bit-identical), and
//                     re-runs preliminary merge + refinement + validation
//                     only for dirty cliques. An untouched clique's merged
//                     SDC, stats, and validation verdict are reused
//                     byte-for-byte from the previous commit.
//
// The session is rooted in a MergeContext: the context owns the canonical
// key table, the relationship cache, and the thread pool; the session owns
// the incremental state (live modes, verdict matrix, per-clique results)
// layered on top of it. Construct with an external context to share those
// caches across sessions, or with plain MergeOptions to let the session own
// a private context.
//
// Determinism contract (enforced by fuzz property P5 and bench_incremental):
// after any sequence of add/remove/update, commit() produces the same
// mergeability graph, reasons, clique cover, merged SDC bytes, and
// count-valued stats as a from-scratch merge_mode_set over the live modes
// in insertion order. Only wall-clock stats fields may differ.
//
// Observability: each commit bumps session/* counters — modes_added,
// modes_removed, modes_updated, commits, pairs_rechecked,
// pairs_skipped_clean, cliques_dirty, cliques_reused (docs/OBSERVABILITY.md).
// When the mm.journal/1 decision journal is open (obs/journal.h), every
// delta, pair re-check verdict, clique-cover decision, refinement pass, and
// equivalence outcome is appended as a structured event; commit() drains
// the journal buffers once at the end (a phase boundary). All events are
// emitted from the committing thread in deterministic order, so a journal
// is byte-identical across num_threads values.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "merge/context.h"
#include "merge/mergeability.h"
#include "merge/merger.h"
#include "merge/types.h"

namespace mm::merge {

class MergeSession {
 public:
  /// Stable handle to a mode across edits (never reused within a session).
  using ModeId = uint64_t;
  static constexpr ModeId kInvalidMode = 0;

  /// What one commit() produced. Merged results are shared with the
  /// session's reuse cache: a clique untouched by later deltas hands the
  /// same object to the next commit.
  struct CommitResult {
    /// One merged mode per clique, in cover order.
    std::vector<std::shared_ptr<const ValidatedMergeResult>> merged;
    /// Clique membership as positions into modes() (insertion order).
    std::vector<std::vector<size_t>> cliques;
    /// Clique membership as session ModeIds (stable across commits).
    std::vector<std::vector<ModeId>> clique_ids;
    /// Per-clique: true if the result was reused byte-for-byte from the
    /// previous commit.
    std::vector<bool> reused;
    size_t num_input_modes = 0;
    size_t pairs_rechecked = 0;
    size_t pairs_skipped_clean = 0;
    size_t cliques_reused = 0;
    size_t cliques_merged = 0;
    double total_seconds = 0.0;

    size_t num_merged_modes() const { return merged.size(); }
    double reduction_percent() const {
      if (num_input_modes == 0) return 0.0;
      return 100.0 *
             (1.0 - static_cast<double>(merged.size()) /
                        static_cast<double>(num_input_modes));
    }
  };

  /// Borrow an external context (shared caches across sessions). The graph
  /// and context must outlive the session.
  MergeSession(const timing::TimingGraph& graph, MergeContext& ctx);
  /// Own a private context configured by `options`.
  explicit MergeSession(const timing::TimingGraph& graph,
                        MergeOptions options = {});
  MergeSession(const MergeSession&) = delete;
  MergeSession& operator=(const MergeSession&) = delete;
  ~MergeSession();

  /// Register a mode. The caller keeps ownership of `sdc`, which must stay
  /// alive until the mode is removed or updated. `name` is used in logs and
  /// the --script driver ("" is fine). The mode's relationship set is
  /// extracted (or cache-hit) immediately, so a re-added identical mode
  /// costs zero extractions.
  ModeId add_mode(std::string name, const Sdc* sdc);

  /// Drop a mode. Its pair verdicts are discarded; no pair is re-checked at
  /// the next commit — only cliques that contained it become dirty.
  void remove_mode(ModeId id);

  /// Replace a mode's constraints in place (same handle, same position in
  /// insertion order). Invalidates the old content's relationship-cache
  /// entry and marks the mode's pairs dirty. The old Sdc may be destroyed
  /// once this returns; `sdc` must stay alive like in add_mode.
  void update_mode(ModeId id, const Sdc* sdc);

  /// Run the pipeline over the current mode set, reusing everything the
  /// deltas since the previous commit did not invalidate. The returned
  /// reference stays valid until the next commit() / release_batch().
  const CommitResult& commit();

  size_t num_modes() const { return modes_.size(); }
  bool has_mode(ModeId id) const;
  /// Live modes in insertion order — the order a from-scratch
  /// merge_mode_set over the same set must use for output parity.
  std::vector<const Sdc*> live_modes() const;
  const std::string& mode_name(ModeId id) const;

  /// The mergeability graph of the last commit (empty before the first).
  const MergeabilityGraph& graph() const { return graph_; }
  const CommitResult& last_commit() const { return last_; }

  MergeContext& context() { return *ctx_; }

  /// Replace the pairwise mergeability check commit() runs on each dirty
  /// pair. The rels pointers carry the session-cached relationship sets
  /// (null when options.use_relationship_cache is off). The checker is
  /// invoked concurrently from the session pool, so it must be thread-safe,
  /// and it must return verdicts byte-identical to check_mergeable for the
  /// determinism contract to hold — this is the seam ShardedMergeSession
  /// (merge/sharded_session.h) installs its stitch pass through. Reset with
  /// nullptr. Takes effect at the next commit().
  using PairChecker = std::function<PairVerdict(
      const Sdc& a, const Sdc& b, const ModeRelationships* a_rels,
      const ModeRelationships* b_rels)>;
  void set_pair_checker(PairChecker checker) {
    pair_checker_ = std::move(checker);
  }

  /// One-shot adapter for the batch API: move the last commit's results
  /// into a MergedModeSet. Ends the session's reuse guarantees (the result
  /// cache is cleared; a later commit re-merges every clique).
  MergedModeSet release_batch();

 private:
  struct Entry {
    ModeId id = kInvalidMode;
    std::string name;
    const Sdc* sdc = nullptr;
    std::shared_ptr<const ModeRelationships> rels;
  };

  uint64_t pair_key(ModeId a, ModeId b) const;
  void mark_dirty(ModeId id);
  size_t position_of(ModeId id) const;

  const timing::TimingGraph& timing_graph_;
  std::unique_ptr<MergeContext> owned_ctx_;  // set iff constructed w/ options
  MergeContext* ctx_ = nullptr;

  /// Process-unique id tying this session's journal events together, and
  /// the 1-based commit counter scoping each journal segment.
  uint64_t journal_id_ = 0;
  uint64_t commit_seq_ = 0;

  /// Content fingerprint of the context's merge policy (0 for exact),
  /// folded into every pair-verdict key and clique-result key so cached
  /// decisions made under one policy can never be served to another —
  /// defense in depth for callers sharing caches across contexts.
  uint64_t policy_salt_ = 0;

  ModeId next_id_ = 1;
  std::vector<Entry> modes_;  // live modes, insertion order
  /// Verdicts for every checked live pair, keyed by pair_key(id, id).
  std::unordered_map<uint64_t, PairVerdict> verdicts_;
  /// Modes added or updated since the last commit: their pairs need
  /// (re-)checking.
  std::unordered_set<ModeId> dirty_;
  /// True until the first commit, and after release_batch().
  bool results_valid_ = false;
  /// Previous commit's per-clique results, keyed by sorted member ids.
  std::unordered_map<std::string, std::shared_ptr<ValidatedMergeResult>>
      clique_results_;
  MergeabilityGraph graph_{0, {}, {}};
  CommitResult last_;
  PairChecker pair_checker_;
};

}  // namespace mm::merge
