#include "merge/data_refine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>
#include <set>
#include <unordered_map>
#include <functional>
#include <unordered_set>

#include "obs/obs.h"
#include "timing/exceptions.h"
#include "timing/relationships.h"
#include "util/logger.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mm::merge {

using timing::Arc;
using timing::ArcId;
using timing::ArcKind;
using timing::CompiledExceptions;
using timing::ModeGraph;
using timing::PathState;
using timing::Propagator;
using timing::PropagationOptions;
using timing::RelationKey;
using timing::RelationMap;
using timing::StateKind;
using timing::StateSet;
using timing::TimingGraph;

namespace {

enum Side : int { kSetup = 0, kHold = 1 };

const StateSet& side_states(const timing::RelationData& data, int side) {
  return side == kSetup ? data.states : data.hold_states;
}

// ---------------------------------------------------------------------------
// Verdicts (the M / X / A columns of Tables 2-4)
// ---------------------------------------------------------------------------

enum class Verdict {
  kMatch,
  kFixable,   // merged times paths no individual mode times (or retimes a
              // relation whose individual state is stricter) — add constraint
  kAmbiguous,  // needs the next, finer pass
  kOptimism,   // merged fails to time something an individual mode times —
               // must never happen by construction; reported loudly
};

/// Classify one relation key, given the state set seen by EACH individual
/// mode (nullptr = the mode has no paths at this key) and the merged set.
///
/// Per-mode sets are essential — a flat union cannot reproduce the paper's
/// tables: at pass-2 key (rB/CP, rY/D) mode A false-paths the bundle while
/// mode B times all of it, so the merged mode must time all of it ("M" in
/// Table 3); a union {FP, V} would look ambiguous.
Verdict classify(const std::vector<const StateSet*>& mode_states,
                 const StateSet& merged, PathState* fix) {
  bool any_mode_timed = false;
  const StateSet* fully_timed_mode = nullptr;  // times every path at the key
  for (const StateSet* s : mode_states) {
    if (!s || s->states.empty()) continue;
    if (s->any_timed()) {
      any_mode_timed = true;
      bool has_untimed = false;
      for (const PathState& ps : s->states) {
        if (!ps.is_timed()) has_untimed = true;
      }
      if (!has_untimed) fully_timed_mode = s;
    }
  }

  if (merged.all_untimed()) {
    // Merged times nothing here; fine iff no mode times anything.
    return any_mode_timed ? Verdict::kOptimism : Verdict::kMatch;
  }
  if (!any_mode_timed) {
    // Merged times paths that no individual mode times: the paper's "X".
    *fix = PathState::false_path();
    return Verdict::kFixable;
  }

  bool merged_has_untimed = false;
  StateSet merged_timed;
  for (const PathState& ps : merged.states) {
    if (ps.is_timed()) merged_timed.insert(ps);
    else merged_has_untimed = true;
  }

  if (fully_timed_mode && !merged_has_untimed) {
    // Every path is timed in some mode AND timed in merged: compare the
    // timed states themselves.
    StateSet required;
    for (const StateSet* s : mode_states) {
      if (!s) continue;
      for (const PathState& ps : s->states) {
        if (ps.is_timed()) required.insert(ps);
      }
    }
    if (merged_timed == required) return Verdict::kMatch;
    if (merged_timed.singleton() &&
        merged_timed.states[0].kind == StateKind::kValid &&
        required.singleton() &&
        required.states[0].kind != StateKind::kValid) {
      // Every mode times the bundle with one identical exception state
      // (e.g. MCP(2)) that the merged mode lost: re-apply it.
      *fix = required.states[0];
      return Verdict::kFixable;
    }
    return Verdict::kAmbiguous;
  }
  return Verdict::kAmbiguous;
}

sdc::ExceptionKind kind_of(const PathState& s) {
  switch (s.kind) {
    case StateKind::kMcp: return sdc::ExceptionKind::kMulticyclePath;
    case StateKind::kMaxDelay: return sdc::ExceptionKind::kMaxDelay;
    case StateKind::kMinDelay: return sdc::ExceptionKind::kMinDelay;
    default: return sdc::ExceptionKind::kFalsePath;
  }
}

/// side_mask: bit 0 = setup, bit 1 = hold; 3 = unqualified (both).
sdc::Exception make_fix(const PathState& state, int side_mask) {
  sdc::Exception ex;
  ex.kind = kind_of(state);
  ex.value = state.value;
  ex.comment = "mode-merge refinement";
  if (side_mask == 1) ex.setup_hold = sdc::SetupHoldFlags::setup_only();
  if (side_mask == 2) ex.setup_hold = sdc::SetupHoldFlags::hold_only();
  return ex;
}

/// Result of analyzing one fix group (all keys of one endpoint, or one
/// (endpoint, launch) bucket, or one (startpoint, endpoint) pair) on one
/// side.
struct GroupFix {
  bool killable_all = true;  // every key either fixable-with-this-fix or a
                             // match whose merged states are untimed anyway
  bool any_fix = false;
  bool any_ambiguous = false;
  PathState fix;
  bool fix_set = false;

  bool emit_ok() const { return any_fix && killable_all; }
  bool unresolved() const { return any_fix || any_ambiguous; }
};

// ---------------------------------------------------------------------------
// The refiner
// ---------------------------------------------------------------------------

class DataRefiner {
 public:
  DataRefiner(const RefineContext& ctx, MergeResult& result,
              const MergeOptions& options)
      : ctx_(ctx),
        result_(result),
        options_(options),
        graph_(*ctx.graph),
        analyze_hold_(options.analyze_hold) {}

  void run() {
    MM_SPAN("merge/data_refine");
    {
      MM_SPAN("merge/refine_pass0");
      build_mode_exceptions();
      step_clocks_on_data();
    }
    {
      MM_SPAN("merge/refine_pass1");
      pass1();
    }
    {
      MM_SPAN("merge/refine_pass2");
      pass2();
    }
    {
      MM_SPAN("merge/refine_pass3");
      pass3();
    }
    const MergeStats& s = result_.stats;
    MM_COUNT("merge/endpoints_descended_pass2", pass2_endpoints_.size());
    MM_COUNT("merge/pairs_descended_pass3", s.pass3_pairs);
    MM_COUNT("merge/paths_enumerated_pass3", s.pass3_paths_enumerated);
    MM_COUNT("merge/false_paths_emitted",
             s.pass0_pair_fixed + s.data_clock_fps_added + s.pass3_fps_added);
  }

 private:
  Sdc& merged() { return *result_.merged; }
  const ClockMap& map() const { return result_.clock_map; }
  int num_sides() const { return analyze_hold_ ? 2 : 1; }

  void build_mode_exceptions() {
    mode_exceptions_.resize(ctx_.modes.size());
    for (size_t m = 0; m < ctx_.modes.size(); ++m) {
      mode_exceptions_[m] =
          std::make_unique<CompiledExceptions>(graph_, *ctx_.modes[m]);
    }
  }

  // --- step 1: launch clocks on the data network -----------------------------

  /// Launch-clock reach through one mode's data network (clock ids already
  /// mapped to merged space).
  std::vector<std::set<uint32_t>> data_clock_reach(const ModeGraph& mg,
                                                   size_t mode_index,
                                                   bool is_merged) {
    std::vector<std::set<uint32_t>> reach(graph_.num_nodes());
    auto mapped = [&](sdc::ClockId c) {
      if (is_merged || !c.valid()) return c;
      return map().merged_of(mode_index, c);
    };
    for (PinId sp : mg.active_startpoints()) {
      if (graph_.design().pin(sp).is_port()) {
        for (const sdc::PortDelay& pd : mg.sdc().port_delays()) {
          if (pd.is_input && pd.port_pin == sp && pd.clock.valid()) {
            const sdc::ClockId c = mapped(pd.clock);
            if (c.valid()) reach[sp.index()].insert(c.value());
          }
        }
      } else {
        for (const timing::ClockArrival& ca : mg.clocks_on(sp)) {
          const sdc::ClockId c = mapped(ca.clock);
          if (c.valid()) reach[sp.index()].insert(c.value());
        }
      }
    }
    for (PinId pin : graph_.topo_order()) {
      if (reach[pin.index()].empty()) continue;
      bool has_launch = false;
      for (ArcId aid : graph_.fanout(pin)) {
        if (graph_.arc(aid).kind == ArcKind::kLaunch) has_launch = true;
      }
      for (ArcId aid : graph_.fanout(pin)) {
        if (!mg.arc_enabled(aid)) continue;
        const Arc& arc = graph_.arc(aid);
        if (has_launch && arc.kind != ArcKind::kLaunch) continue;
        reach[arc.to.index()].insert(reach[pin.index()].begin(),
                                     reach[pin.index()].end());
      }
    }
    return reach;
  }

  void step_clocks_on_data() {
    // Union of individual reaches.
    std::vector<std::set<uint32_t>> allowed(graph_.num_nodes());
    for (size_t m = 0; m < ctx_.modes.size(); ++m) {
      const auto reach = data_clock_reach(*ctx_.mode_graphs[m], m, false);
      for (size_t p = 0; p < reach.size(); ++p) {
        allowed[p].insert(reach[p].begin(), reach[p].end());
      }
    }

    // Merged simulation with the inline check: disallowed clock at a pin
    // becomes `set_false_path -from <clock> -through <pin>` and stops there.
    const ModeGraph merged_view(graph_, merged());
    std::vector<std::set<uint32_t>> reach(graph_.num_nodes());
    std::set<std::pair<uint32_t, uint32_t>> frontier;  // (pin, clock)

    auto try_insert = [&](PinId pin, uint32_t clock) {
      if (allowed[pin.index()].count(clock)) {
        reach[pin.index()].insert(clock);
      } else {
        frontier.emplace(pin.value(), clock);
      }
    };

    for (PinId sp : merged_view.active_startpoints()) {
      if (graph_.design().pin(sp).is_port()) {
        for (const sdc::PortDelay& pd : merged().port_delays()) {
          if (pd.is_input && pd.port_pin == sp && pd.clock.valid()) {
            try_insert(sp, pd.clock.value());
          }
        }
      } else {
        for (const timing::ClockArrival& ca : merged_view.clocks_on(sp)) {
          try_insert(sp, ca.clock.value());
        }
      }
    }
    for (PinId pin : graph_.topo_order()) {
      if (reach[pin.index()].empty()) continue;
      bool has_launch = false;
      for (ArcId aid : graph_.fanout(pin)) {
        if (graph_.arc(aid).kind == ArcKind::kLaunch) has_launch = true;
      }
      for (ArcId aid : graph_.fanout(pin)) {
        if (!merged_view.arc_enabled(aid)) continue;
        const Arc& arc = graph_.arc(aid);
        if (has_launch && arc.kind != ArcKind::kLaunch) continue;
        for (uint32_t c : reach[pin.index()]) try_insert(arc.to, c);
      }
    }

    // An equivalent single-clock/single-through false path may already be
    // present (carried over from a source mode's own refinement); adding a
    // second copy would only differ in comment and break idempotence of
    // re-merging a merged mode.
    std::set<std::pair<uint32_t, uint32_t>> existing;  // (pin, clock)
    for (const sdc::Exception& ex : merged().exceptions()) {
      if (ex.kind != sdc::ExceptionKind::kFalsePath) continue;
      if (ex.from.clocks.size() != 1 || !ex.from.pins.empty()) continue;
      if (ex.throughs.size() != 1 || ex.throughs[0].pins.size() != 1 ||
          !ex.throughs[0].clocks.empty()) {
        continue;
      }
      if (!ex.to.clocks.empty() || !ex.to.pins.empty()) continue;
      existing.emplace(ex.throughs[0].pins[0].value(),
                       ex.from.clocks[0].value());
    }
    for (const auto& [pin, clock] : frontier) {
      if (existing.count({pin, clock})) continue;
      sdc::Exception ex;
      ex.kind = sdc::ExceptionKind::kFalsePath;
      ex.from.clocks.push_back(sdc::ClockId(clock));
      sdc::ExceptionPoint through;
      through.pins.push_back(PinId(pin));
      ex.throughs.push_back(std::move(through));
      ex.comment = "data refinement: clock not in data network of any mode";
      merged().exceptions().push_back(std::move(ex));
      ++result_.stats.data_clock_fps_added;
      result_.note("false path: clock " +
                   merged().clock(sdc::ClockId(clock)).name + " through " +
                   std::string(graph_.design().pin_name(PinId(pin))) +
                   " (reaches it in no individual mode)");
    }
  }

  // --- shared propagation helpers --------------------------------------------

  PropagationOptions base_options() const {
    PropagationOptions opts;
    opts.compute_arrivals = false;
    opts.analyze_hold = analyze_hold_;
    return opts;
  }

  /// Run one mode's relationship propagation and fold the (clock-mapped)
  /// relations into `accum`.
  void accumulate_mode_relations(size_t m, const PropagationOptions& opts,
                                 RelationMap& accum) {
    CompiledExceptions& ce = *mode_exceptions_[m];
    Propagator prop(*ctx_.mode_graphs[m], ce);
    prop.run(opts);
    for (const auto& [key, data] : prop.relations()) {
      RelationKey mapped = key;
      if (mapped.launch.valid()) mapped.launch = map().merged_of(m, mapped.launch);
      if (mapped.capture.valid())
        mapped.capture = map().merged_of(m, mapped.capture);
      timing::RelationData& slot = accum[mapped];
      slot.states.merge(data.states);
      slot.hold_states.merge(data.hold_states);
    }
  }

  /// Per-mode relation maps in the merged clock space (parallel). Runs on
  /// the merge session's pool when one is live, else a pass-local pool.
  std::vector<RelationMap> individual_relations(const PropagationOptions& opts) {
    std::vector<RelationMap> partial(ctx_.modes.size());
    std::unique_ptr<ThreadPool> local;
    ThreadPool* pool = ctx_.session ? &ctx_.session->pool() : nullptr;
    if (pool == nullptr) {
      local = std::make_unique<ThreadPool>(
          options_.num_threads == 0 ? 0 : options_.num_threads);
      pool = local.get();
    }
    pool->parallel_for(ctx_.modes.size(), [&](size_t m) {
      accumulate_mode_relations(m, opts, partial[m]);
    });
    return partial;
  }

  /// Per-mode state sets for one key and side (nullptr where absent).
  std::vector<const StateSet*> states_for_key(
      const std::vector<RelationMap>& per_mode, const RelationKey& key,
      int side) const {
    std::vector<const StateSet*> out(per_mode.size(), nullptr);
    for (size_t m = 0; m < per_mode.size(); ++m) {
      const auto it = per_mode[m].find(key);
      if (it != per_mode[m].end()) out[m] = &side_states(it->second, side);
    }
    return out;
  }

  void add_exception(sdc::Exception ex) {
    merged().exceptions().push_back(std::move(ex));
  }

  // --- two-sided key verdicts -------------------------------------------------

  struct SideVerdict {
    Verdict verdict = Verdict::kMatch;
    PathState fix;
    bool merged_untimed = false;
  };
  struct KeyVerdict {
    RelationKey key;
    SideVerdict side[2];
  };

  KeyVerdict classify_key(const std::vector<RelationMap>& indiv,
                          const RelationKey& key,
                          const timing::RelationData& merged_data,
                          const char* pass_name) {
    KeyVerdict kv;
    kv.key = key;
    for (int side = 0; side < num_sides(); ++side) {
      const StateSet& ms = side_states(merged_data, side);
      SideVerdict& sv = kv.side[side];
      sv.merged_untimed = ms.all_untimed();
      sv.verdict = classify(states_for_key(indiv, key, side), ms, &sv.fix);
      if (sv.verdict == Verdict::kOptimism) {
        result_.note(std::string("OPTIMISM at ") + pass_name + " (" +
                     (side == kSetup ? "setup" : "hold") + ") on endpoint " +
                     std::string(graph_.design().pin_name(key.endpoint)));
      }
    }
    return kv;
  }

  GroupFix analyze_group(const std::vector<KeyVerdict>& verdicts,
                         const std::vector<size_t>& idxs, int side) const {
    GroupFix g;
    for (size_t i : idxs) {
      const SideVerdict& sv = verdicts[i].side[side];
      switch (sv.verdict) {
        case Verdict::kFixable:
          g.any_fix = true;
          if (!g.fix_set) {
            g.fix = sv.fix;
            g.fix_set = true;
          } else if (!(g.fix == sv.fix)) {
            g.killable_all = false;
          }
          break;
        case Verdict::kMatch:
          // A match whose merged states are untimed can absorb a false-path
          // fix without changing anything; a *timed* match must not.
          if (!sv.merged_untimed) g.killable_all = false;
          break;
        case Verdict::kAmbiguous:
          g.any_ambiguous = true;
          g.killable_all = false;
          break;
        case Verdict::kOptimism:
          g.killable_all = false;
          break;
      }
    }
    return g;
  }

  /// Emit group fixes for both sides via `builder` (which fills the
  /// anchors of a skeleton exception). Returns per-side "needs descent".
  std::pair<bool, bool> emit_group(
      const std::vector<KeyVerdict>& verdicts, const std::vector<size_t>& idxs,
      const std::function<void(sdc::Exception&)>& builder, size_t& counter) {
    const GroupFix s = analyze_group(verdicts, idxs, kSetup);
    const GroupFix h = analyze_hold_ ? analyze_group(verdicts, idxs, kHold)
                                     : GroupFix{};

    bool emitted_setup = false, emitted_hold = false;
    if (!analyze_hold_) {
      if (s.emit_ok()) {
        sdc::Exception ex = make_fix(s.fix, /*side_mask=*/3);
        builder(ex);
        add_exception(std::move(ex));
        ++counter;
        emitted_setup = true;
      }
    } else if (s.emit_ok() && h.emit_ok() && s.fix == h.fix) {
      // Both sides need the identical fix: unqualified (paper's CSTR form).
      sdc::Exception ex = make_fix(s.fix, /*side_mask=*/3);
      builder(ex);
      add_exception(std::move(ex));
      ++counter;
      emitted_setup = emitted_hold = true;
    } else {
      if (s.emit_ok()) {
        sdc::Exception ex = make_fix(s.fix, /*side_mask=*/1);
        builder(ex);
        add_exception(std::move(ex));
        ++counter;
        emitted_setup = true;
      }
      if (h.emit_ok()) {
        sdc::Exception ex = make_fix(h.fix, /*side_mask=*/2);
        builder(ex);
        add_exception(std::move(ex));
        ++counter;
        emitted_hold = true;
      }
    }
    const bool descend_setup = !emitted_setup && s.unresolved();
    const bool descend_hold =
        analyze_hold_ && !emitted_hold && h.unresolved();
    return {descend_setup, descend_hold};
  }

  // --- pass 0: clock-pair-level comparison -------------------------------------
  //
  // Coarser than the paper's pass 1: if the merged mode times ANY path
  // between launch clock L and capture clock C on a side, but no individual
  // mode times anything at that clock pair, the whole pair is killable with
  // `set_false_path -from [get_clocks L] -to [get_clocks C]` — the only
  // SDC-expressible fix for capture-clock-specific mismatches (a -to
  // anchor cannot intersect a pin with a clock).
  struct PairKey {
    uint32_t launch;
    uint32_t capture;
    friend bool operator<(const PairKey& a, const PairKey& b) {
      return std::tie(a.launch, a.capture) < std::tie(b.launch, b.capture);
    }
  };

  std::set<PairKey> pass0(const std::vector<RelationMap>& indiv,
                          const RelationMap& mrel, int side) {
    std::map<PairKey, bool> merged_timed, indiv_timed;
    for (const auto& [key, data] : mrel) {
      if (!key.launch.valid()) continue;
      merged_timed[{key.launch.value(), key.capture.value()}] |=
          side_states(data, side).any_timed();
    }
    for (const RelationMap& pm : indiv) {
      for (const auto& [key, data] : pm) {
        if (!key.launch.valid()) continue;
        indiv_timed[{key.launch.value(), key.capture.value()}] |=
            side_states(data, side).any_timed();
      }
    }
    std::set<PairKey> fixed;
    for (const auto& [pair, timed] : merged_timed) {
      if (!timed) continue;
      auto it = indiv_timed.find(pair);
      if (it != indiv_timed.end() && it->second) continue;
      fixed.insert(pair);
    }
    return fixed;
  }

  // --- pass 1 -----------------------------------------------------------------

  void pass1() {
    const PropagationOptions opts = base_options();
    const std::vector<RelationMap> indiv = individual_relations(opts);

    ModeGraph merged_mg(graph_, merged());
    CompiledExceptions merged_ce(graph_, merged());
    Propagator mprop(merged_mg, merged_ce);
    mprop.run(opts);
    const RelationMap& mrel = mprop.relations();

    result_.stats.pass1_keys = mrel.size();

    // Pass 0: emit clock-pair-level false paths (unqualified when both
    // sides agree, -setup/-hold otherwise).
    const std::set<PairKey> pair_fixed_setup = pass0(indiv, mrel, kSetup);
    const std::set<PairKey> pair_fixed_hold =
        analyze_hold_ ? pass0(indiv, mrel, kHold) : pair_fixed_setup;
    {
      std::set<PairKey> all = pair_fixed_setup;
      all.insert(pair_fixed_hold.begin(), pair_fixed_hold.end());
      for (const PairKey& pair : all) {
        const bool in_s = pair_fixed_setup.count(pair) > 0;
        const bool in_h = pair_fixed_hold.count(pair) > 0;
        int mask = 3;
        if (analyze_hold_ && in_s != in_h) mask = in_s ? 1 : 2;
        sdc::Exception ex = make_fix(PathState::false_path(), mask);
        ex.from.clocks.push_back(sdc::ClockId(pair.launch));
        ex.to.clocks.push_back(sdc::ClockId(pair.capture));
        add_exception(std::move(ex));
        ++result_.stats.pass0_pair_fixed;
        result_.note("clock-pair false path: " +
                     merged().clock(sdc::ClockId(pair.launch)).name + " -> " +
                     merged().clock(sdc::ClockId(pair.capture)).name);
      }
    }
    auto pair_is_fixed = [&](const RelationKey& key, int side) {
      if (!key.launch.valid()) return false;
      const PairKey pair{key.launch.value(), key.capture.value()};
      return side == kSetup ? pair_fixed_setup.count(pair) > 0
                            : pair_fixed_hold.count(pair) > 0;
    };

    std::vector<KeyVerdict> verdicts;
    std::unordered_map<uint32_t, std::vector<size_t>> by_endpoint;
    for (const auto& [key, data] : mrel) {
      by_endpoint[key.endpoint.value()].push_back(verdicts.size());
      KeyVerdict kv = classify_key(indiv, key, data, "pass 1");
      // Keys whose whole clock pair was false-pathed in pass 0 are handled.
      for (int side = 0; side < num_sides(); ++side) {
        if (kv.side[side].verdict != Verdict::kMatch && pair_is_fixed(key, side)) {
          kv.side[side].verdict = Verdict::kMatch;
          kv.side[side].merged_untimed = true;  // will be, once the pair FP applies
        }
      }
      verdicts.push_back(kv);
    }

    std::set<uint32_t> ambiguous_endpoints;
    for (auto& [ep, idxs] : by_endpoint) {
      // Endpoint-level group (the paper's CSTR1: set_false_path -to rX/D).
      auto [descend_s, descend_h] = emit_group(
          verdicts, idxs,
          [&](sdc::Exception& ex) { ex.to.pins.push_back(PinId(ep)); },
          result_.stats.pass1_mismatch_fixed);
      if (!descend_s && !descend_h) continue;

      // Per (endpoint, launch) groups: -from <clock> -to <endpoint>.
      std::map<uint32_t, std::vector<size_t>> by_launch;
      for (size_t i : idxs)
        by_launch[verdicts[i].key.launch.value()].push_back(i);
      bool still_open = false;
      for (auto& [launch, lidx] : by_launch) {
        if (!sdc::ClockId(launch).valid()) {
          const GroupFix gs = analyze_group(verdicts, lidx, kSetup);
          const GroupFix gh =
              analyze_hold_ ? analyze_group(verdicts, lidx, kHold) : GroupFix{};
          if (gs.unresolved() || gh.unresolved()) still_open = true;
          continue;
        }
        auto [ds, dh] = emit_group(
            verdicts, lidx,
            [&](sdc::Exception& ex) {
              ex.from.clocks.push_back(sdc::ClockId(launch));
              ex.to.pins.push_back(PinId(ep));
            },
            result_.stats.pass1_mismatch_fixed);
        still_open |= ds | dh;
      }
      if (still_open) ambiguous_endpoints.insert(ep);
    }

    // Optimism in the other direction: individual keys with timed states
    // that the merged mode lost entirely.
    for (const RelationMap& pm : indiv) {
      for (const auto& [key, data] : pm) {
        if (!data.states.any_timed() && !data.hold_states.any_timed()) continue;
        if (!mrel.count(key)) {
          result_.note("OPTIMISM: merged mode lost relation at endpoint " +
                       std::string(graph_.design().pin_name(key.endpoint)));
        }
      }
    }

    result_.stats.pass1_ambiguous = ambiguous_endpoints.size();
    for (uint32_t ep : ambiguous_endpoints) {
      pass2_endpoints_.push_back(PinId(ep));
    }
  }

  // --- pass 2 -----------------------------------------------------------------

  void pass2() {
    if (pass2_endpoints_.empty()) return;

    // Rebuild the merged view: pass-1 fixes changed the exception set.
    ModeGraph merged_mg(graph_, merged());
    CompiledExceptions merged_ce(graph_, merged());

    const std::vector<uint8_t> cone =
        Propagator::fanin_cone(merged_mg, pass2_endpoints_);
    std::unordered_set<uint32_t> targets;
    for (PinId ep : pass2_endpoints_) targets.insert(ep.value());

    PropagationOptions opts = base_options();
    opts.track_startpoints = true;
    opts.pin_filter = &cone;

    const std::vector<RelationMap> indiv = individual_relations(opts);

    Propagator mprop(merged_mg, merged_ce);
    mprop.run(opts);

    std::vector<KeyVerdict> verdicts;
    std::map<std::pair<uint32_t, uint32_t>, std::vector<size_t>> by_pair;
    for (const auto& [key, data] : mprop.relations()) {
      if (!targets.count(key.endpoint.value())) continue;
      ++result_.stats.pass2_keys;
      by_pair[{key.endpoint.value(), key.startpoint.value()}].push_back(
          verdicts.size());
      verdicts.push_back(classify_key(indiv, key, data, "pass 2"));
    }

    for (auto& [pair_key, idxs] : by_pair) {
      const PinId endpoint(pair_key.first);
      const PinId startpoint(pair_key.second);

      // Pair-level group (paper's CSTR2: -from rA/CP -to rY/D).
      auto [descend_s, descend_h] = emit_group(
          verdicts, idxs,
          [&](sdc::Exception& ex) {
            ex.from.pins.push_back(startpoint);
            ex.to.pins.push_back(endpoint);
          },
          result_.stats.pass2_mismatch_fixed);
      if (!descend_s && !descend_h) continue;

      // Per-launch groups (the §3.1.10 form).
      std::map<uint32_t, std::vector<size_t>> by_launch;
      for (size_t i : idxs)
        by_launch[verdicts[i].key.launch.value()].push_back(i);
      bool pair_open = false;
      for (auto& [launch, lidx] : by_launch) {
        if (!sdc::ClockId(launch).valid()) {
          const GroupFix gs = analyze_group(verdicts, lidx, kSetup);
          const GroupFix gh =
              analyze_hold_ ? analyze_group(verdicts, lidx, kHold) : GroupFix{};
          if (gs.unresolved() || gh.unresolved()) pair_open = true;
          continue;
        }
        auto [ds, dh] = emit_group(
            verdicts, lidx,
            [&](sdc::Exception& ex) {
              ex.from.clocks.push_back(sdc::ClockId(launch));
              sdc::ExceptionPoint through;
              through.pins.push_back(startpoint);
              ex.throughs.push_back(std::move(through));
              ex.to.pins.push_back(endpoint);
            },
            result_.stats.pass2_mismatch_fixed);
        pair_open |= ds | dh;
      }
      if (pair_open) {
        Pass3Pair p;
        p.startpoint = startpoint;
        p.endpoint = endpoint;
        pass3_pairs_.push_back(p);
      }
    }
    result_.stats.pass2_ambiguous = pass3_pairs_.size();
  }

  // --- pass 3 -----------------------------------------------------------------

  struct Pass3Pair {
    PinId startpoint;
    PinId endpoint;
  };

  /// Walk a concrete path (pin sequence) through an exception set.
  PathState path_state(const CompiledExceptions& ce, const Sdc& sdc,
                       const std::vector<PinId>& path, sdc::ClockId launch,
                       sdc::ClockId capture, bool setup_side) const {
    if (launch.valid() && capture.valid() &&
        (sdc.clocks_exclusive(launch, capture) ||
         sdc.clocks_async(launch, capture))) {
      return PathState::false_path();
    }
    std::vector<uint8_t> progress = ce.initial_progress(path.front(), launch);
    for (size_t i = 1; i < path.size(); ++i) {
      if (!progress.empty()) ce.advance(progress, path[i]);
    }
    return ce.resolve(progress, launch, path.back(), capture, setup_side);
  }

  /// All arc-enabled paths S -> E in the merged view, pruned to E's fan-in
  /// cone, capped at options_.max_enumerated_paths.
  std::vector<std::vector<PinId>> enumerate_paths(const ModeGraph& view,
                                                  PinId start, PinId end,
                                                  bool* overflow) const {
    const std::vector<uint8_t> cone = Propagator::fanin_cone(view, {end});
    std::vector<std::vector<PinId>> paths;
    std::vector<PinId> current{start};

    struct Frame {
      PinId pin;
      size_t next = 0;
    };
    std::vector<Frame> stack{{start, 0}};
    *overflow = false;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.pin == end && stack.size() > 1) {
        paths.push_back(current);
        if (paths.size() >= options_.max_enumerated_paths) {
          *overflow = true;
          return paths;
        }
        stack.pop_back();
        current.pop_back();
        continue;
      }
      const auto& outs = graph_.fanout(frame.pin);
      bool has_launch = false;
      for (ArcId aid : outs) {
        if (graph_.arc(aid).kind == ArcKind::kLaunch) has_launch = true;
      }
      bool descended = false;
      while (frame.next < outs.size()) {
        const ArcId aid = outs[frame.next++];
        if (!view.arc_enabled(aid)) continue;
        const Arc& arc = graph_.arc(aid);
        if (has_launch && arc.kind != ArcKind::kLaunch) continue;
        if (!cone[arc.to.index()]) continue;
        current.push_back(arc.to);
        stack.push_back({arc.to, 0});
        descended = true;
        break;
      }
      if (!descended) {
        stack.pop_back();
        current.pop_back();
      }
    }
    return paths;
  }

  bool path_alive_in_mode(const ModeGraph& mg,
                          const std::vector<PinId>& path) const {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      bool hop = false;
      for (ArcId aid : graph_.fanout(path[i])) {
        if (graph_.arc(aid).to == path[i + 1] && mg.arc_enabled(aid)) {
          hop = true;
          break;
        }
      }
      if (!hop) return false;
    }
    return true;
  }

  /// Mode launches the path's startpoint with this clock?
  bool mode_launches(const ModeGraph& mg, PinId sp, sdc::ClockId clock) const {
    if (graph_.design().pin(sp).is_port()) {
      for (const sdc::PortDelay& pd : mg.sdc().port_delays()) {
        if (pd.is_input && pd.port_pin == sp && pd.clock == clock) return true;
      }
      return false;
    }
    return mg.clock_on(sp, clock);
  }

  bool mode_captures(const ModeGraph& mg, PinId ep, sdc::ClockId clock) const {
    for (const timing::ClockArrival& ca : mg.capture_clocks_at(ep)) {
      if (ca.clock == clock) return true;
    }
    return false;
  }

  /// Merged-mode clock pairs under which paths S->E can be timed.
  std::vector<std::pair<sdc::ClockId, sdc::ClockId>> merged_clock_pairs(
      const ModeGraph& merged_view, PinId startpoint, PinId endpoint) {
    std::vector<sdc::ClockId> launches;
    if (graph_.design().pin(startpoint).is_port()) {
      for (const sdc::PortDelay& pd : merged().port_delays()) {
        if (pd.is_input && pd.port_pin == startpoint) {
          bool seen = false;
          for (sdc::ClockId c : launches) seen |= (c == pd.clock);
          if (!seen) launches.push_back(pd.clock);
        }
      }
    } else {
      for (const timing::ClockArrival& ca : merged_view.clocks_on(startpoint)) {
        launches.push_back(ca.clock);
      }
    }
    std::vector<std::pair<sdc::ClockId, sdc::ClockId>> pairs;
    for (const timing::ClockArrival& cap :
         merged_view.capture_clocks_at(endpoint)) {
      for (sdc::ClockId l : launches) pairs.emplace_back(l, cap.clock);
    }
    return pairs;
  }

  void pass3() {
    if (pass3_pairs_.empty()) return;
    result_.stats.pass3_pairs = pass3_pairs_.size();

    ModeGraph merged_view(graph_, merged());
    CompiledExceptions merged_ce(graph_, merged());

    for (const Pass3Pair& pair : pass3_pairs_) {
      bool overflow = false;
      const auto paths =
          enumerate_paths(merged_view, pair.startpoint, pair.endpoint, &overflow);
      result_.stats.pass3_paths_enumerated += paths.size();
      if (overflow) {
        ++result_.stats.unresolved_pessimism;
        result_.note("pass 3: path enumeration overflow between " +
                     std::string(graph_.design().pin_name(pair.startpoint)) +
                     " and " +
                     std::string(graph_.design().pin_name(pair.endpoint)) +
                     " — keeping extra paths (pessimistic)");
        continue;
      }
      const auto cps =
          merged_clock_pairs(merged_view, pair.startpoint, pair.endpoint);

      std::vector<PathVerdict> verdicts[2];
      verdicts[kSetup] = compute_path_verdicts(pair, paths, cps, merged_ce,
                                               kSetup);
      if (analyze_hold_) {
        verdicts[kHold] =
            compute_path_verdicts(pair, paths, cps, merged_ce, kHold);
      }

      // Phase 1 — paths bad under EVERY clock pair where merged times
      // them. Side-symmetric bad paths get ONE unqualified false path (the
      // paper's CSTR3 form); one-sided ones get -setup / -hold variants.
      const std::vector<uint8_t> fb_s = fully_bad_mask(verdicts[kSetup]);
      const std::vector<uint8_t> fb_h =
          analyze_hold_ ? fully_bad_mask(verdicts[kHold]) : fb_s;
      std::vector<uint8_t> both(paths.size()), only_s(paths.size()),
          only_h(paths.size());
      for (size_t pi = 0; pi < paths.size(); ++pi) {
        both[pi] = fb_s[pi] & fb_h[pi];
        only_s[pi] = fb_s[pi] & !both[pi];
        only_h[pi] = fb_h[pi] & !both[pi];
      }
      emit_fully_bad(pair, paths, both, /*side_mask=*/3);
      if (analyze_hold_) {
        emit_fully_bad(pair, paths, only_s, /*side_mask=*/1);
        emit_fully_bad(pair, paths, only_h, /*side_mask=*/2);
      }

      // Phase 2 — launch-clock-qualified fixes, per side.
      emit_launch_qualified(pair, paths, verdicts[kSetup], fb_s,
                            analyze_hold_ ? 1 : 3);
      if (analyze_hold_) {
        emit_launch_qualified(pair, paths, verdicts[kHold], fb_h, 2);
      }
    }
  }

  /// Per path: the clock pairs under which merged times it on this side,
  /// and the subset under which no individual mode times it ("bad").
  struct PathVerdict {
    std::vector<std::pair<sdc::ClockId, sdc::ClockId>> timed;
    std::vector<std::pair<sdc::ClockId, sdc::ClockId>> bad;
  };

  std::vector<PathVerdict> compute_path_verdicts(
      const Pass3Pair& pair, const std::vector<std::vector<PinId>>& paths,
      const std::vector<std::pair<sdc::ClockId, sdc::ClockId>>& cps,
      const CompiledExceptions& merged_ce, int side) {
    const bool setup_side = (side == kSetup);
    std::vector<PathVerdict> verdicts(paths.size());
    for (const auto& [launch, capture] : cps) {
      for (size_t pi = 0; pi < paths.size(); ++pi) {
        const auto& path = paths[pi];
        const PathState ms =
            path_state(merged_ce, merged(), path, launch, capture, setup_side);
        if (!ms.is_timed()) continue;  // merged already excludes it
        verdicts[pi].timed.emplace_back(launch, capture);
        bool indiv_timed = false;
        for (size_t m = 0; m < ctx_.modes.size() && !indiv_timed; ++m) {
          const sdc::ClockId lm =
              launch.valid() ? map().mode_clock_of(launch, m) : launch;
          const sdc::ClockId cm = map().mode_clock_of(capture, m);
          if ((launch.valid() && !lm.valid()) || !cm.valid()) continue;
          const ModeGraph& mg = *ctx_.mode_graphs[m];
          if (!mode_launches(mg, pair.startpoint, lm)) continue;
          if (!mode_captures(mg, pair.endpoint, cm)) continue;
          if (!path_alive_in_mode(mg, path)) continue;
          const PathState is = path_state(*mode_exceptions_[m], *ctx_.modes[m],
                                          path, lm, cm, setup_side);
          indiv_timed = is.is_timed();
        }
        if (!indiv_timed) verdicts[pi].bad.emplace_back(launch, capture);
      }
    }
    return verdicts;
  }

  static std::vector<uint8_t> fully_bad_mask(
      const std::vector<PathVerdict>& verdicts) {
    std::vector<uint8_t> mask(verdicts.size(), 0);
    for (size_t pi = 0; pi < verdicts.size(); ++pi) {
      const PathVerdict& v = verdicts[pi];
      mask[pi] = !v.timed.empty() && v.bad.size() == v.timed.size();
    }
    return mask;
  }

  /// Emit unqualified-from fixes for the paths in `group`; survivor pins
  /// (paths outside the group) must not be matched by the -throughs.
  void emit_fully_bad(const Pass3Pair& pair,
                      const std::vector<std::vector<PinId>>& paths,
                      const std::vector<uint8_t>& group, int side_mask) {
    std::unordered_set<uint32_t> keep_pins;
    bool any = false;
    for (size_t pi = 0; pi < paths.size(); ++pi) {
      if (group[pi]) {
        any = true;
      } else {
        for (PinId p : paths[pi]) keep_pins.insert(p.value());
      }
    }
    if (!any) return;
    std::vector<uint8_t> covered(paths.size(), 0);
    for (size_t pi = 0; pi < paths.size(); ++pi) {
      if (!group[pi] || covered[pi]) continue;
      sdc::Exception ex = path_fix_skeleton(pair, sdc::ClockId(), side_mask);
      attach_distinguisher(ex, paths, pi, keep_pins, group, covered);
      add_exception(std::move(ex));
      ++result_.stats.pass3_fps_added;
    }
  }

  /// Paths bad only under specific launch clocks: qualify with
  /// -from <clock> -through <startpoint> (the §3.1.10 form). Bad-ness must
  /// cover all captures timed under that launch; capture-specific residuals
  /// are inexpressible and stay pessimistic.
  void emit_launch_qualified(const Pass3Pair& pair,
                             const std::vector<std::vector<PinId>>& paths,
                             const std::vector<PathVerdict>& verdicts,
                             const std::vector<uint8_t>& fully_bad,
                             int side_mask) {
    std::set<uint32_t> launches;
    for (size_t pi = 0; pi < paths.size(); ++pi) {
      if (fully_bad[pi]) continue;
      for (const auto& [l, c] : verdicts[pi].bad) launches.insert(l.value());
    }
    for (uint32_t lv : launches) {
      const sdc::ClockId launch(lv);
      if (!launch.valid()) continue;
      std::vector<uint8_t> bad_for_launch(paths.size(), 0);
      std::unordered_set<uint32_t> keep_pins;
      for (size_t pi = 0; pi < paths.size(); ++pi) {
        if (fully_bad[pi]) continue;
        size_t timed_l = 0, bad_l = 0;
        for (const auto& [l, c] : verdicts[pi].timed) timed_l += (l == launch);
        for (const auto& [l, c] : verdicts[pi].bad) bad_l += (l == launch);
        if (timed_l > 0 && bad_l == timed_l) {
          bad_for_launch[pi] = 1;
        } else {
          for (PinId p : paths[pi]) keep_pins.insert(p.value());
          if (bad_l > 0) {
            // Bad for some captures only: SDC cannot express it.
            ++result_.stats.unresolved_pessimism;
          }
        }
      }
      std::vector<uint8_t> covered(paths.size(), 0);
      for (size_t pi = 0; pi < paths.size(); ++pi) {
        if (!bad_for_launch[pi] || covered[pi]) continue;
        sdc::Exception ex = path_fix_skeleton(pair, launch, side_mask);
        attach_distinguisher(ex, paths, pi, keep_pins, bad_for_launch, covered);
        add_exception(std::move(ex));
        ++result_.stats.pass3_fps_added;
      }
    }
  }

  sdc::Exception path_fix_skeleton(const Pass3Pair& pair, sdc::ClockId launch,
                                   int side_mask) const {
    sdc::Exception ex;
    ex.kind = sdc::ExceptionKind::kFalsePath;
    ex.comment = "mode-merge pass-3 refinement";
    if (side_mask == 1) ex.setup_hold = sdc::SetupHoldFlags::setup_only();
    if (side_mask == 2) ex.setup_hold = sdc::SetupHoldFlags::hold_only();
    if (launch.valid()) {
      ex.from.clocks.push_back(launch);
      sdc::ExceptionPoint sp_through;
      sp_through.pins.push_back(pair.startpoint);
      ex.throughs.push_back(std::move(sp_through));
    } else {
      ex.from.pins.push_back(pair.startpoint);
    }
    ex.to.pins.push_back(pair.endpoint);
    return ex;
  }

  /// Add a -through that isolates paths[index] from the keep set: a single
  /// distinguishing pin if one exists (covers every bad path containing
  /// it), else the exact ordered pin chain (unique in a DAG).
  void attach_distinguisher(sdc::Exception& ex,
                            const std::vector<std::vector<PinId>>& paths,
                            size_t index,
                            const std::unordered_set<uint32_t>& keep_pins,
                            const std::vector<uint8_t>& bad_mask,
                            std::vector<uint8_t>& covered) const {
    const std::vector<PinId>& path = paths[index];
    PinId distinct;
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      if (!keep_pins.count(path[i].value())) {
        distinct = path[i];
        break;
      }
    }
    if (distinct.valid()) {
      // Paper's CSTR3: -from rC/CP -through inv3/A -to rZ/D.
      sdc::ExceptionPoint through;
      through.pins.push_back(distinct);
      ex.throughs.push_back(std::move(through));
      for (size_t pi = index; pi < paths.size(); ++pi) {
        if (!bad_mask[pi]) continue;
        for (PinId p : paths[pi]) {
          if (p == distinct) {
            covered[pi] = 1;
            break;
          }
        }
      }
    } else {
      for (size_t i = 1; i + 1 < path.size(); ++i) {
        sdc::ExceptionPoint through;
        through.pins.push_back(path[i]);
        ex.throughs.push_back(std::move(through));
      }
      covered[index] = 1;
    }
  }

  const RefineContext& ctx_;
  MergeResult& result_;
  const MergeOptions& options_;
  const TimingGraph& graph_;
  const bool analyze_hold_;

  std::vector<std::unique_ptr<CompiledExceptions>> mode_exceptions_;
  std::vector<PinId> pass2_endpoints_;
  std::vector<Pass3Pair> pass3_pairs_;
};

}  // namespace

void refine_data_network(const RefineContext& ctx, MergeResult& result,
                         const MergeOptions& options) {
  DataRefiner(ctx, result, options).run();
}

}  // namespace mm::merge
