#pragma once
// Memoized per-mode relationship extraction for mergeability analysis.
//
// check_mergeable derives the same per-mode data for every pair it
// inspects: canonical clock keys, per-clock constraint windows, exception
// signatures, effective launch-clock key sets. Over an M-mode set the
// pairwise mock merges re-derive each mode's set M-1 times — O(M^2) full
// extractions, the first superlinear wall of the pipeline (paper §2.3).
//
// ModeRelationships is one mode's set, extracted once by a single linear
// scan and fully self-contained (no Sdc pointers), so a cached entry
// outlives the Sdc it came from. RelationshipCache memoizes extraction
// behind a content-hash key — FNV-1a over the mode's written SDC text plus
// the netlist's identity — so repeated analyses (clique-cover rebuilds,
// bench sweeps, server-style re-runs over the same decks) skip extraction
// entirely, and any textual change to the constraints or a different
// netlist invalidates naturally.
//
// When extraction is handed a CanonicalKeyTable (the MergeContext session
// path and the global cache), every key string is also interned and the
// entry carries an interned view — KeyId sets, dense key bitsets, and a
// clock iteration order matching the string-ordered map — which
// check_mergeable's interned path consumes to replace string compares with
// integer compares. All entries in one cache share one table, so their ids
// are mutually comparable.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "merge/keys.h"
#include "merge/types.h"
#include "util/bitset.h"

namespace mm::merge {

/// One mode's relationship set as mergeability analysis consumes it.
struct ModeRelationships {
  /// Per-clock constraint values, pre-resolved with the same
  /// last-matching-entry-wins scan check_mergeable performs on the raw
  /// constraint lists. Indices: latency[source][max_side],
  /// uncertainty[setup], transition[max_side].
  struct ClockInfo {
    std::string key;  // canonical clock key (merge/keys.h)
    KeyId key_id;     // interned key (invalid unless `interned`)
    double latency[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
    bool latency_present[2][2] = {{false, false}, {false, false}};
    double uncertainty[2] = {0.0, 0.0};
    bool uncertainty_present[2] = {false, false};
    double transition[2] = {0.0, 0.0};
    bool transition_present[2] = {false, false};
  };

  struct ExceptionInfo {
    sdc::ExceptionKind kind = sdc::ExceptionKind::kFalsePath;
    double value = 0.0;
    std::string sig_anchor;           // exception_signature(include_value=false)
    std::string sig_full;             // exception_signature(include_value=true)
    std::set<std::string> from_keys;  // effective_from_keys
    // Interned view (invalid/empty unless `interned`):
    KeyId anchor_id;
    KeyId full_id;
    KeySet from_key_ids;
    DynamicBitset from_key_bits;
  };

  std::vector<ClockInfo> clocks;         // index = ClockId.index()
  std::map<std::string, size_t> by_key;  // clock key -> index (first wins)
  std::set<std::string> clock_keys;      // mode_clock_keys
  std::vector<ExceptionInfo> exceptions; // in Sdc order
  std::set<std::string> full_sigs;       // all sig_full values
  std::vector<sdc::DriveConstraint> drives;
  std::vector<sdc::LoadConstraint> loads;

  /// Structural fingerprint of the deck this set was extracted from
  /// (merge/corner.h): the skeleton identity corner decks are matched
  /// against before a value-only delta fill may reuse this entry's interned
  /// structure.
  uint64_t structure_fp = 0;

  /// Interned view, filled when extraction ran with a CanonicalKeyTable.
  /// Ids are only comparable against entries interned in the same table.
  bool interned = false;
  /// Clock indices in canonical-key string order (= by_key iteration
  /// order), so the interned pre-screen visits clocks in exactly the order
  /// the string path does and returns the same first conflict.
  std::vector<uint32_t> clock_order;
  std::unordered_map<uint32_t, uint32_t> by_key_id;  // key id -> clock index
  KeySet clock_key_ids;                              // sorted mode clock keys
  DynamicBitset clock_key_bits;
  std::unordered_set<uint32_t> full_sig_ids;
};

/// Extract a mode's relationship set (one linear scan over the Sdc). With a
/// table, also fills the interned view.
ModeRelationships extract_relationships(const Sdc& sdc,
                                        CanonicalKeyTable* table = nullptr);

/// Content-addressed, thread-safe memoization of extract_relationships.
class RelationshipCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Corner entries produced by the value-only delta fill (skeleton
    /// structure reused) vs corner decks whose structure diverged from
    /// their skeleton and fell back to full extraction.
    uint64_t delta_fills = 0;
    uint64_t skeleton_mismatches = 0;
  };

  /// `max_entries` bounds memory; exceeding it evicts the whole table
  /// (entries are cheap to rebuild and eviction is rare at real mode
  /// counts). Without a table, entries carry the string view only.
  explicit RelationshipCache(size_t max_entries = 4096);

  /// Bind the cache to a key table: every extracted entry also carries the
  /// interned view, with ids drawn from `table` (which must outlive the
  /// cache). nullptr behaves like the table-less constructor.
  explicit RelationshipCache(CanonicalKeyTable* table,
                             size_t max_entries = 4096);

  /// Extract-or-reuse. Thread-safe: concurrent misses on the same key both
  /// extract and the first insert wins. Increments the
  /// merge/relationship_cache_{hits,misses} counters.
  std::shared_ptr<const ModeRelationships> get(const Sdc& sdc);

  /// Corner entry: extract-or-delta-fill. `skeleton` is the mode's primary
  /// corner entry (from get()). When `corner_sdc`'s structural fingerprint
  /// (merge/corner.h) matches the skeleton's, the entry is built by copying
  /// the skeleton — canonical keys, signatures, interned ids, bitsets — and
  /// re-scanning only the corner deck's value tables (clock
  /// latency/uncertainty/transition, drives, loads): a value-only fill that
  /// skips every key derivation and intern. The result is value-identical
  /// to extract_relationships(corner_sdc) — asserted by fuzz P8 — so
  /// skeleton sharing can never change a verdict. Structure mismatches
  /// (counted merge/relationship_cache_skeleton_mismatches) fall back to
  /// full extraction. Memoized under the same content key as get().
  std::shared_ptr<const ModeRelationships> get_corner(
      const Sdc& corner_sdc, const ModeRelationships& skeleton);

  /// The key get() uses: FNV-1a of write_sdc(sdc) mixed with the design's
  /// structural identity — name, pin/port/net/instance counts, and every
  /// port name — so two distinct designs never alias an entry just because
  /// their name and pin count agree. Exposed so tests can assert
  /// invalidation.
  static uint64_t content_key(const Sdc& sdc);

  /// Drop the entry for this mode's current content, if present. Used by
  /// MergeSession::update_mode so a long-lived session does not accumulate
  /// entries for constraint decks nothing can reach anymore. (Content
  /// addressing already prevents *stale hits*; this bounds growth.)
  void invalidate(const Sdc& sdc);

  void clear();
  size_t size() const;
  Stats stats() const;

  /// The key table entries are interned into (nullptr if none).
  CanonicalKeyTable* table() const { return table_; }

  /// Process-wide cache used by MergeabilityGraph by default; bound to
  /// CanonicalKeyTable::global().
  static RelationshipCache& global();

 private:
  const size_t max_entries_;
  CanonicalKeyTable* const table_ = nullptr;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<const ModeRelationships>> map_;
  Stats stats_;
};

}  // namespace mm::merge
