#pragma once
// Memoized per-mode relationship extraction for mergeability analysis.
//
// check_mergeable derives the same per-mode data for every pair it
// inspects: canonical clock keys, per-clock constraint windows, exception
// signatures, effective launch-clock key sets. Over an M-mode set the
// pairwise mock merges re-derive each mode's set M-1 times — O(M^2) full
// extractions, the first superlinear wall of the pipeline (paper §2.3).
//
// ModeRelationships is one mode's set, extracted once by a single linear
// scan and fully self-contained (no Sdc pointers), so a cached entry
// outlives the Sdc it came from. RelationshipCache memoizes extraction
// behind a content-hash key — FNV-1a over the mode's written SDC text plus
// the netlist's identity — so repeated analyses (clique-cover rebuilds,
// bench sweeps, server-style re-runs over the same decks) skip extraction
// entirely, and any textual change to the constraints or a different
// netlist invalidates naturally.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "merge/types.h"

namespace mm::merge {

/// One mode's relationship set as mergeability analysis consumes it.
struct ModeRelationships {
  /// Per-clock constraint values, pre-resolved with the same
  /// last-matching-entry-wins scan check_mergeable performs on the raw
  /// constraint lists. Indices: latency[source][max_side],
  /// uncertainty[setup], transition[max_side].
  struct ClockInfo {
    std::string key;  // canonical clock key (merge/keys.h)
    double latency[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
    bool latency_present[2][2] = {{false, false}, {false, false}};
    double uncertainty[2] = {0.0, 0.0};
    bool uncertainty_present[2] = {false, false};
    double transition[2] = {0.0, 0.0};
    bool transition_present[2] = {false, false};
  };

  struct ExceptionInfo {
    sdc::ExceptionKind kind = sdc::ExceptionKind::kFalsePath;
    double value = 0.0;
    std::string sig_anchor;           // exception_signature(include_value=false)
    std::string sig_full;             // exception_signature(include_value=true)
    std::set<std::string> from_keys;  // effective_from_keys
  };

  std::vector<ClockInfo> clocks;         // index = ClockId.index()
  std::map<std::string, size_t> by_key;  // clock key -> index (first wins)
  std::set<std::string> clock_keys;      // mode_clock_keys
  std::vector<ExceptionInfo> exceptions; // in Sdc order
  std::set<std::string> full_sigs;       // all sig_full values
  std::vector<sdc::DriveConstraint> drives;
  std::vector<sdc::LoadConstraint> loads;
};

/// Extract a mode's relationship set (one linear scan over the Sdc).
ModeRelationships extract_relationships(const Sdc& sdc);

/// Content-addressed, thread-safe memoization of extract_relationships.
class RelationshipCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// `max_entries` bounds memory; exceeding it evicts the whole table
  /// (entries are cheap to rebuild and eviction is rare at real mode
  /// counts).
  explicit RelationshipCache(size_t max_entries = 4096);

  /// Extract-or-reuse. Thread-safe: concurrent misses on the same key both
  /// extract and the first insert wins. Increments the
  /// merge/relationship_cache_{hits,misses} counters.
  std::shared_ptr<const ModeRelationships> get(const Sdc& sdc);

  /// The key get() uses: FNV-1a of write_sdc(sdc) mixed with the design's
  /// name and pin count. Exposed so tests can assert invalidation.
  static uint64_t content_key(const Sdc& sdc);

  void clear();
  size_t size() const;
  Stats stats() const;

  /// Process-wide cache used by MergeabilityGraph by default.
  static RelationshipCache& global();

 private:
  const size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<const ModeRelationships>> map_;
  Stats stats_;
};

}  // namespace mm::merge
