#pragma once
// Clock refinement (paper §3.1.8) plus the disable-timing inference shown
// in Constraint Set 3:
//
//  1. For every pin that carried a set_case_analysis in at least one
//     individual mode, is constant in ALL individual modes, but is not
//     constant in the merged mode (its case values conflicted and were
//     dropped): add set_disable_timing — the pin "never changes in any of
//     the individual modes".
//
//  2. Simulate the merged mode's clock-network propagation; wherever a
//     merged clock would reach a pin that its mapped-back clock reaches in
//     NO individual mode, add set_clock_sense -stop_propagation for that
//     clock at that pin (the propagation frontier), so the merged clock
//     network matches the union of the individual ones exactly.

#include "merge/refine_context.h"

namespace mm::merge {

void refine_clock_network(const RefineContext& ctx, MergeResult& result,
                          const MergeOptions& options);

}  // namespace mm::merge
