#pragma once
// Merge policies: how much constraint-value disagreement a merge may paper
// over, and at what quantified timing cost (docs/POLICIES.md).
//
// The paper merges modes only when constraint values agree within the
// relative `value_tolerance` (§3.1.2). A MergePolicy generalizes that into
// a parameterized accept rule in the spirit of convex zone merging — merge
// whenever the union is exact *or provably safe*:
//
//   exact     today's behavior. Windows are all zero, every comparison
//             falls through to within_tolerance, and the merged output is
//             byte-identical to a build without this header.
//   windowed  per-field absolute pessimism budgets. A mergeability
//             comparison that fails within_tolerance is still accepted
//             when |a - b| fits the field's window; the merged deck then
//             takes the worst-case envelope (max uncertainty, min/max
//             latency and transition span, max drive/load), so the result
//             is conservative by construction — pessimistic by at most a
//             bounded amount, never optimistic.
//
// A zero-width window is exactly the exact policy: within_tolerance already
// grants an absolute 1e-12 slop, so any comparison it rejects has
// |a - b| > 1e-12 and cannot fit a zero window either.

#include <cmath>
#include <cstdint>
#include <string>

namespace mm::merge {

enum class PolicyLevel : uint8_t {
  kExact = 0,
  kWindowed = 1,
};

/// Accept `a` vs `b` under an absolute pessimism window (same 1e-12
/// absolute slop as within_tolerance, so window boundaries behave like
/// tolerance boundaries).
inline bool within_window(double a, double b, double window) {
  return std::fabs(a - b) <= window + 1e-12;
}

struct MergePolicy {
  PolicyLevel level = PolicyLevel::kExact;

  // Per-field absolute windows (constraint-value units), consulted only
  // when level == kWindowed.
  double window_latency = 0.0;      // set_clock_latency, per source/flavour
  double window_uncertainty = 0.0;  // set_clock_uncertainty, per setup/hold
  double window_transition = 0.0;   // set_clock_transition, per flavour
  double window_drive_load = 0.0;   // set_driving_cell/set_drive/
                                    // set_input_transition/set_load values

  bool windowed() const { return level == PolicyLevel::kWindowed; }
  const char* name() const { return windowed() ? "windowed" : "exact"; }

  static MergePolicy exact() { return {}; }
  /// One window width for every field — the common sweep axis.
  static MergePolicy uniform(double window) {
    MergePolicy p;
    p.level = PolicyLevel::kWindowed;
    p.window_latency = p.window_uncertainty = p.window_transition =
        p.window_drive_load = window;
    return p;
  }

  /// Upper bound on the per-endpoint setup-slack pessimism the windowed
  /// envelope can introduce relative to the worst individual mode
  /// (docs/POLICIES.md "never-optimistic" sketch):
  ///   - latency: the envelope shifts launch and capture arrivals by at
  ///     most window_latency each (they cancel on same-clock paths);
  ///   - uncertainty: the max envelope tightens the required time by at
  ///     most window_uncertainty;
  ///   - transition / drive / load: a slew or load raised by at most the
  ///     window perturbs path delay through the delay calculator's gain,
  ///     bounded by kSlewDelayGain for the wire-load model in
  ///     timing/delay_calc.cpp (per-stage slew decay 0.55 keeps the
  ///     amplification geometric; 8x is a generous ceiling).
  static constexpr double kSlewDelayGain = 8.0;
  double pessimism_bound() const {
    if (!windowed()) return 0.0;
    return 2.0 * window_latency + window_uncertainty +
           kSlewDelayGain * (window_transition + window_drive_load);
  }

  /// Stable content fingerprint (FNV-1a over level + window bit patterns).
  /// 0 for the exact policy — pair-verdict caches key on it so sessions
  /// with different policies never alias (merge/session.h).
  uint64_t fingerprint() const {
    if (!windowed()) return 0;
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    mix(static_cast<uint64_t>(level));
    auto bits = [](double d) {
      uint64_t u;
      static_assert(sizeof u == sizeof d);
      __builtin_memcpy(&u, &d, sizeof u);
      return u;
    };
    mix(bits(window_latency));
    mix(bits(window_uncertainty));
    mix(bits(window_transition));
    mix(bits(window_drive_load));
    return h != 0 ? h : 1;  // reserve 0 for exact
  }

  friend bool operator==(const MergePolicy&, const MergePolicy&) = default;
};

/// Parse a policy level name ("exact" | "windowed") — the --merge-policy
/// CLI value. Returns false on an unknown name.
inline bool parse_policy_level(const std::string& name, PolicyLevel* out) {
  if (name == "exact") {
    *out = PolicyLevel::kExact;
    return true;
  }
  if (name == "windowed") {
    *out = PolicyLevel::kWindowed;
    return true;
  }
  return false;
}

}  // namespace mm::merge
