#include "merge/relationship_cache.h"

#include <algorithm>

#include "merge/corner.h"
#include "merge/keys.h"
#include "obs/obs.h"
#include "sdc/writer.h"

namespace mm::merge {

namespace {

uint64_t fnv1a(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t fnv1a(uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

/// The per-corner value tables: reset and re-fill every clock constraint
/// window from the deck's raw lists (forward iteration with overwrite ==
/// last-matching-entry-wins). Shared by full extraction and the corner
/// delta fill so both produce bit-identical value tables.
void fill_clock_values(ModeRelationships& out, const Sdc& sdc) {
  for (ModeRelationships::ClockInfo& c : out.clocks) {
    for (size_t src = 0; src < 2; ++src) {
      for (size_t side = 0; side < 2; ++side) {
        c.latency[src][side] = 0.0;
        c.latency_present[src][side] = false;
      }
    }
    for (size_t i = 0; i < 2; ++i) {
      c.uncertainty[i] = 0.0;
      c.uncertainty_present[i] = false;
      c.transition[i] = 0.0;
      c.transition_present[i] = false;
    }
  }
  for (const sdc::ClockLatency& lat : sdc.clock_latencies()) {
    ModeRelationships::ClockInfo& c = out.clocks[lat.clock.index()];
    const size_t src = lat.source ? 1 : 0;
    if (lat.minmax.min) {
      c.latency[src][0] = lat.value;
      c.latency_present[src][0] = true;
    }
    if (lat.minmax.max) {
      c.latency[src][1] = lat.value;
      c.latency_present[src][1] = true;
    }
  }
  for (const sdc::ClockUncertainty& unc : sdc.clock_uncertainties()) {
    ModeRelationships::ClockInfo& c = out.clocks[unc.clock.index()];
    if (unc.setup_hold.hold) {
      c.uncertainty[0] = unc.value;
      c.uncertainty_present[0] = true;
    }
    if (unc.setup_hold.setup) {
      c.uncertainty[1] = unc.value;
      c.uncertainty_present[1] = true;
    }
  }
  for (const sdc::ClockTransition& tr : sdc.clock_transitions()) {
    ModeRelationships::ClockInfo& c = out.clocks[tr.clock.index()];
    if (tr.minmax.min) {
      c.transition[0] = tr.value;
      c.transition_present[0] = true;
    }
    if (tr.minmax.max) {
      c.transition[1] = tr.value;
      c.transition_present[1] = true;
    }
  }
}

}  // namespace

ModeRelationships extract_relationships(const Sdc& sdc,
                                        CanonicalKeyTable* table) {
  MM_SPAN_HOT("merge/relationship_extract");
  ModeRelationships out;

  out.structure_fp = structural_fingerprint(sdc);

  // Clocks: canonical keys plus constraint windows. The shared value fill
  // reproduces check_mergeable's last-matching-entry-wins scans.
  out.clocks.resize(sdc.num_clocks());
  for (size_t i = 0; i < sdc.num_clocks(); ++i) {
    out.clocks[i].key = clock_key(sdc, ClockId(i));
    out.by_key.emplace(out.clocks[i].key, i);
    out.clock_keys.insert(out.clocks[i].key);
  }
  fill_clock_values(out, sdc);

  // Exceptions: both signature flavors + effective launch-clock keys.
  out.exceptions.reserve(sdc.exceptions().size());
  for (const sdc::Exception& ex : sdc.exceptions()) {
    ModeRelationships::ExceptionInfo info;
    info.kind = ex.kind;
    info.value = ex.value;
    info.sig_anchor = exception_signature(sdc, ex, /*include_value=*/false);
    info.sig_full = exception_signature(sdc, ex, /*include_value=*/true);
    info.from_keys = effective_from_keys(sdc, ex);
    out.full_sigs.insert(info.sig_full);
    out.exceptions.push_back(std::move(info));
  }

  out.drives = sdc.drives();
  out.loads = sdc.loads();

  // Interned view: every key string above, interned into the session table.
  // Ids are assigned by the table, so entries interned into the same table
  // compare by integer; the string fields stay authoritative.
  if (table != nullptr) {
    for (size_t i = 0; i < out.clocks.size(); ++i) {
      out.clocks[i].key_id = table->intern(out.clocks[i].key);
      // First-wins per key id == first-wins per key string (same bijection).
      out.by_key_id.emplace(out.clocks[i].key_id.id(),
                            static_cast<uint32_t>(i));
      out.clock_key_ids.push_back(out.clocks[i].key_id);
    }
    // by_key iterates in key-string order; recording that order lets the
    // interned pre-screen report the same first conflict as the string path.
    out.clock_order.reserve(out.by_key.size());
    for (const auto& [key, index] : out.by_key) {
      out.clock_order.push_back(static_cast<uint32_t>(index));
    }
    std::sort(out.clock_key_ids.begin(), out.clock_key_ids.end());
    out.clock_key_ids.erase(
        std::unique(out.clock_key_ids.begin(), out.clock_key_ids.end()),
        out.clock_key_ids.end());
    out.clock_key_bits = keyset_bits(out.clock_key_ids);

    for (ModeRelationships::ExceptionInfo& info : out.exceptions) {
      info.anchor_id = table->intern(info.sig_anchor);
      info.full_id = table->intern(info.sig_full);
      info.from_key_ids.reserve(info.from_keys.size());
      for (const std::string& k : info.from_keys) {
        info.from_key_ids.push_back(table->intern(k));
      }
      std::sort(info.from_key_ids.begin(), info.from_key_ids.end());
      info.from_key_bits = keyset_bits(info.from_key_ids);
      out.full_sig_ids.insert(info.full_id.id());
    }
    out.interned = true;
  }
  return out;
}

RelationshipCache::RelationshipCache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

RelationshipCache::RelationshipCache(CanonicalKeyTable* table,
                                     size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries), table_(table) {}

uint64_t RelationshipCache::content_key(const Sdc& sdc) {
  uint64_t h = 14695981039346656037ull;
  h = fnv1a(h, sdc::write_sdc(sdc));
  // Netlist identity: extraction output depends on the design the SDC was
  // parsed against (clock keys and signatures embed port/pin names, query
  // expansion follows connectivity). Counts alone are too weak — two
  // different blocks can agree on name and pin count — so fold in every
  // port name as well.
  const netlist::Design& design = sdc.design();
  h = fnv1a(h, design.name());
  const uint64_t shape[] = {design.num_pins(), design.num_ports(),
                            design.num_nets(), design.num_instances()};
  h = fnv1a(h, reinterpret_cast<const char*>(shape), sizeof(shape));
  for (size_t p = 0; p < design.num_ports(); ++p) {
    const std::string_view name = design.port_name(netlist::PortId(p));
    h = fnv1a(h, name.data(), name.size());
  }
  return h;
}

void RelationshipCache::invalidate(const Sdc& sdc) {
  const uint64_t key = content_key(sdc);
  std::lock_guard<std::mutex> lock(mutex_);
  map_.erase(key);
}

std::shared_ptr<const ModeRelationships> RelationshipCache::get(
    const Sdc& sdc) {
  const uint64_t key = content_key(sdc);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      MM_COUNT("merge/relationship_cache_hits", 1);
      return it->second;
    }
  }

  // Extract outside the lock; a concurrent miss on the same key extracts
  // twice and the first insert wins.
  auto rels = std::make_shared<const ModeRelationships>(
      extract_relationships(sdc, table_));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  MM_COUNT("merge/relationship_cache_misses", 1);
  if (map_.size() >= max_entries_ && !map_.count(key)) {
    stats_.evictions += map_.size();
    map_.clear();
  }
  auto [it, inserted] = map_.emplace(key, std::move(rels));
  return it->second;
}

std::shared_ptr<const ModeRelationships> RelationshipCache::get_corner(
    const Sdc& corner_sdc, const ModeRelationships& skeleton) {
  const uint64_t key = content_key(corner_sdc);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      MM_COUNT("merge/relationship_cache_hits", 1);
      return it->second;
    }
  }

  std::shared_ptr<const ModeRelationships> rels;
  if (structural_fingerprint(corner_sdc) == skeleton.structure_fp) {
    // Value-only delta fill: the skeleton's canonical keys, signatures and
    // interned view are valid verbatim for this corner (equal fingerprints
    // on the same design imply equal key derivations), so only the value
    // tables are re-scanned — no string building, no interning.
    MM_SPAN_HOT("merge/relationship_delta_fill");
    auto filled = std::make_shared<ModeRelationships>(skeleton);
    fill_clock_values(*filled, corner_sdc);
    filled->drives = corner_sdc.drives();
    filled->loads = corner_sdc.loads();
    rels = std::move(filled);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.delta_fills;
    MM_COUNT("merge/relationship_cache_delta_fills", 1);
  } else {
    // The corner deck's structure diverged from its mode's skeleton (extra
    // clock, edited exception, reshaped drive list): full extraction.
    rels = std::make_shared<const ModeRelationships>(
        extract_relationships(corner_sdc, table_));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.skeleton_mismatches;
    MM_COUNT("merge/relationship_cache_skeleton_mismatches", 1);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  MM_COUNT("merge/relationship_cache_misses", 1);
  if (map_.size() >= max_entries_ && !map_.count(key)) {
    stats_.evictions += map_.size();
    map_.clear();
  }
  auto [it, inserted] = map_.emplace(key, std::move(rels));
  return it->second;
}

void RelationshipCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
}

size_t RelationshipCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

RelationshipCache::Stats RelationshipCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

RelationshipCache& RelationshipCache::global() {
  static RelationshipCache cache(&CanonicalKeyTable::global());
  return cache;
}

}  // namespace mm::merge
