#include "merge/preliminary.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "merge/context.h"
#include "merge/keys.h"
#include "merge/relationship_cache.h"
#include "obs/obs.h"
#include "util/timer.h"

namespace mm::merge {

void ClockMap::register_clock(size_t mode, ClockId mode_clock, ClockId merged,
                              size_t total_modes) {
  if (to_merged.size() <= mode) to_merged.resize(total_modes);
  auto& fwd = to_merged[mode];
  if (fwd.size() <= mode_clock.index()) fwd.resize(mode_clock.index() + 1);
  fwd[mode_clock.index()] = merged;

  if (from_merged.size() <= merged.index()) {
    from_merged.resize(merged.index() + 1,
                       std::vector<ClockId>(total_modes, ClockId()));
  }
  from_merged[merged.index()][mode] = mode_clock;
}

namespace {

bool within_tolerance(double a, double b, double rel_tol) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) <= rel_tol * scale + 1e-12;
}

class PreliminaryMerger {
 public:
  PreliminaryMerger(const std::vector<const Sdc*>& modes, MergeContext& ctx)
      : modes_(modes), ctx_(ctx), options_(ctx.options()) {
    MM_ASSERT_MSG(!modes.empty(), "preliminary_merge needs >= 1 mode");
    design_ = &modes[0]->design();
    for (const Sdc* m : modes) {
      MM_ASSERT_MSG(&m->design() == design_, "modes target different designs");
    }
    result_.merged = std::make_unique<Sdc>(design_);
    // Reuse the per-mode extraction the mergeability pass cached (or pay
    // for it exactly once now); the interned path below consumes the
    // KeyIds these entries carry.
    if (options_.use_interned_keys) {
      rels_.reserve(modes_.size());
      for (const Sdc* m : modes_) rels_.push_back(ctx_.relationships(*m));
      interned_ = true;
      for (const auto& r : rels_) interned_ = interned_ && r->interned;
    }
  }

  MergeResult run() {
    Stopwatch timer;
    merge_clocks();
    merge_clock_constraints();
    merge_port_delays();
    merge_case_analysis();
    merge_disables();
    merge_drive_load();
    merge_clock_exclusivity();
    merge_exceptions();
    result_.stats.preliminary_seconds = timer.elapsed_seconds();
    return std::move(result_);
  }

 private:
  Sdc& merged() { return *result_.merged; }

  // --- §3.1.1 union of clocks ---------------------------------------------

  void merge_clocks() {
    // Clock identity lookups: canonical-key string map (reference path) or
    // interned-id hash map. Both are lookup-only — merged-clock order is
    // insertion order either way, so output is byte-identical across paths.
    std::map<std::string, ClockId> merged_by_key;
    std::unordered_map<uint32_t, ClockId> merged_by_id;
    for (size_t m = 0; m < modes_.size(); ++m) {
      const Sdc& sdc = *modes_[m];
      for (size_t ci = 0; ci < sdc.num_clocks(); ++ci) {
        const ClockId mode_clock(ci);
        std::string key;
        KeyId key_id;
        ClockId existing;
        if (interned_) {
          key_id = rels_[m]->clocks[ci].key_id;
          auto it = merged_by_id.find(key_id.id());
          if (it != merged_by_id.end()) existing = it->second;
        } else {
          key = clock_key(sdc, mode_clock);
          auto it = merged_by_key.find(key);
          if (it != merged_by_key.end()) existing = it->second;
        }
        if (existing.valid()) {
          // Duplicate clock (same sources + waveform): reuse.
          result_.clock_map.register_clock(m, mode_clock, existing,
                                           modes_.size());
          ++result_.stats.clocks_deduped;
          continue;
        }
        sdc::Clock clock = sdc.clock(mode_clock);
        clock.add = true;  // merged clocks coexist on their sources
        // Resolve name collisions by unique suffixing (paper: clkB -> clkB_1).
        if (merged().find_clock(clock.name).valid()) {
          std::string base = clock.name;
          int suffix = 1;
          while (merged().find_clock(base + "_" + std::to_string(suffix)).valid()) {
            ++suffix;
          }
          clock.name = base + "_" + std::to_string(suffix);
          result_.note("renamed clock " + base + " of mode " +
                       std::to_string(m) + " to " + clock.name);
          ++result_.stats.clocks_renamed;
        }
        const ClockId merged_id = merged().add_clock(std::move(clock));
        if (interned_) {
          merged_by_id.emplace(key_id.id(), merged_id);
        } else {
          merged_by_key.emplace(key, merged_id);
        }
        result_.clock_map.register_clock(m, mode_clock, merged_id,
                                         modes_.size());
        ++result_.stats.clocks_union;
      }
      // Ensure the map row exists even for clock-less modes.
      if (result_.clock_map.to_merged.size() <= m) {
        result_.clock_map.to_merged.resize(modes_.size());
      }
    }
    // Generated clocks: rewrite master_clock names into the merged space.
    for (size_t ci = 0; ci < merged().num_clocks(); ++ci) {
      sdc::Clock& clock = merged().clock_mutable(ClockId(ci));
      if (!clock.is_generated || clock.master_clock.empty()) continue;
      if (merged().find_clock(clock.master_clock).valid()) continue;
      // The master's name changed during dedup/rename: find the mode that
      // contributed this clock and map its master.
      for (size_t m = 0; m < modes_.size(); ++m) {
        if (!result_.clock_map.exists_in(ClockId(ci), m)) continue;
        const Sdc& sdc = *modes_[m];
        const ClockId master = sdc.find_clock(clock.master_clock);
        if (master.valid()) {
          const ClockId mapped = result_.clock_map.merged_of(m, master);
          if (mapped.valid()) clock.master_clock = merged().clock(mapped).name;
          break;
        }
      }
    }
    // Propagated flag: a merged clock is propagated if any contributor is.
    for (size_t ci = 0; ci < merged().num_clocks(); ++ci) {
      bool propagated = false;
      for (size_t m = 0; m < modes_.size(); ++m) {
        const ClockId mc = result_.clock_map.mode_clock_of(ClockId(ci), m);
        if (mc.valid() && modes_[m]->clock(mc).propagated) propagated = true;
      }
      merged().clock_mutable(ClockId(ci)).propagated = propagated;
    }
  }

  // --- §3.1.2 clock-based constraints ---------------------------------------

  void merge_clock_constraints() {
    for (size_t ci = 0; ci < merged().num_clocks(); ++ci) {
      const ClockId mc(ci);
      merge_latency(mc, /*source=*/false);
      merge_latency(mc, /*source=*/true);
      merge_uncertainty(mc, /*setup=*/true);
      merge_uncertainty(mc, /*setup=*/false);
      merge_transition(mc, /*max_side=*/true);
      merge_transition(mc, /*max_side=*/false);
    }
  }

  /// Generic min/max flavour merge of a clock-scalar constraint: present in
  /// every contributing mode and within tolerance -> min of mins / max of
  /// maxes (paper: "we pick the minimum of min values and maximum of max
  /// values").
  struct Flavour {
    bool present_everywhere = true;
    bool present_anywhere = false;
    double min_value = 1e300;
    double max_value = -1e300;
    bool within = true;
  };

  /// Windowed-policy envelope acceptance for a collected flavour: the whole
  /// value span fits the field's window, so emitting the span edge
  /// (min-of-mins / max-of-maxes — the same formula the in-tolerance path
  /// uses) is pessimistic by at most the window. Always false under the
  /// exact policy, keeping that path byte-identical.
  bool window_accepts(const Flavour& f, double window) const {
    return options_.policy.windowed() &&
           within_window(f.min_value, f.max_value, window);
  }

  template <class Getter>
  Flavour collect(ClockId merged_clock, Getter getter) {
    Flavour f;
    for (size_t m = 0; m < modes_.size(); ++m) {
      const ClockId mc = result_.clock_map.mode_clock_of(merged_clock, m);
      if (!mc.valid()) continue;  // clock absent in this mode: not counted
      bool present = false;
      const double v = getter(*modes_[m], mc, present);
      if (!present) {
        f.present_everywhere = false;
        continue;
      }
      if (f.present_anywhere &&
          (!within_tolerance(v, f.min_value, options_.value_tolerance) ||
           !within_tolerance(v, f.max_value, options_.value_tolerance))) {
        f.within = false;
      }
      f.present_anywhere = true;
      f.min_value = std::min(f.min_value, v);
      f.max_value = std::max(f.max_value, v);
    }
    return f;
  }

  void merge_latency(ClockId mc, bool source) {
    for (bool max_side : {false, true}) {
      const Flavour f = collect(mc, [&](const Sdc& sdc, ClockId c, bool& present) {
        double v = 0.0;
        present = false;
        for (const sdc::ClockLatency& lat : sdc.clock_latencies()) {
          if (lat.clock != c || lat.source != source) continue;
          if (max_side ? !lat.minmax.max : !lat.minmax.min) continue;
          v = lat.value;
          present = true;
        }
        return v;
      });
      if (!f.present_anywhere) continue;
      const bool enveloped =
          !f.within && f.present_everywhere &&
          window_accepts(f, options_.policy.window_latency);
      if (!f.present_everywhere || (!f.within && !enveloped)) {
        result_.note("dropped clock latency on " + merged().clock(mc).name +
                     (f.within ? " (not common to all modes)"
                               : " (values out of tolerance)"));
        ++result_.stats.clock_constraints_dropped;
        continue;
      }
      if (enveloped) {
        result_.note("clock latency on " + merged().clock(mc).name +
                     ": kept worst-case envelope (windowed policy)");
      }
      sdc::ClockLatency lat;
      lat.clock = mc;
      lat.source = source;
      lat.minmax = max_side ? sdc::MinMaxFlags::max_only()
                            : sdc::MinMaxFlags::min_only();
      lat.value = max_side ? f.max_value : f.min_value;
      merged().clock_latencies().push_back(lat);
      ++result_.stats.clock_constraints_merged;
    }
  }

  void merge_uncertainty(ClockId mc, bool setup) {
    const Flavour f = collect(mc, [&](const Sdc& sdc, ClockId c, bool& present) {
      double v = 0.0;
      present = false;
      for (const sdc::ClockUncertainty& unc : sdc.clock_uncertainties()) {
        if (unc.clock != c) continue;
        if (setup ? !unc.setup_hold.setup : !unc.setup_hold.hold) continue;
        v = unc.value;
        present = true;
      }
      return v;
    });
    if (!f.present_anywhere) return;
    if (!f.present_everywhere || !f.within) {
      // Pessimistic-safe fallback for uncertainty: take the max.
      if (!f.within && window_accepts(f, options_.policy.window_uncertainty)) {
        result_.note("uncertainty on " + merged().clock(mc).name +
                     ": kept max over modes (windowed envelope)");
      } else if (f.within || options_.value_tolerance > 0) {
        result_.note("uncertainty on " + merged().clock(mc).name +
                     ": kept max over modes (pessimistic)");
      }
    }
    sdc::ClockUncertainty unc;
    unc.clock = mc;
    unc.setup_hold = setup ? sdc::SetupHoldFlags::setup_only()
                           : sdc::SetupHoldFlags::hold_only();
    unc.value = f.max_value;  // uncertainty: larger is pessimistic-safe
    merged().clock_uncertainties().push_back(unc);
    ++result_.stats.clock_constraints_merged;
  }

  void merge_transition(ClockId mc, bool max_side) {
    const Flavour f = collect(mc, [&](const Sdc& sdc, ClockId c, bool& present) {
      double v = 0.0;
      present = false;
      for (const sdc::ClockTransition& tr : sdc.clock_transitions()) {
        if (tr.clock != c) continue;
        if (max_side ? !tr.minmax.max : !tr.minmax.min) continue;
        v = tr.value;
        present = true;
      }
      return v;
    });
    if (!f.present_anywhere) return;
    const bool enveloped = !f.within && f.present_everywhere &&
                           window_accepts(f, options_.policy.window_transition);
    if (!f.present_everywhere || (!f.within && !enveloped)) {
      result_.note("dropped clock transition on " + merged().clock(mc).name);
      ++result_.stats.clock_constraints_dropped;
      return;
    }
    if (enveloped) {
      result_.note("clock transition on " + merged().clock(mc).name +
                   ": kept worst-case envelope (windowed policy)");
    }
    sdc::ClockTransition tr;
    tr.clock = mc;
    tr.minmax = max_side ? sdc::MinMaxFlags::max_only()
                         : sdc::MinMaxFlags::min_only();
    tr.value = max_side ? f.max_value : f.min_value;
    merged().clock_transitions().push_back(tr);
    ++result_.stats.clock_constraints_merged;
  }

  // --- §3.1.3 union of external delay constraints ---------------------------

  void merge_port_delays() {
    // Union with clock mapping; identical entries dedup; subsequent entries
    // on the same (port, direction) get -add_delay.
    std::set<std::pair<uint32_t, bool>> seen_port_dir;
    std::vector<sdc::PortDelay> out;
    for (size_t m = 0; m < modes_.size(); ++m) {
      for (sdc::PortDelay pd : modes_[m]->port_delays()) {
        if (pd.clock.valid()) {
          pd.clock = result_.clock_map.merged_of(m, pd.clock);
        }
        bool duplicate = false;
        for (const sdc::PortDelay& e : out) {
          sdc::PortDelay probe = e;
          probe.add_delay = pd.add_delay;
          if (probe == pd) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        const auto key = std::make_pair(pd.port_pin.value(), pd.is_input);
        pd.add_delay = !seen_port_dir.insert(key).second;
        out.push_back(pd);
        ++result_.stats.port_delays_union;
      }
    }
    merged().port_delays() = std::move(out);
  }

  // --- §3.1.4 intersection of case_analysis ---------------------------------

  void merge_case_analysis() {
    const Sdc& first = *modes_[0];
    for (const sdc::CaseAnalysis& ca : first.case_analysis()) {
      bool in_all = true;
      for (size_t m = 1; m < modes_.size() && in_all; ++m) {
        in_all = modes_[m]->case_value(ca.pin) == ca.value;
      }
      if (in_all) {
        merged().case_analysis().push_back(ca);
        ++result_.stats.case_kept;
      }
    }
    // Count drops across all modes for the report.
    for (const Sdc* mode : modes_) {
      for (const sdc::CaseAnalysis& ca : mode->case_analysis()) {
        if (merged().case_value(ca.pin) != ca.value) ++result_.stats.case_dropped;
      }
    }
    if (result_.stats.case_dropped > 0) {
      result_.note("dropped " + std::to_string(result_.stats.case_dropped) +
                   " case_analysis value(s) not common to all modes "
                   "(refinement will disable resulting extra paths)");
    }
  }

  // --- §3.1.5 intersection of disable_timing ---------------------------------

  void merge_disables() {
    auto same = [](const sdc::DisableTiming& a, const sdc::DisableTiming& b) {
      return a.pin == b.pin && a.inst == b.inst &&
             a.from_lib_pin == b.from_lib_pin && a.to_lib_pin == b.to_lib_pin;
    };
    for (const sdc::DisableTiming& dt : modes_[0]->disables()) {
      bool in_all = true;
      for (size_t m = 1; m < modes_.size() && in_all; ++m) {
        bool found = false;
        for (const sdc::DisableTiming& other : modes_[m]->disables()) {
          if (same(dt, other)) {
            found = true;
            break;
          }
        }
        in_all = found;
      }
      if (in_all) {
        merged().disables().push_back(dt);
        ++result_.stats.disables_kept;
      } else {
        ++result_.stats.disables_dropped;
      }
    }
    for (size_t m = 1; m < modes_.size(); ++m) {
      for (const sdc::DisableTiming& dt : modes_[m]->disables()) {
        bool in_merged = false;
        for (const sdc::DisableTiming& kept : merged().disables()) {
          if (same(dt, kept)) {
            in_merged = true;
            break;
          }
        }
        if (!in_merged) ++result_.stats.disables_dropped;
      }
    }
  }

  // --- §3.1.6 drive and load constraints -------------------------------------

  void merge_drive_load() {
    // Drives and loads obey last-entry-wins per channel — (port, type,
    // min/max side) for drives, port for loads — matching the effective
    // comparison check_mergeable performs. A channel is kept when every
    // mode holds an effective entry for it and the effective values agree
    // within tolerance (or the policy window); the kept entry's value is
    // the pessimistic maximum of the effective values. Superseded
    // duplicates of a kept channel ride along verbatim: they cannot change
    // what applies (a later kept entry overrides them) and keeping them
    // makes merge a byte-level fixpoint (fuzz P3).
    auto covers = [](const sdc::MinMaxFlags& mm, size_t side) {
      return side == 0 ? mm.min : mm.max;
    };
    auto value_compatible = [&](double a, double b) {
      return within_tolerance(a, b, options_.value_tolerance) ||
             (options_.policy.windowed() &&
              within_window(a, b, options_.policy.window_drive_load));
    };
    const std::vector<sdc::DriveConstraint>& drives0 = modes_[0]->drives();
    for (size_t k = 0; k < drives0.size(); ++k) {
      const sdc::DriveConstraint& dc = drives0[k];
      // Every channel the entry covers must survive — also for superseded
      // entries, which must not resurrect a value whose channel the merge
      // dropped. Channel status compares mode 0's *effective* value.
      bool ok = true;
      bool is_effective = false;
      double max_value = dc.value;
      for (size_t side = 0; side < 2 && ok; ++side) {
        if (!covers(dc.minmax, side)) continue;
        double eff0 = dc.value;
        bool effective = true;
        for (size_t j = k + 1; j < drives0.size(); ++j) {
          if (drives0[j].port_pin == dc.port_pin &&
              drives0[j].is_transition == dc.is_transition &&
              covers(drives0[j].minmax, side)) {
            effective = false;
            eff0 = drives0[j].value;
          }
        }
        for (size_t m = 1; m < modes_.size() && ok; ++m) {
          const sdc::DriveConstraint* other = nullptr;
          for (const sdc::DriveConstraint& cand : modes_[m]->drives()) {
            if (cand.port_pin == dc.port_pin &&
                cand.is_transition == dc.is_transition &&
                covers(cand.minmax, side)) {
              other = &cand;  // forward scan: last match is effective
            }
          }
          ok = other != nullptr && value_compatible(other->value, eff0);
          if (ok && effective) max_value = std::max(max_value, other->value);
        }
        is_effective = is_effective || effective;
      }
      if (ok) {
        sdc::DriveConstraint out = dc;
        // Pessimistic pick within the tolerance window; superseded entries
        // keep their value (the effective entry downstream overrides them,
        // which also keeps merge a byte-level fixpoint).
        if (is_effective) out.value = max_value;
        merged().drives().push_back(out);
        ++result_.stats.drive_load_kept;
      } else {
        ++result_.stats.drive_load_dropped;
      }
    }
    const std::vector<sdc::LoadConstraint>& loads0 = modes_[0]->loads();
    for (size_t k = 0; k < loads0.size(); ++k) {
      const sdc::LoadConstraint& lc = loads0[k];
      double eff0 = lc.value;
      bool effective = true;
      for (size_t j = k + 1; j < loads0.size(); ++j) {
        if (loads0[j].port_pin == lc.port_pin) {
          effective = false;
          eff0 = loads0[j].value;
        }
      }
      bool ok = true;
      double max_value = lc.value;
      for (size_t m = 1; m < modes_.size() && ok; ++m) {
        const sdc::LoadConstraint* other = nullptr;
        for (const sdc::LoadConstraint& cand : modes_[m]->loads()) {
          if (cand.port_pin == lc.port_pin) other = &cand;
        }
        ok = other != nullptr && value_compatible(other->value, eff0);
        if (ok && effective) max_value = std::max(max_value, other->value);
      }
      if (ok) {
        sdc::LoadConstraint out = lc;
        if (effective) out.value = max_value;
        merged().loads().push_back(out);
        ++result_.stats.drive_load_kept;
      } else {
        ++result_.stats.drive_load_dropped;
      }
    }

    // Design rules (max transition / capacitance): checks, not path timing;
    // the union with the tightest (minimum) value per target is
    // pessimistic-safe.
    std::map<std::pair<int, uint32_t>, double> rules;
    for (const Sdc* mode : modes_) {
      for (const sdc::DesignRule& rule : mode->design_rules()) {
        const auto key = std::make_pair(static_cast<int>(rule.kind),
                                        rule.port_pin.value());
        auto [it, inserted] = rules.emplace(key, rule.value);
        if (!inserted) it->second = std::min(it->second, rule.value);
      }
    }
    for (const auto& [key, value] : rules) {
      sdc::DesignRule rule;
      rule.kind = static_cast<sdc::DesignRule::Kind>(key.first);
      rule.port_pin = PinId(key.second);
      rule.value = value;
      merged().design_rules().push_back(rule);
    }
  }

  // --- §3.1.7 clock exclusivity ----------------------------------------------

  void merge_clock_exclusivity() {
    // Two merged clocks can coexist iff there is at least one individual
    // mode where both exist and are not declared exclusive there.
    const size_t n = merged().num_clocks();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        bool coexist = false;
        for (size_t m = 0; m < modes_.size() && !coexist; ++m) {
          const ClockId ci = result_.clock_map.mode_clock_of(ClockId(i), m);
          const ClockId cj = result_.clock_map.mode_clock_of(ClockId(j), m);
          if (!ci.valid() || !cj.valid()) continue;
          if (!modes_[m]->clocks_exclusive(ci, cj)) coexist = true;
        }
        if (coexist) continue;
        sdc::ClockGroups cg;
        cg.kind = sdc::ClockGroupKind::kPhysicallyExclusive;
        cg.name = merged().clock(ClockId(i)).name + "_" +
                  merged().clock(ClockId(j)).name;
        cg.groups = {{ClockId(i)}, {ClockId(j)}};
        merged().clock_groups().push_back(std::move(cg));
        ++result_.stats.exclusivity_constraints;
      }
    }
    // Asynchronous relations: pairs async in EVERY mode where both exist
    // stay async in the merged mode.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        bool both_somewhere = false;
        bool always_async = true;
        for (size_t m = 0; m < modes_.size(); ++m) {
          const ClockId ci = result_.clock_map.mode_clock_of(ClockId(i), m);
          const ClockId cj = result_.clock_map.mode_clock_of(ClockId(j), m);
          if (!ci.valid() || !cj.valid()) continue;
          both_somewhere = true;
          if (!modes_[m]->clocks_async(ci, cj)) always_async = false;
        }
        if (!both_somewhere || !always_async) continue;
        sdc::ClockGroups cg;
        cg.kind = sdc::ClockGroupKind::kAsynchronous;
        cg.name = "async_" + merged().clock(ClockId(i)).name + "_" +
                  merged().clock(ClockId(j)).name;
        cg.groups = {{ClockId(i)}, {ClockId(j)}};
        merged().clock_groups().push_back(std::move(cg));
        ++result_.stats.exclusivity_constraints;
      }
    }
  }

  // --- §3.1.9 / §3.1.10 exceptions -------------------------------------------

  // Group of identical exceptions (anchors + value, clocks canonicalized)
  // across modes.
  struct ExceptionGroup {
    sdc::Exception sample;  // from the first mode that has it
    size_t sample_mode = 0;
    std::vector<size_t> holders;
  };

  void merge_exceptions() {
    if (interned_) {
      // Group by interned full signature; the ids come from the same table
      // for every mode in the session, so equal id <=> equal signature.
      std::unordered_map<uint32_t, ExceptionGroup> groups;
      for (size_t m = 0; m < modes_.size(); ++m) {
        const auto& infos = rels_[m]->exceptions;
        const auto& exceptions = modes_[m]->exceptions();
        for (size_t e = 0; e < exceptions.size(); ++e) {
          auto [it, inserted] = groups.emplace(infos[e].full_id.id(),
                                               ExceptionGroup{});
          if (inserted) {
            it->second.sample = exceptions[e];
            it->second.sample_mode = m;
          }
          if (it->second.holders.empty() || it->second.holders.back() != m) {
            it->second.holders.push_back(m);
          }
        }
      }
      // Emit in signature-string order — the iteration order of the string
      // path's std::map — so the merged SDC is byte-identical across paths.
      std::vector<std::pair<std::string, ExceptionGroup*>> ordered;
      ordered.reserve(groups.size());
      for (auto& [id, group] : groups) {
        ordered.emplace_back(ctx_.keys().str(KeyId(id)), &group);
      }
      std::sort(ordered.begin(), ordered.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [sig, group] : ordered) emit_exception_group(*group);
      return;
    }

    std::map<std::string, ExceptionGroup> groups;
    for (size_t m = 0; m < modes_.size(); ++m) {
      for (const sdc::Exception& ex : modes_[m]->exceptions()) {
        const std::string sig = exception_signature(*modes_[m], ex, true);
        auto [it, inserted] = groups.emplace(sig, ExceptionGroup{});
        if (inserted) {
          it->second.sample = ex;
          it->second.sample_mode = m;
        }
        if (it->second.holders.empty() || it->second.holders.back() != m) {
          it->second.holders.push_back(m);
        }
      }
    }
    for (auto& [sig, group] : groups) emit_exception_group(group);
  }

  /// §3.1.9 / §3.1.10 disposition of one exception group: common -> add,
  /// else uniquify by clock restriction, else drop (FP/MCP) or keep
  /// pessimistically (min/max delay).
  void emit_exception_group(ExceptionGroup& group) {
    // Map the sample's clock references into the merged space.
    sdc::Exception ex = group.sample;
    auto map_point = [&](sdc::ExceptionPoint& pt) {
      for (ClockId& c : pt.clocks) {
        c = result_.clock_map.merged_of(group.sample_mode, c);
      }
    };
    map_point(ex.from);
    map_point(ex.to);
    for (sdc::ExceptionPoint& th : ex.throughs) map_point(th);

    if (group.holders.size() == modes_.size()) {
      // §3.1.9: present in all modes -> add directly.
      merged().exceptions().push_back(std::move(ex));
      ++result_.stats.exceptions_common;
      return;
    }

    // §3.1.10: uniquify by clock restriction.
    if (uniquify_exception(ex, group.holders)) {
      merged().exceptions().push_back(std::move(ex));
      ++result_.stats.exceptions_uniquified;
      return;
    }

    if (ex.kind == sdc::ExceptionKind::kFalsePath ||
        ex.kind == sdc::ExceptionKind::kMulticyclePath) {
      // Applying FP/MCP to other modes' paths would loosen them
      // (optimism) -> drop; §3.2 refinement restores the holder modes'
      // false paths precisely, and a dropped MCP is only pessimistic.
      ++result_.stats.exceptions_dropped;
      result_.note("dropped non-uniquifiable exception (refinement covers "
                   "false paths; dropped MCP is pessimistic-safe)");
    } else {
      // min/max delay applied to extra paths only tightens them
      // (pessimistic-safe) -> keep as-is.
      merged().exceptions().push_back(std::move(ex));
      ++result_.stats.exceptions_kept_pessimistic;
      result_.note("kept non-uniquifiable min/max-delay exception "
                   "(pessimistic on non-holder modes)");
    }
  }

  /// Restrict `ex` (already clock-mapped to merged space) to the holder
  /// modes by -from/-to clock restriction (the paper's §3.1.10 trick:
  /// startpoint pins move to a leading -through so -from can carry the
  /// launch clocks). Returns false if no safe restriction exists.
  bool uniquify_exception(sdc::Exception& ex,
                          const std::vector<size_t>& holders) {
    auto is_holder = [&](size_t m) {
      return std::find(holders.begin(), holders.end(), m) != holders.end();
    };

    // Candidate launch clocks: the exception's own -from clocks if any,
    // else the union of the holder modes' clocks (mapped).
    std::set<uint32_t> from_candidates;
    if (!ex.from.clocks.empty()) {
      for (ClockId c : ex.from.clocks) from_candidates.insert(c.value());
    } else {
      for (size_t m : holders) {
        for (size_t ci = 0; ci < modes_[m]->num_clocks(); ++ci) {
          from_candidates.insert(
              result_.clock_map.merged_of(m, ClockId(ci)).value());
        }
      }
    }
    // Safe iff every candidate clock is absent from every non-holder mode.
    bool from_safe = true;
    for (uint32_t c : from_candidates) {
      for (size_t m = 0; m < modes_.size(); ++m) {
        if (is_holder(m)) continue;
        if (result_.clock_map.exists_in(ClockId(c), m)) {
          from_safe = false;
          break;
        }
      }
      if (!from_safe) break;
    }
    if (from_safe && !from_candidates.empty()) {
      if (!ex.from.pins.empty()) {
        // Move startpoint pins to a leading -through (paper's MCP1 of A').
        sdc::ExceptionPoint through;
        through.pins = ex.from.pins;
        ex.throughs.insert(ex.throughs.begin(), std::move(through));
        ex.from.pins.clear();
      }
      ex.from.clocks.clear();
      for (uint32_t c : from_candidates) ex.from.clocks.push_back(ClockId(c));
      if (ex.comment.empty()) ex.comment = "uniquified by launch clocks";
      return true;
    }

    // Fall back to capture-clock restriction via -to.
    std::set<uint32_t> to_candidates;
    if (!ex.to.clocks.empty()) {
      for (ClockId c : ex.to.clocks) to_candidates.insert(c.value());
    } else {
      for (size_t m : holders) {
        for (size_t ci = 0; ci < modes_[m]->num_clocks(); ++ci) {
          to_candidates.insert(
              result_.clock_map.merged_of(m, ClockId(ci)).value());
        }
      }
    }
    bool to_safe = true;
    for (uint32_t c : to_candidates) {
      for (size_t m = 0; m < modes_.size(); ++m) {
        if (is_holder(m)) continue;
        if (result_.clock_map.exists_in(ClockId(c), m)) {
          to_safe = false;
          break;
        }
      }
      if (!to_safe) break;
    }
    if (to_safe && !to_candidates.empty()) {
      if (!ex.to.pins.empty()) {
        // Endpoint pins move to a trailing -through so -to can carry the
        // capture clocks. (A path's endpoint pin is on the path, so
        // -through endpoint-pin + -to clocks is equivalent.)
        sdc::ExceptionPoint through;
        through.pins = ex.to.pins;
        ex.throughs.push_back(std::move(through));
        ex.to.pins.clear();
      }
      ex.to.clocks.clear();
      for (uint32_t c : to_candidates) ex.to.clocks.push_back(ClockId(c));
      if (ex.comment.empty()) ex.comment = "uniquified by capture clocks";
      return true;
    }
    return false;
  }

  const std::vector<const Sdc*>& modes_;
  MergeContext& ctx_;
  const MergeOptions& options_;
  const netlist::Design* design_;
  MergeResult result_;
  /// Per-mode relationship sets from the session cache (aligned with
  /// modes_); empty when the string-keyed path is selected.
  std::vector<std::shared_ptr<const ModeRelationships>> rels_;
  bool interned_ = false;
};

}  // namespace

MergeResult preliminary_merge(const std::vector<const Sdc*>& modes,
                              MergeContext& ctx) {
  MM_SPAN("merge/preliminary");
  return PreliminaryMerger(modes, ctx).run();
}

MergeResult preliminary_merge(const std::vector<const Sdc*>& modes,
                              const MergeOptions& options) {
  MergeContext ctx(options);
  return preliminary_merge(modes, ctx);
}

}  // namespace mm::merge
