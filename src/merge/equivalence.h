#pragma once
// Two-sided constraint-set equivalence (paper §2): two constraint sets are
// equivalent iff every timing relationship induced by one is induced by the
// other, in both directions. The merge flow runs this at the end — the
// paper's "in-built, correct by construction validation step".

#include <string>
#include <vector>

#include "merge/refine_context.h"

namespace mm::merge {

struct EquivalenceReport {
  size_t keys_compared = 0;
  size_t matches = 0;           // identical state sets
  size_t optimism_violations = 0;  // individual times it, merged does not —
                                   // NEVER acceptable for sign-off
  size_t pessimism_keys = 0;    // merged times something no mode times
  size_t state_mismatches = 0;  // both timed but with different states
                                // (e.g. MCP value lost) — pessimistic-safe
  std::vector<std::string> examples;  // first few findings, human-readable

  bool equivalent() const {
    return optimism_violations == 0 && pessimism_keys == 0 &&
           state_mismatches == 0;
  }
  bool signoff_safe() const { return optimism_violations == 0; }
};

/// Compare the merged mode against the union of individual modes at
/// timing-relationship granularity (per endpoint, launch, capture). With
/// `startpoint_level` the comparison runs per (startpoint, endpoint, ...)
/// instead — slower, finer.
///
/// `use_batched_sta` (the default) propagates the whole clique — every
/// member mode plus the merged deck — as lanes of one batched levelized
/// graph walk (timing/sta_batch.h). `false` runs the serial per-mode
/// engine, kept as the byte-parity reference (same discipline as
/// MergeOptions::use_interned_keys); report counters are identical either
/// way, only `examples` ordering may differ.
EquivalenceReport check_equivalence(const RefineContext& ctx,
                                    const Sdc& merged, const ClockMap& map,
                                    bool startpoint_level = false,
                                    size_t num_threads = 0,
                                    bool use_batched_sta = true);

}  // namespace mm::merge
