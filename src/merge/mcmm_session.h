#pragma once
// McmmSession: the multi-corner multi-mode merge engine (docs/MCMM.md).
//
// An MCMM sign-off matrix is modes x corners, but the corner axis only
// varies constraint VALUES (derates, loads, voltages) — topology (clocks,
// exceptions, drive/load channel shape) is a property of the mode. The
// session exploits that split end to end:
//
//   data model   one skeleton extraction per mode (corner 0, full
//                extract_relationships with interned keys) plus one
//                value-only delta fill per additional corner
//                (RelationshipCache::get_corner) — M skeletons + M*C value
//                tables instead of M*C full extractions.
//   mergeability two modes merge only when mergeable in EVERY registered
//                corner. The structural check runs once per pair (corner 0,
//                full check_mergeable); corners 1..C-1 run the value-only
//                screen (check_mergeable_values) when they share their
//                mode's skeleton, with early exit on the first conflicting
//                corner. The conflicting corner's name/id lands in the
//                PairVerdict and the journal.
//   cover        ONE clique cover over the combined (all-corner) verdicts —
//                the mode partition is shared across corners, which is what
//                makes the merged matrix navigable.
//   merge        each clique merges once per corner from that corner's
//                member decks; per-(clique, corner) results are cached and
//                reused across commits like MergeSession's clique results.
//
// Incrementality is per (mode, corner): update_mode(id, corner, deck)
// dirties only that corner's slot, so the next commit re-checks only that
// corner's values on the mode's pairs (stored per-corner verdicts for clean
// corners are carried over) and re-merges only that corner's cliques.
//
// Determinism contract: with one registered corner, commit() produces the
// same mergeability graph, cover, merged SDC bytes and verdicts as a
// MergeSession over the same decks — the corner machinery adds zero
// byte-level difference at C == 1 (fuzz property P8). At C > 1, each
// corner's cover-constrained merged decks are byte-identical to what the
// flat engine produces for that corner's decks under the shared cover.
//
// Observability: commits bump mcmm/* counters (pair_corner_checks,
// pair_corner_reuses, delta fills arrive via merge/relationship_cache_*);
// journal events carry corner provenance fields only when C > 1 so
// single-corner journals stay byte-stable against pre-MCMM builds.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "merge/context.h"
#include "merge/corner.h"
#include "merge/mergeability.h"
#include "merge/merger.h"
#include "merge/qor.h"

namespace mm::merge {

class McmmSession {
 public:
  /// Stable handle to a mode across edits (never reused within a session).
  using ModeId = uint64_t;
  static constexpr ModeId kInvalidMode = 0;

  /// What one commit() produced. merged/reused are corner-major:
  /// merged[c][k] is clique k's superset deck in corner c. Results are
  /// shared with the session's per-(clique, corner) reuse cache.
  struct CommitResult {
    /// Clique membership as positions into the live mode list (shared by
    /// every corner — the cover is computed once over combined verdicts).
    std::vector<std::vector<size_t>> cliques;
    /// Clique membership as session ModeIds (stable across commits).
    std::vector<std::vector<ModeId>> clique_ids;
    std::vector<std::vector<std::shared_ptr<const ValidatedMergeResult>>>
        merged;
    std::vector<std::vector<bool>> reused;
    size_t num_input_modes = 0;
    /// Pairs with at least one freshly computed corner verdict / pairs
    /// resolved entirely from stored verdicts.
    size_t pairs_rechecked = 0;
    size_t pairs_skipped_clean = 0;
    /// Per-corner verdicts computed fresh vs carried over clean this
    /// commit. Early exit keeps both below pairs * C.
    size_t pair_corner_checks = 0;
    size_t pair_corner_reuses = 0;
    /// (clique, corner) merges run vs reused, summed over corners.
    size_t cliques_merged = 0;
    size_t cliques_reused = 0;
    double total_seconds = 0.0;

    size_t num_merged_modes() const { return cliques.size(); }
    double reduction_percent() const {
      if (num_input_modes == 0) return 0.0;
      return 100.0 * (1.0 - static_cast<double>(cliques.size()) /
                                static_cast<double>(num_input_modes));
    }
  };

  /// Borrow an external context (shared caches across sessions). The graph
  /// and context must outlive the session.
  McmmSession(const timing::TimingGraph& graph, CornerSet corners,
              MergeContext& ctx);
  /// Own a private context configured by `options`.
  McmmSession(const timing::TimingGraph& graph, CornerSet corners,
              MergeOptions options = {});
  McmmSession(const McmmSession&) = delete;
  McmmSession& operator=(const McmmSession&) = delete;
  ~McmmSession();

  const CornerSet& corners() const { return corners_; }

  /// Register a mode with one deck per corner (decks.size() must equal
  /// corners().size(); decks[c] is the mode's constraints in corner c).
  /// The caller keeps ownership; every deck must stay alive until the mode
  /// is removed or that corner's slot is updated.
  ModeId add_mode(std::string name, std::vector<const Sdc*> decks);

  /// Replace ONE corner's deck for a mode. Only that (mode, corner) slot is
  /// dirtied: the next commit re-derives that slot's relationship set,
  /// re-checks only that corner's values on the mode's pairs, and re-merges
  /// only that corner's cliques containing the mode.
  void update_mode(ModeId id, CornerId corner, const Sdc* deck);

  /// Drop a mode. Its per-corner verdicts are discarded; no pair is
  /// re-checked at the next commit.
  void remove_mode(ModeId id);

  /// Run the corner-aware pipeline over the current matrix, reusing every
  /// per-corner verdict and per-(clique, corner) merge the deltas since the
  /// previous commit did not invalidate. The returned reference stays valid
  /// until the next commit().
  const CommitResult& commit();

  /// Never-optimistic QoR gate for ONE corner of the last commit: the
  /// corner's member decks vs its merged cliques, one flat report
  /// (qor_report deck-level overload). MCMM sign-off runs this for every
  /// corner — the invariant must hold per corner, not just in aggregate.
  QoRReport qor(CornerId corner, double slack_eps = 1e-4) const;

  size_t num_modes() const { return modes_.size(); }
  bool has_mode(ModeId id) const;
  const std::string& mode_name(ModeId id) const;
  /// Live decks of one corner in insertion order — the mode list a flat
  /// engine must see for that corner's byte-parity comparison.
  std::vector<const Sdc*> corner_modes(CornerId corner) const;

  /// The combined-verdict mergeability graph of the last commit.
  const MergeabilityGraph& graph() const { return graph_; }
  const CommitResult& last_commit() const { return last_; }
  MergeContext& context() { return *ctx_; }

  /// Replace the STRUCTURAL check (corner 0's full pair check). Same
  /// contract as MergeSession::PairChecker: thread-safe, byte-identical
  /// verdicts to check_mergeable — the seam ShardedMergeSession's stitch
  /// pass plugs into so sharded structural screening composes with
  /// corner-aware value checks. Corners >= 1 are unaffected (they run the
  /// value-only screen against the checker-approved skeleton, or the plain
  /// full check on a skeleton mismatch).
  using StructuralChecker = std::function<PairVerdict(
      const Sdc& a, const Sdc& b, const ModeRelationships* a_rels,
      const ModeRelationships* b_rels)>;
  void set_structural_checker(StructuralChecker checker) {
    structural_checker_ = std::move(checker);
  }

 private:
  struct Entry {
    ModeId id = kInvalidMode;
    std::string name;
    std::vector<const Sdc*> decks;  // [corner]
    std::vector<std::shared_ptr<const ModeRelationships>> rels;  // [corner]
  };
  /// Stored per-corner verdicts for one live pair. checked[c] == 0 marks a
  /// slot that was invalidated (dirty endpoint) or never reached (a lower
  /// corner early-exited); it is recomputed on demand the next time the
  /// resume scan reaches corner c.
  struct PairState {
    std::vector<uint8_t> checked;    // [corner]
    std::vector<PairVerdict> verdicts;  // [corner]
  };

  uint64_t pair_key(ModeId a, ModeId b) const;
  size_t position_of(ModeId id) const;
  bool corner_dirty(ModeId id, CornerId corner) const;
  /// One corner's verdict for one pair: full check at corner 0 (or the
  /// installed structural checker), value-only screen for skeleton-sharing
  /// corners, full check on mismatch, reference Sdc path with the cache off.
  PairVerdict check_corner(const Entry& a, const Entry& b,
                           CornerId corner) const;

  const timing::TimingGraph& timing_graph_;
  CornerSet corners_;
  std::unique_ptr<MergeContext> owned_ctx_;  // set iff constructed w/ options
  MergeContext* ctx_ = nullptr;

  uint64_t journal_id_ = 0;
  uint64_t commit_seq_ = 0;
  uint64_t policy_salt_ = 0;

  ModeId next_id_ = 1;
  std::vector<Entry> modes_;  // live modes, insertion order
  /// Per-pair per-corner verdict state, keyed by pair_key(id, id).
  std::unordered_map<uint64_t, PairState> pairs_;
  /// Dirty (mode, corner) slots since the last commit.
  std::unordered_map<ModeId, std::vector<uint8_t>> dirty_;
  bool results_valid_ = false;
  /// Previous commit's per-(clique, corner) results, keyed by
  /// "p<salt>:c<corner>:id,id,..." (salt/corner tags dropped when 0 / C==1
  /// so single-corner exact keys match MergeSession's).
  std::unordered_map<std::string, std::shared_ptr<ValidatedMergeResult>>
      clique_results_;
  MergeabilityGraph graph_{0, {}, {}};
  CommitResult last_;
  StructuralChecker structural_checker_;
};

}  // namespace mm::merge
