#pragma once
// Shared types of the mode-merging engine.

#include <memory>
#include <string>
#include <vector>

#include "merge/policy.h"
#include "sdc/sdc.h"
#include "timing/graph.h"

namespace mm::merge {

using sdc::ClockId;
using sdc::Mode;
using sdc::Sdc;
using timing::PinId;

/// Deliberate pipeline bugs, injectable for mutation-testing the fuzz
/// harness's oracles (mm::fuzz): each one corrupts the merged mode *after*
/// refinement and *before* validation, so a healthy oracle must flag it.
/// Production paths always run with kNone.
enum class DebugMutation : uint8_t {
  kNone = 0,
  /// Rewrite every multicycle exception in the merged mode to a false path
  /// ("merge forgot MCP semantics") — endpoints lose their timed state, an
  /// optimism violation.
  kFalsifyMcp,
  /// Drop every exception from the merged mode — paths the source modes
  /// false-pathed become timed, pessimism the refinement never accounted.
  kDropExceptions,
  /// Reverse the merged exception order only when interned keys are on —
  /// breaks byte-parity between the interned and string-keyed paths.
  kShuffleInterned,
};

struct MergeOptions {
  /// Merge policy (merge/policy.h): exact (default, byte-identical to the
  /// pre-policy engine) or windowed (per-field bounded-pessimism budgets;
  /// mergeability accepts disagreement that fits the budget and the merged
  /// deck takes the worst-case envelope). Orthogonal to value_tolerance:
  /// a comparison passes when it is within tolerance OR within the
  /// policy's window for the field.
  MergePolicy policy;
  /// Relative tolerance for merging clock-based / drive / load constraint
  /// values across modes (paper §3.1.2 "within a certain tolerance limit").
  double value_tolerance = 0.0;
  /// Absolute tolerance for waveform/period comparison when deduplicating
  /// clocks (§3.1.1).
  double waveform_tolerance = 1e-9;
  /// Path-enumeration cap per (startpoint, endpoint) pair in pass 3.
  size_t max_enumerated_paths = 4096;
  /// Worker threads for the whole merge pipeline: the MergeContext pool
  /// sized by this value runs relationship extraction, pairwise
  /// mergeability checks, refinement passes, and equivalence validation
  /// (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Memoize per-mode relationship extraction (merge/relationship_cache.h)
  /// during mergeability analysis. Off = the seed per-pair re-derivation,
  /// kept as the reference path for benchmarks and determinism tests.
  bool use_relationship_cache = true;
  /// Consume interned KeyId sets (merge/keys.h) from the session's
  /// CanonicalKeyTable in mergeability analysis and preliminary merge. Off =
  /// the string-keyed reference path (--no-key-intern), kept for one release
  /// as the parity baseline; both paths produce byte-identical output.
  bool use_interned_keys = true;
  /// Validate cliques through the batched level-parallel STA engine
  /// (timing/sta_batch.h): all member modes + the merged deck propagate as
  /// lanes of one levelized graph walk. Off = one serial propagation per
  /// mode (--no-batched-sta), kept as the byte-parity reference — both
  /// paths produce identical reports and merged output.
  bool use_batched_sta = true;
  /// Hierarchical sharded merging (docs/SHARDING.md): ShardedMergeSession
  /// partitions the design into this many blocks, runs per-block
  /// mergeability in parallel, and stitches at the boundary. 1 = the flat
  /// pipeline (MergeSession behavior, byte-identical output either way).
  size_t num_shards = 1;
  /// Seed for the partitioner's BFS seed placement (--shard-seed).
  uint64_t shard_seed = 1;
  /// Run §3.2 refinement (clock + data + 3-pass). Disabling yields the
  /// preliminary merged mode only — used by benchmarks and ablations.
  bool run_refinement = true;
  /// Run the final two-sided equivalence validation.
  bool validate = true;
  /// Compare and refine hold-side (min-path) relationships as well as
  /// setup-side. Fixes that apply to only one side are emitted with
  /// -setup / -hold qualifiers.
  bool analyze_hold = true;
  /// Fuzz-harness mutation testing only (see DebugMutation).
  DebugMutation debug_mutation = DebugMutation::kNone;
};

/// Two-way map between individual-mode clocks and merged-mode clocks
/// (paper §3.1.1: "we create a two way map between the individual mode
/// clocks and the merged mode clocks").
struct ClockMap {
  /// to_merged[mode_index][mode_clock.index] -> merged clock id.
  std::vector<std::vector<ClockId>> to_merged;
  /// from_merged[merged_clock.index][mode_index] -> mode clock id
  /// (invalid if the clock does not exist in that mode).
  std::vector<std::vector<ClockId>> from_merged;

  size_t num_modes() const { return to_merged.size(); }
  size_t num_merged_clocks() const { return from_merged.size(); }

  ClockId merged_of(size_t mode, ClockId mode_clock) const {
    return to_merged[mode][mode_clock.index()];
  }
  ClockId mode_clock_of(ClockId merged, size_t mode) const {
    return from_merged[merged.index()][mode];
  }
  /// True if the merged clock exists in the given mode.
  bool exists_in(ClockId merged, size_t mode) const {
    return from_merged[merged.index()][mode].valid();
  }

  void register_clock(size_t mode, ClockId mode_clock, ClockId merged,
                      size_t total_modes);
};

struct MergeStats {
  // Preliminary merge counters.
  size_t clocks_union = 0;
  size_t clocks_deduped = 0;
  size_t clocks_renamed = 0;
  size_t clock_constraints_merged = 0;
  size_t clock_constraints_dropped = 0;
  size_t port_delays_union = 0;
  size_t case_kept = 0;
  size_t case_dropped = 0;
  size_t disables_kept = 0;
  size_t disables_dropped = 0;
  size_t drive_load_kept = 0;
  size_t drive_load_dropped = 0;
  size_t exclusivity_constraints = 0;
  size_t exceptions_common = 0;
  size_t exceptions_uniquified = 0;
  size_t exceptions_dropped = 0;
  size_t exceptions_kept_pessimistic = 0;
  // Refinement counters.
  size_t inferred_disables = 0;
  size_t clock_stops_added = 0;
  size_t data_clock_fps_added = 0;
  size_t pass0_pair_fixed = 0;  // clock-pair-level false paths
  size_t pass1_keys = 0;
  size_t pass1_mismatch_fixed = 0;
  size_t pass1_ambiguous = 0;
  size_t pass2_keys = 0;
  size_t pass2_mismatch_fixed = 0;
  size_t pass2_ambiguous = 0;
  size_t pass3_pairs = 0;
  size_t pass3_paths_enumerated = 0;
  size_t pass3_fps_added = 0;
  size_t unresolved_pessimism = 0;
  // Timing.
  double preliminary_seconds = 0.0;
  double refinement_seconds = 0.0;
  double validate_seconds = 0.0;
};

struct MergeResult {
  std::unique_ptr<Sdc> merged;
  ClockMap clock_map;
  MergeStats stats;
  std::vector<std::string> notes;  // human-readable decision log

  void note(std::string msg) { notes.push_back(std::move(msg)); }
};

}  // namespace mm::merge
