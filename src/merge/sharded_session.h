#pragma once
// ShardedMergeSession: hierarchical sharded merging (docs/SHARDING.md).
//
// The flat MergeSession sees the whole netlist in every pairwise
// mergeability check. This wrapper splits the design into K blocks
// (netlist/partition.h), projects every mode's relationship set into K+1
// shard views — one per block plus a boundary shard holding everything
// that crosses or binds to no block — and re-routes the session's dirty
// pair checks through a two-level pass:
//
//   1. per-block: check_mergeable on the block-projected relationship
//      sets, in parallel (the projections of one pair are checked by one
//      task, pairs fan out over the shared ThreadPool exactly like the
//      flat path; each block owns a block-scoped child MergeContext
//      sharing the parent's CanonicalKeyTable, so KeyIds compare across
//      blocks — the layout a distributed runner would keep per process),
//   2. stitch: combine the per-shard verdicts into the pair's verdict.
//      Canonical identities embed netlist pins, so every conflict class is
//      local to exactly one shard and the per-shard conflicts partition
//      the flat check's conflicts. The stitch recovers the flat check's
//      *first* conflict without re-checking whenever the partition allows
//      it (see the decision table in docs/SHARDING.md) and descends to a
//      full-netlist re-check only for the pairs the shard verdicts cannot
//      order (counted in StitchStats::pairs_descended). A boundary
//      pre-filter skips the boundary-shard check outright when the two
//      modes' boundary summaries (no shared boundary clocks, no crossing
//      exceptions) prove it conflict-free.
//
// Everything downstream — greedy clique cover, per-clique merge,
// refinement, batched-STA equivalence validation, the decision journal's
// pair_verdict/clique/commit events — runs unchanged inside the wrapped
// MergeSession on the stitched verdicts. Because the stitch returns
// verdicts byte-identical to check_mergeable (asserted by tests and fuzz
// property P6), the clique cover, conflict reasons, and merged SDC bytes
// are byte-identical to the unsharded path for every K; K=1 installs no
// checker at all and *is* today's MergeSession.
//
// Per mode, the session also extracts timing::BoundaryModel summaries
// (boundary-pin arrival envelopes, clock reachability, crossing exception
// anchors) — the per-block artifact a distributed merge service would
// ship instead of whole decks.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "merge/session.h"
#include "netlist/partition.h"
#include "timing/boundary_model.h"

namespace mm::merge {

class ShardedMergeSession {
 public:
  using ModeId = MergeSession::ModeId;
  using CommitResult = MergeSession::CommitResult;

  /// How the last commit's dirty pairs were decided.
  struct StitchStats {
    size_t pairs_checked = 0;   // dirty pairs routed through the stitch
    size_t pairs_local = 0;     // decided from per-shard verdicts alone
    size_t boundary_skips = 0;  // boundary-shard checks proven unnecessary
    size_t pairs_descended = 0; // fell back to the full-netlist check
  };

  /// Borrow an external context; `options.num_shards` is read from the
  /// context's options. Graph and context must outlive the session.
  ShardedMergeSession(const timing::TimingGraph& graph, MergeContext& ctx);
  /// Own a private context configured by `options`.
  explicit ShardedMergeSession(const timing::TimingGraph& graph,
                               MergeOptions options = {});
  ShardedMergeSession(const ShardedMergeSession&) = delete;
  ShardedMergeSession& operator=(const ShardedMergeSession&) = delete;
  ~ShardedMergeSession();

  // Same contract as MergeSession (session.h).
  ModeId add_mode(std::string name, const Sdc* sdc);
  void remove_mode(ModeId id);
  void update_mode(ModeId id, const Sdc* sdc);
  const CommitResult& commit();

  size_t num_modes() const { return session_.num_modes(); }
  bool has_mode(ModeId id) const { return session_.has_mode(id); }
  std::vector<const Sdc*> live_modes() const { return session_.live_modes(); }
  const std::string& mode_name(ModeId id) const {
    return session_.mode_name(id);
  }
  const MergeabilityGraph& graph() const { return session_.graph(); }
  const CommitResult& last_commit() const { return session_.last_commit(); }
  MergeContext& context() { return *ctx_; }
  MergedModeSet release_batch() { return session_.release_batch(); }

  /// The block assignment (K from options.num_shards, clamped to the
  /// instance count).
  const netlist::Partition& partition() const { return partition_; }
  size_t num_blocks() const { return partition_.num_blocks(); }
  /// Stitch accounting of the last commit (all zero when K == 1).
  const StitchStats& last_stitch() const { return last_stitch_; }
  /// Per-block boundary models of a registered deck (empty when K == 1).
  const std::vector<timing::BoundaryModel>& boundary_models(
      const Sdc* sdc) const;
  /// A registered deck's shard-projected relationship view (K > 1 only).
  /// `shard` ranges over [0, num_blocks()]; shard == num_blocks() is the
  /// boundary shard. Exposed so benches and a future distributed runner
  /// can drive the per-block check phase directly.
  const ModeRelationships& shard_view(const Sdc* sdc, size_t shard) const;
  /// The block-scoped child context of one block (K > 1 only).
  MergeContext& block_context(size_t block) { return *block_ctxs_[block]; }

  /// Public stitch entry: the two-level (per-block + stitch) verdict for a
  /// pair of decks registered in this session. Byte-identical to
  /// check_mergeable(a, b) — this is the seam McmmSession's
  /// set_structural_checker composes with, so sharded structural screening
  /// drives the corner-aware matrix (docs/MCMM.md): register the primary
  /// corner's decks here, route corner 0 through stitch_check, and let the
  /// value-only corner screens run flat. K == 1 degenerates to the plain
  /// full-netlist check. Thread-safe (invoked concurrently from session
  /// pools); stitch accounting lands in last_stitch() at the next commit.
  PairVerdict stitch_check(const Sdc& a, const Sdc& b) const;

 private:
  /// One deck's shard decomposition: the full relationship set plus its
  /// K+1 shard projections (boundary shard last) and boundary models.
  struct Projection {
    std::shared_ptr<const ModeRelationships> full;
    std::vector<std::shared_ptr<const ModeRelationships>> shards;
    std::vector<timing::BoundaryModel> boundary;
    size_t refs = 0;
  };

  void init(const timing::TimingGraph& graph);
  void retain(const Sdc* sdc);
  void release(const Sdc* sdc);
  Projection build_projection(const Sdc& sdc) const;
  PairVerdict stitch_pair(const Sdc& a, const Sdc& b) const;
  void emit_journal_topology();
  void emit_journal_stitch() const;

  const timing::TimingGraph& timing_graph_;
  std::unique_ptr<MergeContext> owned_ctx_;
  MergeContext* ctx_ = nullptr;
  netlist::Partition partition_;
  timing::ArrivalEnvelope envelope_;
  std::vector<std::unique_ptr<MergeContext>> block_ctxs_;
  MergeSession session_;
  std::unordered_map<const Sdc*, Projection> projections_;
  std::unordered_map<ModeId, const Sdc*> mode_sdc_;
  StitchStats last_stitch_;
  /// Commit-scoped accounting, written concurrently by stitch_pair.
  struct Counters;
  std::unique_ptr<Counters> counters_;
  bool topology_journaled_ = false;
};

}  // namespace mm::merge
