#include "merge/mcmm_session.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/journal.h"
#include "obs/obs.h"
#include "sdc/writer.h"
#include "util/error.h"
#include "util/timer.h"

namespace mm::merge {

namespace {

uint64_t next_mcmm_journal_id() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string hex_key(uint64_t key) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::string journal_name(const std::string& name, McmmSession::ModeId id) {
  return name.empty() ? "mode" + std::to_string(id) : name;
}

}  // namespace

McmmSession::McmmSession(const timing::TimingGraph& graph, CornerSet corners,
                         MergeContext& ctx)
    : timing_graph_(graph),
      corners_(std::move(corners)),
      ctx_(&ctx),
      journal_id_(next_mcmm_journal_id()),
      policy_salt_(ctx.options().policy.fingerprint()) {}

McmmSession::McmmSession(const timing::TimingGraph& graph, CornerSet corners,
                         MergeOptions options)
    : timing_graph_(graph),
      corners_(std::move(corners)),
      owned_ctx_(std::make_unique<MergeContext>(options)),
      ctx_(owned_ctx_.get()),
      journal_id_(next_mcmm_journal_id()),
      policy_salt_(owned_ctx_->options().policy.fingerprint()) {}

McmmSession::~McmmSession() = default;

uint64_t McmmSession::pair_key(ModeId a, ModeId b) const {
  if (a > b) std::swap(a, b);
  return ((a << 32) | b) ^ policy_salt_;
}

size_t McmmSession::position_of(ModeId id) const {
  for (size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i].id == id) return i;
  }
  throw Error("McmmSession: unknown mode id " + std::to_string(id));
}

bool McmmSession::has_mode(ModeId id) const {
  for (const Entry& e : modes_) {
    if (e.id == id) return true;
  }
  return false;
}

const std::string& McmmSession::mode_name(ModeId id) const {
  return modes_[position_of(id)].name;
}

std::vector<const Sdc*> McmmSession::corner_modes(CornerId corner) const {
  MM_ASSERT(corner < corners_.size());
  std::vector<const Sdc*> out;
  out.reserve(modes_.size());
  for (const Entry& e : modes_) out.push_back(e.decks[corner]);
  return out;
}

bool McmmSession::corner_dirty(ModeId id, CornerId corner) const {
  auto it = dirty_.find(id);
  return it != dirty_.end() && it->second[corner] != 0;
}

McmmSession::ModeId McmmSession::add_mode(std::string name,
                                          std::vector<const Sdc*> decks) {
  MM_ASSERT(decks.size() == corners_.size());
  for (const Sdc* d : decks) MM_ASSERT(d != nullptr);
  MM_ASSERT(next_id_ < (uint64_t{1} << 32));
  Entry e;
  e.id = next_id_++;
  e.name = std::move(name);
  e.decks = std::move(decks);
  e.rels.resize(corners_.size());
  modes_.push_back(std::move(e));
  dirty_[modes_.back().id].assign(corners_.size(), 1);
  MM_COUNT("mcmm/modes_added", 1);
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("mode_add");
    ev.field("session", journal_id_)
        .field("mode_id", modes_.back().id)
        .field("name", journal_name(modes_.back().name, modes_.back().id))
        .field("content_key", hex_key(RelationshipCache::content_key(
                                  *modes_.back().decks[kPrimaryCorner])));
    if (!corners_.single()) {
      ev.field("corners", static_cast<uint64_t>(corners_.size()));
    }
  }
  return modes_.back().id;
}

void McmmSession::update_mode(ModeId id, CornerId corner, const Sdc* deck) {
  MM_ASSERT(deck != nullptr);
  MM_ASSERT(corner < corners_.size());
  Entry& e = modes_[position_of(id)];
  if (ctx_->options().use_relationship_cache &&
      e.decks[corner] != nullptr) {
    ctx_->cache().invalidate(*e.decks[corner]);
  }
  e.decks[corner] = deck;
  e.rels[corner].reset();
  // A structural edit to the primary corner moves the mode's skeleton; the
  // other corners' relationship sets stay valid (each describes its own
  // deck — the delta fill verified the fingerprint match at fill time), so
  // only this slot is dirtied.
  auto [it, inserted] = dirty_.try_emplace(id);
  if (inserted) it->second.assign(corners_.size(), 0);
  it->second[corner] = 1;
  MM_COUNT("mcmm/modes_updated", 1);
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("mode_update");
    ev.field("session", journal_id_)
        .field("mode_id", id)
        .field("name", journal_name(e.name, id))
        .field("content_key", hex_key(RelationshipCache::content_key(*deck)));
    if (!corners_.single()) {
      ev.field("corner", corners_.name(corner))
          .field("corner_id", static_cast<uint64_t>(corner));
    }
  }
}

void McmmSession::remove_mode(ModeId id) {
  const size_t pos = position_of(id);
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("mode_remove");
    ev.field("session", journal_id_)
        .field("mode_id", id)
        .field("name", journal_name(modes_[pos].name, id));
  }
  modes_.erase(modes_.begin() + static_cast<long>(pos));
  dirty_.erase(id);
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    const uint64_t key = it->first ^ policy_salt_;
    if ((key >> 32) == id || (key & 0xffffffffu) == id) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
  MM_COUNT("mcmm/modes_removed", 1);
}

PairVerdict McmmSession::check_corner(const Entry& a, const Entry& b,
                                      CornerId corner) const {
  const MergeOptions& options = ctx_->options();
  if (!options.use_relationship_cache) {
    // Reference path: no memoized relationship sets, every corner pays the
    // full Sdc-level check — exactly the flat engine under the same options.
    return check_mergeable(*a.decks[corner], *b.decks[corner], options);
  }
  if (corner == kPrimaryCorner) {
    if (structural_checker_) {
      return structural_checker_(*a.decks[corner], *b.decks[corner],
                                 a.rels[corner].get(), b.rels[corner].get());
    }
    return check_mergeable(*a.rels[corner], *b.rels[corner], options);
  }
  const bool shares_skeleton =
      a.rels[corner]->structure_fp == a.rels[kPrimaryCorner]->structure_fp &&
      b.rels[corner]->structure_fp == b.rels[kPrimaryCorner]->structure_fp;
  return shares_skeleton
             ? check_mergeable_values(*a.rels[corner], *b.rels[corner],
                                      options)
             : check_mergeable(*a.rels[corner], *b.rels[corner], options);
}

const McmmSession::CommitResult& McmmSession::commit() {
  MM_SPAN("mcmm/commit");
  Stopwatch timer;
  const MergeOptions& options = ctx_->options();
  const size_t n = modes_.size();
  const size_t num_corners = corners_.size();

  CommitResult out;
  out.num_input_modes = n;

  ++commit_seq_;
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("commit_begin");
    ev.field("session", journal_id_)
        .field("commit", commit_seq_)
        .field("modes", static_cast<uint64_t>(n))
        .field("dirty_modes", static_cast<uint64_t>(dirty_.size()));
    if (!corners_.single()) {
      ev.field("corners", static_cast<uint64_t>(num_corners));
    }
  }

  // Refresh relationship sets for dirty (mode, corner) slots: skeletons
  // first (corner 0, full extraction fanned over the pool), then the other
  // corners as value-only delta fills against their mode's fresh skeleton.
  if (options.use_relationship_cache) {
    std::vector<Entry*> need_skeleton;
    for (Entry& e : modes_) {
      if (!e.rels[kPrimaryCorner]) need_skeleton.push_back(&e);
    }
    ctx_->pool().parallel_for(need_skeleton.size(), [&](size_t k) {
      need_skeleton[k]->rels[kPrimaryCorner] =
          ctx_->relationships(*need_skeleton[k]->decks[kPrimaryCorner]);
    });
    std::vector<std::pair<Entry*, CornerId>> need_delta;
    for (Entry& e : modes_) {
      for (CornerId c = 1; c < num_corners; ++c) {
        if (!e.rels[c]) need_delta.emplace_back(&e, c);
      }
    }
    ctx_->pool().parallel_for(need_delta.size(), [&](size_t k) {
      auto [e, c] = need_delta[k];
      e->rels[c] =
          ctx_->cache().get_corner(*e->decks[c], *e->rels[kPrimaryCorner]);
    });
  }

  // Invalidate stored verdicts whose (corner, endpoint) slot is dirty. The
  // slots become absent, not wrong: the resume scan below recomputes a slot
  // only when it is reached, and a slot past an early exit stays absent
  // until a later commit clears the exit.
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto [it, inserted] =
          pairs_.try_emplace(pair_key(modes_[i].id, modes_[j].id));
      PairState& st = it->second;
      if (inserted) {
        st.checked.assign(num_corners, 0);
        st.verdicts.resize(num_corners);
      }
      for (CornerId c = 0; c < num_corners; ++c) {
        if (corner_dirty(modes_[i].id, c) || corner_dirty(modes_[j].id, c)) {
          st.checked[c] = 0;
        }
      }
    }
  }

  // Resume every pair: scan corners in order, computing absent slots and
  // reusing stored ones, early exit on the first conflicting corner. Pairs
  // fan out over the pool; each pair touches only its own PairState (the
  // map was fully populated above) and its own stat slots, so the combined
  // verdicts — and the journal emitted serially after the loop — are
  // bit-identical to a serial scan.
  std::vector<std::pair<uint32_t, uint32_t>> all_pairs;
  all_pairs.reserve(n < 2 ? 0 : n * (n - 1) / 2);
  for (uint32_t i = 0; i + 1 < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) all_pairs.emplace_back(i, j);
  }
  std::vector<PairVerdict> combined(all_pairs.size());
  std::vector<uint32_t> computed(all_pairs.size(), 0);
  std::vector<uint32_t> reused(all_pairs.size(), 0);
  ctx_->pool().parallel_for(
      all_pairs.size(), /*min_grain=*/16, [&](size_t p) {
        const auto [i, j] = all_pairs[p];
        PairState& st = pairs_.at(pair_key(modes_[i].id, modes_[j].id));
        PairVerdict result;
        for (CornerId c = 0; c < num_corners; ++c) {
          if (!st.checked[c]) {
            st.verdicts[c] = check_corner(modes_[i], modes_[j], c);
            st.checked[c] = 1;
            ++computed[p];
          } else {
            ++reused[p];
          }
          if (!st.verdicts[c].mergeable) {
            result = st.verdicts[c];
            if (!corners_.single()) {
              result.corner = corners_.name(c);
              result.corner_id = c;
              result.corners_checked = c + 1;
            }
            combined[p] = std::move(result);
            return;
          }
        }
        result = st.verdicts[kPrimaryCorner];
        if (!corners_.single()) {
          result.corners_checked = static_cast<uint32_t>(num_corners);
        }
        combined[p] = std::move(result);
      });
  for (size_t p = 0; p < all_pairs.size(); ++p) {
    out.pair_corner_checks += computed[p];
    out.pair_corner_reuses += reused[p];
    if (computed[p] > 0) {
      ++out.pairs_rechecked;
    } else {
      ++out.pairs_skipped_clean;
    }
  }
  // One pair_verdict event per pair with fresh work, serial, index order.
  if (obs::Journal::enabled()) {
    for (size_t p = 0; p < all_pairs.size(); ++p) {
      if (computed[p] == 0) continue;
      const auto [i, j] = all_pairs[p];
      const PairVerdict& v = combined[p];
      obs::JournalEvent ev("pair_verdict");
      ev.field("session", journal_id_)
          .field("commit", commit_seq_)
          .field("a", journal_name(modes_[i].name, modes_[i].id))
          .field("b", journal_name(modes_[j].name, modes_[j].id))
          .field("a_id", modes_[i].id)
          .field("b_id", modes_[j].id)
          .field("mergeable", v.mergeable);
      if (!v.mergeable) {
        ev.field("category", v.category)
            .field("subject", v.subject)
            .field("reason", v.reason);
        if (v.subject_key_id != 0) ev.field("key_id", v.subject_key_id);
      }
      // Corner provenance only at C > 1: single-corner journals stay
      // byte-identical to the flat engine's event shape.
      if (!corners_.single()) {
        ev.field("corners_checked", static_cast<uint64_t>(v.corners_checked));
        if (!v.mergeable) {
          ev.field("corner", v.corner)
              .field("corner_id", static_cast<uint64_t>(v.corner_id));
        }
      }
      if (v.policy != "exact") {
        ev.field("policy", v.policy);
        if (!v.window_field.empty()) {
          ev.field("window_field", v.window_field)
              .field("window_used", v.window_used)
              .field("window_budget", v.window_budget);
        }
      }
    }
  }
  MM_COUNT("mcmm/pairs_rechecked", out.pairs_rechecked);
  MM_COUNT("mcmm/pairs_skipped_clean", out.pairs_skipped_clean);
  MM_COUNT("mcmm/pair_corner_checks", out.pair_corner_checks);
  MM_COUNT("mcmm/pair_corner_reuses", out.pair_corner_reuses);

  // ONE cover over the combined verdicts — the mode partition is shared by
  // every corner (docs/MCMM.md). Cover code is the greedy implementation
  // the flat paths use, so at C == 1 it is bit-identical to MergeSession.
  std::vector<uint8_t> adj(n * n, 0);
  std::vector<std::string> reasons(n * n);
  for (size_t i = 0; i < n; ++i) adj[i * n + i] = 1;
  for (size_t p = 0; p < all_pairs.size(); ++p) {
    const auto [i, j] = all_pairs[p];
    const PairVerdict& v = combined[p];
    adj[i * n + j] = adj[j * n + i] = v.mergeable ? 1 : 0;
    if (!v.mergeable) {
      reasons[i * n + j] = reasons[j * n + i] = v.reason;
    }
  }
  graph_ = MergeabilityGraph(n, std::move(adj), std::move(reasons));
  out.cliques = graph_.clique_cover();
  MM_COUNT("mcmm/cliques", out.cliques.size());

  for (const std::vector<size_t>& clique : out.cliques) {
    std::vector<ModeId> ids;
    ids.reserve(clique.size());
    for (size_t pos : clique) ids.push_back(modes_[pos].id);
    out.clique_ids.push_back(std::move(ids));
  }

  // Merge each clique once per corner from that corner's member decks,
  // reusing the previous commit's result when no member deck of that corner
  // changed. Corner-major so a corner's decks can be handed to qor() as one
  // flat report.
  out.merged.resize(num_corners);
  out.reused.resize(num_corners);
  std::unordered_map<std::string, std::shared_ptr<ValidatedMergeResult>>
      next_results;
  for (CornerId c = 0; c < num_corners; ++c) {
    for (size_t clique_index = 0; clique_index < out.cliques.size();
         ++clique_index) {
      const std::vector<size_t>& clique = out.cliques[clique_index];
      std::string key;
      if (policy_salt_ != 0) key = "p" + std::to_string(policy_salt_) + ":";
      if (!corners_.single()) key += "c" + std::to_string(c) + ":";
      bool any_dirty = false;
      for (size_t pos : clique) {
        key += std::to_string(modes_[pos].id);
        key += ',';
        any_dirty = any_dirty || corner_dirty(modes_[pos].id, c);
      }
      std::shared_ptr<ValidatedMergeResult> result;
      auto prev = clique_results_.find(key);
      const bool had_prev = results_valid_ && prev != clique_results_.end();
      const bool reuse = !any_dirty && had_prev;
      if (reuse) {
        result = prev->second;
        ++out.cliques_reused;
      } else {
        std::vector<const Sdc*> members;
        members.reserve(clique.size());
        for (size_t pos : clique) members.push_back(modes_[pos].decks[c]);
        result = std::make_shared<ValidatedMergeResult>(
            merge_modes(timing_graph_, members, *ctx_));
        ++out.cliques_merged;
      }
      if (obs::Journal::enabled()) {
        std::vector<std::string> names;
        names.reserve(clique.size());
        for (size_t pos : clique) {
          names.push_back(journal_name(modes_[pos].name, modes_[pos].id));
        }
        obs::JournalEvent ev("clique");
        ev.field("session", journal_id_)
            .field("commit", commit_seq_)
            .field("clique", static_cast<uint64_t>(clique_index))
            .field("action",
                   reuse ? "reused" : (had_prev ? "remerged" : "formed"));
        if (!corners_.single()) {
          ev.field("corner", corners_.name(c))
              .field("corner_id", static_cast<uint64_t>(c));
        }
        ev.string_array("members", names);
        ev.id_array("member_ids", out.clique_ids[clique_index]);
        ev.field("sdc_bytes",
                 reuse ? uint64_t{0}
                       : static_cast<uint64_t>(
                             sdc::write_sdc(*result->merge.merged).size()));
      }
      next_results.emplace(std::move(key), result);
      out.merged[c].push_back(result);
      out.reused[c].push_back(reuse);
    }
  }
  clique_results_ = std::move(next_results);
  results_valid_ = true;
  dirty_.clear();

  MM_COUNT("mcmm/commits", 1);
  MM_COUNT("mcmm/cliques_merged", out.cliques_merged);
  MM_COUNT("mcmm/cliques_reused", out.cliques_reused);
  MM_GAUGE_SET("mcmm/modes", n);
  MM_GAUGE_SET("mcmm/corners", num_corners);
  ctx_->export_stats();

  out.total_seconds = timer.elapsed_seconds();
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("commit_end");
    ev.field("session", journal_id_)
        .field("commit", commit_seq_)
        .field("modes", static_cast<uint64_t>(n))
        .field("pairs_rechecked", out.pairs_rechecked)
        .field("pairs_skipped_clean", out.pairs_skipped_clean)
        .field("cliques", static_cast<uint64_t>(out.cliques.size()))
        .field("cliques_merged", out.cliques_merged)
        .field("cliques_reused", out.cliques_reused);
    if (!corners_.single()) {
      ev.field("pair_corner_checks", out.pair_corner_checks)
          .field("pair_corner_reuses", out.pair_corner_reuses);
    }
  }
  obs::Journal::drain();
  last_ = std::move(out);
  return last_;
}

QoRReport McmmSession::qor(CornerId corner, double slack_eps) const {
  MM_ASSERT(corner < corners_.size());
  MM_ASSERT(corner < last_.merged.size());
  std::vector<const Sdc*> merged_decks;
  merged_decks.reserve(last_.merged[corner].size());
  for (const std::shared_ptr<const ValidatedMergeResult>& r :
       last_.merged[corner]) {
    merged_decks.push_back(r->merge.merged.get());
  }
  return qor_report(timing_graph_, corner_modes(corner), merged_decks,
                    last_.cliques, ctx_->options(), slack_eps);
}

}  // namespace mm::merge
