#include "merge/corner.h"

namespace mm::merge {

namespace {

struct Fnv {
  uint64_t h = 14695981039346656037ull;

  void bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u64(uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void point(const sdc::ExceptionPoint& pt) {
    u64(pt.pins.size());
    for (netlist::PinId p : pt.pins) u64(p.value());
    u64(pt.clocks.size());
    for (sdc::ClockId c : pt.clocks) u64(c.value());
  }
};

}  // namespace

uint64_t structural_fingerprint(const Sdc& sdc) {
  Fnv f;

  // Design identity (extraction output embeds pin/port ids resolved against
  // this design; full port-name folding is content_key's job — corner decks
  // are only ever matched against siblings parsed on the same design).
  const netlist::Design& design = sdc.design();
  f.str(design.name());
  f.u64(design.num_pins());
  f.u64(design.num_ports());

  // Clock table: every field clock_key/exception_signature can read.
  f.u64(sdc.num_clocks());
  for (const sdc::Clock& c : sdc.clocks()) {
    f.str(c.name);
    f.f64(c.period);
    f.u64(c.waveform.size());
    for (double w : c.waveform) f.f64(w);
    f.u64(c.sources.size());
    for (netlist::PinId p : c.sources) f.u64(p.value());
    f.u64((c.add ? 1u : 0u) | (c.propagated ? 2u : 0u) |
          (c.is_generated ? 4u : 0u));
    if (c.is_generated) {
      f.str(c.master_clock);
      f.u64(c.master_source.value());
      f.u64(static_cast<uint64_t>(c.divide_by));
      f.u64(static_cast<uint64_t>(c.multiply_by));
    }
  }

  // Exceptions: anchors AND values — an exception's value (MCP multiplier,
  // min/max delay) is part of its signature, not a corner-varying number.
  f.u64(sdc.exceptions().size());
  for (const sdc::Exception& ex : sdc.exceptions()) {
    f.u64(static_cast<uint64_t>(ex.kind));
    f.f64(ex.value);
    f.u64((ex.setup_hold.setup ? 1u : 0u) | (ex.setup_hold.hold ? 2u : 0u));
    f.point(ex.from);
    f.u64(ex.throughs.size());
    for (const sdc::ExceptionPoint& th : ex.throughs) f.point(th);
    f.point(ex.to);
  }

  // Drive/load channel shape: which channels exist, in which order —
  // values excluded (they are exactly what corners change).
  f.u64(sdc.drives().size());
  for (const sdc::DriveConstraint& dc : sdc.drives()) {
    f.u64(dc.port_pin.value());
    f.u64((dc.is_transition ? 1u : 0u) | (dc.minmax.min ? 2u : 0u) |
          (dc.minmax.max ? 4u : 0u));
  }
  f.u64(sdc.loads().size());
  for (const sdc::LoadConstraint& lc : sdc.loads()) {
    f.u64(lc.port_pin.value());
  }

  return f.h;
}

ModeSkeleton skeleton_of(const Sdc& sdc) {
  ModeSkeleton s;
  s.structure_hash = structural_fingerprint(sdc);
  s.num_clocks = sdc.num_clocks();
  s.num_exceptions = sdc.exceptions().size();
  s.num_drive_channels = sdc.drives().size();
  s.num_load_channels = sdc.loads().size();
  return s;
}

}  // namespace mm::merge
