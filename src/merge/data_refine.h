#pragma once
// Merged-mode data refinement (paper §3.2).
//
// Step 1: propagate launch clocks through the data network of the merged
// mode; any clock reaching a pin that it reaches in no individual mode gets
// a false path `-from <clock> -through <pin>` at the frontier (Constraint
// Set 5's CSTR6).
//
// Step 2: the 3-pass timing-relationship comparison (Tables 2-4):
//   pass 1 — compare state sets per (endpoint, launch, capture); mismatches
//            fixed with endpoint-level false paths; ambiguity descends;
//   pass 2 — compare per (startpoint, endpoint, launch, capture) inside the
//            ambiguous endpoints' fan-in cones; fixes use -from/-to (or
//            -from <clock> -through <startpoint> -to, the §3.1.10 trick);
//   pass 3 — enumerate the remaining ambiguous startpoint/endpoint pairs'
//            paths, compare per path, and kill merged-only-valid paths with
//            -through constraints at distinguishing reconvergence pins.
//
// All fixes only ADD false paths / re-add tighter exceptions — pessimistic
// never optimistic; anything inexpressible in SDC is left timed and counted
// in stats.unresolved_pessimism.

#include "merge/refine_context.h"

namespace mm::merge {

void refine_data_network(const RefineContext& ctx, MergeResult& result,
                         const MergeOptions& options);

}  // namespace mm::merge
