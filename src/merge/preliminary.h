#pragma once
// Preliminary mode merging (paper §3.1): build the superset mode whose
// timing relationships are a superset of every individual mode's — union of
// clocks and external delays, tolerance-merge of clock-based constraints,
// intersection of case analysis / disable timing / drive-load, derived
// clock exclusivity, and exception intersection with uniquification.
//
// The preliminary merged mode may temporarily time extra paths; §3.2
// refinement (clock_refine / data_refine) removes them.

#include "merge/types.h"

namespace mm::merge {

class MergeContext;

/// Merge N mergeable modes into one preliminary superset Sdc.
/// All modes must reference the same Design. Constructs a transient
/// MergeContext; prefer the context overload when one is already live.
MergeResult preliminary_merge(const std::vector<const Sdc*>& modes,
                              const MergeOptions& options);

/// Session entry: clock identity and exception grouping reuse the per-mode
/// relationship sets ctx already extracted (or extracts-and-caches now), so
/// a merge_mode_set run derives each mode's keys exactly once across
/// mergeability analysis and preliminary merging.
MergeResult preliminary_merge(const std::vector<const Sdc*>& modes,
                              MergeContext& ctx);

}  // namespace mm::merge
