#pragma once
// Preliminary mode merging (paper §3.1): build the superset mode whose
// timing relationships are a superset of every individual mode's — union of
// clocks and external delays, tolerance-merge of clock-based constraints,
// intersection of case analysis / disable timing / drive-load, derived
// clock exclusivity, and exception intersection with uniquification.
//
// The preliminary merged mode may temporarily time extra paths; §3.2
// refinement (clock_refine / data_refine) removes them.

#include "merge/types.h"

namespace mm::merge {

/// Merge N mergeable modes into one preliminary superset Sdc.
/// All modes must reference the same Design.
MergeResult preliminary_merge(const std::vector<const Sdc*>& modes,
                              const MergeOptions& options);

}  // namespace mm::merge
