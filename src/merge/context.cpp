#include "merge/context.h"

#include "obs/obs.h"

namespace mm::merge {

MergeContext::MergeContext(MergeOptions options)
    : options_(options),
      owned_keys_(std::make_unique<CanonicalKeyTable>()),
      keys_(owned_keys_.get()),
      cache_(options.use_interned_keys ? keys_ : nullptr) {}

MergeContext::MergeContext(MergeContext& parent, MergeOptions options)
    : options_(options),
      keys_(&parent.keys()),
      cache_(options.use_interned_keys ? keys_ : nullptr),
      shared_pool_(&parent.pool()) {}

ThreadPool& MergeContext::pool() {
  if (shared_pool_ != nullptr) return *shared_pool_;
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(
        options_.num_threads == 0 ? 0 : options_.num_threads);
  }
  return *pool_;
}

std::shared_ptr<const ModeRelationships> MergeContext::relationships(
    const Sdc& sdc) {
  if (options_.use_relationship_cache) return cache_.get(sdc);
  return std::make_shared<const ModeRelationships>(extract_relationships(
      sdc, options_.use_interned_keys ? keys_ : nullptr));
}

void MergeContext::export_stats() const {
  MM_GAUGE_SET("merge/key_table_keys", keys_->num_keys());
  MM_GAUGE_SET("merge/key_table_bytes", keys_->bytes());
  MM_GAUGE_SET("merge/relationship_cache_entries", cache_.size());
  const RelationshipCache::Stats s = cache_.stats();
  MM_GAUGE_SET("merge/relationship_cache_hit_total", s.hits);
  MM_GAUGE_SET("merge/relationship_cache_miss_total", s.misses);
}

}  // namespace mm::merge
