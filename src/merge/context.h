#pragma once
// MergeContext: one merge session's shared state. The engine used to
// re-derive canonical keys and relationship sets independently in
// mergeability analysis, preliminary merge, and refinement, and to spin up
// a fresh thread pool per pass. A MergeContext owns, for the lifetime of
// one merge_mode_set run (or any sequence of related merges):
//
//   - the MergeOptions every pass reads,
//   - a CanonicalKeyTable (merge/keys.h) defining the session's KeyId
//     space, when options.use_interned_keys,
//   - a RelationshipCache bound to that table, so the per-mode extraction
//     the mergeability pass pays for is reused verbatim by preliminary
//     merge,
//   - the ThreadPool all passes fan out on (sized by options.num_threads,
//     created lazily on first use),
//
// and exports the key-layer health gauges into the mm.stats/1 snapshot.
//
// The options-only overloads of merge_modes / merge_mode_set /
// preliminary_merge construct a transient context, so existing callers keep
// working; anything that runs more than one pass should construct one
// context and thread it through.

#include <memory>

#include "merge/keys.h"
#include "merge/relationship_cache.h"
#include "merge/types.h"
#include "util/thread_pool.h"

namespace mm::merge {

class MergeContext {
 public:
  explicit MergeContext(MergeOptions options = {});
  /// Block-scoped child context (hierarchical sharded merging,
  /// docs/SHARDING.md): shares the parent's CanonicalKeyTable and
  /// ThreadPool — so KeyIds interned by any block compare across blocks
  /// and all blocks fan out on one pool — but owns its own options and a
  /// private RelationshipCache bound to the shared table. The parent must
  /// outlive the child.
  MergeContext(MergeContext& parent, MergeOptions options);
  MergeContext(const MergeContext&) = delete;
  MergeContext& operator=(const MergeContext&) = delete;

  const MergeOptions& options() const { return options_; }

  /// The session's canonical-key interner. Only consulted when
  /// options().use_interned_keys.
  CanonicalKeyTable& keys() { return *keys_; }
  const CanonicalKeyTable& keys() const { return *keys_; }

  /// The session's relationship cache (bound to keys() when interning).
  RelationshipCache& cache() { return cache_; }

  /// The session's thread pool, created on first use with
  /// options().num_threads workers (0 = hardware concurrency). Reused by
  /// every pass instead of one pool per pass.
  ThreadPool& pool();

  /// One mode's relationship set: memoized via cache() when
  /// options().use_relationship_cache, else extracted directly (still
  /// interned when options().use_interned_keys).
  std::shared_ptr<const ModeRelationships> relationships(const Sdc& sdc);

  /// Export key-table and relationship-cache health as mm.stats/1 gauges
  /// (merge/key_table_*, merge/relationship_cache_*).
  void export_stats() const;

 private:
  MergeOptions options_;
  std::unique_ptr<CanonicalKeyTable> owned_keys_;  // null for child contexts
  CanonicalKeyTable* keys_ = nullptr;
  RelationshipCache cache_;
  std::unique_ptr<ThreadPool> pool_;    // null for child contexts
  ThreadPool* shared_pool_ = nullptr;   // set for child contexts
};

}  // namespace mm::merge
