#pragma once
// Mode-merging orchestrator — the library's top-level public API.
//
//   merge_modes: N mergeable modes -> 1 superset mode
//                (preliminary merge -> clock refinement -> data refinement
//                 -> equivalence validation), the full paper §3 flow.
//   merge_mode_set: the complete flow over an arbitrary mode set —
//                mergeability graph, greedy clique cover, one merge per
//                clique (Figure 2 + Tables 5/6 configuration).

#include "merge/context.h"
#include "merge/equivalence.h"
#include "merge/mergeability.h"
#include "merge/types.h"

namespace mm::merge {

struct ValidatedMergeResult {
  MergeResult merge;
  EquivalenceReport equivalence;  // empty unless options.validate
};

/// Merge N modes (assumed mergeable) into one superset mode over `graph`.
/// Constructs a transient MergeContext from `options`.
ValidatedMergeResult merge_modes(const timing::TimingGraph& graph,
                                 const std::vector<const Sdc*>& modes,
                                 const MergeOptions& options = {});

/// Session entry: every pass shares ctx's key table, relationship cache,
/// and thread pool.
ValidatedMergeResult merge_modes(const timing::TimingGraph& graph,
                                 const std::vector<const Sdc*>& modes,
                                 MergeContext& ctx);

struct MergedModeSet {
  /// One merged mode per clique (cliques of size 1 reuse the original mode's
  /// constraints verbatim).
  std::vector<ValidatedMergeResult> merged;
  /// Clique membership: cliques[i] lists input mode indices merged into
  /// merged[i].
  std::vector<std::vector<size_t>> cliques;
  size_t num_input_modes = 0;
  double total_seconds = 0.0;

  size_t num_merged_modes() const { return merged.size(); }
  double reduction_percent() const {
    if (num_input_modes == 0) return 0.0;
    return 100.0 *
           (1.0 - static_cast<double>(num_merged_modes()) /
                      static_cast<double>(num_input_modes));
  }
};

/// Full flow: mergeability analysis + clique cover + per-clique merges.
/// Constructs one MergeContext for the whole run.
MergedModeSet merge_mode_set(const timing::TimingGraph& graph,
                             const std::vector<const Sdc*>& modes,
                             const MergeOptions& options = {});

/// Session entry: mergeability analysis, every clique's preliminary merge,
/// refinement, and validation all flow through ctx — each mode's
/// relationship set is extracted (and its keys interned) exactly once.
MergedModeSet merge_mode_set(const timing::TimingGraph& graph,
                             const std::vector<const Sdc*>& modes,
                             MergeContext& ctx);

/// Human-readable summary of one merge (stats + notes).
std::string report_merge(const MergeResult& result,
                         const EquivalenceReport& equivalence);

}  // namespace mm::merge
