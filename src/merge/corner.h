#pragma once
// Multi-corner data model (ROADMAP "Full MCMM"): corners of one mode differ
// in *values* — derates, loads, voltages move latencies, uncertainties,
// transitions and drive/load numbers — while the mode's *topology* (clock
// definitions, exception anchors, constraint presence) is shared. The
// engine therefore splits one mode's relationship data into
//
//   ModeSkeleton  — the value-independent structure, interned once per mode
//                   into the shared CanonicalKeyTable (clock keys,
//                   exception signatures, drive/load channel shape), and
//   CornerDelta   — one per-corner table of the values riding on that
//                   structure (relationship_cache.h fills it by a cheap
//                   value-only re-scan of the corner deck),
//
// turning modes x corners relationship extraction into modes skeleton
// interns + modes x corners delta fills. structural_fingerprint() is the
// hash that decides whether a corner deck really shares its mode's
// skeleton: it covers exactly the inputs relationship extraction reads,
// with the value fields of the per-corner constraint lists excluded.
// Equal fingerprints (same design) imply equal clock keys, equal exception
// signatures, and an equal drive/load channel shape — so a skeleton's
// interned view can be reused for the corner verbatim.

#include <cstdint>
#include <string>
#include <vector>

#include "sdc/sdc.h"

namespace mm::merge {

using Sdc = sdc::Sdc;

/// Index of a corner within a CornerSet. Corner 0 is the primary corner:
/// its deck defines the mode's skeleton and the single-corner (C=1) path
/// is byte-identical to the flat engine.
using CornerId = uint32_t;
constexpr CornerId kPrimaryCorner = 0;

/// The registered corners of an MCMM run: an ordered set of names.
/// CornerIds are positions; order is fixed at registration and shared by
/// every mode in the matrix (decks are passed corner-major per mode).
class CornerSet {
 public:
  /// Single default corner — the flat, single-corner engine.
  CornerSet() : names_{"default"} {}
  explicit CornerSet(std::vector<std::string> names)
      : names_(std::move(names)) {
    if (names_.empty()) names_.push_back("default");
  }

  CornerId add(std::string name) {
    names_.push_back(std::move(name));
    return static_cast<CornerId>(names_.size() - 1);
  }

  size_t size() const { return names_.size(); }
  bool single() const { return names_.size() == 1; }
  const std::string& name(CornerId c) const { return names_[c]; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// Value-independent summary of one mode's relationship structure. The
/// authoritative skeleton *data* lives in the primary corner's
/// ModeRelationships entry (relationship_cache.h) — this struct is the
/// identity card: the structure hash corner decks are matched against,
/// plus counts for reports.
struct ModeSkeleton {
  uint64_t structure_hash = 0;
  size_t num_clocks = 0;
  size_t num_exceptions = 0;
  size_t num_drive_channels = 0;  // drive entries (channel shape, not values)
  size_t num_load_channels = 0;
};

/// Hash of everything relationship extraction reads except per-corner
/// values: design identity, the full clock table, exceptions (kind, value,
/// setup/hold, anchor pins + clock indices), and the drive/load channel
/// shape (port, type, min/max flags — values excluded). Two decks with
/// equal fingerprints yield relationship sets that differ at most in the
/// clock value tables and the drive/load values.
uint64_t structural_fingerprint(const Sdc& sdc);

/// The skeleton identity card of a deck (one structural_fingerprint pass).
ModeSkeleton skeleton_of(const Sdc& sdc);

}  // namespace mm::merge
