#include "merge/qor.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json.h"
#include "obs/obs.h"
#include "timing/sta.h"
#include "util/thread_pool.h"

namespace mm::merge {

QoRReport qor_report(const timing::TimingGraph& graph,
                     const std::vector<const Sdc*>& modes,
                     const MergedModeSet& merged, const MergeOptions& options,
                     double slack_eps) {
  std::vector<const Sdc*> merged_decks;
  merged_decks.reserve(merged.merged.size());
  for (const ValidatedMergeResult& r : merged.merged) {
    merged_decks.push_back(r.merge.merged.get());
  }
  return qor_report(graph, modes, merged_decks, merged.cliques, options,
                    slack_eps);
}

QoRReport qor_report(const timing::TimingGraph& graph,
                     const std::vector<const Sdc*>& modes,
                     const std::vector<const Sdc*>& merged_decks,
                     const std::vector<std::vector<size_t>>& cliques,
                     const MergeOptions& options, double slack_eps) {
  MM_SPAN("merge/qor_report");
  QoRReport out;
  out.policy = options.policy.name();
  out.pessimism_bound = options.policy.pessimism_bound();
  out.slack_eps = slack_eps;

  ThreadPool pool(options.num_threads);
  double pessimism_sum = 0.0;

  for (size_t c = 0; c < cliques.size(); ++c) {
    const std::vector<size_t>& clique = cliques[c];
    if (clique.size() < 2) continue;  // merged deck is the mode verbatim

    // Members + the merged deck as the last lane of one batched walk, so
    // per-lane slacks come from identical delays and level schedules.
    std::vector<const Sdc*> lanes;
    lanes.reserve(clique.size() + 1);
    for (size_t m : clique) lanes.push_back(modes[m]);
    lanes.push_back(merged_decks[c]);
    const timing::BatchStaResult batch =
        timing::run_sta_batch(graph, lanes, /*analyze_hold=*/false, &pool);
    const timing::StaResult& merged_sta = batch.per_mode.back();

    // Worst (minimum) individual slack per endpoint over the member lanes.
    std::unordered_map<uint32_t, float> worst;
    for (size_t l = 0; l + 1 < batch.per_mode.size(); ++l) {
      for (const auto& [ep, slack] : batch.per_mode[l].endpoint_slack) {
        auto [it, inserted] = worst.emplace(ep, slack);
        if (!inserted) it->second = std::min(it->second, slack);
      }
    }

    CliqueQoR q;
    q.clique_index = c;
    q.num_members = clique.size();
    double clique_sum = 0.0;
    for (const auto& [ep, individual] : worst) {
      auto it = merged_sta.endpoint_slack.find(ep);
      if (it == merged_sta.endpoint_slack.end()) {
        ++q.missing_endpoints;
        continue;
      }
      ++q.endpoints_compared;
      const double delta =
          static_cast<double>(individual) - static_cast<double>(it->second);
      if (delta < -slack_eps) {
        ++q.optimism_violations;
        q.max_optimism = std::max(q.max_optimism, -delta);
      } else if (delta > 0.0) {
        q.max_pessimism = std::max(q.max_pessimism, delta);
        clique_sum += delta;
      }
    }
    if (q.endpoints_compared > 0) {
      q.mean_pessimism = clique_sum / static_cast<double>(q.endpoints_compared);
    }

    out.endpoints_compared += q.endpoints_compared;
    out.missing_endpoints += q.missing_endpoints;
    out.optimism_violations += q.optimism_violations;
    out.max_optimism = std::max(out.max_optimism, q.max_optimism);
    out.max_pessimism = std::max(out.max_pessimism, q.max_pessimism);
    pessimism_sum += clique_sum;
    out.cliques.push_back(q);
  }
  if (out.endpoints_compared > 0) {
    out.mean_pessimism =
        pessimism_sum / static_cast<double>(out.endpoints_compared);
  }
  MM_COUNT("merge/qor_cliques", out.cliques.size());
  MM_COUNT("merge/qor_optimism_violations", out.optimism_violations);
  return out;
}

std::string write_qor_json(const QoRReport& report) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mm.qor/1");
  json.key("policy").value(report.policy);
  json.key("pessimism_bound").value(report.pessimism_bound);
  json.key("slack_eps").value(report.slack_eps);
  json.key("never_optimistic").value(report.never_optimistic());
  json.key("endpoints_compared")
      .value(static_cast<uint64_t>(report.endpoints_compared));
  json.key("missing_endpoints")
      .value(static_cast<uint64_t>(report.missing_endpoints));
  json.key("optimism_violations")
      .value(static_cast<uint64_t>(report.optimism_violations));
  json.key("max_optimism").value(report.max_optimism);
  json.key("max_pessimism").value(report.max_pessimism);
  json.key("mean_pessimism").value(report.mean_pessimism);
  json.key("cliques").begin_array();
  for (const CliqueQoR& q : report.cliques) {
    json.begin_object();
    json.key("clique").value(static_cast<uint64_t>(q.clique_index));
    json.key("members").value(static_cast<uint64_t>(q.num_members));
    json.key("endpoints_compared")
        .value(static_cast<uint64_t>(q.endpoints_compared));
    json.key("missing_endpoints")
        .value(static_cast<uint64_t>(q.missing_endpoints));
    json.key("optimism_violations")
        .value(static_cast<uint64_t>(q.optimism_violations));
    json.key("max_optimism").value(q.max_optimism);
    json.key("max_pessimism").value(q.max_pessimism);
    json.key("mean_pessimism").value(q.mean_pessimism);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace mm::merge
