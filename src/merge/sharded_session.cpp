#include "merge/sharded_session.h"

#include <algorithm>
#include <atomic>

#include "obs/journal.h"
#include "obs/obs.h"

namespace mm::merge {

namespace {

/// Position of a verdict's category in the flat check's stage order. All
/// clock categories share stage 0: within it the flat check visits
/// canonical keys in string order, so the earliest clock conflict is the
/// one with the smallest subject key — recoverable across shards.
int category_rank(const std::string& category) {
  if (category.rfind("clock", 0) == 0) return 0;
  if (category == "drive") return 1;
  if (category == "load") return 2;
  if (category == "exception_conflict") return 3;
  return 4;  // exception_one_sided
}

/// Boundary pre-filter: the boundary shard holds no drives/loads by
/// construction, so a pair with no crossing exceptions on either side and
/// no shared boundary clock key is provably conflict-free there — the
/// stitch decides it from the boundary summaries without running the check.
bool boundary_trivially_mergeable(const ModeRelationships& a,
                                  const ModeRelationships& b) {
  if (!a.exceptions.empty() || !b.exceptions.empty()) return false;
  if (a.interned && b.interned) {
    const auto& small = a.by_key_id.size() <= b.by_key_id.size() ? a.by_key_id
                                                                 : b.by_key_id;
    const auto& large = a.by_key_id.size() <= b.by_key_id.size() ? b.by_key_id
                                                                 : a.by_key_id;
    for (const auto& [key, idx] : small) {
      if (large.count(key)) return false;
    }
    return true;
  }
  for (const auto& [key, idx] : a.by_key) {
    if (b.by_key.count(key)) return false;
  }
  return true;
}

}  // namespace

struct ShardedMergeSession::Counters {
  std::atomic<size_t> pairs_checked{0};
  std::atomic<size_t> pairs_local{0};
  std::atomic<size_t> boundary_skips{0};
  std::atomic<size_t> pairs_descended{0};
};

ShardedMergeSession::ShardedMergeSession(const timing::TimingGraph& graph,
                                         MergeContext& ctx)
    : timing_graph_(graph), ctx_(&ctx), session_(graph, ctx) {
  init(graph);
}

ShardedMergeSession::ShardedMergeSession(const timing::TimingGraph& graph,
                                         MergeOptions options)
    : timing_graph_(graph),
      owned_ctx_(std::make_unique<MergeContext>(options)),
      ctx_(owned_ctx_.get()),
      session_(graph, *owned_ctx_) {
  init(graph);
}

ShardedMergeSession::~ShardedMergeSession() = default;

void ShardedMergeSession::init(const timing::TimingGraph& graph) {
  MM_SPAN("merge/shard_init");
  const MergeOptions& options = ctx_->options();
  netlist::PartitionOptions popt;
  popt.num_blocks = options.num_shards;
  popt.seed = options.shard_seed;
  partition_ = netlist::partition_design(graph.design(), popt);
  counters_ = std::make_unique<Counters>();
  if (partition_.num_blocks() <= 1) return;  // flat: MergeSession untouched

  envelope_ = timing::compute_arrival_envelope(graph);
  block_ctxs_.reserve(partition_.num_blocks());
  for (size_t b = 0; b < partition_.num_blocks(); ++b) {
    block_ctxs_.push_back(std::make_unique<MergeContext>(*ctx_, options));
  }
  session_.set_pair_checker(
      [this](const Sdc& a, const Sdc& b, const ModeRelationships*,
             const ModeRelationships*) { return stitch_pair(a, b); });
}

ShardedMergeSession::ModeId ShardedMergeSession::add_mode(std::string name,
                                                          const Sdc* sdc) {
  retain(sdc);
  const ModeId id = session_.add_mode(std::move(name), sdc);
  mode_sdc_[id] = sdc;
  return id;
}

void ShardedMergeSession::remove_mode(ModeId id) {
  auto it = mode_sdc_.find(id);
  session_.remove_mode(id);
  if (it != mode_sdc_.end()) {
    release(it->second);
    mode_sdc_.erase(it);
  }
}

void ShardedMergeSession::update_mode(ModeId id, const Sdc* sdc) {
  retain(sdc);
  session_.update_mode(id, sdc);
  auto it = mode_sdc_.find(id);
  if (it != mode_sdc_.end()) release(it->second);
  mode_sdc_[id] = sdc;
}

const ShardedMergeSession::CommitResult& ShardedMergeSession::commit() {
  if (partition_.num_blocks() <= 1) return session_.commit();

  MM_SPAN("merge/shard_commit");
  counters_ = std::make_unique<Counters>();
  emit_journal_topology();
  const CommitResult& result = session_.commit();
  last_stitch_.pairs_checked = counters_->pairs_checked.load();
  last_stitch_.pairs_local = counters_->pairs_local.load();
  last_stitch_.boundary_skips = counters_->boundary_skips.load();
  last_stitch_.pairs_descended = counters_->pairs_descended.load();
  MM_COUNT("shard/pairs_checked", last_stitch_.pairs_checked);
  MM_COUNT("shard/pairs_local", last_stitch_.pairs_local);
  MM_COUNT("shard/boundary_skips", last_stitch_.boundary_skips);
  MM_COUNT("shard/pairs_descended", last_stitch_.pairs_descended);
  emit_journal_stitch();
  return result;
}

const std::vector<timing::BoundaryModel>& ShardedMergeSession::boundary_models(
    const Sdc* sdc) const {
  static const std::vector<timing::BoundaryModel> kEmpty;
  auto it = projections_.find(sdc);
  return it == projections_.end() ? kEmpty : it->second.boundary;
}

const ModeRelationships& ShardedMergeSession::shard_view(const Sdc* sdc,
                                                         size_t shard) const {
  return *projections_.at(sdc).shards.at(shard);
}

void ShardedMergeSession::retain(const Sdc* sdc) {
  if (partition_.num_blocks() <= 1) return;  // flat: no projections needed
  auto it = projections_.find(sdc);
  if (it == projections_.end()) {
    it = projections_.emplace(sdc, build_projection(*sdc)).first;
  }
  it->second.refs++;
}

void ShardedMergeSession::release(const Sdc* sdc) {
  auto it = projections_.find(sdc);
  if (it == projections_.end()) return;
  if (--it->second.refs == 0) projections_.erase(it);
}

ShardedMergeSession::Projection ShardedMergeSession::build_projection(
    const Sdc& sdc) const {
  MM_SPAN("merge/shard_project");
  const size_t k = partition_.num_blocks();
  const uint32_t kBoundaryShard = static_cast<uint32_t>(k);

  Projection proj;
  proj.full = ctx_->relationships(sdc);
  const ModeRelationships& full = *proj.full;
  proj.boundary =
      timing::extract_boundary_models(timing_graph_, partition_, sdc,
                                      &envelope_);

  // Shard of each clock: the block of its source pins when they agree,
  // else the boundary shard; virtual clocks (no sources) are boundary.
  // Canonical clock keys embed the sorted source pin ids, so two modes'
  // same-key clocks always land in the same shard — the consistency that
  // makes the per-shard conflicts partition the flat check's conflicts.
  std::vector<uint32_t> clock_shard(sdc.num_clocks(), kBoundaryShard);
  for (size_t c = 0; c < sdc.num_clocks(); ++c) {
    const sdc::Clock& clock = sdc.clock(sdc::ClockId(c));
    if (clock.sources.empty()) continue;
    const uint32_t b0 = partition_.block_of(clock.sources.front());
    bool same = true;
    for (netlist::PinId src : clock.sources) {
      if (partition_.block_of(src) != b0) {
        same = false;
        break;
      }
    }
    if (same) clock_shard[c] = b0;
  }

  // Shard of each exception: the block of its anchor pins when they agree;
  // spanning or pin-less (clock-only / design-wide) anchors are boundary.
  // Anchor signatures embed the pins, so equal-signature exceptions of two
  // modes shard identically.
  const std::vector<sdc::Exception>& raw = sdc.exceptions();
  std::vector<uint32_t> ex_shard(raw.size(), kBoundaryShard);
  for (size_t e = 0; e < raw.size(); ++e) {
    uint32_t block = UINT32_MAX;
    bool spanning = false;
    auto visit = [&](const sdc::ExceptionPoint& pt) {
      for (netlist::PinId pin : pt.pins) {
        if (!pin.valid()) continue;
        const uint32_t b = partition_.block_of(pin);
        if (block == UINT32_MAX) {
          block = b;
        } else if (b != block) {
          spanning = true;
        }
      }
    };
    visit(raw[e].from);
    for (const sdc::ExceptionPoint& pt : raw[e].throughs) visit(pt);
    visit(raw[e].to);
    if (block != UINT32_MAX && !spanning) ex_shard[e] = block;
  }

  // Build the K+1 projected views. Each keeps the FULL mode-level sets —
  // clocks vector (so clock indices stay valid), clock_keys/clock_key_bits
  // and full_sigs/full_sig_ids (the one-sided checks and the ambiguous-pair
  // waiver compare a shard's exceptions against the *whole* other mode,
  // exactly like the flat check) — and restricts by_key/clock_order,
  // exceptions, drives and loads to the shard, preserving relative order.
  proj.shards.reserve(k + 1);
  for (uint32_t s = 0; s <= kBoundaryShard; ++s) {
    auto view = std::make_shared<ModeRelationships>();
    view->clocks = full.clocks;
    view->clock_keys = full.clock_keys;
    view->full_sigs = full.full_sigs;
    view->interned = full.interned;
    for (const auto& [key, idx] : full.by_key) {
      if (clock_shard[idx] == s) view->by_key.emplace(key, idx);
    }
    MM_ASSERT(full.exceptions.size() == raw.size());
    for (size_t e = 0; e < full.exceptions.size(); ++e) {
      if (ex_shard[e] == s) view->exceptions.push_back(full.exceptions[e]);
    }
    for (const sdc::DriveConstraint& d : full.drives) {
      if (partition_.block_of(d.port_pin) == s) view->drives.push_back(d);
    }
    for (const sdc::LoadConstraint& l : full.loads) {
      if (partition_.block_of(l.port_pin) == s) view->loads.push_back(l);
    }
    if (full.interned) {
      view->clock_key_ids = full.clock_key_ids;
      view->clock_key_bits = full.clock_key_bits;
      view->full_sig_ids = full.full_sig_ids;
      for (uint32_t idx : full.clock_order) {
        if (clock_shard[idx] == s) view->clock_order.push_back(idx);
      }
      for (const auto& [key_id, idx] : full.by_key_id) {
        if (clock_shard[idx] == s) view->by_key_id.emplace(key_id, idx);
      }
    }
    proj.shards.push_back(std::move(view));
  }
  return proj;
}

PairVerdict ShardedMergeSession::stitch_check(const Sdc& a,
                                              const Sdc& b) const {
  if (partition_.num_blocks() <= 1) {
    return check_mergeable(a, b, ctx_->options());
  }
  return stitch_pair(a, b);
}

PairVerdict ShardedMergeSession::stitch_pair(const Sdc& a,
                                             const Sdc& b) const {
  const Projection& pa = projections_.at(&a);
  const Projection& pb = projections_.at(&b);
  const size_t num_shards = pa.shards.size();  // K blocks + boundary
  counters_->pairs_checked.fetch_add(1, std::memory_order_relaxed);

  // Per-shard checks: each shard's verdict is the flat check's first
  // conflict restricted to that shard's items.
  std::vector<PairVerdict> conflicts;
  for (size_t s = 0; s < num_shards; ++s) {
    const ModeRelationships& ra = *pa.shards[s];
    const ModeRelationships& rb = *pb.shards[s];
    if (s + 1 == num_shards && boundary_trivially_mergeable(ra, rb)) {
      counters_->boundary_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const MergeOptions& opts = s < block_ctxs_.size()
                                   ? block_ctxs_[s]->options()
                                   : ctx_->options();
    PairVerdict v = check_mergeable(ra, rb, opts);
    if (!v.mergeable) conflicts.push_back(std::move(v));
  }

  if (conflicts.empty()) {
    counters_->pairs_local.fetch_add(1, std::memory_order_relaxed);
    return {true, ""};
  }

  // Stitch: recover the flat check's first conflict from the shard
  // verdicts when they order unambiguously (docs/SHARDING.md):
  //   - one conflicting shard: all conflicts live there, its verdict is
  //     the flat first conflict verbatim;
  //   - earliest conflicting stage is the clock stage: the flat check
  //     visits clock keys in string order, so the smallest conflicting
  //     subject key wins regardless of which shards the others sit in;
  //   - exactly one shard reaches the earliest stage: later-stage shards
  //     have no conflicts at that stage at all, so that shard owns the
  //     flat first conflict.
  // Anything else (two shards conflicting at the same non-clock stage,
  // whose within-stage order the subjects do not encode) descends to the
  // full-netlist check.
  const PairVerdict* chosen = nullptr;
  if (conflicts.size() == 1) {
    chosen = &conflicts.front();
  } else {
    int min_rank = category_rank(conflicts.front().category);
    for (size_t i = 1; i < conflicts.size(); ++i) {
      min_rank = std::min(min_rank, category_rank(conflicts[i].category));
    }
    if (min_rank == 0) {
      for (const PairVerdict& v : conflicts) {
        if (category_rank(v.category) != 0) continue;
        if (chosen == nullptr || v.subject < chosen->subject) chosen = &v;
      }
    } else {
      for (const PairVerdict& v : conflicts) {
        if (category_rank(v.category) != min_rank) continue;
        if (chosen != nullptr) {
          chosen = nullptr;  // two shards at the same stage: undecidable
          break;
        }
        chosen = &v;
      }
    }
  }
  if (chosen != nullptr) {
    counters_->pairs_local.fetch_add(1, std::memory_order_relaxed);
    return *chosen;
  }

  counters_->pairs_descended.fetch_add(1, std::memory_order_relaxed);
  return check_mergeable(*pa.full, *pb.full, ctx_->options());
}

void ShardedMergeSession::emit_journal_topology() {
  if (topology_journaled_ || !obs::Journal::enabled()) return;
  topology_journaled_ = true;
  for (size_t b = 0; b < partition_.num_blocks(); ++b) {
    obs::JournalEvent ev("shard");
    ev.field("block", static_cast<uint64_t>(b))
        .field("instances",
               static_cast<uint64_t>(partition_.block_instance_counts()[b]))
        .field("boundary_pins",
               static_cast<uint64_t>(partition_.block_boundary_counts()[b]));
  }
  obs::JournalEvent ev("shard_topology");
  ev.field("blocks", static_cast<uint64_t>(partition_.num_blocks()))
      .field("boundary_pins",
             static_cast<uint64_t>(partition_.boundary_pins().size()))
      .field("crossing_nets",
             static_cast<uint64_t>(partition_.num_crossing_nets()));
}

void ShardedMergeSession::emit_journal_stitch() const {
  if (!obs::Journal::enabled()) return;
  {
    obs::JournalEvent ev("shard_stitch");
    ev.field("pairs_checked", static_cast<uint64_t>(last_stitch_.pairs_checked))
        .field("pairs_local", static_cast<uint64_t>(last_stitch_.pairs_local))
        .field("boundary_skips",
               static_cast<uint64_t>(last_stitch_.boundary_skips))
        .field("pairs_descended",
               static_cast<uint64_t>(last_stitch_.pairs_descended));
  }
  obs::Journal::drain();
}

}  // namespace mm::merge
