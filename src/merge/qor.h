#pragma once
// QoR conformity report (paper Table 6 spirit, extended with merge-policy
// accounting): per clique, compare the merged deck's per-endpoint worst
// setup slacks against the worst slack over its member modes, then
// aggregate into one mm.qor/1 document (docs/POLICIES.md).
//
// The invariant the windowed policy sells is NEVER OPTIMISTIC: the merged
// deck may tighten an endpoint's slack (pessimism, bounded by
// MergePolicy::pessimism_bound()), but it must never loosen one, and it
// must never silently stop checking an endpoint a member mode timed.
// Fuzz property P7 (src/fuzz) asserts never_optimistic() on every windowed
// case it generates; modemerge --qor-out emits the JSON for sign-off.

#include <string>
#include <vector>

#include "merge/merger.h"
#include "merge/types.h"

namespace mm::merge {

/// Slack-delta summary of one multi-member clique. Deltas are
/// (worst individual slack) - (merged slack) per endpoint: positive =
/// merged is tighter (pessimistic, safe), negative = looser (optimistic,
/// a violation when it exceeds slack_eps).
struct CliqueQoR {
  size_t clique_index = 0;
  size_t num_members = 0;
  size_t endpoints_compared = 0;
  /// Endpoints timed by at least one member but absent from the merged
  /// deck's results — checks the merge silently dropped: optimism.
  size_t missing_endpoints = 0;
  /// Compared endpoints where the merged slack is looser than the worst
  /// individual slack by more than slack_eps.
  size_t optimism_violations = 0;
  double max_optimism = 0.0;   // largest loosening seen (0 when none)
  double max_pessimism = 0.0;  // largest tightening seen
  double mean_pessimism = 0.0; // mean positive delta over compared endpoints
};

struct QoRReport {
  std::string policy;            // options.policy.name()
  double pessimism_bound = 0.0;  // options.policy.pessimism_bound()
  double slack_eps = 0.0;
  std::vector<CliqueQoR> cliques;  // multi-member cliques only
  // Aggregates over all reported cliques.
  size_t endpoints_compared = 0;
  size_t missing_endpoints = 0;
  size_t optimism_violations = 0;
  double max_optimism = 0.0;
  double max_pessimism = 0.0;
  double mean_pessimism = 0.0;

  /// The hard policy invariant: no loosened slack, no dropped endpoint.
  bool never_optimistic() const {
    return optimism_violations == 0 && missing_endpoints == 0;
  }
};

/// Build the report over a completed merge: one batched setup-only STA walk
/// per multi-member clique, with the members and the merged deck as lanes
/// of the same walk (timing/sta_batch.h), then per-endpoint deltas.
/// Singleton cliques reuse the original constraints verbatim and are
/// skipped. `slack_eps` absorbs float accumulation noise in the
/// optimism direction only — pessimism is reported at full precision.
QoRReport qor_report(const timing::TimingGraph& graph,
                     const std::vector<const Sdc*>& modes,
                     const MergedModeSet& merged, const MergeOptions& options,
                     double slack_eps = 1e-4);

/// Deck-level entry: the same report over bare merged decks + clique
/// membership, without requiring a MergedModeSet (whose results are
/// move-only). This is how MCMM gates the invariant per corner: a corner's
/// decks and its per-clique merged decks form one flat report, and
/// McmmSession::qor runs it for each registered corner — never-optimistic
/// must hold in every corner, not just the primary one (docs/MCMM.md).
/// `merged_decks` is indexed like `cliques`.
QoRReport qor_report(const timing::TimingGraph& graph,
                     const std::vector<const Sdc*>& modes,
                     const std::vector<const Sdc*>& merged_decks,
                     const std::vector<std::vector<size_t>>& cliques,
                     const MergeOptions& options, double slack_eps = 1e-4);

/// Serialize as an mm.qor/1 JSON document (schema in docs/POLICIES.md).
std::string write_qor_json(const QoRReport& report);

}  // namespace mm::merge
