#include "merge/clock_refine.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "obs/obs.h"
#include "util/logger.h"

namespace mm::merge {

using timing::Arc;
using timing::ArcId;
using timing::ArcKind;
using timing::ModeGraph;
using timing::TimingGraph;

namespace {

void infer_disables(const RefineContext& ctx, MergeResult& result) {
  Sdc& merged = *result.merged;

  // Candidate pins: case-analysis targets of any individual mode.
  std::set<uint32_t> candidates;
  for (const Sdc* mode : ctx.modes) {
    for (const sdc::CaseAnalysis& ca : mode->case_analysis()) {
      candidates.insert(ca.pin.value());
    }
  }
  if (candidates.empty()) return;

  // Merged constants as they stand (before any inferred disables).
  const ModeGraph merged_view(*ctx.graph, merged);

  for (uint32_t pv : candidates) {
    const PinId pin(pv);
    if (merged_view.is_constant(pin)) continue;  // already dead in merged
    bool constant_everywhere = true;
    for (const auto& mg : ctx.mode_graphs) {
      if (!mg->is_constant(pin)) {
        constant_everywhere = false;
        break;
      }
    }
    if (!constant_everywhere) continue;
    sdc::DisableTiming dt;
    dt.pin = pin;
    merged.disables().push_back(dt);
    ++result.stats.inferred_disables;
    result.note("inferred set_disable_timing on " +
                std::string(ctx.graph->design().pin_name(pin)) +
                " (constant in every individual mode)");
  }
}

void refine_clock_propagation(const RefineContext& ctx, MergeResult& result) {
  const TimingGraph& graph = *ctx.graph;
  Sdc& merged = *result.merged;
  const ClockMap& map = result.clock_map;

  // allowed[pin] = merged clock ids justified by >= 1 individual mode.
  std::vector<std::set<uint32_t>> allowed(graph.num_nodes());
  for (size_t m = 0; m < ctx.modes.size(); ++m) {
    const ModeGraph& mg = *ctx.mode_graphs[m];
    for (size_t p = 0; p < graph.num_nodes(); ++p) {
      for (const timing::ClockArrival& ca : mg.clocks_on(PinId(p))) {
        const ClockId mc = map.merged_of(m, ca.clock);
        if (mc.valid()) allowed[p].insert(mc.value());
      }
    }
  }

  // Merged-mode view with the disables inferred so far (constants + arc
  // enables for the simulation).
  const ModeGraph merged_view(graph, merged);

  // Simulate merged clock propagation with the allowed-check inline.
  // presence[pin] = merged clocks present; a clock reaching a pin where it
  // is not allowed becomes a -stop_propagation constraint at that pin and
  // does not continue (matching our ModeGraph stop semantics).
  std::vector<std::set<uint32_t>> presence(graph.num_nodes());
  std::set<std::pair<uint32_t, uint32_t>> stops;  // (pin, clock)

  auto already_stopped = [&](PinId pin, ClockId clock) {
    for (const sdc::ClockSenseStop& s : merged.clock_sense_stops()) {
      if (s.pin == pin && (!s.clock.valid() || s.clock == clock)) return true;
    }
    return false;
  };

  auto try_insert = [&](PinId pin, ClockId clock) {
    if (already_stopped(pin, clock)) return;
    if (!allowed[pin.index()].count(clock.value())) {
      stops.emplace(pin.value(), clock.value());
      return;
    }
    presence[pin.index()].insert(clock.value());
  };

  auto run_pass = [&]() {
    for (PinId pin : graph.topo_order()) {
      if (presence[pin.index()].empty()) continue;
      if (merged_view.is_constant(pin)) continue;
      for (ArcId aid : graph.fanout(pin)) {
        if (!merged_view.arc_enabled(aid)) continue;
        const Arc& arc = graph.arc(aid);
        if (arc.kind == ArcKind::kLaunch) continue;
        for (uint32_t c : presence[pin.index()]) {
          try_insert(arc.to, ClockId(c));
        }
      }
    }
  };

  for (size_t ci = 0; ci < merged.num_clocks(); ++ci) {
    const sdc::Clock& clock = merged.clock(ClockId(ci));
    if (clock.is_generated) continue;
    for (PinId src : clock.sources) try_insert(src, ClockId(ci));
  }
  run_pass();
  bool any_generated = false;
  for (size_t ci = 0; ci < merged.num_clocks(); ++ci) {
    const sdc::Clock& clock = merged.clock(ClockId(ci));
    if (!clock.is_generated) continue;
    any_generated = true;
    for (PinId src : clock.sources) try_insert(src, ClockId(ci));
  }
  if (any_generated) run_pass();

  for (const auto& [pin, clock] : stops) {
    sdc::ClockSenseStop stop;
    stop.pin = PinId(pin);
    stop.clock = ClockId(clock);
    merged.clock_sense_stops().push_back(stop);
    ++result.stats.clock_stops_added;
    result.note("stop propagation of clock " +
                merged.clock(ClockId(clock)).name + " at " +
                std::string(graph.design().pin_name(PinId(pin))));
  }
}

}  // namespace

void refine_clock_network(const RefineContext& ctx, MergeResult& result,
                          const MergeOptions& options) {
  (void)options;
  MM_SPAN("merge/clock_refine");
  infer_disables(ctx, result);
  refine_clock_propagation(ctx, result);
  MM_COUNT("merge/inferred_disables", result.stats.inferred_disables);
  MM_COUNT("merge/clock_stops_added", result.stats.clock_stops_added);
}

}  // namespace mm::merge
