#pragma once
// Shared state for the §3.1.8 / §3.2 refinement stages: the individual
// modes' per-mode timing views, built once (in parallel) and reused by
// clock refinement, data refinement and the equivalence checker.

#include <memory>
#include <vector>

#include "merge/context.h"
#include "merge/types.h"
#include "timing/mode_graph.h"
#include "util/thread_pool.h"

namespace mm::merge {

struct RefineContext {
  const timing::TimingGraph* graph = nullptr;
  std::vector<const Sdc*> modes;
  std::vector<std::unique_ptr<timing::ModeGraph>> mode_graphs;
  /// The owning merge session, when the refinement stages run inside one:
  /// its thread pool is reused instead of one pool per stage.
  MergeContext* session = nullptr;

  RefineContext(const timing::TimingGraph& g, std::vector<const Sdc*> m,
                size_t num_threads = 0)
      : graph(&g), modes(std::move(m)) {
    ThreadPool pool(num_threads == 0 ? 0 : num_threads);
    build_mode_graphs(g, pool);
  }

  RefineContext(const timing::TimingGraph& g, std::vector<const Sdc*> m,
                MergeContext& ctx)
      : graph(&g), modes(std::move(m)), session(&ctx) {
    build_mode_graphs(g, ctx.pool());
  }

 private:
  void build_mode_graphs(const timing::TimingGraph& g, ThreadPool& pool) {
    mode_graphs.resize(modes.size());
    pool.parallel_for(modes.size(), [&](size_t i) {
      mode_graphs[i] = std::make_unique<timing::ModeGraph>(g, *modes[i]);
    });
  }
};

}  // namespace mm::merge
