#pragma once
// Shared state for the §3.1.8 / §3.2 refinement stages: the individual
// modes' per-mode timing views, built once (in parallel) and reused by
// clock refinement, data refinement and the equivalence checker.

#include <memory>
#include <vector>

#include "merge/types.h"
#include "timing/mode_graph.h"
#include "util/thread_pool.h"

namespace mm::merge {

struct RefineContext {
  const timing::TimingGraph* graph = nullptr;
  std::vector<const Sdc*> modes;
  std::vector<std::unique_ptr<timing::ModeGraph>> mode_graphs;

  RefineContext(const timing::TimingGraph& g, std::vector<const Sdc*> m,
                size_t num_threads = 0)
      : graph(&g), modes(std::move(m)) {
    mode_graphs.resize(modes.size());
    ThreadPool pool(num_threads == 0 ? 0 : num_threads);
    pool.parallel_for(modes.size(), [&](size_t i) {
      mode_graphs[i] = std::make_unique<timing::ModeGraph>(g, *modes[i]);
    });
  }
};

}  // namespace mm::merge
