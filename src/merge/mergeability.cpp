#include "merge/mergeability.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "merge/context.h"
#include "merge/keys.h"
#include "obs/obs.h"
#include "util/thread_pool.h"

namespace mm::merge {

namespace {

bool within_tolerance(double a, double b, double rel_tol) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) <= rel_tol * scale + 1e-12;
}

/// Largest windowed acceptance seen while checking one pair: the policy
/// provenance that ends up in PairVerdict. Strictly-greater updates + the
/// identical comparison visit order of all three check paths make the
/// folded result byte-identical across paths.
struct WindowUse {
  double used = 0.0;
  double budget = 0.0;
  const char* field = "";

  void accept(double diff, double window, const char* f) {
    if (diff > used) {
      used = diff;
      budget = window;
      field = f;
    }
  }
};

/// The policy-aware value comparison: within tolerance (exact rule), or —
/// under a windowed policy — the absolute disagreement fits the field's
/// window. A zero-width window accepts nothing within_tolerance rejects
/// (both grant the same 1e-12 absolute slop), so windowed-with-zero-windows
/// degenerates to exact.
bool value_ok(double a, double b, const MergeOptions& options, double window,
              const char* field, WindowUse& use) {
  if (within_tolerance(a, b, options.value_tolerance)) return true;
  if (!options.policy.windowed()) return false;
  const double diff = std::fabs(a - b);
  if (diff > window + 1e-12) return false;
  use.accept(diff, window, field);
  return true;
}

/// Stamp the active policy + the winning window acceptance onto a verdict
/// (mergeable or not) — every check path's single exit point.
PairVerdict finish_verdict(PairVerdict v, const MergeOptions& options,
                           const WindowUse& use) {
  v.policy = options.policy.name();
  v.window_field = use.field;
  v.window_used = use.used;
  v.window_budget = use.budget;
  return v;
}

// Window comparison shared by the string-keyed and interned pre-screens:
// same checks, same order, same reason text as the Sdc-level path, but each
// value is a table read instead of a constraint-list scan.
std::optional<PairVerdict> clock_window_conflict(
    const ModeRelationships::ClockInfo& ca,
    const ModeRelationships::ClockInfo& cb, const MergeOptions& options,
    WindowUse& use) {
  auto conflict = [&ca](const char* category, std::string reason) {
    PairVerdict v;
    v.mergeable = false;
    v.reason = std::move(reason);
    v.category = category;
    v.subject = ca.key;
    v.subject_key_id = ca.key_id.id();
    return v;
  };
  for (size_t source = 0; source < 2; ++source) {
      for (size_t max_side = 0; max_side < 2; ++max_side) {
        if (ca.latency_present[source][max_side] &&
            cb.latency_present[source][max_side] &&
            !value_ok(ca.latency[source][max_side],
                      cb.latency[source][max_side], options,
                      options.policy.window_latency, "clock_latency", use)) {
          return conflict(
              "clock_latency",
              "clock latency mismatch on matching clock (" +
                  std::to_string(ca.latency[source][max_side]) + " vs " +
                  std::to_string(cb.latency[source][max_side]) + ")");
        }
      }
    }
    for (size_t setup : {size_t{1}, size_t{0}}) {
      if (ca.uncertainty_present[setup] && cb.uncertainty_present[setup] &&
          !value_ok(ca.uncertainty[setup], cb.uncertainty[setup], options,
                    options.policy.window_uncertainty, "clock_uncertainty",
                    use)) {
        return conflict("clock_uncertainty",
                        "clock uncertainty mismatch on matching clock");
      }
    }
    for (size_t max_side : {size_t{1}, size_t{0}}) {
      if (ca.transition_present[max_side] && cb.transition_present[max_side] &&
          !value_ok(ca.transition[max_side], cb.transition[max_side], options,
                    options.policy.window_transition, "clock_transition",
                    use)) {
        return conflict("clock_transition",
                        "clock transition mismatch on matching clock");
      }
    }
  return std::nullopt;
}

/// Shared constructors for the non-clock first-conflict verdicts, so every
/// check path fills identical category/subject provenance.
PairVerdict drive_conflict(PinId port_pin) {
  PairVerdict v;
  v.mergeable = false;
  v.reason = "drive/transition value mismatch on port";
  v.category = "drive";
  v.subject = "pin#" + std::to_string(port_pin.index());
  return v;
}

PairVerdict load_conflict(PinId port_pin) {
  PairVerdict v;
  v.mergeable = false;
  v.reason = "load value mismatch on port";
  v.category = "load";
  v.subject = "pin#" + std::to_string(port_pin.index());
  return v;
}

/// Drive/load compatibility over *effective* values. SDC semantics are
/// last-entry-wins per channel — a channel being one (port, is_transition,
/// min/max side) for drives and one port for loads — so a deck carrying a
/// superseded duplicate (real decks do; the fuzz mutation stage manufactures
/// them) must compare by what actually applies, not by every raw entry: the
/// all-pairs scan made such a deck conflict with itself (fuzz P3, case
/// 1532919352286236818). For each channel where `a` holds the effective
/// entry, probe `b`'s effective entry for the same channel. a's entries are
/// visited in source order (min side before max), identically in all three
/// check paths, so the first conflict — and the verdict's reason/subject —
/// stays byte-identical across them.
std::optional<PairVerdict> drive_load_conflict_screen(
    const std::vector<sdc::DriveConstraint>& a_drives,
    const std::vector<sdc::DriveConstraint>& b_drives,
    const std::vector<sdc::LoadConstraint>& a_loads,
    const std::vector<sdc::LoadConstraint>& b_loads,
    const MergeOptions& options, WindowUse& use) {
  auto covers = [](const sdc::MinMaxFlags& mm, size_t side) {
    return side == 0 ? mm.min : mm.max;
  };
  for (size_t k = 0; k < a_drives.size(); ++k) {
    const sdc::DriveConstraint& da = a_drives[k];
    for (size_t side = 0; side < 2; ++side) {
      if (!covers(da.minmax, side)) continue;
      bool effective = true;
      for (size_t j = k + 1; j < a_drives.size() && effective; ++j) {
        effective = !(a_drives[j].port_pin == da.port_pin &&
                      a_drives[j].is_transition == da.is_transition &&
                      covers(a_drives[j].minmax, side));
      }
      if (!effective) continue;
      const sdc::DriveConstraint* db = nullptr;
      for (const sdc::DriveConstraint& cand : b_drives) {
        if (cand.port_pin == da.port_pin &&
            cand.is_transition == da.is_transition &&
            covers(cand.minmax, side)) {
          db = &cand;  // forward scan: the last match is the effective one
        }
      }
      if (db == nullptr) continue;
      if (!value_ok(da.value, db->value, options,
                    options.policy.window_drive_load, "drive", use)) {
        return drive_conflict(da.port_pin);
      }
    }
  }
  for (size_t k = 0; k < a_loads.size(); ++k) {
    const sdc::LoadConstraint& la = a_loads[k];
    bool effective = true;
    for (size_t j = k + 1; j < a_loads.size() && effective; ++j) {
      effective = a_loads[j].port_pin != la.port_pin;
    }
    if (!effective) continue;
    const sdc::LoadConstraint* lb = nullptr;
    for (const sdc::LoadConstraint& cand : b_loads) {
      if (cand.port_pin == la.port_pin) lb = &cand;
    }
    if (lb == nullptr) continue;
    if (!value_ok(la.value, lb->value, options,
                  options.policy.window_drive_load, "load", use)) {
      return load_conflict(la.port_pin);
    }
  }
  return std::nullopt;
}

PairVerdict exception_conflict(std::string anchor_sig, uint32_t anchor_key) {
  PairVerdict v;
  v.mergeable = false;
  v.reason = "conflicting exception values on identical anchors";
  v.category = "exception_conflict";
  v.subject = std::move(anchor_sig);
  v.subject_key_id = anchor_key;
  return v;
}

PairVerdict one_sided_conflict(std::string full_sig, uint32_t full_key) {
  PairVerdict v;
  v.mergeable = false;
  v.reason =
      "non-false-path exception unique to one mode cannot be "
      "uniquified by clock restriction";
  v.category = "exception_one_sided";
  v.subject = std::move(full_sig);
  v.subject_key_id = full_key;
  return v;
}

// Clock-conflict pre-screen over pre-extracted per-clock windows. Returns
// the verdict as soon as a matched clock's windows conflict, letting the
// caller skip the exception-signature work entirely for such pairs.
// Matched clocks are visited in canonical-key string order, so the first
// conflict found — and therefore the reason text — is the same as the
// Sdc-level path's.
std::optional<PairVerdict> clock_conflict_screen(const ModeRelationships& a,
                                                 const ModeRelationships& b,
                                                 const MergeOptions& options,
                                                 WindowUse& use) {
  for (const auto& [key, ia] : a.by_key) {
    auto it = b.by_key.find(key);
    if (it == b.by_key.end()) continue;
    if (std::optional<PairVerdict> v = clock_window_conflict(
            a.clocks[ia], b.clocks[it->second], options, use)) {
      return v;
    }
  }
  return std::nullopt;
}

// Interned pre-screen: same visit order (a.clock_order is the by_key
// iteration order), but the probe into b is an integer hash lookup.
std::optional<PairVerdict> clock_conflict_screen_interned(
    const ModeRelationships& a, const ModeRelationships& b,
    const MergeOptions& options, WindowUse& use) {
  for (uint32_t ia : a.clock_order) {
    const ModeRelationships::ClockInfo& ca = a.clocks[ia];
    auto it = b.by_key_id.find(ca.key_id.id());
    if (it == b.by_key_id.end()) continue;
    if (std::optional<PairVerdict> v =
            clock_window_conflict(ca, b.clocks[it->second], options, use)) {
      return v;
    }
  }
  return std::nullopt;
}

// Interned-path verdict: identical checks and reason strings to the
// string-keyed body in check_mergeable below, with every string compare
// replaced by a KeyId compare and every std::set<std::string> probe by a
// bitset intersection. Requires both entries interned in the same table.
PairVerdict check_mergeable_interned(const ModeRelationships& a,
                                     const ModeRelationships& b,
                                     const MergeOptions& options) {
  WindowUse use;
  // --- matched clocks: pre-screen on memoized constraint windows ----------
  if (std::optional<PairVerdict> v =
          clock_conflict_screen_interned(a, b, options, use)) {
    MM_COUNT("merge/mergeability_prescreen_conflicts", 1);
    return finish_verdict(*v, options, use);
  }

  // --- drive / load compatibility ------------------------------------------
  if (std::optional<PairVerdict> v = drive_load_conflict_screen(
          a.drives, b.drives, a.loads, b.loads, options, use)) {
    return finish_verdict(std::move(*v), options, use);
  }

  // --- exceptions ------------------------------------------------------------
  // Same anchors, different kind/value: conflicting unless uniquifiable.
  std::unordered_map<uint32_t, const ModeRelationships::ExceptionInfo*>
      by_anchor;
  by_anchor.reserve(a.exceptions.size());
  for (const ModeRelationships::ExceptionInfo& ex : a.exceptions) {
    by_anchor.emplace(ex.anchor_id.id(), &ex);
  }
  for (const ModeRelationships::ExceptionInfo& ex : b.exceptions) {
    auto it = by_anchor.find(ex.anchor_id.id());
    if (it == by_anchor.end()) continue;
    const ModeRelationships::ExceptionInfo& other = *it->second;
    if (other.kind == ex.kind && other.value == ex.value) continue;
    if (!other.from_key_bits.intersects(ex.from_key_bits)) continue;
    // Waive when both modes already carry the identical ambiguous pair:
    // each resolves it with the same precedence, so the merge introduces
    // no conflict that was not present in every source.
    if (a.full_sig_ids.count(ex.full_id.id()) &&
        b.full_sig_ids.count(other.full_id.id())) {
      continue;
    }
    return finish_verdict(exception_conflict(ex.sig_anchor, ex.anchor_id.id()),
                          options, use);
  }

  // Non-false-path exception present in one mode only and not uniquifiable.
  auto check_one_sided = [](const ModeRelationships& holder,
                            const ModeRelationships& other) -> PairVerdict {
    for (const ModeRelationships::ExceptionInfo& ex : holder.exceptions) {
      if (ex.kind == sdc::ExceptionKind::kFalsePath) continue;  // droppable
      if (other.full_sig_ids.count(ex.full_id.id())) continue;  // common
      if (ex.from_key_bits.intersects(other.clock_key_bits)) {
        return one_sided_conflict(ex.sig_full, ex.full_id.id());
      }
    }
    return {true, ""};
  };
  PairVerdict v = check_one_sided(a, b);
  if (!v.mergeable) return finish_verdict(std::move(v), options, use);
  v = check_one_sided(b, a);
  if (!v.mergeable) return finish_verdict(std::move(v), options, use);

  return finish_verdict({true, ""}, options, use);
}

}  // namespace

PairVerdict check_mergeable(const ModeRelationships& a,
                            const ModeRelationships& b,
                            const MergeOptions& options) {
  // Interned fast path when both entries carry ids (from the same table —
  // the cache/session invariant); otherwise the string-keyed reference.
  if (options.use_interned_keys && a.interned && b.interned) {
    return check_mergeable_interned(a, b, options);
  }

  WindowUse use;
  // --- matched clocks: pre-screen on memoized constraint windows ----------
  if (std::optional<PairVerdict> v =
          clock_conflict_screen(a, b, options, use)) {
    MM_COUNT("merge/mergeability_prescreen_conflicts", 1);
    return finish_verdict(*v, options, use);
  }

  // --- drive / load compatibility ------------------------------------------
  if (std::optional<PairVerdict> v = drive_load_conflict_screen(
          a.drives, b.drives, a.loads, b.loads, options, use)) {
    return finish_verdict(std::move(*v), options, use);
  }

  // --- exceptions ------------------------------------------------------------
  // Same anchors, different kind/value: conflicting unless uniquifiable.
  std::map<std::string_view, const ModeRelationships::ExceptionInfo*>
      by_anchor;
  for (const ModeRelationships::ExceptionInfo& ex : a.exceptions) {
    by_anchor.emplace(ex.sig_anchor, &ex);
  }
  for (const ModeRelationships::ExceptionInfo& ex : b.exceptions) {
    auto it = by_anchor.find(ex.sig_anchor);
    if (it == by_anchor.end()) continue;
    const ModeRelationships::ExceptionInfo& other = *it->second;
    if (other.kind == ex.kind && other.value == ex.value) continue;
    if (keys_disjoint(other.from_keys, ex.from_keys)) continue;
    // Waive when both modes already carry the identical ambiguous pair:
    // each resolves it with the same precedence, so the merge introduces
    // no conflict that was not present in every source.
    if (a.full_sigs.count(ex.sig_full) && b.full_sigs.count(other.sig_full)) {
      continue;
    }
    return finish_verdict(exception_conflict(ex.sig_anchor, ex.anchor_id.id()),
                          options, use);
  }

  // Non-false-path exception present in one mode only and not uniquifiable.
  auto check_one_sided = [](const ModeRelationships& holder,
                            const ModeRelationships& other) -> PairVerdict {
    for (const ModeRelationships::ExceptionInfo& ex : holder.exceptions) {
      if (ex.kind == sdc::ExceptionKind::kFalsePath) continue;  // droppable
      if (other.full_sigs.count(ex.sig_full)) continue;  // common exception
      if (!keys_disjoint(ex.from_keys, other.clock_keys)) {
        return one_sided_conflict(ex.sig_full, ex.full_id.id());
      }
    }
    return {true, ""};
  };
  PairVerdict v = check_one_sided(a, b);
  if (!v.mergeable) return finish_verdict(std::move(v), options, use);
  v = check_one_sided(b, a);
  if (!v.mergeable) return finish_verdict(std::move(v), options, use);

  return finish_verdict({true, ""}, options, use);
}

PairVerdict check_mergeable_values(const ModeRelationships& a,
                                   const ModeRelationships& b,
                                   const MergeOptions& options) {
  WindowUse use;
  std::optional<PairVerdict> v =
      (options.use_interned_keys && a.interned && b.interned)
          ? clock_conflict_screen_interned(a, b, options, use)
          : clock_conflict_screen(a, b, options, use);
  if (v) {
    MM_COUNT("merge/mergeability_prescreen_conflicts", 1);
    return finish_verdict(std::move(*v), options, use);
  }
  if (std::optional<PairVerdict> d = drive_load_conflict_screen(
          a.drives, b.drives, a.loads, b.loads, options, use)) {
    return finish_verdict(std::move(*d), options, use);
  }
  return finish_verdict({true, ""}, options, use);
}

PairVerdict check_mergeable_corners(
    const std::vector<const ModeRelationships*>& a,
    const std::vector<const ModeRelationships*>& b, const CornerSet& corners,
    const MergeOptions& options) {
  MM_ASSERT(a.size() == corners.size() && b.size() == corners.size());
  // Structural check: once per pair, through the primary corner. At C == 1
  // the corner accounting fields stay at their flat defaults, so the
  // returned verdict is the flat verdict member for member.
  PairVerdict primary = check_mergeable(*a[0], *b[0], options);
  MM_COUNT("merge/mcmm_structural_checks", 1);
  if (!primary.mergeable) {
    if (!corners.single()) {
      primary.corner = corners.name(kPrimaryCorner);
      primary.corner_id = kPrimaryCorner;
      primary.corners_checked = 1;
    }
    return primary;
  }
  // Value checks per corner, early exit on the first conflicting corner.
  for (CornerId c = 1; c < corners.size(); ++c) {
    const bool shares_skeleton =
        a[c]->structure_fp == a[kPrimaryCorner]->structure_fp &&
        b[c]->structure_fp == b[kPrimaryCorner]->structure_fp;
    PairVerdict v = shares_skeleton
                        ? check_mergeable_values(*a[c], *b[c], options)
                        : check_mergeable(*a[c], *b[c], options);
    MM_COUNT("merge/mcmm_value_checks", 1);
    if (!v.mergeable) {
      v.corner = corners.name(c);
      v.corner_id = c;
      v.corners_checked = c + 1;
      return v;
    }
  }
  if (!corners.single()) {
    primary.corners_checked = static_cast<uint32_t>(corners.size());
  }
  return primary;
}

PairVerdict check_mergeable(const Sdc& a, const Sdc& b,
                            const MergeOptions& options) {
  WindowUse use;
  // --- matched clocks: clock-based constraint value compatibility ----------
  // Map clock key -> clock id per mode; compare constraints on shared keys.
  std::map<std::string, ClockId> a_clocks, b_clocks;
  for (size_t i = 0; i < a.num_clocks(); ++i)
    a_clocks.emplace(clock_key(a, ClockId(i)), ClockId(i));
  for (size_t i = 0; i < b.num_clocks(); ++i)
    b_clocks.emplace(clock_key(b, ClockId(i)), ClockId(i));

  for (const auto& [key, ca] : a_clocks) {
    auto it = b_clocks.find(key);
    if (it == b_clocks.end()) continue;
    const ClockId cb = it->second;
    auto conflict = [&key](const char* category, std::string reason) {
      PairVerdict v;
      v.mergeable = false;
      v.reason = std::move(reason);
      v.category = category;
      v.subject = key;
      return v;
    };

    // Latencies (per source flag + flavor).
    auto latency = [](const Sdc& sdc, ClockId c, bool source, bool max_side,
                      bool& present) {
      double v = 0.0;
      present = false;
      for (const sdc::ClockLatency& lat : sdc.clock_latencies()) {
        if (lat.clock != c || lat.source != source) continue;
        if (max_side ? !lat.minmax.max : !lat.minmax.min) continue;
        v = lat.value;
        present = true;
      }
      return v;
    };
    for (bool source : {false, true}) {
      for (bool max_side : {false, true}) {
        bool pa = false, pb = false;
        const double va = latency(a, ca, source, max_side, pa);
        const double vb = latency(b, cb, source, max_side, pb);
        if (pa && pb &&
            !value_ok(va, vb, options, options.policy.window_latency,
                      "clock_latency", use)) {
          return finish_verdict(
              conflict("clock_latency",
                       "clock latency mismatch on matching clock (" +
                           std::to_string(va) + " vs " + std::to_string(vb) +
                           ")"),
              options, use);
        }
      }
    }

    // Uncertainties.
    auto uncertainty = [](const Sdc& sdc, ClockId c, bool setup,
                          bool& present) {
      double v = 0.0;
      present = false;
      for (const sdc::ClockUncertainty& unc : sdc.clock_uncertainties()) {
        if (unc.clock != c) continue;
        if (setup ? !unc.setup_hold.setup : !unc.setup_hold.hold) continue;
        v = unc.value;
        present = true;
      }
      return v;
    };
    for (bool setup : {true, false}) {
      bool pa = false, pb = false;
      const double va = uncertainty(a, ca, setup, pa);
      const double vb = uncertainty(b, cb, setup, pb);
      if (pa && pb &&
          !value_ok(va, vb, options, options.policy.window_uncertainty,
                    "clock_uncertainty", use)) {
        return finish_verdict(
            conflict("clock_uncertainty",
                     "clock uncertainty mismatch on matching clock"),
            options, use);
      }
    }

    // Transitions.
    auto transition = [](const Sdc& sdc, ClockId c, bool max_side,
                         bool& present) {
      double v = 0.0;
      present = false;
      for (const sdc::ClockTransition& tr : sdc.clock_transitions()) {
        if (tr.clock != c) continue;
        if (max_side ? !tr.minmax.max : !tr.minmax.min) continue;
        v = tr.value;
        present = true;
      }
      return v;
    };
    for (bool max_side : {true, false}) {
      bool pa = false, pb = false;
      const double va = transition(a, ca, max_side, pa);
      const double vb = transition(b, cb, max_side, pb);
      if (pa && pb &&
          !value_ok(va, vb, options, options.policy.window_transition,
                    "clock_transition", use)) {
        return finish_verdict(
            conflict("clock_transition",
                     "clock transition mismatch on matching clock"),
            options, use);
      }
    }
  }

  // --- drive / load compatibility ------------------------------------------
  if (std::optional<PairVerdict> v = drive_load_conflict_screen(
          a.drives(), b.drives(), a.loads(), b.loads(), options, use)) {
    return finish_verdict(std::move(*v), options, use);
  }

  // --- exceptions ------------------------------------------------------------
  const std::set<std::string> a_keys = mode_clock_keys(a);
  const std::set<std::string> b_keys = mode_clock_keys(b);

  std::set<std::string> a_sigs, b_sigs;
  for (const sdc::Exception& ex : a.exceptions())
    a_sigs.insert(exception_signature(a, ex, true));
  for (const sdc::Exception& ex : b.exceptions())
    b_sigs.insert(exception_signature(b, ex, true));

  // Same anchors, different kind/value: conflicting unless uniquifiable.
  std::map<std::string, std::pair<const sdc::Exception*, const Sdc*>> by_anchor;
  for (const sdc::Exception& ex : a.exceptions()) {
    by_anchor.emplace(exception_signature(a, ex, /*include_value=*/false),
                      std::make_pair(&ex, &a));
  }
  for (const sdc::Exception& ex : b.exceptions()) {
    const std::string sig = exception_signature(b, ex, /*include_value=*/false);
    auto it = by_anchor.find(sig);
    if (it == by_anchor.end()) continue;
    const sdc::Exception& other = *it->second.first;
    if (other.kind == ex.kind && other.value == ex.value) continue;
    // Conflicting values on identical anchors; uniquifiable only if the two
    // exceptions' effective launch clocks are disjoint.
    if (keys_disjoint(effective_from_keys(a, other), effective_from_keys(b, ex))) {
      continue;
    }
    // Waive when both modes already carry the identical ambiguous pair:
    // each resolves it with the same precedence, so the merge introduces
    // no conflict that was not present in every source.
    if (a_sigs.count(exception_signature(b, ex, /*include_value=*/true)) &&
        b_sigs.count(exception_signature(a, other, /*include_value=*/true))) {
      continue;
    }
    return finish_verdict(exception_conflict(sig, 0), options, use);
  }

  // Non-false-path exception present in one mode only and not uniquifiable:
  // the merged mode would either loosen (MCP) or tighten (min/max) the
  // other mode's paths — mark non-mergeable.
  auto check_one_sided = [&](const Sdc& holder,
                             const std::set<std::string>& holder_sigs_other,
                             const std::set<std::string>& other_keys)
      -> PairVerdict {
    for (const sdc::Exception& ex : holder.exceptions()) {
      if (ex.kind == sdc::ExceptionKind::kFalsePath) continue;  // droppable
      const std::string sig =
          exception_signature(holder, ex, /*include_value=*/true);
      if (holder_sigs_other.count(sig)) continue;  // common exception
      if (!keys_disjoint(effective_from_keys(holder, ex), other_keys)) {
        return one_sided_conflict(sig, 0);
      }
    }
    return {true, ""};
  };
  PairVerdict v = check_one_sided(a, b_sigs, b_keys);
  if (!v.mergeable) return finish_verdict(std::move(v), options, use);
  v = check_one_sided(b, a_sigs, a_keys);
  if (!v.mergeable) return finish_verdict(std::move(v), options, use);

  return finish_verdict({true, ""}, options, use);
}

MergeabilityGraph::MergeabilityGraph(const std::vector<const Sdc*>& modes,
                                     const MergeOptions& options) {
  // Legacy entry: the process-wide cache (bound to the global key table)
  // and a pool of this build's own, sized by options.num_threads.
  ThreadPool pool(options.num_threads == 0 ? 0 : options.num_threads);
  build(modes, options, RelationshipCache::global(), pool);
  MM_GAUGE_SET("merge/key_table_keys", CanonicalKeyTable::global().num_keys());
  MM_GAUGE_SET("merge/key_table_bytes", CanonicalKeyTable::global().bytes());
}

MergeabilityGraph::MergeabilityGraph(const std::vector<const Sdc*>& modes,
                                     MergeContext& ctx) {
  build(modes, ctx.options(), ctx.cache(), ctx.pool());
  ctx.export_stats();
}

MergeabilityGraph::MergeabilityGraph(size_t n, std::vector<uint8_t> adj,
                                     std::vector<std::string> reasons)
    : n_(n), adj_(std::move(adj)), reasons_(std::move(reasons)) {}

void MergeabilityGraph::build(const std::vector<const Sdc*>& modes,
                              const MergeOptions& options,
                              RelationshipCache& cache, ThreadPool& pool) {
  n_ = modes.size();
  adj_.assign(n_ * n_, 0);
  reasons_.assign(n_ * n_, std::string());
  MM_SPAN("merge/mergeability");
  const size_t num_pairs = n_ * (n_ - 1) / 2;
  MM_COUNT("merge/mergeability_pairs", num_pairs);
  for (size_t i = 0; i < n_; ++i) adj_[i * n_ + i] = 1;
  if (n_ < 2) return;

  // Each mode's relationship set is extracted once (memoized across runs by
  // the content-addressed cache), not re-derived inside every pair.
  std::vector<std::shared_ptr<const ModeRelationships>> rels;
  if (options.use_relationship_cache) {
    rels.resize(n_);
    pool.parallel_for(n_, [&](size_t i) { rels[i] = cache.get(*modes[i]); });
  }
  MM_GAUGE_SET("merge/relationship_cache_entries", cache.size());

  // Flattened upper-triangle pair index. Every pair writes only its own
  // verdict slot and the fill below runs in index order, so adjacency and
  // reasons are bit-identical to the serial i/j loop.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(num_pairs);
  for (uint32_t i = 0; i + 1 < n_; ++i) {
    for (uint32_t j = i + 1; j < n_; ++j) pairs.emplace_back(i, j);
  }
  std::vector<PairVerdict> verdicts(pairs.size());
  // Pairs are cheap once extraction is memoized; a minimum grain keeps the
  // queue overhead below the per-pair work.
  pool.parallel_for(pairs.size(), /*min_grain=*/16, [&](size_t p) {
    const auto [i, j] = pairs[p];
    verdicts[p] = options.use_relationship_cache
                      ? check_mergeable(*rels[i], *rels[j], options)
                      : check_mergeable(*modes[i], *modes[j], options);
  });

  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto [i, j] = pairs[p];
    const PairVerdict& verdict = verdicts[p];
    adj_[i * n_ + j] = adj_[j * n_ + i] = verdict.mergeable ? 1 : 0;
    if (!verdict.mergeable) {
      reasons_[i * n_ + j] = reasons_[j * n_ + i] = verdict.reason;
    }
  }
}

size_t MergeabilityGraph::degree(size_t i) const {
  size_t d = 0;
  for (size_t j = 0; j < n_; ++j) {
    if (j != i && edge(i, j)) ++d;
  }
  return d;
}

std::vector<std::vector<size_t>> greedy_clique_cover(
    size_t n, const std::vector<uint8_t>& adj) {
  auto edge = [&](size_t i, size_t j) { return adj[i * n + j] != 0; };
  auto degree = [&](size_t i) {
    size_t d = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j != i && edge(i, j)) ++d;
    }
    return d;
  };

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return degree(a) > degree(b);
  });

  std::vector<uint8_t> assigned(n, 0);
  std::vector<std::vector<size_t>> cliques;
  for (size_t seed : order) {
    if (assigned[seed]) continue;
    std::vector<size_t> clique{seed};
    assigned[seed] = 1;
    for (size_t cand : order) {
      if (assigned[cand]) continue;
      bool compatible = true;
      for (size_t member : clique) {
        if (!edge(cand, member)) {
          compatible = false;
          break;
        }
      }
      if (compatible) {
        clique.push_back(cand);
        assigned[cand] = 1;
      }
    }
    std::sort(clique.begin(), clique.end());
    cliques.push_back(std::move(clique));
  }
  return cliques;
}

std::vector<std::vector<size_t>> MergeabilityGraph::clique_cover() const {
  MM_SPAN("merge/clique_cover");
  return greedy_clique_cover(n_, adj_);
}

}  // namespace mm::merge
