#pragma once
// Mergeability analysis (paper §3, Figure 2): a mock run of preliminary
// merging decides which mode pairs can be merged; the resulting
// mergeability graph is covered with cliques by a greedy algorithm, each
// clique becoming one superset mode.

#include <string>
#include <vector>

#include "merge/types.h"

namespace mm::merge {

/// Why a pair of modes cannot merge (empty reason == mergeable).
struct PairVerdict {
  bool mergeable = true;
  std::string reason;
};

/// Pairwise mergeability: a mock preliminary merge checking for
///  - clock-based constraint values out of tolerance on matching clocks,
///  - drive/load constraint values out of tolerance on the same port,
///  - conflicting non-false-path exceptions (same anchors, different
///    kind/value) that cannot be uniquified by clock restriction,
///  - generated-clock master mismatches (clock blocking).
PairVerdict check_mergeable(const Sdc& a, const Sdc& b,
                            const MergeOptions& options);

class MergeabilityGraph {
 public:
  /// Build the graph over `modes` (pairwise check_mergeable).
  MergeabilityGraph(const std::vector<const Sdc*>& modes,
                    const MergeOptions& options);

  size_t num_modes() const { return n_; }
  bool edge(size_t i, size_t j) const { return adj_[i * n_ + j] != 0; }
  const std::string& reason(size_t i, size_t j) const {
    return reasons_[i * n_ + j];
  }
  size_t degree(size_t i) const;

  /// Greedy clique cover ("the maximal sets of mergeable individual modes
  /// are identified by finding cliques of this graph ... using a greedy
  /// algorithm as the number of modes is small"). Returns groups of mode
  /// indices; singletons are modes that merge with nothing.
  std::vector<std::vector<size_t>> clique_cover() const;

 private:
  size_t n_;
  std::vector<uint8_t> adj_;
  std::vector<std::string> reasons_;
};

}  // namespace mm::merge
