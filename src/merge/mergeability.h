#pragma once
// Mergeability analysis (paper §3, Figure 2): a mock run of preliminary
// merging decides which mode pairs can be merged; the resulting
// mergeability graph is covered with cliques by a greedy algorithm, each
// clique becoming one superset mode.

#include <string>
#include <vector>

#include "merge/corner.h"
#include "merge/relationship_cache.h"
#include "merge/types.h"

namespace mm {
class ThreadPool;
}

namespace mm::merge {

class MergeContext;

/// Why a pair of modes cannot merge (empty reason == mergeable).
///
/// `category` and `subject` are the first conflict's provenance for the
/// mm.journal/1 pair_verdict event: a machine-readable reason class
/// (clock_latency, clock_uncertainty, clock_transition, drive, load,
/// exception_conflict, exception_one_sided) and the canonical subject it
/// fired on (clock key, "pin#N", or exception anchor signature). Like
/// `reason`, both are byte-identical across the Sdc-level, string-keyed,
/// and interned check paths. `subject_key_id` is the interned id of the
/// subject when the interned path produced the verdict (0 otherwise) —
/// extra provenance only, NOT part of the determinism contract.
///
/// Policy provenance (merge/policy.h): `policy` names the policy the
/// verdict was computed under. When a windowed policy accepted one or more
/// comparisons beyond within_tolerance, `window_field` / `window_used` /
/// `window_budget` record the largest such acceptance — the field it fired
/// on (clock_latency, clock_uncertainty, clock_transition, drive, load),
/// the absolute disagreement accepted, and that field's configured window
/// — so mmreport explain can say "merged under windowed policy, 0.012 of
/// 0.020 budget used". All three check paths visit comparisons in the same
/// order and fold the accumulator with strictly-greater updates, so these
/// fields are byte-identical across paths too.
struct PairVerdict {
  bool mergeable = true;
  std::string reason;
  std::string category;
  std::string subject;
  uint64_t subject_key_id = 0;
  std::string policy = "exact";
  std::string window_field;
  double window_used = 0.0;
  double window_budget = 0.0;

  /// Corner provenance (merge/corner.h), filled only by
  /// check_mergeable_corners: the corner the first conflict fired in (name
  /// + id; empty/0 on a single-corner run or a flat check), and how many
  /// corners were value-checked before the verdict settled — C on a
  /// mergeable verdict (every corner agreed), the conflicting corner's
  /// 1-based position on early exit. All three stay at their flat defaults
  /// from the corner-unaware check paths AND at C == 1, so a single-corner
  /// verdict is the flat verdict member for member.
  std::string corner;
  uint32_t corner_id = 0;
  uint32_t corners_checked = 0;
};

/// Pairwise mergeability: a mock preliminary merge checking for
///  - clock-based constraint values out of tolerance on matching clocks,
///  - drive/load constraint values out of tolerance on the same port,
///  - conflicting non-false-path exceptions (same anchors, different
///    kind/value) that cannot be uniquified by clock restriction,
///  - generated-clock master mismatches (clock blocking).
///
/// This overload re-derives both modes' relationship sets from scratch —
/// it is the reference (seed) path; MergeabilityGraph uses the memoized
/// overload below, which returns byte-identical verdicts.
PairVerdict check_mergeable(const Sdc& a, const Sdc& b,
                            const MergeOptions& options);

/// Same verdicts (bit-identical, including reason text) from pre-extracted
/// relationship sets: the per-pair cost drops to lookups over memoized
/// keys/signatures, and a clock-conflict pre-screen short-circuits pairs
/// whose per-clock windows already conflict before any exception-signature
/// work (counted in merge/mergeability_prescreen_conflicts). When
/// options.use_interned_keys and both entries carry the interned view
/// (extracted via the same CanonicalKeyTable), the comparison runs on
/// KeyId sets and key bitsets instead of strings — still byte-identical
/// verdicts and reasons.
PairVerdict check_mergeable(const ModeRelationships& a,
                            const ModeRelationships& b,
                            const MergeOptions& options);

/// The value-only half of check_mergeable: the clock constraint-window
/// screen plus drive/load compatibility, skipping the exception-signature
/// sections entirely. Valid as a corner's full verdict ONLY when the
/// corner shares its mode's skeleton with a corner already checked in
/// full: exception signatures, from-keys and clock-key sets are structural
/// (merge/corner.h), so the skipped sections are guaranteed to reproduce
/// the primary corner's outcome. Visit order matches check_mergeable, so
/// a value conflict carries the identical reason/category/subject.
PairVerdict check_mergeable_values(const ModeRelationships& a,
                                   const ModeRelationships& b,
                                   const MergeOptions& options);

/// The MCMM accept rule: two modes merge only when mergeable in EVERY
/// registered corner. `a`/`b` hold one relationship set per corner
/// (corner-major, a.size() == corners.size()). The structural check runs
/// once — corner 0 goes through full check_mergeable — and corners 1..C-1
/// run the value-only check when they share their mode's skeleton (full
/// check on a structure mismatch), with early exit on the first
/// conflicting corner. Conflict verdicts carry the corner's name/id when
/// C > 1; a C == 1 call returns exactly the flat verdict (byte-identical
/// single-corner path). The mergeable verdict's window provenance is the
/// primary corner's.
PairVerdict check_mergeable_corners(
    const std::vector<const ModeRelationships*>& a,
    const std::vector<const ModeRelationships*>& b, const CornerSet& corners,
    const MergeOptions& options);

/// The greedy clique cover over an n-by-n adjacency matrix (row-major,
/// nonzero = edge, diagonal set): seeds cliques in descending-degree order
/// (stable-sorted, so ties break by index) and grows each with every
/// still-unassigned compatible mode. This is the single cover
/// implementation — MergeabilityGraph::clique_cover and the incremental
/// MergeSession both call it, which is what makes an incremental commit's
/// cover bit-identical to a from-scratch build over the same verdicts.
std::vector<std::vector<size_t>> greedy_clique_cover(
    size_t n, const std::vector<uint8_t>& adj);

class MergeabilityGraph {
 public:
  /// Build the graph over `modes`. Per-mode relationship sets are fetched
  /// from RelationshipCache::global() (unless options.use_relationship_cache
  /// is off) and the pairwise checks fan out over a flattened pair index on
  /// a ThreadPool sized by options.num_threads. Each pair writes only its
  /// own verdict slot and the adjacency fill consumes the slots in index
  /// order, so the graph — and therefore the clique cover — is
  /// bit-identical to a serial build.
  MergeabilityGraph(const std::vector<const Sdc*>& modes,
                    const MergeOptions& options);

  /// Session entry: relationship sets come from ctx.cache() (interned into
  /// ctx.keys() when ctx.options().use_interned_keys) and the pair checks
  /// run on ctx.pool(). Same determinism guarantee as above.
  MergeabilityGraph(const std::vector<const Sdc*>& modes, MergeContext& ctx);

  /// Assemble from precomputed verdicts (the incremental MergeSession path:
  /// only dirty pairs were re-checked, clean verdicts were carried over).
  /// `adj` and `reasons` are row-major n*n with the diagonal set.
  MergeabilityGraph(size_t n, std::vector<uint8_t> adj,
                    std::vector<std::string> reasons);

  size_t num_modes() const { return n_; }
  bool edge(size_t i, size_t j) const { return adj_[i * n_ + j] != 0; }
  const std::string& reason(size_t i, size_t j) const {
    return reasons_[i * n_ + j];
  }
  size_t degree(size_t i) const;

  /// Greedy clique cover ("the maximal sets of mergeable individual modes
  /// are identified by finding cliques of this graph ... using a greedy
  /// algorithm as the number of modes is small"). Returns groups of mode
  /// indices; singletons are modes that merge with nothing.
  std::vector<std::vector<size_t>> clique_cover() const;

 private:
  void build(const std::vector<const Sdc*>& modes, const MergeOptions& options,
             RelationshipCache& cache, ThreadPool& pool);

  size_t n_ = 0;
  std::vector<uint8_t> adj_;
  std::vector<std::string> reasons_;
};

}  // namespace mm::merge
