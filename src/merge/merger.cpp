#include "merge/merger.h"

#include <algorithm>
#include <sstream>

#include "merge/clock_refine.h"
#include "merge/data_refine.h"
#include "merge/preliminary.h"
#include "merge/session.h"
#include "obs/obs.h"
#include "util/logger.h"
#include "util/timer.h"

namespace mm::merge {

namespace {

/// Corrupt the merged mode per options.debug_mutation (fuzz-harness
/// mutation testing; no-op for kNone). Runs after refinement and before
/// validation so the equivalence oracle gets a chance to catch the bug.
void apply_debug_mutation(Sdc& merged, const MergeOptions& options) {
  switch (options.debug_mutation) {
    case DebugMutation::kNone:
      return;
    case DebugMutation::kFalsifyMcp:
      for (sdc::Exception& e : merged.exceptions()) {
        if (e.kind == sdc::ExceptionKind::kMulticyclePath) {
          e.kind = sdc::ExceptionKind::kFalsePath;
          e.value = 0.0;
        }
      }
      return;
    case DebugMutation::kDropExceptions:
      merged.exceptions().clear();
      return;
    case DebugMutation::kShuffleInterned:
      if (options.use_interned_keys) {
        std::reverse(merged.exceptions().begin(), merged.exceptions().end());
      }
      return;
  }
}

}  // namespace

ValidatedMergeResult merge_modes(const timing::TimingGraph& graph,
                                 const std::vector<const Sdc*>& modes,
                                 const MergeOptions& options) {
  MergeContext session(options);
  return merge_modes(graph, modes, session);
}

ValidatedMergeResult merge_modes(const timing::TimingGraph& graph,
                                 const std::vector<const Sdc*>& modes,
                                 MergeContext& session) {
  const MergeOptions& options = session.options();
  ValidatedMergeResult out{preliminary_merge(modes, session), {}};

  if (options.run_refinement) {
    Stopwatch timer;
    RefineContext ctx(graph, modes, session);
    refine_clock_network(ctx, out.merge, options);
    refine_data_network(ctx, out.merge, options);
    out.merge.stats.refinement_seconds = timer.elapsed_seconds();

    apply_debug_mutation(*out.merge.merged, options);

    if (options.validate) {
      Stopwatch vtimer;
      out.equivalence = check_equivalence(ctx, *out.merge.merged,
                                          out.merge.clock_map,
                                          /*startpoint_level=*/false,
                                          options.num_threads,
                                          options.use_batched_sta);
      out.merge.stats.validate_seconds = vtimer.elapsed_seconds();
      if (!out.equivalence.signoff_safe()) {
        MM_ERROR("merged mode has %zu optimism violation(s)",
                 out.equivalence.optimism_violations);
      }
      MM_COUNT("merge/equivalence_keys_compared",
               out.equivalence.keys_compared);
      MM_COUNT("merge/optimism_violations",
               out.equivalence.optimism_violations);
    }
  }
  MM_COUNT("merge/modes_merged", modes.size());
  MM_COUNT("merge/pass1_ambiguous_endpoints", out.merge.stats.pass1_ambiguous);
  MM_COUNT("merge/unresolved_pessimism", out.merge.stats.unresolved_pessimism);
  return out;
}

MergedModeSet merge_mode_set(const timing::TimingGraph& graph,
                             const std::vector<const Sdc*>& modes,
                             const MergeOptions& options) {
  MergeContext session(options);
  return merge_mode_set(graph, modes, session);
}

MergedModeSet merge_mode_set(const timing::TimingGraph& graph,
                             const std::vector<const Sdc*>& modes,
                             MergeContext& ctx) {
  // The batch flow is now the degenerate session: add every mode, commit
  // once, hand the results over. Verdicts, cover, merged SDC bytes, and
  // count-valued stats are identical to the historical direct pipeline —
  // commit() shares the pair-check and greedy-cover code with it.
  Stopwatch timer;
  MergeSession session(graph, ctx);
  for (const Sdc* mode : modes) session.add_mode("", mode);
  session.commit();
  MergedModeSet out = session.release_batch();
  out.total_seconds = timer.elapsed_seconds();
  return out;
}

std::string report_merge(const MergeResult& result,
                         const EquivalenceReport& equivalence) {
  const MergeStats& s = result.stats;
  std::ostringstream os;
  os << "=== mode merge report ===\n";
  os << "preliminary merge (" << s.preliminary_seconds << " s)\n";
  os << "  clocks: " << s.clocks_union << " union, " << s.clocks_deduped
     << " deduplicated, " << s.clocks_renamed << " renamed\n";
  os << "  clock constraints: " << s.clock_constraints_merged << " merged, "
     << s.clock_constraints_dropped << " dropped\n";
  os << "  external delays: " << s.port_delays_union << " union\n";
  os << "  case_analysis: " << s.case_kept << " kept, " << s.case_dropped
     << " dropped\n";
  os << "  disable_timing: " << s.disables_kept << " kept, "
     << s.disables_dropped << " dropped\n";
  os << "  drive/load: " << s.drive_load_kept << " kept, "
     << s.drive_load_dropped << " dropped\n";
  os << "  clock exclusivity constraints: " << s.exclusivity_constraints
     << "\n";
  os << "  exceptions: " << s.exceptions_common << " common, "
     << s.exceptions_uniquified << " uniquified, " << s.exceptions_dropped
     << " dropped, " << s.exceptions_kept_pessimistic
     << " kept pessimistic\n";
  os << "refinement (" << s.refinement_seconds << " s)\n";
  os << "  inferred disables: " << s.inferred_disables << "\n";
  os << "  clock stop_propagation constraints: " << s.clock_stops_added << "\n";
  os << "  data-network clock false paths: " << s.data_clock_fps_added << "\n";
  os << "  pass 0: " << s.pass0_pair_fixed
     << " clock-pair false paths\n";
  os << "  pass 1: " << s.pass1_keys << " keys, " << s.pass1_mismatch_fixed
     << " fixed, " << s.pass1_ambiguous << " ambiguous endpoints\n";
  os << "  pass 2: " << s.pass2_keys << " keys, " << s.pass2_mismatch_fixed
     << " fixed, " << s.pass2_ambiguous << " ambiguous pairs\n";
  os << "  pass 3: " << s.pass3_pairs << " pairs, "
     << s.pass3_paths_enumerated << " paths, " << s.pass3_fps_added
     << " false paths added\n";
  os << "  unresolved pessimism: " << s.unresolved_pessimism << "\n";
  os << "validation (" << s.validate_seconds << " s)\n";
  os << "  keys compared: " << equivalence.keys_compared << ", matches: "
     << equivalence.matches << "\n";
  os << "  optimism violations: " << equivalence.optimism_violations
     << ", pessimism keys: " << equivalence.pessimism_keys
     << ", state mismatches: " << equivalence.state_mismatches << "\n";
  os << "  verdict: "
     << (equivalence.equivalent()
             ? "EQUIVALENT"
             : (equivalence.signoff_safe() ? "SIGNOFF-SAFE (pessimistic)"
                                           : "UNSAFE"))
     << "\n";
  for (const std::string& e : equivalence.examples) os << "    " << e << "\n";
  if (!result.notes.empty()) {
    os << "notes (" << result.notes.size() << "):\n";
    size_t shown = 0;
    for (const std::string& n : result.notes) {
      os << "  - " << n << "\n";
      if (++shown >= 20) {
        os << "  ... (" << result.notes.size() - shown << " more)\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace mm::merge
