#include "merge/session.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/journal.h"
#include "obs/obs.h"
#include "sdc/writer.h"
#include "util/error.h"
#include "util/logger.h"
#include "util/timer.h"

namespace mm::merge {

namespace {

uint64_t next_session_journal_id() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Content keys are 64-bit hashes; emit as hex strings so readers never
/// round them through a double.
std::string hex_key(uint64_t key) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

/// Journal display name for a mode: batch adapters register modes with
/// name "", which would make explain --pair unusable.
std::string journal_name(const std::string& name, MergeSession::ModeId id) {
  return name.empty() ? "mode" + std::to_string(id) : name;
}

}  // namespace

MergeSession::MergeSession(const timing::TimingGraph& graph, MergeContext& ctx)
    : timing_graph_(graph),
      ctx_(&ctx),
      journal_id_(next_session_journal_id()),
      policy_salt_(ctx.options().policy.fingerprint()) {}

MergeSession::MergeSession(const timing::TimingGraph& graph,
                           MergeOptions options)
    : timing_graph_(graph),
      owned_ctx_(std::make_unique<MergeContext>(options)),
      ctx_(owned_ctx_.get()),
      journal_id_(next_session_journal_id()),
      policy_salt_(owned_ctx_->options().policy.fingerprint()) {}

MergeSession::~MergeSession() = default;

uint64_t MergeSession::pair_key(ModeId a, ModeId b) const {
  if (a > b) std::swap(a, b);
  // XOR-salted with the policy fingerprint (0 under exact, so exact keys are
  // the plain packed ids); remove_mode un-salts before parsing the ids back.
  return ((a << 32) | b) ^ policy_salt_;
}

size_t MergeSession::position_of(ModeId id) const {
  for (size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i].id == id) return i;
  }
  throw Error("MergeSession: unknown mode id " + std::to_string(id));
}

bool MergeSession::has_mode(ModeId id) const {
  for (const Entry& e : modes_) {
    if (e.id == id) return true;
  }
  return false;
}

const std::string& MergeSession::mode_name(ModeId id) const {
  return modes_[position_of(id)].name;
}

std::vector<const Sdc*> MergeSession::live_modes() const {
  std::vector<const Sdc*> out;
  out.reserve(modes_.size());
  for (const Entry& e : modes_) out.push_back(e.sdc);
  return out;
}

void MergeSession::mark_dirty(ModeId id) { dirty_.insert(id); }

MergeSession::ModeId MergeSession::add_mode(std::string name, const Sdc* sdc) {
  MM_ASSERT(sdc != nullptr);
  // pair_key packs two ids into one uint64.
  MM_ASSERT(next_id_ < (uint64_t{1} << 32));
  Entry e;
  e.id = next_id_++;
  e.name = std::move(name);
  e.sdc = sdc;
  modes_.push_back(std::move(e));
  mark_dirty(modes_.back().id);
  MM_COUNT("session/modes_added", 1);
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("mode_add");
    ev.field("session", journal_id_)
        .field("mode_id", modes_.back().id)
        .field("name", journal_name(modes_.back().name, modes_.back().id))
        .field("content_key", hex_key(RelationshipCache::content_key(*sdc)));
  }
  return modes_.back().id;
}

void MergeSession::remove_mode(ModeId id) {
  const size_t pos = position_of(id);
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("mode_remove");
    ev.field("session", journal_id_)
        .field("mode_id", id)
        .field("name", journal_name(modes_[pos].name, id));
  }
  modes_.erase(modes_.begin() + static_cast<long>(pos));
  dirty_.erase(id);
  // Drop the mode's verdict row; surviving pairs stay clean — only cliques
  // that contained the mode will re-merge (their member-id key changes).
  for (auto it = verdicts_.begin(); it != verdicts_.end();) {
    const uint64_t key = it->first ^ policy_salt_;
    if ((key >> 32) == id || (key & 0xffffffffu) == id) {
      it = verdicts_.erase(it);
    } else {
      ++it;
    }
  }
  MM_COUNT("session/modes_removed", 1);
}

void MergeSession::update_mode(ModeId id, const Sdc* sdc) {
  MM_ASSERT(sdc != nullptr);
  Entry& e = modes_[position_of(id)];
  // The old content's cache entry is now stale for this session: evict it
  // eagerly so the cache only holds decks the session can still reach.
  if (ctx_->options().use_relationship_cache && e.sdc != nullptr) {
    ctx_->cache().invalidate(*e.sdc);
  }
  e.sdc = sdc;
  e.rels.reset();
  mark_dirty(id);
  MM_COUNT("session/modes_updated", 1);
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("mode_update");
    ev.field("session", journal_id_)
        .field("mode_id", id)
        .field("name", journal_name(e.name, id))
        .field("content_key", hex_key(RelationshipCache::content_key(*sdc)));
  }
}

const MergeSession::CommitResult& MergeSession::commit() {
  MM_SPAN("session/commit");
  Stopwatch timer;
  const MergeOptions& options = ctx_->options();
  const size_t n = modes_.size();

  CommitResult out;
  out.num_input_modes = n;

  ++commit_seq_;
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("commit_begin");
    ev.field("session", journal_id_)
        .field("commit", commit_seq_)
        .field("modes", static_cast<uint64_t>(n))
        .field("dirty_modes", static_cast<uint64_t>(dirty_.size()));
  }

  // Refresh relationship sets for modes that lost theirs (new or updated),
  // fanned over the pool like the batch build. Clean modes keep the
  // shared_ptr they already hold — zero cache probes, zero extractions.
  if (options.use_relationship_cache) {
    std::vector<Entry*> need;
    for (Entry& e : modes_) {
      if (!e.rels) need.push_back(&e);
    }
    ctx_->pool().parallel_for(need.size(), [&](size_t k) {
      need[k]->rels = ctx_->relationships(*need[k]->sdc);
    });
  }

  // Re-check exactly the pairs with a dirty endpoint. Verdicts land in
  // their own slot and are folded into the map in index order, keeping the
  // adjacency fill deterministic.
  std::vector<std::pair<uint32_t, uint32_t>> dirty_pairs;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (dirty_.count(modes_[i].id) || dirty_.count(modes_[j].id)) {
        dirty_pairs.emplace_back(i, j);
      }
    }
  }
  std::vector<PairVerdict> fresh(dirty_pairs.size());
  ctx_->pool().parallel_for(
      dirty_pairs.size(), /*min_grain=*/16, [&](size_t p) {
        const auto [i, j] = dirty_pairs[p];
        if (pair_checker_) {
          fresh[p] = pair_checker_(*modes_[i].sdc, *modes_[j].sdc,
                                   modes_[i].rels.get(), modes_[j].rels.get());
          return;
        }
        // With the cache off this is the reference Sdc-pair path (re-derives
        // per pair), exactly like the batch build under the same options.
        fresh[p] = options.use_relationship_cache
                       ? check_mergeable(*modes_[i].rels, *modes_[j].rels,
                                         options)
                       : check_mergeable(*modes_[i].sdc, *modes_[j].sdc,
                                         options);
      });
  for (size_t p = 0; p < dirty_pairs.size(); ++p) {
    const auto [i, j] = dirty_pairs[p];
    verdicts_[pair_key(modes_[i].id, modes_[j].id)] = std::move(fresh[p]);
  }
  // One pair_verdict event per re-checked pair, emitted serially in pair
  // index order from this thread — the journal's byte-stability across
  // num_threads rests on keeping emission out of the parallel loop above.
  // An endpoint is "fresh" when this commit (re-)extracted its relationship
  // set (added/updated mode); the other endpoint was a cache carry-over.
  if (obs::Journal::enabled()) {
    for (size_t p = 0; p < dirty_pairs.size(); ++p) {
      const auto [i, j] = dirty_pairs[p];
      const PairVerdict& v = verdicts_.at(pair_key(modes_[i].id, modes_[j].id));
      obs::JournalEvent ev("pair_verdict");
      ev.field("session", journal_id_)
          .field("commit", commit_seq_)
          .field("a", journal_name(modes_[i].name, modes_[i].id))
          .field("b", journal_name(modes_[j].name, modes_[j].id))
          .field("a_id", modes_[i].id)
          .field("b_id", modes_[j].id)
          .field("a_rels_fresh", dirty_.count(modes_[i].id) != 0)
          .field("b_rels_fresh", dirty_.count(modes_[j].id) != 0)
          .field("mergeable", v.mergeable);
      if (!v.mergeable) {
        ev.field("category", v.category)
            .field("subject", v.subject)
            .field("reason", v.reason);
        // Interned-path provenance only: the id depends on interning order
        // across threads, so readers must not render it in stable output.
        if (v.subject_key_id != 0) ev.field("key_id", v.subject_key_id);
      }
      // Policy provenance, emitted only under a non-exact policy so journals
      // of exact runs stay byte-identical to pre-policy builds. The window
      // fields name the largest comparison the window (not tolerance)
      // accepted — absent when the verdict needed no window at all.
      if (v.policy != "exact") {
        ev.field("policy", v.policy);
        if (!v.window_field.empty()) {
          ev.field("window_field", v.window_field)
              .field("window_used", v.window_used)
              .field("window_budget", v.window_budget);
        }
      }
    }
  }
  const size_t total_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  out.pairs_rechecked = dirty_pairs.size();
  out.pairs_skipped_clean = total_pairs - dirty_pairs.size();
  MM_COUNT("merge/mergeability_pairs", dirty_pairs.size());
  MM_COUNT("session/pairs_rechecked", out.pairs_rechecked);
  MM_COUNT("session/pairs_skipped_clean", out.pairs_skipped_clean);

  // Assemble the full graph from the verdict matrix and run the shared
  // greedy cover — bit-identical to a from-scratch build over these modes.
  std::vector<uint8_t> adj(n * n, 0);
  std::vector<std::string> reasons(n * n);
  for (size_t i = 0; i < n; ++i) adj[i * n + i] = 1;
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const PairVerdict& v =
          verdicts_.at(pair_key(modes_[i].id, modes_[j].id));
      adj[i * n + j] = adj[j * n + i] = v.mergeable ? 1 : 0;
      if (!v.mergeable) {
        reasons[i * n + j] = reasons[j * n + i] = v.reason;
      }
    }
  }
  graph_ = MergeabilityGraph(n, std::move(adj), std::move(reasons));
  out.cliques = graph_.clique_cover();
  MM_COUNT("merge/cliques", out.cliques.size());

  // Merge dirty cliques; hand back the previous result for untouched ones.
  std::unordered_map<std::string, std::shared_ptr<ValidatedMergeResult>>
      next_results;
  size_t clique_index = 0;
  for (const std::vector<size_t>& clique : out.cliques) {
    std::vector<ModeId> ids;
    // Member-id key, tagged with the policy fingerprint when windowed so a
    // cached clique result is only ever reused under the policy it was
    // merged with (empty tag under exact keeps that path's keys unchanged).
    std::string key;
    if (policy_salt_ != 0) key = "p" + std::to_string(policy_salt_) + ":";
    bool any_dirty = false;
    for (size_t pos : clique) {
      const ModeId id = modes_[pos].id;
      ids.push_back(id);
      key += std::to_string(id);
      key += ',';
      any_dirty = any_dirty || dirty_.count(id) != 0;
    }
    std::shared_ptr<ValidatedMergeResult> result;
    auto prev = clique_results_.find(key);
    const bool had_prev = results_valid_ && prev != clique_results_.end();
    const bool reuse = !any_dirty && had_prev;
    if (reuse) {
      result = prev->second;
      ++out.cliques_reused;
    } else {
      std::vector<const Sdc*> members;
      members.reserve(clique.size());
      for (size_t pos : clique) members.push_back(modes_[pos].sdc);
      result = std::make_shared<ValidatedMergeResult>(
          merge_modes(timing_graph_, members, *ctx_));
      ++out.cliques_merged;
    }
    if (obs::Journal::enabled()) {
      std::vector<std::string> names;
      names.reserve(clique.size());
      for (size_t pos : clique) {
        names.push_back(journal_name(modes_[pos].name, modes_[pos].id));
      }
      // Each builder appends its line at end of scope; keep the scopes
      // disjoint so the clique/refine/equivalence lines land in that order
      // (seq is assigned at construction, the append at destruction).
      {
        obs::JournalEvent ev("clique");
        ev.field("session", journal_id_)
            .field("commit", commit_seq_)
            .field("clique", static_cast<uint64_t>(clique_index))
            .field("action",
                   reuse ? "reused" : (had_prev ? "remerged" : "formed"));
        ev.string_array("members", names);
        ev.id_array("member_ids", ids);
        // Bytes of the merged deck this clique (re)produced; reused cliques
        // changed nothing, which is what the timeline wants to show.
        ev.field("sdc_bytes",
                 reuse ? uint64_t{0}
                       : static_cast<uint64_t>(
                             sdc::write_sdc(*result->merge.merged).size()));
      }
      if (!reuse) {
        const MergeStats& s = result->merge.stats;
        {
          obs::JournalEvent rev("refine");
          rev.field("session", journal_id_)
              .field("commit", commit_seq_)
              .field("clique", static_cast<uint64_t>(clique_index))
              .field("inferred_disables", s.inferred_disables)
              .field("clock_stops_added", s.clock_stops_added)
              .field("data_clock_fps_added", s.data_clock_fps_added)
              .field("pass0_pair_fixed", s.pass0_pair_fixed)
              .field("pass1_mismatch_fixed", s.pass1_mismatch_fixed)
              .field("pass1_ambiguous", s.pass1_ambiguous)
              .field("pass2_mismatch_fixed", s.pass2_mismatch_fixed)
              .field("pass2_ambiguous", s.pass2_ambiguous)
              .field("pass3_pairs", s.pass3_pairs)
              .field("pass3_fps_added", s.pass3_fps_added)
              .field("unresolved_pessimism", s.unresolved_pessimism);
        }
        const EquivalenceReport& eq = result->equivalence;
        obs::JournalEvent eev("equivalence");
        eev.field("session", journal_id_)
            .field("commit", commit_seq_)
            .field("clique", static_cast<uint64_t>(clique_index))
            .field("equivalent", eq.equivalent())
            .field("signoff_safe", eq.signoff_safe())
            .field("keys_compared", eq.keys_compared)
            .field("matches", eq.matches)
            .field("optimism_violations", eq.optimism_violations)
            .field("pessimism_keys", eq.pessimism_keys)
            .field("state_mismatches", eq.state_mismatches)
            // Wall-clock of the clique's batched validation walk; rounded
            // to whole ms (renderers ignore it — it is for jq-level
            // profiling of commit cost, see docs/OBSERVABILITY.md).
            .field("validate_ms",
                   static_cast<uint64_t>(s.validate_seconds * 1000.0));
      }
    }
    next_results.emplace(std::move(key), result);
    out.merged.push_back(result);
    out.clique_ids.push_back(std::move(ids));
    out.reused.push_back(reuse);
    ++clique_index;
  }
  clique_results_ = std::move(next_results);
  results_valid_ = true;
  dirty_.clear();

  MM_COUNT("session/commits", 1);
  MM_COUNT("session/cliques_dirty", out.cliques_merged);
  MM_COUNT("session/cliques_reused", out.cliques_reused);
  MM_GAUGE_SET("session/modes", n);
  ctx_->export_stats();

  out.total_seconds = timer.elapsed_seconds();
  if (obs::Journal::enabled()) {
    obs::JournalEvent ev("commit_end");
    ev.field("session", journal_id_)
        .field("commit", commit_seq_)
        .field("modes", static_cast<uint64_t>(n))
        .field("pairs_rechecked", out.pairs_rechecked)
        .field("pairs_skipped_clean", out.pairs_skipped_clean)
        .field("cliques", static_cast<uint64_t>(out.cliques.size()))
        .field("cliques_merged", out.cliques_merged)
        .field("cliques_reused", out.cliques_reused);
  }
  // A commit is a phase boundary: push everything buffered to the file so
  // a crash or a reader mid-session sees whole segments.
  obs::Journal::drain();
  last_ = std::move(out);
  return last_;
}

MergedModeSet MergeSession::release_batch() {
  MergedModeSet out;
  out.num_input_modes = last_.num_input_modes;
  out.cliques = last_.cliques;
  out.total_seconds = last_.total_seconds;
  out.merged.reserve(last_.merged.size());
  for (const std::shared_ptr<const ValidatedMergeResult>& r : last_.merged) {
    // Move the payload out of the shared object. The reuse cache is cleared
    // below, so no later commit can observe the hollowed-out results.
    out.merged.push_back(
        std::move(*std::const_pointer_cast<ValidatedMergeResult>(r)));
  }
  last_ = CommitResult{};
  clique_results_.clear();
  results_valid_ = false;
  return out;
}

}  // namespace mm::merge
