#include "merge/session.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/error.h"
#include "util/logger.h"
#include "util/timer.h"

namespace mm::merge {

MergeSession::MergeSession(const timing::TimingGraph& graph, MergeContext& ctx)
    : timing_graph_(graph), ctx_(&ctx) {}

MergeSession::MergeSession(const timing::TimingGraph& graph,
                           MergeOptions options)
    : timing_graph_(graph),
      owned_ctx_(std::make_unique<MergeContext>(options)),
      ctx_(owned_ctx_.get()) {}

MergeSession::~MergeSession() = default;

uint64_t MergeSession::pair_key(ModeId a, ModeId b) {
  if (a > b) std::swap(a, b);
  return (a << 32) | b;
}

size_t MergeSession::position_of(ModeId id) const {
  for (size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i].id == id) return i;
  }
  throw Error("MergeSession: unknown mode id " + std::to_string(id));
}

bool MergeSession::has_mode(ModeId id) const {
  for (const Entry& e : modes_) {
    if (e.id == id) return true;
  }
  return false;
}

const std::string& MergeSession::mode_name(ModeId id) const {
  return modes_[position_of(id)].name;
}

std::vector<const Sdc*> MergeSession::live_modes() const {
  std::vector<const Sdc*> out;
  out.reserve(modes_.size());
  for (const Entry& e : modes_) out.push_back(e.sdc);
  return out;
}

void MergeSession::mark_dirty(ModeId id) { dirty_.insert(id); }

MergeSession::ModeId MergeSession::add_mode(std::string name, const Sdc* sdc) {
  MM_ASSERT(sdc != nullptr);
  // pair_key packs two ids into one uint64.
  MM_ASSERT(next_id_ < (uint64_t{1} << 32));
  Entry e;
  e.id = next_id_++;
  e.name = std::move(name);
  e.sdc = sdc;
  modes_.push_back(std::move(e));
  mark_dirty(modes_.back().id);
  MM_COUNT("session/modes_added", 1);
  return modes_.back().id;
}

void MergeSession::remove_mode(ModeId id) {
  const size_t pos = position_of(id);
  modes_.erase(modes_.begin() + static_cast<long>(pos));
  dirty_.erase(id);
  // Drop the mode's verdict row; surviving pairs stay clean — only cliques
  // that contained the mode will re-merge (their member-id key changes).
  for (auto it = verdicts_.begin(); it != verdicts_.end();) {
    const uint64_t key = it->first;
    if ((key >> 32) == id || (key & 0xffffffffu) == id) {
      it = verdicts_.erase(it);
    } else {
      ++it;
    }
  }
  MM_COUNT("session/modes_removed", 1);
}

void MergeSession::update_mode(ModeId id, const Sdc* sdc) {
  MM_ASSERT(sdc != nullptr);
  Entry& e = modes_[position_of(id)];
  // The old content's cache entry is now stale for this session: evict it
  // eagerly so the cache only holds decks the session can still reach.
  if (ctx_->options().use_relationship_cache && e.sdc != nullptr) {
    ctx_->cache().invalidate(*e.sdc);
  }
  e.sdc = sdc;
  e.rels.reset();
  mark_dirty(id);
  MM_COUNT("session/modes_updated", 1);
}

const MergeSession::CommitResult& MergeSession::commit() {
  MM_SPAN("session/commit");
  Stopwatch timer;
  const MergeOptions& options = ctx_->options();
  const size_t n = modes_.size();

  CommitResult out;
  out.num_input_modes = n;

  // Refresh relationship sets for modes that lost theirs (new or updated),
  // fanned over the pool like the batch build. Clean modes keep the
  // shared_ptr they already hold — zero cache probes, zero extractions.
  if (options.use_relationship_cache) {
    std::vector<Entry*> need;
    for (Entry& e : modes_) {
      if (!e.rels) need.push_back(&e);
    }
    ctx_->pool().parallel_for(need.size(), [&](size_t k) {
      need[k]->rels = ctx_->relationships(*need[k]->sdc);
    });
  }

  // Re-check exactly the pairs with a dirty endpoint. Verdicts land in
  // their own slot and are folded into the map in index order, keeping the
  // adjacency fill deterministic.
  std::vector<std::pair<uint32_t, uint32_t>> dirty_pairs;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (dirty_.count(modes_[i].id) || dirty_.count(modes_[j].id)) {
        dirty_pairs.emplace_back(i, j);
      }
    }
  }
  std::vector<PairVerdict> fresh(dirty_pairs.size());
  ctx_->pool().parallel_for(
      dirty_pairs.size(), /*min_grain=*/16, [&](size_t p) {
        const auto [i, j] = dirty_pairs[p];
        // With the cache off this is the reference Sdc-pair path (re-derives
        // per pair), exactly like the batch build under the same options.
        fresh[p] = options.use_relationship_cache
                       ? check_mergeable(*modes_[i].rels, *modes_[j].rels,
                                         options)
                       : check_mergeable(*modes_[i].sdc, *modes_[j].sdc,
                                         options);
      });
  for (size_t p = 0; p < dirty_pairs.size(); ++p) {
    const auto [i, j] = dirty_pairs[p];
    verdicts_[pair_key(modes_[i].id, modes_[j].id)] = std::move(fresh[p]);
  }
  const size_t total_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  out.pairs_rechecked = dirty_pairs.size();
  out.pairs_skipped_clean = total_pairs - dirty_pairs.size();
  MM_COUNT("merge/mergeability_pairs", dirty_pairs.size());
  MM_COUNT("session/pairs_rechecked", out.pairs_rechecked);
  MM_COUNT("session/pairs_skipped_clean", out.pairs_skipped_clean);

  // Assemble the full graph from the verdict matrix and run the shared
  // greedy cover — bit-identical to a from-scratch build over these modes.
  std::vector<uint8_t> adj(n * n, 0);
  std::vector<std::string> reasons(n * n);
  for (size_t i = 0; i < n; ++i) adj[i * n + i] = 1;
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const PairVerdict& v =
          verdicts_.at(pair_key(modes_[i].id, modes_[j].id));
      adj[i * n + j] = adj[j * n + i] = v.mergeable ? 1 : 0;
      if (!v.mergeable) {
        reasons[i * n + j] = reasons[j * n + i] = v.reason;
      }
    }
  }
  graph_ = MergeabilityGraph(n, std::move(adj), std::move(reasons));
  out.cliques = graph_.clique_cover();
  MM_COUNT("merge/cliques", out.cliques.size());

  // Merge dirty cliques; hand back the previous result for untouched ones.
  std::unordered_map<std::string, std::shared_ptr<ValidatedMergeResult>>
      next_results;
  for (const std::vector<size_t>& clique : out.cliques) {
    std::vector<ModeId> ids;
    std::string key;
    bool any_dirty = false;
    for (size_t pos : clique) {
      const ModeId id = modes_[pos].id;
      ids.push_back(id);
      key += std::to_string(id);
      key += ',';
      any_dirty = any_dirty || dirty_.count(id) != 0;
    }
    std::shared_ptr<ValidatedMergeResult> result;
    auto prev = clique_results_.find(key);
    const bool reuse =
        !any_dirty && results_valid_ && prev != clique_results_.end();
    if (reuse) {
      result = prev->second;
      ++out.cliques_reused;
    } else {
      std::vector<const Sdc*> members;
      members.reserve(clique.size());
      for (size_t pos : clique) members.push_back(modes_[pos].sdc);
      result = std::make_shared<ValidatedMergeResult>(
          merge_modes(timing_graph_, members, *ctx_));
      ++out.cliques_merged;
    }
    next_results.emplace(std::move(key), result);
    out.merged.push_back(result);
    out.clique_ids.push_back(std::move(ids));
    out.reused.push_back(reuse);
  }
  clique_results_ = std::move(next_results);
  results_valid_ = true;
  dirty_.clear();

  MM_COUNT("session/commits", 1);
  MM_COUNT("session/cliques_dirty", out.cliques_merged);
  MM_COUNT("session/cliques_reused", out.cliques_reused);
  MM_GAUGE_SET("session/modes", n);
  ctx_->export_stats();

  out.total_seconds = timer.elapsed_seconds();
  last_ = std::move(out);
  return last_;
}

MergedModeSet MergeSession::release_batch() {
  MergedModeSet out;
  out.num_input_modes = last_.num_input_modes;
  out.cliques = last_.cliques;
  out.total_seconds = last_.total_seconds;
  out.merged.reserve(last_.merged.size());
  for (const std::shared_ptr<const ValidatedMergeResult>& r : last_.merged) {
    // Move the payload out of the shared object. The reuse cache is cleared
    // below, so no later commit can observe the hollowed-out results.
    out.merged.push_back(
        std::move(*std::const_pointer_cast<ValidatedMergeResult>(r)));
  }
  last_ = CommitResult{};
  clique_results_.clear();
  results_valid_ = false;
  return out;
}

}  // namespace mm::merge
