#include "merge/keys.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mm::merge {

std::string clock_key(const Sdc& sdc, ClockId id) {
  const sdc::Clock& c = sdc.clock(id);
  std::vector<uint32_t> srcs;
  for (PinId p : c.sources) srcs.push_back(p.value());
  std::sort(srcs.begin(), srcs.end());
  std::ostringstream os;
  for (uint32_t s : srcs) os << 'p' << s << ',';
  os << "T=" << c.period;
  for (double w : c.waveform) os << ':' << w;
  if (c.is_generated) {
    os << ";gen:" << c.master_source.value() << '/' << c.divide_by << 'x'
       << c.multiply_by;
  }
  return os.str();
}

std::set<std::string> mode_clock_keys(const Sdc& sdc) {
  std::set<std::string> keys;
  for (size_t i = 0; i < sdc.num_clocks(); ++i) {
    keys.insert(clock_key(sdc, ClockId(i)));
  }
  return keys;
}

std::string exception_signature(const Sdc& sdc, const sdc::Exception& ex,
                                bool include_value) {
  std::ostringstream os;
  os << static_cast<int>(ex.kind);
  if (include_value) os << '=' << ex.value;
  os << "|sh" << ex.setup_hold.setup << ex.setup_hold.hold;
  auto point = [&](const sdc::ExceptionPoint& pt) {
    std::vector<uint32_t> pins;
    for (PinId p : pt.pins) pins.push_back(p.value());
    std::sort(pins.begin(), pins.end());
    for (uint32_t p : pins) os << 'p' << p << ',';
    std::vector<std::string> clocks;
    for (ClockId c : pt.clocks) clocks.push_back(clock_key(sdc, c));
    std::sort(clocks.begin(), clocks.end());
    for (const std::string& c : clocks) os << "c{" << c << "},";
  };
  os << "|F:";
  point(ex.from);
  for (const sdc::ExceptionPoint& th : ex.throughs) {
    os << "|T:";
    point(th);
  }
  os << "|E:";
  point(ex.to);
  return os.str();
}

std::set<std::string> effective_from_keys(const Sdc& sdc,
                                          const sdc::Exception& ex) {
  if (ex.from.clocks.empty()) return mode_clock_keys(sdc);
  std::set<std::string> keys;
  for (ClockId c : ex.from.clocks) keys.insert(clock_key(sdc, c));
  return keys;
}

bool keys_disjoint(const std::set<std::string>& a,
                   const std::set<std::string>& b) {
  for (const std::string& k : a) {
    if (b.count(k)) return false;
  }
  return true;
}

bool keys_disjoint(const KeySet& a, const KeySet& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return false;
    if (*ia < *ib)
      ++ia;
    else
      ++ib;
  }
  return true;
}

DynamicBitset keyset_bits(const KeySet& keys) {
  if (keys.empty()) return DynamicBitset();
  // keys is sorted, so the universe is the last id + 1.
  DynamicBitset bits(keys.back().id() + 1);
  for (KeyId k : keys) bits.set(k.id());
  return bits;
}

KeyId CanonicalKeyTable::clock_key_id(const Sdc& sdc, ClockId id) {
  return intern(clock_key(sdc, id));
}

KeySet CanonicalKeyTable::mode_clock_key_ids(const Sdc& sdc) {
  KeySet ids;
  ids.reserve(sdc.num_clocks());
  for (size_t i = 0; i < sdc.num_clocks(); ++i) {
    ids.push_back(clock_key_id(sdc, ClockId(i)));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

KeyId CanonicalKeyTable::exception_signature_id(const Sdc& sdc,
                                                const sdc::Exception& ex,
                                                bool include_value) {
  return intern(exception_signature(sdc, ex, include_value));
}

KeySet CanonicalKeyTable::effective_from_key_ids(const Sdc& sdc,
                                                 const sdc::Exception& ex) {
  if (ex.from.clocks.empty()) return mode_clock_key_ids(sdc);
  KeySet ids;
  ids.reserve(ex.from.clocks.size());
  for (ClockId c : ex.from.clocks) ids.push_back(clock_key_id(sdc, c));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

KeyId CanonicalKeyTable::intern(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t before = pool_.size();
  const Symbol sym = pool_.intern(key);
  if (pool_.size() > before) bytes_ += key.size();
  return sym;
}

std::string CanonicalKeyTable::str(KeyId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::string(pool_.str(id));
}

size_t CanonicalKeyTable::num_keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_.size();
}

size_t CanonicalKeyTable::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

CanonicalKeyTable& CanonicalKeyTable::global() {
  static CanonicalKeyTable table;
  return table;
}

}  // namespace mm::merge
