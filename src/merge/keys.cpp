#include "merge/keys.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mm::merge {

std::string clock_key(const Sdc& sdc, ClockId id) {
  const sdc::Clock& c = sdc.clock(id);
  std::vector<uint32_t> srcs;
  for (PinId p : c.sources) srcs.push_back(p.value());
  std::sort(srcs.begin(), srcs.end());
  std::ostringstream os;
  for (uint32_t s : srcs) os << 'p' << s << ',';
  os << "T=" << c.period;
  for (double w : c.waveform) os << ':' << w;
  if (c.is_generated) {
    os << ";gen:" << c.master_source.value() << '/' << c.divide_by << 'x'
       << c.multiply_by;
  }
  return os.str();
}

std::set<std::string> mode_clock_keys(const Sdc& sdc) {
  std::set<std::string> keys;
  for (size_t i = 0; i < sdc.num_clocks(); ++i) {
    keys.insert(clock_key(sdc, ClockId(i)));
  }
  return keys;
}

std::string exception_signature(const Sdc& sdc, const sdc::Exception& ex,
                                bool include_value) {
  std::ostringstream os;
  os << static_cast<int>(ex.kind);
  if (include_value) os << '=' << ex.value;
  os << "|sh" << ex.setup_hold.setup << ex.setup_hold.hold;
  auto point = [&](const sdc::ExceptionPoint& pt) {
    std::vector<uint32_t> pins;
    for (PinId p : pt.pins) pins.push_back(p.value());
    std::sort(pins.begin(), pins.end());
    for (uint32_t p : pins) os << 'p' << p << ',';
    std::vector<std::string> clocks;
    for (ClockId c : pt.clocks) clocks.push_back(clock_key(sdc, c));
    std::sort(clocks.begin(), clocks.end());
    for (const std::string& c : clocks) os << "c{" << c << "},";
  };
  os << "|F:";
  point(ex.from);
  for (const sdc::ExceptionPoint& th : ex.throughs) {
    os << "|T:";
    point(th);
  }
  os << "|E:";
  point(ex.to);
  return os.str();
}

std::set<std::string> effective_from_keys(const Sdc& sdc,
                                          const sdc::Exception& ex) {
  if (ex.from.clocks.empty()) return mode_clock_keys(sdc);
  std::set<std::string> keys;
  for (ClockId c : ex.from.clocks) keys.insert(clock_key(sdc, c));
  return keys;
}

bool keys_disjoint(const std::set<std::string>& a,
                   const std::set<std::string>& b) {
  for (const std::string& k : a) {
    if (b.count(k)) return false;
  }
  return true;
}

}  // namespace mm::merge
