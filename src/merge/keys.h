#pragma once
// Canonical identity keys used across the merge engine: a clock's identity
// independent of its name (sources + waveform + generation parameters), and
// an exception's anchor signature with clocks replaced by their canonical
// keys so that signatures compare across modes.
//
// Two representations of the same identity:
//
//   - std::string keys (clock_key / exception_signature / ...): the
//     reference form. Self-describing, order-comparable, and the byte-wise
//     definition of identity everything else must reproduce.
//   - KeyId: a 32-bit handle into a CanonicalKeyTable that interns those
//     same strings. Equal ids <=> equal key strings *within one table*, so
//     the O(M^2) pair loop and the preliminary-merge grouping compare and
//     hash integers instead of re-deriving and comparing strings. Sorted
//     KeyId vectors (KeySet) replace std::set<std::string>, and dense
//     bitsets over ids give keys_disjoint an O(ids/64) word scan.
//
// KeyIds from different tables must never be mixed: a table defines the
// id <-> string bijection. merge::MergeContext owns one table per session
// and threads it through extraction so all ModeRelationships in a session
// share the same id space.

#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "merge/types.h"
#include "util/bitset.h"
#include "util/intern.h"

namespace mm::merge {

/// Interned canonical key. 32 bits, invalid() == never interned.
using KeyId = mm::Symbol;

/// Sorted, duplicate-free vector of interned keys (the KeyId analogue of
/// std::set<std::string>).
using KeySet = std::vector<KeyId>;

// --- string path (the reference definition of canonical identity) ---------

/// Canonical identity of a clock: same key <=> "same clock" across modes
/// (the paper's duplicate test in §3.1.1).
std::string clock_key(const Sdc& sdc, ClockId id);

/// All clock keys of a mode.
std::set<std::string> mode_clock_keys(const Sdc& sdc);

/// Anchor signature of an exception; `include_value` adds kind value (MCP
/// multiplier / delay bound) to the key.
std::string exception_signature(const Sdc& sdc, const sdc::Exception& ex,
                                bool include_value);

/// Effective launch-clock keys of an exception in its mode: the -from
/// clocks, or all the mode's clocks when the -from carries no clocks.
std::set<std::string> effective_from_keys(const Sdc& sdc,
                                          const sdc::Exception& ex);

bool keys_disjoint(const std::set<std::string>& a,
                   const std::set<std::string>& b);

// --- interned path ---------------------------------------------------------

/// Two-pointer disjointness over sorted KeySets.
bool keys_disjoint(const KeySet& a, const KeySet& b);

/// Dense bitset over a KeySet (bit index = KeyId id), sized to the largest
/// id present. DynamicBitset::intersects handles differing sizes.
DynamicBitset keyset_bits(const KeySet& keys);

/// Thread-safe interner for canonical key strings. Builds exactly the
/// string-path keys above and interns them, so a KeyId is nothing more than
/// a handle to the reference string — parity by construction.
class CanonicalKeyTable {
 public:
  CanonicalKeyTable() = default;
  CanonicalKeyTable(const CanonicalKeyTable&) = delete;
  CanonicalKeyTable& operator=(const CanonicalKeyTable&) = delete;

  /// Interned clock_key(sdc, id).
  KeyId clock_key_id(const Sdc& sdc, ClockId id);

  /// Interned mode_clock_keys(sdc), sorted by id.
  KeySet mode_clock_key_ids(const Sdc& sdc);

  /// Interned exception_signature(sdc, ex, include_value).
  KeyId exception_signature_id(const Sdc& sdc, const sdc::Exception& ex,
                               bool include_value);

  /// Interned effective_from_keys(sdc, ex), sorted by id.
  KeySet effective_from_key_ids(const Sdc& sdc, const sdc::Exception& ex);

  /// Intern an arbitrary key string.
  KeyId intern(std::string_view key);

  /// The key string an id stands for (copy: safe against concurrent
  /// interning).
  std::string str(KeyId id) const;

  /// Number of distinct keys interned.
  size_t num_keys() const;

  /// Total bytes of key-string payload held by the table.
  size_t bytes() const;

  /// Process-wide table backing RelationshipCache::global().
  static CanonicalKeyTable& global();

 private:
  mutable std::mutex mutex_;
  StringPool pool_;
  size_t bytes_ = 0;
};

}  // namespace mm::merge
