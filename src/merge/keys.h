#pragma once
// Canonical identity keys used across the merge engine: a clock's identity
// independent of its name (sources + waveform + generation parameters), and
// an exception's anchor signature with clocks replaced by their canonical
// keys so that signatures compare across modes.

#include <set>
#include <string>

#include "merge/types.h"

namespace mm::merge {

/// Canonical identity of a clock: same key <=> "same clock" across modes
/// (the paper's duplicate test in §3.1.1).
std::string clock_key(const Sdc& sdc, ClockId id);

/// All clock keys of a mode.
std::set<std::string> mode_clock_keys(const Sdc& sdc);

/// Anchor signature of an exception; `include_value` adds kind value (MCP
/// multiplier / delay bound) to the key.
std::string exception_signature(const Sdc& sdc, const sdc::Exception& ex,
                                bool include_value);

/// Effective launch-clock keys of an exception in its mode: the -from
/// clocks, or all the mode's clocks when the -from carries no clocks.
std::set<std::string> effective_from_keys(const Sdc& sdc,
                                          const sdc::Exception& ex);

bool keys_disjoint(const std::set<std::string>& a,
                   const std::set<std::string>& b);

}  // namespace mm::merge
