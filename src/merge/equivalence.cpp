#include "merge/equivalence.h"

#include <memory>

#include "obs/obs.h"
#include "timing/relationships.h"
#include "timing/sta_batch.h"
#include "util/thread_pool.h"

namespace mm::merge {

using timing::BatchOptions;
using timing::BatchPropagator;
using timing::CompiledExceptions;
using timing::ModeGraph;
using timing::Propagator;
using timing::PropagationOptions;
using timing::RelationKey;
using timing::RelationMap;
using timing::StaLane;
using timing::StateSet;

namespace {

const StateSet& side_states(const timing::RelationData& data, int side) {
  return side == 0 ? data.states : data.hold_states;
}

/// Merge one relation map into the individual-side union, with mode `m`'s
/// clocks renamed into the merged clock space.
void accumulate_mapped(const RelationMap& rel, size_t m, const ClockMap& map,
                       RelationMap& indiv) {
  for (const auto& [key, data] : rel) {
    RelationKey mapped = key;
    if (mapped.launch.valid()) mapped.launch = map.merged_of(m, mapped.launch);
    if (mapped.capture.valid())
      mapped.capture = map.merged_of(m, mapped.capture);
    timing::RelationData& slot = indiv[mapped];
    slot.states.merge(data.states);
    slot.hold_states.merge(data.hold_states);
  }
}

/// Serial reference: one Propagator per mode (fanned over the pool) plus
/// one for the merged deck — N+1 independent graph walks.
void propagate_serial(const RefineContext& ctx, const Sdc& merged,
                      const ClockMap& map, const PropagationOptions& opts,
                      ThreadPool& pool, RelationMap& indiv, RelationMap& mrel) {
  const timing::TimingGraph& graph = *ctx.graph;
  std::vector<RelationMap> partial(ctx.modes.size());
  pool.parallel_for(ctx.modes.size(), [&](size_t m) {
    CompiledExceptions ce(graph, *ctx.modes[m]);
    Propagator prop(*ctx.mode_graphs[m], ce);
    prop.run(opts);
    accumulate_mapped(prop.relations(), m, map, partial[m]);
  });
  for (RelationMap& pm : partial) {
    for (auto& [key, data] : pm) {
      indiv[key].states.merge(data.states);
      indiv[key].hold_states.merge(data.hold_states);
    }
  }

  ModeGraph merged_mg(graph, merged);
  CompiledExceptions merged_ce(graph, merged);
  Propagator mprop(merged_mg, merged_ce);
  mprop.run(opts);
  mrel = mprop.relations();
}

/// Batched path: the whole clique — N member lanes + 1 merged lane — walks
/// the levelized graph once per kMaxBatchLanes chunk, sharing tags across
/// lanes. Per-lane relation content is identical to propagate_serial.
void propagate_batched(const RefineContext& ctx, const Sdc& merged,
                       const ClockMap& map, const PropagationOptions& opts,
                       ThreadPool& pool, RelationMap& indiv,
                       RelationMap& mrel) {
  const timing::TimingGraph& graph = *ctx.graph;
  const size_t num_modes = ctx.modes.size();

  // Exceptions per member mode + merged mode/exceptions, built up front
  // (each index writes only its own slot).
  std::vector<std::unique_ptr<CompiledExceptions>> excs(num_modes);
  std::unique_ptr<ModeGraph> merged_mg;
  std::unique_ptr<CompiledExceptions> merged_ce;
  pool.parallel_for(num_modes + 1, [&](size_t m) {
    if (m < num_modes) {
      excs[m] = std::make_unique<CompiledExceptions>(graph, *ctx.modes[m]);
    } else {
      merged_mg = std::make_unique<ModeGraph>(graph, merged);
      merged_ce = std::make_unique<CompiledExceptions>(graph, merged);
    }
  });

  BatchOptions bopts;
  bopts.track_startpoints = opts.track_startpoints;
  bopts.compute_arrivals = opts.compute_arrivals;
  bopts.analyze_hold = opts.analyze_hold;
  bopts.pool = &pool;

  // Member lanes chunked at the mask width; the merged lane rides in the
  // first chunk (cliques virtually always fit one chunk outright).
  size_t next_member = 0;
  bool merged_done = false;
  while (next_member < num_modes || !merged_done) {
    std::vector<StaLane> lanes;
    std::vector<size_t> lane_mode;  // member index, SIZE_MAX = merged lane
    if (!merged_done) {
      lanes.push_back({merged_mg.get(), merged_ce.get()});
      lane_mode.push_back(SIZE_MAX);
      merged_done = true;
    }
    while (next_member < num_modes && lanes.size() < timing::kMaxBatchLanes) {
      lanes.push_back({ctx.mode_graphs[next_member].get(),
                       excs[next_member].get()});
      lane_mode.push_back(next_member);
      ++next_member;
    }

    BatchPropagator prop(graph, std::move(lanes));
    prop.run(bopts);
    for (size_t l = 0; l < lane_mode.size(); ++l) {
      if (lane_mode[l] == SIZE_MAX) {
        mrel = prop.relations(l);
      } else {
        accumulate_mapped(prop.relations(l), lane_mode[l], map, indiv);
      }
    }
  }
}

}  // namespace

EquivalenceReport check_equivalence(const RefineContext& ctx,
                                    const Sdc& merged, const ClockMap& map,
                                    bool startpoint_level, size_t num_threads,
                                    bool use_batched_sta) {
  MM_SPAN("merge/equivalence");
  EquivalenceReport report;
  const timing::TimingGraph& graph = *ctx.graph;

  PropagationOptions opts;
  opts.compute_arrivals = false;
  opts.track_startpoints = startpoint_level;
  opts.analyze_hold = true;

  // Reuse the merge session's pool when the context carries one.
  std::unique_ptr<ThreadPool> local;
  ThreadPool* pool_ptr = ctx.session ? &ctx.session->pool() : nullptr;
  if (pool_ptr == nullptr) {
    local = std::make_unique<ThreadPool>(num_threads == 0 ? 0 : num_threads);
    pool_ptr = local.get();
  }
  ThreadPool& pool = *pool_ptr;

  // Individual side (union over modes, clocks mapped to merged space) and
  // merged side — one batched clique walk, or N+1 serial walks as the
  // byte-parity reference.
  RelationMap indiv;
  RelationMap mrel;
  if (use_batched_sta) {
    propagate_batched(ctx, merged, map, opts, pool, indiv, mrel);
  } else {
    propagate_serial(ctx, merged, map, opts, pool, indiv, mrel);
  }

  // Lost-relation keys live in the *mapped individual* clock space; a
  // candidate that dropped a clock entirely has no name for them.
  auto clock_name = [&](sdc::ClockId id) -> std::string {
    if (id.index() < merged.num_clocks()) return merged.clock(id).name;
    return "<dropped clock #" + std::to_string(id.index()) + ">";
  };
  auto example = [&](const std::string& what, const RelationKey& key,
                     const std::string& detail) {
    if (report.examples.size() >= 10) return;
    std::string msg = what + " at " +
                      std::string(graph.design().pin_name(key.endpoint));
    if (key.startpoint.valid()) {
      msg += " from " + std::string(graph.design().pin_name(key.startpoint));
    }
    if (key.launch.valid()) msg += " launch=" + clock_name(key.launch);
    if (key.capture.valid()) msg += " capture=" + clock_name(key.capture);
    report.examples.push_back(msg + " " + detail);
  };

  const char* side_name[2] = {"setup", "hold"};
  for (const auto& [key, data] : mrel) {
    for (int side = 0; side < 2; ++side) {
      ++report.keys_compared;
      const StateSet& ms = side_states(data, side);
      const auto it = indiv.find(key);
      const StateSet* is = it == indiv.end() ? nullptr : &side_states(it->second, side);
      const bool indiv_timed = is && is->any_timed();
      const bool merged_timed = ms.any_timed();
      if (!indiv_timed && merged_timed) {
        ++report.pessimism_keys;
        example(std::string("PESSIMISM(") + side_name[side] + ")", key,
                "merged=" + ms.str() + " individual=" + (is ? is->str() : "{}"));
      } else if (indiv_timed && !merged_timed) {
        ++report.optimism_violations;
        example(std::string("OPTIMISM(") + side_name[side] + ")", key,
                "merged=" + ms.str() + " individual=" + is->str());
      } else if (is && *is == ms) {
        ++report.matches;
      } else if (indiv_timed && merged_timed) {
        // Both timed: check the timed sub-states agree (MCP values etc.).
        StateSet a, b;
        for (const auto& s : ms.states)
          if (s.is_timed()) a.insert(s);
        for (const auto& s : is->states)
          if (s.is_timed()) b.insert(s);
        if (a == b) {
          ++report.matches;
        } else {
          ++report.state_mismatches;
          example(std::string("STATE-MISMATCH(") + side_name[side] + ")", key,
                  "merged=" + ms.str() + " individual=" + is->str());
        }
      } else {
        ++report.matches;  // both untimed
      }
    }
  }

  // Relations the merged mode lost entirely.
  for (const auto& [key, data] : indiv) {
    if (!data.states.any_timed() && !data.hold_states.any_timed()) continue;
    if (!mrel.count(key)) {
      ++report.keys_compared;
      ++report.optimism_violations;
      example("OPTIMISM (lost relation)", key,
              "individual=" + data.states.str());
    }
  }

  return report;
}

}  // namespace mm::merge
