#include "merge/equivalence.h"

#include <memory>

#include "obs/obs.h"
#include "timing/relationships.h"
#include "util/thread_pool.h"

namespace mm::merge {

using timing::CompiledExceptions;
using timing::ModeGraph;
using timing::Propagator;
using timing::PropagationOptions;
using timing::RelationKey;
using timing::RelationMap;
using timing::StateSet;

namespace {

const StateSet& side_states(const timing::RelationData& data, int side) {
  return side == 0 ? data.states : data.hold_states;
}

}  // namespace

EquivalenceReport check_equivalence(const RefineContext& ctx,
                                    const Sdc& merged, const ClockMap& map,
                                    bool startpoint_level,
                                    size_t num_threads) {
  MM_SPAN("merge/equivalence");
  EquivalenceReport report;
  const timing::TimingGraph& graph = *ctx.graph;

  PropagationOptions opts;
  opts.compute_arrivals = false;
  opts.track_startpoints = startpoint_level;
  opts.analyze_hold = true;

  // Individual side (union over modes, clocks mapped to merged space).
  // Reuse the merge session's pool when the context carries one.
  std::vector<RelationMap> partial(ctx.modes.size());
  std::unique_ptr<ThreadPool> local;
  ThreadPool* pool_ptr = ctx.session ? &ctx.session->pool() : nullptr;
  if (pool_ptr == nullptr) {
    local = std::make_unique<ThreadPool>(num_threads == 0 ? 0 : num_threads);
    pool_ptr = local.get();
  }
  ThreadPool& pool = *pool_ptr;
  pool.parallel_for(ctx.modes.size(), [&](size_t m) {
    CompiledExceptions ce(graph, *ctx.modes[m]);
    Propagator prop(*ctx.mode_graphs[m], ce);
    prop.run(opts);
    for (const auto& [key, data] : prop.relations()) {
      RelationKey mapped = key;
      if (mapped.launch.valid()) mapped.launch = map.merged_of(m, mapped.launch);
      if (mapped.capture.valid())
        mapped.capture = map.merged_of(m, mapped.capture);
      timing::RelationData& slot = partial[m][mapped];
      slot.states.merge(data.states);
      slot.hold_states.merge(data.hold_states);
    }
  });
  RelationMap indiv;
  for (RelationMap& pm : partial) {
    for (auto& [key, data] : pm) {
      indiv[key].states.merge(data.states);
      indiv[key].hold_states.merge(data.hold_states);
    }
  }

  // Merged side.
  ModeGraph merged_mg(graph, merged);
  CompiledExceptions merged_ce(graph, merged);
  Propagator mprop(merged_mg, merged_ce);
  mprop.run(opts);
  const RelationMap& mrel = mprop.relations();

  // Lost-relation keys live in the *mapped individual* clock space; a
  // candidate that dropped a clock entirely has no name for them.
  auto clock_name = [&](sdc::ClockId id) -> std::string {
    if (id.index() < merged.num_clocks()) return merged.clock(id).name;
    return "<dropped clock #" + std::to_string(id.index()) + ">";
  };
  auto example = [&](const std::string& what, const RelationKey& key,
                     const std::string& detail) {
    if (report.examples.size() >= 10) return;
    std::string msg = what + " at " +
                      std::string(graph.design().pin_name(key.endpoint));
    if (key.startpoint.valid()) {
      msg += " from " + std::string(graph.design().pin_name(key.startpoint));
    }
    if (key.launch.valid()) msg += " launch=" + clock_name(key.launch);
    if (key.capture.valid()) msg += " capture=" + clock_name(key.capture);
    report.examples.push_back(msg + " " + detail);
  };

  const char* side_name[2] = {"setup", "hold"};
  for (const auto& [key, data] : mrel) {
    for (int side = 0; side < 2; ++side) {
      ++report.keys_compared;
      const StateSet& ms = side_states(data, side);
      const auto it = indiv.find(key);
      const StateSet* is = it == indiv.end() ? nullptr : &side_states(it->second, side);
      const bool indiv_timed = is && is->any_timed();
      const bool merged_timed = ms.any_timed();
      if (!indiv_timed && merged_timed) {
        ++report.pessimism_keys;
        example(std::string("PESSIMISM(") + side_name[side] + ")", key,
                "merged=" + ms.str() + " individual=" + (is ? is->str() : "{}"));
      } else if (indiv_timed && !merged_timed) {
        ++report.optimism_violations;
        example(std::string("OPTIMISM(") + side_name[side] + ")", key,
                "merged=" + ms.str() + " individual=" + is->str());
      } else if (is && *is == ms) {
        ++report.matches;
      } else if (indiv_timed && merged_timed) {
        // Both timed: check the timed sub-states agree (MCP values etc.).
        StateSet a, b;
        for (const auto& s : ms.states)
          if (s.is_timed()) a.insert(s);
        for (const auto& s : is->states)
          if (s.is_timed()) b.insert(s);
        if (a == b) {
          ++report.matches;
        } else {
          ++report.state_mismatches;
          example(std::string("STATE-MISMATCH(") + side_name[side] + ")", key,
                  "merged=" + ms.str() + " individual=" + is->str());
        }
      } else {
        ++report.matches;  // both untimed
      }
    }
  }

  // Relations the merged mode lost entirely.
  for (const auto& [key, data] : indiv) {
    if (!data.states.any_timed() && !data.hold_states.any_timed()) continue;
    if (!mrel.count(key)) {
      ++report.keys_compared;
      ++report.optimism_violations;
      example("OPTIMISM (lost relation)", key,
              "individual=" + data.states.str());
    }
  }

  return report;
}

}  // namespace mm::merge
