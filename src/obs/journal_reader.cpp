#include "obs/journal_reader.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/journal.h"

namespace mm::obs {
namespace {

std::string fmt_seconds(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", us / 1e6);
  return buf;
}

/// (session, commit) ordering key.
using CommitKey = std::pair<uint64_t, uint64_t>;

struct CliqueRec {
  uint64_t index = 0;
  std::string action;
  std::vector<std::string> members;
  uint64_t sdc_bytes = 0;
};

std::string join_members(const std::vector<std::string>& members) {
  std::string out = "[";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i) out += ", ";
    out += members[i];
  }
  out += "]";
  return out;
}

std::vector<std::string> member_names(const JsonValue& ev) {
  std::vector<std::string> out;
  if (const JsonValue* m = ev.find("members"); m && m->is_array()) {
    for (const JsonValue& v : m->arr) {
      if (v.is_string()) out.push_back(v.str_v);
    }
  }
  return out;
}

}  // namespace

JournalData read_journal(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open journal: " + path);
  JournalData out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
    if (!v.is_object() || !v.find("ev") || !v.find("ev")->is_string()) {
      throw Error(path + ":" + std::to_string(lineno) +
                  ": journal line has no \"ev\" field");
    }
    JournalRecord rec;
    rec.ev = v.str("ev");
    rec.json = std::move(v);
    out.events.push_back(std::move(rec));
  }
  if (out.events.empty()) {
    throw Error(path + ": empty journal (missing header line)");
  }
  const JournalRecord& head = out.events.front();
  if (head.ev != "header") {
    throw Error(path + ": first journal line is not a header event");
  }
  out.schema = head.json.str("schema");
  if (out.schema != kJournalSchema) {
    throw Error(path + ": unsupported journal schema \"" + out.schema +
                "\" (expected " + kJournalSchema + ")");
  }
  return out;
}

std::string explain_pair(const JournalData& journal, std::string_view a,
                         std::string_view b) {
  // Every name the journal mentions, for the unknown-mode diagnostic.
  std::unordered_set<std::string> known;
  // Latest content key per mode name (mode_add / mode_update events).
  std::unordered_map<std::string, std::string> content_keys;
  // Cliques per commit, in emission (= cover) order.
  std::map<CommitKey, std::vector<CliqueRec>> cliques;
  // The pair's verdict events, in file order.
  struct VerdictRec {
    CommitKey commit;
    const JsonValue* ev = nullptr;
  };
  std::vector<VerdictRec> verdicts;

  for (const JournalRecord& rec : journal.events) {
    const JsonValue& ev = rec.json;
    if (rec.ev == "mode_add" || rec.ev == "mode_update" ||
        rec.ev == "mode_remove") {
      const std::string name = ev.str("name");
      known.insert(name);
      if (rec.ev != "mode_remove") {
        content_keys[name] = ev.str("content_key");
      }
    } else if (rec.ev == "pair_verdict") {
      const std::string ea = ev.str("a");
      const std::string eb = ev.str("b");
      known.insert(ea);
      known.insert(eb);
      const bool match = (ea == a && eb == b) || (ea == b && eb == a);
      if (match) {
        verdicts.push_back(
            {{ev.uint("session"), ev.uint("commit")}, &ev});
      }
    } else if (rec.ev == "clique") {
      CliqueRec c;
      c.index = ev.uint("clique");
      c.action = ev.str("action");
      c.members = member_names(ev);
      c.sdc_bytes = ev.uint("sdc_bytes");
      for (const std::string& m : c.members) known.insert(m);
      cliques[{ev.uint("session"), ev.uint("commit")}].push_back(std::move(c));
    }
  }

  for (std::string_view name : {a, b}) {
    if (!known.count(std::string(name))) {
      throw Error("mode \"" + std::string(name) +
                  "\" does not appear in this journal");
    }
  }

  std::ostringstream os;
  os << "explain " << a << " vs " << b << " (schema " << journal.schema
     << ")\n";
  for (std::string_view name : {a, b}) {
    auto it = content_keys.find(std::string(name));
    if (it != content_keys.end()) {
      os << "  " << name << ": content " << it->second << "\n";
    }
  }

  if (verdicts.empty()) {
    os << "\nno pair_verdict events for this pair: the pair was never "
          "re-checked in this journal\n"
          "(its verdict was carried over clean, or the modes never "
          "coexisted in a commit)\n";
    return os.str();
  }

  for (const VerdictRec& v : verdicts) {
    const JsonValue& ev = *v.ev;
    os << "\ncommit " << v.commit.second << " (session " << v.commit.first
       << "):\n";
    os << "  " << ev.str("a") << ": id " << ev.uint("a_id")
       << ", relationships "
       << (ev.boolean("a_rels_fresh") ? "recomputed" : "cache-carried")
       << "\n";
    os << "  " << ev.str("b") << ": id " << ev.uint("b_id")
       << ", relationships "
       << (ev.boolean("b_rels_fresh") ? "recomputed" : "cache-carried")
       << "\n";
    if (ev.boolean("mergeable")) {
      os << "  verdict: MERGEABLE\n";
    } else {
      os << "  verdict: NOT MERGEABLE\n";
      os << "    category: " << ev.str("category") << "\n";
      os << "    subject:  " << ev.str("subject") << "\n";
      os << "    reason:   " << ev.str("reason") << "\n";
    }
    // Corner provenance is only journaled by the corner-aware MCMM engine
    // at C > 1: corners_checked on every verdict, plus the conflicting
    // corner's identity when the per-corner scan early-exited.
    if (ev.find("corners_checked") != nullptr) {
      os << "  corners: " << ev.uint("corners_checked") << " checked";
      if (ev.find("corner") != nullptr) {
        os << "; conflict in corner " << ev.str("corner") << " (id "
           << ev.uint("corner_id") << ")";
      }
      os << "\n";
    }
    // Policy provenance is only journaled for non-exact policies; a
    // mergeable verdict with a window_field merged under a windowed
    // acceptance (bounded-pessimism), not exact agreement.
    if (const std::string policy = ev.str("policy"); !policy.empty()) {
      os << "  policy: " << policy;
      if (ev.find("window_field") != nullptr) {
        os << " (accepted " << ev.num("window_used") << " of "
           << ev.num("window_budget") << " " << ev.str("window_field")
           << " window)";
      }
      os << "\n";
    }
    auto it = cliques.find(v.commit);
    if (it != cliques.end()) {
      const std::string names[2] = {ev.str("a"), ev.str("b")};
      for (const std::string& name : names) {
        for (const CliqueRec& c : it->second) {
          if (std::find(c.members.begin(), c.members.end(), name) !=
              c.members.end()) {
            os << "  cover: " << name << " -> clique " << c.index << " "
               << join_members(c.members) << " (" << c.action << ")\n";
            break;
          }
        }
      }
    }
  }

  const JsonValue& last = *verdicts.back().ev;
  if (last.boolean("mergeable")) {
    os << "\nconclusion: " << a << " and " << b << " merge\n";
  } else {
    os << "\nconclusion: " << a << " and " << b
       << " do not merge: " << last.str("reason") << " [" << last.str("category")
       << " on " << last.str("subject") << "]";
    if (last.find("corner") != nullptr) {
      os << " (first conflicting corner: " << last.str("corner") << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::string render_timeline(const JournalData& journal) {
  std::ostringstream os;
  os << "timeline (schema " << journal.schema << ")\n";

  // Deltas accumulate per session until the session's next commit_begin.
  std::unordered_map<uint64_t, std::vector<std::string>> pending;
  // Per (session, commit) state gathered between commit_begin/commit_end.
  struct CommitState {
    std::vector<std::string> deltas;
    uint64_t bytes = 0;
  };
  std::map<CommitKey, CommitState> open;

  size_t commits = 0;
  for (const JournalRecord& rec : journal.events) {
    const JsonValue& ev = rec.json;
    const uint64_t session = ev.uint("session");
    if (rec.ev == "mode_add") {
      pending[session].push_back("+" + ev.str("name"));
    } else if (rec.ev == "mode_update") {
      pending[session].push_back("~" + ev.str("name"));
    } else if (rec.ev == "mode_remove") {
      pending[session].push_back("-" + ev.str("name"));
    } else if (rec.ev == "commit_begin") {
      CommitState st;
      st.deltas = std::move(pending[session]);
      pending[session].clear();
      open[{session, ev.uint("commit")}] = std::move(st);
    } else if (rec.ev == "clique") {
      auto it = open.find({session, ev.uint("commit")});
      if (it != open.end()) it->second.bytes += ev.uint("sdc_bytes");
    } else if (rec.ev == "commit_end") {
      const CommitKey key{session, ev.uint("commit")};
      CommitState st = std::move(open[key]);
      open.erase(key);
      ++commits;
      os << "\ncommit " << key.second << " (session " << key.first << ")\n";
      os << "  deltas:  ";
      if (st.deltas.empty()) {
        os << "(none)";
      } else {
        for (size_t i = 0; i < st.deltas.size(); ++i) {
          if (i) os << " ";
          os << st.deltas[i];
        }
      }
      os << "\n";
      os << "  modes:   " << ev.uint("modes") << "\n";
      os << "  pairs:   " << ev.uint("pairs_rechecked") << " rechecked, "
         << ev.uint("pairs_skipped_clean") << " carried over\n";
      os << "  cover:   " << ev.uint("cliques") << " cliques ("
         << ev.uint("cliques_merged") << " merged, "
         << ev.uint("cliques_reused") << " reused)\n";
      os << "  bytes:   " << st.bytes << " of merged SDC (re)written\n";
    }
  }
  if (commits == 0) os << "\n(no commits in this journal)\n";
  return os.str();
}

std::string profile_report(std::string_view trace_json, size_t top_k) {
  const JsonValue doc = parse_json(trace_json);
  const JsonValue* events = doc.is_array() ? &doc : doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw Error("trace file has no traceEvents array");
  }

  struct Span {
    std::string name;
    double ts = 0.0;
    double dur = 0.0;
  };
  std::map<uint64_t, std::vector<Span>> by_tid;
  for (const JsonValue& ev : events->arr) {
    if (!ev.is_object() || ev.str("ph") != "X") continue;
    by_tid[ev.uint("tid")].push_back(
        {ev.str("name"), ev.num("ts"), ev.num("dur")});
  }

  struct Agg {
    uint64_t calls = 0;
    double total_us = 0.0;
    double self_us = 0.0;
  };
  std::map<std::string, Agg> agg;
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.dur > b.dur;  // parents before children at equal ts
    });
    // Stack of open spans; a child's duration is subtracted from the
    // nearest enclosing span's self time.
    struct Open {
      double end = 0.0;
      double* self = nullptr;
    };
    std::vector<Open> stack;
    std::vector<double> selfs(spans.size());
    for (size_t i = 0; i < spans.size(); ++i) {
      const Span& s = spans[i];
      while (!stack.empty() && s.ts >= stack.back().end - 1e-9) {
        stack.pop_back();
      }
      selfs[i] = s.dur;
      if (!stack.empty()) *stack.back().self -= s.dur;
      stack.push_back({s.ts + s.dur, &selfs[i]});
    }
    for (size_t i = 0; i < spans.size(); ++i) {
      Agg& a = agg[spans[i].name];
      ++a.calls;
      a.total_us += spans[i].dur;
      a.self_us += std::max(0.0, selfs[i]);
    }
  }

  double total_self = 0.0;
  for (const auto& [name, a] : agg) total_self += a.self_us;

  std::vector<std::pair<std::string, Agg>> rows(agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    if (x.second.self_us != y.second.self_us) {
      return x.second.self_us > y.second.self_us;
    }
    return x.first < y.first;
  });
  if (rows.size() > top_k) rows.resize(top_k);

  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line, "%-36s %8s %12s %12s %7s\n", "phase",
                "calls", "total(s)", "self(s)", "self%");
  os << line;
  for (const auto& [name, a] : rows) {
    const double pct = total_self > 0 ? 100.0 * a.self_us / total_self : 0.0;
    std::snprintf(line, sizeof line, "%-36s %8llu %12s %12s %6.1f%%\n",
                  name.c_str(), static_cast<unsigned long long>(a.calls),
                  fmt_seconds(a.total_us).c_str(),
                  fmt_seconds(a.self_us).c_str(), pct);
    os << line;
  }
  if (rows.empty()) os << "(no complete spans in trace)\n";
  return os.str();
}

}  // namespace mm::obs
