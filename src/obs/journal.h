#pragma once
// mm::obs decision journal — a structured, low-overhead event log of *why*
// the merge engine decided what it decided, schema "mm.journal/1" (JSONL).
//
// The metrics registry answers "how many pairs were re-checked"; the
// journal answers "why did modes A and B land in different cliques". Every
// merge-relevant decision is appended as one JSON object per line:
//
//   header        schema marker, first line of every journal
//   mode_add /    session deltas, with the session-stable mode id and the
//   mode_update / mode's content key (the RelationshipCache hash of deck
//   mode_remove   text + netlist identity)
//   commit_begin  one per MergeSession::commit(); everything up to the
//   commit_end    matching commit_end is that commit's journal *segment*
//   pair_verdict  one per re-checked pair: mergeable or the first-conflict
//                 provenance (reason category, conflicting constraint
//                 subject, reason text, interned key id, whether each
//                 endpoint's relationship set was recomputed this commit)
//   clique        one per cover clique: member ids/names and whether the
//                 result was formed fresh, re-merged, or reused
//   refine        per-clique refinement actions (passes 0-3 false paths,
//                 clock refinement counters)
//   equivalence   per-clique two-sided validation outcome
//
// Writer design: events are serialized into per-thread buffers (each with
// its own uncontended mutex, exactly like obs/trace.cpp) and drained to the
// file at phase boundaries — MergeSession::commit() drains once at the end
// of the commit, Journal::close() drains the rest — so hot parallel loops
// never contend on the file or a global lock. Each event carries a
// process-wide "seq" (relaxed atomic) giving readers a total order.
//
// Disabled (the default) the whole layer costs one relaxed atomic load per
// emit site. Enable with Journal::open(path); tools wire it to
// --journal-out. Readers live in obs/journal_reader.h and tools/mmreport.

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"

namespace mm::obs {

inline constexpr const char* kJournalSchema = "mm.journal/1";

class Journal {
 public:
  /// True once open() succeeded and close() has not run. Emit sites guard
  /// event construction with this (relaxed atomic load).
  static bool enabled();

  /// Truncate `path`, write the header line, and enable journaling.
  /// Returns false (journal stays disabled) if the file cannot be opened.
  static bool open(const std::string& path);

  /// Drain every thread's buffer and disable + close the file. Safe to
  /// call when not open (no-op), so error paths can call unconditionally.
  static void close();

  /// Flush all buffered events to the file. Called at phase boundaries
  /// (end of MergeSession::commit()); no-op when disabled.
  static void drain();

  /// Append one already-serialized event line (no trailing newline) to the
  /// calling thread's buffer. Used by JournalEvent; exposed for tests.
  static void append_line(std::string line);

  /// Next process-wide event sequence number (monotonic, starts at 1).
  static uint64_t next_seq();

  /// Events appended so far (drained or buffered), for overhead tests.
  static uint64_t events_appended();
};

/// Builder for one event. Construct with the event name, add fields, and
/// the destructor appends the line to the thread buffer. Construct ONLY
/// under `if (Journal::enabled())` — the builder itself does not re-check.
///
///   if (obs::Journal::enabled()) {
///     obs::JournalEvent ev("pair_verdict");
///     ev.field("a", name_a).field("mergeable", false);
///   }
class JournalEvent {
 public:
  explicit JournalEvent(std::string_view ev) {
    w_.begin_object();
    w_.key("ev").value(ev);
    w_.key("seq").value(Journal::next_seq());
  }
  ~JournalEvent() {
    w_.end_object();
    Journal::append_line(w_.str());
  }
  JournalEvent(const JournalEvent&) = delete;
  JournalEvent& operator=(const JournalEvent&) = delete;

  JournalEvent& field(std::string_view k, std::string_view v) {
    w_.key(k).value(v);
    return *this;
  }
  JournalEvent& field(std::string_view k, const char* v) {
    w_.key(k).value(std::string_view(v));
    return *this;
  }
  JournalEvent& field(std::string_view k, bool v) {
    w_.key(k).value(v);
    return *this;
  }
  JournalEvent& field(std::string_view k, uint64_t v) {
    w_.key(k).value(v);
    return *this;
  }
  JournalEvent& field(std::string_view k, int64_t v) {
    w_.key(k).value(v);
    return *this;
  }
  JournalEvent& field(std::string_view k, uint32_t v) {
    w_.key(k).value(static_cast<uint64_t>(v));
    return *this;
  }
  JournalEvent& field(std::string_view k, int v) {
    w_.key(k).value(static_cast<int64_t>(v));
    return *this;
  }
  JournalEvent& field(std::string_view k, double v) {
    w_.key(k).value(v);
    return *this;
  }
  /// Array-of-strings / array-of-ids fields (clique member lists).
  template <typename Range>
  JournalEvent& string_array(std::string_view k, const Range& values) {
    w_.key(k).begin_array();
    for (const auto& v : values) w_.value(std::string_view(v));
    w_.end_array();
    return *this;
  }
  template <typename Range>
  JournalEvent& id_array(std::string_view k, const Range& values) {
    w_.key(k).begin_array();
    for (const auto& v : values) w_.value(static_cast<uint64_t>(v));
    w_.end_array();
    return *this;
  }

 private:
  JsonWriter w_;
};

}  // namespace mm::obs
