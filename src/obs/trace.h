#pragma once
// Phase-scoped tracing.
//
// TraceSpan is an RAII scope timer. Destruction ALWAYS feeds the phase's
// latency histogram ("phase/<name>") in the metrics registry — that is the
// always-on part the --profile table and --stats-out report read — and,
// when tracing is enabled, additionally appends a Chrome trace_event
// "complete" (ph:"X") event with begin timestamp, duration and thread id to
// a per-thread buffer. Trace::chrome_json() serializes all buffered events
// into JSON loadable by chrome://tracing and Perfetto.
//
// Tracing is off by default: a disabled span costs one steady_clock read at
// each end plus a couple of relaxed atomic adds.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mm::obs {

struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // begin, microseconds since process trace anchor
  double dur_us = 0.0;  // duration, microseconds
  uint32_t tid = 0;     // small sequential thread id (also Chrome tid)
};

class Trace {
 public:
  static bool enabled();
  static void set_enabled(bool on);
  /// Drop all buffered events (does not change enabled state).
  static void clear();
  /// Per-thread buffer cap: once a thread holds this many events, further
  /// spans on it are counted in obs/trace_events_dropped (with a one-shot
  /// warning) instead of growing the buffer without bound on long
  /// --trace-out sessions. clear() re-arms dropping and the warning.
  static size_t buffer_cap();
  static void set_buffer_cap(size_t cap);
  /// Events dropped by the cap since the last clear().
  static uint64_t events_dropped();
  /// Copy out all events recorded so far, sorted by (ts, tid).
  static std::vector<TraceEvent> collect();
  /// Chrome trace_event JSON ({"traceEvents":[...]}) of collect().
  static std::string chrome_json();
  /// Write chrome_json() to a file; throws mm::Error-free (returns false)
  /// on I/O failure so shutdown paths can report instead of aborting.
  static bool write_chrome_json(const std::string& path);
  /// Microseconds since the process-wide trace anchor (steady clock).
  static double now_us();
};

/// One instrumentation site: the phase name plus its pre-registered
/// metrics handles. Obtained once per site via phase_handle() and cached in
/// a function-local static by the MM_SPAN macros.
struct PhaseHandle {
  std::string name;
  Histogram latency;  // "phase/<name>" (microseconds)
  Gauge rss_peak;     // "phase/<name>/rss_peak_bytes"
  bool sample_rss = true;
};

/// Get-or-create the handle for `name`. `sample_rss=false` skips the
/// getrusage sample at span end — use for spans that fire thousands of
/// times (e.g. per-endpoint propagation).
PhaseHandle& phase_handle(const std::string& name, bool sample_rss = true);

class TraceSpan {
 public:
  explicit TraceSpan(PhaseHandle& handle);
  /// Dynamic-name convenience: resolves the handle through the registry
  /// mutex each time; use for coarse, low-frequency phases only.
  explicit TraceSpan(const std::string& name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  PhaseHandle* handle_;
  double start_us_;
};

}  // namespace mm::obs
