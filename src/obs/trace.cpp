#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json.h"
#include "obs/obs.h"
#include "obs/stats.h"
#include "util/logger.h"

namespace mm::obs {
namespace {

using Clock = std::chrono::steady_clock;

// Per-thread buffer cap (see Trace::set_buffer_cap). A span event is ~64
// bytes, so the default bounds each thread near 64 MiB on runaway sessions.
constexpr size_t kDefaultBufferCap = 1u << 20;
std::atomic<size_t> g_buffer_cap{kDefaultBufferCap};
std::atomic<uint64_t> g_dropped{0};
std::atomic<bool> g_drop_warned{false};

Clock::time_point anchor() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::atomic<bool> g_enabled{false};

// Per-thread event buffers. Each buffer carries its own mutex so the
// collector can safely read while the owning thread appends; appends only
// happen when tracing is enabled, so the uncontended lock is off the
// default path entirely. When a thread exits, its events are retired into
// the global list.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  uint32_t next_tid = 1;
};

Collector& collector() {
  static Collector* c = new Collector();  // never destroyed
  return *c;
}

struct ThreadBufferOwner {
  std::shared_ptr<ThreadBuffer> buf = std::make_shared<ThreadBuffer>();

  ThreadBufferOwner() {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    buf->tid = c.next_tid++;
    c.live.push_back(buf.get());
  }
  ~ThreadBufferOwner() {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.live.erase(std::remove(c.live.begin(), c.live.end(), buf.get()),
                 c.live.end());
    std::lock_guard<std::mutex> block(buf->mutex);
    c.retired.insert(c.retired.end(), buf->events.begin(), buf->events.end());
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBufferOwner owner;
  return *owner.buf;
}

void append_event(const std::string& name, double ts_us, double dur_us) {
  ThreadBuffer& b = thread_buffer();
  std::lock_guard<std::mutex> lock(b.mutex);
  if (b.events.size() >= g_buffer_cap.load(std::memory_order_relaxed)) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    MM_COUNT("obs/trace_events_dropped", 1);
    if (!g_drop_warned.exchange(true, std::memory_order_relaxed)) {
      MM_WARN(
          "trace buffer cap (%zu events/thread) reached; further trace "
          "events are dropped (phase histograms still record)",
          g_buffer_cap.load(std::memory_order_relaxed));
    }
    return;
  }
  b.events.push_back(TraceEvent{name, ts_us, dur_us, b.tid});
}

struct PhaseTable {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<PhaseHandle>> handles;
};

PhaseTable& phase_table() {
  static PhaseTable* t = new PhaseTable();  // never destroyed
  return *t;
}

}  // namespace

bool Trace::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Trace::set_enabled(bool on) {
  anchor();  // pin the time origin no later than enable time
  g_enabled.store(on, std::memory_order_relaxed);
}

void Trace::clear() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  for (ThreadBuffer* b : c.live) {
    std::lock_guard<std::mutex> block(b->mutex);
    b->events.clear();
  }
  c.retired.clear();
  g_dropped.store(0, std::memory_order_relaxed);
  g_drop_warned.store(false, std::memory_order_relaxed);
}

size_t Trace::buffer_cap() {
  return g_buffer_cap.load(std::memory_order_relaxed);
}

void Trace::set_buffer_cap(size_t cap) {
  g_buffer_cap.store(cap == 0 ? kDefaultBufferCap : cap,
                     std::memory_order_relaxed);
}

uint64_t Trace::events_dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> Trace::collect() {
  Collector& c = collector();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    out = c.retired;
    for (ThreadBuffer* b : c.live) {
      std::lock_guard<std::mutex> block(b->mutex);
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.dur_us > b.dur_us;  // parents before children at equal ts
  });
  return out;
}

std::string Trace::chrome_json() {
  const std::vector<TraceEvent> events = collect();
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  // Process metadata so the trace names itself in the UI.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("args").begin_object().key("name").value("modemerge").end_object();
  w.end_object();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("mm");
    w.key("ph").value("X");
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.key("pid").value(1);
    w.key("tid").value(static_cast<uint64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool Trace::write_chrome_json(const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << chrome_json() << '\n';
  return static_cast<bool>(file);
}

double Trace::now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - anchor())
      .count();
}

PhaseHandle& phase_handle(const std::string& name, bool sample_rss) {
  PhaseTable& t = phase_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  auto& slot = t.handles[name];
  if (!slot) {
    slot = std::make_unique<PhaseHandle>();
    slot->name = name;
    slot->latency = MetricsRegistry::global().histogram("phase/" + name);
    slot->rss_peak =
        MetricsRegistry::global().gauge("phase/" + name + "/rss_peak_bytes");
    slot->sample_rss = sample_rss;
  }
  return *slot;
}

TraceSpan::TraceSpan(PhaseHandle& handle)
    : handle_(&handle), start_us_(Trace::now_us()) {}

TraceSpan::TraceSpan(const std::string& name)
    : handle_(&phase_handle(name)), start_us_(Trace::now_us()) {}

TraceSpan::~TraceSpan() {
  const double end_us = Trace::now_us();
  const double dur_us = end_us - start_us_;
  handle_->latency.record_us(
      dur_us > 0 ? static_cast<uint64_t>(dur_us) : 0);
  if (handle_->sample_rss) handle_->rss_peak.set_max(peak_rss_bytes());
  if (Trace::enabled()) append_event(handle_->name, start_us_, dur_us);
}

}  // namespace mm::obs
