#pragma once
// mm::obs umbrella header + instrumentation macros.
//
// Usage at a pipeline phase boundary:
//
//   void levelize() {
//     MM_SPAN("timing/levelize");       // RAII: times the enclosing scope
//     ...
//   }
//
//   MM_COUNT("timing/tags", n);         // named counter += n
//   MM_GAUGE_SET("timing/graph/pins", pins);
//
// Each macro resolves its registry handle once per call site (function-
// local static), so the steady-state cost is a clock read + relaxed atomic
// adds. MM_SPAN_HOT skips the per-span RSS sample for sites that fire at
// per-endpoint frequency.

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"

#define MM_OBS_CONCAT2(a, b) a##b
#define MM_OBS_CONCAT(a, b) MM_OBS_CONCAT2(a, b)

#define MM_SPAN(name)                                       \
  static ::mm::obs::PhaseHandle& MM_OBS_CONCAT(mm_obs_ph_, __LINE__) = \
      ::mm::obs::phase_handle(name);                        \
  ::mm::obs::TraceSpan MM_OBS_CONCAT(mm_obs_span_, __LINE__)(          \
      MM_OBS_CONCAT(mm_obs_ph_, __LINE__))

#define MM_SPAN_HOT(name)                                   \
  static ::mm::obs::PhaseHandle& MM_OBS_CONCAT(mm_obs_ph_, __LINE__) = \
      ::mm::obs::phase_handle(name, /*sample_rss=*/false);  \
  ::mm::obs::TraceSpan MM_OBS_CONCAT(mm_obs_span_, __LINE__)(          \
      MM_OBS_CONCAT(mm_obs_ph_, __LINE__))

#define MM_COUNT(name, n)                                             \
  do {                                                                \
    static ::mm::obs::Counter MM_OBS_CONCAT(mm_obs_c_, __LINE__) =    \
        ::mm::obs::MetricsRegistry::global().counter(name);           \
    MM_OBS_CONCAT(mm_obs_c_, __LINE__).add(static_cast<uint64_t>(n)); \
  } while (0)

#define MM_GAUGE_SET(name, v)                                        \
  do {                                                               \
    static ::mm::obs::Gauge MM_OBS_CONCAT(mm_obs_g_, __LINE__) =     \
        ::mm::obs::MetricsRegistry::global().gauge(name);            \
    MM_OBS_CONCAT(mm_obs_g_, __LINE__).set(static_cast<int64_t>(v)); \
  } while (0)

#define MM_GAUGE_MAX(name, v)                                            \
  do {                                                                   \
    static ::mm::obs::Gauge MM_OBS_CONCAT(mm_obs_g_, __LINE__) =         \
        ::mm::obs::MetricsRegistry::global().gauge(name);                \
    MM_OBS_CONCAT(mm_obs_g_, __LINE__).set_max(static_cast<int64_t>(v)); \
  } while (0)
