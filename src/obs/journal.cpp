#include "obs/journal.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace mm::obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_seq{0};
std::atomic<uint64_t> g_appended{0};

// Per-thread line buffers, mirroring the obs/trace.cpp collector: each
// buffer has its own mutex so drain() can read while the owning thread
// appends; the append lock is uncontended on the hot path. Lines from
// exited threads are retired into the collector.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<std::string> lines;
};

struct Collector {
  std::mutex mutex;  // guards live/retired AND the sink file
  std::vector<ThreadBuffer*> live;
  std::vector<std::string> retired;
  std::unique_ptr<std::ofstream> sink;
};

Collector& collector() {
  static Collector* c = new Collector();  // never destroyed
  return *c;
}

struct ThreadBufferOwner {
  std::shared_ptr<ThreadBuffer> buf = std::make_shared<ThreadBuffer>();

  ThreadBufferOwner() {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.live.push_back(buf.get());
  }
  ~ThreadBufferOwner() {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.live.erase(std::remove(c.live.begin(), c.live.end(), buf.get()),
                 c.live.end());
    std::lock_guard<std::mutex> block(buf->mutex);
    for (std::string& line : buf->lines) c.retired.push_back(std::move(line));
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBufferOwner owner;
  return *owner.buf;
}

/// Write out everything buffered. Caller holds c.mutex.
void drain_locked(Collector& c) {
  if (!c.sink) {
    c.retired.clear();
    for (ThreadBuffer* b : c.live) {
      std::lock_guard<std::mutex> block(b->mutex);
      b->lines.clear();
    }
    return;
  }
  for (std::string& line : c.retired) *c.sink << line << '\n';
  c.retired.clear();
  for (ThreadBuffer* b : c.live) {
    std::lock_guard<std::mutex> block(b->mutex);
    for (const std::string& line : b->lines) *c.sink << line << '\n';
    b->lines.clear();
  }
  c.sink->flush();
}

}  // namespace

bool Journal::enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool Journal::open(const std::string& path) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  auto sink = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*sink) return false;
  // Discard events buffered while disabled or aimed at a previous file.
  c.retired.clear();
  for (ThreadBuffer* b : c.live) {
    std::lock_guard<std::mutex> block(b->mutex);
    b->lines.clear();
  }
  c.sink = std::move(sink);
  JsonWriter w;
  w.begin_object();
  w.key("ev").value("header");
  w.key("schema").value(kJournalSchema);
  w.end_object();
  *c.sink << w.str() << '\n';
  c.sink->flush();
  g_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void Journal::close() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  g_enabled.store(false, std::memory_order_relaxed);
  drain_locked(c);
  c.sink.reset();
}

void Journal::drain() {
  if (!enabled()) return;
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  drain_locked(c);
}

void Journal::append_line(std::string line) {
  ThreadBuffer& b = thread_buffer();
  std::lock_guard<std::mutex> lock(b.mutex);
  b.lines.push_back(std::move(line));
  g_appended.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Journal::next_seq() {
  return g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t Journal::events_appended() {
  return g_appended.load(std::memory_order_relaxed);
}

}  // namespace mm::obs
