#include "obs/stats.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/trace.h"
#include "util/logger.h"

namespace mm::obs {
namespace {

constexpr const char* kPhasePrefix = "phase/";
constexpr const char* kRssSuffix = "/rss_peak_bytes";

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool has_suffix(const std::string& s, const char* suffix) {
  const size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int64_t peak_rss_bytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<int64_t>(ru.ru_maxrss) * 1024;
}

std::string stats_json(const StatsMeta& meta) {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();

  // Phase RSS gauges, for joining into the phase digest.
  std::map<std::string, int64_t> phase_rss;
  for (const auto& [name, value] : snap.gauges) {
    if (has_prefix(name, kPhasePrefix) && has_suffix(name, kRssSuffix)) {
      const std::string phase = name.substr(
          std::string(kPhasePrefix).size(),
          name.size() - std::string(kPhasePrefix).size() -
              std::string(kRssSuffix).size());
      phase_rss[phase] = value;
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("mm.stats/1");

  w.key("meta").begin_object();
  for (const auto& [k, v] : meta.strings) w.key(k).value(v);
  for (const auto& [k, v] : meta.numbers) w.key(k).value(v);
  w.end_object();

  w.key("process").begin_object();
  w.key("peak_rss_bytes").value(peak_rss_bytes());
  w.key("elapsed_seconds").value(Trace::now_us() * 1e-6);
  w.end_object();

  w.key("log").begin_object();
  w.key("warnings").value(mm::Logger::warn_count());
  w.key("errors").value(mm::Logger::error_count());
  w.end_object();

  w.key("phases").begin_object();
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!has_prefix(h.name, kPhasePrefix)) continue;
    const std::string phase = h.name.substr(std::string(kPhasePrefix).size());
    w.key(phase).begin_object();
    w.key("calls").value(h.count);
    w.key("total_seconds").value(h.total_seconds());
    w.key("min_seconds").value(static_cast<double>(h.min_us) * 1e-6);
    w.key("max_seconds").value(static_cast<double>(h.max_us) * 1e-6);
    // Tail latency from the log2-us buckets (factor-of-2 resolution).
    w.key("p50_seconds")
        .value(static_cast<double>(h.percentile_us(0.50)) * 1e-6);
    w.key("p95_seconds")
        .value(static_cast<double>(h.percentile_us(0.95)) * 1e-6);
    w.key("p99_seconds")
        .value(static_cast<double>(h.percentile_us(0.99)) * 1e-6);
    // Hot spans (MM_SPAN_HOT) never sample RSS; omit the field rather
    // than report a bogus 0-byte peak.
    auto it = phase_rss.find(phase);
    if (it != phase_rss.end() && it->second > 0)
      w.key("rss_peak_bytes").value(it->second);
    w.end_object();
  }
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) w.key(name).value(value);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges) w.key(name).value(value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const HistogramSnapshot& h : snap.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    w.key("sum_us").value(h.sum_us);
    w.key("min_us").value(h.min_us);
    w.key("max_us").value(h.max_us);
    w.key("buckets").begin_array();
    // Trim trailing zero buckets to keep the document compact.
    size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (size_t i = 0; i < last; ++i) w.value(h.buckets[i]);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

bool write_stats_json(const std::string& path, const StatsMeta& meta) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << stats_json(meta) << '\n';
  return static_cast<bool>(file);
}

std::string profile_table() {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  struct Row {
    std::string name;
    uint64_t calls;
    double seconds;
    double p50;
    double p95;
    double p99;
  };
  std::vector<Row> rows;
  double max_seconds = 0.0;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!has_prefix(h.name, kPhasePrefix) || h.count == 0) continue;
    Row r{h.name.substr(std::string(kPhasePrefix).size()),
          h.count,
          h.total_seconds(),
          static_cast<double>(h.percentile_us(0.50)) * 1e-6,
          static_cast<double>(h.percentile_us(0.95)) * 1e-6,
          static_cast<double>(h.percentile_us(0.99)) * 1e-6};
    max_seconds = std::max(max_seconds, r.seconds);
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.seconds > b.seconds; });

  std::ostringstream os;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-36s %10s %12s %9s %9s %9s  %s\n", "phase",
                "calls", "total(s)", "p50(s)", "p95(s)", "p99(s)", "share");
  os << buf;
  os << std::string(102, '-') << '\n';
  for (const Row& r : rows) {
    const double share = max_seconds > 0 ? r.seconds / max_seconds : 0.0;
    const int bars = static_cast<int>(share * 20 + 0.5);
    std::snprintf(buf, sizeof(buf),
                  "%-36s %10llu %12.4f %9.4f %9.4f %9.4f  %.*s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.calls),
                  r.seconds, r.p50, r.p95, r.p99, bars,
                  "####################");
    os << buf;
  }
  return os.str();
}

}  // namespace mm::obs
