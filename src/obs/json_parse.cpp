#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace mm::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    size_t n = std::min<size_t>(24, text_.size() - std::min(pos_, text_.size()));
    std::string excerpt(text_.substr(std::min(pos_, text_.size()), n));
    for (char& c : excerpt) {
      if (c == '\n' || c == '\r' || c == '\t') c = ' ';
    }
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what + " near \"" + excerpt + "\"");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (++depth_ > 64) fail("nesting too deep");
    JsonValue v;
    char c = peek();
    switch (c) {
      case '{':
        v = parse_object();
        break;
      case '[':
        v = parse_array();
        break;
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.str_v = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_v = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_v = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        v.kind = JsonValue::Kind::kNull;
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          v.kind = JsonValue::Kind::kNumber;
          v.num_v = parse_number();
        } else {
          fail("unexpected character");
        }
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Validate 4 hex digits; keep the escape verbatim (mm emitters
          // only write ASCII, so decoding is never needed to round-trip).
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              fail("invalid \\u escape");
            }
          }
          out.append("\\u");
          out.append(text_.substr(pos_, 4));
          pos_ += 4;
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  double parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size()) fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    } else {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    std::string num(text_.substr(start, pos_ - start));
    return std::strtod(num.c_str(), nullptr);
  }
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mm::obs
