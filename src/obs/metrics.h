#pragma once
// mm::obs metrics registry — named counters, gauges, and fixed-bucket
// latency histograms with a lock-free fast path.
//
// Updates go through per-thread shards (relaxed atomics on cache-line-
// padded cells indexed by a per-thread slot), so concurrent increments from
// ThreadPool::parallel_for never contend on a lock and rarely contend on a
// cache line. The registry mutex is taken only on first registration of a
// name and on snapshot().
//
// Handles (Counter / Gauge / Histogram) are cheap POD-like wrappers around
// the registered implementation; instrumentation sites cache them in
// function-local statics (see obs.h macros) so the name lookup happens once
// per site per process.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mm::obs {

/// Number of update shards for counters; power of two.
inline constexpr size_t kNumShards = 64;
/// Histograms carry a full bucket array per shard, so they use fewer.
inline constexpr size_t kNumHistShards = 16;
/// log2-microsecond latency buckets: bucket 0 is <1us, bucket i covers
/// [2^(i-1), 2^i) us, the last bucket is the overflow (>= ~1.1 minutes).
inline constexpr size_t kNumHistBuckets = 28;

/// Stable per-thread slot, assigned on first use.
inline size_t thread_slot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

namespace detail {

struct alignas(64) Cell {
  std::atomic<uint64_t> v{0};
};

class CounterImpl {
 public:
  void add(uint64_t n) {
    cells_[thread_slot() % kNumShards].v.fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<Cell, kNumShards> cells_{};
};

class GaugeImpl {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void set_max(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class HistogramImpl {
 public:
  HistogramImpl() { reset_minmax(); }

  static size_t bucket_of(uint64_t us) {
    size_t b = 0;
    while (us > 0 && b + 1 < kNumHistBuckets) {
      us >>= 1;
      ++b;
    }
    return b;
  }

  void record_us(uint64_t us) {
    Shard& s = shards_[thread_slot() % kNumHistShards];
    s.buckets[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum_us.fetch_add(us, std::memory_order_relaxed);
    // min/max: registry-global CAS loops; cold relative to the adds above.
    uint64_t mn = min_us_.load(std::memory_order_relaxed);
    while (us < mn &&
           !min_us_.compare_exchange_weak(mn, us, std::memory_order_relaxed)) {
    }
    uint64_t mx = max_us_.load(std::memory_order_relaxed);
    while (us > mx &&
           !max_us_.compare_exchange_weak(mx, us, std::memory_order_relaxed)) {
    }
  }
  void record_seconds(double s) {
    if (s < 0) s = 0;
    record_us(static_cast<uint64_t>(s * 1e6));
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const Shard& s : shards_)
      total += s.count.load(std::memory_order_relaxed);
    return total;
  }
  uint64_t sum_us() const {
    uint64_t total = 0;
    for (const Shard& s : shards_)
      total += s.sum_us.load(std::memory_order_relaxed);
    return total;
  }
  uint64_t min_us() const {
    const uint64_t v = min_us_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
  }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }
  std::array<uint64_t, kNumHistBuckets> buckets() const {
    std::array<uint64_t, kNumHistBuckets> out{};
    for (const Shard& s : shards_) {
      for (size_t i = 0; i < kNumHistBuckets; ++i)
        out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() {
    for (Shard& s : shards_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
      s.sum_us.store(0, std::memory_order_relaxed);
    }
    reset_minmax();
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumHistBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_us{0};
  };

  void reset_minmax() {
    min_us_.store(UINT64_MAX, std::memory_order_relaxed);
    max_us_.store(0, std::memory_order_relaxed);
  }

  std::array<Shard, kNumHistShards> shards_{};
  std::atomic<uint64_t> min_us_{UINT64_MAX};
  std::atomic<uint64_t> max_us_{0};
};

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  explicit Counter(detail::CounterImpl* impl) : impl_(impl) {}
  void add(uint64_t n = 1) {
    if (impl_) impl_->add(n);
  }
  uint64_t value() const { return impl_ ? impl_->value() : 0; }

 private:
  detail::CounterImpl* impl_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(detail::GaugeImpl* impl) : impl_(impl) {}
  void set(int64_t v) {
    if (impl_) impl_->set(v);
  }
  void set_max(int64_t v) {
    if (impl_) impl_->set_max(v);
  }
  int64_t value() const { return impl_ ? impl_->value() : 0; }

 private:
  detail::GaugeImpl* impl_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(detail::HistogramImpl* impl) : impl_(impl) {}
  void record_us(uint64_t us) {
    if (impl_) impl_->record_us(us);
  }
  void record_seconds(double s) {
    if (impl_) impl_->record_seconds(s);
  }
  uint64_t count() const { return impl_ ? impl_->count() : 0; }
  uint64_t sum_us() const { return impl_ ? impl_->sum_us() : 0; }

 private:
  detail::HistogramImpl* impl_ = nullptr;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t min_us = 0;
  uint64_t max_us = 0;
  std::array<uint64_t, kNumHistBuckets> buckets{};

  double total_seconds() const { return static_cast<double>(sum_us) * 1e-6; }

  /// Quantile estimate (q in [0,1]) from the log2-us buckets: find the
  /// bucket holding the q-th sample and interpolate linearly inside its
  /// [2^(b-1), 2^b) range. Resolution is the bucket width (a factor of 2),
  /// clamped to the recorded min/max so p50 of a single value is exact.
  uint64_t percentile_us(double q) const {
    if (count == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // Rank of the target sample, 1-based; q=1 maps to the last sample.
    const uint64_t rank =
        std::max<uint64_t>(1, static_cast<uint64_t>(q * count + 0.5));
    uint64_t seen = 0;
    for (size_t b = 0; b < kNumHistBuckets; ++b) {
      if (buckets[b] == 0) continue;
      if (seen + buckets[b] < rank) {
        seen += buckets[b];
        continue;
      }
      const uint64_t lo = b == 0 ? 0 : uint64_t{1} << (b - 1);
      const uint64_t hi = uint64_t{1} << b;
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(buckets[b]);
      uint64_t v = lo + static_cast<uint64_t>(frac * (hi - lo));
      if (v < min_us) v = min_us;
      if (max_us > 0 && v > max_us) v = max_us;
      return v;
    }
    return max_us;
  }
};

/// Point-in-time aggregate of every registered metric, each section sorted
/// by name (std::map iteration order) so serialization is deterministic.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  /// Process-wide registry used by all instrumentation macros.
  static MetricsRegistry& global();

  /// Get-or-create by name. Returned handles stay valid for the registry's
  /// lifetime; reset() zeroes values but never invalidates handles.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zero every value, keeping all registrations (tests / benches).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<detail::CounterImpl>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeImpl>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramImpl>> histograms_;
};

}  // namespace mm::obs
