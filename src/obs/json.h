#pragma once
// Minimal streaming JSON writer used by the stats / trace / bench
// serializers. No external dependencies; emits compact, valid JSON with
// correct string escaping and finite-number handling (NaN/Inf -> null,
// which keeps the output loadable by strict parsers).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mm::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    os_ << '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    first_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    os_ << '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    first_.pop_back();
    os_ << ']';
    return *this;
  }

  /// Object key; must be followed by exactly one value / container.
  JsonWriter& key(std::string_view k) {
    comma();
    write_string(k);
    os_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      os_ << "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      os_ << buf;
    }
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }

  /// Embed an already-serialized JSON value (e.g. a stats_json() document).
  JsonWriter& raw(std::string_view json) {
    comma();
    os_ << json;
    return *this;
  }

  std::string str() const { return os_.str(); }

 private:
  void comma() {
    if (pending_value_) {
      // Value immediately after a key: no comma.
      pending_value_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\b': os_ << "\\b"; break;
        case '\f': os_ << "\\f"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostringstream os_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace mm::obs
