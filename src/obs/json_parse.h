#pragma once
// Minimal strict JSON parser — the read-side counterpart of obs/json.h.
// Used by the journal reader (mm.journal/1 JSONL) and the mmreport profile
// command (Chrome trace_event files). No external dependencies.
//
// Accepts exactly the JSON grammar (RFC 8259) minus surrogate-pair
// decoding: \uXXXX escapes are validated and copied through verbatim as
// "\uXXXX" text, which round-trips fine for the ASCII-only documents the
// mm serializers emit. Numbers parse as double. Object key order is
// preserved. Errors throw mm::Error with a byte offset and a short
// excerpt, so malformed-journal failures are diagnosable.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.h"

namespace mm::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // insertion order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Typed accessors with defaults (journal fields are all optional to a
  /// reader — missing means "emitter predates the field").
  std::string str(std::string_view key, std::string def = "") const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kString ? v->str_v : std::move(def);
  }
  double num(std::string_view key, double def = 0.0) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kNumber ? v->num_v : def;
  }
  uint64_t uint(std::string_view key, uint64_t def = 0) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kNumber ? static_cast<uint64_t>(v->num_v)
                                         : def;
  }
  bool boolean(std::string_view key, bool def = false) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kBool ? v->bool_v : def;
  }
};

/// Parse one complete JSON document. Throws mm::Error on any syntax error
/// or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace mm::obs
