#include "obs/metrics.h"

namespace mm::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<detail::CounterImpl>();
  return Counter(slot.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<detail::GaugeImpl>();
  return Gauge(slot.get());
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<detail::HistogramImpl>();
  return Histogram(slot.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, impl] : counters_) {
    out.counters.emplace_back(name, impl->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, impl] : gauges_) {
    out.gauges.emplace_back(name, impl->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, impl] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = impl->count();
    h.sum_us = impl->sum_us();
    h.min_us = impl->min_us();
    h.max_us = impl->max_us();
    h.buckets = impl->buckets();
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, impl] : counters_) impl->reset();
  for (auto& [name, impl] : gauges_) impl->reset();
  for (auto& [name, impl] : histograms_) impl->reset();
}

}  // namespace mm::obs
