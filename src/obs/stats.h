#pragma once
// Stats snapshot -> JSON serializer and process measurements.
//
// stats_json() renders the whole metrics registry (plus logger warning /
// error totals and process peak RSS) as one machine-readable document,
// schema "mm.stats/1":
//
//   {
//     "schema": "mm.stats/1",
//     "meta":     { ...caller-provided run metadata... },
//     "process":  { "peak_rss_bytes": N, "elapsed_seconds": S },
//     "log":      { "warnings": N, "errors": N },
//     "phases":   { "<name>": { "calls", "total_seconds", "min_seconds",
//                               "max_seconds", "rss_peak_bytes" }, ... },
//     "counters": { "<name>": N, ... },
//     "gauges":   { "<name>": N, ... },
//     "histograms": { "<name>": { "count", "sum_us", "min_us", "max_us",
//                                 "buckets": [ ... ] }, ... }
//   }
//
// "phases" is the digest of every "phase/..." histogram recorded by
// TraceSpan; all sections are sorted by name, so two snapshots of the same
// state serialize byte-identically.

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace mm::obs {

/// Process peak resident set size in bytes (getrusage; 0 if unavailable).
int64_t peak_rss_bytes();

/// Caller-provided run metadata merged into the "meta" object.
struct StatsMeta {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
};

/// Serialize the global registry (deterministic for a fixed state).
std::string stats_json(const StatsMeta& meta = {});

/// Write stats_json() to `path`; returns false on I/O failure.
bool write_stats_json(const std::string& path, const StatsMeta& meta = {});

/// Human-readable per-phase table (for --profile): name, calls, total
/// seconds, share of the slowest phase.
std::string profile_table();

}  // namespace mm::obs
