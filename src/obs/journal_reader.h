#pragma once
// Read side of the mm.journal/1 decision journal, shared by tools/mmreport
// and tests/test_journal.cpp:
//
//   read_journal     parse a JSONL journal file (schema-checked)
//   explain_pair     the "why don't these two modes merge" chain — every
//                    commit's re-check verdict with first-conflict
//                    provenance (including the first conflicting corner on
//                    MCMM journals, which carry corner fields at C > 1)
//                    and where the cover placed each mode
//   render_timeline  per-commit session history: deltas -> pairs rechecked
//                    -> cliques dirtied -> bytes changed
//   profile_report   top-k self-time table aggregated from a Chrome
//                    trace_event file (--trace-out output)
//
// All renderers are deterministic functions of the journal/trace contents
// and never print event seq numbers or interned key ids (the two fields
// whose values depend on thread scheduling), so their output is
// byte-identical across --threads values of the producing run.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_parse.h"

namespace mm::obs {

/// One parsed journal line.
struct JournalRecord {
  std::string ev;  // event type ("mode_add", "pair_verdict", ...)
  JsonValue json;  // full event object
};

/// A parsed journal file, in file order.
struct JournalData {
  std::string schema;
  std::vector<JournalRecord> events;
};

/// Parse a mm.journal/1 file. Throws mm::Error when the file is missing,
/// a line is not valid JSON, a line lacks the "ev" field, or the first
/// line is not a header with the expected schema.
JournalData read_journal(const std::string& path);

/// Render the merge-decision chain for the mode pair named `a` / `b`.
/// Throws mm::Error when either name never appears in the journal.
std::string explain_pair(const JournalData& journal, std::string_view a,
                         std::string_view b);

/// Render the per-commit session history.
std::string render_timeline(const JournalData& journal);

/// Aggregate a Chrome trace_event JSON document (the --trace-out format)
/// into a top-`top_k` self-time table. Self time is a span's duration minus
/// its same-thread nested spans. Throws mm::Error on malformed input.
std::string profile_report(std::string_view trace_json, size_t top_k = 20);

}  // namespace mm::obs
