#pragma once
// Liberty (.lib) library reader — the subset timing tools need:
//
//   library (name) {
//     cell (AND2) {
//       pin (A) { direction : input; capacitance : 1.2; }
//       pin (Z) {
//         direction : output;
//         function : "A * B";
//         timing () {
//           related_pin : "A";
//           timing_sense : positive_unate;
//           cell_rise (tmpl) { values ("0.12, 0.18", "0.20, 0.31"); }
//         }
//       }
//     }
//     cell (DFF) {
//       ff (IQ, IQN) { clocked_on : "CP"; next_state : "D"; }
//       pin (CP) { direction : input; clock : true; }
//       pin (D)  { direction : input;
//         timing () { related_pin : "CP"; timing_type : setup_rising; ... } }
//       pin (Q)  { direction : output; function : "IQ";
//         timing () { related_pin : "CP"; timing_type : rising_edge; ... } }
//     }
//   }
//
// Interpretation notes (documented simplifications):
//  - Delay tables collapse to a scalar: the mean of the table values becomes
//    the arc's intrinsic delay; the load slope uses a fixed default.
//  - ff/latch groups mark the cell sequential; next_state / clocked_on give
//    the D/CP roles; output pins whose function references the ff state
//    variable become launch-arc targets.
//  - Unsupported attributes/groups are skipped structurally (balanced
//    braces), so real .lib files parse without modification.

#include <string_view>

#include "netlist/libcell.h"

namespace mm::netlist {

/// Parse a Liberty library. Throws mm::Error with line info on malformed
/// syntax; unknown constructs are skipped.
Library read_liberty(std::string_view text);

}  // namespace mm::netlist
