#pragma once
// Flat gate-level netlist: ports, instances, nets and pins with id-based
// storage. Pins unify top-level ports and instance pins so the timing graph
// can treat them uniformly. Names follow EDA convention: instance pin
// "rA/Q", port pin "clk1".

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/libcell.h"
#include "util/error.h"
#include "util/id.h"
#include "util/intern.h"

namespace mm::netlist {

using PortId = Id<struct PortTag>;
using InstId = Id<struct InstTag>;
using NetId = Id<struct NetTag>;
using PinId = Id<struct PinTag>;

struct Port {
  Symbol name;
  PinDir dir = PinDir::kInput;  // direction seen from outside the design
  PinId pin;                    // the port's pin in the unified pin space
};

struct Instance {
  Symbol name;
  LibCellId cell;
  std::vector<PinId> pins;  // indexed by LibCell pin index
};

struct Net {
  Symbol name;
  PinId driver;              // single driver (invalid if undriven)
  std::vector<PinId> loads;  // fanout pins
};

struct Pin {
  Symbol full_name;  // "inst/PIN" or port name
  // Exactly one of port / inst is valid.
  PortId port;
  InstId inst;
  uint32_t lib_pin = UINT32_MAX;  // LibCell pin index when inst is valid
  NetId net;

  bool is_port() const { return port.valid(); }
};

/// A flat design over one Library. The Library must outlive the Design.
class Design {
 public:
  Design(std::string name, const Library* lib) : name_(std::move(name)), lib_(lib) {
    MM_ASSERT(lib != nullptr);
  }

  const std::string& name() const { return name_; }
  const Library& library() const { return *lib_; }

  // --- construction -------------------------------------------------------

  PortId add_port(std::string_view name, PinDir dir);
  InstId add_instance(std::string_view name, LibCellId cell);
  NetId add_net(std::string_view name);

  /// Connect instance pin (by library pin name) to a net.
  void connect(InstId inst, std::string_view pin_name, NetId net);
  /// Connect a top-level port to a net.
  void connect(PortId port, NetId net);

  // --- access -------------------------------------------------------------

  size_t num_ports() const { return ports_.size(); }
  size_t num_instances() const { return insts_.size(); }
  size_t num_nets() const { return nets_.size(); }
  size_t num_pins() const { return pins_.size(); }

  const Port& port(PortId id) const { return ports_[checked(id, ports_)]; }
  const Instance& instance(InstId id) const { return insts_[checked(id, insts_)]; }
  const Net& net(NetId id) const { return nets_[checked(id, nets_)]; }
  const Pin& pin(PinId id) const { return pins_[checked(id, pins_)]; }

  const LibCell& cell_of(InstId id) const { return lib_->cell(instance(id).cell); }
  const LibCell& cell_of_pin(PinId id) const {
    const Pin& p = pin(id);
    MM_ASSERT(!p.is_port());
    return lib_->cell(instance(p.inst).cell);
  }
  const LibPin& lib_pin_of(PinId id) const {
    const Pin& p = pin(id);
    return cell_of_pin(id).pins()[p.lib_pin];
  }

  /// Direction of a pin as seen by the timing graph: an input *port* is a
  /// signal source (acts as an output-like driver), an instance input pin
  /// is a sink. `driver` == true means this pin drives its net.
  bool pin_drives_net(PinId id) const {
    const Pin& p = pin(id);
    if (p.is_port()) return ports_[p.port.index()].dir == PinDir::kInput;
    return lib_pin_of(id).dir == PinDir::kOutput;
  }

  std::string_view pin_name(PinId id) const { return names_.str(pin(id).full_name); }
  std::string_view port_name(PortId id) const { return names_.str(port(id).name); }
  std::string_view inst_name(InstId id) const { return names_.str(instance(id).name); }
  std::string_view net_name(NetId id) const { return names_.str(net(id).name); }

  // --- lookup -------------------------------------------------------------

  PortId find_port(std::string_view name) const;
  InstId find_instance(std::string_view name) const;
  NetId find_net(std::string_view name) const;
  /// Find pin by full name ("rA/Q" or port name "clk1").
  PinId find_pin(std::string_view full_name) const;

  StringPool& names() { return names_; }
  const StringPool& names() const { return names_; }

  /// All pins / ports / instances, for iteration by id.
  const std::vector<Pin>& pins() const { return pins_; }
  const std::vector<Port>& ports() const { return ports_; }
  const std::vector<Instance>& instances() const { return insts_; }
  const std::vector<Net>& nets() const { return nets_; }

 private:
  template <class IdT, class Vec>
  static size_t checked(IdT id, const Vec& v) {
    MM_ASSERT(id.index() < v.size());
    return id.index();
  }

  PinId make_pin(Symbol full_name, PortId port, InstId inst, uint32_t lib_pin);

  std::string name_;
  const Library* lib_;
  StringPool names_;

  std::vector<Port> ports_;
  std::vector<Instance> insts_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;

  std::unordered_map<Symbol, PortId> port_by_name_;
  std::unordered_map<Symbol, InstId> inst_by_name_;
  std::unordered_map<Symbol, NetId> net_by_name_;
  std::unordered_map<Symbol, PinId> pin_by_name_;
};

/// Structural sanity report (see check_design).
struct CheckReport {
  std::vector<std::string> errors;    // multiple drivers, direction misuse
  std::vector<std::string> warnings;  // floating inputs, undriven nets
  bool ok() const { return errors.empty(); }
};

/// Verify single-driver nets, no floating instance inputs, port direction
/// consistency. Returns a report rather than throwing so tools can print
/// everything at once.
CheckReport check_design(const Design& design);

}  // namespace mm::netlist
