#include "netlist/verilog.h"

#include <cctype>
#include <sstream>
#include <unordered_set>

#include "obs/obs.h"
#include "util/error.h"

namespace mm::netlist {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("verilog:" + std::to_string(current_.line) + ": " + msg);
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= text_.size()) return;

    const char c = text_[pos_];
    if (c == '\\') {
      // Escaped identifier: backslash to next whitespace.
      ++pos_;
      current_.kind = Token::Kind::kIdent;
      while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        current_.text.push_back(text_[pos_++]);
      }
      if (current_.text.empty()) {
        throw Error("verilog:" + std::to_string(line_) + ": empty escaped identifier");
      }
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      current_.kind = Token::Kind::kIdent;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' || d == '$') {
          current_.text.push_back(d);
          ++pos_;
        } else {
          break;
        }
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Numbers only appear in unsupported constructs (ranges, constants).
      current_.kind = Token::Kind::kIdent;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '\'')) {
        current_.text.push_back(text_[pos_++]);
      }
      return;
    }
    current_.kind = Token::Kind::kPunct;
    current_.text.push_back(c);
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view text, const Library& lib) : lex_(text), lib_(lib) {}

  Design run() {
    expect_ident("module");
    const std::string name = expect_any_ident("module name");
    Design design(name, &lib_);

    // Header port list: (a, b, ...) — names collected; directions come from
    // the declarations (ANSI "input a" inside the list also accepted).
    std::vector<std::string> header_ports;
    expect_punct("(");
    bool ansi = false;
    while (!is_punct(")")) {
      if (is_ident("input") || is_ident("output")) {
        ansi = true;
        const bool is_input = lex_.take().text == "input";
        while (true) {
          const std::string port = expect_any_ident("port name");
          declare_port(design, port, is_input);
          if (!eat_punct(",")) break;
          // A direction keyword after the comma starts the next group.
          if (is_ident("input") || is_ident("output")) break;
        }
        continue;
      }
      header_ports.push_back(expect_any_ident("port name"));
      if (!eat_punct(",")) break;
    }
    expect_punct(")");
    expect_punct(";");

    // Body.
    while (!is_ident("endmodule")) {
      if (is_ident("input") || is_ident("output")) {
        const bool is_input = lex_.take().text == "input";
        check_no_range();
        do {
          const std::string port = expect_any_ident("port name");
          declare_port(design, port, is_input);
        } while (eat_punct(","));
        expect_punct(";");
      } else if (is_ident("wire")) {
        lex_.take();
        check_no_range();
        do {
          const std::string wire = expect_any_ident("wire name");
          if (!design.find_net(wire).valid()) design.add_net(wire);
        } while (eat_punct(","));
        expect_punct(";");
      } else if (is_ident("assign")) {
        lex_.fail("assign statements are not supported (structural netlists only)");
      } else if (lex_.peek().kind == Token::Kind::kIdent) {
        parse_instance(design);
      } else {
        lex_.fail("unexpected token '" + lex_.peek().text + "'");
      }
    }
    lex_.take();  // endmodule

    if (!ansi) {
      for (const std::string& p : header_ports) {
        if (!design.find_port(p).valid()) {
          throw Error("verilog: header port '" + p + "' never declared");
        }
      }
    }
    return design;
  }

 private:
  void declare_port(Design& design, const std::string& name, bool is_input) {
    if (design.find_port(name).valid()) return;  // re-declaration tolerated
    const PortId port =
        design.add_port(name, is_input ? PinDir::kInput : PinDir::kOutput);
    NetId net = design.find_net(name);
    if (!net.valid()) net = design.add_net(name);
    design.connect(port, net);
  }

  void check_no_range() {
    if (is_punct("[")) {
      lex_.fail("bus ranges are not supported; bit-blast with escaped names");
    }
  }

  void parse_instance(Design& design) {
    const std::string cell_name = lex_.take().text;
    const LibCellId cell = lib_.find_cell(cell_name);
    if (!cell.valid()) lex_.fail("unknown cell type '" + cell_name + "'");
    const std::string inst_name = expect_any_ident("instance name");
    const InstId inst = design.add_instance(inst_name, cell);

    expect_punct("(");
    if (is_punct(".")) {
      // Named connections.
      while (is_punct(".")) {
        lex_.take();
        const std::string pin = expect_any_ident("pin name");
        expect_punct("(");
        if (!is_punct(")")) {
          const std::string net = expect_any_ident("net name");
          design.connect(inst, pin, net_of(design, net));
        }
        expect_punct(")");
        if (!eat_punct(",")) break;
      }
    } else if (!is_punct(")")) {
      // Ordered connections follow the library cell's pin order.
      const LibCell& lc = lib_.cell(cell);
      uint32_t index = 0;
      do {
        if (index >= lc.pins().size()) {
          lex_.fail("too many connections for cell " + cell_name);
        }
        const std::string net = expect_any_ident("net name");
        design.connect(inst, lc.pins()[index].name, net_of(design, net));
        ++index;
      } while (eat_punct(","));
    }
    expect_punct(")");
    expect_punct(";");
  }

  NetId net_of(Design& design, const std::string& name) {
    NetId net = design.find_net(name);
    if (!net.valid()) net = design.add_net(name);  // implicit wire
    return net;
  }

  // --- token helpers --------------------------------------------------------

  bool is_ident(std::string_view s) const {
    return lex_.peek().kind == Token::Kind::kIdent && lex_.peek().text == s;
  }
  bool is_punct(std::string_view s) const {
    return lex_.peek().kind == Token::Kind::kPunct && lex_.peek().text == s;
  }
  void expect_ident(std::string_view s) {
    if (!is_ident(s)) lex_.fail("expected '" + std::string(s) + "'");
    lex_.take();
  }
  std::string expect_any_ident(const char* what) {
    if (lex_.peek().kind != Token::Kind::kIdent) {
      lex_.fail(std::string("expected ") + what);
    }
    return lex_.take().text;
  }
  void expect_punct(std::string_view s) {
    if (!is_punct(s)) {
      lex_.fail("expected '" + std::string(s) + "', got '" + lex_.peek().text + "'");
    }
    lex_.take();
  }
  bool eat_punct(std::string_view s) {
    if (!is_punct(s)) return false;
    lex_.take();
    return true;
  }

  Lexer lex_;
  const Library& lib_;
};

/// Identifiers needing escaping: anything beyond [A-Za-z_][A-Za-z0-9_$]*.
bool needs_escape(std::string_view name) {
  if (name.empty()) return true;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return true;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '$') {
      return true;
    }
  }
  return false;
}

std::string emit_name(std::string_view name) {
  if (!needs_escape(name)) return std::string(name);
  return "\\" + std::string(name) + " ";
}

}  // namespace

Design read_verilog(std::string_view text, const Library& lib) {
  MM_SPAN("netlist/build");
  Design design = Parser(text, lib).run();
  MM_GAUGE_SET("netlist/instances", design.num_instances());
  MM_GAUGE_SET("netlist/nets", design.num_nets());
  return design;
}

std::string write_verilog(const Design& design) {
  std::ostringstream os;
  os << "module " << emit_name(design.name()) << " (";
  for (size_t i = 0; i < design.num_ports(); ++i) {
    if (i) os << ", ";
    os << emit_name(design.port_name(PortId(i)));
  }
  os << ");\n";

  for (size_t i = 0; i < design.num_ports(); ++i) {
    const Port& port = design.port(PortId(i));
    os << "  " << (port.dir == PinDir::kInput ? "input " : "output ")
       << emit_name(design.port_name(PortId(i))) << ";\n";
  }
  for (size_t i = 0; i < design.num_nets(); ++i) {
    const std::string_view name = design.net_name(NetId(i));
    // Port nets are implicitly declared.
    if (design.find_port(name).valid()) continue;
    os << "  wire " << emit_name(name) << ";\n";
  }

  for (size_t i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(InstId(i));
    const LibCell& cell = design.library().cell(inst.cell);
    os << "  " << cell.name() << ' ' << emit_name(design.inst_name(InstId(i)))
       << " (";
    bool first = true;
    for (uint32_t p = 0; p < cell.pins().size(); ++p) {
      const Pin& pin = design.pin(inst.pins[p]);
      if (!pin.net.valid()) continue;
      if (!first) os << ", ";
      os << '.' << cell.pins()[p].name << '('
         << emit_name(design.net_name(pin.net)) << ')';
      first = false;
    }
    os << ");\n";
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace mm::netlist
