#include "netlist/libcell.h"

#include "netlist/function.h"

#include <algorithm>

namespace mm::netlist {

uint32_t LibCell::pin_index(std::string_view name) const {
  const uint32_t idx = find_pin(name);
  MM_ASSERT_MSG(idx != UINT32_MAX, "library pin not found");
  return idx;
}

uint32_t LibCell::find_pin(std::string_view name) const {
  for (uint32_t i = 0; i < pins_.size(); ++i) {
    if (pins_[i].name == name) return i;
  }
  return UINT32_MAX;
}

Logic LibCell::evaluate(const std::vector<Logic>& v) const {
  MM_ASSERT(v.size() >= pins_.size());
  auto in = [&](uint32_t i) { return v[i]; };

  switch (func_) {
    case CellFunc::kBuf:
      return in(0);
    case CellFunc::kInv:
      return logic_not(in(0));
    case CellFunc::kTieLo:
      return Logic::kZero;
    case CellFunc::kTieHi:
      return Logic::kOne;

    case CellFunc::kAnd:
    case CellFunc::kNand: {
      bool unknown = false;
      for (uint32_t i = 0; i < pins_.size(); ++i) {
        if (pins_[i].dir != PinDir::kInput) continue;
        if (in(i) == Logic::kZero)
          return func_ == CellFunc::kAnd ? Logic::kZero : Logic::kOne;
        if (in(i) == Logic::kUnknown) unknown = true;
      }
      if (unknown) return Logic::kUnknown;
      return func_ == CellFunc::kAnd ? Logic::kOne : Logic::kZero;
    }

    case CellFunc::kOr:
    case CellFunc::kNor: {
      bool unknown = false;
      for (uint32_t i = 0; i < pins_.size(); ++i) {
        if (pins_[i].dir != PinDir::kInput) continue;
        if (in(i) == Logic::kOne)
          return func_ == CellFunc::kOr ? Logic::kOne : Logic::kZero;
        if (in(i) == Logic::kUnknown) unknown = true;
      }
      if (unknown) return Logic::kUnknown;
      return func_ == CellFunc::kOr ? Logic::kZero : Logic::kOne;
    }

    case CellFunc::kXor:
    case CellFunc::kXnor: {
      bool acc = (func_ == CellFunc::kXnor);
      for (uint32_t i = 0; i < pins_.size(); ++i) {
        if (pins_[i].dir != PinDir::kInput) continue;
        if (in(i) == Logic::kUnknown) return Logic::kUnknown;
        acc ^= (in(i) == Logic::kOne);
      }
      return acc ? Logic::kOne : Logic::kZero;
    }

    case CellFunc::kMux2: {
      // Pin order contract: A=0, B=1, S=2 (see Library::builtin).
      const Logic s = in(2);
      if (s == Logic::kZero) return in(0);
      if (s == Logic::kOne) return in(1);
      // Unknown select: output known only if both data inputs agree.
      if (in(0) != Logic::kUnknown && in(0) == in(1)) return in(0);
      return Logic::kUnknown;
    }

    case CellFunc::kIcgGclk: {
      // GCLK = CK & EN-latch; for constant propagation EN=0 kills the clock.
      // Pin order contract: CK=0, EN=1.
      if (in(1) == Logic::kZero) return Logic::kZero;
      return Logic::kUnknown;  // clock value itself is never a constant
    }

    case CellFunc::kDffQ:
    case CellFunc::kSdffQ:
      // Register outputs are sequential boundaries; constants do not
      // propagate through them via evaluate(). (set_case_analysis placed
      // directly on Q is handled by the constant propagator.)
      return Logic::kUnknown;

    case CellFunc::kCustom:
      if (sequential_ || !function_) return Logic::kUnknown;
      return function_->evaluate(v);
  }
  return Logic::kUnknown;
}

bool LibCell::input_affects_output(uint32_t input_pin,
                                   const std::vector<Logic>& v) const {
  MM_ASSERT(v.size() >= pins_.size());
  switch (func_) {
    case CellFunc::kBuf:
    case CellFunc::kInv:
      return true;

    case CellFunc::kTieLo:
    case CellFunc::kTieHi:
      return false;

    case CellFunc::kAnd:
    case CellFunc::kNand:
      // Blocked by a controlling 0 on any other input.
      for (uint32_t i = 0; i < pins_.size(); ++i) {
        if (i == input_pin || pins_[i].dir != PinDir::kInput) continue;
        if (v[i] == Logic::kZero) return false;
      }
      return true;

    case CellFunc::kOr:
    case CellFunc::kNor:
      for (uint32_t i = 0; i < pins_.size(); ++i) {
        if (i == input_pin || pins_[i].dir != PinDir::kInput) continue;
        if (v[i] == Logic::kOne) return false;
      }
      return true;

    case CellFunc::kXor:
    case CellFunc::kXnor:
      return true;  // no controlling value

    case CellFunc::kMux2: {
      // Pin order contract: A=0, B=1, S=2.
      const Logic s = v[2];
      if (input_pin == 0) return s != Logic::kOne;   // A dead when S==1
      if (input_pin == 1) return s != Logic::kZero;  // B dead when S==0
      // Select: dead only if both data inputs are the same constant.
      return !(v[0] != Logic::kUnknown && v[0] == v[1]);
    }

    case CellFunc::kIcgGclk:
      // Pin order contract: CK=0, EN=1. EN==0 gates the clock off.
      if (input_pin == 0) return v[1] != Logic::kZero;
      return true;

    case CellFunc::kDffQ:
    case CellFunc::kSdffQ:
      return true;  // launch arcs handled separately

    case CellFunc::kCustom:
      if (sequential_ || !function_) return true;  // conservative
      return function_->depends_on(input_pin, v);
  }
  return true;
}

LibCellId Library::add_cell(LibCell cell) {
  cells_.push_back(std::move(cell));
  return LibCellId(cells_.size() - 1);
}

LibCellId Library::find_cell(std::string_view name) const {
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name() == name) return LibCellId(i);
  }
  return LibCellId();
}

namespace {

LibCell make_comb(const char* name, CellFunc func,
                  std::initializer_list<const char*> inputs,
                  double intrinsic, double resistance,
                  TimingSense sense) {
  LibCell c(name, func);
  std::vector<uint32_t> in_idx;
  for (const char* in : inputs) {
    in_idx.push_back(c.add_pin({in, PinDir::kInput, false, 1.0}));
  }
  const uint32_t z = c.add_pin({"Z", PinDir::kOutput, false, 0.0});
  for (uint32_t i : in_idx) {
    c.add_arc({i, z, ArcKind::kCombinational, sense, intrinsic, resistance});
  }
  return c;
}

}  // namespace

Library Library::builtin() {
  Library lib;

  lib.add_cell(make_comb(cells::kBuf, CellFunc::kBuf, {"A"}, 0.30, 0.04,
                         TimingSense::kPositive));
  lib.add_cell(make_comb(cells::kInv, CellFunc::kInv, {"A"}, 0.20, 0.03,
                         TimingSense::kNegative));
  lib.add_cell(make_comb(cells::kAnd2, CellFunc::kAnd, {"A", "B"}, 0.40, 0.05,
                         TimingSense::kPositive));
  lib.add_cell(make_comb(cells::kAnd3, CellFunc::kAnd, {"A", "B", "C"}, 0.50,
                         0.05, TimingSense::kPositive));
  lib.add_cell(make_comb(cells::kAnd4, CellFunc::kAnd, {"A", "B", "C", "D"},
                         0.60, 0.05, TimingSense::kPositive));
  lib.add_cell(make_comb(cells::kNand2, CellFunc::kNand, {"A", "B"}, 0.30,
                         0.04, TimingSense::kNegative));
  lib.add_cell(make_comb(cells::kOr2, CellFunc::kOr, {"A", "B"}, 0.40, 0.05,
                         TimingSense::kPositive));
  lib.add_cell(make_comb(cells::kOr3, CellFunc::kOr, {"A", "B", "C"}, 0.50,
                         0.05, TimingSense::kPositive));
  lib.add_cell(make_comb(cells::kOr4, CellFunc::kOr, {"A", "B", "C", "D"},
                         0.60, 0.05, TimingSense::kPositive));
  lib.add_cell(make_comb(cells::kNor2, CellFunc::kNor, {"A", "B"}, 0.30, 0.04,
                         TimingSense::kNegative));
  lib.add_cell(make_comb(cells::kXor2, CellFunc::kXor, {"A", "B"}, 0.55, 0.06,
                         TimingSense::kNonUnate));
  lib.add_cell(make_comb(cells::kXnor2, CellFunc::kXnor, {"A", "B"}, 0.55,
                         0.06, TimingSense::kNonUnate));

  {
    LibCell mux(cells::kMux2, CellFunc::kMux2);
    const uint32_t a = mux.add_pin({"A", PinDir::kInput, false, 1.0});
    const uint32_t b = mux.add_pin({"B", PinDir::kInput, false, 1.0});
    const uint32_t s = mux.add_pin({"S", PinDir::kInput, false, 1.5});
    const uint32_t z = mux.add_pin({"Z", PinDir::kOutput, false, 0.0});
    mux.add_arc({a, z, ArcKind::kCombinational, TimingSense::kPositive, 0.45, 0.05});
    mux.add_arc({b, z, ArcKind::kCombinational, TimingSense::kPositive, 0.45, 0.05});
    mux.add_arc({s, z, ArcKind::kCombinational, TimingSense::kNonUnate, 0.50, 0.05});
    lib.add_cell(std::move(mux));
  }

  {
    LibCell tielo(cells::kTieLo, CellFunc::kTieLo);
    tielo.add_pin({"Z", PinDir::kOutput, false, 0.0});
    lib.add_cell(std::move(tielo));
    LibCell tiehi(cells::kTieHi, CellFunc::kTieHi);
    tiehi.add_pin({"Z", PinDir::kOutput, false, 0.0});
    lib.add_cell(std::move(tiehi));
  }

  {
    LibCell dff(cells::kDff, CellFunc::kDffQ);
    const uint32_t d = dff.add_pin({"D", PinDir::kInput, false, 1.2});
    const uint32_t cp = dff.add_pin({"CP", PinDir::kInput, true, 1.0});
    const uint32_t q = dff.add_pin({"Q", PinDir::kOutput, false, 0.0});
    dff.add_arc({cp, q, ArcKind::kLaunch, TimingSense::kNonUnate, 0.60, 0.05});
    dff.add_arc({d, cp, ArcKind::kSetupHold, TimingSense::kNonUnate, 0.15, 0.0});
    lib.add_cell(std::move(dff));
  }

  {
    // Scan flop: internal mux SE ? SI : D feeding the register.
    LibCell sdff(cells::kSdff, CellFunc::kSdffQ);
    const uint32_t d = sdff.add_pin({"D", PinDir::kInput, false, 1.2});
    const uint32_t si = sdff.add_pin({"SI", PinDir::kInput, false, 1.1});
    const uint32_t se = sdff.add_pin({"SE", PinDir::kInput, false, 1.1});
    const uint32_t cp = sdff.add_pin({"CP", PinDir::kInput, true, 1.0});
    const uint32_t q = sdff.add_pin({"Q", PinDir::kOutput, false, 0.0});
    sdff.add_arc({cp, q, ArcKind::kLaunch, TimingSense::kNonUnate, 0.65, 0.05});
    sdff.add_arc({d, cp, ArcKind::kSetupHold, TimingSense::kNonUnate, 0.18, 0.0});
    sdff.add_arc({si, cp, ArcKind::kSetupHold, TimingSense::kNonUnate, 0.18, 0.0});
    sdff.add_arc({se, cp, ArcKind::kSetupHold, TimingSense::kNonUnate, 0.20, 0.0});
    lib.add_cell(std::move(sdff));
  }

  {
    // Integrated clock gate: CK in, EN enable, GCLK out.
    LibCell icg(cells::kIcg, CellFunc::kIcgGclk);
    const uint32_t ck = icg.add_pin({"CK", PinDir::kInput, true, 1.0});
    const uint32_t en = icg.add_pin({"EN", PinDir::kInput, false, 1.1});
    const uint32_t gclk = icg.add_pin({"GCLK", PinDir::kOutput, false, 0.0});
    icg.add_arc({ck, gclk, ArcKind::kCombinational, TimingSense::kPositive, 0.35, 0.04});
    icg.add_arc({en, ck, ArcKind::kSetupHold, TimingSense::kNonUnate, 0.12, 0.0});
    lib.add_cell(std::move(icg));
  }

  return lib;
}

}  // namespace mm::netlist
