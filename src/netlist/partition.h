#pragma once
// Netlist partitioning for hierarchical sharded merging (docs/SHARDING.md).
//
// partition_design splits a flat Design into K blocks by multi-source BFS
// over the undirected instance-adjacency graph induced by nets: K seed
// instances are spaced evenly through the instance id space (offset by the
// seed, so sweeps can probe different cuts), then the blocks expand
// round-robin one instance per block per round. Round-robin expansion is
// what makes the blocks fanout-cone-shaped and size-balanced: each block
// claims the frontier of its own cone before any block can run away with
// the whole graph. A block whose frontier empties (disconnected component
// exhausted) restarts from the lowest-id unassigned instance.
//
// The result is deterministic for a given (design, num_blocks, seed): the
// adjacency lists are built in net order, queues are FIFO, and ties go to
// the lower block index. No randomness beyond the seed-derived offset.
//
// Pins inherit their instance's block; a top-level port pin takes the block
// of the first instance pin on its net (block 0 if the net touches no
// instance). A *boundary pin* is any pin on a net whose pins span more than
// one block — the cut set the boundary models in timing/boundary_model.h
// summarize. K=1 yields a single block and an empty boundary.

#include <cstdint>
#include <vector>

#include "netlist/design.h"

namespace mm::netlist {

struct PartitionOptions {
  size_t num_blocks = 1;  // clamped to [1, num_instances]
  uint64_t seed = 1;      // offsets the BFS seed placement
};

/// The block assignment of one Design. Built by partition_design; cheap to
/// copy (a few index vectors).
class Partition {
 public:
  size_t num_blocks() const { return num_blocks_; }

  /// Block of a pin (ports included). Valid for every pin of the design.
  uint32_t block_of(PinId pin) const { return pin_block_[pin.index()]; }
  uint32_t block_of_instance(InstId inst) const {
    return inst_block_[inst.index()];
  }

  /// Pin lies on a net whose pins span more than one block.
  bool is_boundary(PinId pin) const { return boundary_[pin.index()] != 0; }
  /// All boundary pins, ascending pin id.
  const std::vector<PinId>& boundary_pins() const { return boundary_pins_; }

  /// Nets whose pins span more than one block.
  size_t num_crossing_nets() const { return num_crossing_nets_; }
  /// Instances per block (size num_blocks()).
  const std::vector<size_t>& block_instance_counts() const {
    return block_sizes_;
  }
  /// Boundary pins per block (size num_blocks()).
  const std::vector<size_t>& block_boundary_counts() const {
    return block_boundary_;
  }

 private:
  friend Partition partition_design(const Design& design,
                                    const PartitionOptions& options);

  size_t num_blocks_ = 1;
  std::vector<uint32_t> inst_block_;  // index = InstId.index()
  std::vector<uint32_t> pin_block_;   // index = PinId.index()
  std::vector<uint8_t> boundary_;     // index = PinId.index()
  std::vector<PinId> boundary_pins_;
  std::vector<size_t> block_sizes_;
  std::vector<size_t> block_boundary_;
  size_t num_crossing_nets_ = 0;
};

/// Partition `design` into options.num_blocks blocks (see file comment).
Partition partition_design(const Design& design,
                           const PartitionOptions& options);

}  // namespace mm::netlist
