#pragma once
// Cell library model: a liberty-like description of combinational and
// sequential cells — pin directions, logic functions (for case-analysis
// constant propagation), timing arcs with a linear delay model
// (intrinsic + drive_resistance * load).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/logic.h"
#include "util/error.h"
#include "util/id.h"

namespace mm::netlist {

class FuncExpr;

using LibCellId = Id<struct LibCellTag>;

enum class PinDir : uint8_t { kInput, kOutput };

/// Built-in logic function of a cell's output. Drives constant propagation
/// (case analysis) and clock-network transparency.
enum class CellFunc : uint8_t {
  kBuf,      // Z = A
  kInv,      // Z = !A
  kAnd,      // Z = A & B & ...
  kNand,     // Z = !(A & B & ...)
  kOr,       // Z = A | B | ...
  kNor,      // Z = !(A | B | ...)
  kXor,      // Z = A ^ B ^ ...
  kXnor,     // Z = !(A ^ B ^ ...)
  kMux2,     // Z = S ? B : A   (pin order: A, B, S)
  kTieLo,    // Z = 0
  kTieHi,    // Z = 1
  kDffQ,     // sequential: Q from D at CP edge
  kSdffQ,    // scan flop: Q from (SE ? SI : D) at CP edge
  kIcgGclk,  // integrated clock gate: GCLK = CK gated by EN
  kCustom,   // arbitrary boolean function (Liberty cells; see function.h)
};

enum class TimingSense : uint8_t { kPositive, kNegative, kNonUnate };

/// Kind of a library timing arc.
enum class ArcKind : uint8_t {
  kCombinational,  // input -> output through logic
  kLaunch,         // CP -> Q (clock-to-output of a register)
  kSetupHold,      // D (or SI/SE) constrained against CP: a timing check
};

struct LibPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  bool is_clock = false;  // clock input of a sequential cell / ICG
  double cap = 1.0;       // input capacitance (load units)
};

struct LibArc {
  uint32_t from_pin = 0;  // index into LibCell::pins
  uint32_t to_pin = 0;
  ArcKind kind = ArcKind::kCombinational;
  TimingSense sense = TimingSense::kPositive;
  double intrinsic = 0.0;   // intrinsic delay
  double resistance = 0.0;  // delay slope vs load (sum of sink caps)
};

/// Immutable description of one cell type.
class LibCell {
 public:
  LibCell(std::string name, CellFunc func) : name_(std::move(name)), func_(func) {}

  const std::string& name() const { return name_; }
  CellFunc func() const { return func_; }

  uint32_t add_pin(LibPin pin) {
    pins_.push_back(std::move(pin));
    return static_cast<uint32_t>(pins_.size() - 1);
  }
  void add_arc(LibArc arc) {
    MM_ASSERT(arc.from_pin < pins_.size() && arc.to_pin < pins_.size());
    arcs_.push_back(arc);
  }

  const std::vector<LibPin>& pins() const { return pins_; }
  LibPin& pin_mutable(uint32_t index) {
    MM_ASSERT(index < pins_.size());
    return pins_[index];
  }
  const std::vector<LibArc>& arcs() const { return arcs_; }

  /// Index of the pin named `name`; asserts if absent.
  uint32_t pin_index(std::string_view name) const;
  /// Index of the pin named `name`; UINT32_MAX if absent.
  uint32_t find_pin(std::string_view name) const;

  bool is_sequential() const {
    return sequential_ || func_ == CellFunc::kDffQ ||
           func_ == CellFunc::kSdffQ;
  }
  bool is_clock_gate() const { return func_ == CellFunc::kIcgGclk; }

  /// Mark a kCustom cell as sequential (Liberty ff/latch group) and install
  /// its output function / clock-to-output arc semantics.
  void set_sequential(bool value) { sequential_ = value; }
  /// Attach the output-pin boolean function of a kCustom combinational
  /// cell. Evaluation and arc-sensitivity use it; the output pin is the
  /// cell's (single) output.
  void set_function(std::shared_ptr<const FuncExpr> function) {
    function_ = std::move(function);
  }
  const FuncExpr* function() const { return function_.get(); }

  /// Evaluate the combinational function given input pin values (indexed by
  /// pin index; output slots ignored). kUnknown in, kUnknown out, except
  /// where controlling values decide (0 on an AND input forces 0, etc.).
  Logic evaluate(const std::vector<Logic>& input_values) const;

  /// Can a transition on `input_pin` still affect the output, given the
  /// constants on the other pins? (Exact per-function analysis — ternary
  /// re-evaluation cannot prove a mux data arc dead when the other data
  /// input is an unknown signal.) Used to kill blocked timing arcs.
  bool input_affects_output(uint32_t input_pin,
                            const std::vector<Logic>& values) const;

 private:
  std::string name_;
  CellFunc func_;
  std::vector<LibPin> pins_;
  std::vector<LibArc> arcs_;
  bool sequential_ = false;
  std::shared_ptr<const FuncExpr> function_;  // kCustom combinational only
};

/// A set of LibCells addressed by id or name.
class Library {
 public:
  LibCellId add_cell(LibCell cell);

  const LibCell& cell(LibCellId id) const {
    MM_ASSERT(id.index() < cells_.size());
    return cells_[id.index()];
  }
  LibCellId find_cell(std::string_view name) const;
  size_t num_cells() const { return cells_.size(); }

  /// The built-in standard library used by generators, examples and tests:
  /// BUF, INV, AND2..4, NAND2, OR2..4, NOR2, XOR2, XNOR2, MUX2, TIELO,
  /// TIEHI, DFF, SDFF (scan flop), ICG (clock gate).
  static Library builtin();

 private:
  std::vector<LibCell> cells_;
};

/// Canonical cell names in Library::builtin().
namespace cells {
inline constexpr const char* kBuf = "BUF";
inline constexpr const char* kInv = "INV";
inline constexpr const char* kAnd2 = "AND2";
inline constexpr const char* kAnd3 = "AND3";
inline constexpr const char* kAnd4 = "AND4";
inline constexpr const char* kNand2 = "NAND2";
inline constexpr const char* kOr2 = "OR2";
inline constexpr const char* kOr3 = "OR3";
inline constexpr const char* kOr4 = "OR4";
inline constexpr const char* kNor2 = "NOR2";
inline constexpr const char* kXor2 = "XOR2";
inline constexpr const char* kXnor2 = "XNOR2";
inline constexpr const char* kMux2 = "MUX2";
inline constexpr const char* kTieLo = "TIELO";
inline constexpr const char* kTieHi = "TIEHI";
inline constexpr const char* kDff = "DFF";
inline constexpr const char* kSdff = "SDFF";
inline constexpr const char* kIcg = "ICG";
}  // namespace cells

}  // namespace mm::netlist
