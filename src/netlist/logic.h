#pragma once
// Ternary logic value used by case analysis and function evaluation.

#include <cstdint>

namespace mm::netlist {

enum class Logic : uint8_t { kZero = 0, kOne = 1, kUnknown = 2 };

inline Logic logic_not(Logic v) {
  if (v == Logic::kUnknown) return Logic::kUnknown;
  return v == Logic::kZero ? Logic::kOne : Logic::kZero;
}

}  // namespace mm::netlist
