#include "netlist/design.h"

namespace mm::netlist {

PinId Design::make_pin(Symbol full_name, PortId port, InstId inst,
                       uint32_t lib_pin) {
  const PinId id(pins_.size());
  Pin p;
  p.full_name = full_name;
  p.port = port;
  p.inst = inst;
  p.lib_pin = lib_pin;
  pins_.push_back(p);
  MM_ASSERT_MSG(pin_by_name_.emplace(full_name, id).second,
                "duplicate pin name");
  return id;
}

PortId Design::add_port(std::string_view name, PinDir dir) {
  const Symbol sym = names_.intern(name);
  if (port_by_name_.count(sym)) throw Error("duplicate port: " + std::string(name));
  const PortId id(ports_.size());
  Port port;
  port.name = sym;
  port.dir = dir;
  port.pin = make_pin(sym, id, InstId(), UINT32_MAX);
  ports_.push_back(port);
  port_by_name_.emplace(sym, id);
  return id;
}

InstId Design::add_instance(std::string_view name, LibCellId cell) {
  const Symbol sym = names_.intern(name);
  if (inst_by_name_.count(sym))
    throw Error("duplicate instance: " + std::string(name));
  const InstId id(insts_.size());
  Instance inst;
  inst.name = sym;
  inst.cell = cell;
  const LibCell& lc = lib_->cell(cell);
  inst.pins.reserve(lc.pins().size());
  std::string buf;
  for (uint32_t i = 0; i < lc.pins().size(); ++i) {
    buf.assign(name);
    buf += '/';
    buf += lc.pins()[i].name;
    inst.pins.push_back(make_pin(names_.intern(buf), PortId(), id, i));
  }
  insts_.push_back(std::move(inst));
  inst_by_name_.emplace(sym, id);
  return id;
}

NetId Design::add_net(std::string_view name) {
  const Symbol sym = names_.intern(name);
  if (net_by_name_.count(sym)) throw Error("duplicate net: " + std::string(name));
  const NetId id(nets_.size());
  Net net;
  net.name = sym;
  nets_.push_back(std::move(net));
  net_by_name_.emplace(sym, id);
  return id;
}

void Design::connect(InstId inst_id, std::string_view pin_name, NetId net_id) {
  MM_ASSERT(inst_id.index() < insts_.size() && net_id.index() < nets_.size());
  Instance& inst = insts_[inst_id.index()];
  const LibCell& lc = lib_->cell(inst.cell);
  const uint32_t lp = lc.find_pin(pin_name);
  if (lp == UINT32_MAX) {
    throw Error("no pin '" + std::string(pin_name) + "' on cell " + lc.name());
  }
  const PinId pin_id = inst.pins[lp];
  Pin& p = pins_[pin_id.index()];
  if (p.net.valid())
    throw Error("pin already connected: " + std::string(pin_name));
  p.net = net_id;
  Net& net = nets_[net_id.index()];
  if (lc.pins()[lp].dir == PinDir::kOutput) {
    if (net.driver.valid())
      throw Error("net has multiple drivers: " + std::string(names_.str(net.name)));
    net.driver = pin_id;
  } else {
    net.loads.push_back(pin_id);
  }
}

void Design::connect(PortId port_id, NetId net_id) {
  MM_ASSERT(port_id.index() < ports_.size() && net_id.index() < nets_.size());
  Port& port = ports_[port_id.index()];
  Pin& p = pins_[port.pin.index()];
  if (p.net.valid())
    throw Error("port already connected: " + std::string(names_.str(port.name)));
  p.net = net_id;
  Net& net = nets_[net_id.index()];
  if (port.dir == PinDir::kInput) {
    // Input port drives the net from the design's point of view.
    if (net.driver.valid())
      throw Error("net has multiple drivers: " + std::string(names_.str(net.name)));
    net.driver = port.pin;
  } else {
    net.loads.push_back(port.pin);
  }
}

PortId Design::find_port(std::string_view name) const {
  const Symbol sym = names_.find(name);
  if (!sym) return PortId();
  auto it = port_by_name_.find(sym);
  return it == port_by_name_.end() ? PortId() : it->second;
}

InstId Design::find_instance(std::string_view name) const {
  const Symbol sym = names_.find(name);
  if (!sym) return InstId();
  auto it = inst_by_name_.find(sym);
  return it == inst_by_name_.end() ? InstId() : it->second;
}

NetId Design::find_net(std::string_view name) const {
  const Symbol sym = names_.find(name);
  if (!sym) return NetId();
  auto it = net_by_name_.find(sym);
  return it == net_by_name_.end() ? NetId() : it->second;
}

PinId Design::find_pin(std::string_view full_name) const {
  const Symbol sym = names_.find(full_name);
  if (!sym) return PinId();
  auto it = pin_by_name_.find(sym);
  return it == pin_by_name_.end() ? PinId() : it->second;
}

CheckReport check_design(const Design& design) {
  CheckReport report;
  for (size_t n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(NetId(n));
    if (!net.driver.valid() && !net.loads.empty()) {
      report.warnings.push_back("undriven net: " +
                                std::string(design.net_name(NetId(n))));
    }
    if (net.driver.valid() && net.loads.empty()) {
      report.warnings.push_back("dangling net (no loads): " +
                                std::string(design.net_name(NetId(n))));
    }
  }
  for (size_t i = 0; i < design.num_instances(); ++i) {
    const Instance& inst = design.instance(InstId(i));
    const LibCell& lc = design.library().cell(inst.cell);
    for (uint32_t p = 0; p < lc.pins().size(); ++p) {
      if (lc.pins()[p].dir == PinDir::kInput &&
          !design.pin(inst.pins[p]).net.valid()) {
        report.warnings.push_back(
            "floating input pin: " +
            std::string(design.pin_name(inst.pins[p])));
      }
    }
  }
  return report;
}

}  // namespace mm::netlist
